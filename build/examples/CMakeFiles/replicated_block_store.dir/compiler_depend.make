# Empty compiler generated dependencies file for replicated_block_store.
# This may be replaced when dependencies are built.
