file(REMOVE_RECURSE
  "CMakeFiles/replicated_block_store.dir/replicated_block_store.cpp.o"
  "CMakeFiles/replicated_block_store.dir/replicated_block_store.cpp.o.d"
  "replicated_block_store"
  "replicated_block_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_block_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
