file(REMOVE_RECURSE
  "CMakeFiles/log_scan.dir/log_scan.cpp.o"
  "CMakeFiles/log_scan.dir/log_scan.cpp.o.d"
  "log_scan"
  "log_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
