# Empty compiler generated dependencies file for log_scan.
# This may be replaced when dependencies are built.
