file(REMOVE_RECURSE
  "CMakeFiles/abl_search.dir/abl_search.cpp.o"
  "CMakeFiles/abl_search.dir/abl_search.cpp.o.d"
  "abl_search"
  "abl_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
