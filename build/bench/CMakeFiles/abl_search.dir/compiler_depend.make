# Empty compiler generated dependencies file for abl_search.
# This may be replaced when dependencies are built.
