file(REMOVE_RECURSE
  "CMakeFiles/abl_abd_oneround_reads.dir/abl_abd_oneround_reads.cpp.o"
  "CMakeFiles/abl_abd_oneround_reads.dir/abl_abd_oneround_reads.cpp.o.d"
  "abl_abd_oneround_reads"
  "abl_abd_oneround_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_abd_oneround_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
