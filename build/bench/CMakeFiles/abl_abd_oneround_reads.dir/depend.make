# Empty dependencies file for abl_abd_oneround_reads.
# This may be replaced when dependencies are built.
