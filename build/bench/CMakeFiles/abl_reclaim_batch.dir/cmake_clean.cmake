file(REMOVE_RECURSE
  "CMakeFiles/abl_reclaim_batch.dir/abl_reclaim_batch.cpp.o"
  "CMakeFiles/abl_reclaim_batch.dir/abl_reclaim_batch.cpp.o.d"
  "abl_reclaim_batch"
  "abl_reclaim_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reclaim_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
