# Empty compiler generated dependencies file for abl_reclaim_batch.
# This may be replaced when dependencies are built.
