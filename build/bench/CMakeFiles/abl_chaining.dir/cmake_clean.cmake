file(REMOVE_RECURSE
  "CMakeFiles/abl_chaining.dir/abl_chaining.cpp.o"
  "CMakeFiles/abl_chaining.dir/abl_chaining.cpp.o.d"
  "abl_chaining"
  "abl_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
