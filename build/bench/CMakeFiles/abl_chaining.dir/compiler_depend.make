# Empty compiler generated dependencies file for abl_chaining.
# This may be replaced when dependencies are built.
