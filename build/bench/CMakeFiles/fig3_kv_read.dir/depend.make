# Empty dependencies file for fig3_kv_read.
# This may be replaced when dependencies are built.
