file(REMOVE_RECURSE
  "CMakeFiles/fig3_kv_read.dir/fig3_kv_read.cpp.o"
  "CMakeFiles/fig3_kv_read.dir/fig3_kv_read.cpp.o.d"
  "fig3_kv_read"
  "fig3_kv_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kv_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
