# Empty dependencies file for fig7_rs_zipf.
# This may be replaced when dependencies are built.
