file(REMOVE_RECURSE
  "CMakeFiles/fig7_rs_zipf.dir/fig7_rs_zipf.cpp.o"
  "CMakeFiles/fig7_rs_zipf.dir/fig7_rs_zipf.cpp.o.d"
  "fig7_rs_zipf"
  "fig7_rs_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rs_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
