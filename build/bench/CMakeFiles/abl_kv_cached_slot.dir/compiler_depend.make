# Empty compiler generated dependencies file for abl_kv_cached_slot.
# This may be replaced when dependencies are built.
