file(REMOVE_RECURSE
  "CMakeFiles/abl_kv_cached_slot.dir/abl_kv_cached_slot.cpp.o"
  "CMakeFiles/abl_kv_cached_slot.dir/abl_kv_cached_slot.cpp.o.d"
  "abl_kv_cached_slot"
  "abl_kv_cached_slot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kv_cached_slot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
