# Empty compiler generated dependencies file for sec2_rdma_vs_rpc.
# This may be replaced when dependencies are built.
