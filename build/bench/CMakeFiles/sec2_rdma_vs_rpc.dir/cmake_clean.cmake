file(REMOVE_RECURSE
  "CMakeFiles/sec2_rdma_vs_rpc.dir/sec2_rdma_vs_rpc.cpp.o"
  "CMakeFiles/sec2_rdma_vs_rpc.dir/sec2_rdma_vs_rpc.cpp.o.d"
  "sec2_rdma_vs_rpc"
  "sec2_rdma_vs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_rdma_vs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
