# Empty compiler generated dependencies file for fig6_rs_tput.
# This may be replaced when dependencies are built.
