file(REMOVE_RECURSE
  "CMakeFiles/fig6_rs_tput.dir/fig6_rs_tput.cpp.o"
  "CMakeFiles/fig6_rs_tput.dir/fig6_rs_tput.cpp.o.d"
  "fig6_rs_tput"
  "fig6_rs_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rs_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
