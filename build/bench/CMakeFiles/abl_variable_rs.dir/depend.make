# Empty dependencies file for abl_variable_rs.
# This may be replaced when dependencies are built.
