file(REMOVE_RECURSE
  "CMakeFiles/abl_variable_rs.dir/abl_variable_rs.cpp.o"
  "CMakeFiles/abl_variable_rs.dir/abl_variable_rs.cpp.o.d"
  "abl_variable_rs"
  "abl_variable_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_variable_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
