# Empty compiler generated dependencies file for fig9_tx_tput.
# This may be replaced when dependencies are built.
