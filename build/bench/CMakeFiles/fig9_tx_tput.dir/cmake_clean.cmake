file(REMOVE_RECURSE
  "CMakeFiles/fig9_tx_tput.dir/fig9_tx_tput.cpp.o"
  "CMakeFiles/fig9_tx_tput.dir/fig9_tx_tput.cpp.o.d"
  "fig9_tx_tput"
  "fig9_tx_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tx_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
