# Empty compiler generated dependencies file for abl_sim_micro.
# This may be replaced when dependencies are built.
