file(REMOVE_RECURSE
  "CMakeFiles/abl_sim_micro.dir/abl_sim_micro.cpp.o"
  "CMakeFiles/abl_sim_micro.dir/abl_sim_micro.cpp.o.d"
  "abl_sim_micro"
  "abl_sim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
