file(REMOVE_RECURSE
  "CMakeFiles/fig10_tx_zipf.dir/fig10_tx_zipf.cpp.o"
  "CMakeFiles/fig10_tx_zipf.dir/fig10_tx_zipf.cpp.o.d"
  "fig10_tx_zipf"
  "fig10_tx_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tx_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
