# Empty compiler generated dependencies file for fig10_tx_zipf.
# This may be replaced when dependencies are built.
