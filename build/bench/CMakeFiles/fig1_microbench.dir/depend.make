# Empty dependencies file for fig1_microbench.
# This may be replaced when dependencies are built.
