file(REMOVE_RECURSE
  "CMakeFiles/fig1_microbench.dir/fig1_microbench.cpp.o"
  "CMakeFiles/fig1_microbench.dir/fig1_microbench.cpp.o.d"
  "fig1_microbench"
  "fig1_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
