file(REMOVE_RECURSE
  "CMakeFiles/fig4_kv_mixed.dir/fig4_kv_mixed.cpp.o"
  "CMakeFiles/fig4_kv_mixed.dir/fig4_kv_mixed.cpp.o.d"
  "fig4_kv_mixed"
  "fig4_kv_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_kv_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
