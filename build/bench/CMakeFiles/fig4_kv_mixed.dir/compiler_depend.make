# Empty compiler generated dependencies file for fig4_kv_mixed.
# This may be replaced when dependencies are built.
