# Empty dependencies file for abl_redirect.
# This may be replaced when dependencies are built.
