file(REMOVE_RECURSE
  "CMakeFiles/abl_redirect.dir/abl_redirect.cpp.o"
  "CMakeFiles/abl_redirect.dir/abl_redirect.cpp.o.d"
  "abl_redirect"
  "abl_redirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
