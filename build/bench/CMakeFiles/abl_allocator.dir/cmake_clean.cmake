file(REMOVE_RECURSE
  "CMakeFiles/abl_allocator.dir/abl_allocator.cpp.o"
  "CMakeFiles/abl_allocator.dir/abl_allocator.cpp.o.d"
  "abl_allocator"
  "abl_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
