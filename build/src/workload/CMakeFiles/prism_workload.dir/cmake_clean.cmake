file(REMOVE_RECURSE
  "CMakeFiles/prism_workload.dir/zipf.cc.o"
  "CMakeFiles/prism_workload.dir/zipf.cc.o.d"
  "libprism_workload.a"
  "libprism_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
