file(REMOVE_RECURSE
  "libprism_workload.a"
)
