file(REMOVE_RECURSE
  "CMakeFiles/prism_core.dir/executor.cc.o"
  "CMakeFiles/prism_core.dir/executor.cc.o.d"
  "CMakeFiles/prism_core.dir/freelist.cc.o"
  "CMakeFiles/prism_core.dir/freelist.cc.o.d"
  "CMakeFiles/prism_core.dir/wire.cc.o"
  "CMakeFiles/prism_core.dir/wire.cc.o.d"
  "libprism_core.a"
  "libprism_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
