
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/memory.cc" "src/rdma/CMakeFiles/prism_rdma.dir/memory.cc.o" "gcc" "src/rdma/CMakeFiles/prism_rdma.dir/memory.cc.o.d"
  "/root/repo/src/rdma/qp.cc" "src/rdma/CMakeFiles/prism_rdma.dir/qp.cc.o" "gcc" "src/rdma/CMakeFiles/prism_rdma.dir/qp.cc.o.d"
  "/root/repo/src/rdma/verbs.cc" "src/rdma/CMakeFiles/prism_rdma.dir/verbs.cc.o" "gcc" "src/rdma/CMakeFiles/prism_rdma.dir/verbs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prism_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
