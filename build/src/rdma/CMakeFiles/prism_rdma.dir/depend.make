# Empty dependencies file for prism_rdma.
# This may be replaced when dependencies are built.
