file(REMOVE_RECURSE
  "libprism_rdma.a"
)
