file(REMOVE_RECURSE
  "CMakeFiles/prism_rdma.dir/memory.cc.o"
  "CMakeFiles/prism_rdma.dir/memory.cc.o.d"
  "CMakeFiles/prism_rdma.dir/qp.cc.o"
  "CMakeFiles/prism_rdma.dir/qp.cc.o.d"
  "CMakeFiles/prism_rdma.dir/verbs.cc.o"
  "CMakeFiles/prism_rdma.dir/verbs.cc.o.d"
  "libprism_rdma.a"
  "libprism_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
