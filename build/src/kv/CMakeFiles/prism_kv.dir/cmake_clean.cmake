file(REMOVE_RECURSE
  "CMakeFiles/prism_kv.dir/pilaf.cc.o"
  "CMakeFiles/prism_kv.dir/pilaf.cc.o.d"
  "CMakeFiles/prism_kv.dir/prism_kv.cc.o"
  "CMakeFiles/prism_kv.dir/prism_kv.cc.o.d"
  "libprism_kv.a"
  "libprism_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
