file(REMOVE_RECURSE
  "libprism_kv.a"
)
