# Empty compiler generated dependencies file for prism_kv.
# This may be replaced when dependencies are built.
