
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/pilaf.cc" "src/kv/CMakeFiles/prism_kv.dir/pilaf.cc.o" "gcc" "src/kv/CMakeFiles/prism_kv.dir/pilaf.cc.o.d"
  "/root/repo/src/kv/prism_kv.cc" "src/kv/CMakeFiles/prism_kv.dir/prism_kv.cc.o" "gcc" "src/kv/CMakeFiles/prism_kv.dir/prism_kv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prism_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/prism_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/prism/CMakeFiles/prism_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
