file(REMOVE_RECURSE
  "libprism_rs.a"
)
