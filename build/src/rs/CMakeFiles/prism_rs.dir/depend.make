# Empty dependencies file for prism_rs.
# This may be replaced when dependencies are built.
