file(REMOVE_RECURSE
  "CMakeFiles/prism_rs.dir/abd_lock.cc.o"
  "CMakeFiles/prism_rs.dir/abd_lock.cc.o.d"
  "CMakeFiles/prism_rs.dir/prism_rs.cc.o"
  "CMakeFiles/prism_rs.dir/prism_rs.cc.o.d"
  "libprism_rs.a"
  "libprism_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
