file(REMOVE_RECURSE
  "libprism_common.a"
)
