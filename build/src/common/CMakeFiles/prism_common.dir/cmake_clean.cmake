file(REMOVE_RECURSE
  "CMakeFiles/prism_common.dir/bytes.cc.o"
  "CMakeFiles/prism_common.dir/bytes.cc.o.d"
  "CMakeFiles/prism_common.dir/hash.cc.o"
  "CMakeFiles/prism_common.dir/hash.cc.o.d"
  "CMakeFiles/prism_common.dir/histogram.cc.o"
  "CMakeFiles/prism_common.dir/histogram.cc.o.d"
  "CMakeFiles/prism_common.dir/rng.cc.o"
  "CMakeFiles/prism_common.dir/rng.cc.o.d"
  "CMakeFiles/prism_common.dir/status.cc.o"
  "CMakeFiles/prism_common.dir/status.cc.o.d"
  "libprism_common.a"
  "libprism_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
