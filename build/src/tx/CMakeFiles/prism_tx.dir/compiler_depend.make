# Empty compiler generated dependencies file for prism_tx.
# This may be replaced when dependencies are built.
