file(REMOVE_RECURSE
  "CMakeFiles/prism_tx.dir/farm.cc.o"
  "CMakeFiles/prism_tx.dir/farm.cc.o.d"
  "CMakeFiles/prism_tx.dir/prism_tx.cc.o"
  "CMakeFiles/prism_tx.dir/prism_tx.cc.o.d"
  "libprism_tx.a"
  "libprism_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
