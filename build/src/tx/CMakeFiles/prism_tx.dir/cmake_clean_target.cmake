file(REMOVE_RECURSE
  "libprism_tx.a"
)
