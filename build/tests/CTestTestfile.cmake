# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/prism_executor_test[1]_include.cmake")
include("/root/repo/build/tests/prism_service_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/rs_test[1]_include.cmake")
include("/root/repo/build/tests/tx_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/lossy_network_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/qp_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
