# Empty dependencies file for prism_executor_test.
# This may be replaced when dependencies are built.
