file(REMOVE_RECURSE
  "CMakeFiles/prism_executor_test.dir/prism_executor_test.cc.o"
  "CMakeFiles/prism_executor_test.dir/prism_executor_test.cc.o.d"
  "prism_executor_test"
  "prism_executor_test.pdb"
  "prism_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
