file(REMOVE_RECURSE
  "CMakeFiles/prism_service_test.dir/prism_service_test.cc.o"
  "CMakeFiles/prism_service_test.dir/prism_service_test.cc.o.d"
  "prism_service_test"
  "prism_service_test.pdb"
  "prism_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
