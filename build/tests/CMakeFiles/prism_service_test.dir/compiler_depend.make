# Empty compiler generated dependencies file for prism_service_test.
# This may be replaced when dependencies are built.
