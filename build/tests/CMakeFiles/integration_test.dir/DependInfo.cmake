
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/prism_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/prism_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/prism_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/prism/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/prism_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prism_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
