// Tests for the schedule-space exploration engine (src/explore).
//
// The load-bearing properties, each pinned here:
//   * identity schedule — an installed hook that always picks the front
//     event reproduces the production engine bit-for-bit, for every
//     workload (soundness of the interception point);
//   * replay fidelity — re-running a PerturbHook's recorded decisions
//     through a ReplayHook reproduces the perturbed execution exactly (the
//     invariant the shrinker and the --replay artifact rest on);
//   * the differential final-state oracle is free of concurrency false
//     positives (admissible-set escalation) but rejects genuinely stale
//     final values;
//   * the shrinker returns a minimal failing reproducer, including
//     entangled perturbation pairs and fault-window minimization;
//   * negative end-to-end: the seeded buggy toy replica is found and shrunk
//     to <= 3 perturbations on EVERY seed, identically for any --jobs=N;
//   * positive end-to-end: the real PRISM-RS / KV / TX stacks survive the
//     same exploration budget with zero violations.
//
// Custom main: --jobs=N sets the sweep fan-out (like chaos_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/check/checker.h"
#include "src/check/history.h"
#include "src/explore/explore.h"
#include "src/explore/hooks.h"
#include "src/explore/oracle.h"
#include "src/explore/toy_replica.h"
#include "src/explore/workloads.h"
#include "src/harness/sweep.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"

namespace prism {

int g_explore_jobs = 0;  // --jobs=N; 0 resolves to DefaultJobs()

namespace explore {
namespace {

using check::Op;
using check::Outcome;
using check::OpType;
using check::ValueId;

// ---------- workload plumbing ----------

TEST(WorkloadTest, NamesRoundTrip) {
  for (Workload w :
       {Workload::kToy, Workload::kRs, Workload::kKv, Workload::kTx,
        Workload::kConsensus, Workload::kConsensusBuggy}) {
    Workload parsed;
    ASSERT_TRUE(WorkloadFromName(WorkloadName(w), &parsed));
    EXPECT_EQ(parsed, w);
  }
  Workload scratch;
  EXPECT_FALSE(WorkloadFromName("nonesuch", &scratch));
}

TEST(WorkloadTest, IdentityHookMatchesProductionEngine) {
  // The hooked lane with an identity pick is the production (when, seq)
  // order: same executed-event count, same recorded history, same fault
  // schedule — for every workload.
  for (Workload w :
       {Workload::kToy, Workload::kRs, Workload::kKv, Workload::kTx,
        Workload::kConsensus, Workload::kConsensusBuggy}) {
    for (uint64_t seed : {1ull, 7ull, 23ull}) {
      WorkloadOptions plain;
      plain.kind = w;
      plain.seed = seed;
      RunOutcome base = RunWorkload(plain);
      ASSERT_TRUE(base.ok) << WorkloadName(w) << " seed " << seed << ": "
                           << base.check_name << " " << base.error;

      IdentityHook hook(sim::Nanos(1000));
      WorkloadOptions hooked = plain;
      hooked.hook = &hook;
      RunOutcome same = RunWorkload(hooked);
      EXPECT_TRUE(same.ok) << WorkloadName(w) << " seed " << seed;
      EXPECT_EQ(same.executed_events, base.executed_events)
          << WorkloadName(w) << " seed " << seed;
      EXPECT_EQ(same.history_fingerprint, base.history_fingerprint)
          << WorkloadName(w) << " seed " << seed;
      EXPECT_EQ(same.fault_windows, base.fault_windows);
      EXPECT_EQ(same.fault_schedule, base.fault_schedule);
      EXPECT_GT(hook.steps(), 0u);
    }
  }
}

TEST(WorkloadTest, PerturbedRunReplaysExactly) {
  // Whatever a PerturbHook did — pass or fail — replaying its recorded
  // decision list reproduces the run exactly.
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    PerturbHook perturb(seed * 0xA5A5 + 1, sim::Nanos(1000), /*budget=*/3);
    WorkloadOptions wo;
    wo.kind = Workload::kToy;
    wo.seed = seed;
    wo.hook = &perturb;
    RunOutcome first = RunWorkload(wo);

    ReplayHook replay(sim::Nanos(1000), perturb.applied());
    wo.hook = &replay;
    RunOutcome second = RunWorkload(wo);

    EXPECT_EQ(second.ok, first.ok) << "seed " << seed;
    EXPECT_EQ(second.check_name, first.check_name) << "seed " << seed;
    EXPECT_EQ(second.executed_events, first.executed_events)
        << "seed " << seed;
    EXPECT_EQ(second.history_fingerprint, first.history_fingerprint)
        << "seed " << seed;
    EXPECT_EQ(replay.skipped(), 0) << "seed " << seed;
  }
}

TEST(WorkloadTest, PerturbHookRespectsBudget) {
  for (int budget : {0, 1, 2}) {
    PerturbHook hook(42, sim::Nanos(1000), budget, /*rate=*/1.0);
    WorkloadOptions wo;
    wo.kind = Workload::kToy;
    wo.seed = 9;
    wo.hook = &hook;
    (void)RunWorkload(wo);
    EXPECT_LE(static_cast<int>(hook.applied().size()), budget);
    if (budget == 0) EXPECT_TRUE(hook.applied().empty());
  }
}

// ---------- admissible final values ----------

Op MakeOp(int client, uint64_t key, OpType type, ValueId value,
          sim::TimePoint invoke, sim::TimePoint response, Outcome outcome) {
  Op op;
  op.client = client;
  op.key = key;
  op.type = type;
  op.value = value;
  op.invoke = invoke;
  op.response = response;
  op.outcome = outcome;
  op.done = true;
  return op;
}

Op Write(int client, uint64_t key, ValueId v, sim::TimePoint t0,
         sim::TimePoint t1, Outcome outcome = Outcome::kOk) {
  return MakeOp(client, key, OpType::kWrite, v, t0, t1, outcome);
}

bool Contains(const std::vector<ValueId>& vs, ValueId v) {
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

bool Contains(const std::vector<Perturbation>& ps, const Perturbation& p) {
  return std::find(ps.begin(), ps.end(), p) != ps.end();
}

bool Contains(const std::vector<int>& ws, int w) {
  return std::find(ws.begin(), ws.end(), w) != ws.end();
}

constexpr ValueId kInit = 0x1111;

TEST(AdmissibleFinalValuesTest, NoWritesIsInitialOnly) {
  std::vector<Op> history = {
      MakeOp(0, 5, OpType::kRead, kInit, 0, 10, Outcome::kOk)};
  EXPECT_EQ(check::AdmissibleFinalValues(history, 5, kInit),
            std::vector<ValueId>{kInit});
  // And an empty history behaves the same.
  EXPECT_EQ(check::AdmissibleFinalValues({}, 5, kInit),
            std::vector<ValueId>{kInit});
}

TEST(AdmissibleFinalValuesTest, StrictlyLaterOkWriteExcludesEarlier) {
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10),
                             Write(1, 1, 0xB, 20, 30)};
  const auto vs = check::AdmissibleFinalValues(history, 1, kInit);
  EXPECT_EQ(vs, std::vector<ValueId>{0xB});
}

TEST(AdmissibleFinalValuesTest, ConcurrentOkWritesBothAdmissible) {
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10),
                             Write(1, 1, 0xB, 5, 15)};
  const auto vs = check::AdmissibleFinalValues(history, 1, kInit);
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_TRUE(Contains(vs, 0xA));
  EXPECT_TRUE(Contains(vs, 0xB));
  EXPECT_FALSE(Contains(vs, kInit));  // some ok write definitely applied
}

TEST(AdmissibleFinalValuesTest, IndeterminateWriteNeverExcluded) {
  // The indeterminate write has an unbounded install time: no later ok
  // write can rule it out, and it rules out nothing itself.
  std::vector<Op> history = {
      Write(0, 1, 0xA, 0, 10),
      Write(1, 1, 0xB, 20, 25, Outcome::kIndeterminate)};
  const auto vs = check::AdmissibleFinalValues(history, 1, kInit);
  EXPECT_TRUE(Contains(vs, 0xA));
  EXPECT_TRUE(Contains(vs, 0xB));
  EXPECT_FALSE(Contains(vs, kInit));
}

TEST(AdmissibleFinalValuesTest, IndeterminateOnlyKeepsInitial) {
  // It may never have applied, so the initial value stays admissible.
  std::vector<Op> history = {
      Write(0, 1, 0xA, 0, 10, Outcome::kIndeterminate)};
  const auto vs = check::AdmissibleFinalValues(history, 1, kInit);
  EXPECT_TRUE(Contains(vs, 0xA));
  EXPECT_TRUE(Contains(vs, kInit));
}

TEST(AdmissibleFinalValuesTest, FailedWritesHaveNoEffect) {
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10, Outcome::kFailed)};
  EXPECT_EQ(check::AdmissibleFinalValues(history, 1, kInit),
            std::vector<ValueId>{kInit});
}

TEST(AdmissibleFinalValuesTest, KeysAreIndependent) {
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10),
                             Write(1, 2, 0xB, 0, 10)};
  EXPECT_EQ(check::AdmissibleFinalValues(history, 1, kInit),
            std::vector<ValueId>{0xA});
  EXPECT_EQ(check::AdmissibleFinalValues(history, 2, kInit),
            std::vector<ValueId>{0xB});
  EXPECT_EQ(check::AdmissibleFinalValues(history, 3, kInit),
            std::vector<ValueId>{kInit});
}

// ---------- differential oracle ----------

TEST(OracleTest, RefModelAppliesOkWritesInResponseOrder) {
  RefModel model(kInit);
  std::vector<Op> history = {
      // Program order != response order: 0xB responds last and wins.
      Write(0, 1, 0xB, 5, 40),
      Write(1, 1, 0xA, 0, 10),
      Write(0, 2, 0xC, 0, 10),
      Write(1, 2, 0xD, 20, 25, Outcome::kFailed),
      Write(0, 3, 0xE, 0, 10, Outcome::kIndeterminate),
  };
  model.Replay(history);
  EXPECT_EQ(model.Expected(1), 0xB);
  EXPECT_EQ(model.Expected(2), 0xC);  // failed write ignored
  EXPECT_EQ(model.Expected(3), kInit);  // indeterminate not canonical
  EXPECT_EQ(model.Expected(99), kInit);  // untouched key
}

TEST(OracleTest, MatchingFinalStatePasses) {
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10),
                             Write(1, 1, 0xB, 20, 30)};
  const auto r = DiffFinalState(history, {{1, 0xB}}, kInit);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(OracleTest, RacingWriteMismatchIsNotViolation) {
  // The reference model expects the later-response write, but the observed
  // value is the OTHER racing write — admissible, so no violation.
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10),
                             Write(1, 1, 0xB, 5, 15)};
  const auto r = DiffFinalState(history, {{1, 0xA}}, kInit);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(OracleTest, StaleFinalValueIsViolation) {
  // 0xA was definitively overwritten by a strictly-later acknowledged
  // write; observing it after quiescence is a lost update.
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10),
                             Write(1, 1, 0xB, 20, 30)};
  const auto r = DiffFinalState(history, {{1, 0xA}}, kInit);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(OracleTest, NeverWrittenValueIsViolation) {
  std::vector<Op> history = {Write(0, 1, 0xA, 0, 10)};
  const auto r = DiffFinalState(history, {{1, 0xDEAD}}, kInit);
  EXPECT_FALSE(r.ok);
}

TEST(OracleTest, UntouchedKeyObservingInitialPasses) {
  const auto r = DiffFinalState({}, {{7, kInit}}, kInit);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(DiffFinalState({}, {{7, 0x2222}}, kInit).ok);
}

// ---------- reproducer artifact ----------

TEST(ReproducerTest, FormatParseRoundTrip) {
  Reproducer repro;
  repro.kind = Workload::kRs;
  repro.seed = 77;
  repro.delta = sim::Nanos(1500);
  repro.perturbations = {{12, 3}, {40, 1}, {90, 2}};
  repro.disabled_windows = {0, 3};
  repro.check_name = "linearizability";

  Reproducer back;
  std::string error;
  ASSERT_TRUE(ParseReproducer(FormatReproducer(repro), &back, &error))
      << error;
  EXPECT_EQ(back.kind, repro.kind);
  EXPECT_EQ(back.seed, repro.seed);
  EXPECT_EQ(back.delta, repro.delta);
  EXPECT_EQ(back.perturbations, repro.perturbations);
  EXPECT_EQ(back.disabled_windows, repro.disabled_windows);
  EXPECT_EQ(back.check_name, repro.check_name);
}

TEST(ReproducerTest, ParseToleratesCommentsAndBlanks) {
  Reproducer out;
  std::string error;
  EXPECT_TRUE(ParseReproducer(
      "prism-explore v1\n# a comment\n\nworkload toy\nseed 3\n", &out,
      &error))
      << error;
  EXPECT_EQ(out.kind, Workload::kToy);
  EXPECT_EQ(out.seed, 3u);
}

TEST(ReproducerTest, ParseRejectsMalformedInput) {
  Reproducer out;
  std::string error;
  // Wrong header.
  EXPECT_FALSE(ParseReproducer("prism-explore v9\nseed 1\n", &out, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  // Unknown directive.
  EXPECT_FALSE(
      ParseReproducer("prism-explore v1\nfrobnicate 1\n", &out, &error));
  // Unknown workload name.
  EXPECT_FALSE(
      ParseReproducer("prism-explore v1\nworkload zork\n", &out, &error));
  // Perturbation steps must strictly increase.
  EXPECT_FALSE(ParseReproducer(
      "prism-explore v1\nperturb 9 1\nperturb 9 2\n", &out, &error));
  // Negative delta / window.
  EXPECT_FALSE(ParseReproducer("prism-explore v1\ndelta -5\n", &out, &error));
  EXPECT_FALSE(
      ParseReproducer("prism-explore v1\ndisable-window -1\n", &out, &error));
}

TEST(ReproducerTest, FileRoundTripAndMissingFile) {
  Reproducer repro;
  repro.kind = Workload::kToy;
  repro.seed = 5;
  repro.delta = sim::Nanos(1000);
  repro.perturbations = {{3, 1}};
  const std::string path = ::testing::TempDir() + "explore_repro_test.txt";
  std::string error;
  ASSERT_TRUE(SaveReproducerFile(path, repro, &error)) << error;
  Reproducer back;
  ASSERT_TRUE(LoadReproducerFile(path, &back, &error)) << error;
  EXPECT_EQ(back.seed, repro.seed);
  EXPECT_EQ(back.perturbations, repro.perturbations);
  EXPECT_FALSE(
      LoadReproducerFile(path + ".nonexistent", &back, &error));
  EXPECT_FALSE(error.empty());
}

// ---------- shrinker ----------

TEST(ShrinkTest, RemovesEveryRedundantPerturbation) {
  // Failure depends only on perturbation {10, 1}; the rest is noise.
  const Perturbation needed{10, 1};
  auto runner = [&](const std::vector<Perturbation>& p,
                    const std::vector<int>& disabled) {
    RunOutcome o;
    o.ok = !Contains(p, needed);
    if (!o.ok) o.check_name = "synthetic";
    return o;
  };
  std::vector<Perturbation> initial = {{2, 1}, {5, 3}, needed, {30, 2}};
  const ShrinkResult res = Shrink(runner, initial, /*fault_windows=*/0);
  EXPECT_EQ(res.perturbations, std::vector<Perturbation>{needed});
  EXPECT_EQ(res.check_name, "synthetic");
  EXPECT_GT(res.runs, 0);
}

TEST(ShrinkTest, FindsEntangledPairAndMinimizesWindows) {
  // Failure needs BOTH {10,1} and {20,2} (removing either alone passes —
  // the singles pass can never separate them; the pairs pass must) AND
  // fault window 2 enabled.
  const Perturbation a{10, 1}, b{20, 2};
  auto runner = [&](const std::vector<Perturbation>& p,
                    const std::vector<int>& disabled) {
    RunOutcome o;
    const bool window2_enabled = !Contains(disabled, 2);
    o.ok = !(Contains(p, a) && Contains(p, b) && window2_enabled);
    if (!o.ok) o.check_name = "synthetic";
    return o;
  };
  std::vector<Perturbation> initial = {{1, 1}, a, {15, 2}, b, {44, 1}};
  const ShrinkResult res = Shrink(runner, initial, /*fault_windows=*/4);
  EXPECT_EQ(res.perturbations, (std::vector<Perturbation>{a, b}));
  // Every window except the required one is disabled away.
  EXPECT_EQ(res.disabled_windows, (std::vector<int>{0, 1, 3}));
  EXPECT_FALSE(Contains(res.disabled_windows, 2));
}

// ---------- chaos fault windows ----------

TEST(FaultWindowTest, EventsComeInBalancedPairs) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(fabric.AddHost("h" + std::to_string(i)));
  }
  chaos::ChaosOptions opts;
  opts.seed = 11;
  opts.crashable = hosts;
  opts.partition_hosts = hosts;
  chaos::ChaosMonkey monkey(&fabric, opts);
  ASSERT_GT(monkey.window_count(), 0);
  // Every scheduled event belongs to a window, and each window holds
  // exactly its start/stop pair.
  std::vector<int> per_window(static_cast<size_t>(monkey.window_count()), 0);
  for (const chaos::FaultEvent& ev : monkey.schedule()) {
    ASSERT_GE(ev.window, 0);
    ASSERT_LT(ev.window, monkey.window_count());
    per_window[static_cast<size_t>(ev.window)]++;
  }
  for (int count : per_window) EXPECT_EQ(count, 2);
}

TEST(FaultWindowTest, DisablingEveryWindowInjectsNothing) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(fabric.AddHost("h" + std::to_string(i)));
  }
  chaos::ChaosOptions opts;
  opts.seed = 11;
  opts.crashable = hosts;
  opts.partition_hosts = hosts;
  chaos::ChaosMonkey monkey(&fabric, opts);
  ASSERT_GT(monkey.window_count(), 0);
  for (int w = 0; w < monkey.window_count(); ++w) {
    EXPECT_FALSE(monkey.IsWindowDisabled(w));
    monkey.SetWindowDisabled(w, true);
    EXPECT_TRUE(monkey.IsWindowDisabled(w));
  }
  // Disabling filters at Arm() only; the built schedule is untouched (so a
  // shrunk run replays surviving windows at their original times).
  EXPECT_FALSE(monkey.schedule().empty());
  monkey.Arm();
  sim.Run();
  EXPECT_EQ(monkey.crashes_injected(), 0);
  EXPECT_EQ(monkey.partitions_injected(), 0);
  EXPECT_EQ(monkey.loss_bursts_injected(), 0);
  EXPECT_EQ(monkey.latency_spikes_injected(), 0);
  for (net::HostId h : hosts) EXPECT_TRUE(fabric.IsHostUp(h));
}

// ---------- end-to-end: the buggy toy replica ----------

// Tuned with tools/explore_main: budget 3 keeps the minimal counterexample
// small while 500 perturbed runs (stopping at the first hit; half burst at
// the prefix, half slide across the schedule — see ExploreSeed) find the
// bug on every seed in [1, 100]. The hungriest seed (19) needs ~310 runs.
ExploreOptions ToyOptions() {
  ExploreOptions opts;
  opts.runs = 500;
  opts.budget = 3;
  opts.rate = 0.3;
  opts.delta = sim::Nanos(1000);
  opts.stop_on_failure = true;
  opts.shrink = true;
  return opts;
}

TEST(ToyReplicaTest, CanonicalScheduleIsCorrect) {
  // The bug is schedule-dependent: without perturbation every seed passes,
  // which is why a plain chaos sweep can never catch it.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadOptions wo;
    wo.kind = Workload::kToy;
    wo.seed = seed;
    RunOutcome o = RunWorkload(wo);
    EXPECT_TRUE(o.ok) << "seed " << seed << ": " << o.check_name << " "
                      << o.error;
  }
}

TEST(ToyReplicaTest, ExplorerFindsAndShrinksInjectedBugOnEverySeed) {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 100; ++s) seeds.push_back(s);
  const SweepReport report =
      ExploreSweep(Workload::kToy, seeds, ToyOptions(), g_explore_jobs);
  EXPECT_EQ(report.seeds, 100);
  EXPECT_EQ(report.failing_seeds, 100);
  for (const SeedReport& rep : report.reports) {
    ASSERT_GT(rep.failures, 0) << "seed " << rep.seed << " missed the bug";
    ASSERT_TRUE(rep.repro.has_value()) << "seed " << rep.seed;
    // Minimal counterexample: at least one reorder is required, and the
    // shrinker gets it down to at most three.
    EXPECT_GE(rep.repro->perturbations.size(), 1u) << "seed " << rep.seed;
    EXPECT_LE(rep.repro->perturbations.size(), 3u) << "seed " << rep.seed;
    // The minimized artifact still reproduces the violation.
    RunOutcome replay = ReplayReproducer(*rep.repro);
    EXPECT_FALSE(replay.ok) << "seed " << rep.seed;
    EXPECT_EQ(replay.check_name, rep.repro->check_name)
        << "seed " << rep.seed;
    // And it survives the text round trip.
    Reproducer back;
    std::string error;
    ASSERT_TRUE(ParseReproducer(FormatReproducer(*rep.repro), &back, &error))
        << error;
    EXPECT_EQ(back.perturbations, rep.repro->perturbations);
  }
}

TEST(ToyReplicaTest, SweepIsDeterministicAcrossJobCounts) {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 24; ++s) seeds.push_back(s);
  const SweepReport serial =
      ExploreSweep(Workload::kToy, seeds, ToyOptions(), /*jobs=*/1);
  const SweepReport parallel =
      ExploreSweep(Workload::kToy, seeds, ToyOptions(), /*jobs=*/4);
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  EXPECT_EQ(serial.total_runs, parallel.total_runs);
  EXPECT_EQ(serial.failing_seeds, parallel.failing_seeds);
  for (size_t i = 0; i < serial.reports.size(); ++i) {
    const SeedReport& a = serial.reports[i];
    const SeedReport& b = parallel.reports[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.shrink_runs, b.shrink_runs);
    EXPECT_EQ(a.check_name, b.check_name);
    ASSERT_EQ(a.repro.has_value(), b.repro.has_value());
    if (a.repro.has_value()) {
      EXPECT_EQ(a.repro->perturbations, b.repro->perturbations)
          << "seed " << a.seed;
      EXPECT_EQ(a.repro->disabled_windows, b.repro->disabled_windows)
          << "seed " << a.seed;
    }
  }
}

// ---------- end-to-end: the real stacks stay clean ----------

TEST(RealStackTest, NoViolationsUnderBoundedReordering) {
  // The acceptance sweep: 100 seeds x 4 perturbed runs per stack. A failure
  // here is either a genuine protocol bug or an unsound reordering — both
  // stop the PR.
  ExploreOptions opts;
  opts.runs = 4;
  opts.budget = 8;
  opts.rate = 0.3;
  opts.delta = sim::Nanos(1000);
  opts.stop_on_failure = true;
  opts.shrink = true;
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 100; ++s) seeds.push_back(s);
  for (Workload w : {Workload::kRs, Workload::kKv, Workload::kTx,
                     Workload::kConsensus}) {
    const SweepReport report = ExploreSweep(w, seeds, opts, g_explore_jobs);
    EXPECT_EQ(report.failing_seeds, 0) << WorkloadName(w);
    for (const SeedReport& rep : report.reports) {
      EXPECT_EQ(rep.failures, 0)
          << WorkloadName(w) << " seed " << rep.seed << ": "
          << rep.check_name << "\n"
          << rep.error
          << (rep.repro.has_value() ? "\n" + FormatReproducer(*rep.repro)
                                    : std::string());
    }
  }
}

// ---------- end-to-end: sync suite reproducer round trip ----------

// The defaults tools/explore_main resolves for the sync workloads
// (DefaultRuns/DefaultDelta); seeds 3, 11 and 20 of sync_buggy violate
// linearizability under them and shrink to <= 5 perturbations.
ExploreOptions SyncExploreOptions() {
  ExploreOptions opts;
  opts.runs = DefaultRuns(Workload::kSyncBuggy);
  opts.delta = DefaultDelta(Workload::kSyncBuggy);
  opts.budget = 8;
  opts.rate = 0.3;
  opts.stop_on_failure = true;
  opts.shrink = true;
  return opts;
}

TEST(SyncReproducerTest, ShrunkBuggyReproTextRoundTripsAndReplays) {
  const SeedReport rep =
      ExploreSeed(Workload::kSyncBuggy, /*seed=*/3, SyncExploreOptions());
  ASSERT_GT(rep.failures, 0) << "positive control missed the torn read";
  ASSERT_TRUE(rep.repro.has_value());
  EXPECT_GE(rep.repro->perturbations.size(), 1u);
  EXPECT_LE(rep.repro->perturbations.size(), 5u);
  EXPECT_TRUE(rep.repro->disabled_windows.empty());  // chaos-free workload

  // The artifact survives the "prism-explore v1" text round trip and the
  // parsed-back copy replays to the same violation — this is exactly what
  // tools/explore_main --replay loads from disk (exit 0 path).
  Reproducer back;
  std::string error;
  ASSERT_TRUE(ParseReproducer(FormatReproducer(*rep.repro), &back, &error))
      << error;
  EXPECT_EQ(back.kind, Workload::kSyncBuggy);
  EXPECT_EQ(back.perturbations, rep.repro->perturbations);
  RunOutcome replay = ReplayReproducer(back);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.check_name, rep.repro->check_name);
  EXPECT_EQ(replay.error, rep.error);

  // Tampering pins the --replay exit-2 path: the shrunk artifact is
  // 1-minimal, so dropping any single perturbation stops it reproducing.
  for (size_t drop = 0; drop < back.perturbations.size(); ++drop) {
    Reproducer tampered = back;
    tampered.perturbations.erase(tampered.perturbations.begin() +
                                 static_cast<std::ptrdiff_t>(drop));
    RunOutcome weak = ReplayReproducer(tampered);
    EXPECT_TRUE(weak.ok) << "dropping perturbation " << drop
                         << " still reproduced — artifact not minimal";
  }
}

TEST(SyncReproducerTest, BuggySweepIsDeterministicAcrossJobCounts) {
  // Same shrunk artifacts regardless of sweep fan-out: the bytes a user
  // saves with --repro-out are independent of --jobs.
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 12; ++s) seeds.push_back(s);
  const SweepReport serial =
      ExploreSweep(Workload::kSyncBuggy, seeds, SyncExploreOptions(),
                   /*jobs=*/1);
  const SweepReport parallel =
      ExploreSweep(Workload::kSyncBuggy, seeds, SyncExploreOptions(),
                   /*jobs=*/8);
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  EXPECT_EQ(serial.total_runs, parallel.total_runs);
  EXPECT_EQ(serial.failing_seeds, parallel.failing_seeds);
  EXPECT_GT(serial.failing_seeds, 0) << "expected seeds 3 and 11 to violate";
  for (size_t i = 0; i < serial.reports.size(); ++i) {
    const SeedReport& a = serial.reports[i];
    const SeedReport& b = parallel.reports[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.error, b.error);
    ASSERT_EQ(a.repro.has_value(), b.repro.has_value());
    if (a.repro.has_value()) {
      EXPECT_EQ(FormatReproducer(*a.repro), FormatReproducer(*b.repro))
          << "seed " << a.seed;
    }
  }
}

// ---------- end-to-end: consensus split brain (revoke without quorum) ----

// The defaults tools/explore_main resolves for consensus_buggy
// (DefaultRuns/DefaultDelta): 128 sliding-burst runs at delta 2 µs find the
// split brain on every seed in [1, 100].
ExploreOptions ConsensusExploreOptions() {
  ExploreOptions opts;
  opts.runs = DefaultRuns(Workload::kConsensusBuggy);
  opts.delta = DefaultDelta(Workload::kConsensusBuggy);
  opts.budget = 8;
  opts.rate = 0.3;
  opts.stop_on_failure = true;
  opts.shrink = true;
  return opts;
}

TEST(ConsensusReproducerTest, CanonicalScheduleIsCorrect) {
  // Without reordering, the usurper's revoke beats the deposed leader's
  // commit chain at the shared replica, the write ends indeterminate, and
  // every canonical schedule is clean — the split brain is purely a
  // schedule race, invisible to a plain chaos sweep.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadOptions wo;
    wo.kind = Workload::kConsensusBuggy;
    wo.seed = seed;
    RunOutcome o = RunWorkload(wo);
    EXPECT_TRUE(o.ok) << "seed " << seed << ": " << o.check_name << " "
                      << o.error;
  }
}

TEST(ConsensusReproducerTest, SplitBrainFoundShrunkAndReplayed) {
  const SeedReport rep = ExploreSeed(Workload::kConsensusBuggy, /*seed=*/3,
                                     ConsensusExploreOptions());
  ASSERT_GT(rep.failures, 0) << "positive control missed the split brain";
  EXPECT_EQ(rep.check_name, "linearizability");
  ASSERT_TRUE(rep.repro.has_value());
  // One delivery swap is the whole bug: the shrinker gets it down to at
  // most three reorders (usually exactly one).
  EXPECT_GE(rep.repro->perturbations.size(), 1u);
  EXPECT_LE(rep.repro->perturbations.size(), 3u);
  EXPECT_TRUE(rep.repro->disabled_windows.empty());  // chaos-free workload

  Reproducer back;
  std::string error;
  ASSERT_TRUE(ParseReproducer(FormatReproducer(*rep.repro), &back, &error))
      << error;
  EXPECT_EQ(back.kind, Workload::kConsensusBuggy);
  RunOutcome replay = ReplayReproducer(back);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.check_name, rep.repro->check_name);
  EXPECT_EQ(replay.error, rep.error);

  // 1-minimality: dropping any surviving perturbation stops it reproducing.
  for (size_t drop = 0; drop < back.perturbations.size(); ++drop) {
    Reproducer tampered = back;
    tampered.perturbations.erase(tampered.perturbations.begin() +
                                 static_cast<std::ptrdiff_t>(drop));
    RunOutcome weak = ReplayReproducer(tampered);
    EXPECT_TRUE(weak.ok) << "dropping perturbation " << drop
                         << " still reproduced — artifact not minimal";
  }
}

TEST(ConsensusReproducerTest, BuggySweepIsDeterministicAcrossJobCounts) {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 8; ++s) seeds.push_back(s);
  const SweepReport serial = ExploreSweep(
      Workload::kConsensusBuggy, seeds, ConsensusExploreOptions(), /*jobs=*/1);
  const SweepReport parallel = ExploreSweep(
      Workload::kConsensusBuggy, seeds, ConsensusExploreOptions(), /*jobs=*/8);
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  EXPECT_EQ(serial.total_runs, parallel.total_runs);
  EXPECT_EQ(serial.failing_seeds, parallel.failing_seeds);
  EXPECT_EQ(serial.failing_seeds, 8) << "every seed should find the bug";
  for (size_t i = 0; i < serial.reports.size(); ++i) {
    const SeedReport& a = serial.reports[i];
    const SeedReport& b = parallel.reports[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.error, b.error);
    ASSERT_EQ(a.repro.has_value(), b.repro.has_value());
    if (a.repro.has_value()) {
      EXPECT_EQ(FormatReproducer(*a.repro), FormatReproducer(*b.repro))
          << "seed " << a.seed;
    }
  }
}

}  // namespace
}  // namespace explore
}  // namespace prism

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      prism::g_explore_jobs = std::stoi(arg.substr(7));
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
