// Tests for the transaction systems: PRISM-TX (§8.2) and the FaRM baseline
// (§8.1) — basic RMW behaviour, conflict aborts, a serializability checker
// over concurrent histories, a bank-transfer invariant, and latency
// calibration against §8.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/tx/farm.h"
#include "src/tx/prism_tx.h"
#include "src/sim/task.h"

namespace prism::tx {
namespace {

using sim::Task;
using sim::ToMicros;

constexpr uint64_t kValueSize = 64;

Bytes ValueOf(uint64_t x) {
  Bytes v(kValueSize, 0);
  StoreU64(v.data(), x);
  return v;
}
uint64_t ValueTo(const Bytes& v) { return LoadU64(v.data()); }

// ---- serializability checker ----
//
// For timestamp-ordered OCC: a committed transaction T that read (key, RC)
// must not coexist with a committed write W on the same key with
// RC < TS(W) < TS(T) — otherwise T read stale data and the timestamp order
// is not a serial order. Committed writes themselves must have unique
// timestamps per key.
struct CommittedTxn {
  uint64_t ts = 0;  // packed commit timestamp
  std::vector<std::pair<uint64_t, uint64_t>> reads;  // (key, observed rc)
  std::vector<uint64_t> writes;                      // keys written
};

::testing::AssertionResult CheckSerializable(
    const std::vector<CommittedTxn>& txns) {
  std::map<uint64_t, std::vector<uint64_t>> writes_by_key;  // key -> ts list
  for (const auto& t : txns) {
    for (uint64_t k : t.writes) writes_by_key[k].push_back(t.ts);
  }
  for (auto& [key, list] : writes_by_key) {
    std::sort(list.begin(), list.end());
    if (std::adjacent_find(list.begin(), list.end()) != list.end()) {
      return ::testing::AssertionFailure()
             << "duplicate commit timestamp on key " << key;
    }
  }
  for (const auto& t : txns) {
    for (const auto& [key, rc] : t.reads) {
      auto it = writes_by_key.find(key);
      if (it == writes_by_key.end()) continue;
      for (uint64_t wts : it->second) {
        if (wts > rc && wts < t.ts) {
          return ::testing::AssertionFailure()
                 << "txn ts=" << t.ts << " read key " << key << " at rc="
                 << rc << " but committed write ts=" << wts
                 << " intervenes (stale read)";
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- PRISM-TX ----

class PrismTxTest : public ::testing::Test {
 protected:
  PrismTxTest() : fabric_(&sim_, net::CostModel::EvalCluster40G()) {
    PrismTxOptions opts;
    opts.keys_per_shard = 256;
    opts.value_size = kValueSize;
    opts.buffers_per_shard = 4096;
    cluster_ = std::make_unique<PrismTxCluster>(&fabric_, 1, opts);
    for (uint64_t k = 0; k < 64; ++k) {
      PRISM_CHECK(cluster_->LoadKey(k, ValueOf(1000 + k)).ok());
    }
  }

  std::unique_ptr<PrismTxClient> NewClient(uint16_t id) {
    net::HostId host = fabric_.AddHost("txc-" + std::to_string(id));
    return std::make_unique<PrismTxClient>(&fabric_, host, cluster_.get(),
                                           id);
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  std::unique_ptr<PrismTxCluster> cluster_;
};

TEST_F(PrismTxTest, ReadLoadedKey) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    Transaction txn = client->Begin();
    auto v = co_await client->Read(txn, 7);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(ValueTo(*v), 1007u);
    EXPECT_TRUE((co_await client->Commit(txn)).ok());
  });
  sim_.Run();
}

TEST_F(PrismTxTest, ReadUnloadedKeyIsNotFound) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    Transaction txn = client->Begin();
    auto v = co_await client->Read(txn, 200);
    EXPECT_EQ(v.code(), Code::kNotFound);
  });
  sim_.Run();
}

TEST_F(PrismTxTest, ReadModifyWriteCommit) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    Transaction txn = client->Begin();
    auto v = co_await client->Read(txn, 3);
    EXPECT_TRUE(v.ok());
    client->Write(txn, 3, ValueOf(ValueTo(*v) + 1));
    EXPECT_TRUE((co_await client->Commit(txn)).ok());
    Transaction txn2 = client->Begin();
    auto v2 = co_await client->Read(txn2, 3);
    EXPECT_TRUE(v2.ok());
    EXPECT_EQ(ValueTo(*v2), 1004u);
  });
  sim_.Run();
}

TEST_F(PrismTxTest, ReadYourOwnWrites) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    Transaction txn = client->Begin();
    client->Write(txn, 5, ValueOf(42));
    auto v = co_await client->Read(txn, 5);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(ValueTo(*v), 42u);
  });
  sim_.Run();
}

TEST_F(PrismTxTest, WriteWriteConflictAborts) {
  // Two transactions read the same key, then both try to commit writes.
  // Exactly one must win; the loser aborts on read or write validation.
  auto c1 = NewClient(1);
  auto c2 = NewClient(2);
  Status s1, s2;
  sim::Spawn([&]() -> Task<void> {
    Transaction t = c1->Begin();
    auto v = co_await c1->Read(t, 0);
    EXPECT_TRUE(v.ok());
    c1->Write(t, 0, ValueOf(111));
    s1 = co_await c1->Commit(t);
  });
  sim::Spawn([&]() -> Task<void> {
    Transaction t = c2->Begin();
    auto v = co_await c2->Read(t, 0);
    EXPECT_TRUE(v.ok());
    c2->Write(t, 0, ValueOf(222));
    s2 = co_await c2->Commit(t);
  });
  sim_.Run();
  // Both may commit only if timestamps serialize cleanly; with identical
  // read versions one must abort. Accept: at least one committed, and if
  // both "committed", the final value is from the higher timestamp.
  EXPECT_TRUE(s1.ok() || s2.ok());
  bool final_checked = false;
  sim::Spawn([&]() -> Task<void> {
    Transaction t = c1->Begin();
    auto v = co_await c1->Read(t, 0);
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(ValueTo(*v) == 111u || ValueTo(*v) == 222u);
    final_checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(final_checked);
}

TEST_F(PrismTxTest, StaleReadAborts) {
  auto reader = NewClient(1);
  auto writer = NewClient(2);
  sim::Spawn([&]() -> Task<void> {
    // Reader reads key 1 into its read set...
    Transaction rt = reader->Begin();
    auto v = co_await reader->Read(rt, 1);
    EXPECT_TRUE(v.ok());
    // ...then a writer commits a new version of key 1...
    Transaction wt = writer->Begin();
    auto wv = co_await writer->Read(wt, 1);
    EXPECT_TRUE(wv.ok());
    writer->Write(wt, 1, ValueOf(777));
    EXPECT_TRUE((co_await writer->Commit(wt)).ok());
    // ...and the reader also writes (so validation matters) and commits:
    // its read of key 1 is stale, so it must abort.
    reader->Write(rt, 2, ValueOf(888));
    Status s = co_await reader->Commit(rt);
    EXPECT_EQ(s.code(), Code::kAborted);
  });
  sim_.Run();
}

TEST_F(PrismTxTest, BankTransferInvariant) {
  // 8 clients transfer random amounts between 8 accounts; the total balance
  // is invariant under serializable execution.
  constexpr uint64_t kInitial = 1000;
  constexpr int kAccounts = 8;
  std::vector<std::unique_ptr<PrismTxClient>> clients;
  for (uint16_t c = 1; c <= 8; ++c) clients.push_back(NewClient(c));
  int attempted = 0, committed = 0;
  for (int c = 0; c < 8; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(c) + 99);
      for (int i = 0; i < 10; ++i) {
        uint64_t from = rng.NextBelow(kAccounts);
        uint64_t to = rng.NextBelow(kAccounts);
        if (from == to) continue;
        attempted++;
        PrismTxClient* cl = clients[static_cast<size_t>(c)].get();
        Transaction t = cl->Begin();
        auto vf = co_await cl->Read(t, from);
        auto vt = co_await cl->Read(t, to);
        if (!vf.ok() || !vt.ok()) continue;
        uint64_t amount = 1 + rng.NextBelow(50);
        if (ValueTo(*vf) < amount) continue;
        cl->Write(t, from, ValueOf(ValueTo(*vf) - amount));
        cl->Write(t, to, ValueOf(ValueTo(*vt) + amount));
        Status s = co_await cl->Commit(t);
        if (s.ok()) committed++;
      }
    });
  }
  sim_.Run();
  EXPECT_GT(committed, 0);
  // Check the invariant with a fresh read-only snapshot.
  uint64_t total = 0;
  bool snapshot_done = false;
  sim::Spawn([&]() -> Task<void> {
    Transaction t = clients[0]->Begin();
    for (uint64_t a = 0; a < kAccounts; ++a) {
      auto v = co_await clients[0]->Read(t, a);
      EXPECT_TRUE(v.ok());
      total += ValueTo(*v);
    }
    snapshot_done = true;
  });
  sim_.Run();
  EXPECT_TRUE(snapshot_done);
  // Accounts were loaded with 1000+k for k in 0..7.
  uint64_t expected = 0;
  for (uint64_t a = 0; a < kAccounts; ++a) expected += kInitial + a;
  EXPECT_EQ(total, expected);
}

TEST_F(PrismTxTest, ConcurrentHistoryIsSerializable) {
  std::vector<std::unique_ptr<PrismTxClient>> clients;
  for (uint16_t c = 1; c <= 6; ++c) clients.push_back(NewClient(c));
  std::vector<CommittedTxn> committed;
  for (int c = 0; c < 6; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(c) * 7 + 1);
      PrismTxClient* cl = clients[static_cast<size_t>(c)].get();
      for (int i = 0; i < 12; ++i) {
        Transaction t = cl->Begin();
        CommittedTxn record;
        uint64_t k1 = rng.NextBelow(8);
        uint64_t k2 = rng.NextBelow(8);
        auto v1 = co_await cl->Read(t, k1);
        if (!v1.ok()) continue;
        record.reads.push_back({k1, t.read_set.back().rc});
        if (k2 != k1) {
          auto v2 = co_await cl->Read(t, k2);
          if (!v2.ok()) continue;
          record.reads.push_back({k2, t.read_set.back().rc});
        }
        cl->Write(t, k1, ValueOf(rng.NextU64() % 10000));
        record.writes.push_back(k1);
        // Commit timestamps are not exposed; recover from the reinstalled
        // version by re-reading — instead record ts via a follow-up read.
        Status s = co_await cl->Commit(t);
        if (!s.ok()) continue;
        Transaction peek = cl->Begin();
        (void)co_await cl->Read(peek, k1);
        // The rc observed now is >= our commit ts; to keep the checker
        // sound we instead reconstruct ts from the read-back rc only if it
        // identifies our own write. Simplification: use the read-back rc
        // when its client id matches ours.
        uint64_t rc = peek.read_set.back().rc;
        if ((rc & 0xffff) == static_cast<uint64_t>(c + 1)) {
          record.ts = rc;
          committed.push_back(record);
        }
      }
    });
  }
  sim_.Run();
  EXPECT_GT(committed.size(), 0u);
  EXPECT_TRUE(CheckSerializable(committed));
}

TEST_F(PrismTxTest, CommitLatencyMatchesPaper) {
  // §8.3: PRISM-TX is ≈5.5 µs faster than FaRM; an RMW txn (read + prepare
  // + commit, each one round trip of ~6 µs) lands ≈ 18 µs end to end.
  auto client = NewClient(1);
  double txn_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    Transaction t = client->Begin();
    auto v = co_await client->Read(t, 0);
    EXPECT_TRUE(v.ok());
    client->Write(t, 0, ValueOf(1));
    EXPECT_TRUE((co_await client->Commit(t)).ok());
    txn_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(txn_us, 18.0, 2.5);
}

// ---- FaRM ----

class FarmTest : public ::testing::Test {
 protected:
  FarmTest() : fabric_(&sim_, net::CostModel::EvalCluster40G()) {
    FarmOptions opts;
    opts.keys_per_shard = 256;
    opts.value_size = kValueSize;
    cluster_ = std::make_unique<FarmCluster>(&fabric_, 1, opts);
    for (uint64_t k = 0; k < 64; ++k) {
      PRISM_CHECK(cluster_->LoadKey(k, ValueOf(1000 + k)).ok());
    }
  }

  std::unique_ptr<FarmClient> NewClient(uint16_t id) {
    net::HostId host = fabric_.AddHost("farmc-" + std::to_string(id));
    return std::make_unique<FarmClient>(&fabric_, host, cluster_.get(), id);
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  std::unique_ptr<FarmCluster> cluster_;
};

TEST_F(FarmTest, ReadModifyWriteCommit) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    Transaction t = client->Begin();
    auto v = co_await client->Read(t, 3);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(ValueTo(*v), 1003u);
    client->Write(t, 3, ValueOf(2000));
    EXPECT_TRUE((co_await client->Commit(t)).ok());
    Transaction t2 = client->Begin();
    auto v2 = co_await client->Read(t2, 3);
    EXPECT_TRUE(v2.ok());
    EXPECT_EQ(ValueTo(*v2), 2000u);
  });
  sim_.Run();
}

TEST_F(FarmTest, StaleReadAborts) {
  auto a = NewClient(1);
  auto b = NewClient(2);
  sim::Spawn([&]() -> Task<void> {
    Transaction ta = a->Begin();
    auto v = co_await a->Read(ta, 1);
    EXPECT_TRUE(v.ok());
    // b commits an update to key 1.
    Transaction tb = b->Begin();
    auto vb = co_await b->Read(tb, 1);
    EXPECT_TRUE(vb.ok());
    b->Write(tb, 1, ValueOf(5));
    EXPECT_TRUE((co_await b->Commit(tb)).ok());
    // a's commit validates its read set and must abort.
    auto v2 = co_await a->Read(ta, 2);
    EXPECT_TRUE(v2.ok());
    a->Write(ta, 2, ValueOf(6));
    Status s = co_await a->Commit(ta);
    EXPECT_EQ(s.code(), Code::kAborted);
  });
  sim_.Run();
}

TEST_F(FarmTest, LockConflictAborts) {
  // Two writers on the same key with the same read version: the second
  // lock RPC must fail (version changed or lock held).
  auto a = NewClient(1);
  auto b = NewClient(2);
  Status sa, sb;
  sim::Spawn([&]() -> Task<void> {
    Transaction t = a->Begin();
    auto v = co_await a->Read(t, 0);
    EXPECT_TRUE(v.ok());
    a->Write(t, 0, ValueOf(10));
    sa = co_await a->Commit(t);
  });
  sim::Spawn([&]() -> Task<void> {
    Transaction t = b->Begin();
    auto v = co_await b->Read(t, 0);
    EXPECT_TRUE(v.ok());
    b->Write(t, 0, ValueOf(20));
    sb = co_await b->Commit(t);
  });
  sim_.Run();
  EXPECT_TRUE(sa.ok() != sb.ok());  // exactly one wins
}

TEST_F(FarmTest, BankTransferInvariant) {
  constexpr int kAccounts = 8;
  std::vector<std::unique_ptr<FarmClient>> clients;
  for (uint16_t c = 1; c <= 6; ++c) clients.push_back(NewClient(c));
  int committed = 0;
  for (int c = 0; c < 6; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(c) + 7);
      for (int i = 0; i < 8; ++i) {
        uint64_t from = rng.NextBelow(kAccounts);
        uint64_t to = rng.NextBelow(kAccounts);
        if (from == to) continue;
        FarmClient* cl = clients[static_cast<size_t>(c)].get();
        Transaction t = cl->Begin();
        auto vf = co_await cl->Read(t, from);
        auto vt = co_await cl->Read(t, to);
        if (!vf.ok() || !vt.ok()) continue;
        uint64_t amount = 1 + rng.NextBelow(20);
        if (ValueTo(*vf) < amount) continue;
        cl->Write(t, from, ValueOf(ValueTo(*vf) - amount));
        cl->Write(t, to, ValueOf(ValueTo(*vt) + amount));
        Status s = co_await cl->Commit(t);
        if (s.ok()) committed++;
      }
    });
  }
  sim_.Run();
  EXPECT_GT(committed, 0);
  uint64_t total = 0;
  bool done = false;
  sim::Spawn([&]() -> Task<void> {
    Transaction t = clients[0]->Begin();
    for (uint64_t k = 0; k < kAccounts; ++k) {
      auto v = co_await clients[0]->Read(t, k);
      EXPECT_TRUE(v.ok());
      total += ValueTo(*v);
    }
    done = true;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  uint64_t expected = 0;
  for (uint64_t a = 0; a < 8; ++a) expected += 1000 + a;
  EXPECT_EQ(total, expected);
}

TEST_F(FarmTest, CommitLatencySlowerThanPrismTx) {
  // §8.3: FaRM's RMW txn ≈ 5.5 µs slower than PRISM-TX's ≈ 18 µs, i.e.
  // ≈ 23 µs: exec (2 READs) + lock RPC + update RPC (read-set == write-set,
  // so phase 2 validation is covered by the locks).
  auto client = NewClient(1);
  double txn_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    Transaction t = client->Begin();
    auto v = co_await client->Read(t, 0);
    EXPECT_TRUE(v.ok());
    client->Write(t, 0, ValueOf(7));
    EXPECT_TRUE((co_await client->Commit(t)).ok());
    txn_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(txn_us, 23.5, 3.0);
}

}  // namespace
}  // namespace prism::tx
