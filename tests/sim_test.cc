// Tests for the discrete-event simulator and coroutine framework.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

// Global allocation counter used by ZeroDelayFastPathAllocatesNothing. The
// default operator new[] forwards here, so scalar overrides cover both forms.
namespace {
uint64_t g_new_calls = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace prism::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Micros(3), [&] { order.push_back(3); });
  sim.Schedule(Micros(1), [&] { order.push_back(1); });
  sim.Schedule(Micros(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Micros(3));
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  TimePoint inner_time = -1;
  sim.Schedule(Micros(1), [&] {
    sim.Schedule(Micros(2), [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, Micros(3));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Micros(1), [&] { fired++; });
  sim.Schedule(Micros(10), [&] { fired++; });
  sim.RunUntil(Micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(5));
  EXPECT_FALSE(sim.idle());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(TaskTest, SpawnRunsToCompletion) {
  Simulator sim;
  bool done = false;
  auto coro = [&]() -> Task<void> {
    co_await SleepFor(&sim, Micros(7));
    done = true;
  };
  Spawn(coro());
  EXPECT_FALSE(done);  // lazy until first event
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now(), Micros(7));
}

TEST(TaskTest, SpawnStartsSynchronouslyUntilFirstSuspend) {
  Simulator sim;
  bool started = false;
  auto coro = [&]() -> Task<void> {
    started = true;
    co_await SleepFor(&sim, Micros(1));
  };
  Spawn(coro());
  EXPECT_TRUE(started);
  sim.Run();
}

TEST(TaskTest, NestedAwaitPropagatesValue) {
  Simulator sim;
  auto inner = [&](int x) -> Task<int> {
    co_await SleepFor(&sim, Micros(2));
    co_return x * 2;
  };
  int result = 0;
  auto outer = [&]() -> Task<void> {
    int a = co_await inner(10);
    int b = co_await inner(a);
    result = b;
  };
  Spawn(outer());
  sim.Run();
  EXPECT_EQ(result, 40);
  EXPECT_EQ(sim.Now(), Micros(4));
}

TEST(TaskTest, DeeplyNestedTasks) {
  Simulator sim;
  // Recursion depth 200: verifies symmetric transfer does not blow the stack
  // and values propagate through every level.
  std::function<Task<int>(int)> chain = [&](int n) -> Task<int> {
    if (n == 0) {
      co_await SleepFor(&sim, Micros(1));
      co_return 1;
    }
    int v = co_await chain(n - 1);
    co_return v + 1;
  };
  int result = 0;
  Spawn([&]() -> Task<void> { result = co_await chain(200); });
  sim.Run();
  EXPECT_EQ(result, 201);
}

TEST(TaskTest, TrackerCountsLiveTasks) {
  Simulator sim;
  TaskTracker tracker;
  auto coro = [&](Duration d) -> Task<void> { co_await SleepFor(&sim, d); };
  Spawn(coro(Micros(1)), &tracker);
  Spawn(coro(Micros(5)), &tracker);
  EXPECT_EQ(tracker.live(), 2);
  sim.RunUntil(Micros(2));
  EXPECT_EQ(tracker.live(), 1);
  sim.Run();
  EXPECT_EQ(tracker.live(), 0);
}

TEST(TaskTest, ManyConcurrentTasksInterleave) {
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    Spawn([&sim, &done, i]() -> Task<void> {
      co_await SleepFor(&sim, Micros(i % 17));
      co_await SleepFor(&sim, Micros(i % 5));
      done++;
    });
  }
  sim.Run();
  EXPECT_EQ(done, 1000);
}

TEST(EventTest, WaitersWakeOnSet) {
  Simulator sim;
  Event event(&sim);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    Spawn([&]() -> Task<void> {
      co_await event.Wait();
      woke++;
    });
  }
  sim.Schedule(Micros(10), [&] { event.Set(); });
  sim.RunUntil(Micros(9));
  EXPECT_EQ(woke, 0);
  sim.Run();
  EXPECT_EQ(woke, 3);
}

TEST(EventTest, WaitOnSetEventIsImmediate) {
  Simulator sim;
  Event event(&sim);
  event.Set();
  bool done = false;
  Spawn([&]() -> Task<void> {
    co_await event.Wait();
    done = true;
  });
  EXPECT_TRUE(done);  // never suspended
}

TEST(QuorumTest, ReachesOnKSuccesses) {
  Simulator sim;
  Quorum quorum(&sim, 2, 3);
  bool result = false;
  bool finished = false;
  Spawn([&]() -> Task<void> {
    result = co_await quorum.Wait();
    finished = true;
  });
  sim.Schedule(Micros(1), [&] { quorum.Arrive(true); });
  sim.Schedule(Micros(2), [&] { quorum.Arrive(true); });
  sim.Run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(result);
  EXPECT_EQ(sim.Now(), Micros(2));  // woke without waiting for the third
}

TEST(QuorumTest, FailsFastWhenUnreachable) {
  Simulator sim;
  Quorum quorum(&sim, 3, 3);
  bool result = true;
  Spawn([&]() -> Task<void> { result = co_await quorum.Wait(); });
  sim.Schedule(Micros(1), [&] { quorum.Arrive(false); });
  sim.Run();
  EXPECT_FALSE(result);  // 3-of-3 impossible after one failure
}

TEST(ChannelTest, PushPopOrdering) {
  Simulator sim;
  Channel<int> channel(&sim);
  std::vector<int> received;
  Spawn([&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      received.push_back(co_await channel.Pop());
    }
  });
  sim.Schedule(Micros(1), [&] { channel.Push(10); });
  sim.Schedule(Micros(2), [&] {
    channel.Push(20);
    channel.Push(30);
  });
  sim.Run();
  EXPECT_EQ(received, (std::vector<int>{10, 20, 30}));
}

TEST(ChannelTest, MultipleConsumersFifo) {
  Simulator sim;
  Channel<int> channel(&sim);
  std::vector<std::pair<int, int>> got;  // (consumer, item)
  for (int c = 0; c < 2; ++c) {
    Spawn([&, c]() -> Task<void> {
      int item = co_await channel.Pop();
      got.emplace_back(c, item);
    });
  }
  channel.Push(1);
  channel.Push(2);
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 2}));
}

TEST(MutexTest, MutualExclusionFifo) {
  Simulator sim;
  Mutex mutex(&sim);
  std::vector<int> order;
  int in_critical = 0;
  for (int i = 0; i < 5; ++i) {
    Spawn([&, i]() -> Task<void> {
      co_await mutex.Lock();
      EXPECT_EQ(in_critical, 0);
      in_critical++;
      co_await SleepFor(&sim, Micros(3));
      order.push_back(i);
      in_critical--;
      mutex.Unlock();
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(mutex.locked());
}

TEST(ServiceQueueTest, SingleServerSerializes) {
  Simulator sim;
  ServiceQueue q(&sim, 1);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    Spawn([&]() -> Task<void> {
      co_await q.Use(Micros(10));
      completions.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Micros(10));
  EXPECT_EQ(completions[1], Micros(20));
  EXPECT_EQ(completions[2], Micros(30));
}

TEST(ServiceQueueTest, ParallelServers) {
  Simulator sim;
  ServiceQueue q(&sim, 4);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 8; ++i) {
    Spawn([&]() -> Task<void> {
      co_await q.Use(Micros(10));
      completions.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 8u);
  // Two waves of four.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(completions[i], Micros(10));
  for (int i = 4; i < 8; ++i) EXPECT_EQ(completions[i], Micros(20));
}

TEST(ServiceQueueTest, UtilizationAccounting) {
  Simulator sim;
  ServiceQueue q(&sim, 2);
  for (int i = 0; i < 6; ++i) {
    Spawn([&]() -> Task<void> { co_await q.Use(Micros(5)); });
  }
  sim.Run();
  EXPECT_EQ(q.total_busy(), Micros(30));
  EXPECT_EQ(sim.Now(), Micros(15));  // 6 jobs / 2 servers * 5us
}

TEST(SimulatorTest, RingAndTimerMergeBySequence) {
  // A timer that lands at time T and a zero-delay event pushed *while the
  // simulator is at T* must interleave in global schedule order: the timer
  // was scheduled first (lower seq) so it fires first.
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Micros(1), [&] {
    order.push_back(1);
    sim.Schedule(0, [&] { order.push_back(3); });  // ring lane, seq > timer's
  });
  sim.Schedule(Micros(1), [&] { order.push_back(2); });  // timer, same when
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAtNowTakesRingLane) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(sim.Now(), [&] { fired++; });
  const uint64_t ring = sim.stats().zero_delay_events;
  EXPECT_EQ(ring, 1u);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MoveOnlyCallables) {
  Simulator sim;
  int got = 0;
  auto payload = std::make_unique<int>(42);
  sim.Schedule(Micros(1), [&got, p = std::move(payload)] { got = *p; });
  sim.Run();
  EXPECT_EQ(got, 42);
}

TEST(SimulatorTest, OversizedCaptureSpillsToHeapAndStillFires) {
  Simulator sim;
  struct Big {
    char bytes[96] = {};  // > EventRecord::kInlineBytes
  };
  Big big;
  big.bytes[95] = 7;
  int got = 0;
  int small = 0;
  sim.Schedule(Micros(1), [&got, big] { got = big.bytes[95]; });
  sim.Schedule(Micros(2), [&small] { small = 1; });  // fits inline
  EXPECT_EQ(sim.stats().heap_callables, 1u);
  sim.Run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(small, 1);
}

TEST(SimulatorTest, PendingEventsDisposedOnDestruction) {
  // Never-fired events (ring, wheel, and overflow) must release their
  // captured state when the simulator dies.
  auto token = std::make_shared<int>(1);
  {
    Simulator sim;
    sim.Schedule(0, [t = token] {});
    sim.Schedule(Micros(5), [t = token] {});
    sim.Schedule(Seconds(10), [t = token] {});  // far beyond wheel horizon
    EXPECT_EQ(token.use_count(), 4);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SimulatorTest, FarFutureTimersOverflowAndMigrate) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(2), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(2); });
  sim.Schedule(Micros(1), [&] { order.push_back(1); });
  EXPECT_GE(sim.stats().overflow_events, 2u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

TEST(SimulatorTest, StatsCountLanes) {
  Simulator sim;
  sim.Schedule(Micros(3), [] {});
  sim.Schedule(0, [] {});
  sim.Schedule(0, [] {});
  EXPECT_EQ(sim.stats().zero_delay_events, 2u);
  EXPECT_EQ(sim.stats().timer_events, 1u);
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulatorTest, ZeroDelayFastPathAllocatesNothing) {
  Simulator sim;
  // Warm-up: grow the event pool and the ring to steady-state width, and let
  // coroutine frames etc. settle.
  constexpr int kWidth = 64;
  int warm = 0;
  for (int i = 0; i < kWidth; ++i) sim.Schedule(0, [&warm] { warm++; });
  sim.Run();
  EXPECT_EQ(warm, kWidth);

  // Measured phase: a self-sustaining zero-delay cascade. Every Schedule hit
  // must reuse pooled records with inline callable storage — zero heap
  // allocations end to end.
  int fired = 0;
  struct Chain {
    Simulator* sim;
    int* fired;
    int remaining;
    void operator()() {
      ++*fired;
      if (--remaining > 0) sim->Schedule(0, Chain{sim, fired, remaining});
    }
  };
  for (int i = 0; i < kWidth; ++i) {
    sim.Schedule(0, Chain{&sim, &fired, /*remaining=*/1000});
  }
  const uint64_t allocs_before = g_new_calls;
  sim.Run();
  const uint64_t allocs_during = g_new_calls - allocs_before;
  EXPECT_EQ(allocs_during, 0u);
  EXPECT_EQ(fired, kWidth * 1000);
}

// ---------- schedule-space exploration hook ----------

// Records every enabled window it is shown and picks a scripted index.
class ScriptedHook : public ScheduleHook {
 public:
  ScriptedHook(Duration window, std::vector<size_t> picks)
      : window_(window), picks_(std::move(picks)) {}

  Duration window() const override { return window_; }
  size_t Pick(const std::vector<EnabledEvent>& enabled) override {
    windows_.push_back(enabled);
    if (next_ < picks_.size()) return picks_[next_++];
    return 0;
  }

  const std::vector<std::vector<EnabledEvent>>& windows() const {
    return windows_;
  }

 private:
  Duration window_;
  std::vector<size_t> picks_;
  size_t next_ = 0;
  std::vector<std::vector<EnabledEvent>> windows_;
};

TEST(ScheduleHookTest, EnabledWindowIsSortedAndBounded) {
  Simulator sim;
  ScriptedHook hook(/*window=*/Nanos(200), /*picks=*/{});
  sim.SetScheduleHook(&hook);
  std::vector<int> fired;
  sim.Schedule(Nanos(100), [&] { fired.push_back(0); });
  sim.Schedule(Nanos(100), [&] { fired.push_back(1); });
  sim.Schedule(Nanos(150), [&] { fired.push_back(2); });
  sim.Schedule(Nanos(400), [&] { fired.push_back(3); });
  sim.Run();
  // Identity picks: production order.
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_EQ(hook.windows().size(), 4u);
  // First window: the two ties at 100 plus 150 (within 100+200); the event
  // at 400 is outside. Entries sorted by (when, seq).
  const auto& w0 = hook.windows()[0];
  ASSERT_EQ(w0.size(), 3u);
  EXPECT_EQ(w0[0].when, Nanos(100));
  EXPECT_EQ(w0[1].when, Nanos(100));
  EXPECT_LT(w0[0].seq, w0[1].seq);
  EXPECT_EQ(w0[2].when, Nanos(150));
  // Last window: only the 400 ns event remains.
  EXPECT_EQ(hook.windows()[3].size(), 1u);
}

TEST(ScheduleHookTest, PickedEventFiresAtItsOwnTimeAndDelaysTheRest) {
  Simulator sim;
  // One decision: from the first window pick index 2 (the 150 ns event).
  ScriptedHook hook(Nanos(200), {2});
  sim.SetScheduleHook(&hook);
  std::vector<std::pair<int, TimePoint>> fired;
  sim.Schedule(Nanos(100), [&] { fired.push_back({0, sim.Now()}); });
  sim.Schedule(Nanos(100), [&] { fired.push_back({1, sim.Now()}); });
  sim.Schedule(Nanos(150), [&] { fired.push_back({2, sim.Now()}); });
  sim.Run();
  ASSERT_EQ(fired.size(), 3u);
  // The 150 ns event jumps the queue and fires at its scheduled time —
  // never earlier (no premature execution).
  EXPECT_EQ(fired[0], (std::pair<int, TimePoint>{2, Nanos(150)}));
  // The delayed ties fire afterwards, late but in FIFO order, within the
  // soundness bound when + window.
  EXPECT_EQ(fired[1].first, 0);
  EXPECT_EQ(fired[2].first, 1);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GE(fired[i].second, Nanos(100));
    EXPECT_LE(fired[i].second, Nanos(100) + Nanos(200));
  }
}

TEST(ScheduleHookTest, AdversarialPicksStayWithinSoundnessBound) {
  // Always pick the LAST enabled event: maximal reordering pressure. Every
  // event must still fire within [when, when + window], and all of them
  // must fire exactly once.
  Simulator sim;
  class LastHook : public ScheduleHook {
   public:
    Duration window() const override { return Nanos(300); }
    size_t Pick(const std::vector<EnabledEvent>& enabled) override {
      return enabled.size() - 1;
    }
  } hook;
  sim.SetScheduleHook(&hook);
  std::vector<std::pair<TimePoint, TimePoint>> fired;  // (scheduled, actual)
  for (int i = 0; i < 64; ++i) {
    const TimePoint when = Nanos(50 * (i % 16));
    sim.ScheduleAt(when, [&fired, when, &sim] {
      fired.push_back({when, sim.Now()});
    });
  }
  sim.Run();
  ASSERT_EQ(fired.size(), 64u);
  for (const auto& [when, at] : fired) {
    EXPECT_GE(at, when);
    EXPECT_LE(at, when + Nanos(300));
  }
}

TEST(ScheduleHookTest, OutOfRangePickFallsBackToFront) {
  Simulator sim;
  ScriptedHook hook(Nanos(100), {99, 99, 99});
  sim.SetScheduleHook(&hook);
  std::vector<int> fired;
  sim.Schedule(Nanos(10), [&] { fired.push_back(0); });
  sim.Schedule(Nanos(20), [&] { fired.push_back(1); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
}

TEST(ScheduleHookTest, RunUntilDeadlineHoldsUnderHook) {
  Simulator sim;
  // Generous window that would otherwise let the 120 ns event into the
  // first enabled set; the deadline must clip it.
  ScriptedHook hook(Nanos(1000), {1});
  sim.SetScheduleHook(&hook);
  std::vector<int> fired;
  sim.Schedule(Nanos(50), [&] { fired.push_back(0); });
  sim.Schedule(Nanos(120), [&] { fired.push_back(1); });
  sim.RunUntil(Nanos(100));
  // Only the 50 ns event ran (the scripted pick of index 1 was clipped to
  // the lone in-deadline event and fell back to it).
  EXPECT_EQ(fired, (std::vector<int>{0}));
  EXPECT_EQ(sim.Now(), Nanos(100));
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
}

TEST(ScheduleHookTest, HookedEventsDisposedOnDestruction) {
  ScriptedHook hook(Nanos(100), {});
  auto guard = std::make_shared<int>(7);
  {
    Simulator sim;
    sim.SetScheduleHook(&hook);
    sim.Schedule(Nanos(10), [guard] { (void)*guard; });
    EXPECT_EQ(guard.use_count(), 2);
  }
  // The undrained hooked event was destroyed, not leaked.
  EXPECT_EQ(guard.use_count(), 1);
}

TEST(SleepTest, ZeroSleepYields) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(0, [&] { order.push_back(2); });
  Spawn([&]() -> Task<void> {
    order.push_back(1);  // spawn runs synchronously to the first suspension,
    co_await Yield(&sim);  // then requeues behind the already-queued event
    order.push_back(3);
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace prism::sim
