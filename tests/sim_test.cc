// Tests for the discrete-event simulator and coroutine framework.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

// Global allocation counter used by ZeroDelayFastPathAllocatesNothing. The
// default operator new[] forwards here, so scalar overrides cover both forms.
namespace {
uint64_t g_new_calls = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace prism::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Micros(3), [&] { order.push_back(3); });
  sim.Schedule(Micros(1), [&] { order.push_back(1); });
  sim.Schedule(Micros(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Micros(3));
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  TimePoint inner_time = -1;
  sim.Schedule(Micros(1), [&] {
    sim.Schedule(Micros(2), [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, Micros(3));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Micros(1), [&] { fired++; });
  sim.Schedule(Micros(10), [&] { fired++; });
  sim.RunUntil(Micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(5));
  EXPECT_FALSE(sim.idle());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(TaskTest, SpawnRunsToCompletion) {
  Simulator sim;
  bool done = false;
  auto coro = [&]() -> Task<void> {
    co_await SleepFor(&sim, Micros(7));
    done = true;
  };
  Spawn(coro());
  EXPECT_FALSE(done);  // lazy until first event
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now(), Micros(7));
}

TEST(TaskTest, SpawnStartsSynchronouslyUntilFirstSuspend) {
  Simulator sim;
  bool started = false;
  auto coro = [&]() -> Task<void> {
    started = true;
    co_await SleepFor(&sim, Micros(1));
  };
  Spawn(coro());
  EXPECT_TRUE(started);
  sim.Run();
}

TEST(TaskTest, NestedAwaitPropagatesValue) {
  Simulator sim;
  auto inner = [&](int x) -> Task<int> {
    co_await SleepFor(&sim, Micros(2));
    co_return x * 2;
  };
  int result = 0;
  auto outer = [&]() -> Task<void> {
    int a = co_await inner(10);
    int b = co_await inner(a);
    result = b;
  };
  Spawn(outer());
  sim.Run();
  EXPECT_EQ(result, 40);
  EXPECT_EQ(sim.Now(), Micros(4));
}

TEST(TaskTest, DeeplyNestedTasks) {
  Simulator sim;
  // Recursion depth 200: verifies symmetric transfer does not blow the stack
  // and values propagate through every level.
  std::function<Task<int>(int)> chain = [&](int n) -> Task<int> {
    if (n == 0) {
      co_await SleepFor(&sim, Micros(1));
      co_return 1;
    }
    int v = co_await chain(n - 1);
    co_return v + 1;
  };
  int result = 0;
  Spawn([&]() -> Task<void> { result = co_await chain(200); });
  sim.Run();
  EXPECT_EQ(result, 201);
}

TEST(TaskTest, TrackerCountsLiveTasks) {
  Simulator sim;
  TaskTracker tracker;
  auto coro = [&](Duration d) -> Task<void> { co_await SleepFor(&sim, d); };
  Spawn(coro(Micros(1)), &tracker);
  Spawn(coro(Micros(5)), &tracker);
  EXPECT_EQ(tracker.live(), 2);
  sim.RunUntil(Micros(2));
  EXPECT_EQ(tracker.live(), 1);
  sim.Run();
  EXPECT_EQ(tracker.live(), 0);
}

TEST(TaskTest, ManyConcurrentTasksInterleave) {
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    Spawn([&sim, &done, i]() -> Task<void> {
      co_await SleepFor(&sim, Micros(i % 17));
      co_await SleepFor(&sim, Micros(i % 5));
      done++;
    });
  }
  sim.Run();
  EXPECT_EQ(done, 1000);
}

TEST(EventTest, WaitersWakeOnSet) {
  Simulator sim;
  Event event(&sim);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    Spawn([&]() -> Task<void> {
      co_await event.Wait();
      woke++;
    });
  }
  sim.Schedule(Micros(10), [&] { event.Set(); });
  sim.RunUntil(Micros(9));
  EXPECT_EQ(woke, 0);
  sim.Run();
  EXPECT_EQ(woke, 3);
}

TEST(EventTest, WaitOnSetEventIsImmediate) {
  Simulator sim;
  Event event(&sim);
  event.Set();
  bool done = false;
  Spawn([&]() -> Task<void> {
    co_await event.Wait();
    done = true;
  });
  EXPECT_TRUE(done);  // never suspended
}

TEST(QuorumTest, ReachesOnKSuccesses) {
  Simulator sim;
  Quorum quorum(&sim, 2, 3);
  bool result = false;
  bool finished = false;
  Spawn([&]() -> Task<void> {
    result = co_await quorum.Wait();
    finished = true;
  });
  sim.Schedule(Micros(1), [&] { quorum.Arrive(true); });
  sim.Schedule(Micros(2), [&] { quorum.Arrive(true); });
  sim.Run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(result);
  EXPECT_EQ(sim.Now(), Micros(2));  // woke without waiting for the third
}

TEST(QuorumTest, FailsFastWhenUnreachable) {
  Simulator sim;
  Quorum quorum(&sim, 3, 3);
  bool result = true;
  Spawn([&]() -> Task<void> { result = co_await quorum.Wait(); });
  sim.Schedule(Micros(1), [&] { quorum.Arrive(false); });
  sim.Run();
  EXPECT_FALSE(result);  // 3-of-3 impossible after one failure
}

TEST(ChannelTest, PushPopOrdering) {
  Simulator sim;
  Channel<int> channel(&sim);
  std::vector<int> received;
  Spawn([&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      received.push_back(co_await channel.Pop());
    }
  });
  sim.Schedule(Micros(1), [&] { channel.Push(10); });
  sim.Schedule(Micros(2), [&] {
    channel.Push(20);
    channel.Push(30);
  });
  sim.Run();
  EXPECT_EQ(received, (std::vector<int>{10, 20, 30}));
}

TEST(ChannelTest, MultipleConsumersFifo) {
  Simulator sim;
  Channel<int> channel(&sim);
  std::vector<std::pair<int, int>> got;  // (consumer, item)
  for (int c = 0; c < 2; ++c) {
    Spawn([&, c]() -> Task<void> {
      int item = co_await channel.Pop();
      got.emplace_back(c, item);
    });
  }
  channel.Push(1);
  channel.Push(2);
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 2}));
}

TEST(MutexTest, MutualExclusionFifo) {
  Simulator sim;
  Mutex mutex(&sim);
  std::vector<int> order;
  int in_critical = 0;
  for (int i = 0; i < 5; ++i) {
    Spawn([&, i]() -> Task<void> {
      co_await mutex.Lock();
      EXPECT_EQ(in_critical, 0);
      in_critical++;
      co_await SleepFor(&sim, Micros(3));
      order.push_back(i);
      in_critical--;
      mutex.Unlock();
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(mutex.locked());
}

TEST(ServiceQueueTest, SingleServerSerializes) {
  Simulator sim;
  ServiceQueue q(&sim, 1);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    Spawn([&]() -> Task<void> {
      co_await q.Use(Micros(10));
      completions.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Micros(10));
  EXPECT_EQ(completions[1], Micros(20));
  EXPECT_EQ(completions[2], Micros(30));
}

TEST(ServiceQueueTest, ParallelServers) {
  Simulator sim;
  ServiceQueue q(&sim, 4);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 8; ++i) {
    Spawn([&]() -> Task<void> {
      co_await q.Use(Micros(10));
      completions.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 8u);
  // Two waves of four.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(completions[i], Micros(10));
  for (int i = 4; i < 8; ++i) EXPECT_EQ(completions[i], Micros(20));
}

TEST(ServiceQueueTest, UtilizationAccounting) {
  Simulator sim;
  ServiceQueue q(&sim, 2);
  for (int i = 0; i < 6; ++i) {
    Spawn([&]() -> Task<void> { co_await q.Use(Micros(5)); });
  }
  sim.Run();
  EXPECT_EQ(q.total_busy(), Micros(30));
  EXPECT_EQ(sim.Now(), Micros(15));  // 6 jobs / 2 servers * 5us
}

TEST(SimulatorTest, RingAndTimerMergeBySequence) {
  // A timer that lands at time T and a zero-delay event pushed *while the
  // simulator is at T* must interleave in global schedule order: the timer
  // was scheduled first (lower seq) so it fires first.
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Micros(1), [&] {
    order.push_back(1);
    sim.Schedule(0, [&] { order.push_back(3); });  // ring lane, seq > timer's
  });
  sim.Schedule(Micros(1), [&] { order.push_back(2); });  // timer, same when
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAtNowTakesRingLane) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(sim.Now(), [&] { fired++; });
  const uint64_t ring = sim.stats().zero_delay_events;
  EXPECT_EQ(ring, 1u);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MoveOnlyCallables) {
  Simulator sim;
  int got = 0;
  auto payload = std::make_unique<int>(42);
  sim.Schedule(Micros(1), [&got, p = std::move(payload)] { got = *p; });
  sim.Run();
  EXPECT_EQ(got, 42);
}

TEST(SimulatorTest, OversizedCaptureSpillsToHeapAndStillFires) {
  Simulator sim;
  struct Big {
    char bytes[96] = {};  // > EventRecord::kInlineBytes
  };
  Big big;
  big.bytes[95] = 7;
  int got = 0;
  int small = 0;
  sim.Schedule(Micros(1), [&got, big] { got = big.bytes[95]; });
  sim.Schedule(Micros(2), [&small] { small = 1; });  // fits inline
  EXPECT_EQ(sim.stats().heap_callables, 1u);
  sim.Run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(small, 1);
}

TEST(SimulatorTest, PendingEventsDisposedOnDestruction) {
  // Never-fired events (ring, wheel, and overflow) must release their
  // captured state when the simulator dies.
  auto token = std::make_shared<int>(1);
  {
    Simulator sim;
    sim.Schedule(0, [t = token] {});
    sim.Schedule(Micros(5), [t = token] {});
    sim.Schedule(Seconds(10), [t = token] {});  // far beyond wheel horizon
    EXPECT_EQ(token.use_count(), 4);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SimulatorTest, FarFutureTimersOverflowAndMigrate) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(2), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(2); });
  sim.Schedule(Micros(1), [&] { order.push_back(1); });
  EXPECT_GE(sim.stats().overflow_events, 2u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

TEST(SimulatorTest, StatsCountLanes) {
  Simulator sim;
  sim.Schedule(Micros(3), [] {});
  sim.Schedule(0, [] {});
  sim.Schedule(0, [] {});
  EXPECT_EQ(sim.stats().zero_delay_events, 2u);
  EXPECT_EQ(sim.stats().timer_events, 1u);
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulatorTest, ZeroDelayFastPathAllocatesNothing) {
  Simulator sim;
  // Warm-up: grow the event pool and the ring to steady-state width, and let
  // coroutine frames etc. settle.
  constexpr int kWidth = 64;
  int warm = 0;
  for (int i = 0; i < kWidth; ++i) sim.Schedule(0, [&warm] { warm++; });
  sim.Run();
  EXPECT_EQ(warm, kWidth);

  // Measured phase: a self-sustaining zero-delay cascade. Every Schedule hit
  // must reuse pooled records with inline callable storage — zero heap
  // allocations end to end.
  int fired = 0;
  struct Chain {
    Simulator* sim;
    int* fired;
    int remaining;
    void operator()() {
      ++*fired;
      if (--remaining > 0) sim->Schedule(0, Chain{sim, fired, remaining});
    }
  };
  for (int i = 0; i < kWidth; ++i) {
    sim.Schedule(0, Chain{&sim, &fired, /*remaining=*/1000});
  }
  const uint64_t allocs_before = g_new_calls;
  sim.Run();
  const uint64_t allocs_during = g_new_calls - allocs_before;
  EXPECT_EQ(allocs_during, 0u);
  EXPECT_EQ(fired, kWidth * 1000);
}

TEST(SleepTest, ZeroSleepYields) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(0, [&] { order.push_back(2); });
  Spawn([&]() -> Task<void> {
    order.push_back(1);  // spawn runs synchronously to the first suspension,
    co_await Yield(&sim);  // then requeues behind the already-queued event
    order.push_back(3);
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace prism::sim
