// Tests for src/common: Status/Result, bytes, hashes, RNG, histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace prism {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Code::kInternal); ++c) {
    EXPECT_NE(CodeName(static_cast<Code>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status().code(), Code::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Code::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<Bytes> r = BytesOfU64(7);
  Bytes b = std::move(r).value();
  EXPECT_EQ(LoadU64(b.data()), 7u);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return OkStatus();
}

Result<int> DoubleIfPositive(int x) {
  PRISM_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedCompute(int x) {
  PRISM_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, PropagationMacros) {
  EXPECT_EQ(*ChainedCompute(10), 21);
  EXPECT_EQ(ChainedCompute(-1).code(), Code::kInvalidArgument);
}

TEST(BytesTest, LoadStoreRoundTrip) {
  Bytes b(16, 0);
  StoreU64(b.data(), 0x0123456789abcdefull);
  StoreU64(b.data() + 8, 0xfedcba9876543210ull);
  EXPECT_EQ(LoadU64(b.data()), 0x0123456789abcdefull);
  EXPECT_EQ(LoadU64(ByteView(b), 8), 0xfedcba9876543210ull);
}

TEST(BytesTest, PairLayout) {
  Bytes b = BytesOfU64Pair(1, 2);
  ASSERT_EQ(b.size(), 16u);
  EXPECT_EQ(LoadU64(b.data()), 1u);
  EXPECT_EQ(LoadU64(b.data() + 8), 2u);
}

TEST(BytesTest, FieldMaskSelectsBytes) {
  Bytes m = FieldMask(16, 8, 8);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(m[i], 0x00);
  for (size_t i = 8; i < 16; ++i) EXPECT_EQ(m[i], 0xff);
}

TEST(BytesTest, HexDump) {
  EXPECT_EQ(HexDump(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(HexDump(Bytes{}), "");
}

TEST(HashTest, Fnv1aKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(std::string_view("")), 0xcbf29ce484222325ull);
  // Well-known vector: "a".
  EXPECT_EQ(Fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cull);
}

TEST(HashTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xcbf43926 (classic check value).
  std::string s = "123456789";
  EXPECT_EQ(Crc32(ByteView(reinterpret_cast<const uint8_t*>(s.data()),
                           s.size())),
            0xcbf43926u);
}

TEST(HashTest, Crc32DetectsSingleBitFlips) {
  Bytes data(64);
  Rng rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  uint32_t orig = Crc32(data);
  for (size_t bit = 0; bit < data.size() * 8; bit += 37) {
    Bytes flipped = data;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(flipped), orig) << "bit " << bit;
  }
}

TEST(HashTest, MixU64IsInjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(MixU64(i)).second);
  }
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) same++;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(HistogramTest, EmptySummary) {
  LatencyHistogram h;
  auto s = h.Summarize();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean_us, 0);
}

TEST(HistogramTest, ExactMeanMinMax) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(2000);
  h.Record(3000);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 2000.0);
  EXPECT_EQ(h.MinNanos(), 1000);
  EXPECT_EQ(h.MaxNanos(), 3000);
}

TEST(HistogramTest, QuantilesApproximatelyCorrect) {
  LatencyHistogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextInRange(1000, 101000)));
  }
  // Uniform [1us, 101us]: p50 ~ 51us within bucket resolution (<2%).
  EXPECT_NEAR(static_cast<double>(h.QuantileNanos(0.5)), 51000.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(h.QuantileNanos(0.99)), 100000.0, 3000.0);
}

TEST(HistogramTest, MergeCombines) {
  LatencyHistogram a, b;
  a.Record(1000);
  b.Record(3000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.MeanNanos(), 2000.0);
  EXPECT_EQ(a.MaxNanos(), 3000);
}

TEST(HistogramTest, MergeMatchesDirectRecording) {
  // The fixed log-bucket layout makes merge lossless: recording a stream
  // split across K partial histograms and merging must be bit-identical to
  // recording it all into one — count, sum-derived mean, extrema, and every
  // quantile (the open-loop pools rely on this to combine per-pool
  // recorders without distorting p999).
  Rng rng(2026);
  LatencyHistogram direct;
  LatencyHistogram parts[4];
  for (int i = 0; i < 40000; ++i) {
    // Heavy-tailed samples spanning ~4 decades, like an overloaded run.
    int64_t ns = 500 + static_cast<int64_t>(rng.NextBelow(20000));
    if (rng.NextBelow(100) < 3) ns *= 400;
    direct.Record(ns);
    parts[i % 4].Record(ns);
  }
  LatencyHistogram merged;
  for (LatencyHistogram& p : parts) merged.Merge(p);

  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.MaxNanos(), direct.MaxNanos());
  EXPECT_DOUBLE_EQ(merged.MeanNanos(), direct.MeanNanos());
  LatencyHistogram::Summary m = merged.Summarize();
  LatencyHistogram::Summary d = direct.Summarize();
  EXPECT_EQ(m.count, d.count);
  EXPECT_DOUBLE_EQ(m.mean_us, d.mean_us);
  EXPECT_DOUBLE_EQ(m.p50_us, d.p50_us);
  EXPECT_DOUBLE_EQ(m.p99_us, d.p99_us);
  EXPECT_DOUBLE_EQ(m.p999_us, d.p999_us);
  EXPECT_DOUBLE_EQ(m.min_us, d.min_us);
  EXPECT_DOUBLE_EQ(m.max_us, d.max_us);
}

TEST(HistogramTest, SummaryReportsP999AboveP99OnHeavyTail) {
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) h.Record(1000);
  for (int i = 0; i < 50; ++i) h.Record(1000 * 1000);
  LatencyHistogram::Summary s = h.Summarize();
  // 0.5% of samples at 1 ms: p99 stays at the body, p999 lands in the tail.
  EXPECT_LT(s.p99_us, 10.0);
  EXPECT_GT(s.p999_us, 900.0);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(5000);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.MaxNanos(), 0);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.Record(int64_t{1} << 40);  // ~18 minutes in ns
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.QuantileNanos(0.5), 0);
}

TEST(HistogramTest, EmptyQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.QuantileNanos(0.0), 0);
  EXPECT_EQ(h.QuantileNanos(0.5), 0);
  EXPECT_EQ(h.QuantileNanos(1.0), 0);
}

TEST(HistogramTest, SingleSampleEveryQuantileIsTheSample) {
  LatencyHistogram h;
  h.Record(12345);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.QuantileNanos(q), 12345) << "q=" << q;
  }
}

TEST(HistogramTest, P100IsExactMax) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(777777);  // lands mid-bucket: interpolation would overshoot
  h.Record(50);
  EXPECT_EQ(h.QuantileNanos(1.0), 777777);
  EXPECT_EQ(h.QuantileNanos(0.0), 50);
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_EQ(h.QuantileNanos(-0.5), 50);
  EXPECT_EQ(h.QuantileNanos(2.0), 777777);
}

TEST(HistogramTest, NanQuantileIsDeterministic) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(200);
  EXPECT_EQ(h.QuantileNanos(std::nan("")), 200);
}

TEST(HistogramTest, HugeSamplesSaturateInsteadOfWrappingNegative) {
  // INT64_MAX lands in the last representable tier; the next bucket edge
  // used by the interpolation would previously shift past the sign bit.
  LatencyHistogram h;
  h.Record(std::numeric_limits<int64_t>::max());
  h.Record(std::numeric_limits<int64_t>::max() - 1);
  for (double q : {0.01, 0.5, 0.99}) {
    const int64_t v = h.QuantileNanos(q);
    EXPECT_GE(v, h.MinNanos()) << "q=" << q;
    EXPECT_LE(v, h.MaxNanos()) << "q=" << q;
  }
  EXPECT_EQ(h.QuantileNanos(1.0), std::numeric_limits<int64_t>::max());
}

TEST(HistogramTest, ConstantStreamHasZeroWidthQuantiles) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(4242);
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_EQ(h.QuantileNanos(q), 4242) << "q=" << q;
  }
}

}  // namespace
}  // namespace prism
