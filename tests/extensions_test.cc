// Tests for features beyond the paper's core evaluation: the Snap-style
// pattern-search primitive (§9), size-classed PRISM-KV allocation (§3.2),
// and multi-shard PRISM-TX transactions (§8's partitioned setting).
#include <gtest/gtest.h>

#include <string>

#include "src/kv/prism_kv.h"
#include "src/prism/executor.h"
#include "src/prism/service.h"
#include "src/prism/wire.h"
#include "src/sim/task.h"
#include "src/rs/prism_rs.h"
#include "src/tx/prism_tx.h"

namespace prism {
namespace {

using core::Chain;
using core::Executor;
using core::FreeListRegistry;
using core::Op;
using core::OpCode;
using sim::Task;

// ---------- pattern search ----------

class SearchTest : public ::testing::Test {
 protected:
  SearchTest() : mem_(1 << 18), executor_(&mem_, &freelists_) {
    region_ = *mem_.CarveAndRegister(16 * 1024, rdma::kRemoteAll);
  }
  rdma::AddressSpace mem_;
  FreeListRegistry freelists_;
  Executor executor_;
  rdma::MemoryRegion region_;
};

TEST_F(SearchTest, FindsPattern) {
  Bytes hay = BytesOfString("the quick brown fox jumps over the lazy dog");
  mem_.Store(region_.base, hay);
  auto r = executor_.Execute({Op::Search(region_.rkey, region_.base,
                                         hay.size(), BytesOfString("fox"))});
  ASSERT_TRUE(r[0].Successful(OpCode::kSearch));
  EXPECT_EQ(LoadU64(r[0].data.data()), 16u);
}

TEST_F(SearchTest, NotFoundReturnsSentinel) {
  mem_.Store(region_.base, BytesOfString("aaaaaaaa"));
  auto r = executor_.Execute({Op::Search(region_.rkey, region_.base, 8,
                                         BytesOfString("zz"))});
  ASSERT_TRUE(r[0].Successful(OpCode::kSearch));
  EXPECT_EQ(LoadU64(r[0].data.data()), core::kSearchNotFound);
}

TEST_F(SearchTest, MatchAtRangeBoundary) {
  Bytes hay = BytesOfString("xxxxxxAB");
  mem_.Store(region_.base, hay);
  auto r = executor_.Execute({Op::Search(region_.rkey, region_.base,
                                         hay.size(), BytesOfString("AB"))});
  EXPECT_EQ(LoadU64(r[0].data.data()), 6u);
  // Pattern straddling past the range end must NOT match.
  auto r2 = executor_.Execute({Op::Search(region_.rkey, region_.base, 7,
                                          BytesOfString("AB"))});
  EXPECT_EQ(LoadU64(r2[0].data.data()), core::kSearchNotFound);
}

TEST_F(SearchTest, EmptyOrOversizedPatternRejected) {
  auto r = executor_.Execute({Op::Search(region_.rkey, region_.base, 8,
                                         Bytes{})});
  EXPECT_EQ(r[0].status.code(), Code::kInvalidArgument);
  auto r2 = executor_.Execute({Op::Search(region_.rkey, region_.base, 2,
                                          BytesOfString("toolong"))});
  EXPECT_EQ(r2[0].status.code(), Code::kInvalidArgument);
}

TEST_F(SearchTest, RespectsRkey) {
  auto r = executor_.Execute({Op::Search(region_.rkey + 1, region_.base, 8,
                                         BytesOfString("x"))});
  EXPECT_FALSE(r[0].status.ok());
}

TEST_F(SearchTest, IndirectSearchFollowsPointer) {
  Bytes hay = BytesOfString("needle in here");
  mem_.Store(region_.base + 512, hay);
  mem_.StoreWord(region_.base, region_.base + 512);
  Op op = Op::Search(region_.rkey, region_.base, hay.size(),
                     BytesOfString("needle"));
  op.addr_indirect = true;
  auto r = executor_.Execute({op});
  ASSERT_TRUE(r[0].Successful(OpCode::kSearch));
  EXPECT_EQ(LoadU64(r[0].data.data()), 0u);
  EXPECT_EQ(r[0].resolved_addr, region_.base + 512);
}

TEST_F(SearchTest, ChainedSearchThenConditionalRead) {
  // Search for a record marker, and only read the payload if it was found.
  Bytes hay = BytesOfString("....MARKpayload");
  mem_.Store(region_.base, hay);
  Chain chain;
  chain.push_back(Op::Search(region_.rkey, region_.base, hay.size(),
                             BytesOfString("MARK")));
  chain.push_back(Op::Read(region_.rkey, region_.base + 8, 7).Conditional());
  auto r = executor_.Execute(chain);
  ASSERT_TRUE(r[0].Successful(OpCode::kSearch));
  ASSERT_TRUE(r[1].executed);
  EXPECT_EQ(StringOfBytes(r[1].data), "payload");
}

TEST_F(SearchTest, WireRoundTrip) {
  Chain chain{Op::Search(9, 4096, 1024, BytesOfString("pat"))};
  auto decoded = core::DecodeChain(core::EncodeChain(chain));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].code, OpCode::kSearch);
  EXPECT_EQ(StringOfBytes((*decoded)[0].data), "pat");
}

TEST_F(SearchTest, ProfileScalesWithHaystack) {
  auto small = executor_.Profile(Op::Search(region_.rkey, region_.base, 64,
                                            BytesOfString("x")));
  auto large = executor_.Profile(Op::Search(region_.rkey, region_.base,
                                            16 * 1024, BytesOfString("x")));
  EXPECT_GT(large.host_reads, small.host_reads);
}

TEST(SearchFabricTest, SearchOverFabricSavesTransfer) {
  // Searching a 8 KiB remote log costs one round trip and returns 8 bytes —
  // vs reading the whole log.
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 20);
  core::PrismServer server(&fabric, server_host,
                           core::Deployment::kSoftware, &mem);
  auto region = *mem.CarveAndRegister(64 * 1024, rdma::kRemoteAll);
  Bytes log(8192, 'a');
  std::memcpy(log.data() + 7000, "EVENT", 5);
  mem.Store(region.base, log);
  core::PrismClient client(&fabric, client_host);
  bool checked = false;
  uint64_t bytes_before = fabric.total_wire_bytes();
  sim::Spawn([&]() -> Task<void> {
    Op search = Op::Search(region.rkey, region.base, 8192,
                           BytesOfString("EVENT"));
    auto r = co_await client.ExecuteOne(&server, std::move(search));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(LoadU64(r->data.data()), 7000u);
    checked = true;
  });
  sim.Run();
  EXPECT_TRUE(checked);
  // Far less than the 8 KiB the data transfer would have cost.
  EXPECT_LT(fabric.total_wire_bytes() - bytes_before, 400u);
}

// ---------- size-classed PRISM-KV ----------

class SizeClassKvTest : public ::testing::Test {
 protected:
  SizeClassKvTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_host_(fabric_.AddHost("server")) {
    kv::PrismKvOptions opts;
    opts.n_buckets = 128;
    opts.n_buffers = 64;  // per class
    opts.size_classes = {64, 256, 1024};
    opts.max_value_size = 1000;
    server_ = std::make_unique<kv::PrismKvServer>(&fabric_, server_host_,
                                                  opts);
    client_host_ = fabric_.AddHost("client");
    client_ = std::make_unique<kv::PrismKvClient>(&fabric_, client_host_,
                                                  server_.get());
  }
  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  std::unique_ptr<kv::PrismKvServer> server_;
  std::unique_ptr<kv::PrismKvClient> client_;
};

TEST_F(SizeClassKvTest, ValuesLandInSmallestFittingClass) {
  sim::Spawn([&]() -> Task<void> {
    // 20-byte record -> 64 class; 200-byte -> 256; 600-byte -> 1024.
    EXPECT_TRUE((co_await client_->Put("small", Bytes(10, 1))).ok());
    EXPECT_TRUE((co_await client_->Put("medium", Bytes(180, 2))).ok());
    EXPECT_TRUE((co_await client_->Put("large", Bytes(600, 3))).ok());
    auto s = co_await client_->Get("small");
    auto m = co_await client_->Get("medium");
    auto l = co_await client_->Get("large");
    EXPECT_EQ(s->size(), 10u);
    EXPECT_EQ(m->size(), 180u);
    EXPECT_EQ(l->size(), 600u);
  });
  sim_.Run();
  auto& fl = server_->prism().freelists();
  EXPECT_EQ(fl.available(0), 62u);  // 64-class: tombstone slot + 1 record
  EXPECT_EQ(fl.available(1), 63u);
  EXPECT_EQ(fl.available(2), 63u);
}

TEST_F(SizeClassKvTest, OverwriteAcrossClassesReturnsOldBuffer) {
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("k", Bytes(10, 1))).ok());     // 64
    EXPECT_TRUE((co_await client_->Put("k", Bytes(600, 2))).ok());    // 1024
    EXPECT_TRUE((co_await client_->Put("k", Bytes(10, 3))).ok());     // 64
    client_->FlushReclaim();
    auto v = co_await client_->Get("k");
    EXPECT_EQ(v->size(), 10u);
  });
  sim_.Run();
  auto& fl = server_->prism().freelists();
  // Every displaced buffer returned to its own class: only the final
  // 10-byte record is live (class 0; class 0 also hosts the tombstone).
  EXPECT_EQ(fl.available(0), 62u);
  EXPECT_EQ(fl.available(1), 64u);  // 256-class never touched
  EXPECT_EQ(fl.available(2), 64u);  // 1024-class allocated then reclaimed
}

TEST_F(SizeClassKvTest, OversizedValueRejected) {
  sim::Spawn([&]() -> Task<void> {
    // 990 B fits the 1024 class; 1001 B trips max_value_size.
    EXPECT_TRUE((co_await client_->Put("big", Bytes(990, 1))).ok());
    Status s = co_await client_->Put("huge", Bytes(1001, 1));
    EXPECT_EQ(s.code(), Code::kInvalidArgument);
  });
  sim_.Run();
  // And no class fits a record larger than the biggest class.
  EXPECT_FALSE(server_->QueueForRecord(2000).ok());
}

// ---------- multi-shard PRISM-TX ----------

TEST(MultiShardTxTest, CrossShardTransactionsAreAtomic) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  tx::PrismTxOptions opts;
  opts.keys_per_shard = 32;
  opts.value_size = 64;
  opts.buffers_per_shard = 128;
  tx::PrismTxCluster cluster(&fabric, /*n_shards=*/4, opts);
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(cluster.LoadKey(k, Bytes(64, 100)).ok());
  }
  net::HostId h1 = fabric.AddHost("c1");
  net::HostId h2 = fabric.AddHost("c2");
  tx::PrismTxClient c1(&fabric, h1, &cluster, 1);
  tx::PrismTxClient c2(&fabric, h2, &cluster, 2);
  // Keys 0..3 land on four different shards (Locate uses key % n_shards).
  int transfers = 0;
  auto Transfer = [&](tx::PrismTxClient* client, uint64_t from,
                      uint64_t to) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      tx::Transaction t = client->Begin();
      auto vf = co_await client->Read(t, from);
      auto vt = co_await client->Read(t, to);
      if (!vf.ok() || !vt.ok()) continue;
      Bytes f = std::move(*vf), v = std::move(*vt);
      if (f[0] == 0) continue;
      f[0]--;
      v[0]++;
      client->Write(t, from, std::move(f));
      client->Write(t, to, std::move(v));
      if ((co_await client->Commit(t)).ok()) transfers++;
    }
  };
  sim::Spawn([&]() -> Task<void> { co_await Transfer(&c1, 0, 1); });
  sim::Spawn([&]() -> Task<void> { co_await Transfer(&c2, 2, 3); });
  sim::Spawn([&]() -> Task<void> { co_await Transfer(&c1, 1, 2); });
  sim.Run();
  EXPECT_GT(transfers, 0);
  // Cross-shard conservation: sum of the four balances is unchanged.
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    tx::Transaction t = c1.Begin();
    int total = 0;
    for (uint64_t k = 0; k < 4; ++k) {
      auto v = co_await c1.Read(t, k);
      EXPECT_TRUE(v.ok());
      total += (*v)[0];
    }
    EXPECT_EQ(total, 400);
    checked = true;
  });
  sim.Run();
  EXPECT_TRUE(checked);
}


// ---------- variable-size PRISM-RS blocks (§7.3 extension) ----------

TEST(VariableRsTest, VariableSizedValuesRoundTrip) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 16;
  opts.block_size = 256;  // maximum
  opts.buffers_per_replica = 256;
  opts.variable_block_size = true;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId host = fabric.AddHost("client");
  rs::PrismRsClient client(&fabric, host, &cluster, 1);
  sim::Spawn([&]() -> Task<void> {
    // Values of different sizes on the same block, sequentially.
    for (size_t size : {5u, 200u, 37u, 256u, 1u}) {
      Bytes v(size, static_cast<uint8_t>(size));
      EXPECT_TRUE((co_await client.Put(3, v)).ok()) << size;
      auto got = co_await client.Get(3);
      EXPECT_TRUE(got.ok());
      EXPECT_EQ(got->size(), size);  // bounded read returns exact length
      EXPECT_EQ(*got, v);
    }
    // Over-max rejected.
    Status too_big = co_await client.Put(3, Bytes(257, 1));
    EXPECT_EQ(too_big.code(), Code::kInvalidArgument);
  });
  sim.Run();
}

TEST(VariableRsTest, ConcurrentWritersDifferentSizesLinearize) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 4;
  opts.block_size = 128;
  opts.buffers_per_replica = 512;
  opts.variable_block_size = true;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId h1 = fabric.AddHost("c1");
  net::HostId h2 = fabric.AddHost("c2");
  rs::PrismRsClient c1(&fabric, h1, &cluster, 1);
  rs::PrismRsClient c2(&fabric, h2, &cluster, 2);
  // Writers use distinct sizes; every read must see a complete value whose
  // length matches its fill byte (tag and bound install atomically).
  bool torn = false;
  auto Write = [&](rs::PrismRsClient* client, uint8_t fill,
                   size_t size) -> Task<void> {
    for (int i = 0; i < 15; ++i) {
      Status s = co_await client->Put(0, Bytes(size, fill));
      EXPECT_TRUE(s.ok());
    }
  };
  auto ReadCheck = [&](rs::PrismRsClient* client) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      auto v = co_await client->Get(0);
      EXPECT_TRUE(v.ok());
      if (v->empty()) continue;  // initial zero block
      const uint8_t fill = (*v)[0];
      size_t expected = fill == 7 ? 30 : (fill == 9 ? 100 : v->size());
      if (fill == 7 || fill == 9) {
        if (v->size() != expected) torn = true;
        for (uint8_t b : *v) {
          if (b != fill) torn = true;
        }
      }
    }
  };
  sim::Spawn([&]() -> Task<void> { co_await Write(&c1, 7, 30); });
  sim::Spawn([&]() -> Task<void> { co_await Write(&c2, 9, 100); });
  sim::Spawn([&]() -> Task<void> { co_await ReadCheck(&c1); });
  sim::Spawn([&]() -> Task<void> { co_await ReadCheck(&c2); });
  sim.Run();
  EXPECT_FALSE(torn);
}

TEST(VariableRsTest, SurvivesReplicaFailure) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 4;
  opts.block_size = 128;
  opts.buffers_per_replica = 128;
  opts.variable_block_size = true;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId host = fabric.AddHost("client");
  rs::PrismRsClient client(&fabric, host, &cluster, 1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client.Put(0, Bytes(42, 0xcd))).ok());
    fabric.SetHostUp(0, false);
    auto v = co_await client.Get(0);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(v->size(), 42u);
    EXPECT_EQ((*v)[0], 0xcd);
  });
  sim.Run();
}


// ---------- one-round ABD reads (write-back elision) ----------

TEST(OneRoundReadTest, UnanimousGetSkipsWriteback) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 8;
  opts.block_size = 64;
  opts.buffers_per_replica = 256;
  opts.skip_unanimous_writeback = true;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId host = fabric.AddHost("client");
  rs::PrismRsClient client(&fabric, host, &cluster, 1);
  double get_us = 0;
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client.Put(0, Bytes(64, 1))).ok());
    sim::TimePoint start = sim.Now();
    auto v = co_await client.Get(0);
    EXPECT_TRUE(v.ok());
    get_us = sim::ToMicros(sim.Now() - start);
  });
  sim.Run();
  EXPECT_GT(client.writebacks_skipped(), 0u);
  EXPECT_LT(get_us, 7.0);  // one round (~6 us) instead of two (~12 us)
}

TEST(OneRoundReadTest, StillLinearizableUnderConcurrency) {
  // Mixed readers/writers with the optimization ON: tags observed by any
  // single client's operation sequence never regress, and a read after a
  // completed write sees a tag at least as large.
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 2;
  opts.block_size = 64;
  opts.buffers_per_replica = 1024;
  opts.skip_unanimous_writeback = true;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  for (uint16_t c = 1; c <= 4; ++c) {
    net::HostId host = fabric.AddHost("c" + std::to_string(c));
    clients.push_back(std::make_unique<rs::PrismRsClient>(&fabric, host,
                                                          &cluster, c));
  }
  bool monotone = true;
  for (int c = 0; c < 4; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      rs::PrismRsClient* client = clients[static_cast<size_t>(c)].get();
      uint64_t last = 0;
      for (int i = 0; i < 20; ++i) {
        rs::Tag tag;
        if ((c + i) % 3 == 0) {
          Status s = co_await client->Put(
              0, Bytes(64, static_cast<uint8_t>(c * 32 + i)), &tag);
          EXPECT_TRUE(s.ok());
          if (tag.Packed() <= last) monotone = false;
        } else {
          auto v = co_await client->Get(0, &tag);
          EXPECT_TRUE(v.ok());
          if (tag.Packed() < last) monotone = false;
        }
        last = tag.Packed();
      }
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace prism
