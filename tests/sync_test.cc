// Unit tests for the one-sided synchronization schemes (src/sync): per-
// scheme behavior under contention, crash windows, and stalls, plus a
// 100-seed clean sweep across every correct scheme. The guideline-violating
// kUnfencedBuggy scheme is deliberately NOT swept here — its corruption is
// schedule-dependent and lives in the explore suite (explore_test, and
// tools/explore_main --workload=sync_buggy); this file only pins down that
// its canonical schedules stay clean.
#include "src/sync/sync.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/check/checker.h"
#include "src/check/history.h"
#include "src/common/rng.h"
#include "src/net/fabric.h"
#include "src/rdma/service.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace prism::sync {
namespace {

using sim::Task;

// One self-contained contended run: `n_clients` clients of one scheme fire
// `ops_per_client` skewed ops at a 2-key index, with optional per-client
// critical-section stalls. Verifies linearizability and that the final
// value of every key is a value some writer actually wrote (torn values
// fingerprint to unwritten ValueIds, so both checks catch them).
struct RunSpec {
  SyncScheme scheme = SyncScheme::kSpinlock;
  uint64_t seed = 1;
  int n_clients = 2;
  int ops_per_client = 6;
  double update_fraction = 0.6;
  SyncOptions opts;
  // client index → stall inside every critical section.
  std::vector<sim::Duration> stalls;
};

struct RunResult {
  bool lin_ok = false;
  std::string lin_error;
  bool final_ok = false;
  std::string final_error;
  std::vector<uint64_t> round_trips;
  std::vector<uint64_t> lock_conflicts;
  std::vector<uint64_t> optimistic_retries;
  std::vector<uint64_t> lease_steals;
  std::vector<uint64_t> fencing_aborts;
  uint64_t lock_word_key1 = ~0ull;
  uint64_t version_word_key1 = ~0ull;
};

RunResult RunContended(const RunSpec& spec) {
  constexpr uint64_t kKeys = 2;
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/spec.seed);
  net::HostId server_host = fabric.AddHost("index");
  SyncIndexServer server(&fabric, server_host, spec.opts);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    PRISM_CHECK(server.LoadKey(k, InitialValue()).ok());
  }
  const check::ValueId initial = check::IdOf(InitialValue());

  check::HistoryRecorder history(&sim);
  std::vector<std::unique_ptr<SyncClient>> clients;
  std::vector<Bytes> written;  // every value any client attempted to write
  for (int c = 0; c < spec.n_clients; ++c) {
    net::HostId h = fabric.AddHost("client" + std::to_string(c));
    clients.push_back(std::make_unique<SyncClient>(
        &fabric, h, &server, spec.scheme, static_cast<uint16_t>(c + 1),
        spec.seed * 131 + static_cast<uint64_t>(c)));
    clients[c]->set_history(&history, c + 1);
    if (c < static_cast<int>(spec.stalls.size())) {
      clients[c]->set_critical_stall(spec.stalls[c]);
    }
  }

  sim::TaskTracker tracker;
  for (int c = 0; c < spec.n_clients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(spec.seed * 977 + static_cast<uint64_t>(c));
          for (int i = 0; i < spec.ops_per_client; ++i) {
            const uint64_t key =
                rng.NextBool(0.75) ? 1 : 1 + rng.NextBelow(kKeys);
            if (rng.NextBool(spec.update_fraction)) {
              Bytes v = MakeValue(spec.seed, c, i);
              written.push_back(v);
              (void)co_await clients[c]->Update(key, std::move(v));
            } else {
              (void)co_await clients[c]->Read(key);
            }
            co_await sim::SleepFor(&sim, sim::Micros(rng.NextInRange(0, 6)));
          }
        },
        &tracker);
  }
  sim.Run();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "clients hung";

  RunResult res;
  check::CheckResult lin = check::CheckLinearizable(history.ops(), initial);
  res.lin_ok = lin.ok;
  res.lin_error = lin.error;
  // Final values must be bytes somebody wrote (or the preload) — a torn
  // final value matches neither.
  res.final_ok = true;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    const Bytes fin = server.ValueBytes(k);
    bool known = fin == InitialValue();
    for (const Bytes& w : written) known = known || fin == w;
    if (!known) {
      res.final_ok = false;
      res.final_error = "key " + std::to_string(k) + " holds torn bytes";
    }
  }
  for (int c = 0; c < spec.n_clients; ++c) {
    res.round_trips.push_back(clients[c]->round_trips());
    res.lock_conflicts.push_back(clients[c]->lock_conflicts());
    res.optimistic_retries.push_back(clients[c]->optimistic_retries());
    res.lease_steals.push_back(clients[c]->lease_steals());
    res.fencing_aborts.push_back(clients[c]->fencing_aborts());
  }
  res.lock_word_key1 = server.LockWord(1);
  res.version_word_key1 = server.VersionWord(1);
  return res;
}

uint64_t Sum(const std::vector<uint64_t>& v) {
  uint64_t s = 0;
  for (uint64_t x : v) s += x;
  return s;
}

// ---- spinlock: mutual exclusion under a crash window ----

// A "crashed" holder — a raw CAS seizes the lock and the owner never
// returns — wedges the spinlock for the length of the window. Competing
// clients must stay SAFE (no torn values, linearizable history, failed
// updates really absent) even though they lose liveness until the lock is
// reclaimed.
TEST(SpinlockTest, MutualExclusionAcrossCrashWindow) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(), /*loss_seed=*/7);
  net::HostId server_host = fabric.AddHost("index");
  SyncOptions opts;
  // Short attempt budget so wedged clients abort inside the window instead
  // of outlasting it.
  opts.max_attempts = 4;
  SyncIndexServer server(&fabric, server_host, opts);
  ASSERT_TRUE(server.LoadKey(1, InitialValue()).ok());
  const uint64_t slot = *server.SlotOf(1);
  const rdma::Addr lock_addr = server.slot_addr(slot) + kLockOff;

  check::HistoryRecorder history(&sim);
  SyncClient c1(&fabric, fabric.AddHost("c1"), &server,
                SyncScheme::kSpinlock, 1, 101);
  SyncClient c2(&fabric, fabric.AddHost("c2"), &server,
                SyncScheme::kSpinlock, 2, 202);
  c1.set_history(&history, 1);
  c2.set_history(&history, 2);

  net::HostId crash_host = fabric.AddHost("crasher");
  rdma::RdmaClient crasher(&fabric, crash_host);

  sim::TaskTracker tracker;
  int c1_failures = 0;
  // The crasher grabs the lock at t=0 and "dies" holding it; an operator
  // reclaims the lock 80µs later.
  sim::Spawn(
      [&]() -> Task<void> {
        Result<uint64_t> old = co_await crasher.CompareSwap(
            &server.rdma(), server.rkey(), lock_addr, 0, 99);
        PRISM_CHECK(old.ok() && *old == 0) << "crasher failed to seize lock";
        co_await sim::SleepFor(&sim, sim::Micros(80));
        (void)co_await crasher.Write(&server.rdma(), server.rkey(), lock_addr,
                                     Bytes(8, 0));
      },
      &tracker);
  sim::Spawn(
      [&]() -> Task<void> {
        for (int i = 0; i < 6; ++i) {
          Status s = co_await c1.Update(1, MakeValue(7, 0, i));
          if (!s.ok()) ++c1_failures;
          co_await sim::SleepFor(&sim, sim::Micros(10));
        }
      },
      &tracker);
  sim::Spawn(
      [&]() -> Task<void> {
        for (int i = 0; i < 6; ++i) {
          (void)co_await c2.Read(1);
          co_await sim::SleepFor(&sim, sim::Micros(10));
        }
      },
      &tracker);
  sim.Run();
  ASSERT_EQ(tracker.live(), 0u);

  // Liveness lost inside the window: some updates aborted after
  // max_attempts. Safety kept: the aborted ops are recorded as failed, the
  // history stays linearizable, and nothing tore.
  EXPECT_GT(c1_failures, 0);
  EXPECT_GT(c1.lock_conflicts(), 0u);
  check::CheckResult lin =
      check::CheckLinearizable(history.ops(), check::IdOf(InitialValue()));
  EXPECT_TRUE(lin.ok) << lin.error;
  EXPECT_EQ(server.LockWord(1), 0u);
}

// ---- optimistic: readers retry on a version bump ----

TEST(OptimisticTest, ReadRetriesOnVersionBump) {
  RunSpec spec;
  spec.scheme = SyncScheme::kOptimistic;
  spec.seed = 3;
  spec.n_clients = 3;
  spec.ops_per_client = 8;
  spec.update_fraction = 0.5;
  // Client 0 stalls 25µs inside every write's odd-version window, so
  // concurrent readers see an in-progress or bumped version and retry.
  spec.stalls = {sim::Micros(25)};
  RunResult res = RunContended(spec);
  EXPECT_TRUE(res.lin_ok) << res.lin_error;
  EXPECT_TRUE(res.final_ok) << res.final_error;
  EXPECT_GT(Sum(res.optimistic_retries), 0u);
  // Writers restored the seqlock to stable (even) on completion.
  EXPECT_EQ(res.version_word_key1 % 2, 0u);
}

// ---- lease: expiry + fencing reject a stale holder ----

TEST(LeaseTest, ExpiryAndFencingRejectStaleHolder) {
  RunSpec spec;
  spec.scheme = SyncScheme::kLease;
  spec.seed = 5;
  spec.n_clients = 3;
  spec.ops_per_client = 8;
  spec.update_fraction = 0.8;
  spec.opts.lease_term = sim::Micros(40);
  spec.opts.lease_guard = sim::Micros(10);
  // Client 0 stalls past its own lease term in every critical section:
  // competitors must steal the expired lease, and client 0's self-fencing
  // must refuse the late value write instead of scribbling over the thief.
  spec.stalls = {sim::Micros(120)};
  RunResult res = RunContended(spec);
  EXPECT_TRUE(res.lin_ok) << res.lin_error;
  EXPECT_TRUE(res.final_ok) << res.final_error;
  EXPECT_GT(Sum(res.lease_steals), 0u);
  EXPECT_GT(res.fencing_aborts[0], 0u);
}

// Without a stall nobody's lease expires: leases behave like a plain
// mutual-exclusion lock and nothing is stolen or fenced.
TEST(LeaseTest, NoStealsOrFencingWithoutStalls) {
  RunSpec spec;
  spec.scheme = SyncScheme::kLease;
  spec.seed = 11;
  spec.n_clients = 2;
  spec.ops_per_client = 8;
  RunResult res = RunContended(spec);
  EXPECT_TRUE(res.lin_ok) << res.lin_error;
  EXPECT_EQ(Sum(res.lease_steals), 0u);
  EXPECT_EQ(Sum(res.fencing_aborts), 0u);
}

// ---- PRISM chains: the whole locked op in one round trip ----

TEST(PrismNativeTest, UpdateIsOneRoundTripAfterPrewarm) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(), /*loss_seed=*/1);
  net::HostId server_host = fabric.AddHost("index");
  SyncIndexServer server(&fabric, server_host, SyncOptions{});
  ASSERT_TRUE(server.LoadKey(1, InitialValue()).ok());

  SyncClient prism_client(&fabric, fabric.AddHost("cp"), &server,
                          SyncScheme::kPrismNative, 1, 11);
  SyncClient spin_client(&fabric, fabric.AddHost("cs"), &server,
                         SyncScheme::kSpinlock, 2, 22);
  prism_client.Prewarm(1);
  spin_client.Prewarm(1);

  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        Status s = co_await prism_client.Update(1, MakeValue(1, 0, 0));
        PRISM_CHECK(s.ok()) << s;
        // Serialize the two updates so neither pays contention retries.
        s = co_await spin_client.Update(1, MakeValue(1, 1, 0));
        PRISM_CHECK(s.ok()) << s;
      },
      &tracker);
  sim.Run();
  ASSERT_EQ(tracker.live(), 0u);

  // The fused chain [CAS; cond WRITE; cond unlock] is a single round trip;
  // the fenced spinlock pays acquire + write + release.
  EXPECT_EQ(prism_client.round_trips(), 1u);
  EXPECT_GE(spin_client.round_trips(), 3u);
  EXPECT_EQ(server.ValueBytes(1), MakeValue(1, 1, 0));
  EXPECT_EQ(server.LockWord(1), 0u);
}

// ---- probe path: un-prewarmed clients traverse the index remotely ----

TEST(ProbeTest, ColdClientFindsKeysAndMissesAbsentOnes) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(), /*loss_seed=*/2);
  net::HostId server_host = fabric.AddHost("index");
  SyncOptions opts;
  opts.n_slots = 16;
  SyncIndexServer server(&fabric, server_host, opts);
  for (uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(server.LoadKey(k, InitialValue()).ok());
  }

  SyncClient cold(&fabric, fabric.AddHost("cold"), &server,
                  SyncScheme::kSpinlock, 1, 33);
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        for (uint64_t k = 1; k <= 5; ++k) {
          Result<Bytes> v = co_await cold.Read(k);
          PRISM_CHECK(v.ok()) << v.status();
          PRISM_CHECK(*v == InitialValue());
        }
        Result<Bytes> miss = co_await cold.Read(77);
        PRISM_CHECK(!miss.ok());
      },
      &tracker);
  sim.Run();
  ASSERT_EQ(tracker.live(), 0u);
  EXPECT_GT(cold.probe_rounds(), 0u);
}

// ---- 100-seed clean sweep over every correct scheme ----

TEST(SyncSweepTest, HundredSeedsCleanAcrossCorrectSchemes) {
  const SyncScheme schemes[] = {SyncScheme::kSpinlock, SyncScheme::kOptimistic,
                                SyncScheme::kLease, SyncScheme::kPrismNative};
  for (SyncScheme scheme : schemes) {
    for (uint64_t seed = 1; seed <= 100; ++seed) {
      RunSpec spec;
      spec.scheme = scheme;
      spec.seed = seed;
      RunResult res = RunContended(spec);
      ASSERT_TRUE(res.lin_ok) << SchemeName(scheme) << " seed " << seed << ": "
                              << res.lin_error;
      ASSERT_TRUE(res.final_ok) << SchemeName(scheme) << " seed " << seed
                                << ": " << res.final_error;
      ASSERT_EQ(res.lock_word_key1, 0u)
          << SchemeName(scheme) << " seed " << seed;
    }
  }
}

// The buggy scheme's corruption is strictly schedule-dependent: under the
// canonical engine (no schedule hook) it is clean — which is exactly why
// the explore suite, not a seed sweep, is what catches it.
TEST(SyncSweepTest, UnfencedBuggyCanonicalSchedulesAreClean) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    RunSpec spec;
    spec.scheme = SyncScheme::kUnfencedBuggy;
    spec.seed = seed;
    RunResult res = RunContended(spec);
    ASSERT_TRUE(res.lin_ok) << "seed " << seed << ": " << res.lin_error;
    ASSERT_TRUE(res.final_ok) << "seed " << seed << ": " << res.final_error;
  }
}

}  // namespace
}  // namespace prism::sync
