// Tests for the RDMA substrate: memory registration, verbs semantics, and
// fabric-level one-sided operations with calibrated timing.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/fabric.h"
#include "src/rdma/batch.h"
#include "src/rdma/memory.h"
#include "src/rdma/service.h"
#include "src/rdma/verbs.h"
#include "src/sim/task.h"

namespace prism::rdma {
namespace {

using sim::Micros;
using sim::Task;

// ---------- AddressSpace ----------

TEST(AddressSpaceTest, CarveProducesDisjointAlignedRanges) {
  AddressSpace mem(1 << 20);
  Addr a = *mem.Carve(100, 64);
  Addr b = *mem.Carve(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(AddressSpaceTest, CarveRejectsExhaustion) {
  AddressSpace mem(4096);
  EXPECT_TRUE(mem.Carve(1000).ok());
  EXPECT_EQ(mem.Carve(1 << 20).code(), Code::kResourceExhausted);
}

TEST(AddressSpaceTest, AddressZeroNeverMapped) {
  AddressSpace mem(4096);
  Addr a = *mem.Carve(8);
  EXPECT_GT(a, 0u);  // null-pointer trap zone
}

TEST(AddressSpaceTest, RegisterAndValidate) {
  AddressSpace mem(1 << 16);
  auto region = *mem.CarveAndRegister(1024, kRemoteRead | kRemoteWrite);
  EXPECT_TRUE(mem.Validate(region.rkey, region.base, 1024, kRemoteRead).ok());
  EXPECT_TRUE(
      mem.Validate(region.rkey, region.base + 512, 512, kRemoteWrite).ok());
}

TEST(AddressSpaceTest, ValidateRejectsUnknownRkey) {
  AddressSpace mem(1 << 16);
  auto region = *mem.CarveAndRegister(1024, kRemoteAll);
  EXPECT_EQ(mem.Validate(region.rkey + 999, region.base, 8, kRemoteRead)
                .code(),
            Code::kPermissionDenied);
}

TEST(AddressSpaceTest, ValidateRejectsOutOfRegion) {
  AddressSpace mem(1 << 16);
  auto region = *mem.CarveAndRegister(1024, kRemoteAll);
  EXPECT_EQ(mem.Validate(region.rkey, region.base + 1020, 8, kRemoteRead)
                .code(),
            Code::kOutOfRange);
  EXPECT_EQ(mem.Validate(region.rkey, region.base - 1, 8, kRemoteRead).code(),
            Code::kOutOfRange);
}

TEST(AddressSpaceTest, ValidateRejectsMissingRights) {
  AddressSpace mem(1 << 16);
  auto ro = *mem.CarveAndRegister(64, kRemoteRead);
  EXPECT_EQ(mem.Validate(ro.rkey, ro.base, 8, kRemoteWrite).code(),
            Code::kPermissionDenied);
  EXPECT_EQ(mem.Validate(ro.rkey, ro.base, 8, kRemoteAtomic).code(),
            Code::kPermissionDenied);
}

TEST(AddressSpaceTest, OverflowingRangeRejected) {
  AddressSpace mem(1 << 16);
  auto region = *mem.CarveAndRegister(64, kRemoteAll);
  // addr + len would overflow uint64: must not wrap around into the region.
  EXPECT_FALSE(
      mem.Validate(region.rkey, ~0ull - 4, 16, kRemoteRead).ok());
}

TEST(AddressSpaceTest, OnNicAttribute) {
  AddressSpace mem(1 << 16);
  auto host_region = *mem.CarveAndRegister(64, kRemoteAll);
  auto nic_region = *mem.CarveAndRegister(64, kRemoteAll, kOnNic);
  EXPECT_FALSE(mem.IsOnNic(host_region.base));
  EXPECT_TRUE(mem.IsOnNic(nic_region.base));
  EXPECT_TRUE(mem.IsOnNic(nic_region.base + 63));
}

TEST(AddressSpaceTest, LocalLoadStore) {
  AddressSpace mem(4096);
  Addr a = *mem.Carve(16);
  mem.StoreWord(a, 0xabcdef);
  EXPECT_EQ(mem.LoadWord(a), 0xabcdefu);
  mem.Store(a, BytesOfU64Pair(1, 2));
  Bytes out = mem.Load(a, 16);
  EXPECT_EQ(LoadU64(out.data()), 1u);
  EXPECT_EQ(LoadU64(out.data() + 8), 2u);
}

// ---------- Verbs semantics ----------

class VerbsTest : public ::testing::Test {
 protected:
  VerbsTest() : mem_(1 << 16) {
    region_ = *mem_.CarveAndRegister(4096, kRemoteAll);
  }
  AddressSpace mem_;
  MemoryRegion region_;
};

TEST_F(VerbsTest, ReadWriteRoundTrip) {
  Bytes data = BytesOfString("hello rdma");
  ASSERT_TRUE(Verbs::Write(mem_, region_.rkey, region_.base, data).ok());
  auto read = Verbs::Read(mem_, region_.rkey, region_.base, data.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(StringOfBytes(*read), "hello rdma");
}

TEST_F(VerbsTest, ReadDeniedWithoutRights) {
  auto wo = *mem_.CarveAndRegister(64, kRemoteWrite);
  EXPECT_EQ(Verbs::Read(mem_, wo.rkey, wo.base, 8).code(),
            Code::kPermissionDenied);
}

TEST_F(VerbsTest, CompareSwapSuccessAndFailure) {
  Addr a = region_.base;
  mem_.StoreWord(a, 100);
  auto old1 = Verbs::CompareSwap(mem_, region_.rkey, a, 100, 200);
  ASSERT_TRUE(old1.ok());
  EXPECT_EQ(*old1, 100u);
  EXPECT_EQ(mem_.LoadWord(a), 200u);
  // Failed compare leaves memory untouched but still returns the old value.
  auto old2 = Verbs::CompareSwap(mem_, region_.rkey, a, 100, 300);
  ASSERT_TRUE(old2.ok());
  EXPECT_EQ(*old2, 200u);
  EXPECT_EQ(mem_.LoadWord(a), 200u);
}

TEST_F(VerbsTest, CasRequiresAlignment) {
  EXPECT_EQ(
      Verbs::CompareSwap(mem_, region_.rkey, region_.base + 4, 0, 1).code(),
      Code::kInvalidArgument);
}

TEST_F(VerbsTest, FetchAddAccumulates) {
  Addr a = region_.base;
  mem_.StoreWord(a, 10);
  EXPECT_EQ(*Verbs::FetchAdd(mem_, region_.rkey, a, 5), 10u);
  EXPECT_EQ(*Verbs::FetchAdd(mem_, region_.rkey, a, 7), 15u);
  EXPECT_EQ(mem_.LoadWord(a), 22u);
}

TEST_F(VerbsTest, MaskedCasEqualOnSelectedField) {
  // 16-byte operand: [fieldA | fieldB]. Compare fieldA, swap fieldB.
  Addr a = region_.base;
  mem_.Store(a, BytesOfU64Pair(42, 7));
  Bytes data = BytesOfU64Pair(42, 99);
  auto outcome = Verbs::MaskedCompareSwap(
      mem_, region_.rkey, a, data, FieldMask(16, 0, 8), FieldMask(16, 8, 8),
      CasCompare::kEqual);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->swapped);
  EXPECT_EQ(LoadU64(outcome->old_value.data()), 42u);
  EXPECT_EQ(LoadU64(outcome->old_value.data() + 8), 7u);
  EXPECT_EQ(mem_.LoadWord(a), 42u);      // compare field untouched
  EXPECT_EQ(mem_.LoadWord(a + 8), 99u);  // swap field updated
}

TEST_F(VerbsTest, MaskedCasEqualFailureReturnsOldValue) {
  Addr a = region_.base;
  mem_.Store(a, BytesOfU64Pair(42, 7));
  Bytes data = BytesOfU64Pair(41, 99);
  auto outcome = Verbs::MaskedCompareSwap(
      mem_, region_.rkey, a, data, FieldMask(16, 0, 8), FieldMask(16, 8, 8),
      CasCompare::kEqual);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->swapped);
  EXPECT_EQ(mem_.LoadWord(a + 8), 7u);  // unchanged
  EXPECT_EQ(LoadU64(outcome->old_value.data()), 42u);
}

TEST_F(VerbsTest, MaskedCasGreaterUsesHighOffsetAsMostSignificant) {
  // Little-endian 16-byte integer: the field at offset 8 is more significant.
  Addr a = region_.base;
  mem_.Store(a, BytesOfU64Pair(/*lo=*/100, /*hi=*/5));
  // (lo=0, hi=6) > (lo=100, hi=5) because hi dominates.
  Bytes data = BytesOfU64Pair(0, 6);
  Bytes full = FieldMask(16, 0, 16);
  auto outcome = Verbs::MaskedCompareSwap(mem_, region_.rkey, a, data, full,
                                          full, CasCompare::kGreater);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->swapped);
  EXPECT_EQ(mem_.LoadWord(a), 0u);
  EXPECT_EQ(mem_.LoadWord(a + 8), 6u);
}

TEST_F(VerbsTest, MaskedCasGreaterStrict) {
  Addr a = region_.base;
  mem_.StoreWord(a, 10);
  Bytes data = BytesOfU64(10);
  Bytes mask = FieldMask(8, 0, 8);
  auto outcome = Verbs::MaskedCompareSwap(mem_, region_.rkey, a, data, mask,
                                          mask, CasCompare::kGreater);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->swapped);  // equal is not greater
}

TEST_F(VerbsTest, MaskedCasLess) {
  Addr a = region_.base;
  mem_.StoreWord(a, 10);
  Bytes mask = FieldMask(8, 0, 8);
  auto outcome = Verbs::MaskedCompareSwap(mem_, region_.rkey, a,
                                          BytesOfU64(3), mask, mask,
                                          CasCompare::kLess);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->swapped);
  EXPECT_EQ(mem_.LoadWord(a), 3u);
}

TEST_F(VerbsTest, MaskedCasRejectsBadWidth) {
  Bytes data(12), mask(12);
  EXPECT_EQ(Verbs::MaskedCompareSwap(mem_, region_.rkey, region_.base, data,
                                     mask, mask, CasCompare::kEqual)
                .code(),
            Code::kInvalidArgument);
}

TEST_F(VerbsTest, MaskedCasRejectsMismatchedMaskWidth) {
  Bytes data(16), mask8(8), mask16(16);
  EXPECT_EQ(Verbs::MaskedCompareSwap(mem_, region_.rkey, region_.base, data,
                                     mask8, mask16, CasCompare::kEqual)
                .code(),
            Code::kInvalidArgument);
}

TEST_F(VerbsTest, MaskedCasRequiresAtomicRights) {
  auto ro = *mem_.CarveAndRegister(64, kRemoteRead | kRemoteWrite);
  Bytes data(8), mask(8, 0xff);
  EXPECT_EQ(Verbs::MaskedCompareSwap(mem_, ro.rkey, ro.base, data, mask, mask,
                                     CasCompare::kEqual)
                .code(),
            Code::kPermissionDenied);
}

// ---------- Fabric-level operations and timing ----------

class RdmaFabricTest : public ::testing::Test {
 protected:
  RdmaFabricTest()
      : fabric_(&sim_, net::CostModel::Fig1DirectTestbed()),
        server_(fabric_.AddHost("server")),
        client_host_(fabric_.AddHost("client")),
        mem_(1 << 20),
        hw_service_(&fabric_, server_, Backend::kHardwareNic, &mem_),
        sw_service_(&fabric_, server_, Backend::kSoftwareStack, &mem_),
        client_(&fabric_, client_host_) {
    region_ = *mem_.CarveAndRegister(8192, kRemoteAll);
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_;
  net::HostId client_host_;
  AddressSpace mem_;
  RdmaService hw_service_;
  RdmaService sw_service_;
  RdmaClient client_;
  MemoryRegion region_;
};

TEST_F(RdmaFabricTest, HardwareReadLatencyCalibrated) {
  mem_.Store(region_.base, Bytes(512, 0xaa));
  sim::TimePoint done_at = 0;
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.Read(&hw_service_, region_.rkey, region_.base,
                                   512);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 512u);
    done_at = sim_.Now();
  });
  sim_.Run();
  // Paper Fig. 1: one-sided 512 B READ on the direct testbed ≈ 2.5 µs.
  EXPECT_NEAR(sim::ToMicros(done_at), 2.5, 0.25);
}

TEST_F(RdmaFabricTest, SoftwareReadAddsPaperPremium) {
  mem_.Store(region_.base, Bytes(512, 0xbb));
  sim::TimePoint hw_done = 0, sw_done = 0;
  sim::Spawn([&]() -> Task<void> {
    co_await client_.Read(&hw_service_, region_.rkey, region_.base, 512);
    hw_done = sim_.Now();
    co_await client_.Read(&sw_service_, region_.rkey, region_.base, 512);
    sw_done = sim_.Now();
  });
  sim_.Run();
  double premium = sim::ToMicros(sw_done - hw_done) - sim::ToMicros(hw_done);
  // §4.3: the software prototype adds 2.5–2.8 µs per op.
  EXPECT_GT(premium, 2.0);
  EXPECT_LT(premium, 3.2);
}

TEST_F(RdmaFabricTest, WriteIsVisibleToSubsequentRead) {
  sim::Spawn([&]() -> Task<void> {
    Status w = co_await client_.Write(&hw_service_, region_.rkey,
                                      region_.base, BytesOfString("payload"));
    EXPECT_TRUE(w.ok());
    auto r =
        co_await client_.Read(&hw_service_, region_.rkey, region_.base, 7);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(StringOfBytes(*r), "payload");
  });
  sim_.Run();
}

TEST_F(RdmaFabricTest, ErrorsPropagateAsNacks) {
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.Read(&hw_service_, region_.rkey + 1,
                                   region_.base, 8);
    EXPECT_EQ(r.code(), Code::kPermissionDenied);
    Status w = co_await client_.Write(&hw_service_, region_.rkey,
                                      region_.base + 8190, Bytes(16));
    EXPECT_EQ(w.code(), Code::kOutOfRange);
  });
  sim_.Run();
}

TEST_F(RdmaFabricTest, CasOverFabric) {
  mem_.StoreWord(region_.base, 5);
  sim::Spawn([&]() -> Task<void> {
    auto old = co_await client_.CompareSwap(&hw_service_, region_.rkey,
                                            region_.base, 5, 9);
    EXPECT_TRUE(old.ok());
    EXPECT_EQ(*old, 5u);
    EXPECT_EQ(mem_.LoadWord(region_.base), 9u);
  });
  sim_.Run();
}

TEST_F(RdmaFabricTest, ConcurrentCasAtomicity) {
  // 64 concurrent increments via CAS-retry must all land (no lost updates).
  mem_.StoreWord(region_.base, 0);
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    sim::Spawn([&]() -> Task<void> {
      while (true) {
        auto cur = co_await client_.Read(&hw_service_, region_.rkey,
                                         region_.base, 8);
        EXPECT_TRUE(cur.ok());
        uint64_t v = LoadU64(cur->data());
        auto old = co_await client_.CompareSwap(&hw_service_, region_.rkey,
                                                region_.base, v, v + 1);
        EXPECT_TRUE(old.ok());
        if (*old == v) break;
      }
      completed++;
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(mem_.LoadWord(region_.base), 64u);
}

TEST_F(RdmaFabricTest, DownHostYieldsUnavailable) {
  fabric_.SetHostUp(server_, false);
  sim::Spawn([&]() -> Task<void> {
    auto r =
        co_await client_.Read(&hw_service_, region_.rkey, region_.base, 8);
    EXPECT_EQ(r.code(), Code::kUnavailable);
  });
  sim_.Run();
}

TEST_F(RdmaFabricTest, ServerCrashMidOpTimesOutInsteadOfHanging) {
  // The server crash/restarts while the READ request is on the wire: the
  // old incarnation's traffic is purged, no completion ever arrives, and
  // the op must resolve kTimedOut at ≈ kOpTimeout instead of hanging.
  mem_.Store(region_.base, Bytes(64, 0xaa));
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto r =
        co_await client_.Read(&hw_service_, region_.rkey, region_.base, 64);
    EXPECT_EQ(r.code(), Code::kTimedOut);
    EXPECT_GE(sim_.Now() - start, RdmaClient::kOpTimeout);
    EXPECT_LT(sim_.Now() - start, RdmaClient::kOpTimeout + sim::Millis(1));
    checked = true;
  });
  sim_.Schedule(sim::Nanos(500), [&] {  // post done, delivery pending
    fabric_.SetHostUp(server_, false);
    fabric_.SetHostUp(server_, true);
  });
  sim_.Run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(fabric_.purged_messages(), 1u);
}

TEST_F(RdmaFabricTest, ServerEgressSaturatesUnderLoad) {
  // 200 concurrent 512 B reads: aggregate completion is bounded by the
  // server's 25 Gb/s egress link, i.e. ~183 ns serialization per reply.
  mem_.Store(region_.base, Bytes(512, 1));
  int done = 0;
  sim::TimePoint last_completion = 0;
  for (int i = 0; i < 200; ++i) {
    sim::Spawn([&]() -> Task<void> {
      auto r = co_await client_.Read(&hw_service_, region_.rkey,
                                     region_.base, 512);
      EXPECT_TRUE(r.ok());
      done++;
      last_completion = std::max(last_completion, sim_.Now());
    });
  }
  sim_.Run();  // Now() ends at the 5 ms op-timeout no-ops, so measure above
  EXPECT_EQ(done, 200);
  // 200 replies * (512+60)B * 8 / 25Gbps = 36.6 µs minimum wall time.
  EXPECT_GT(sim::ToMicros(last_completion), 36.0);
  EXPECT_LT(sim::ToMicros(last_completion), 55.0);
}

// ---------- Verb-layer doorbell batching / completion coalescing ----------

TEST_F(RdmaFabricTest, UnbatchedClientTicksOneDoorbellAndPollPerOp) {
  mem_.Store(region_.base, Bytes(64, 1));
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto r =
          co_await client_.Read(&hw_service_, region_.rkey, region_.base, 64);
      EXPECT_TRUE(r.ok());
    }
  });
  sim_.Run();
  EXPECT_EQ(client_.tally().round_trips, 3u);
  EXPECT_EQ(client_.tally().doorbells, 3u);
  EXPECT_EQ(client_.tally().cq_polls, 3u);
}

TEST_F(RdmaFabricTest, DoorbellBatchingAmortizesClientActions) {
  mem_.Store(region_.base, Bytes(64, 2));
  BatchOptions opts;
  opts.doorbell_batch = 4;
  opts.cq_moderation = 4;
  VerbBatcher batcher(&sim_, &fabric_.cost(), opts);
  client_.set_batcher(&batcher);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    sim::Spawn([&]() -> Task<void> {
      auto r =
          co_await client_.Read(&hw_service_, region_.rkey, region_.base, 64);
      EXPECT_TRUE(r.ok());
      done++;
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 4);
  // Protocol shape untouched: still one round trip per op.
  EXPECT_EQ(client_.tally().round_trips, 4u);
  // Client CPU actions amortized: the 4 WRs shared one doorbell ring, and
  // the 4 responses (landing within the coalescing window) one CQ drain.
  EXPECT_EQ(batcher.wrs_posted(), 4u);
  EXPECT_EQ(batcher.doorbells_rung(), 1u);
  EXPECT_EQ(batcher.cqes_reaped(), 4u);
  EXPECT_EQ(batcher.cq_drains(), 1u);
  EXPECT_EQ(client_.tally().doorbells, 1u);
  EXPECT_EQ(client_.tally().cq_polls, 1u);
}

TEST_F(RdmaFabricTest, PartialBatchFlushesOnTimeout) {
  // A lone op with an 8-deep batch still completes: the doorbell rings at
  // db_timeout and the CQ drains at cq_timeout, adding ~4 µs to the
  // calibrated 2.5 µs read.
  mem_.Store(region_.base, Bytes(64, 3));
  VerbBatcher batcher(&sim_, &fabric_.cost(), BatchOptions::Batched());
  client_.set_batcher(&batcher);
  sim::TimePoint done_at = 0;
  sim::Spawn([&]() -> Task<void> {
    auto r =
        co_await client_.Read(&hw_service_, region_.rkey, region_.base, 64);
    EXPECT_TRUE(r.ok());
    done_at = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(batcher.doorbells_rung(), 1u);
  EXPECT_EQ(batcher.cq_drains(), 1u);
  EXPECT_NEAR(sim::ToMicros(done_at),
              2.5 + sim::ToMicros(batcher.options().db_timeout) +
                  sim::ToMicros(batcher.options().cq_timeout),
              0.3);
}

TEST_F(RdmaFabricTest, BatchOfOneMatchesUnbatchedPath) {
  // doorbell_batch == cq_moderation == 1 must charge exactly the flat
  // client_post/completion costs: same timing and same tally as no batcher.
  mem_.Store(region_.base, Bytes(512, 4));
  sim::TimePoint unbatched_done = 0;
  sim::Spawn([&]() -> Task<void> {
    auto r =
        co_await client_.Read(&hw_service_, region_.rkey, region_.base, 512);
    EXPECT_TRUE(r.ok());
    unbatched_done = sim_.Now();
  });
  sim_.Run();

  VerbBatcher batcher(&sim_, &fabric_.cost(), BatchOptions{});
  RdmaClient batched(&fabric_, client_host_);
  batched.set_batcher(&batcher);
  sim::TimePoint start = sim_.Now();
  sim::TimePoint batched_done = 0;
  sim::Spawn([&]() -> Task<void> {
    auto r =
        co_await batched.Read(&hw_service_, region_.rkey, region_.base, 512);
    EXPECT_TRUE(r.ok());
    batched_done = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(batched_done - start, unbatched_done);
  EXPECT_EQ(batched.tally().doorbells, 1u);
  EXPECT_EQ(batched.tally().cq_polls, 1u);
  EXPECT_EQ(batched.tally().round_trips, client_.tally().round_trips);
}

TEST(VerbBatcherDeterminismTest, BatchedRunReplaysBitIdentically) {
  auto run = [] {
    sim::Simulator sim;
    net::Fabric fabric(&sim, net::CostModel::Fig1DirectTestbed());
    net::HostId server = fabric.AddHost("server");
    net::HostId client_host = fabric.AddHost("client");
    AddressSpace mem(1 << 20);
    RdmaService service(&fabric, server, Backend::kHardwareNic, &mem);
    MemoryRegion region = *mem.CarveAndRegister(8192, kRemoteAll);
    mem.Store(region.base, Bytes(64, 9));
    RdmaClient client(&fabric, client_host);
    BatchOptions opts;
    opts.doorbell_batch = 3;
    opts.cq_moderation = 3;
    VerbBatcher batcher(&sim, &fabric.cost(), opts);
    client.set_batcher(&batcher);
    std::vector<int64_t> completions;
    for (int i = 0; i < 8; ++i) {
      sim::Spawn([&]() -> Task<void> {
        auto r =
            co_await client.Read(&service, region.rkey, region.base, 64);
        EXPECT_TRUE(r.ok());
        completions.push_back(sim.Now());
      });
    }
    sim.Run();
    completions.push_back(static_cast<int64_t>(sim.executed_events()));
    return completions;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace prism::rdma
