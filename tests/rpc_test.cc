// Tests for the eRPC-like two-sided RPC layer, including the §2.1
// calibration: a 512 B read RPC ≈ 5.6 µs vs a one-sided READ ≈ 3.2 µs on the
// 40 GbE cluster — the numbers that frame the paper's whole argument.
#include <gtest/gtest.h>

#include "src/net/fabric.h"
#include "src/rdma/service.h"
#include "src/rpc/rpc.h"
#include "src/sim/task.h"

namespace prism::rpc {
namespace {

using sim::Task;
using sim::ToMicros;

struct EchoRequest {
  std::string text;
};
struct ReadRequest {
  size_t bytes;
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_host_(fabric_.AddHost("server")),
        client_host_(fabric_.AddHost("client")),
        server_(&fabric_, server_host_),
        client_(&fabric_, client_host_) {}

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  RpcServer server_;
  RpcClient client_;
};

TEST_F(RpcTest, CallInvokesHandlerAndReturnsResponse) {
  server_.Register(1, [this](const Message& req) -> Task<MessagePtr> {
    std::string echoed = "echo:" + req.As<EchoRequest>().text;
    co_return Message::Of(EchoRequest{echoed}, 16 + echoed.size());
  });
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    // Hoisted: nested temporaries inside co_await expressions are
    // miscompiled by GCC 12 (see sim/task.h).
    EchoRequest req{"hi"};
    MessagePtr msg = Message::Of(std::move(req), 18);
    auto resp = co_await client_.Call(&server_, 1, msg);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ((*resp)->As<EchoRequest>().text, "echo:hi");
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(server_.calls_served(), 1u);
}

TEST_F(RpcTest, Sec21Calibration512ByteReadRpc) {
  // Handler "reads" 512 B and replies with it.
  server_.Register(2, [](const Message&) -> Task<MessagePtr> {
    co_return Message::Of(Bytes(512, 0xab), 512 + 16);
  });
  double rpc_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto resp = co_await client_.Call(&server_, 2, Message::Empty(24));
    EXPECT_TRUE(resp.ok());
    rpc_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  // §2.1: "Reading a 512-byte value using a one-sided read completes in
  // about 3.2 µs, making it 43% faster than using a two-sided RPC (5.6 µs)."
  EXPECT_NEAR(rpc_us, 5.6, 0.4);
}

TEST_F(RpcTest, Sec21CalibrationOneSidedRead) {
  rdma::AddressSpace mem(1 << 16);
  auto region = *mem.CarveAndRegister(4096, rdma::kRemoteAll);
  rdma::RdmaService rdma_service(&fabric_, server_host_,
                                 rdma::Backend::kHardwareNic, &mem);
  rdma::RdmaClient rdma_client(&fabric_, client_host_);
  double read_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto r = co_await rdma_client.Read(&rdma_service, region.rkey,
                                       region.base, 512);
    EXPECT_TRUE(r.ok());
    read_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(read_us, 3.2, 0.3);
  // And §2.1's punchline: two one-sided reads are SLOWER than one RPC.
  EXPECT_GT(2 * read_us, 5.6);
}

TEST_F(RpcTest, UnknownMethodReturnsEmpty) {
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto resp = co_await client_.Call(&server_, 99, Message::Empty(8));
    EXPECT_TRUE(resp.ok());
    EXPECT_TRUE(*resp == nullptr || (*resp)->empty());
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(RpcTest, DownServerUnavailable) {
  fabric_.SetHostUp(server_host_, false);
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto resp = co_await client_.Call(&server_, 1, Message::Empty(8));
    EXPECT_EQ(resp.code(), Code::kUnavailable);
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(RpcTest, ServerCrashMidCallTimesOutInsteadOfHanging) {
  // The server crashes (and even restarts) while the request is in flight:
  // the request is purged with the dead incarnation, no response ever
  // arrives, and the call must resolve kTimedOut at ≈ kRpcTimeout rather
  // than blocking the client forever.
  server_.Register(1, [](const Message&) -> Task<MessagePtr> {
    co_return Message::Empty(8);
  });
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto resp = co_await client_.Call(&server_, 1, Message::Empty(64));
    EXPECT_EQ(resp.code(), Code::kTimedOut);
    EXPECT_GE(sim_.Now() - start, RpcClient::kRpcTimeout);
    EXPECT_LT(sim_.Now() - start, RpcClient::kRpcTimeout + sim::Millis(1));
    checked = true;
  });
  // After the 350 ns client post, before the ~1 µs delivery.
  sim_.Schedule(sim::Nanos(500), [&] {
    fabric_.SetHostUp(server_host_, false);
    fabric_.SetHostUp(server_host_, true);
  });
  sim_.Run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(server_.calls_served(), 0u);
  EXPECT_EQ(fabric_.purged_messages(), 1u);
}

TEST_F(RpcTest, ServerCrashMidHandlerTimesOut) {
  // The request lands and the handler starts, but the host dies before the
  // response hits the wire; the reply send is dropped and the client times
  // out. (The sim handler keeps running — modeling state the dead server's
  // incarnation computed but could never ship.)
  server_.Register(2, [this](const Message&) -> Task<MessagePtr> {
    co_await sim::SleepFor(&sim_, sim::Micros(20));
    co_return Message::Empty(8);
  });
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto resp = co_await client_.Call(&server_, 2, Message::Empty(64));
    EXPECT_EQ(resp.code(), Code::kTimedOut);
    checked = true;
  });
  sim_.Schedule(sim::Micros(10), [&] {
    fabric_.SetHostUp(server_host_, false);
  });
  sim_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(RpcTest, HandlersConsumeServerCores) {
  // With 16 cores and ~2.8 µs of core time per call, 160 concurrent calls
  // need at least 10 core "waves" ≈ 28 µs of handler time.
  server_.Register(3, [](const Message&) -> Task<MessagePtr> {
    co_return Message::Empty(16);
  });
  int done = 0;
  sim::TimePoint last = 0;
  for (int i = 0; i < 160; ++i) {
    sim::Spawn([&]() -> Task<void> {
      auto resp = co_await client_.Call(&server_, 3, Message::Empty(64));
      EXPECT_TRUE(resp.ok());
      done++;
      last = std::max(last, sim_.Now());
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 160);
  double wall = ToMicros(last);
  EXPECT_GT(wall, 28.0);   // core-bound lower bound
  EXPECT_LT(wall, 60.0);   // but pipelined, not serialized per-call
  // Utilization accounting shows the CPU cost two-sided designs pay.
  EXPECT_GT(fabric_.Cores(server_host_).total_busy(), sim::Micros(400));
}

TEST_F(RpcTest, HandlerMayAwaitInsideCore) {
  server_.Register(4, [this](const Message&) -> Task<MessagePtr> {
    co_await sim::SleepFor(&sim_, sim::Micros(10));  // e.g. disk/lock wait
    co_return Message::Empty(8);
  });
  double us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto resp = co_await client_.Call(&server_, 4, Message::Empty(8));
    EXPECT_TRUE(resp.ok());
    us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_GT(us, 15.0);  // 10 µs handler + ~5.6 µs transport
}

}  // namespace
}  // namespace prism::rpc
