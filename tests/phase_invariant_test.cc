// Property test for the per-op phase decomposition (src/obs/timeline.h,
// DESIGN.md §5.9): the telescoping-sum construction guarantees that every
// nanosecond between an op's arrival and its completion lands in exactly one
// phase, so
//
//     sum over phases of phase_ns == end_ns - start_ns     (exactly)
//
// for every operation, on every stack, under every interleaving — not
// approximately, not within rounding, but as an integer identity. This file
// drives all four application stacks (PRISM-KV, PRISM-RS, PRISM-TX, and the
// one-sided synchronization suite) through an open-loop pool with phase
// timelines attached, across a 20-seed sweep, and checks the identity on
// every recorded timeline plus the store-level aggregates that
// tools/latency_report consumes:
//
//  * each timeline is finished, each phase is non-negative, phases sum to
//    the op's total;
//  * the store's exact per-class phase_total_ns equals the recomputed sum
//    over measured ops (window predicate: arrival >= start, completion <= end);
//  * started/measured op counters match; every exemplar satisfies the same
//    phase-sum identity.
//
// Half the seeds run with a span tracer attached (exercising the exemplar
// span-pinning path); the invariant cannot depend on it.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/kv/prism_kv.h"
#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/rs/prism_rs.h"
#include "src/sim/simulator.h"
#include "src/sync/sync.h"
#include "src/tx/prism_tx.h"
#include "src/workload/open_loop.h"

namespace prism {
namespace {

using sim::Task;

constexpr int kSeeds = 20;

struct RunResult {
  std::unique_ptr<obs::TimelineStore> store;
  int64_t win_start = 0;
  int64_t win_end = 0;
};

// Scaffold shared by all stacks: serial simulator, fabric, a tracer on even
// seeds, one open-loop pool with timelines attached. `build` wires servers
// and clients and registers the pool's op classes.
template <typename Build>
RunResult RunStack(uint64_t seed, const Build& build) {
  RunResult out;
  out.store = std::make_unique<obs::TimelineStore>();
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  obs::Tracer tracer;
  if (seed % 2 == 0) {
    fabric.AttachTracer(&tracer);
    out.store->SetTracer(&tracer);
  }

  // Per-seed offered rate: sweeps from light load into mild contention so
  // backlog, sync-spin, and retransmit-free phases all get populated.
  workload::PoolOptions popts;
  popts.workers = 6;
  workload::OpenLoopPool pool(
      &sim, workload::ArrivalSpec::Poisson(1.2e5 + 9e3 * seed), 12,
      Rng(7000 + seed), popts);
  net::HostId client_host = build(fabric, pool, seed);
  pool.set_timelines(out.store.get(), &fabric.obs(), client_host);

  out.win_start = sim::Micros(50);
  out.win_end = sim::Micros(550);
  pool.Start(out.win_start, out.win_end);
  sim.Run();
  pool.CheckDrained();
  return out;
}

// The invariant proper, checked against one run's store.
void CheckPhaseInvariant(const RunResult& run, const std::string& what) {
  const obs::TimelineStore& st = *run.store;
  std::vector<std::array<int64_t, obs::kNumPhases>> totals(st.n_classes());
  for (auto& t : totals) t.fill(0);

  uint64_t done = 0;
  uint64_t measured = 0;
  for (const obs::OpTimeline& t : st.timelines()) {
    ASSERT_TRUE(t.done()) << what << ": op never finished";
    int64_t sum = 0;
    for (int p = 0; p < obs::kNumPhases; ++p) {
      ASSERT_GE(t.phase_ns(p), 0)
          << what << ": negative " << obs::PhaseName(p) << " time";
      sum += t.phase_ns(p);
    }
    ASSERT_EQ(sum, t.total_ns())
        << what << ": phases sum to " << sum << " but the op took "
        << t.total_ns() << " ns — a handoff point lost or double-counted "
        << "an interval";
    ++done;
    if (t.start_ns() >= run.win_start && t.end_ns() <= run.win_end) {
      ++measured;
      for (int p = 0; p < obs::kNumPhases; ++p) {
        totals[t.cls()][p] += t.phase_ns(p);
      }
    }
  }
  EXPECT_GT(done, 0u) << what;
  EXPECT_GT(measured, 0u) << what;
  EXPECT_EQ(st.started_ops(), done) << what;
  EXPECT_EQ(st.measured_ops(), measured) << what;

  // The store's exact aggregates are the same sums, computed op by op.
  for (size_t c = 0; c < st.n_classes(); ++c) {
    for (int p = 0; p < obs::kNumPhases; ++p) {
      EXPECT_EQ(st.phase_total_ns(c, p), totals[c][p])
          << what << ": class " << st.class_name(c) << " phase "
          << obs::PhaseName(p);
    }
    for (const obs::TimelineStore::Exemplar& e : st.exemplars(c)) {
      int64_t esum = 0;
      for (int p = 0; p < obs::kNumPhases; ++p) esum += e.phase_ns[p];
      EXPECT_EQ(esum, e.total_ns())
          << what << ": exemplar seq=" << e.seq << " of "
          << st.class_name(c);
    }
  }
}

TEST(PhaseInvariantTest, KvStack) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    struct KvRig {
      std::unique_ptr<kv::PrismKvServer> server;
      std::unique_ptr<kv::PrismKvClient> get_client, put_client;
    };
    auto rig = std::make_shared<KvRig>();
    RunResult run = RunStack(seed, [&](net::Fabric& fabric,
                                       workload::OpenLoopPool& pool,
                                       uint64_t) {
      net::HostId sh = fabric.AddHost("kv-server");
      kv::PrismKvOptions opts;
      opts.n_buckets = 256;
      opts.n_buffers = 512;
      rig->server = std::make_unique<kv::PrismKvServer>(&fabric, sh, opts);
      net::HostId ch = fabric.AddHost("kvc");
      rig->get_client = std::make_unique<kv::PrismKvClient>(
          &fabric, ch, rig->server.get());
      rig->put_client = std::make_unique<kv::PrismKvClient>(
          &fabric, ch, rig->server.get());
      pool.AddClass("kv.get", 0.5,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      auto r = co_await rig->get_client->Get(
                          "k" + std::to_string(d % 16));
                      (void)r;  // misses race the puts; fine
                    });
      pool.AddClass("kv.put", 0.5,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      Status s = co_await rig->put_client->Put(
                          "k" + std::to_string(d % 16),
                          BytesOfString("v" + std::to_string(d % 4)));
                      PRISM_CHECK(s.ok()) << s;
                    });
      return ch;
    });
    CheckPhaseInvariant(run, "kv seed=" + std::to_string(seed));
  }
}

TEST(PhaseInvariantTest, RsStack) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    struct RsRig {
      std::unique_ptr<rs::PrismRsCluster> cluster;
      std::unique_ptr<rs::PrismRsClient> client;
    };
    auto rig = std::make_shared<RsRig>();
    RunResult run = RunStack(seed, [&](net::Fabric& fabric,
                                       workload::OpenLoopPool& pool,
                                       uint64_t) {
      rs::PrismRsOptions opts;
      opts.n_blocks = 64;
      opts.buffers_per_replica = 512;
      rig->cluster = std::make_unique<rs::PrismRsCluster>(&fabric, 3, opts);
      net::HostId ch = fabric.AddHost("rsc");
      rig->client = std::make_unique<rs::PrismRsClient>(
          &fabric, ch, rig->cluster.get(), /*client_id=*/1);
      pool.AddClass("rs.get", 0.5,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      auto r = co_await rig->client->Get(d % 8);
                      (void)r;
                    });
      pool.AddClass("rs.put", 0.5,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      Status s = co_await rig->client->Put(
                          d % 8, BytesOfString("rs-payload-" +
                                               std::to_string(d % 4)));
                      (void)s;  // write-write conflicts may abort; fine
                    });
      return ch;
    });
    CheckPhaseInvariant(run, "rs seed=" + std::to_string(seed));
  }
}

TEST(PhaseInvariantTest, TxStack) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    struct TxRig {
      std::unique_ptr<tx::PrismTxCluster> cluster;
      std::unique_ptr<tx::PrismTxClient> client;
    };
    auto rig = std::make_shared<TxRig>();
    RunResult run = RunStack(seed, [&](net::Fabric& fabric,
                                       workload::OpenLoopPool& pool,
                                       uint64_t) {
      tx::PrismTxOptions opts;
      rig->cluster = std::make_unique<tx::PrismTxCluster>(&fabric, 2, opts);
      for (uint64_t k = 1; k <= 6; ++k) {
        PRISM_CHECK(rig->cluster
                        ->LoadKey(k, BytesOfString("init-" +
                                                   std::to_string(k)))
                        .ok());
      }
      net::HostId ch = fabric.AddHost("txc");
      rig->client = std::make_unique<tx::PrismTxClient>(
          &fabric, ch, rig->cluster.get(), /*client_id=*/1);
      pool.AddClass("tx.txn", 1.0,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      auto txn = rig->client->Begin();
                      auto r = co_await rig->client->Read(txn, 1 + d % 6);
                      (void)r;
                      rig->client->Write(txn, 1 + (d / 7) % 6,
                                         BytesOfString("t" +
                                                       std::to_string(d % 4)));
                      Status s = co_await rig->client->Commit(txn);
                      (void)s;  // aborts under contention are expected
                    });
      return ch;
    });
    CheckPhaseInvariant(run, "tx seed=" + std::to_string(seed));
  }
}

TEST(PhaseInvariantTest, SyncStack) {
  // The spinlock scheme is the one that stamps kSyncSpin on acquisition
  // retries and de-arms the op register across retry verbs — the invariant
  // must hold through that dance too.
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    struct SyncRig {
      std::unique_ptr<sync::SyncIndexServer> server;
      std::unique_ptr<sync::SyncClient> client;
    };
    auto rig = std::make_shared<SyncRig>();
    RunResult run = RunStack(seed, [&](net::Fabric& fabric,
                                       workload::OpenLoopPool& pool,
                                       uint64_t s) {
      net::HostId sh = fabric.AddHost("index");
      rig->server = std::make_unique<sync::SyncIndexServer>(
          &fabric, sh, sync::SyncOptions{});
      constexpr uint64_t kKeys = 2;  // tight key set -> real lock convoys
      for (uint64_t k = 1; k <= kKeys; ++k) {
        PRISM_CHECK(rig->server->LoadKey(k, sync::InitialValue()).ok());
      }
      net::HostId ch = fabric.AddHost("sc");
      rig->client = std::make_unique<sync::SyncClient>(
          &fabric, ch, rig->server.get(), sync::SyncScheme::kSpinlock,
          /*client_id=*/1, /*seed=*/900 + s);
      pool.AddClass("sync.read", 0.5,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      auto r = co_await rig->client->Read(1 + d % kKeys);
                      PRISM_CHECK(r.ok()) << r.status();
                    });
      pool.AddClass("sync.update", 0.5,
                    [rig](uint64_t d, obs::OpTimeline*) -> Task<void> {
                      Status st = co_await rig->client->Update(
                          1 + d % kKeys,
                          sync::MakeValue(9, 1, static_cast<int>(d % 32)));
                      PRISM_CHECK(st.ok()) << st;
                    });
      return ch;
    });
    CheckPhaseInvariant(run, "sync seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace prism
