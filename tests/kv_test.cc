// Tests for the key-value stores: PRISM-KV (§6.1) and the Pilaf baseline,
// including concurrency, deletion/tombstones, reclamation, latency
// calibration against §6.2's numbers, and torn-read detection in Pilaf.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/kv/pilaf.h"
#include "src/common/hash.h"
#include "src/kv/prism_kv.h"
#include "src/sim/task.h"

namespace prism::kv {
namespace {

using sim::Task;
using sim::ToMicros;

class PrismKvTest : public ::testing::Test {
 protected:
  PrismKvTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_host_(fabric_.AddHost("server")) {
    PrismKvOptions opts;
    opts.n_buckets = 256;
    opts.n_buffers = 512;
    server_ = std::make_unique<PrismKvServer>(&fabric_, server_host_, opts);
    client_host_ = fabric_.AddHost("client");
    client_ = std::make_unique<PrismKvClient>(&fabric_, client_host_,
                                              server_.get());
  }

  void RunAll() { sim_.Run(); }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  std::unique_ptr<PrismKvServer> server_;
  std::unique_ptr<PrismKvClient> client_;
};

TEST(KvRecordTest, EncodeDecodeRoundTrip) {
  Bytes key = BytesOfString("k1");
  Bytes value = BytesOfString("the value");
  Bytes record = EncodeRecord(key, value);
  EXPECT_EQ(record.size(), 8 + key.size() + value.size());
  auto decoded = DecodeRecord(record);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->key, key);
  EXPECT_EQ(decoded->value, value);
}

TEST(KvRecordTest, DecodeRejectsTruncation) {
  Bytes record = EncodeRecord(BytesOfString("key"), BytesOfString("value"));
  record.resize(record.size() - 2);
  EXPECT_FALSE(DecodeRecord(record).ok());
  EXPECT_FALSE(DecodeRecord(Bytes(4)).ok());
}

TEST_F(PrismKvTest, GetMissingKeyIsNotFound) {
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_->Get("absent");
    EXPECT_EQ(r.code(), Code::kNotFound);
  });
  RunAll();
}

TEST_F(PrismKvTest, PutThenGet) {
  sim::Spawn([&]() -> Task<void> {
    Status put = co_await client_->Put("hello", BytesOfString("world"));
    EXPECT_TRUE(put.ok());
    auto got = co_await client_->Get("hello");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(StringOfBytes(*got), "world");
  });
  RunAll();
}

TEST_F(PrismKvTest, OverwriteReturnsLatestValue) {
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("k", BytesOfString("v1"))).ok());
    EXPECT_TRUE((co_await client_->Put("k", BytesOfString("v2-longer"))).ok());
    auto got = co_await client_->Get("k");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(StringOfBytes(*got), "v2-longer");
  });
  RunAll();
}

TEST_F(PrismKvTest, ManyKeysSurviveCollisions) {
  // 200 keys in a 256-bucket table: plenty of linear-probe collisions.
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 200; ++i) {
      std::string k = "key-" + std::to_string(i);
      Status put = co_await client_->Put(k, BytesOfString("val-" +
                                                          std::to_string(i)));
      EXPECT_TRUE(put.ok()) << k << ": " << put;
    }
    for (int i = 0; i < 200; ++i) {
      std::string k = "key-" + std::to_string(i);
      auto got = co_await client_->Get(k);
      EXPECT_TRUE(got.ok()) << k;
      EXPECT_EQ(StringOfBytes(*got), "val-" + std::to_string(i));
    }
  });
  RunAll();
}

TEST_F(PrismKvTest, DeleteThenMiss) {
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("a", BytesOfString("1"))).ok());
    EXPECT_TRUE((co_await client_->Delete("a")).ok());
    auto got = co_await client_->Get("a");
    EXPECT_EQ(got.code(), Code::kNotFound);
    EXPECT_EQ((co_await client_->Delete("a")).code(), Code::kNotFound);
  });
  RunAll();
}

TEST_F(PrismKvTest, TombstoneKeepsProbeChainIntact) {
  // Force three keys into the same probe chain, delete the middle one, and
  // verify the third key is still reachable (readers skip the tombstone).
  sim::Spawn([&]() -> Task<void> {
    // Find three colliding keys by brute force.
    std::vector<std::string> chain;
    uint64_t target = Fnv1a64(std::string_view("seed")) % 256;
    chain.push_back("seed");
    for (int i = 0; chain.size() < 3 && i < 100000; ++i) {
      std::string candidate = "c" + std::to_string(i);
      if (Fnv1a64(std::string_view(candidate)) % 256 == target) {
        chain.push_back(candidate);
      }
    }
    EXPECT_EQ(chain.size(), 3u);
    for (const auto& k : chain) {
      EXPECT_TRUE((co_await client_->Put(k, BytesOfString("v:" + k))).ok());
    }
    EXPECT_TRUE((co_await client_->Delete(chain[1])).ok());
    auto got = co_await client_->Get(chain[2]);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(StringOfBytes(*got), "v:" + chain[2]);
    // Re-inserting the deleted key reuses the tombstone slot.
    EXPECT_TRUE((co_await client_->Put(chain[1],
                                       BytesOfString("back"))).ok());
    auto back = co_await client_->Get(chain[1]);
    EXPECT_TRUE(back.ok());
    EXPECT_EQ(StringOfBytes(*back), "back");
  });
  RunAll();
}

TEST_F(PrismKvTest, BuffersAreReclaimedAfterOverwrites) {
  sim::Spawn([&]() -> Task<void> {
    // Each overwrite displaces one buffer; with reclamation they must come
    // back, otherwise 300 overwrites would exhaust the 511-buffer pool.
    for (int i = 0; i < 300; ++i) {
      Status put = co_await client_->Put("hot", BytesOfString(
                                                    "v" + std::to_string(i)));
      EXPECT_TRUE(put.ok()) << i;
    }
    client_->FlushReclaim();
  });
  RunAll();
  // All but the one live buffer eventually return to the free list.
  EXPECT_GE(server_->free_buffers(), 509u);
}

TEST_F(PrismKvTest, ConcurrentWritersLastWriterWins) {
  // 16 writers to the same key; afterwards the value must be one of the
  // written values and every writer must have completed.
  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    sim::Spawn([&, i]() -> Task<void> {
      Status put = co_await client_->Put(
          "contended", BytesOfString("w" + std::to_string(i)));
      EXPECT_TRUE(put.ok());
      completed++;
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, 16);
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto got = co_await client_->Get("contended");
    EXPECT_TRUE(got.ok());
    std::string v = StringOfBytes(*got);
    EXPECT_EQ(v.substr(0, 1), "w");
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
  EXPECT_GT(client_->cas_failures(), 0u);  // contention actually happened
}

TEST_F(PrismKvTest, ConcurrentPutsOnOneClientStayIsolated) {
  // Regression: many in-flight PUTs to distinct keys multiplexed over ONE
  // client object (the open-loop pool pattern). Each PUT's install chain
  // stages its CAS swap operand in on-NIC scratch; with a single shared
  // slot, interleaved chains install each other's ⟨ptr,bound⟩, aliasing two
  // buckets to one buffer and orphaning the other key permanently. Scratch
  // is leased per in-flight PUT, so every key must stay reachable with its
  // own value.
  int completed = 0;
  for (int i = 0; i < 32; ++i) {
    sim::Spawn([&, i]() -> Task<void> {
      std::string k = "iso-" + std::to_string(i);
      Status put =
          co_await client_->Put(k, BytesOfString("val-" + std::to_string(i)));
      EXPECT_TRUE(put.ok()) << k << ": " << put;
      completed++;
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, 32);
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 32; ++i) {
      std::string k = "iso-" + std::to_string(i);
      auto got = co_await client_->Get(k);
      EXPECT_TRUE(got.ok()) << k << ": " << got.status();
      if (got.ok()) {
        EXPECT_EQ(StringOfBytes(*got), "val-" + std::to_string(i)) << k;
      }
    }
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(PrismKvTest, ConcurrentReadersDuringWritesSeeConsistentRecords) {
  // Readers racing a stream of writes must always see some complete value
  // ("v<i>"), never a torn mix — PRISM-KV's out-of-place update guarantee.
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("x", BytesOfString("v0"))).ok());
    for (int i = 1; i <= 50; ++i) {
      EXPECT_TRUE(
          (co_await client_->Put("x", BytesOfString("v" + std::to_string(i))))
              .ok());
    }
  });
  int reads_ok = 0;
  for (int r = 0; r < 8; ++r) {
    sim::Spawn([&]() -> Task<void> {
      for (int i = 0; i < 20; ++i) {
        auto got = co_await client_->Get("x");
        if (got.ok()) {
          std::string v = StringOfBytes(*got);
          EXPECT_EQ(v[0], 'v');
          int n = std::stoi(v.substr(1));
          EXPECT_GE(n, 0);
          EXPECT_LE(n, 50);
          reads_ok++;
        }
      }
    });
  }
  sim_.Run();
  EXPECT_GT(reads_ok, 0);
}

TEST_F(PrismKvTest, GetLatencyMatchesPaper) {
  // §6.2: PRISM-KV GET ≈ 6 µs on the software prototype (one indirect READ).
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("k", Bytes(512, 0x11))).ok());
  });
  sim_.Run();
  double get_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto got = co_await client_->Get("k");
    EXPECT_TRUE(got.ok());
    get_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(get_us, 6.0, 0.8);
}

TEST_F(PrismKvTest, PutLatencyMatchesPaper) {
  // §6.2: PRISM-KV PUT ≈ 12 µs (two round trips) on the software prototype.
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("k", Bytes(512, 1))).ok());
  });
  sim_.Run();
  double put_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    EXPECT_TRUE((co_await client_->Put("k", Bytes(512, 2))).ok());
    put_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(put_us, 12.0, 1.5);
}

// ---------------- Pilaf ----------------

class PilafTest : public ::testing::Test {
 protected:
  PilafTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_host_(fabric_.AddHost("server")) {
    PilafOptions opts;
    opts.n_buckets = 256;
    opts.n_extents = 512;
    server_ = std::make_unique<PilafServer>(&fabric_, server_host_, opts);
    client_host_ = fabric_.AddHost("client");
    client_ = std::make_unique<PilafClient>(&fabric_, client_host_,
                                            server_.get());
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  std::unique_ptr<PilafServer> server_;
  std::unique_ptr<PilafClient> client_;
};

TEST_F(PilafTest, PutThenGet) {
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("pk", BytesOfString("pv"))).ok());
    auto got = co_await client_->Get("pk");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(StringOfBytes(*got), "pv");
    auto missing = co_await client_->Get("nope");
    EXPECT_EQ(missing.code(), Code::kNotFound);
  });
  sim_.Run();
}

TEST_F(PilafTest, ManyKeysWithCollisions) {
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 150; ++i) {
      EXPECT_TRUE((co_await client_->Put("pil-" + std::to_string(i),
                                         BytesOfString(std::to_string(i))))
                      .ok());
    }
    for (int i = 0; i < 150; ++i) {
      auto got = co_await client_->Get("pil-" + std::to_string(i));
      EXPECT_TRUE(got.ok()) << i;
      EXPECT_EQ(StringOfBytes(*got), std::to_string(i));
    }
  });
  sim_.Run();
}

TEST_F(PilafTest, DeleteAndReuse) {
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("d", BytesOfString("x"))).ok());
    EXPECT_TRUE((co_await client_->Delete("d")).ok());
    EXPECT_EQ((co_await client_->Get("d")).code(), Code::kNotFound);
    EXPECT_TRUE((co_await client_->Put("d", BytesOfString("y"))).ok());
    auto got = co_await client_->Get("d");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(StringOfBytes(*got), "y");
  });
  sim_.Run();
}

TEST_F(PilafTest, GetIsTwoReads) {
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("k", BytesOfString("v"))).ok());
    uint64_t before = client_->reads_issued();
    auto got = co_await client_->Get("k");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(client_->reads_issued() - before, 2u);  // bucket + extent
  });
  sim_.Run();
}

TEST_F(PilafTest, HardwareGetLatencyMatchesPaper) {
  // §6.2: Pilaf GET over hardware RDMA ≈ 8 µs (2 READs + ~2 µs of CRCs).
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("k", Bytes(512, 3))).ok());
  });
  sim_.Run();
  double get_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    auto got = co_await client_->Get("k");
    EXPECT_TRUE(got.ok());
    get_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(get_us, 8.0, 1.0);
}

TEST_F(PilafTest, PutLatencyIsOneRpc) {
  // §6.2: Pilaf PUT via two-sided RPC ≈ 6 µs.
  double put_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    EXPECT_TRUE((co_await client_->Put("k", Bytes(512, 4))).ok());
    put_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(put_us, 6.0, 0.8);
}

TEST_F(PilafTest, TornReadsAreDetectedAndRetried) {
  // A reader hammering a key while same-size in-place updates stream in must
  // never return a torn value: every result is one of the written values.
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client_->Put("t", BytesOfString("AAAAAAAA"))).ok());
    for (int i = 0; i < 60; ++i) {
      std::string v = (i % 2 == 0) ? "BBBBBBBB" : "AAAAAAAA";
      EXPECT_TRUE((co_await client_->Put("t", BytesOfString(v))).ok());
    }
  });
  int reads = 0;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      auto got = co_await client_->Get("t");
      if (got.ok()) {
        std::string v = StringOfBytes(*got);
        EXPECT_TRUE(v == "AAAAAAAA" || v == "BBBBBBBB") << "torn: " << v;
        reads++;
      }
    }
  });
  sim_.Run();
  EXPECT_GT(reads, 0);
}

TEST_F(PilafTest, SoftwareBackendIsSlower) {
  // The "(software RDMA)" Pilaf variant pays the software premium per READ:
  // §6.2 reports ~14 µs GETs vs ~8 µs over hardware RDMA.
  net::Fabric fabric2(&sim_, net::CostModel::EvalCluster40G());
  auto host = fabric2.AddHost("server-sw");
  PilafOptions opts;
  opts.n_buckets = 64;
  opts.n_extents = 64;
  opts.backend = rdma::Backend::kSoftwareStack;
  PilafServer sw_server(&fabric2, host, opts);
  auto client_host = fabric2.AddHost("client");
  PilafClient sw_client(&fabric2, client_host, &sw_server);
  double get_us = -1;
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await sw_client.Put("k", Bytes(512, 5))).ok());
    sim::TimePoint start = sim_.Now();
    auto got = co_await sw_client.Get("k");
    EXPECT_TRUE(got.ok());
    get_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(get_us, 14.0, 1.5);
}

}  // namespace
}  // namespace prism::kv
