// Tests for the permission-guarded consensus log (src/consensus): leader
// election via rkey revocation, deposed-leader write rejection through the
// revoke-NACK path, cross-epoch log safety, the exact 2-round-trip commit
// profile, and a 100-seed chaos sweep (crash/partition/loss/latency) whose
// client histories all pass the Wing–Gong linearizability checker. Any
// violating seed prints its fault schedule and a replay command line:
//
//     consensus_test --seed=N --gtest_filter=ConsensusChaosSweep.*
//
// The binary has a custom main() for --seed=N / --jobs=N, like chaos_test.
#include "src/consensus/consensus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/check/checker.h"
#include "src/check/history.h"
#include "src/common/rng.h"
#include "src/harness/sweep.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace prism {

// Set by --seed=N: replay exactly one chaos seed instead of sweeping.
int64_t g_replay_seed = -1;
// Set by --jobs=N: worker threads for the sweep (0 = DefaultJobs()).
int g_consensus_jobs = 0;

namespace consensus {
namespace {

using sim::Task;

std::vector<uint64_t> SweepSeeds() {
  if (g_replay_seed >= 0) return {static_cast<uint64_t>(g_replay_seed)};
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 100; ++s) seeds.push_back(s);
  return seeds;
}

// A 3-replica cluster on its own fabric; replica hosts are 0..2.
struct Rig {
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<ConsensusCluster> cluster;

  explicit Rig(uint64_t loss_seed = 0,
               ConsensusOptions opts = ConsensusOptions{})
      : fabric(&sim, net::CostModel::EvalCluster40G(), loss_seed) {
    std::vector<net::HostId> hosts;
    for (int i = 0; i < opts.n_replicas; ++i) {
      hosts.push_back(fabric.AddHost("replica" + std::to_string(i)));
    }
    cluster = std::make_unique<ConsensusCluster>(&fabric, hosts, opts);
  }

  // Runs one election to completion on the main sim loop.
  Result<uint64_t> Elect(int candidate) {
    Result<uint64_t> out = Unavailable("election never ran");
    sim::Spawn([&]() -> Task<void> {
      out = co_await cluster->Failover(candidate, nullptr);
    });
    sim.Run();
    return out;
  }
};

// Pairwise cross-replica log-safety oracle: below both commit words, two
// replicas that both hold a slot must hold the same key/value (epochs in
// the header may differ until healing rewrites them — content may not).
testing::AssertionResult CommittedPrefixesAgree(ConsensusCluster& cluster) {
  for (int a = 0; a < cluster.n(); ++a) {
    for (int b = a + 1; b < cluster.n(); ++b) {
      const uint64_t upto =
          std::min(cluster.replica(a).commit_seq(),
                   cluster.replica(b).commit_seq());
      for (uint64_t s = 1; s <= upto; ++s) {
        LogEntryWire ea, eb;
        if (!cluster.replica(a).EntryAt(s, &ea) ||
            !cluster.replica(b).EntryAt(s, &eb)) {
          continue;  // holes are legal (indeterminate ops that never land)
        }
        if (ea.key != eb.key || ea.v_lo != eb.v_lo || ea.v_hi != eb.v_hi) {
          return testing::AssertionFailure()
                 << "replicas " << a << " and " << b << " diverge at seq "
                 << s << " (keys " << ea.key << " vs " << eb.key << ")";
        }
      }
    }
  }
  return testing::AssertionSuccess();
}

// ---- leader election via revocation ----

TEST(ElectionTest, RevocationMintsFreshRkeysAndBumpsEpoch) {
  Rig rig;
  std::vector<rdma::RKey> before;
  for (int i = 0; i < 3; ++i) before.push_back(rig.cluster->replica(i).rkey());

  auto won = rig.Elect(0);
  ASSERT_TRUE(won.ok()) << won.status();
  EXPECT_EQ(*won, 1u);
  EXPECT_TRUE(rig.cluster->node(0).leading());
  EXPECT_EQ(rig.cluster->leader_hint(), 0);
  // Every replica that granted revoked the seed registration: fresh rkey,
  // epoch word bumped, leader word recorded.
  int revoked = 0;
  for (int i = 0; i < 3; ++i) {
    if (rig.cluster->replica(i).rkey() != before[i]) {
      revoked++;
      EXPECT_EQ(rig.cluster->replica(i).epoch(), 1u);
      EXPECT_EQ(rig.cluster->replica(i).leader(), 0u);
      EXPECT_GE(rig.cluster->replica(i).revocations(), 1u);
    }
  }
  EXPECT_GE(revoked, rig.cluster->quorum());
  // With a quiet fabric, the post-quorum grant heals in: full membership.
  EXPECT_EQ(rig.cluster->node(0).granted_count(), 3);

  // A second election (new candidate) bumps the epoch everywhere again.
  auto won2 = rig.Elect(1);
  ASSERT_TRUE(won2.ok()) << won2.status();
  EXPECT_GT(*won2, *won);
  EXPECT_TRUE(rig.cluster->node(1).leading());
  EXPECT_EQ(rig.cluster->replica(1).leader(), 1u);
}

TEST(ElectionTest, StaleEpochGrantIsRejected) {
  Rig rig;
  ASSERT_TRUE(rig.Elect(0).ok());
  const uint64_t cur = rig.cluster->replica(0).epoch();
  GrantRequest stale;
  stale.epoch = cur;  // same epoch, different candidate
  stale.candidate = 2;
  GrantResponse resp = rig.cluster->replica(0).Grant(stale);
  EXPECT_FALSE(resp.granted);
  EXPECT_EQ(resp.epoch, cur);
  stale.epoch = cur - 1;  // older epoch
  resp = rig.cluster->replica(0).Grant(stale);
  EXPECT_FALSE(resp.granted);
}

// ---- the 2-round-trip commit profile ----

TEST(CommitProfileTest, PutAndGetCostTwoRoundTripsAtThreeReplicas) {
  Rig rig;
  ASSERT_TRUE(rig.Elect(0).ok());
  ASSERT_EQ(rig.cluster->node(0).granted_count(), 3);

  ConsensusSession session(rig.cluster.get());
  constexpr int kOps = 8;
  Status put_status = OkStatus();
  Result<Bytes> got = Unavailable("never ran");
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < kOps; ++i) {
      auto out = co_await session.PutOn(0, 7, MakeValue(1, 1, i), nullptr);
      if (!out.status.ok()) put_status = out.status;
    }
    for (int i = 0; i < kOps; ++i) {
      got = co_await session.GetOn(0, 7, nullptr);
    }
  });
  rig.sim.Run();
  ASSERT_TRUE(put_status.ok()) << put_status;
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, MakeValue(1, 1, kOps - 1));

  // The colocated leg is free; each of the two remote replicas costs one
  // chain per op — exactly 2 round trips/op for Puts (commit chains) and
  // Gets (permission-confirmation heartbeats) alike.
  EXPECT_EQ(session.round_trips(), static_cast<uint64_t>(2 * 2 * kOps));
}

// ---- deposed-leader write rejection (the revoke-NACK path) ----

// Block the new candidate's control plane to replica 0 so the old leader
// keeps its colocated permission: its next Put passes the free local check,
// pushes chains under the old rkeys, and both remotes NACK
// kPermissionDenied — the in-flight-rejection path, end to end.
TEST(DeposedLeaderTest, RemoteNacksRejectThePutAndMarkDeposal) {
  Rig rig;
  ASSERT_TRUE(rig.Elect(0).ok());
  ConsensusSession session(rig.cluster.get());

  Status first = Unavailable("never ran");
  sim::Spawn([&]() -> Task<void> {
    auto out = co_await session.PutOn(0, 1, MakeValue(2, 1, 0), nullptr);
    first = out.status;
  });
  rig.sim.Run();
  ASSERT_TRUE(first.ok()) << first;

  // Usurper on node 1; its grant RPC to replica 0 is blocked, so node 0's
  // colocated replica never hears about the new epoch.
  rig.fabric.SetLinkBlocked(rig.cluster->replica(1).host(),
                            rig.cluster->replica(0).host(), true);
  rig.fabric.SetLinkBlocked(rig.cluster->replica(0).host(),
                            rig.cluster->replica(1).host(), true);
  auto won = rig.Elect(1);
  ASSERT_TRUE(won.ok()) << won.status();

  ConsensusNode::PutOutcome out;
  sim::Spawn([&]() -> Task<void> {
    out = co_await session.PutOn(0, 1, MakeValue(2, 1, 1), nullptr);
  });
  rig.sim.Run();
  // The deposed leader's write must NOT be acknowledged; it observed its
  // deposal through the NACKs. The entry sits only in its colocated log, so
  // the outcome is maybe-applied, never yes.
  EXPECT_FALSE(out.status.ok());
  EXPECT_NE(out.applied, ConsensusNode::Applied::kYes);
  EXPECT_GE(rig.cluster->node(0).deposals_observed(), 1u);
  EXPECT_FALSE(rig.cluster->node(0).leading());
  rig.fabric.SetLinkBlocked(rig.cluster->replica(1).host(),
                            rig.cluster->replica(0).host(), false);
  rig.fabric.SetLinkBlocked(rig.cluster->replica(0).host(),
                            rig.cluster->replica(1).host(), false);

  // The usurper's reign is intact and linear: it can commit and read.
  Status usurper = Unavailable("never ran");
  Result<Bytes> read = Unavailable("never ran");
  sim::Spawn([&]() -> Task<void> {
    auto o = co_await session.PutOn(1, 1, MakeValue(2, 9, 0), nullptr);
    usurper = o.status;
    read = co_await session.GetOn(1, 1, nullptr);
  });
  rig.sim.Run();
  EXPECT_TRUE(usurper.ok()) << usurper;
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, MakeValue(2, 9, 0));
  EXPECT_TRUE(CommittedPrefixesAgree(*rig.cluster));
}

// ---- log safety across epochs ----

TEST(LogSafetyTest, AdoptionCarriesCommitsAcrossLeaderChanges) {
  Rig rig;
  check::HistoryRecorder history(&rig.sim);
  ConsensusClient client(rig.cluster.get(), 1, /*rng_seed=*/42);
  client.set_history(&history, 1);

  // Three reigns; each commits a few writes, then hands off.
  for (int reign = 0; reign < 3; ++reign) {
    ASSERT_TRUE(rig.Elect(reign).ok());
    Status st = OkStatus();
    sim::Spawn([&]() -> Task<void> {
      for (int i = 0; i < 4; ++i) {
        Status s = co_await client.Put(1 + (i % 2),
                                       MakeValue(3, reign, i));
        if (!s.ok()) st = s;
      }
    });
    rig.sim.Run();
    ASSERT_TRUE(st.ok()) << "reign " << reign << ": " << st;
  }
  // The final reign's reads see the last committed values.
  Result<Bytes> v1 = Unavailable("never ran");
  Result<Bytes> v2 = Unavailable("never ran");
  sim::Spawn([&]() -> Task<void> {
    v1 = co_await client.Get(1);
    v2 = co_await client.Get(2);
  });
  rig.sim.Run();
  ASSERT_TRUE(v1.ok()) << v1.status();
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(*v1, MakeValue(3, 2, 2));  // reign 2, op 2 → key 1
  EXPECT_EQ(*v2, MakeValue(3, 2, 3));  // reign 2, op 3 → key 2

  EXPECT_TRUE(CommittedPrefixesAgree(*rig.cluster));
  auto lin = check::CheckLinearizable(history.ops(), check::kAbsent);
  EXPECT_TRUE(lin.ok) << lin.error;
  // Each handoff adopted the predecessor's in-flight window.
  EXPECT_EQ(rig.cluster->failovers(), 3u);
  uint64_t revocations = 0;
  for (int i = 0; i < 3; ++i) {
    revocations += rig.cluster->replica(i).revocations();
  }
  EXPECT_GE(revocations, 6u);  // ≥ quorum per election
}

// The client bootstraps leadership itself: no election has run, the first
// Put finds no leader, triggers a failover, and retries.
TEST(ClientTest, BootstrapsLeadershipOnFirstOp) {
  Rig rig;
  ConsensusClient client(rig.cluster.get(), 1, 7);
  Status st = Unavailable("never ran");
  Result<Bytes> miss = Unavailable("never ran");
  sim::Spawn([&]() -> Task<void> {
    st = co_await client.Put(5, MakeValue(4, 1, 0));
    miss = co_await client.Get(99);
  });
  rig.sim.Run();
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_GE(client.failovers_triggered(), 1u);
  EXPECT_EQ(miss.status().code(), Code::kNotFound);
}

// ---- chaos sweep ----

struct SeedRun {
  bool hang = false;
  check::CheckResult check;
  bool logs_ok = false;
  std::string log_error;
  std::string schedule;
  int faults = 0;
  uint64_t failovers = 0;
  uint64_t ok_ops = 0;
};

std::string ReplayBanner(uint64_t seed, const SeedRun& r) {
  std::ostringstream os;
  os << "consensus chaos seed " << seed
     << " — replay with:\n    consensus_test --seed=" << seed
     << " --gtest_filter=ConsensusChaosSweep.*\n"
     << r.schedule;
  return os.str();
}

// One seeded run: 3 replicas (f = 1, crash at most one at a time; memory
// survives — the PMP memory-server model), partitions/loss/latency over
// every host, 3 clients on their own hosts issuing Put/Get with retries and
// client-triggered failovers. Every op lands in the history; indeterminate
// outcomes stay open intervals for the checker.
SeedRun RunConsensusSeed(uint64_t seed) {
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 10;
  constexpr uint64_t kKeys = 3;

  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  ConsensusOptions opts;
  std::vector<net::HostId> hosts;
  for (int i = 0; i < opts.n_replicas; ++i) {
    hosts.push_back(fabric.AddHost("replica" + std::to_string(i)));
  }
  ConsensusCluster cluster(&fabric, hosts, opts);

  check::HistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<ConsensusClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<ConsensusClient>(
        &cluster, static_cast<uint16_t>(c + 1),
        seed * 131 + static_cast<uint64_t>(c)));
    clients[c]->set_history(&history, c + 1);
  }

  chaos::ChaosOptions copts;
  copts.seed = seed;
  copts.crashable = {hosts[0], hosts[1], hosts[2]};
  copts.max_concurrent_crashes = 1;  // = f: a quorum stays reachable
  copts.partition_hosts = hosts;
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  monkey.Arm();

  sim::TaskTracker tracker;
  uint64_t ok_ops = 0;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOpsPerClient; ++i) {
            const uint64_t key = 1 + rng.NextBelow(kKeys);
            if (rng.NextBool(0.5)) {
              Status s =
                  co_await clients[c]->Put(key, MakeValue(seed, c, i));
              if (s.ok()) ok_ops++;
            } else {
              auto r = co_await clients[c]->Get(key);
              if (r.ok()) ok_ops++;
            }
            co_await sim::SleepFor(&sim,
                                   sim::Micros(rng.NextInRange(100, 600)));
          }
        },
        &tracker);
  }
  sim.Run();

  SeedRun r;
  r.hang = tracker.live() > 0 || cluster.tracker().live() > 0;
  r.schedule = monkey.Describe();
  r.faults = monkey.crashes_injected() + monkey.partitions_injected() +
             monkey.loss_bursts_injected() + monkey.latency_spikes_injected();
  r.failovers = cluster.failovers();
  r.ok_ops = ok_ops;
  r.check = check::CheckLinearizable(history.ops(), check::kAbsent);
  auto logs = CommittedPrefixesAgree(cluster);
  r.logs_ok = static_cast<bool>(logs);
  if (!r.logs_ok) r.log_error = logs.message();
  return r;
}

TEST(ConsensusChaosSweep, LinearizableWithAgreedLogs) {
  const std::vector<uint64_t> seeds = SweepSeeds();
  std::vector<SeedRun> runs;
  runs.reserve(seeds.size());
  if (g_replay_seed >= 0) {
    for (uint64_t seed : seeds) runs.push_back(RunConsensusSeed(seed));
  } else {
    std::vector<harness::SweepPoint<SeedRun>> points;
    points.reserve(seeds.size());
    for (uint64_t seed : seeds) {
      points.push_back([seed] { return RunConsensusSeed(seed); });
    }
    runs = harness::RunSweep(points, harness::SweepOptions{g_consensus_jobs});
  }
  int total_faults = 0;
  uint64_t total_failovers = 0;
  uint64_t total_ok = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    const SeedRun& r = runs[i];
    total_faults += r.faults;
    total_failovers += r.failovers;
    total_ok += r.ok_ops;
    EXPECT_FALSE(r.hang) << "coroutines hung\n" << ReplayBanner(seeds[i], r);
    EXPECT_TRUE(r.check.ok) << ReplayBanner(seeds[i], r) << r.check.error;
    EXPECT_TRUE(r.logs_ok) << ReplayBanner(seeds[i], r) << r.log_error;
    if (r.hang || !r.check.ok || !r.logs_ok) break;
  }
  if (g_replay_seed < 0) {
    // The sweep must exercise real trouble AND real progress: faults
    // injected, leader changes forced by them, and plenty of acked ops.
    EXPECT_GT(total_faults, 100);
    EXPECT_GT(total_failovers, seeds.size());
    EXPECT_GT(total_ok, seeds.size() * 10);
  }
}

}  // namespace
}  // namespace consensus
}  // namespace prism

// Custom main: --seed=N (replay one chaos schedule) and --jobs=N (sweep
// parallelism) before gtest parses the rest.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      prism::g_replay_seed = std::stoll(arg.substr(7));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      prism::g_consensus_jobs = std::stoi(arg.substr(7));
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
