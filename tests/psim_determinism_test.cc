// Bit-identity guard for the windowed parallel DES core (src/sim/psim.h,
// DESIGN.md §5.8).
//
// The contract under test: for every application stack, the executed
// schedule is a pure function of the workload — not of the worker count.
// Concretely:
//
//  * cores=1 through ClusterSim is byte-identical to the historical
//    single-Simulator fabric (same per-engine (when, seq) execution log).
//  * cores=2 and cores=8 produce identical per-host (when, seq) execution
//    logs and identical metrics snapshots (P-independence: engines are per
//    host and the cross-host merge key is partition-free).
//  * every observable — per-client operation logs, merged linearizability
//    histories, fabric wire counters, total executed events — is identical
//    across serial and parallel runs.
//  * serial-only features (chaos schedules, exploration hooks, zero
//    lookahead) downgrade the cluster to the serial fallback with a logged
//    reason and reproduce the serial run exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/common/bytes.h"
#include "src/consensus/consensus.h"
#include "src/obs/metrics.h"
#include "src/check/history.h"
#include "src/common/rng.h"
#include "src/explore/hooks.h"
#include "src/kv/prism_kv.h"
#include "src/net/fabric.h"
#include "src/rs/prism_rs.h"
#include "src/sim/psim.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sync/sync.h"
#include "src/tx/prism_tx.h"

namespace prism {
namespace {

using sim::Task;

// kPlain = the historical Fabric(Simulator*) constructor; otherwise the
// cluster constructor with the given worker count.
constexpr int kPlain = -1;

struct Rig {
  std::unique_ptr<sim::Simulator> plain;
  std::unique_ptr<sim::ClusterSim> cluster;
  std::unique_ptr<net::Fabric> fabric;

  explicit Rig(int cores,
               net::CostModel model = net::CostModel::EvalCluster40G()) {
    if (cores == kPlain) {
      plain = std::make_unique<sim::Simulator>();
      fabric = std::make_unique<net::Fabric>(plain.get(), model);
    } else {
      cluster = std::make_unique<sim::ClusterSim>(cores);
      fabric = std::make_unique<net::Fabric>(cluster.get(), model);
    }
  }
  void Run() {
    if (plain != nullptr) {
      plain->Run();
    } else {
      cluster->Run();
    }
  }
  bool parallel() const { return fabric->parallel(); }
  std::string serial_reason() const {
    return cluster != nullptr ? cluster->serial_reason() : std::string();
  }
};

// Everything a run exposes to the outside world, plus the internal
// schedule (per-engine execution logs) for the parallel-vs-parallel
// comparison.
struct Observed {
  std::vector<std::string> client_log;  // per-client op outcomes, in order
  std::vector<std::string> history;     // canonicalized checker history
  uint64_t net_messages = 0;
  uint64_t net_wire_bytes = 0;
  uint64_t executed = 0;
  std::string serial_reason;
  std::vector<std::vector<sim::EnabledEvent>> exec_logs;  // one per engine
  obs::MetricsSnapshot snapshot;
};

// Installs per-engine (when, seq) execution logs. Parallel: one log per
// host engine. Serial: a single merged log on the shared engine.
void AttachExecLogs(Rig& rig, Observed* out) {
  out->exec_logs.resize(rig.parallel() ? rig.fabric->host_count() : 1);
  if (rig.parallel()) {
    for (size_t h = 0; h < rig.fabric->host_count(); ++h) {
      rig.fabric->sim(static_cast<net::HostId>(h))
          ->set_exec_log(&out->exec_logs[h]);
    }
  } else {
    rig.fabric->sim(0)->set_exec_log(&out->exec_logs[0]);
  }
}

void FinishObserved(Rig& rig, Observed* out) {
  out->net_messages = rig.fabric->total_messages();
  out->net_wire_bytes = rig.fabric->total_wire_bytes();
  out->executed = rig.plain != nullptr ? rig.plain->executed_events()
                                       : rig.cluster->executed_events();
  out->serial_reason = rig.serial_reason();
  out->snapshot = rig.fabric->obs().metrics().Snapshot();
}

std::string OpToString(const check::Op& op) {
  return std::to_string(op.client) + "/" + std::to_string(op.key) + "/" +
         (op.type == check::OpType::kRead ? "r" : "w") + "/" +
         std::to_string(op.value) + "/" + std::to_string(op.invoke) + "/" +
         std::to_string(op.response) + "/" +
         std::to_string(static_cast<int>(op.outcome)) + "/" +
         std::to_string(op.done ? 1 : 0);
}

// Merges per-client recorder outputs into one canonically-ordered history
// (recorders are per client in parallel mode: each is written only by its
// owner's worker thread).
std::vector<std::string> MergeHistories(
    const std::vector<std::unique_ptr<check::HistoryRecorder>>& recs) {
  std::vector<std::string> out;
  for (const auto& r : recs) {
    for (const check::Op& op : r->ops()) out.push_back(OpToString(op));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The externally visible result must not depend on the worker count.
void ExpectSameObservables(const Observed& a, const Observed& b,
                           const std::string& what) {
  EXPECT_EQ(a.client_log, b.client_log) << what;
  EXPECT_EQ(a.history, b.history) << what;
  EXPECT_EQ(a.net_messages, b.net_messages) << what;
  EXPECT_EQ(a.net_wire_bytes, b.net_wire_bytes) << what;
  EXPECT_EQ(a.executed, b.executed) << what;
}

// Parallel-vs-parallel: additionally the full schedule and the metrics
// snapshot must match bit-for-bit.
void ExpectSameSchedule(const Observed& a, const Observed& b,
                        const std::string& what) {
  ASSERT_EQ(a.exec_logs.size(), b.exec_logs.size()) << what;
  for (size_t h = 0; h < a.exec_logs.size(); ++h) {
    ASSERT_EQ(a.exec_logs[h].size(), b.exec_logs[h].size())
        << what << " engine " << h;
    for (size_t i = 0; i < a.exec_logs[h].size(); ++i) {
      ASSERT_EQ(a.exec_logs[h][i].when, b.exec_logs[h][i].when)
          << what << " engine " << h << " event " << i;
      ASSERT_EQ(a.exec_logs[h][i].seq, b.exec_logs[h][i].seq)
          << what << " engine " << h << " event " << i;
    }
  }
  EXPECT_EQ(a.snapshot, b.snapshot) << what;
}

std::string CodeName(const Status& s) {
  return s.ok() ? "ok" : std::to_string(static_cast<int>(s.code()));
}

// ---- PRISM-KV ----

Observed RunKvStack(int cores,
                    net::CostModel model = net::CostModel::EvalCluster40G()) {
  Observed out;
  Rig rig(cores, model);
  net::HostId server_host = rig.fabric->AddHost("kv-server");
  kv::PrismKvOptions opts;
  opts.n_buckets = 256;
  opts.n_buffers = 512;
  kv::PrismKvServer server(rig.fabric.get(), server_host, opts);

  constexpr int kClients = 4;
  constexpr int kOps = 10;
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<kv::PrismKvClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    hosts.push_back(rig.fabric->AddHost("kvc-" + std::to_string(c)));
    clients.push_back(std::make_unique<kv::PrismKvClient>(
        rig.fabric.get(), hosts[c], &server));
  }
  std::vector<std::vector<std::string>> logs(kClients);
  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          // Per-client start offsets desynchronize the hosts so cross-host
          // sends do not share timestamps (DESIGN.md §5.8: equal-send-time
          // ties from different hosts are the one schedule deviation).
          co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                 sim::Nanos(13 * (c + 1)));
          Rng rng(77 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOps; ++i) {
            const std::string key = "k" + std::to_string(rng.NextBelow(6));
            if (rng.NextBool(0.5)) {
              const std::string val =
                  "v-" + std::to_string(c) + "-" + std::to_string(i);
              Status s = co_await clients[c]->Put(key, BytesOfString(val));
              logs[c].push_back("put " + key + " " + CodeName(s));
            } else {
              auto r = co_await clients[c]->Get(key);
              logs[c].push_back(
                  "get " + key + " " +
                  (r.ok() ? StringOfBytes(*r) : CodeName(r.status())));
            }
            co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                   sim::Micros(rng.NextInRange(1, 7)));
          }
        },
        &tracker);
  }
  AttachExecLogs(rig, &out);
  rig.Run();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "kv clients hung";
  for (int c = 0; c < kClients; ++c) {
    for (std::string& line : logs[c]) {
      out.client_log.push_back(std::to_string(c) + ": " + std::move(line));
    }
  }
  FinishObserved(rig, &out);
  return out;
}

// ---- PRISM-RS ----

struct RsConfig {
  uint64_t chaos_seed = 0;  // non-zero: arm a chaos schedule (serial only)
};

Observed RunRsStack(int cores, const RsConfig& cfg = {}) {
  Observed out;
  Rig rig(cores);
  if (cfg.chaos_seed != 0 && rig.cluster != nullptr) {
    // Chaos schedules mutate shared fabric state (crashes, partitions, the
    // loss knob) in global time order: a driver arming chaos must request
    // the serial fallback before hosts exist.
    rig.cluster->DowngradeToSerial(
        "chaos schedule requires the global serial event order");
  }
  rs::PrismRsOptions opts;
  opts.n_blocks = 64;
  opts.buffers_per_replica = 512;
  rs::PrismRsCluster cluster(rig.fabric.get(), 3, opts);

  constexpr int kClients = 3;
  constexpr int kOps = 8;
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  std::vector<std::unique_ptr<check::HistoryRecorder>> recorders;
  for (int c = 0; c < kClients; ++c) {
    hosts.push_back(rig.fabric->AddHost("rsc-" + std::to_string(c)));
    clients.push_back(std::make_unique<rs::PrismRsClient>(
        rig.fabric.get(), hosts[c], &cluster, static_cast<uint16_t>(c + 1)));
    recorders.push_back(std::make_unique<check::HistoryRecorder>(
        rig.fabric->sim(hosts[c])));
    clients[c]->set_history(recorders[c].get());
  }

  std::unique_ptr<chaos::ChaosMonkey> monkey;
  if (cfg.chaos_seed != 0) {
    chaos::ChaosOptions copts;
    copts.seed = cfg.chaos_seed;
    copts.start = sim::Micros(40);
    copts.horizon = sim::Millis(1);
    copts.crashable = {0, 1, 2};  // the replicas
    copts.crash_count = 2;
    copts.max_concurrent_crashes = 1;
    monkey = std::make_unique<chaos::ChaosMonkey>(rig.fabric.get(), copts);
    monkey->Arm();
  }

  std::vector<std::vector<std::string>> logs(kClients);
  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                 sim::Nanos(17 * (c + 1)));
          Rng rng(901 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOps; ++i) {
            const uint64_t block = rng.NextBelow(2);
            if (i == 0 || rng.NextBool(0.6)) {
              const std::string val = "rs-" + std::to_string(c) + "-" +
                                      std::to_string(i) + "-payload";
              Status s =
                  co_await clients[c]->Put(block, BytesOfString(val));
              logs[c].push_back("put " + std::to_string(block) + " " +
                                CodeName(s));
            } else {
              auto r = co_await clients[c]->Get(block);
              logs[c].push_back(
                  "get " + std::to_string(block) + " " +
                  (r.ok() ? StringOfBytes(*r) : CodeName(r.status())));
            }
            co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                   sim::Micros(rng.NextInRange(2, 11)));
          }
        },
        &tracker);
  }
  AttachExecLogs(rig, &out);
  rig.Run();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "rs clients hung";
  for (int c = 0; c < kClients; ++c) {
    for (std::string& line : logs[c]) {
      out.client_log.push_back(std::to_string(c) + ": " + std::move(line));
    }
  }
  out.history = MergeHistories(recorders);
  FinishObserved(rig, &out);
  return out;
}

// ---- PRISM-TX ----

Observed RunTxStack(int cores) {
  Observed out;
  Rig rig(cores);
  tx::PrismTxOptions opts;
  tx::PrismTxCluster cluster(rig.fabric.get(), 2, opts);
  for (uint64_t k = 1; k <= 6; ++k) {
    PRISM_CHECK(cluster.LoadKey(k, BytesOfString("init-" + std::to_string(k)))
                    .ok());
  }

  constexpr int kClients = 3;
  constexpr int kTxns = 5;
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<tx::PrismTxClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    hosts.push_back(rig.fabric->AddHost("txc-" + std::to_string(c)));
    clients.push_back(std::make_unique<tx::PrismTxClient>(
        rig.fabric.get(), hosts[c], &cluster, static_cast<uint16_t>(c + 1)));
  }
  std::vector<std::vector<std::string>> logs(kClients);
  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                 sim::Nanos(23 * (c + 1)));
          Rng rng(4242 + static_cast<uint64_t>(c));
          for (int i = 0; i < kTxns; ++i) {
            auto txn = clients[c]->Begin();
            const uint64_t k1 = 1 + rng.NextBelow(6);
            const uint64_t k2 = 1 + rng.NextBelow(6);
            auto r1 = co_await clients[c]->Read(txn, k1);
            auto r2 = co_await clients[c]->Read(txn, k2);
            const std::string val = "tx-" + std::to_string(c) + "-" +
                                    std::to_string(i);
            clients[c]->Write(txn, k1, BytesOfString(val));
            Status s = co_await clients[c]->Commit(txn);
            logs[c].push_back(
                "txn " + std::to_string(k1) + "," + std::to_string(k2) +
                " r1=" + (r1.ok() ? StringOfBytes(*r1) : CodeName(r1.status())) +
                " r2=" + (r2.ok() ? StringOfBytes(*r2) : CodeName(r2.status())) +
                " commit=" + CodeName(s));
            co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                   sim::Micros(rng.NextInRange(1, 9)));
          }
        },
        &tracker);
  }
  AttachExecLogs(rig, &out);
  rig.Run();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "tx clients hung";
  for (int c = 0; c < kClients; ++c) {
    for (std::string& line : logs[c]) {
      out.client_log.push_back(std::to_string(c) + ": " + std::move(line));
    }
  }
  FinishObserved(rig, &out);
  return out;
}

// ---- one-sided synchronization (spinlock scheme) ----

Observed RunSyncStack(int cores) {
  Observed out;
  Rig rig(cores);
  net::HostId server_host = rig.fabric->AddHost("index");
  sync::SyncIndexServer server(rig.fabric.get(), server_host,
                               sync::SyncOptions{});
  constexpr uint64_t kKeys = 2;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    PRISM_CHECK(server.LoadKey(k, sync::InitialValue()).ok());
  }

  constexpr int kClients = 3;
  constexpr int kOps = 6;
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<sync::SyncClient>> clients;
  std::vector<std::unique_ptr<check::HistoryRecorder>> recorders;
  for (int c = 0; c < kClients; ++c) {
    hosts.push_back(rig.fabric->AddHost("sc-" + std::to_string(c)));
    clients.push_back(std::make_unique<sync::SyncClient>(
        rig.fabric.get(), hosts[c], &server, sync::SyncScheme::kSpinlock,
        static_cast<uint16_t>(c + 1), 555 + static_cast<uint64_t>(c)));
    recorders.push_back(std::make_unique<check::HistoryRecorder>(
        rig.fabric->sim(hosts[c])));
    clients[c]->set_history(recorders[c].get(), c + 1);
  }
  std::vector<std::vector<std::string>> logs(kClients);
  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                 sim::Nanos(31 * (c + 1)));
          Rng rng(88 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOps; ++i) {
            const uint64_t key = 1 + rng.NextBelow(kKeys);
            if (rng.NextBool(0.6)) {
              Status s = co_await clients[c]->Update(
                  key, sync::MakeValue(9, c, i));
              logs[c].push_back("upd " + std::to_string(key) + " " +
                                CodeName(s));
            } else {
              auto r = co_await clients[c]->Read(key);
              logs[c].push_back("read " + std::to_string(key) + " " +
                                (r.ok() ? std::to_string(check::IdOf(*r))
                                        : CodeName(r.status())));
            }
            co_await sim::SleepFor(rig.fabric->sim(hosts[c]),
                                   sim::Micros(rng.NextInRange(0, 6)));
          }
        },
        &tracker);
  }
  AttachExecLogs(rig, &out);
  rig.Run();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "sync clients hung";
  for (int c = 0; c < kClients; ++c) {
    for (std::string& line : logs[c]) {
      out.client_log.push_back(std::to_string(c) + ": " + std::move(line));
    }
  }
  // The server's final words are part of the observable state.
  for (uint64_t k = 1; k <= kKeys; ++k) {
    out.client_log.push_back("final " + std::to_string(k) + " " +
                             std::to_string(server.FinalValue(k)));
  }
  out.history = MergeHistories(recorders);
  FinishObserved(rig, &out);
  return out;
}

// ---- consensus (permission-guarded log, fixed leader) ----

// The consensus cluster is parallel-safe only under a discipline the other
// stacks get for free: every touch of a node's leadership state (its
// sim::Mutex, quorums, the cluster's election lock) must happen on that
// node's host engine. With the leader fixed at node 0 — clients drive
// ConsensusSession::PutOn(0)/GetOn(0) from coroutines whose every await is
// bound to replica 0's simulator, and both elections target node 0 (the
// election lock lives on hosts[0] too) — all protocol state lives on one
// engine and the remote replicas participate purely via fabric messages
// (commit chains in, grant RPCs in, responses out). A mid-run re-election
// bumps the epoch while commit chains are in flight, so the revoke-NACK +
// re-grant + heal paths are part of the schedule under test.
Observed RunConsensusStack(int cores) {
  Observed out;
  Rig rig(cores);
  std::vector<net::HostId> rhosts;
  for (int r = 0; r < 3; ++r) {
    rhosts.push_back(rig.fabric->AddHost("cons-r" + std::to_string(r)));
  }
  consensus::ConsensusCluster cluster(rig.fabric.get(), rhosts,
                                      consensus::ConsensusOptions{});
  sim::Simulator* lsim = rig.fabric->sim(rhosts[0]);

  constexpr int kClients = 3;
  constexpr int kOps = 6;
  constexpr uint64_t kKeys = 2;
  std::vector<std::unique_ptr<consensus::ConsensusSession>> sessions;
  std::vector<std::unique_ptr<check::HistoryRecorder>> recorders;
  for (int c = 0; c < kClients; ++c) {
    sessions.push_back(std::make_unique<consensus::ConsensusSession>(&cluster));
    // All client coroutines run on replica 0's engine, so every recorder
    // binds there (single-writer per recorder still holds).
    recorders.push_back(std::make_unique<check::HistoryRecorder>(lsim));
  }
  std::vector<std::string> driver_log;
  std::vector<std::vector<std::string>> logs(kClients);
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        auto won = co_await cluster.Failover(0, nullptr);
        driver_log.push_back(
            "elect " + (won.ok() ? std::to_string(*won) : CodeName(won.status())));
        co_await sim::SleepFor(lsim, sim::Micros(70));
        auto again = co_await cluster.Failover(0, nullptr);
        driver_log.push_back(
            "re-elect " +
            (again.ok() ? std::to_string(*again) : CodeName(again.status())));
      },
      &tracker);
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          co_await sim::SleepFor(
              lsim, sim::Micros(30) + sim::Nanos(37 * (c + 1)));
          Rng rng(3100 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOps; ++i) {
            const uint64_t key = 1 + rng.NextBelow(kKeys);
            if (rng.NextBool(0.6)) {
              Bytes v = consensus::MakeValue(31, c, i);
              const size_t h = recorders[c]->Begin(
                  c + 1, key, check::OpType::kWrite, check::IdOf(v));
              auto put = co_await sessions[c]->PutOn(0, key, std::move(v),
                                                     nullptr);
              recorders[c]->End(
                  h, put.status.ok() ? check::Outcome::kOk
                     : put.applied == consensus::ConsensusNode::Applied::kMaybe
                         ? check::Outcome::kIndeterminate
                         : check::Outcome::kFailed);
              logs[c].push_back("put " + std::to_string(key) + " " +
                                CodeName(put.status));
            } else {
              const size_t h =
                  recorders[c]->Begin(c + 1, key, check::OpType::kRead);
              auto r = co_await sessions[c]->GetOn(0, key, nullptr);
              if (r.ok()) {
                recorders[c]->End(h, check::Outcome::kOk, check::IdOf(*r));
              } else if (r.status().code() == Code::kNotFound) {
                recorders[c]->End(h, check::Outcome::kOk, check::kAbsent);
              } else {
                recorders[c]->End(h, check::Outcome::kFailed);
              }
              logs[c].push_back("get " + std::to_string(key) + " " +
                                (r.ok() ? std::to_string(check::IdOf(*r))
                                        : CodeName(r.status())));
            }
            co_await sim::SleepFor(lsim,
                                   sim::Micros(rng.NextInRange(0, 6)));
          }
        },
        &tracker);
  }
  AttachExecLogs(rig, &out);
  rig.Run();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "consensus clients hung";
  PRISM_CHECK_EQ(cluster.tracker().live(), 0u) << "protocol tasks hung";
  for (std::string& line : driver_log) {
    out.client_log.push_back("e: " + std::move(line));
  }
  for (int c = 0; c < kClients; ++c) {
    for (std::string& line : logs[c]) {
      out.client_log.push_back(std::to_string(c) + ": " + std::move(line));
    }
  }
  // Replica-side durable state and the protocol's own accounting are part
  // of the observable world.
  for (int r = 0; r < 3; ++r) {
    const consensus::ConsensusReplica& rep = cluster.replica(r);
    out.client_log.push_back(
        "final r" + std::to_string(r) + " epoch=" + std::to_string(rep.epoch()) +
        " commit=" + std::to_string(rep.commit_seq()) +
        " write=" + std::to_string(rep.write_seq()) +
        " k1=" + std::to_string(rep.FinalValue(1)) +
        " k2=" + std::to_string(rep.FinalValue(2)) +
        " revocations=" + std::to_string(rep.revocations()));
  }
  out.client_log.push_back(
      "stats failovers=" + std::to_string(cluster.failovers()) +
      " won=" + std::to_string(cluster.node(0).elections_won()) +
      " granted=" + std::to_string(cluster.node(0).granted_count()) +
      " rt=" + std::to_string(sessions[0]->round_trips()) + "," +
      std::to_string(sessions[1]->round_trips()) + "," +
      std::to_string(sessions[2]->round_trips()));
  out.history = MergeHistories(recorders);
  FinishObserved(rig, &out);
  return out;
}

// ---- the bit-identity matrix, one test per stack ----

template <typename Runner>
void CheckStack(Runner run, const std::string& stack) {
  const Observed plain = run(kPlain);
  const Observed serial1 = run(1);
  const Observed par2 = run(2);
  const Observed par8 = run(8);

  // cores=1 through the cluster is byte-identical to the historical serial
  // fabric: same executed schedule, event for event.
  ExpectSameObservables(plain, serial1, stack + ": plain vs cores=1");
  ExpectSameSchedule(plain, serial1, stack + ": plain vs cores=1");

  EXPECT_TRUE(par2.serial_reason.empty()) << stack;
  EXPECT_TRUE(par8.serial_reason.empty()) << stack;

  // Any worker count exposes the same world.
  ExpectSameObservables(serial1, par2, stack + ": cores=1 vs cores=2");
  ExpectSameObservables(serial1, par8, stack + ": cores=1 vs cores=8");

  // And parallel schedules are partition-count independent, bit for bit.
  ExpectSameSchedule(par2, par8, stack + ": cores=2 vs cores=8");
}

TEST(PsimDeterminismTest, KvStackBitIdentical) {
  CheckStack([](int cores) { return RunKvStack(cores); }, "kv");
}

TEST(PsimDeterminismTest, RsStackBitIdentical) {
  CheckStack([](int cores) { return RunRsStack(cores); }, "rs");
}

TEST(PsimDeterminismTest, TxStackBitIdentical) {
  CheckStack([](int cores) { return RunTxStack(cores); }, "tx");
}

TEST(PsimDeterminismTest, SyncStackBitIdentical) {
  CheckStack([](int cores) { return RunSyncStack(cores); }, "sync");
}

TEST(PsimDeterminismTest, ConsensusStackBitIdentical) {
  CheckStack([](int cores) { return RunConsensusStack(cores); }, "consensus");
}

// ---- serial fallbacks ----

// A degenerate cost model (zero propagation, free headers) has zero
// conservative lookahead: the cluster must fall back to serial with a
// logged reason and reproduce the serial schedule exactly.
TEST(PsimDeterminismTest, ZeroLookaheadFallsBackToSerial) {
  net::CostModel degenerate = net::CostModel::EvalCluster40G();
  degenerate.propagation = 0;
  degenerate.header_bytes = 0;

  const Observed serial1 = RunKvStack(1, degenerate);
  const Observed par8 = RunKvStack(8, degenerate);
  EXPECT_NE(par8.serial_reason.find("lookahead"), std::string::npos)
      << "reason: " << par8.serial_reason;
  ExpectSameObservables(serial1, par8, "zero-lookahead fallback");
  ExpectSameSchedule(serial1, par8, "zero-lookahead fallback");
}

// Wire loss draws the shared loss RNG in global send order — serial only.
TEST(PsimDeterminismTest, LossyModelFallsBackToSerial) {
  net::CostModel lossy = net::CostModel::EvalCluster40G();
  lossy.loss_probability = 0.05;
  sim::ClusterSim cluster(8);
  net::Fabric fabric(&cluster, lossy);
  EXPECT_FALSE(fabric.parallel());
  EXPECT_NE(cluster.serial_reason().find("loss"), std::string::npos);
}

// A chaos seed replayed against a cores=8 request downgrades to the serial
// engine and reproduces the cores=1 run bit-for-bit — crash/partition
// schedules are not lost by asking for parallelism, only serialized.
TEST(PsimDeterminismTest, ChaosSeedReplayDowngradesAndReproduces) {
  RsConfig cfg;
  cfg.chaos_seed = 20260807;
  const Observed serial1 = RunRsStack(1, cfg);
  const Observed par8 = RunRsStack(8, cfg);
  EXPECT_NE(par8.serial_reason.find("chaos"), std::string::npos)
      << "reason: " << par8.serial_reason;
  ExpectSameObservables(serial1, par8, "chaos replay");
  ExpectSameSchedule(serial1, par8, "chaos replay");
  // The schedule did something: faults actually fired.
  EXPECT_GT(par8.net_messages, 0u);
}

// An exploration reproducer (ReplayHook with a perturbation) replayed
// against a cores=8 request: the driver downgrades (hooks need the global
// enabled-set), installs the hook on the serial engine, and the run matches
// the cores=1 replay exactly.
TEST(PsimDeterminismTest, ExploreReplayDowngradesAndReproduces) {
  auto run = [](int cores) {
    Observed out;
    Rig rig(cores);
    if (rig.cluster != nullptr && cores > 1) {
      rig.cluster->DowngradeToSerial(
          "exploration ScheduleHook requires the global enabled set");
    }
    std::vector<explore::Perturbation> perturbations = {{5, 1}, {12, 1}};
    explore::ReplayHook hook(sim::Nanos(200), perturbations);
    rig.fabric->sim(0)->SetScheduleHook(&hook);

    net::HostId server_host = rig.fabric->AddHost("kv-server");
    kv::PrismKvOptions opts;
    opts.n_buckets = 64;
    opts.n_buffers = 128;
    kv::PrismKvServer server(rig.fabric.get(), server_host, opts);
    net::HostId ch = rig.fabric->AddHost("kvc");
    kv::PrismKvClient client(rig.fabric.get(), ch, &server);
    std::vector<std::string> log;
    sim::TaskTracker tracker;
    sim::Spawn(
        [&]() -> Task<void> {
          for (int i = 0; i < 4; ++i) {
            Status s = co_await client.Put(
                "k" + std::to_string(i % 2),
                BytesOfString("v" + std::to_string(i)));
            log.push_back("put " + CodeName(s));
            auto r = co_await client.Get("k" + std::to_string(i % 2));
            log.push_back("get " + (r.ok() ? StringOfBytes(*r)
                                           : CodeName(r.status())));
          }
        },
        &tracker);
    AttachExecLogs(rig, &out);
    rig.Run();
    PRISM_CHECK_EQ(tracker.live(), 0u);
    out.client_log = std::move(log);
    FinishObserved(rig, &out);
    return out;
  };
  const Observed serial1 = run(1);
  const Observed par8 = run(8);
  EXPECT_NE(par8.serial_reason.find("ScheduleHook"), std::string::npos)
      << "reason: " << par8.serial_reason;
  ExpectSameObservables(serial1, par8, "explore replay");
  ExpectSameSchedule(serial1, par8, "explore replay");
}

// The parallel runs above actually exercised the window machinery: re-run
// one stack at cores=2 and assert the psim counters moved.
TEST(PsimDeterminismTest, ParallelRunsExecuteWindows) {
  Rig rig(2);
  net::HostId a = rig.fabric->AddHost("a");
  net::HostId b = rig.fabric->AddHost("b");
  sim::TaskTracker tracker;
  constexpr int kPings = 16;
  int got = 0;
  // Simple cross-host ping chain straight over the fabric.
  std::function<void(int)> bounce = [&](int i) {
    if (i >= kPings) return;
    rig.fabric->Send(i % 2 == 0 ? a : b, i % 2 == 0 ? b : a, 64,
                     [&, i] {
                       ++got;
                       bounce(i + 1);
                     });
  };
  bounce(0);
  rig.Run();
  EXPECT_EQ(got, kPings);
  ASSERT_TRUE(rig.parallel());
  const sim::ClusterSim::Stats& st = rig.cluster->stats();
  EXPECT_GT(st.windows, 0u);
  EXPECT_EQ(st.barriers, 2 * st.windows);
  EXPECT_EQ(st.partitions, 2);
  EXPECT_EQ(st.wire_messages, static_cast<uint64_t>(kPings));
  (void)tracker;
}

}  // namespace
}  // namespace prism
