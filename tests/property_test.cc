// Property-based tests: randomized sweeps (parameterized gtest) checking
// implementation behaviour against independent scalar models.
//
//  * Masked CAS vs a naive big-integer reference model, across widths,
//    modes, masks, and operands.
//  * Random chains: CONDITIONAL semantics (suffix-skipping), REDIRECT
//    output placement, and memory-safety invariants.
//  * Allocator: no buffer is ever handed out twice while live, across
//    random alloc/free interleavings.
//  * ABD tags and OCC timestamps: monotonicity under random concurrent
//    installs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <cmath>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/prism/executor.h"
#include "src/prism/freelist.h"
#include "src/prism/wire.h"
#include "src/rdma/verbs.h"

namespace prism {
namespace {

using core::Chain;
using core::ChainResult;
using core::Executor;
using core::FreeListRegistry;
using core::Op;
using core::OpCode;
using rdma::CasCompare;

// ---------- masked CAS vs reference model ----------

// Reference: arbitrary-width little-endian unsigned comparison + masked
// merge, written independently from the production code.
struct CasModel {
  static bool Compare(const Bytes& request, const Bytes& memory,
                      const Bytes& mask, CasCompare mode) {
    Bytes a(request.size()), b(memory.size());
    for (size_t i = 0; i < request.size(); ++i) {
      a[i] = request[i] & mask[i];
      b[i] = memory[i] & mask[i];
    }
    if (mode == CasCompare::kEqual) return a == b;
    // Compare as little-endian integers: reverse to get lexicographic.
    std::reverse(a.begin(), a.end());
    std::reverse(b.begin(), b.end());
    if (mode == CasCompare::kGreater) return a > b;
    return a < b;
  }
  static Bytes Merge(const Bytes& memory, const Bytes& swap,
                     const Bytes& mask) {
    Bytes out = memory;
    for (size_t i = 0; i < memory.size(); ++i) {
      out[i] = static_cast<uint8_t>((out[i] & ~mask[i]) | (swap[i] & mask[i]));
    }
    return out;
  }
};

class MaskedCasProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskedCasProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  rdma::AddressSpace mem(1 << 16);
  auto region = *mem.CarveAndRegister(4096, rdma::kRemoteAll);
  const size_t widths[] = {8, 16, 24, 32};
  for (int iter = 0; iter < 500; ++iter) {
    const size_t width = widths[rng.NextBelow(4)];
    const CasCompare mode =
        static_cast<CasCompare>(rng.NextBelow(3));
    Bytes initial(width), compare(width), swap(width), cmp_mask(width),
        swap_mask(width);
    for (size_t i = 0; i < width; ++i) {
      initial[i] = static_cast<uint8_t>(rng.NextU64());
      // Bias operands toward the memory value so comparisons sometimes pass.
      compare[i] = rng.NextBool(0.6) ? initial[i]
                                     : static_cast<uint8_t>(rng.NextU64());
      swap[i] = static_cast<uint8_t>(rng.NextU64());
      cmp_mask[i] = rng.NextBool(0.7) ? 0xff : 0x00;
      swap_mask[i] = rng.NextBool(0.7) ? 0xff : 0x00;
    }
    mem.Store(region.base, initial);
    auto outcome = rdma::Verbs::MaskedCompareSwap(
        mem, region.rkey, region.base, compare, swap, cmp_mask, swap_mask,
        mode);
    ASSERT_TRUE(outcome.ok());
    const bool expect_swap = CasModel::Compare(compare, initial, cmp_mask,
                                               mode);
    EXPECT_EQ(outcome->swapped, expect_swap) << "iter " << iter;
    EXPECT_EQ(outcome->old_value, initial);
    Bytes expect_mem = expect_swap
                           ? CasModel::Merge(initial, swap, swap_mask)
                           : initial;
    EXPECT_EQ(mem.Load(region.base, width), expect_mem) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedCasProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- chain semantics ----------

class ChainProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainProperty, ConditionalSuffixSemantics) {
  Rng rng(GetParam() * 77 + 5);
  rdma::AddressSpace mem(1 << 18);
  FreeListRegistry freelists;
  auto region = *mem.CarveAndRegister(32 * 1024, rdma::kRemoteAll);
  uint32_t queue = freelists.CreateQueue(64);
  for (int i = 0; i < 32; ++i) {
    freelists.Post(queue, region.base + 16384 + static_cast<uint64_t>(i) * 64);
  }
  Executor executor(&mem, &freelists);

  for (int iter = 0; iter < 200; ++iter) {
    // Random chain of 1..6 ops; some deliberately fail (bad rkey or a CAS
    // whose compare cannot match).
    Chain chain;
    const int len = 1 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < len; ++i) {
      const uint64_t addr = region.base + rng.NextBelow(64) * 8;
      Op op;
      switch (rng.NextBelow(3)) {
        case 0:
          op = Op::Read(region.rkey, addr, 8);
          break;
        case 1:
          op = Op::Write(region.rkey, addr, BytesOfU64(rng.NextU64()));
          break;
        default:
          op = Op::Allocate(region.rkey, queue, BytesOfU64(rng.NextU64()));
          break;
      }
      if (rng.NextBool(0.25)) op.rkey += 99;  // force a NACK
      op.conditional = rng.NextBool(0.5);
      chain.push_back(std::move(op));
    }
    ChainResult results = executor.Execute(chain);
    ASSERT_EQ(results.size(), chain.size());
    // Model the conditional flag independently.
    bool prev_success = true;
    for (size_t i = 0; i < chain.size(); ++i) {
      const bool should_run = !chain[i].conditional || prev_success;
      EXPECT_EQ(results[i].executed, should_run) << "iter " << iter;
      prev_success = results[i].Successful(chain[i].code);
    }
    // Return every allocation so the free list never exhausts.
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].code == OpCode::kAllocate &&
          results[i].Successful(OpCode::kAllocate)) {
        freelists.Post(queue, results[i].AllocatedAddr());
      }
    }
  }
}

TEST_P(ChainProperty, WireRoundTripRandomChains) {
  Rng rng(GetParam() * 131 + 17);
  for (int iter = 0; iter < 200; ++iter) {
    Chain chain;
    const int len = 1 + static_cast<int>(rng.NextBelow(5));
    for (int i = 0; i < len; ++i) {
      Op op;
      op.code = static_cast<OpCode>(rng.NextBelow(4));
      op.rkey = static_cast<rdma::RKey>(rng.NextU64());
      op.addr = rng.NextU64() >> 8;
      op.len = rng.NextBelow(1024);
      op.freelist = static_cast<uint32_t>(rng.NextBelow(8));
      op.data.resize(rng.NextBelow(64));
      for (auto& b : op.data) b = static_cast<uint8_t>(rng.NextU64());
      op.addr_indirect = rng.NextBool();
      op.addr_bounded = op.addr_indirect && rng.NextBool();
      op.data_indirect = rng.NextBool(0.3);
      op.conditional = rng.NextBool();
      op.redirect = rng.NextBool(0.3);
      if (op.redirect) op.redirect_addr = rng.NextU64() >> 8;
      if (op.code == OpCode::kCas) {
        const size_t width = 8u * (1 + rng.NextBelow(4));
        op.cmp_mask.resize(width);
        op.swap_mask.resize(width);
        for (auto& b : op.cmp_mask) b = static_cast<uint8_t>(rng.NextU64());
        for (auto& b : op.swap_mask) b = static_cast<uint8_t>(rng.NextU64());
        op.cas_mode = static_cast<CasCompare>(rng.NextBelow(3));
        if (rng.NextBool()) {
          op.compare.resize(rng.NextBool() ? width : 8);
          for (auto& b : op.compare) b = static_cast<uint8_t>(rng.NextU64());
          op.compare_indirect = op.compare.size() == 8 && rng.NextBool();
        }
      }
      chain.push_back(std::move(op));
    }
    Bytes encoded = core::EncodeChain(chain);
    ASSERT_EQ(encoded.size(), core::EncodedChainSize(chain));
    auto decoded = core::DecodeChain(encoded);
    ASSERT_TRUE(decoded.ok()) << "iter " << iter;
    ASSERT_EQ(decoded->size(), chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      const Op& a = chain[i];
      const Op& b = (*decoded)[i];
      EXPECT_EQ(a.code, b.code);
      EXPECT_EQ(a.rkey, b.rkey);
      EXPECT_EQ(a.addr, b.addr);
      EXPECT_EQ(a.len, b.len);
      EXPECT_EQ(a.data, b.data);
      EXPECT_EQ(a.addr_indirect, b.addr_indirect);
      EXPECT_EQ(a.addr_bounded, b.addr_bounded);
      EXPECT_EQ(a.data_indirect, b.data_indirect);
      EXPECT_EQ(a.conditional, b.conditional);
      EXPECT_EQ(a.redirect, b.redirect);
      EXPECT_EQ(a.redirect_addr, b.redirect_addr);
      EXPECT_EQ(a.cmp_mask, b.cmp_mask);
      EXPECT_EQ(a.swap_mask, b.swap_mask);
      EXPECT_EQ(a.compare, b.compare);
      EXPECT_EQ(a.compare_indirect, b.compare_indirect);
      EXPECT_EQ(a.cas_mode, b.cas_mode);
      EXPECT_EQ(a.freelist, b.freelist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainProperty, ::testing::Values(1, 2, 3));

// ---------- allocator uniqueness ----------

class AllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorProperty, NoDoubleAllocation) {
  Rng rng(GetParam() * 999 + 1);
  FreeListRegistry freelists;
  uint32_t queue = freelists.CreateQueue(128);
  std::set<rdma::Addr> pool;
  for (int i = 0; i < 64; ++i) {
    rdma::Addr a = 1024 + static_cast<uint64_t>(i) * 128;
    pool.insert(a);
    freelists.Post(queue, a);
  }
  std::set<rdma::Addr> live;
  for (int iter = 0; iter < 5000; ++iter) {
    if (rng.NextBool(0.55)) {
      auto buf = freelists.Pop(queue, 1 + rng.NextBelow(128));
      if (buf.ok()) {
        // Never hand out a live buffer, and only pool members.
        EXPECT_TRUE(pool.count(*buf)) << iter;
        EXPECT_TRUE(live.insert(*buf).second) << "double alloc at " << iter;
      } else {
        EXPECT_EQ(buf.code(), Code::kResourceExhausted);
        EXPECT_EQ(live.size(), pool.size());
      }
    } else if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      freelists.Post(queue, *it);
      live.erase(it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(11, 22, 33));

// ---------- histogram quantiles vs exact ----------

class HistogramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramProperty, QuantilesWithinBucketResolution) {
  Rng rng(GetParam());
  LatencyHistogram hist;
  std::vector<int64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform latencies from 100 ns to 10 ms.
    double log_ns = 2.0 + rng.NextDouble() * 5.0;
    int64_t ns = static_cast<int64_t>(std::pow(10.0, log_ns));
    samples.push_back(ns);
    hist.Record(ns);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    int64_t exact = samples[static_cast<size_t>(q * (samples.size() - 1))];
    int64_t approx = hist.QuantileNanos(q);
    // Log-bucketed histogram: <2% relative error plus interpolation slack.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact) + 2.0)
        << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace prism
