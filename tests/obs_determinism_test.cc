// Observability determinism regression: running a figure sweep point with
// tracing enabled must reproduce the run with tracing disabled exactly —
// identical (when,seq) event replay (asserted through the simulator's event
// counts and lane classification in the metrics snapshot) and identical
// bench outputs (every LoadPoint field, including the protocol-complexity
// rows). This is the test that keeps the tracer "pure recording": any
// instrumentation that schedules an event, perturbs an allocation the
// replay depends on, or changes an RNG draw shows up here as a diff.
//
// Also asserted: the Table-1 acceptance numbers — PRISM-KV reads take one
// round trip per op while Pilaf reads take two (§4.3 / Table 1), visible in
// the per-op accounting that BENCH_figs.json carries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/kv_bench_lib.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/consensus/consensus.h"
#include "src/explore/hooks.h"
#include "src/explore/workloads.h"
#include "src/kv/prism_kv.h"
#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/sim/psim.h"
#include "src/workload/open_loop.h"

namespace prism::bench {
namespace {

// Everything a point run can observably produce, for whole-run comparison.
struct PointResult {
  workload::LoadPoint point;
  obs::MetricsSnapshot snapshot;
};

void ExpectSamePoint(const workload::LoadPoint& a,
                     const workload::LoadPoint& b) {
  EXPECT_EQ(a.clients, b.clients);
  EXPECT_EQ(a.tput_mops, b.tput_mops);
  EXPECT_EQ(a.mean_us, b.mean_us);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.abort_rate, b.abort_rate);
  EXPECT_EQ(a.sim_events, b.sim_events);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_TRUE(a.ops[i] == b.ops[i]) << "op row " << a.ops[i].op;
  }
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  ObsDeterminismTest() { setenv("PRISM_BENCH_FAST", "1", 1); }
};

TEST_F(ObsDeterminismTest, TracingDoesNotPerturbPrismKvPoint) {
  const BenchWindows windows = BenchWindows::Default();
  constexpr int kClients = 4;
  constexpr uint64_t kSeed = 3004;

  // Baseline: no tracer, metrics snapshot only (the snapshot itself carries
  // sim.executed_events / zero_delay / timer / overflow / heap_callables /
  // pool_blocks, i.e. the full (when,seq) replay fingerprint).
  obs::PointObs base;
  base.want_metrics = true;
  PointResult off;
  off.point = RunPrismKvPoint(kClients, 1.0, windows, kSeed, &base);
  off.snapshot = base.snapshot;

  // Same point, tracer attached.
  obs::Tracer tracer;
  obs::PointObs traced;
  traced.tracer = &tracer;
  traced.want_metrics = true;
  PointResult on;
  on.point = RunPrismKvPoint(kClients, 1.0, windows, kSeed, &traced);
  on.snapshot = traced.snapshot;

  ExpectSamePoint(off.point, on.point);
  EXPECT_TRUE(off.snapshot == on.snapshot)
      << "tracing changed the metrics snapshot:\n--- off ---\n"
      << off.snapshot.ToText() << "--- on ---\n" << on.snapshot.ToText();

  // The traced run must actually have traced something, spanning the app,
  // transport, server and fabric layers.
  EXPECT_GT(tracer.finished_count(), 0u);
  bool saw_app = false, saw_prism = false, saw_chain = false, saw_net = false;
  for (const obs::SpanRecord& s : tracer.finished()) {
    if (s.name == "kv.get") saw_app = true;
    if (s.name == "prism.execute") saw_prism = true;
    if (s.name == "prism.chain") saw_chain = true;
    if (s.name == "net.flight") saw_net = true;
  }
  EXPECT_TRUE(saw_app && saw_prism && saw_chain && saw_net)
      << "app=" << saw_app << " prism=" << saw_prism
      << " chain=" << saw_chain << " net=" << saw_net;
  // And the point runner filled in the Perfetto process labels.
  EXPECT_FALSE(traced.host_names.empty());
}

TEST_F(ObsDeterminismTest, RerunIsBitIdentical) {
  // Two identical runs (as a --jobs worker would execute them) must agree
  // on every output bit — the property that makes per-point snapshots safe
  // to collect under any fan-out.
  const BenchWindows windows = BenchWindows::Default();
  obs::PointObs a, b;
  a.want_metrics = b.want_metrics = true;
  workload::LoadPoint pa = RunPilafPoint(2, 1.0, rdma::Backend::kHardwareNic,
                                         windows, 1001, &a);
  workload::LoadPoint pb = RunPilafPoint(2, 1.0, rdma::Backend::kHardwareNic,
                                         windows, 1001, &b);
  ExpectSamePoint(pa, pb);
  EXPECT_TRUE(a.snapshot == b.snapshot);
}

TEST_F(ObsDeterminismTest, ScheduleHookOffLeavesBenchPointUntouched) {
  // The exploration hook added to the simulator is strictly opt-in: a bench
  // point (which never installs one) must produce the same outputs as ever.
  // Guarded two ways — an uninstrumented rerun is bit-identical (above, and
  // re-asserted here against a fresh run), and the sim's event accounting
  // in the snapshot shows the production lanes executed every event.
  const BenchWindows windows = BenchWindows::Default();
  obs::PointObs a, b;
  a.want_metrics = b.want_metrics = true;
  workload::LoadPoint pa = RunPrismKvPoint(3, 1.0, windows, 2024, &a);
  workload::LoadPoint pb = RunPrismKvPoint(3, 1.0, windows, 2024, &b);
  ExpectSamePoint(pa, pb);
  EXPECT_TRUE(a.snapshot == b.snapshot);
}

TEST_F(ObsDeterminismTest, IdentityScheduleHookIsBitIdentical) {
  // The determinism contract extended to the exploration lane: a hook that
  // always picks the front of the enabled window replays the production
  // (when, seq) order exactly, for every explorable workload. Any diff here
  // means the hooked lane reorders, drops, or re-times events even when
  // asked not to — the soundness bug that would invalidate every explorer
  // verdict.
  namespace ex = prism::explore;
  for (ex::Workload w : {ex::Workload::kToy, ex::Workload::kRs,
                         ex::Workload::kKv, ex::Workload::kTx,
                         ex::Workload::kConsensus,
                         ex::Workload::kConsensusBuggy}) {
    for (uint64_t seed : {11ull, 42ull}) {
      ex::WorkloadOptions plain;
      plain.kind = w;
      plain.seed = seed;
      const ex::RunOutcome base = ex::RunWorkload(plain);

      ex::IdentityHook hook(sim::Nanos(1000));
      ex::WorkloadOptions hooked = plain;
      hooked.hook = &hook;
      const ex::RunOutcome same = ex::RunWorkload(hooked);

      EXPECT_EQ(same.ok, base.ok) << ex::WorkloadName(w) << " " << seed;
      EXPECT_EQ(same.executed_events, base.executed_events)
          << ex::WorkloadName(w) << " " << seed;
      EXPECT_EQ(same.history_fingerprint, base.history_fingerprint)
          << ex::WorkloadName(w) << " " << seed;
      EXPECT_EQ(same.fault_schedule, base.fault_schedule)
          << ex::WorkloadName(w) << " " << seed;
    }
  }
}

// ---- ClusterSim: observability artifacts across worker counts ----
//
// The attribution layer's determinism contract extended to the parallel DES
// core: requesting a tracer on a cluster-backed fabric downgrades it to the
// serial engine (global completion order), so the trace JSON, the per-op
// phase timelines, and the metrics snapshot are bit-identical no matter how
// many cores were asked for. Metrics-only observation must keep the
// parallel path — and still agree on every counter across worker counts.

// Canonical text form of everything a TimelineStore aggregates: per-class
// exact phase sums, the latency digest, and the full exemplar reservoir
// (order, phase breakdown, pinned span counts).
std::string TimelineFingerprint(const obs::TimelineStore& st) {
  std::string fp = "started=" + std::to_string(st.started_ops()) +
                   " measured=" + std::to_string(st.measured_ops()) + "\n";
  for (size_t c = 0; c < st.n_classes(); ++c) {
    const LatencyHistogram::Summary sum = st.total_hist(c).Summarize();
    fp += st.class_name(c) + " n=" + std::to_string(sum.count) +
          " p999=" + std::to_string(sum.p999_us);
    for (int ph = 0; ph < obs::kNumPhases; ++ph) {
      fp += " " + std::to_string(st.phase_total_ns(c, ph));
    }
    for (const obs::TimelineStore::Exemplar& e : st.exemplars(c)) {
      fp += " | seq=" + std::to_string(e.seq) + " " +
            std::to_string(e.start_ns) + ".." + std::to_string(e.end_ns) +
            " spans=" + std::to_string(e.spans.size());
      for (int ph = 0; ph < obs::kNumPhases; ++ph) {
        fp += "," + std::to_string(e.phase_ns[ph]);
      }
    }
    fp += "\n";
  }
  return fp;
}

struct ClusterObsRun {
  std::string serial_reason;
  bool parallel = false;
  uint64_t executed = 0;
  std::string trace_json;   // empty when untraced
  std::string timeline_fp;  // empty when untraced
  obs::MetricsSnapshot snapshot;
};

ClusterObsRun RunClusterKvObs(int cores, bool traced) {
  ClusterObsRun out;
  sim::ClusterSim cluster(cores);
  net::Fabric fabric(&cluster, net::CostModel::EvalCluster40G());
  obs::Tracer tracer;
  obs::TimelineStore store;
  if (traced) {
    fabric.AttachTracer(&tracer);
    store.SetTracer(&tracer);
  }
  net::HostId server_host = fabric.AddHost("kv-server");
  kv::PrismKvOptions kopts;
  kopts.n_buckets = 256;
  kopts.n_buffers = 512;
  kv::PrismKvServer server(&fabric, server_host, kopts);
  net::HostId ch = fabric.AddHost("kvc");
  kv::PrismKvClient get_client(&fabric, ch, &server);
  kv::PrismKvClient put_client(&fabric, ch, &server);

  workload::PoolOptions popts;
  popts.workers = 8;
  workload::OpenLoopPool pool(fabric.sim(ch),
                              workload::ArrivalSpec::Poisson(4e5), 16,
                              Rng(515), popts);
  if (traced) pool.set_timelines(&store, &fabric.obs(), ch);
  pool.AddClass("kv.get", 0.5,
                [&](uint64_t draw, obs::OpTimeline*) -> sim::Task<void> {
                  auto r =
                      co_await get_client.Get("k" + std::to_string(draw % 8));
                  (void)r;  // misses are expected: gets race the puts
                });
  pool.AddClass("kv.put", 0.5,
                [&](uint64_t draw, obs::OpTimeline*) -> sim::Task<void> {
                  Status s = co_await put_client.Put(
                      "k" + std::to_string(draw % 8),
                      BytesOfString("v" + std::to_string(draw % 4)));
                  PRISM_CHECK(s.ok()) << s;
                });
  pool.Start(sim::Micros(50), sim::Micros(550));
  cluster.Run();
  pool.CheckDrained();

  out.serial_reason = cluster.serial_reason();
  out.parallel = fabric.parallel();
  out.executed = cluster.executed_events();
  out.snapshot = fabric.obs().metrics().Snapshot();
  if (traced) {
    out.trace_json = tracer.ToChromeJson(fabric.HostNames());
    out.timeline_fp = TimelineFingerprint(store);
  }
  return out;
}

TEST_F(ObsDeterminismTest, ClusterObsArtifactsBitIdenticalAcrossCores) {
  const ClusterObsRun t1 = RunClusterKvObs(1, true);
  const ClusterObsRun t2 = RunClusterKvObs(2, true);
  const ClusterObsRun t8 = RunClusterKvObs(8, true);

  // The tracer request downgraded the cores>1 clusters with a logged
  // reason; nothing ran parallel under observation.
  EXPECT_NE(t2.serial_reason.find("tracing"), std::string::npos)
      << "reason: " << t2.serial_reason;
  EXPECT_NE(t8.serial_reason.find("tracing"), std::string::npos)
      << "reason: " << t8.serial_reason;
  EXPECT_FALSE(t2.parallel);
  EXPECT_FALSE(t8.parallel);

  // Every artifact — executed schedule, Chrome trace, timeline aggregate,
  // metrics snapshot — is byte-identical to the cores=1 run.
  for (const ClusterObsRun* r : {&t2, &t8}) {
    EXPECT_EQ(t1.executed, r->executed);
    EXPECT_EQ(t1.trace_json, r->trace_json);
    EXPECT_EQ(t1.timeline_fp, r->timeline_fp);
    EXPECT_TRUE(t1.snapshot == r->snapshot)
        << "--- cores=1 ---\n" << t1.snapshot.ToText()
        << "--- cores=N ---\n" << r->snapshot.ToText();
  }
  // And the serial runs actually recorded: spans exist and both client
  // classes aggregated phase time.
  EXPECT_NE(t1.trace_json.find("kv.get"), std::string::npos);
  EXPECT_NE(t1.timeline_fp.find("kv.get"), std::string::npos);
  EXPECT_NE(t1.timeline_fp.find("kv.put"), std::string::npos);

  // Metrics-only observation keeps the parallel fast path, and the
  // counters still cannot depend on the worker count.
  const ClusterObsRun m2 = RunClusterKvObs(2, false);
  const ClusterObsRun m8 = RunClusterKvObs(8, false);
  EXPECT_TRUE(m2.serial_reason.empty()) << m2.serial_reason;
  EXPECT_TRUE(m8.serial_reason.empty()) << m8.serial_reason;
  EXPECT_TRUE(m2.parallel);
  EXPECT_TRUE(m8.parallel);
  EXPECT_EQ(t1.executed, m2.executed);  // same schedule as the traced run
  EXPECT_EQ(m2.executed, m8.executed);
  EXPECT_TRUE(m2.snapshot == m8.snapshot)
      << "--- cores=2 ---\n" << m2.snapshot.ToText()
      << "--- cores=8 ---\n" << m8.snapshot.ToText();
}

// ---- consensus: complexity accounting and parallel-obs artifacts ----

// The §5.10 accountant: with the leader elected and every replica granted,
// a consensus commit at n=3 is exactly two round trips (one PRISM chain per
// remote replica), and so is the permission-confirmed read. Lossless
// network, so the session tally is an exact multiple — any extra verb,
// retry, or regrant probe on the data path shows up as a diff here.
TEST_F(ObsDeterminismTest, ConsensusCommitIsTwoRoundTripsAtNThree) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  std::vector<net::HostId> hosts;
  for (int r = 0; r < 3; ++r) {
    hosts.push_back(fabric.AddHost("cons-r" + std::to_string(r)));
  }
  consensus::ConsensusCluster cluster(&fabric, hosts,
                                      consensus::ConsensusOptions{});
  consensus::ConsensusSession session(&cluster);
  constexpr int kOps = 8;
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> sim::Task<void> {
        auto won = co_await cluster.Failover(0, nullptr);
        PRISM_CHECK(won.ok()) << won.status();
        // Let the election's heal chains finish so all three replicas are
        // granted (else a put would tally fewer than two remote chains).
        co_await sim::SleepFor(&sim, sim::Micros(100));
        PRISM_CHECK_EQ(cluster.node(0).granted_count(), 3);
        for (int i = 0; i < kOps; ++i) {
          auto put = co_await session.PutOn(0, 1 + (i % 2),
                                            consensus::MakeValue(5, 0, i),
                                            nullptr);
          PRISM_CHECK(put.status.ok()) << put.status;
        }
        for (int i = 0; i < kOps; ++i) {
          auto got = co_await session.GetOn(0, 1 + (i % 2), nullptr);
          PRISM_CHECK(got.ok()) << got.status();
        }
      },
      &tracker);
  sim.Run();
  ASSERT_EQ(tracker.live(), 0u);
  ASSERT_EQ(cluster.tracker().live(), 0u);
  // 2 RTs per put (commit chains) + 2 per get (heartbeat confirms); the
  // election's control traffic is charged to the node, not the session.
  EXPECT_EQ(session.round_trips(), static_cast<uint64_t>(2 * 2 * kOps));
  // One message exchange per chain — nothing else on the session (the
  // election's grant RPCs and heal chains tally on the node).
  EXPECT_EQ(session.tally().messages, static_cast<uint64_t>(2 * 2 * kOps));
  EXPECT_GT(cluster.node(0).control_tally().round_trips, 0u)
      << "election control plane should have done work";
}

// The ATTRIB/TS contract extended to the consensus stack: tracing a
// cluster-backed run downgrades to the serial engine and every artifact
// (Chrome trace JSON, per-class phase-timeline aggregate, metrics snapshot,
// executed-event count) is byte-identical no matter how many cores were
// requested; metrics-only runs keep the parallel path and agree on every
// counter.
ClusterObsRun RunClusterConsensusObs(int cores, bool traced) {
  ClusterObsRun out;
  sim::ClusterSim cluster_sim(cores);
  net::Fabric fabric(&cluster_sim, net::CostModel::EvalCluster40G());
  obs::Tracer tracer;
  obs::TimelineStore store;
  if (traced) {
    fabric.AttachTracer(&tracer);
    store.SetTracer(&tracer);
  }
  std::vector<net::HostId> hosts;
  for (int r = 0; r < 3; ++r) {
    hosts.push_back(fabric.AddHost("cons-r" + std::to_string(r)));
  }
  consensus::ConsensusCluster cluster(&fabric, hosts,
                                      consensus::ConsensusOptions{});
  // Parallel-safety discipline (see psim_determinism_test): the leader is
  // fixed at node 0 and the open-loop pool lives on replica 0's simulator,
  // so every leadership-state touch happens on host 0's engine and the
  // remote replicas participate purely via fabric messages.
  consensus::ConsensusSession put_session(&cluster);
  consensus::ConsensusSession get_session(&cluster);
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> sim::Task<void> {
        auto won = co_await cluster.Failover(0, nullptr);
        PRISM_CHECK(won.ok()) << won.status();
      },
      &tracker);

  workload::PoolOptions popts;
  popts.workers = 8;
  workload::OpenLoopPool pool(fabric.sim(hosts[0]),
                              workload::ArrivalSpec::Poisson(2e5), 16,
                              Rng(606), popts);
  if (traced) pool.set_timelines(&store, &fabric.obs(), hosts[0]);
  pool.AddClass("cons.put", 0.5,
                [&](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
                  auto put = co_await put_session.PutOn(
                      0, 1 + (draw % 4),
                      consensus::MakeValue(6, static_cast<int>(draw % 3),
                                           static_cast<int>(draw % 16)),
                      op);
                  PRISM_CHECK(put.status.ok()) << put.status;
                });
  pool.AddClass("cons.get", 0.5,
                [&](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
                  auto r = co_await get_session.GetOn(0, 1 + (draw % 4), op);
                  (void)r;  // kNotFound races the first puts — expected
                });
  pool.Start(sim::Micros(50), sim::Micros(550));
  cluster_sim.Run();
  pool.CheckDrained();
  PRISM_CHECK_EQ(tracker.live(), 0u);
  PRISM_CHECK_EQ(cluster.tracker().live(), 0u);

  out.serial_reason = cluster_sim.serial_reason();
  out.parallel = fabric.parallel();
  out.executed = cluster_sim.executed_events();
  out.snapshot = fabric.obs().metrics().Snapshot();
  if (traced) {
    out.trace_json = tracer.ToChromeJson(fabric.HostNames());
    out.timeline_fp = TimelineFingerprint(store);
  }
  return out;
}

TEST_F(ObsDeterminismTest, ClusterConsensusObsArtifactsBitIdenticalAcrossCores) {
  const ClusterObsRun t1 = RunClusterConsensusObs(1, true);
  const ClusterObsRun t8 = RunClusterConsensusObs(8, true);
  EXPECT_NE(t8.serial_reason.find("tracing"), std::string::npos)
      << "reason: " << t8.serial_reason;
  EXPECT_FALSE(t8.parallel);
  EXPECT_EQ(t1.executed, t8.executed);
  EXPECT_EQ(t1.trace_json, t8.trace_json);
  EXPECT_EQ(t1.timeline_fp, t8.timeline_fp);
  EXPECT_TRUE(t1.snapshot == t8.snapshot)
      << "--- cores=1 ---\n" << t1.snapshot.ToText()
      << "--- cores=8 ---\n" << t8.snapshot.ToText();
  // The serial traced run actually attributed consensus work.
  EXPECT_NE(t1.trace_json.find("cons.put"), std::string::npos);
  EXPECT_NE(t1.timeline_fp.find("cons.put"), std::string::npos);
  EXPECT_NE(t1.timeline_fp.find("cons.get"), std::string::npos);

  // Metrics-only keeps the parallel fast path and the same schedule.
  const ClusterObsRun m2 = RunClusterConsensusObs(2, false);
  const ClusterObsRun m8 = RunClusterConsensusObs(8, false);
  EXPECT_TRUE(m2.serial_reason.empty()) << m2.serial_reason;
  EXPECT_TRUE(m8.serial_reason.empty()) << m8.serial_reason;
  EXPECT_TRUE(m2.parallel);
  EXPECT_TRUE(m8.parallel);
  EXPECT_EQ(t1.executed, m2.executed);
  EXPECT_EQ(m2.executed, m8.executed);
  EXPECT_TRUE(m2.snapshot == m8.snapshot)
      << "--- cores=2 ---\n" << m2.snapshot.ToText()
      << "--- cores=8 ---\n" << m8.snapshot.ToText();
}

TEST_F(ObsDeterminismTest, Table1RoundTripsPrismVsPilaf) {
  const BenchWindows windows = BenchWindows::Default();
  workload::LoadPoint prism_point =
      RunPrismKvPoint(2, 1.0, windows, 42, nullptr);
  workload::LoadPoint pilaf_point = RunPilafPoint(
      2, 1.0, rdma::Backend::kHardwareNic, windows, 42, nullptr);

  auto get_row = [](const workload::LoadPoint& p) -> const obs::OpStats* {
    for (const obs::OpStats& os : p.ops) {
      if (os.op == "kv.get") return &os;
    }
    return nullptr;
  };
  const obs::OpStats* prism_get = get_row(prism_point);
  const obs::OpStats* pilaf_get = get_row(pilaf_point);
  ASSERT_NE(prism_get, nullptr);
  ASSERT_NE(pilaf_get, nullptr);
  ASSERT_GT(prism_get->count, 0u);
  ASSERT_GT(pilaf_get->count, 0u);

  // Table 1: a PRISM KV read is one indirect-read round trip; Pilaf chases
  // the hash-table pointer with two RDMA READs. Lossless network, so the
  // totals are exact multiples.
  EXPECT_EQ(prism_get->totals.round_trips, prism_get->count);
  EXPECT_EQ(pilaf_get->totals.round_trips, 2 * pilaf_get->count);
  // Hardware-NIC verbs burn no host CPU; the default PRISM-KV deployment is
  // software, so each chain costs one (SmartNIC-class) cpu action.
  EXPECT_EQ(prism_get->totals.cpu_actions, prism_get->count);
  EXPECT_EQ(pilaf_get->totals.cpu_actions, 0u);
}

}  // namespace
}  // namespace prism::bench
