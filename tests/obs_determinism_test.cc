// Observability determinism regression: running a figure sweep point with
// tracing enabled must reproduce the run with tracing disabled exactly —
// identical (when,seq) event replay (asserted through the simulator's event
// counts and lane classification in the metrics snapshot) and identical
// bench outputs (every LoadPoint field, including the protocol-complexity
// rows). This is the test that keeps the tracer "pure recording": any
// instrumentation that schedules an event, perturbs an allocation the
// replay depends on, or changes an RNG draw shows up here as a diff.
//
// Also asserted: the Table-1 acceptance numbers — PRISM-KV reads take one
// round trip per op while Pilaf reads take two (§4.3 / Table 1), visible in
// the per-op accounting that BENCH_figs.json carries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/kv_bench_lib.h"
#include "src/explore/hooks.h"
#include "src/explore/workloads.h"

namespace prism::bench {
namespace {

// Everything a point run can observably produce, for whole-run comparison.
struct PointResult {
  workload::LoadPoint point;
  obs::MetricsSnapshot snapshot;
};

void ExpectSamePoint(const workload::LoadPoint& a,
                     const workload::LoadPoint& b) {
  EXPECT_EQ(a.clients, b.clients);
  EXPECT_EQ(a.tput_mops, b.tput_mops);
  EXPECT_EQ(a.mean_us, b.mean_us);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.abort_rate, b.abort_rate);
  EXPECT_EQ(a.sim_events, b.sim_events);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_TRUE(a.ops[i] == b.ops[i]) << "op row " << a.ops[i].op;
  }
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  ObsDeterminismTest() { setenv("PRISM_BENCH_FAST", "1", 1); }
};

TEST_F(ObsDeterminismTest, TracingDoesNotPerturbPrismKvPoint) {
  const BenchWindows windows = BenchWindows::Default();
  constexpr int kClients = 4;
  constexpr uint64_t kSeed = 3004;

  // Baseline: no tracer, metrics snapshot only (the snapshot itself carries
  // sim.executed_events / zero_delay / timer / overflow / heap_callables /
  // pool_blocks, i.e. the full (when,seq) replay fingerprint).
  obs::PointObs base;
  base.want_metrics = true;
  PointResult off;
  off.point = RunPrismKvPoint(kClients, 1.0, windows, kSeed, &base);
  off.snapshot = base.snapshot;

  // Same point, tracer attached.
  obs::Tracer tracer;
  obs::PointObs traced;
  traced.tracer = &tracer;
  traced.want_metrics = true;
  PointResult on;
  on.point = RunPrismKvPoint(kClients, 1.0, windows, kSeed, &traced);
  on.snapshot = traced.snapshot;

  ExpectSamePoint(off.point, on.point);
  EXPECT_TRUE(off.snapshot == on.snapshot)
      << "tracing changed the metrics snapshot:\n--- off ---\n"
      << off.snapshot.ToText() << "--- on ---\n" << on.snapshot.ToText();

  // The traced run must actually have traced something, spanning the app,
  // transport, server and fabric layers.
  EXPECT_GT(tracer.finished_count(), 0u);
  bool saw_app = false, saw_prism = false, saw_chain = false, saw_net = false;
  for (const obs::SpanRecord& s : tracer.finished()) {
    if (s.name == "kv.get") saw_app = true;
    if (s.name == "prism.execute") saw_prism = true;
    if (s.name == "prism.chain") saw_chain = true;
    if (s.name == "net.flight") saw_net = true;
  }
  EXPECT_TRUE(saw_app && saw_prism && saw_chain && saw_net)
      << "app=" << saw_app << " prism=" << saw_prism
      << " chain=" << saw_chain << " net=" << saw_net;
  // And the point runner filled in the Perfetto process labels.
  EXPECT_FALSE(traced.host_names.empty());
}

TEST_F(ObsDeterminismTest, RerunIsBitIdentical) {
  // Two identical runs (as a --jobs worker would execute them) must agree
  // on every output bit — the property that makes per-point snapshots safe
  // to collect under any fan-out.
  const BenchWindows windows = BenchWindows::Default();
  obs::PointObs a, b;
  a.want_metrics = b.want_metrics = true;
  workload::LoadPoint pa = RunPilafPoint(2, 1.0, rdma::Backend::kHardwareNic,
                                         windows, 1001, &a);
  workload::LoadPoint pb = RunPilafPoint(2, 1.0, rdma::Backend::kHardwareNic,
                                         windows, 1001, &b);
  ExpectSamePoint(pa, pb);
  EXPECT_TRUE(a.snapshot == b.snapshot);
}

TEST_F(ObsDeterminismTest, ScheduleHookOffLeavesBenchPointUntouched) {
  // The exploration hook added to the simulator is strictly opt-in: a bench
  // point (which never installs one) must produce the same outputs as ever.
  // Guarded two ways — an uninstrumented rerun is bit-identical (above, and
  // re-asserted here against a fresh run), and the sim's event accounting
  // in the snapshot shows the production lanes executed every event.
  const BenchWindows windows = BenchWindows::Default();
  obs::PointObs a, b;
  a.want_metrics = b.want_metrics = true;
  workload::LoadPoint pa = RunPrismKvPoint(3, 1.0, windows, 2024, &a);
  workload::LoadPoint pb = RunPrismKvPoint(3, 1.0, windows, 2024, &b);
  ExpectSamePoint(pa, pb);
  EXPECT_TRUE(a.snapshot == b.snapshot);
}

TEST_F(ObsDeterminismTest, IdentityScheduleHookIsBitIdentical) {
  // The determinism contract extended to the exploration lane: a hook that
  // always picks the front of the enabled window replays the production
  // (when, seq) order exactly, for every explorable workload. Any diff here
  // means the hooked lane reorders, drops, or re-times events even when
  // asked not to — the soundness bug that would invalidate every explorer
  // verdict.
  namespace ex = prism::explore;
  for (ex::Workload w : {ex::Workload::kToy, ex::Workload::kRs,
                         ex::Workload::kKv, ex::Workload::kTx}) {
    for (uint64_t seed : {11ull, 42ull}) {
      ex::WorkloadOptions plain;
      plain.kind = w;
      plain.seed = seed;
      const ex::RunOutcome base = ex::RunWorkload(plain);

      ex::IdentityHook hook(sim::Nanos(1000));
      ex::WorkloadOptions hooked = plain;
      hooked.hook = &hook;
      const ex::RunOutcome same = ex::RunWorkload(hooked);

      EXPECT_EQ(same.ok, base.ok) << ex::WorkloadName(w) << " " << seed;
      EXPECT_EQ(same.executed_events, base.executed_events)
          << ex::WorkloadName(w) << " " << seed;
      EXPECT_EQ(same.history_fingerprint, base.history_fingerprint)
          << ex::WorkloadName(w) << " " << seed;
      EXPECT_EQ(same.fault_schedule, base.fault_schedule)
          << ex::WorkloadName(w) << " " << seed;
    }
  }
}

TEST_F(ObsDeterminismTest, Table1RoundTripsPrismVsPilaf) {
  const BenchWindows windows = BenchWindows::Default();
  workload::LoadPoint prism_point =
      RunPrismKvPoint(2, 1.0, windows, 42, nullptr);
  workload::LoadPoint pilaf_point = RunPilafPoint(
      2, 1.0, rdma::Backend::kHardwareNic, windows, 42, nullptr);

  auto get_row = [](const workload::LoadPoint& p) -> const obs::OpStats* {
    for (const obs::OpStats& os : p.ops) {
      if (os.op == "kv.get") return &os;
    }
    return nullptr;
  };
  const obs::OpStats* prism_get = get_row(prism_point);
  const obs::OpStats* pilaf_get = get_row(pilaf_point);
  ASSERT_NE(prism_get, nullptr);
  ASSERT_NE(pilaf_get, nullptr);
  ASSERT_GT(prism_get->count, 0u);
  ASSERT_GT(pilaf_get->count, 0u);

  // Table 1: a PRISM KV read is one indirect-read round trip; Pilaf chases
  // the hash-table pointer with two RDMA READs. Lossless network, so the
  // totals are exact multiples.
  EXPECT_EQ(prism_get->totals.round_trips, prism_get->count);
  EXPECT_EQ(pilaf_get->totals.round_trips, 2 * pilaf_get->count);
  // Hardware-NIC verbs burn no host CPU; the default PRISM-KV deployment is
  // software, so each chain costs one (SmartNIC-class) cpu action.
  EXPECT_EQ(prism_get->totals.cpu_actions, prism_get->count);
  EXPECT_EQ(pilaf_get->totals.cpu_actions, 0u);
}

}  // namespace
}  // namespace prism::bench
