// Tests for the replicated block stores: PRISM-RS (§7.3) and ABD-LOCK
// (§7.2), including a real-time atomic-register (linearizability) checker
// run over concurrent histories, replica-failure availability, lock
// pathologies, and latency calibration.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/rs/abd_lock.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"

namespace prism::rs {
namespace {

using sim::Task;
using sim::ToMicros;

// ---- history recording + atomic-register checker ----

struct HistoryOp {
  bool is_write = false;
  sim::TimePoint invoke = 0;
  sim::TimePoint response = 0;
  Tag tag;      // tag installed (write) or observed (read)
  Bytes value;  // value written or returned
};

// Checks the atomicity (linearizability) conditions for a single register:
//  1. every read returns the value written by the write with its tag;
//  2. tags respect real-time order: if op1 completes before op2 begins,
//     tag(op2) >= tag(op1), strictly greater when op2 is a write.
// These two conditions are equivalent to linearizability for tagged atomic
// registers (the tag order is the linearization order).
::testing::AssertionResult CheckAtomicRegister(
    const std::vector<HistoryOp>& history) {
  std::map<uint64_t, Bytes> written;  // packed tag -> value
  written[0] = {};                    // initial (zero) value, any size
  for (const HistoryOp& op : history) {
    if (op.is_write) {
      auto [it, inserted] = written.emplace(op.tag.Packed(), op.value);
      if (!inserted) {
        return ::testing::AssertionFailure()
               << "duplicate write tag " << op.tag.Packed();
      }
    }
  }
  for (const HistoryOp& op : history) {
    if (op.is_write) continue;
    auto it = written.find(op.tag.Packed());
    if (it == written.end()) {
      return ::testing::AssertionFailure()
             << "read observed tag " << op.tag.Packed() << " never written";
    }
    if (op.tag.Packed() != 0 && it->second != op.value) {
      return ::testing::AssertionFailure()
             << "read of tag " << op.tag.Packed() << " returned wrong value";
    }
  }
  for (const HistoryOp& a : history) {
    for (const HistoryOp& b : history) {
      if (a.response < b.invoke) {
        if (b.is_write) {
          if (!(a.tag.Packed() < b.tag.Packed())) {
            return ::testing::AssertionFailure()
                   << "write tag " << b.tag.Packed()
                   << " not above preceding op tag " << a.tag.Packed();
          }
        } else if (b.tag.Packed() < a.tag.Packed()) {
          return ::testing::AssertionFailure()
                 << "read tag " << b.tag.Packed()
                 << " regressed below preceding op tag " << a.tag.Packed();
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Bytes BlockValue(uint8_t fill, uint64_t size) { return Bytes(size, fill); }

// ---- PRISM-RS ----

class PrismRsTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBlockSize = 64;

  PrismRsTest() : fabric_(&sim_, net::CostModel::EvalCluster40G()) {
    PrismRsOptions opts;
    opts.n_blocks = 64;
    opts.block_size = kBlockSize;
    opts.buffers_per_replica = 2048;
    cluster_ = std::make_unique<PrismRsCluster>(&fabric_, 3, opts);
  }

  std::unique_ptr<PrismRsClient> NewClient(uint16_t id) {
    net::HostId host = fabric_.AddHost("client-" + std::to_string(id));
    return std::make_unique<PrismRsClient>(&fabric_, host, cluster_.get(),
                                           id);
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  std::unique_ptr<PrismRsCluster> cluster_;
};

TEST_F(PrismRsTest, FreshBlockReadsZeroes) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client->Get(5);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, Bytes(kBlockSize, 0));
  });
  sim_.Run();
}

TEST_F(PrismRsTest, PutThenGetRoundTrip) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(3, BlockValue(0xab, kBlockSize))).ok());
    auto r = co_await client->Get(3);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, BlockValue(0xab, kBlockSize));
  });
  sim_.Run();
}

TEST_F(PrismRsTest, BlocksAreIndependent) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(1, BlockValue(1, kBlockSize))).ok());
    EXPECT_TRUE((co_await client->Put(2, BlockValue(2, kBlockSize))).ok());
    auto r1 = co_await client->Get(1);
    auto r2 = co_await client->Get(2);
    EXPECT_EQ(*r1, BlockValue(1, kBlockSize));
    EXPECT_EQ(*r2, BlockValue(2, kBlockSize));
  });
  sim_.Run();
}

TEST_F(PrismRsTest, TagsIncreaseMonotonically) {
  auto client = NewClient(7);
  sim::Spawn([&]() -> Task<void> {
    Tag t1, t2, t3;
    EXPECT_TRUE(
        (co_await client->Put(0, BlockValue(1, kBlockSize), &t1)).ok());
    EXPECT_TRUE(
        (co_await client->Put(0, BlockValue(2, kBlockSize), &t2)).ok());
    auto r = co_await client->Get(0, &t3);
    EXPECT_TRUE(r.ok());
    EXPECT_LT(t1.Packed(), t2.Packed());
    EXPECT_EQ(t2.Packed(), t3.Packed());
    EXPECT_EQ(t1.client, 7);
  });
  sim_.Run();
}

TEST_F(PrismRsTest, SurvivesOneReplicaFailure) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(0, BlockValue(9, kBlockSize))).ok());
    // Kill one replica (f = 1): both phases must still reach quorum.
    fabric_.SetHostUp(1, false);  // replicas were hosts 0..2
    auto r = co_await client->Get(0);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, BlockValue(9, kBlockSize));
    EXPECT_TRUE((co_await client->Put(0, BlockValue(10, kBlockSize))).ok());
    auto r2 = co_await client->Get(0);
    EXPECT_EQ(*r2, BlockValue(10, kBlockSize));
  });
  sim_.Run();
}

TEST_F(PrismRsTest, TwoFailuresBlockProgress) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    fabric_.SetHostUp(0, false);
    fabric_.SetHostUp(1, false);
    auto r = co_await client->Get(0);
    EXPECT_FALSE(r.ok());  // no quorum with 2 of 3 down
  });
  sim_.Run();
}

TEST_F(PrismRsTest, ConcurrentHistoryIsLinearizable) {
  // 6 clients × 8 ops on one block, mixed reads/writes, unique values.
  std::vector<HistoryOp> history;
  std::vector<std::unique_ptr<PrismRsClient>> clients;
  for (uint16_t c = 1; c <= 6; ++c) clients.push_back(NewClient(c));
  for (int c = 0; c < 6; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      for (int i = 0; i < 8; ++i) {
        HistoryOp op;
        op.invoke = sim_.Now();
        if ((c + i) % 2 == 0) {
          op.is_write = true;
          op.value = BlockValue(static_cast<uint8_t>(c * 16 + i + 1),
                                kBlockSize);
          Status s = co_await clients[static_cast<size_t>(c)]->Put(
              0, op.value, &op.tag);
          EXPECT_TRUE(s.ok());
        } else {
          auto r = co_await clients[static_cast<size_t>(c)]->Get(0, &op.tag);
          EXPECT_TRUE(r.ok());
          op.value = *r;
        }
        op.response = sim_.Now();
        history.push_back(std::move(op));
      }
    });
  }
  sim_.Run();
  ASSERT_EQ(history.size(), 48u);
  EXPECT_TRUE(CheckAtomicRegister(history));
}

TEST_F(PrismRsTest, GetTakesTwoRoundTripPhases) {
  auto client = NewClient(1);
  double get_us = -1;
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(0, BlockValue(5, kBlockSize))).ok());
    sim::TimePoint start = sim_.Now();
    auto r = co_await client->Get(0);
    EXPECT_TRUE(r.ok());
    get_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  // Two phases of ~6 µs each on the software PRISM stack.
  EXPECT_NEAR(get_us, 12.5, 2.0);
}

TEST_F(PrismRsTest, BuffersRecycleUnderChurn) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 600; ++i) {
      Status s = co_await client->Put(
          0, BlockValue(static_cast<uint8_t>(i), kBlockSize));
      EXPECT_TRUE(s.ok()) << i;
    }
    client->FlushReclaim();
  });
  sim_.Run();
  // 600 puts × (1 install + write-backs) with only 2047 buffers per replica:
  // reclamation must be keeping up for this to have succeeded.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(cluster_->replica(i).prism().freelists().available(
                  cluster_->replica(i).freelist()),
              1000u);
  }
}

// ---- ABD-LOCK ----

class AbdLockTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBlockSize = 64;

  AbdLockTest() : fabric_(&sim_, net::CostModel::EvalCluster40G()) {
    AbdLockOptions opts;
    opts.n_blocks = 64;
    opts.block_size = kBlockSize;
    cluster_ = std::make_unique<AbdLockCluster>(&fabric_, 3, opts);
  }

  std::unique_ptr<AbdLockClient> NewClient(uint16_t id) {
    net::HostId host = fabric_.AddHost("client-" + std::to_string(id));
    return std::make_unique<AbdLockClient>(&fabric_, host, cluster_.get(),
                                           id);
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  std::unique_ptr<AbdLockCluster> cluster_;
};

TEST_F(AbdLockTest, PutThenGetRoundTrip) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(2, BlockValue(0x77, kBlockSize))).ok());
    auto r = co_await client->Get(2);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, BlockValue(0x77, kBlockSize));
  });
  sim_.Run();
}

TEST_F(AbdLockTest, OpTakesFourRoundTrips) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(0, BlockValue(1, kBlockSize))).ok());
  });
  sim_.Run();  // drain straggler responses past the quorum points
  // lock + read + write + unlock, each to all 3 replicas.
  EXPECT_EQ(client->round_trips(), 12u);
}

TEST_F(AbdLockTest, LatencySlowerThanPrismRs) {
  // Fig. 6's low-load gap: ABD-LOCK (4 sequential RTs over hardware RDMA)
  // lands ≈ 2 µs above PRISM-RS's two software-PRISM phases.
  auto client = NewClient(1);
  double put_us = -1;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim_.Now();
    EXPECT_TRUE((co_await client->Put(0, BlockValue(1, kBlockSize))).ok());
    put_us = ToMicros(sim_.Now() - start);
  });
  sim_.Run();
  EXPECT_NEAR(put_us, 14.0, 2.0);
}

TEST_F(AbdLockTest, ConcurrentHistoryIsLinearizable) {
  std::vector<HistoryOp> history;
  std::vector<std::unique_ptr<AbdLockClient>> clients;
  for (uint16_t c = 1; c <= 4; ++c) clients.push_back(NewClient(c));
  for (int c = 0; c < 4; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      for (int i = 0; i < 6; ++i) {
        HistoryOp op;
        op.invoke = sim_.Now();
        if ((c + i) % 2 == 0) {
          op.is_write = true;
          op.value = BlockValue(static_cast<uint8_t>(c * 16 + i + 1),
                                kBlockSize);
          Status s = co_await clients[static_cast<size_t>(c)]->Put(
              0, op.value, &op.tag);
          EXPECT_TRUE(s.ok());
        } else {
          auto r = co_await clients[static_cast<size_t>(c)]->Get(0, &op.tag);
          EXPECT_TRUE(r.ok());
          op.value = *r;
        }
        op.response = sim_.Now();
        history.push_back(std::move(op));
      }
    });
  }
  sim_.Run();
  ASSERT_EQ(history.size(), 24u);
  EXPECT_TRUE(CheckAtomicRegister(history));
}

TEST_F(AbdLockTest, ContentionCausesLockConflicts) {
  std::vector<std::unique_ptr<AbdLockClient>> clients;
  for (uint16_t c = 1; c <= 8; ++c) clients.push_back(NewClient(c));
  int done = 0;
  for (int c = 0; c < 8; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      for (int i = 0; i < 5; ++i) {
        Status s = co_await clients[static_cast<size_t>(c)]->Put(
            0, BlockValue(static_cast<uint8_t>(c), kBlockSize));
        EXPECT_TRUE(s.ok());
      }
      done++;
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 8);
  uint64_t conflicts = 0;
  for (auto& c : clients) conflicts += c->lock_conflicts();
  EXPECT_GT(conflicts, 0u);  // same-block contention must show up
}

TEST_F(AbdLockTest, AbandonedLockBlocksOthersUntilTimeout) {
  // §7.2: "There must be a protocol to force release locks if a client fails
  // part way" — the baseline deliberately lacks one, so a crashed client
  // wedges the block: the next writer aborts after its lock attempts.
  auto crasher = NewClient(1);
  auto victim = NewClient(2);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await crasher->AcquireAndAbandon(0)).ok());
    Status s = co_await victim->Put(0, BlockValue(1, kBlockSize));
    EXPECT_EQ(s.code(), Code::kAborted);
    // Other blocks are unaffected.
    Status s2 = co_await victim->Put(1, BlockValue(2, kBlockSize));
    EXPECT_TRUE(s2.ok());
  });
  sim_.Run();
}

TEST_F(AbdLockTest, SurvivesOneReplicaFailureForNewOps) {
  auto client = NewClient(1);
  sim::Spawn([&]() -> Task<void> {
    EXPECT_TRUE((co_await client->Put(0, BlockValue(3, kBlockSize))).ok());
    fabric_.SetHostUp(2, false);
    auto r = co_await client->Get(0);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, BlockValue(3, kBlockSize));
  });
  sim_.Run();
}

}  // namespace
}  // namespace prism::rs
