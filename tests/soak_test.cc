// Soak test: a long deterministic mixed workload over every system at once,
// with end-state invariant checks — the closest thing to a cluster burn-in
// the simulator can express. Catches slow leaks (buffers, deferred posts),
// counter drift, and cross-system interference that short tests miss.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/kv/prism_kv.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"
#include "src/tx/prism_tx.h"

namespace prism {
namespace {

using sim::Task;

TEST(SoakTest, MixedWorkloadWithFailuresAndLoss) {
  sim::Simulator sim;
  net::CostModel model = net::CostModel::EvalCluster40G();
  model.loss_probability = 0.01;  // 1% wire loss throughout
  net::Fabric fabric(&sim, model, /*loss_seed=*/12345);

  // PRISM-KV with size classes and a tight pool.
  net::HostId kv_host = fabric.AddHost("kv");
  kv::PrismKvOptions kv_opts;
  kv_opts.n_buckets = 128;
  kv_opts.n_buffers = 96;
  kv_opts.size_classes = {64, 256};
  kv_opts.max_value_size = 200;
  kv_opts.reclaim_batch = 8;
  kv::PrismKvServer kv_server(&fabric, kv_host, kv_opts);

  // PRISM-RS, variable-size, with the one-round-read optimization.
  rs::PrismRsOptions rs_opts;
  rs_opts.n_blocks = 16;
  rs_opts.block_size = 128;
  rs_opts.buffers_per_replica = 512;
  rs_opts.variable_block_size = true;
  rs_opts.skip_unanimous_writeback = true;
  rs::PrismRsCluster rs_cluster(&fabric, 3, rs_opts);

  // PRISM-TX, two shards.
  tx::PrismTxOptions tx_opts;
  tx_opts.keys_per_shard = 64;
  tx_opts.value_size = 64;
  tx_opts.buffers_per_shard = 256;
  tx::PrismTxCluster tx_cluster(&fabric, 2, tx_opts);
  constexpr int kAccounts = 16;
  constexpr uint64_t kOpening = 500;
  uint64_t expected_total = 0;
  for (uint64_t a = 0; a < kAccounts; ++a) {
    Bytes v(64, 0);
    StoreU64(v.data(), kOpening + a);
    ASSERT_TRUE(tx_cluster.LoadKey(a, v).ok());
    expected_total += kOpening + a;
  }

  // 3 clients per system, 400 ops each.
  constexpr int kOpsPerClient = 400;
  std::vector<std::unique_ptr<kv::PrismKvClient>> kv_clients;
  std::vector<std::unique_ptr<rs::PrismRsClient>> rs_clients;
  std::vector<std::unique_ptr<tx::PrismTxClient>> tx_clients;
  for (int c = 0; c < 3; ++c) {
    net::HostId host = fabric.AddHost("soak-client-" + std::to_string(c));
    kv_clients.push_back(
        std::make_unique<kv::PrismKvClient>(&fabric, host, &kv_server));
    rs_clients.push_back(std::make_unique<rs::PrismRsClient>(
        &fabric, host, &rs_cluster, static_cast<uint16_t>(c + 1)));
    tx_clients.push_back(std::make_unique<tx::PrismTxClient>(
        &fabric, host, &tx_cluster, static_cast<uint16_t>(c + 1)));
  }

  int kv_ops = 0, rs_ops = 0, tx_commits = 0;
  for (int c = 0; c < 3; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(c) * 101 + 1);
      kv::PrismKvClient* client = kv_clients[static_cast<size_t>(c)].get();
      for (int i = 0; i < kOpsPerClient; ++i) {
        std::string key = "k" + std::to_string(rng.NextBelow(24));
        double dice = rng.NextDouble();
        if (dice < 0.45) {
          uint64_t size = 8 + rng.NextBelow(180);
          Status s = co_await client->Put(key, Bytes(size, 1));
          EXPECT_TRUE(s.ok()) << i << ": " << s;
        } else if (dice < 0.55) {
          (void)co_await client->Delete(key);  // NotFound is fine
        } else {
          (void)co_await client->Get(key);
        }
        kv_ops++;
      }
      client->FlushReclaim();
    });
    sim::Spawn([&, c]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(c) * 103 + 2);
      rs::PrismRsClient* client = rs_clients[static_cast<size_t>(c)].get();
      // Tags are per block: track monotonicity for each block separately.
      std::map<uint64_t, uint64_t> last_tag;
      for (int i = 0; i < kOpsPerClient; ++i) {
        uint64_t block = rng.NextBelow(16);
        rs::Tag tag;
        if (rng.NextBool()) {
          uint64_t size = 1 + rng.NextBelow(128);
          Status s = co_await client->Put(
              block, Bytes(size, static_cast<uint8_t>(i)), &tag);
          EXPECT_TRUE(s.ok()) << i;
          EXPECT_GT(tag.Packed(), last_tag[block]);
        } else {
          auto v = co_await client->Get(block, &tag);
          EXPECT_TRUE(v.ok()) << i;
          EXPECT_GE(tag.Packed(), last_tag[block]);
        }
        last_tag[block] = std::max(last_tag[block], tag.Packed());
        rs_ops++;
      }
      client->FlushReclaim();
    });
    sim::Spawn([&, c]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(c) * 107 + 3);
      tx::PrismTxClient* client = tx_clients[static_cast<size_t>(c)].get();
      for (int i = 0; i < kOpsPerClient; ++i) {
        uint64_t from = rng.NextBelow(kAccounts);
        uint64_t to = rng.NextBelow(kAccounts);
        if (from == to) continue;
        tx::Transaction t = client->Begin();
        auto vf = co_await client->Read(t, from);
        auto vt = co_await client->Read(t, to);
        if (!vf.ok() || !vt.ok()) continue;
        uint64_t bf = LoadU64(vf->data());
        uint64_t bt = LoadU64(vt->data());
        uint64_t amount = 1 + rng.NextBelow(9);
        if (bf < amount) continue;
        Bytes nf(64, 0), nt(64, 0);
        StoreU64(nf.data(), bf - amount);
        StoreU64(nt.data(), bt + amount);
        client->Write(t, from, std::move(nf));
        client->Write(t, to, std::move(nt));
        if ((co_await client->Commit(t)).ok()) tx_commits++;
      }
      client->FlushReclaim();
    });
  }
  sim.Run();

  EXPECT_EQ(kv_ops, 3 * kOpsPerClient);
  EXPECT_EQ(rs_ops, 3 * kOpsPerClient);
  EXPECT_GT(tx_commits, 100);

  // ---- end-state invariants ----
  // KV: live keys (≤24) account for every missing buffer.
  EXPECT_GE(kv_server.free_buffers(), 2u * 96 - 1 - 24 - 8);
  // RS: replica pools recycled (≤16 live blocks + in-flight batches each).
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(rs_cluster.replica(r).prism().freelists().available(
                  rs_cluster.replica(r).freelist()),
              400u);
  }
  // TX: money conserved.
  uint64_t total = 0;
  bool audited = false;
  sim::Spawn([&]() -> Task<void> {
    tx::Transaction t = tx_clients[0]->Begin();
    for (uint64_t a = 0; a < kAccounts; ++a) {
      auto v = co_await tx_clients[0]->Read(t, a);
      EXPECT_TRUE(v.ok());
      total += LoadU64(v->data());
    }
    audited = true;
  });
  sim.Run();
  EXPECT_TRUE(audited);
  EXPECT_EQ(total, expected_total);
  // Losses happened and were recovered.
  EXPECT_GT(fabric.retransmissions(), 50u);
  EXPECT_EQ(fabric.dropped_messages(), 0u);
}

}  // namespace
}  // namespace prism
