// Tests for the workload generators and measurement harness.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/harness/sweep.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/workload/arrival.h"
#include "src/workload/driver.h"
#include "src/workload/open_loop.h"
#include "src/workload/zipf.h"

namespace prism::workload {
namespace {

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, RanksAreInRange) {
  for (double theta : {0.0, 0.5, 0.9, 0.99, 1.2, 1.6}) {
    ZipfGenerator zipf(1000, theta);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(zipf.Next(rng), 1000u) << "theta " << theta;
    }
  }
}

TEST(ZipfTest, SkewIncreasesWithTheta) {
  Rng rng(3);
  double prev_top_share = 0;
  for (double theta : {0.2, 0.6, 0.9, 1.2}) {
    ZipfGenerator zipf(10000, theta);
    int top10 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      if (zipf.Next(rng) < 10) top10++;
    }
    double share = static_cast<double>(top10) / n;
    EXPECT_GT(share, prev_top_share) << "theta " << theta;
    prev_top_share = share;
  }
  // At theta 1.2 the hottest 10 of 10k keys dominate.
  EXPECT_GT(prev_top_share, 0.4);
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  int max_count = 0;
  uint64_t max_rank = 0;
  for (auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 0u);
}

TEST(ZipfTest, HighThetaUsesCdfAndMatchesDistribution) {
  // theta = 1.4 (CDF path): P(rank 0) = 1/zeta(n,1.4).
  const uint64_t n = 1000;
  ZipfGenerator zipf(n, 1.4);
  Rng rng(13);
  int zeros = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    if (zipf.Next(rng) == 0) zeros++;
  }
  double zeta = 0;
  for (uint64_t k = 1; k <= n; ++k) zeta += 1.0 / std::pow(k, 1.4);
  EXPECT_NEAR(static_cast<double>(zeros) / samples, 1.0 / zeta, 0.01);
}

TEST(KeyChooserTest, ScattersHotKeys) {
  // With scattering, the hottest keys must not be consecutive integers.
  KeyChooser chooser(10000, 0.99);
  Rng rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[chooser.Next(rng)]++;
  std::vector<std::pair<int, uint64_t>> by_count;
  for (auto& [k, c] : counts) by_count.push_back({c, k});
  std::sort(by_count.rbegin(), by_count.rend());
  ASSERT_GE(by_count.size(), 3u);
  uint64_t hottest = by_count[0].second;
  uint64_t second = by_count[1].second;
  EXPECT_GT(hottest > second ? hottest - second : second - hottest, 1u);
}

TEST(RecorderTest, WarmupWindowExcluded) {
  sim::Simulator sim;
  Recorder recorder(&sim, sim::Micros(100), sim::Micros(200));
  // Op starting before the window: excluded.
  sim.RunUntil(sim::Micros(150));
  recorder.Record(sim::Micros(50));
  EXPECT_EQ(recorder.completed(), 0);
  // Op inside the window: counted.
  recorder.Record(sim::Micros(120));
  EXPECT_EQ(recorder.completed(), 1);
  // Op completing after the window: excluded.
  sim.RunUntil(sim::Micros(250));
  recorder.Record(sim::Micros(180));
  EXPECT_EQ(recorder.completed(), 1);
}

TEST(RecorderTest, ThroughputMath) {
  sim::Simulator sim;
  Recorder recorder(&sim, 0, sim::Millis(1));
  sim.RunUntil(sim::Micros(500));
  for (int i = 0; i < 1000; ++i) recorder.Record(sim.Now() - sim::Micros(5));
  // 1000 ops over a 1 ms window = 1 Mops.
  EXPECT_DOUBLE_EQ(recorder.ThroughputMops(), 1.0);
  auto point = MakeLoadPoint(4, recorder);
  EXPECT_EQ(point.clients, 4);
  EXPECT_DOUBLE_EQ(point.mean_us, 5.0);
}

TEST(RecorderTest, AbortRate) {
  sim::Simulator sim;
  Recorder recorder(&sim, 0, sim::Millis(1));
  sim.RunUntil(sim::Micros(10));
  for (int i = 0; i < 90; ++i) recorder.Record(sim.Now());
  for (int i = 0; i < 10; ++i) recorder.RecordAbort();
  auto point = MakeLoadPoint(1, recorder);
  EXPECT_DOUBLE_EQ(point.abort_rate, 0.1);
}

// ---------- Arrival processes ----------

// Simulates the process and returns per-window arrival counts.
std::vector<int> WindowCounts(ArrivalProcess* p, int n_windows,
                              int64_t window_ns) {
  std::vector<int> counts(n_windows, 0);
  const int64_t end = static_cast<int64_t>(n_windows) * window_ns;
  sim::TimePoint t = 0;
  while (true) {
    t += p->NextGap(t);
    if (t >= end) break;
    counts[static_cast<size_t>(t / window_ns)]++;
  }
  return counts;
}

double Mean(const std::vector<int>& v) {
  double s = 0;
  for (int x : v) s += x;
  return s / static_cast<double>(v.size());
}

double VarianceToMean(const std::vector<int>& v) {
  const double m = Mean(v);
  double ss = 0;
  for (int x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size() - 1) / m;
}

TEST(ArrivalTest, PoissonGapsAreExponential) {
  // λ = 1M ops/s → mean gap 1000 ns. Chi-squared goodness of fit against
  // Exp(1000 ns) with 10 equal-probability bins; χ²(9 df) < 27.9 accepts at
  // p = 0.001 (deterministic seed, so this never flakes).
  ArrivalProcess p(ArrivalSpec::Poisson(1e6), Rng(42));
  const int n = 20000;
  const double mean_ns = 1000.0;
  int bins[10] = {};
  double sum = 0;
  sim::TimePoint t = 0;
  for (int i = 0; i < n; ++i) {
    const sim::Duration gap = p.NextGap(t);
    t += gap;
    sum += static_cast<double>(gap);
    const double u = 1.0 - std::exp(-static_cast<double>(gap) / mean_ns);
    int b = static_cast<int>(u * 10.0);
    if (b > 9) b = 9;
    bins[b]++;
  }
  EXPECT_NEAR(sum / n, mean_ns, 0.03 * mean_ns);
  const double expected = n / 10.0;
  double chi2 = 0;
  for (int b : bins) chi2 += (b - expected) * (b - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(ArrivalTest, MmppKeepsMeanRateButOverdisperses) {
  const double rate = 1e6;
  ArrivalProcess mmpp(ArrivalSpec::Mmpp(rate), Rng(7));
  ArrivalProcess poisson(ArrivalSpec::Poisson(rate), Rng(7));

  // Derived two-state rates: burst = factor × base, and the dwell-weighted
  // mean equals the requested rate.
  const ArrivalSpec& spec = mmpp.spec();
  EXPECT_NEAR(mmpp.burst_rate() / mmpp.base_rate(), spec.burst_factor, 1e-9);
  const double mean_per_ns = (1.0 - spec.burst_fraction) * mmpp.base_rate() +
                             spec.burst_fraction * mmpp.burst_rate();
  EXPECT_NEAR(mean_per_ns * 1e9, rate, 1e-3);

  // Windowed counts over 0.2 s (2000 × 100 µs windows, matching the burst
  // dwell scale): MMPP's variance-to-mean ratio is far above the Poisson
  // value of ~1, at the same mean rate.
  const int64_t win = 100 * 1000;
  std::vector<int> cm = WindowCounts(&mmpp, 2000, win);
  std::vector<int> cp = WindowCounts(&poisson, 2000, win);
  EXPECT_NEAR(Mean(cm), 100.0, 5.0);
  EXPECT_NEAR(Mean(cp), 100.0, 5.0);
  EXPECT_GT(VarianceToMean(cm), 2.0);
  EXPECT_LT(VarianceToMean(cp), 1.5);
}

TEST(ArrivalTest, DiurnalKeepsMeanRateAndModulates) {
  ArrivalSpec spec = ArrivalSpec::Diurnal(1e6);
  ArrivalProcess p(spec, Rng(11));
  // 100 whole periods (2 ms each): rising half of the sinusoid vs falling
  // half. With A = 0.6 the analytic ratio is (1 + 2A/π)/(1 - 2A/π) ≈ 2.2.
  const int64_t period = spec.diurnal_period;
  const int64_t half = period / 2;
  const int periods = 100;
  int64_t first_half = 0, second_half = 0, total = 0;
  sim::TimePoint t = 0;
  const int64_t end = periods * period;
  while (true) {
    t += p.NextGap(t);
    if (t >= end) break;
    total++;
    if (t % period < half) {
      first_half++;
    } else {
      second_half++;
    }
  }
  const double seconds = sim::ToSeconds(end);
  EXPECT_NEAR(static_cast<double>(total) / seconds, 1e6, 0.05 * 1e6);
  EXPECT_GT(static_cast<double>(first_half),
            1.5 * static_cast<double>(second_half));
}

TEST(ArrivalTest, SeededReplayIsBitIdentical) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.ops_per_sec = 3e6;
    ArrivalProcess a(spec, Rng(1234));
    ArrivalProcess b(spec, Rng(1234));
    ArrivalProcess c(spec, Rng(4321));
    sim::TimePoint ta = 0, tb = 0, tc = 0;
    bool differs = false;
    for (int i = 0; i < 10000; ++i) {
      const sim::Duration ga = a.NextGap(ta);
      const sim::Duration gb = b.NextGap(tb);
      const sim::Duration gc = c.NextGap(tc);
      ASSERT_EQ(ga, gb) << spec.KindName() << " draw " << i;
      if (ga != gc) differs = true;
      ta += ga;
      tb += gb;
      tc += gc;
    }
    EXPECT_TRUE(differs) << "different seeds should diverge";
  }
}

// ---------- Open-loop pools ----------

TEST(OpenLoopPoolTest, SyntheticOpsFlowThroughCompactSlots) {
  sim::Simulator sim;
  OpenLoopPool pool(&sim, ArrivalSpec::Poisson(1e6), 1000, Rng(5));
  pool.AddClass("fast", 3.0,
                [&sim](uint64_t, obs::OpTimeline*) -> sim::Task<void> {
                  co_await sim::SleepFor(&sim, sim::Micros(5));
                });
  pool.AddClass("slow", 1.0,
                [&sim](uint64_t, obs::OpTimeline*) -> sim::Task<void> {
                  co_await sim::SleepFor(&sim, sim::Micros(50));
                });
  pool.Start(sim::Micros(100), sim::Millis(2));
  sim.RunUntil(sim::Millis(3));
  sim.Run();
  pool.CheckDrained();

  // Open-loop arrivals land at the configured rate (1M/s × 2 ms ≈ 2000) and
  // every arrival completes once the drain window runs out.
  EXPECT_NEAR(static_cast<double>(pool.arrivals()), 2000.0, 150.0);
  EXPECT_EQ(pool.completions(), pool.arrivals());
  EXPECT_EQ(pool.class_completions(0) + pool.class_completions(1),
            pool.completions());
  // Weighted 3:1 class split over the population.
  EXPECT_GT(pool.class_completions(0), 2 * pool.class_completions(1));

  // Flat per-client state: exactly one 16-byte slot per logical client.
  EXPECT_EQ(pool.state_bytes(), 1000 * sizeof(ClientSlot));

  // Latency is measured from arrival, so it is bounded below by the service
  // time; at 6% worker utilization there is essentially no backlog wait.
  LatencyHistogram::Summary fast = pool.recorder(0).hist().Summarize();
  EXPECT_GE(fast.min_us, 5.0);
  EXPECT_LT(fast.p50_us, 7.0);
  LatencyHistogram::Summary slow = pool.recorder(1).hist().Summarize();
  EXPECT_GE(slow.min_us, 50.0);

  // Slot state machines come to rest: all issued ops finished.
  uint64_t issued = 0;
  for (uint64_t i = 0; i < pool.n_clients(); ++i) {
    issued += pool.client(i).issued;
    EXPECT_EQ(pool.client(i).outstanding, 0);
  }
  EXPECT_EQ(issued, pool.arrivals());
}

TEST(OpenLoopPoolTest, BacklogQueueingShowsUpInLatency) {
  // 4 workers × 100 µs service = 40k ops/s capacity against 200k ops/s
  // offered: the backlog grows and arrival-to-completion latency includes
  // the client-side queue wait — the overload signal fig_overload plots.
  sim::Simulator sim;
  PoolOptions opts;
  opts.workers = 4;
  OpenLoopPool pool(&sim, ArrivalSpec::Poisson(200e3), 100, Rng(9), opts);
  pool.AddClass("op", 1.0,
                [&sim](uint64_t, obs::OpTimeline*) -> sim::Task<void> {
                  co_await sim::SleepFor(&sim, sim::Micros(100));
                });
  pool.Start(0, sim::Millis(5));
  sim.RunUntil(sim::Millis(6));
  sim.Run();
  pool.CheckDrained();
  EXPECT_EQ(pool.completions(), pool.arrivals());
  EXPECT_GT(pool.peak_backlog(), 100u);
  LatencyHistogram::Summary s = pool.recorder(0).hist().Summarize();
  // Mean latency is dominated by queueing, far above the 100 µs service.
  EXPECT_GT(s.mean_us, 300.0);
}

TEST(OpenLoopPoolTest, SweepIsBitIdenticalAcrossJobs) {
  // The same seeded points through the parallel sweep harness at --jobs=1
  // and --jobs=8 must produce byte-identical results: every draw comes off
  // explicit per-point rngs inside single-threaded simulations.
  auto make_point = [](uint64_t seed) -> harness::SweepPoint<std::vector<double>> {
    return [seed]() -> std::vector<double> {
      sim::Simulator sim;
      OpenLoopPool pool(&sim, ArrivalSpec::Mmpp(2e6), 10000, Rng(seed));
      pool.AddClass(
          "op", 1.0,
          [&sim](uint64_t draw, obs::OpTimeline*) -> sim::Task<void> {
            co_await sim::SleepFor(&sim, sim::Nanos(500 + (draw % 1000)));
          });
      pool.Start(sim::Micros(50), sim::Millis(1));
      sim.RunUntil(sim::Millis(1) + sim::Micros(200));
      sim.Run();
      pool.CheckDrained();
      LatencyHistogram::Summary s = pool.recorder(0).hist().Summarize();
      return {static_cast<double>(pool.arrivals()),
              static_cast<double>(pool.completions()),
              static_cast<double>(pool.peak_backlog()),
              static_cast<double>(sim.executed_events()),
              static_cast<double>(sim.Now()),
              s.mean_us,
              s.p50_us,
              s.p99_us,
              s.p999_us};
    };
  };
  std::vector<harness::SweepPoint<std::vector<double>>> points;
  for (uint64_t seed = 1; seed <= 8; ++seed) points.push_back(make_point(seed));
  harness::SweepOptions serial;
  serial.jobs = 1;
  harness::SweepOptions wide;
  wide.jobs = 8;
  std::vector<std::vector<double>> a = harness::RunSweep(points, serial);
  std::vector<std::vector<double>> b = harness::RunSweep(points, wide);
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0][0], 1000.0);  // the points actually simulated load
}

}  // namespace
}  // namespace prism::workload
