// Tests for the workload generators and measurement harness.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/driver.h"
#include "src/workload/zipf.h"

namespace prism::workload {
namespace {

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, RanksAreInRange) {
  for (double theta : {0.0, 0.5, 0.9, 0.99, 1.2, 1.6}) {
    ZipfGenerator zipf(1000, theta);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(zipf.Next(rng), 1000u) << "theta " << theta;
    }
  }
}

TEST(ZipfTest, SkewIncreasesWithTheta) {
  Rng rng(3);
  double prev_top_share = 0;
  for (double theta : {0.2, 0.6, 0.9, 1.2}) {
    ZipfGenerator zipf(10000, theta);
    int top10 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      if (zipf.Next(rng) < 10) top10++;
    }
    double share = static_cast<double>(top10) / n;
    EXPECT_GT(share, prev_top_share) << "theta " << theta;
    prev_top_share = share;
  }
  // At theta 1.2 the hottest 10 of 10k keys dominate.
  EXPECT_GT(prev_top_share, 0.4);
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  int max_count = 0;
  uint64_t max_rank = 0;
  for (auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 0u);
}

TEST(ZipfTest, HighThetaUsesCdfAndMatchesDistribution) {
  // theta = 1.4 (CDF path): P(rank 0) = 1/zeta(n,1.4).
  const uint64_t n = 1000;
  ZipfGenerator zipf(n, 1.4);
  Rng rng(13);
  int zeros = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    if (zipf.Next(rng) == 0) zeros++;
  }
  double zeta = 0;
  for (uint64_t k = 1; k <= n; ++k) zeta += 1.0 / std::pow(k, 1.4);
  EXPECT_NEAR(static_cast<double>(zeros) / samples, 1.0 / zeta, 0.01);
}

TEST(KeyChooserTest, ScattersHotKeys) {
  // With scattering, the hottest keys must not be consecutive integers.
  KeyChooser chooser(10000, 0.99);
  Rng rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[chooser.Next(rng)]++;
  std::vector<std::pair<int, uint64_t>> by_count;
  for (auto& [k, c] : counts) by_count.push_back({c, k});
  std::sort(by_count.rbegin(), by_count.rend());
  ASSERT_GE(by_count.size(), 3u);
  uint64_t hottest = by_count[0].second;
  uint64_t second = by_count[1].second;
  EXPECT_GT(hottest > second ? hottest - second : second - hottest, 1u);
}

TEST(RecorderTest, WarmupWindowExcluded) {
  sim::Simulator sim;
  Recorder recorder(&sim, sim::Micros(100), sim::Micros(200));
  // Op starting before the window: excluded.
  sim.RunUntil(sim::Micros(150));
  recorder.Record(sim::Micros(50));
  EXPECT_EQ(recorder.completed(), 0);
  // Op inside the window: counted.
  recorder.Record(sim::Micros(120));
  EXPECT_EQ(recorder.completed(), 1);
  // Op completing after the window: excluded.
  sim.RunUntil(sim::Micros(250));
  recorder.Record(sim::Micros(180));
  EXPECT_EQ(recorder.completed(), 1);
}

TEST(RecorderTest, ThroughputMath) {
  sim::Simulator sim;
  Recorder recorder(&sim, 0, sim::Millis(1));
  sim.RunUntil(sim::Micros(500));
  for (int i = 0; i < 1000; ++i) recorder.Record(sim.Now() - sim::Micros(5));
  // 1000 ops over a 1 ms window = 1 Mops.
  EXPECT_DOUBLE_EQ(recorder.ThroughputMops(), 1.0);
  auto point = MakeLoadPoint(4, recorder);
  EXPECT_EQ(point.clients, 4);
  EXPECT_DOUBLE_EQ(point.mean_us, 5.0);
}

TEST(RecorderTest, AbortRate) {
  sim::Simulator sim;
  Recorder recorder(&sim, 0, sim::Millis(1));
  sim.RunUntil(sim::Micros(10));
  for (int i = 0; i < 90; ++i) recorder.Record(sim.Now());
  for (int i = 0; i < 10; ++i) recorder.RecordAbort();
  auto point = MakeLoadPoint(1, recorder);
  EXPECT_DOUBLE_EQ(point.abort_rate, 0.1);
}

}  // namespace
}  // namespace prism::workload
