// Tests for PRISM over the fabric: deployment timing (Fig. 1 shapes), chain
// round trips, the free-list drain rule, on-NIC scratch, reclamation, and
// wire encoding round-trips.
#include <gtest/gtest.h>

#include "src/net/fabric.h"
#include "src/prism/reclaim.h"
#include "src/prism/service.h"
#include "src/prism/wire.h"
#include "src/sim/task.h"

namespace prism::core {
namespace {

using rdma::kRemoteAll;
using sim::Micros;
using sim::Task;
using sim::ToMicros;

class PrismServiceTest : public ::testing::Test {
 protected:
  PrismServiceTest()
      : fabric_(&sim_, net::CostModel::Fig1DirectTestbed()),
        server_host_(fabric_.AddHost("server")),
        client_host_(fabric_.AddHost("client")),
        mem_(1 << 22),
        sw_(&fabric_, server_host_, Deployment::kSoftware, &mem_),
        hw_(&fabric_, server_host_, Deployment::kHardwareProjected, &mem_),
        bf_(&fabric_, server_host_, Deployment::kBlueField, &mem_),
        client_(&fabric_, client_host_) {
    region_ = *mem_.CarveAndRegister(256 * 1024, kRemoteAll);
    queue_ = sw_.freelists().CreateQueue(512);
    for (int i = 0; i < 64; ++i) {
      sw_.PostBuffers(queue_, {region_.base + 65536 +
                               static_cast<uint64_t>(i) * 512});
    }
  }

  // Measures completion latency of a single chain against `server`.
  double MeasureUs(PrismServer* server, Chain chain) {
    double us = -1;
    auto chain_ptr = std::make_shared<Chain>(std::move(chain));
    sim::Spawn([this, server, chain_ptr, &us]() -> Task<void> {
      sim::TimePoint start = sim_.Now();
      auto r = co_await client_.Execute(server, std::move(*chain_ptr));
      EXPECT_TRUE(r.ok());
      us = ToMicros(sim_.Now() - start);
    });
    sim_.Run();
    return us;
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  rdma::AddressSpace mem_;
  PrismServer sw_;
  PrismServer hw_;
  PrismServer bf_;
  PrismClient client_;
  rdma::MemoryRegion region_;
  uint32_t queue_;
};

TEST_F(PrismServiceTest, ChainRoundTripExecutesSemantics) {
  mem_.Store(region_.base, BytesOfString("hello"));
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.ExecuteOne(
        &sw_, Op::Read(region_.rkey, region_.base, 5));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(StringOfBytes(r->data), "hello");
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
}

// Figure 1 shape: software ≈ RDMA + 2.5–2.8 µs; hardware projection ≈ RDMA
// plus PCIe round trips; BlueField slowest.
TEST_F(PrismServiceTest, Fig1DeploymentOrdering) {
  mem_.StoreWord(region_.base, region_.base + 1024);
  mem_.Store(region_.base + 1024, Bytes(512, 0x5a));
  Chain indirect{Op::IndirectRead(region_.rkey, region_.base, 512)};
  double sw = MeasureUs(&sw_, indirect);
  double hw = MeasureUs(&hw_, indirect);
  double bf = MeasureUs(&bf_, indirect);
  // Projected hardware: ~3.4 µs (2.5 + 0.9 PCIe pointer chase).
  EXPECT_NEAR(hw, 3.4, 0.6);
  // Software: ~5 µs.
  EXPECT_NEAR(sw, 5.2, 0.8);
  // BlueField: the slowest option (§4.3), ~11 µs.
  EXPECT_GT(bf, 9.0);
  EXPECT_LT(hw, sw);
  EXPECT_LT(sw, bf);
}

TEST_F(PrismServiceTest, ChainCostScalesWithLength) {
  Chain one{Op::Write(region_.rkey, region_.base, Bytes(64))};
  Chain three{Op::Write(region_.rkey, region_.base, Bytes(64)),
              Op::Write(region_.rkey, region_.base + 64, Bytes(64)),
              Op::Write(region_.rkey, region_.base + 128, Bytes(64))};
  double t1 = MeasureUs(&sw_, one);
  double t3 = MeasureUs(&sw_, three);
  // Two extra sw_primitive slots (0.3 µs each), but only one round trip —
  // chains are dispatch-dominated, which is why §6.2's 3-op PUT chain costs
  // about the same round trip as a 1-op GET.
  EXPECT_NEAR(t3 - t1, 0.6, 0.2);
}

TEST_F(PrismServiceTest, AllocateChainOverFabric) {
  bool done = false;
  sim::Spawn([&]() -> Task<void> {
    Chain chain;
    auto scratch = sw_.AllocateScratch(8);
    EXPECT_TRUE(scratch.ok());
    chain.push_back(Op::Allocate(region_.rkey, queue_,
                                 BytesOfString("payload1"))
                        .RedirectTo(*scratch));
    Op install;
    install.code = OpCode::kCas;
    install.rkey = region_.rkey;
    install.addr = region_.base + 128;
    install.data = BytesOfU64(*scratch);
    install.data_indirect = true;
    install.cmp_mask = Bytes(8, 0x00);
    install.swap_mask = Bytes(8, 0xff);
    install.conditional = true;
    chain.push_back(install);
    auto r = co_await client_.Execute(&sw_, std::move(chain));
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE((*r)[1].cas_swapped);
    rdma::Addr installed = mem_.LoadWord(region_.base + 128);
    EXPECT_EQ(StringOfBytes(mem_.Load(installed, 8)), "payload1");
    done = true;
  });
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(PrismServiceTest, PostDeferredWhileChainInFlight) {
  // Start a long chain, post a buffer mid-flight, verify the post is
  // deferred until the chain drains (§3.2 drain rule).
  Chain slow;
  for (int i = 0; i < 24; ++i) {
    slow.push_back(Op::Write(region_.rkey, region_.base, Bytes(8)));
  }
  size_t before = sw_.freelists().available(queue_);
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.Execute(&sw_, std::move(slow));
    EXPECT_TRUE(r.ok());
  });
  bool observed_deferred = false;
  // Post while the chain executes (it holds the server from ~3.5 µs for
  // 24 × 0.2 µs of per-op time).
  sim_.Schedule(Micros(5), [&] {
    if (sw_.in_flight() > 0) {
      sw_.PostBuffers(queue_, {region_.base + 200000});
      observed_deferred = sw_.deferred_posts() > 0;
      EXPECT_EQ(sw_.freelists().available(queue_), before);  // not yet posted
    }
  });
  sim_.Run();
  EXPECT_TRUE(observed_deferred);
  EXPECT_EQ(sw_.deferred_posts(), 0u);  // flushed at drain
  EXPECT_EQ(sw_.freelists().available(queue_), before + 1);
}

TEST_F(PrismServiceTest, ScratchAllocationsAreDisjointAndBounded) {
  auto a = sw_.AllocateScratch(32);
  auto b = sw_.AllocateScratch(32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, *a + 32);
  EXPECT_TRUE(mem_.IsOnNic(*a, 32));
  // 256 KB / 32 B = 8192 connections (the §4.2 sizing argument).
  int granted = 2;
  while (sw_.AllocateScratch(32).ok()) granted++;
  EXPECT_EQ(granted, 8192);
}

TEST_F(PrismServiceTest, ReclaimReturnsBuffersInBatches) {
  ReclaimClient reclaim(&fabric_, client_host_, &sw_, /*batch_size=*/4);
  size_t before = sw_.freelists().available(queue_);
  std::vector<rdma::Addr> freed;
  for (int i = 0; i < 4; ++i) {
    freed.push_back(region_.base + 100000 + static_cast<uint64_t>(i) * 512);
  }
  for (int i = 0; i < 3; ++i) reclaim.Free(queue_, freed[i]);
  EXPECT_EQ(reclaim.batches_sent(), 0u);  // below batch threshold
  reclaim.Free(queue_, freed[3]);
  EXPECT_EQ(reclaim.batches_sent(), 1u);
  sim_.Run();
  EXPECT_EQ(sw_.freelists().available(queue_), before + 4);
}

TEST_F(PrismServiceTest, DownServerYieldsUnavailable) {
  fabric_.SetHostUp(server_host_, false);
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.ExecuteOne(
        &sw_, Op::Read(region_.rkey, region_.base, 8));
    EXPECT_EQ(r.code(), Code::kUnavailable);
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(PrismServiceTest, ConcurrentCasGtIsMonotonicAndAtomic) {
  // 32 clients concurrently install distinct versions with CAS_GT (the
  // PRISM-RS/TX pattern). Whatever the interleaving, the slot's value can
  // only increase, and the final value is the maximum version.
  mem_.StoreWord(region_.base, 0);
  int done = 0;
  uint64_t last_seen = 0;
  bool monotonic = true;
  for (int i = 0; i < 32; ++i) {
    sim::Spawn([&, i]() -> Task<void> {
      const uint64_t version = static_cast<uint64_t>(i) + 1;
      auto r = co_await client_.ExecuteOne(
          &sw_, Op::MaskedCas(region_.rkey, region_.base,
                              BytesOfU64(version), FieldMask(8, 0, 8),
                              FieldMask(8, 0, 8),
                              rdma::CasCompare::kGreater));
      EXPECT_TRUE(r.ok());
      // The CAS returns the previous value; observed values never regress
      // past an already-installed larger version.
      uint64_t prev = LoadU64(r->data.data());
      if (r->cas_swapped && prev >= version) monotonic = false;
      uint64_t now_val = mem_.LoadWord(region_.base);
      if (now_val < last_seen) monotonic = false;
      last_seen = now_val;
      done++;
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 32);
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(mem_.LoadWord(region_.base), 32u);  // max version wins
}

// ---------- wire encoding ----------

TEST(PrismWireTest, FlagsRoundTrip) {
  Op op = Op::IndirectRead(5, 100, 64, /*bounded=*/true);
  op.conditional = true;
  op.redirect = true;
  op.redirect_addr = 4096;
  uint8_t flags = PackFlags(op);
  Op out;
  UnpackFlags(flags, out);
  EXPECT_TRUE(out.addr_indirect);
  EXPECT_TRUE(out.addr_bounded);
  EXPECT_TRUE(out.conditional);
  EXPECT_TRUE(out.redirect);
  EXPECT_FALSE(out.data_indirect);
}

TEST(PrismWireTest, OnlyFiveFlagBitsUsed) {
  Op op;
  op.addr_indirect = op.data_indirect = op.addr_bounded = true;
  op.conditional = op.redirect = true;
  EXPECT_LT(PackFlags(op), 1u << 5);  // §4.2: five new BTH bits suffice
}

TEST(PrismWireTest, ChainEncodeDecodeRoundTrip) {
  Chain chain;
  chain.push_back(Op::IndirectRead(7, 1000, 512, true));
  chain.push_back(Op::Allocate(7, 3, BytesOfString("data")).RedirectTo(64));
  chain.push_back(Op::MaskedCas(7, 2000, BytesOfU64Pair(1, 2),
                                FieldMask(16, 8, 8), FieldMask(16, 0, 16),
                                rdma::CasCompare::kGreater)
                      .Conditional());
  Bytes encoded = EncodeChain(chain);
  EXPECT_EQ(encoded.size(), EncodedChainSize(chain));
  auto decoded = DecodeChain(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  const Op& read = (*decoded)[0];
  EXPECT_EQ(read.code, OpCode::kRead);
  EXPECT_TRUE(read.addr_indirect);
  EXPECT_TRUE(read.addr_bounded);
  EXPECT_EQ(read.len, 512u);
  const Op& alloc = (*decoded)[1];
  EXPECT_EQ(alloc.code, OpCode::kAllocate);
  EXPECT_TRUE(alloc.redirect);
  EXPECT_EQ(alloc.redirect_addr, 64u);
  EXPECT_EQ(StringOfBytes(alloc.data), "data");
  const Op& cas = (*decoded)[2];
  EXPECT_EQ(cas.cas_mode, rdma::CasCompare::kGreater);
  EXPECT_TRUE(cas.conditional);
  EXPECT_EQ(cas.cmp_mask, FieldMask(16, 8, 8));
  EXPECT_EQ(cas.swap_mask, FieldMask(16, 0, 16));
}

TEST(PrismWireTest, TruncatedChainRejected) {
  Chain chain{Op::Read(1, 100, 8)};
  Bytes encoded = EncodeChain(chain);
  encoded.resize(encoded.size() - 3);
  EXPECT_FALSE(DecodeChain(encoded).ok());
}

TEST(PrismWireTest, TrailingBytesRejected) {
  Chain chain{Op::Read(1, 100, 8)};
  Bytes encoded = EncodeChain(chain);
  encoded.push_back(0);
  EXPECT_FALSE(DecodeChain(encoded).ok());
}

TEST(PrismWireTest, ResponseSizeAccountsRedirects) {
  Op plain = Op::Read(1, 0, 512);
  Op redirected = Op::Read(1, 0, 512).RedirectTo(64);
  EXPECT_GT(ResponseOpSize(plain), ResponseOpSize(redirected));
  EXPECT_EQ(ResponseOpSize(plain) - ResponseOpSize(redirected), 512u);
}

}  // namespace
}  // namespace prism::core
