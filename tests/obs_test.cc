// Unit tests for the observability subsystem (src/obs): metrics-registry
// semantics, span parenting/causality in the tracer, the protocol-complexity
// accountant, and end-to-end span trees + Table-1 counting rules over real
// traced RPC / RDMA / PRISM operations.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/obs/obs.h"
#include "src/prism/service.h"
#include "src/rdma/service.h"
#include "src/rpc/rpc.h"
#include "src/sim/task.h"

namespace prism::obs {
namespace {

using sim::Task;

// ---- metrics registry ----

TEST(MetricsTest, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("net", "msgs");
  Gauge* g = reg.AddGauge("net", "depth");
  HistogramMetric* h = reg.AddHistogram("rpc", "latency");
  c->Add();
  c->Add(4);
  g->Set(7);
  g->Add(-2);
  h->Record(1000);
  h->Record(3000);

  MetricsSnapshot s = reg.Snapshot();
  const MetricValue* cv = s.Find("net", "msgs");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->kind, MetricValue::Kind::kCounter);
  EXPECT_EQ(cv->counter, 5u);
  const MetricValue* gv = s.Find("net", "depth");
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(gv->gauge, 5);
  const MetricValue* hv = s.Find("rpc", "latency");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 2);
  EXPECT_DOUBLE_EQ(hv->mean_ns, 2000.0);
  EXPECT_EQ(hv->max_ns, 3000);
}

TEST(MetricsTest, SnapshotSortedByComponentNameHost) {
  MetricsRegistry reg;
  // Registered deliberately out of order.
  reg.AddCounter("rpc", "calls", "hostB")->Add(1);
  reg.AddCounter("net", "msgs")->Add(2);
  reg.AddCounter("rpc", "calls", "hostA")->Add(3);
  reg.AddCounter("prism", "chains")->Add(4);
  MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.values.size(), 4u);
  EXPECT_EQ(s.values[0].component, "net");
  EXPECT_EQ(s.values[1].component, "prism");
  EXPECT_EQ(s.values[2].host, "hostA");
  EXPECT_EQ(s.values[3].host, "hostB");
}

TEST(MetricsTest, DisabledRegistryHandsOutSinksAndSnapshotsEmpty) {
  MetricsRegistry reg;
  reg.SetEnabled(false);
  Counter* a = reg.AddCounter("x", "a");
  Counter* b = reg.AddCounter("x", "b");
  EXPECT_EQ(a, b);  // shared sink slot: hot paths write one dead cache line
  a->Add(100);
  EXPECT_TRUE(reg.Snapshot().values.empty());
  EXPECT_EQ(reg.slot_count(), 0u);
}

TEST(MetricsTest, ResetZeroesOwnedSlots) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("net", "msgs");
  HistogramMetric* h = reg.AddHistogram("rpc", "lat");
  c->Add(9);
  h->Record(500);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.Find("net", "msgs")->counter, 0u);
  EXPECT_EQ(s.Find("rpc", "lat")->count, 0);
}

TEST(MetricsTest, ProvidersAppendAtSnapshotTime) {
  MetricsRegistry reg;
  int calls = 0;
  reg.AddProvider([&](MetricsSnapshot& out) {
    calls++;
    out.AddCounterValue("sim", "events", "", 42);
  });
  EXPECT_EQ(calls, 0);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(calls, 1);
  ASSERT_NE(s.Find("sim", "events"), nullptr);
  EXPECT_EQ(s.Find("sim", "events")->counter, 42u);
}

TEST(MetricsTest, SnapshotsAreIsolatedValueCopies) {
  // The sweep stores one snapshot per point; later activity in the same
  // registry must not leak backwards into an already-taken snapshot.
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("net", "msgs");
  c->Add(1);
  MetricsSnapshot first = reg.Snapshot();
  c->Add(10);
  MetricsSnapshot second = reg.Snapshot();
  EXPECT_EQ(first.Find("net", "msgs")->counter, 1u);
  EXPECT_EQ(second.Find("net", "msgs")->counter, 11u);
  EXPECT_FALSE(first == second);
  EXPECT_TRUE(first == first);
}

TEST(MetricsTest, ToTextListsEveryValue) {
  MetricsRegistry reg;
  reg.AddCounter("net", "msgs", "srv")->Add(3);
  const std::string text = reg.Snapshot().ToText();
  EXPECT_NE(text.find("net.msgs"), std::string::npos) << text;
  EXPECT_NE(text.find("srv"), std::string::npos) << text;
  EXPECT_NE(text.find("3"), std::string::npos) << text;
}

// ---- tracer ----

TEST(TracerTest, BeginEndRecordsIntervalAndParentChain) {
  Tracer t;
  const SpanId root = t.Begin("kv.get", "app", 1, 100);
  const SpanId child = t.Begin("prism.execute", "prism", 1, 110, root);
  const SpanId grandchild = t.Begin("net.flight", "net", 1, 120, child);
  EXPECT_EQ(t.ParentOf(child), root);
  EXPECT_EQ(t.ParentOf(grandchild), child);
  t.End(grandchild, 130);
  t.End(child, 140);
  t.End(root, 150);
  ASSERT_EQ(t.finished_count(), 3u);
  EXPECT_EQ(t.open_count(), 0u);
  // Completion order; every span's root is the chain head.
  const auto& done = t.finished();
  EXPECT_EQ(done[0].name, "net.flight");
  EXPECT_EQ(done[2].name, "kv.get");
  for (const SpanRecord& s : done) EXPECT_EQ(s.root, root);
  EXPECT_EQ(done[0].start_ns, 120);
  EXPECT_EQ(done[0].end_ns, 130);
}

TEST(TracerTest, ParentOfClosedOrUnknownSpanIsZero) {
  Tracer t;
  const SpanId a = t.Begin("a", "app", 0, 0);
  const SpanId b = t.Begin("b", "app", 0, 0, a);
  t.End(b, 5);
  EXPECT_EQ(t.ParentOf(b), 0u);     // closed
  EXPECT_EQ(t.ParentOf(99999), 0u);  // never existed
  EXPECT_EQ(t.ParentOf(0), 0u);
}

TEST(TracerTest, CapDropsOldestFinishedSpans) {
  Tracer t(/*max_finished_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    t.EmitComplete("s" + std::to_string(i), "app", 0, i, i + 1);
  }
  EXPECT_EQ(t.finished_count(), 4u);
  EXPECT_EQ(t.dropped_count(), 6u);
  // Survivors are the last window.
  EXPECT_EQ(t.finished().front().name, "s6");
  EXPECT_EQ(t.finished().back().name, "s9");
}

TEST(TracerTest, ChromeJsonHasAsyncPairsAndProcessNames) {
  Tracer t;
  const SpanId root = t.Begin("kv.get", "app", 1, 1500);
  t.EmitComplete("net.flight", "net", 0, 1600, 2600, root);
  t.End(root, 3000);
  const std::string json = t.ToChromeJson({"server", "client"});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"client\""), std::string::npos);
  EXPECT_NE(json.find("kv.get"), std::string::npos);
  EXPECT_NE(json.find("net.flight"), std::string::npos);
}

TEST(TracerTest, OpenSpansFlushAsZeroLength) {
  Tracer t;
  t.Begin("stuck", "app", 0, 700);
  const std::string json = t.ToChromeJson();
  EXPECT_NE(json.find("stuck"), std::string::npos);
  EXPECT_EQ(t.open_count(), 1u);  // flushing does not close the span
}

// ---- op accountant ----

TEST(OpAccountantTest, AggregatesPerOpSorted) {
  OpAccountant acc;
  TransportTally one_rt;
  one_rt.round_trips = 1;
  one_rt.messages = 1;
  one_rt.bytes_out = 32;
  one_rt.bytes_in = 512;
  acc.Record("kv.put", one_rt);
  acc.Record("kv.get", one_rt);
  acc.Record("kv.get", one_rt);
  std::vector<OpStats> rows = acc.Collect();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].op, "kv.get");  // sorted by op name
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[0].totals.round_trips, 2u);
  EXPECT_EQ(rows[0].totals.bytes_in, 1024u);
  EXPECT_EQ(rows[1].op, "kv.put");
  acc.Reset();
  EXPECT_TRUE(acc.empty());
}

TEST(OpAccountantTest, TallyArithmetic) {
  TransportTally a;
  a.round_trips = 3;
  a.messages = 5;
  a.cpu_actions = 2;
  TransportTally b;
  b.round_trips = 1;
  b.messages = 2;
  b.cpu_actions = 2;
  TransportTally d = a - b;
  EXPECT_EQ(d.round_trips, 2u);
  EXPECT_EQ(d.messages, 3u);
  EXPECT_EQ(d.cpu_actions, 0u);
  EXPECT_TRUE(a == b + d);
}

// ---- end-to-end: spans and tallies over real traced operations ----

struct PingReq {
  int x = 0;
};

// One traced RPC call: the client span must parent the server's serve span
// and at least one fabric flight; counting rules give it exactly one
// message, one round trip and one cpu action.
TEST(ObsEndToEndTest, RpcCallSpanTreeAndTally) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  Tracer tracer;
  fabric.obs().SetTracer(&tracer);
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rpc::RpcServer server(&fabric, server_host);
  rpc::RpcClient client(&fabric, client_host);
  server.Register(1, [](const rpc::Message&) -> Task<rpc::MessagePtr> {
    co_return rpc::Message::Of(PingReq{7}, 64);
  });
  sim::Spawn([&]() -> Task<void> {
    const SpanId op =
        fabric.obs().StartSpan("app.ping", "app", client_host, sim.Now());
    rpc::MessagePtr msg = rpc::Message::Of(PingReq{1}, 32);
    auto resp = co_await client.Call(&server, 1, msg);
    EXPECT_TRUE(resp.ok());
    fabric.obs().FinishSpan(op, sim.Now());
  });
  sim.Run();

  // Index the finished spans by name.
  std::map<std::string, const SpanRecord*> by_name;
  SpanId app_id = 0;
  SpanId call_id = 0;
  for (const SpanRecord& s : tracer.finished()) {
    by_name[s.name] = &s;
    if (s.name == "app.ping") app_id = s.id;
    if (s.name == "rpc.call") call_id = s.id;
  }
  ASSERT_NE(by_name.count("app.ping"), 0u);
  ASSERT_NE(by_name.count("rpc.call"), 0u);
  ASSERT_NE(by_name.count("rpc.serve"), 0u);
  ASSERT_NE(by_name.count("net.flight"), 0u);
  EXPECT_EQ(by_name["rpc.call"]->parent, app_id);
  EXPECT_EQ(by_name["rpc.serve"]->parent, call_id);
  EXPECT_EQ(by_name["rpc.serve"]->host, server_host);
  // Every span of the op belongs to the app.ping causal chain.
  for (const SpanRecord& s : tracer.finished()) {
    EXPECT_EQ(s.root, app_id) << s.name;
  }
  // net.flight spans carry real wire time (closed, positive duration).
  EXPECT_GT(by_name["net.flight"]->end_ns, by_name["net.flight"]->start_ns);

  const TransportTally t = client.tally();
  EXPECT_EQ(t.messages, 1u);
  EXPECT_EQ(t.round_trips, 1u);
  EXPECT_EQ(t.cpu_actions, 1u);  // RPC always burns server CPU
  EXPECT_GT(t.bytes_out, 0u);
  EXPECT_GT(t.bytes_in, 0u);
}

// Hardware-NIC RDMA read: one round trip, zero cpu actions; the software
// stack charges one cpu action for the same verb. PRISM chains likewise
// charge for software/BlueField but not for projected hardware — the
// Table-1 distinction the accounting exists to surface.
TEST(ObsEndToEndTest, CountingRulesByBackendAndDeployment) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 20);
  auto region = *mem.CarveAndRegister(1 << 16, rdma::kRemoteAll);
  rdma::RdmaService hw(&fabric, server_host, rdma::Backend::kHardwareNic,
                       &mem);
  rdma::RdmaService sw(&fabric, server_host, rdma::Backend::kSoftwareStack,
                       &mem);
  core::PrismServer psw(&fabric, server_host, core::Deployment::kSoftware,
                        &mem);
  core::PrismServer phw(&fabric, server_host,
                        core::Deployment::kHardwareProjected, &mem);
  rdma::RdmaClient rc(&fabric, client_host);
  core::PrismClient pc(&fabric, client_host);
  sim::Spawn([&]() -> Task<void> {
    auto r1 = co_await rc.Read(&hw, region.rkey, region.base, 64);
    EXPECT_TRUE(r1.ok());
    auto r2 = co_await rc.Read(&sw, region.rkey, region.base, 64);
    EXPECT_TRUE(r2.ok());
    auto r3 = co_await pc.ExecuteOne(
        &psw, core::Op::Read(region.rkey, region.base, 64));
    EXPECT_TRUE(r3.ok());
    auto r4 = co_await pc.ExecuteOne(
        &phw, core::Op::Read(region.rkey, region.base, 64));
    EXPECT_TRUE(r4.ok());
  });
  sim.Run();

  const TransportTally rt = rc.tally();
  EXPECT_EQ(rt.messages, 2u);
  EXPECT_EQ(rt.round_trips, 2u);
  EXPECT_EQ(rt.cpu_actions, 1u);  // only the software-stack verb

  const TransportTally pt = pc.tally();
  EXPECT_EQ(pt.messages, 2u);
  EXPECT_EQ(pt.round_trips, 2u);
  EXPECT_EQ(pt.cpu_actions, 1u);  // only the software deployment
}

// The fabric hub registers component metrics: after a traced RPC exchange
// the snapshot carries net totals, per-host counters and sim stats.
TEST(ObsEndToEndTest, FabricSnapshotCarriesCrossLayerMetrics) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rpc::RpcServer server(&fabric, server_host);
  rpc::RpcClient client(&fabric, client_host);
  server.Register(1, [](const rpc::Message&) -> Task<rpc::MessagePtr> {
    co_return rpc::Message::Of(PingReq{0}, 64);
  });
  sim::Spawn([&]() -> Task<void> {
    rpc::MessagePtr msg = rpc::Message::Of(PingReq{1}, 32);
    auto resp = co_await client.Call(&server, 1, msg);
    EXPECT_TRUE(resp.ok());
  });
  sim.Run();

  MetricsSnapshot s = fabric.obs().metrics().Snapshot();
  const MetricValue* total = s.Find("net", "total_messages");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->counter, 2u);  // request + response at minimum
  const MetricValue* served = s.Find("rpc", "calls_served", "server");
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->counter, 1u);
  const MetricValue* events = s.Find("sim", "executed_events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->counter, 0u);
  EXPECT_EQ(events->counter, sim.executed_events());
}

}  // namespace
}  // namespace prism::obs
