// Calibration tests: pin every constant-derived prediction from DESIGN.md §4
// so cost-model drift is caught immediately. These are deliberately tight —
// if one fails after a cost-model change, EXPERIMENTS.md needs re-running.
#include <gtest/gtest.h>

#include "src/net/cost_model.h"
#include "src/net/fabric.h"
#include "src/sim/task.h"

namespace prism::net {
namespace {

TEST(CostModelTest, SerializationMath) {
  CostModel m = CostModel::EvalCluster40G();
  // (512 payload + 60 header) bytes at 40 Gb/s = 114.4 ns.
  EXPECT_NEAR(static_cast<double>(m.SerializationDelay(512)), 114.4, 1.0);
  EXPECT_EQ(m.WireBytes(512), 572u);
  CostModel d = CostModel::Fig1DirectTestbed();
  // Same message at 25 Gb/s = 183 ns.
  EXPECT_NEAR(static_cast<double>(d.SerializationDelay(512)), 183.0, 1.0);
}

TEST(CostModelTest, PresetsDifferOnlyWhereDocumented) {
  CostModel direct = CostModel::Fig1DirectTestbed();
  CostModel cluster = CostModel::EvalCluster40G();
  EXPECT_EQ(direct.link_gbps, 25.0);
  EXPECT_EQ(cluster.link_gbps, 40.0);
  EXPECT_LT(direct.propagation, cluster.propagation);
  // All processing constants identical across presets.
  EXPECT_EQ(direct.client_post, cluster.client_post);
  EXPECT_EQ(direct.sw_dispatch, cluster.sw_dispatch);
  EXPECT_EQ(direct.pcie_read_rtt, cluster.pcie_read_rtt);
}

TEST(CostModelTest, TopologyTiersMatchFigure2) {
  // §4.3 / Fig. 2: +0.6 µs (ToR), +3 µs (3-tier), +24 µs (datacenter).
  CostModel base = CostModel::Fig1DirectTestbed();
  EXPECT_EQ(CostModel::RackScale().propagation - base.propagation,
            sim::Nanos(600));
  EXPECT_EQ(CostModel::ClusterScale().propagation - base.propagation,
            sim::Micros(3));
  EXPECT_EQ(CostModel::DataCenterScale().propagation - base.propagation,
            sim::Micros(24));
}

TEST(CostModelTest, SoftwarePremiumWithinPaperRange) {
  // §4.3: the software prototype adds 2.5–2.8 µs per op over hardware RDMA.
  CostModel m = CostModel::Fig1DirectTestbed();
  const double hw_server = static_cast<double>(m.nic_process +
                                               m.pcie_read_rtt);
  const double sw_server =
      static_cast<double>(m.sw_ring_dma + m.sw_queue_delay + m.sw_dispatch +
                          m.sw_primitive + m.sw_tx);
  const double premium_us = (sw_server - hw_server) / 1e3;
  EXPECT_GE(premium_us, 2.2);
  EXPECT_LE(premium_us, 2.9);
}

TEST(CostModelTest, ServerCoreCapacityReachesLineRate) {
  // §6.2: "16 dedicated cores ... is sufficient to achieve line rate".
  // Line rate for 512 B GET responses ≈ 8.5 Mops; core capacity for 1-op
  // chains must exceed it.
  CostModel m = CostModel::EvalCluster40G();
  const double per_chain_ns =
      static_cast<double>(m.sw_dispatch + m.sw_primitive);
  const double chains_per_sec = m.server_cores * 1e9 / per_chain_ns;
  EXPECT_GT(chains_per_sec, 10e6);
}

TEST(FabricTest, UncontendedLatencyIsSerializationPlusPropagation) {
  sim::Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  sim::TimePoint delivered = -1;
  fabric.Send(a, b, 512, [&] { delivered = sim.Now(); });
  sim.Run();
  // ser(512+60 B @40G) = 114 ns + 600 ns propagation.
  EXPECT_NEAR(static_cast<double>(delivered), 714.0, 2.0);
}

TEST(FabricTest, EgressContentionSerializesSenders) {
  sim::Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId src = fabric.AddHost("src");
  std::vector<HostId> dsts;
  for (int i = 0; i < 4; ++i) {
    dsts.push_back(fabric.AddHost("d" + std::to_string(i)));
  }
  std::vector<sim::TimePoint> deliveries;
  for (int i = 0; i < 4; ++i) {
    fabric.Send(src, dsts[static_cast<size_t>(i)], 512,
                [&] { deliveries.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(deliveries.size(), 4u);
  // Back-to-back sends from one host space out by one serialization time.
  for (size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(deliveries[i] - deliveries[i - 1]),
                114.4, 2.0);
  }
}

TEST(FabricTest, IngressContentionQueuesReceivers) {
  sim::Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  std::vector<HostId> srcs;
  for (int i = 0; i < 4; ++i) {
    srcs.push_back(fabric.AddHost("s" + std::to_string(i)));
  }
  HostId dst = fabric.AddHost("dst");
  std::vector<sim::TimePoint> deliveries;
  for (int i = 0; i < 4; ++i) {
    fabric.Send(srcs[static_cast<size_t>(i)], dst, 512,
                [&] { deliveries.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(deliveries.size(), 4u);
  for (size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_GE(deliveries[i] - deliveries[i - 1], sim::Nanos(110));
  }
}

TEST(FabricTest, StatsAccounting) {
  sim::Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  fabric.Send(a, b, 100, [] {});
  fabric.SetHostUp(b, false);
  int dropped = 0;
  fabric.Send(a, b, 100, [] {}, [&] { dropped++; });
  sim.Run();
  EXPECT_EQ(fabric.total_messages(), 1u);
  EXPECT_EQ(fabric.dropped_messages(), 1u);
  EXPECT_EQ(fabric.total_wire_bytes(), 160u);
  EXPECT_EQ(dropped, 1);
}

TEST(FabricTest, MidFlightCrashDropsDelivery) {
  sim::Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  bool delivered = false;
  fabric.Send(a, b, 100, [&] { delivered = true; });
  fabric.SetHostUp(b, false);  // crashes while the message is in flight
  sim.Run();
  EXPECT_FALSE(delivered);
}

TEST(FabricTest, LoopbackSkipsTheWire) {
  sim::Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  sim::TimePoint delivered = -1;
  fabric.Send(a, a, 1 << 20, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_LT(delivered, sim::Micros(1));  // no serialization for 1 MiB
}

}  // namespace
}  // namespace prism::net
