// Tests for the fabric's loss, retransmission, and failure semantics.
//
// The contract (fabric.h): exactly one of on_delivery / on_dropped fires per
// Send — on_delivery once the last byte arrives (after any transport-level
// retransmissions), on_dropped when an endpoint is down at attempt time or
// retransmissions are exhausted. A host that dies while the message is in
// flight swallows the delivery silently (no on_dropped: the wire attempt
// already succeeded, the receiver just isn't there anymore).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/net/cost_model.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace prism::net {
namespace {

using sim::Micros;
using sim::Simulator;

CostModel LossyModel(double p, int max_retransmits) {
  CostModel m = CostModel::EvalCluster40G();
  m.loss_probability = p;
  m.max_retransmits = max_retransmits;
  return m;
}

TEST(FabricTest, RetransmitExhaustionFiresDroppedExactlyOnce) {
  Simulator sim;
  Fabric fabric(&sim, LossyModel(/*p=*/1.0, /*max_retransmits=*/3));
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 64, [&] { delivered++; }, [&] { dropped++; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  // Initial attempt + 3 retransmissions, all lost.
  EXPECT_EQ(fabric.lost_messages(), 4u);
  EXPECT_EQ(fabric.retransmissions(), 3u);
  EXPECT_EQ(fabric.dropped_messages(), 1u);
  // The exhaustion verdict lands on the last (lost) attempt, after three
  // full retransmit timeouts.
  EXPECT_EQ(sim.Now(), fabric.cost().retransmit_timeout * 3);
}

TEST(FabricTest, LostFrameIsRetransmittedAndDelivered) {
  // With 50% loss and a fixed seed the chain is deterministic; the message
  // must eventually get through within the retransmit budget.
  Simulator sim;
  Fabric fabric(&sim, LossyModel(/*p=*/0.5, /*max_retransmits=*/20));
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 8; ++i) {
    fabric.Send(a, b, 64, [&] { delivered++; }, [&] { dropped++; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(dropped, 0);
  EXPECT_GT(fabric.retransmissions(), 0u);
  EXPECT_EQ(fabric.lost_messages(), fabric.retransmissions());
}

TEST(FabricTest, PartialLossAccountingBalances) {
  Simulator sim;
  Fabric fabric(&sim, LossyModel(/*p=*/0.2, /*max_retransmits=*/2));
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  constexpr int kSends = 500;
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < kSends; ++i) {
    fabric.Send(a, b, 128, [&] { delivered++; }, [&] { dropped++; });
  }
  sim.Run();
  // Exactly one callback per Send, no duplicates, no losses of the verdict.
  EXPECT_EQ(delivered + dropped, kSends);
  EXPECT_EQ(fabric.dropped_messages(), static_cast<uint64_t>(dropped));
  // Every retransmission corresponds to a lost frame that had retry budget.
  EXPECT_GT(fabric.lost_messages(), 0u);
  EXPECT_GE(fabric.lost_messages(), fabric.retransmissions());
}

TEST(FabricTest, SendToDownHostDropsImmediately) {
  Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  fabric.SetHostUp(b, false);
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 64, [&] { delivered++; }, [&] { dropped++; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(sim.Now(), 0);  // verdict is a zero-delay event
  EXPECT_EQ(fabric.total_messages(), 0u);  // never reached the wire
}

TEST(FabricTest, SendWithoutDroppedCallbackIsSilent) {
  Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  fabric.SetHostUp(b, false);
  int delivered = 0;
  fabric.Send(a, b, 64, [&] { delivered++; });  // no on_dropped overload
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(fabric.dropped_messages(), 1u);
}

TEST(FabricTest, HostDyingMidFlightSwallowsDelivery) {
  Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 4096, [&] { delivered++; }, [&] { dropped++; });
  // The wire attempt succeeded, so no on_dropped; but the receiver dies
  // before the last byte lands, so no on_delivery either.
  sim.Schedule(sim::Nanos(100), [&] { fabric.SetHostUp(b, false); });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 0);
  EXPECT_EQ(fabric.total_messages(), 1u);
  EXPECT_EQ(fabric.dropped_messages(), 0u);
}

TEST(FabricTest, RetransmitNoticesReceiverDeath) {
  // Loss keeps the message bouncing; the receiver dies during the retry
  // window, so a later attempt observes the down host and fires on_dropped.
  Simulator sim;
  Fabric fabric(&sim, LossyModel(/*p=*/1.0, /*max_retransmits=*/10));
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 64, [&] { delivered++; }, [&] { dropped++; });
  sim.Schedule(Micros(30), [&] { fabric.SetHostUp(b, false); });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  // Fewer attempts than the full budget: the down check cut the chain short.
  EXPECT_LT(fabric.retransmissions(), 10u);
}

TEST(FabricTest, CrashRestartPurgesInFlightTraffic) {
  // A message launched toward incarnation N of a host must NOT be delivered
  // to incarnation N+1: a "crashed" host loses whatever was addressed to it,
  // even if it restarts before the bytes land.
  Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 4096, [&] { delivered++; }, [&] { dropped++; });
  sim.Schedule(sim::Nanos(100), [&] {
    fabric.SetHostUp(b, false);
    fabric.SetHostUp(b, true);  // bounce: up again before the last byte
  });
  sim.Run();
  EXPECT_EQ(delivered, 0);  // the old incarnation's traffic is gone
  EXPECT_EQ(dropped, 0);    // the wire attempt itself succeeded
  EXPECT_EQ(fabric.purged_messages(), 1u);
  // The restarted incarnation receives fresh traffic normally.
  fabric.Send(a, b, 64, [&] { delivered++; });
  sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(FabricTest, RetransmitChainTornDownByRestart) {
  // A retransmit chain pending toward a host that crash/restarts mid-window
  // is torn down (on_dropped) rather than delivered to the new incarnation —
  // even though the host is up again when the retry timer fires.
  Simulator sim;
  Fabric fabric(&sim, LossyModel(/*p=*/1.0, /*max_retransmits=*/10));
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 64, [&] { delivered++; }, [&] { dropped++; });
  sim.Schedule(Micros(30), [&] {
    fabric.SetHostUp(b, false);
    fabric.SetHostUp(b, true);
  });
  sim.Run();
  EXPECT_TRUE(fabric.IsHostUp(b));  // up at teardown time: epoch decided it
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(fabric.purged_messages(), 1u);
  EXPECT_LT(fabric.retransmissions(), 10u);  // chain cut short
  EXPECT_EQ(fabric.HostEpoch(b), 1u);
}

TEST(FabricTest, BlockedLinkRetransmitsUntilUnblocked) {
  Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  fabric.SetLinkBlocked(a, b, true);
  int forward = 0;
  int reverse = 0;
  fabric.Send(a, b, 64, [&] { forward++; });
  fabric.Send(b, a, 64, [&] { reverse++; });  // partition is directed
  sim.Schedule(Micros(50), [&] { fabric.SetLinkBlocked(a, b, false); });
  sim.RunUntil(Micros(40));
  EXPECT_EQ(forward, 0);   // still partitioned
  EXPECT_EQ(reverse, 1);   // reverse direction unaffected
  sim.Run();
  EXPECT_EQ(forward, 1);   // a retry after the heal gets through
  EXPECT_GT(fabric.partitioned_messages(), 0u);
  EXPECT_GT(fabric.retransmissions(), 0u);
}

TEST(FabricTest, PermanentPartitionExhaustsToDrop) {
  Simulator sim;
  Fabric fabric(&sim, LossyModel(/*p=*/0.0, /*max_retransmits=*/3));
  HostId a = fabric.AddHost("a");
  HostId b = fabric.AddHost("b");
  fabric.SetLinkBlocked(a, b, true);
  int delivered = 0;
  int dropped = 0;
  fabric.Send(a, b, 64, [&] { delivered++; }, [&] { dropped++; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  // Initial attempt + every retransmission hit the blocked link.
  EXPECT_EQ(fabric.partitioned_messages(), 4u);
}

TEST(FabricTest, LoopbackSkipsWireButPaysLocalHop) {
  Simulator sim;
  Fabric fabric(&sim, CostModel::EvalCluster40G());
  HostId a = fabric.AddHost("a");
  int delivered = 0;
  fabric.Send(a, a, 1 << 20, [&] { delivered++; });
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sim.Now(), sim::Nanos(200));
}

}  // namespace
}  // namespace prism::net
