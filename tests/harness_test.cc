// Tests for the parallel sweep harness (src/harness/sweep.h).
//
// The contract under test: a sweep over N self-contained points produces a
// result vector that is bit-identical for ANY job count — jobs=1 runs the
// points inline in index order (exact serial reproduction), jobs>1 fans
// them across a fixed thread pool with results landing in pre-sized
// index-addressed slots. Errors are captured per point and rethrown (the
// lowest-index one) only after the pool has joined, so a throwing point
// can never deadlock or poison its neighbours.
#include "src/harness/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace prism {
namespace {

// A miniature but real simulation: seeded rng drives a few coroutines that
// sleep and accumulate. Deterministic per seed; any cross-point leakage or
// result misplacement changes the fingerprint.
uint64_t SimFingerprint(uint64_t seed) {
  sim::Simulator sim;
  Rng rng(seed);
  uint64_t acc = seed * 0x9E3779B97F4A7C15ull;
  for (int c = 0; c < 3; ++c) {
    sim::Spawn([&, c]() -> sim::Task<void> {
      for (int i = 0; i < 8; ++i) {
        co_await sim::SleepFor(&sim, sim::Micros(rng.NextInRange(1, 50)));
        acc = acc * 6364136223846793005ull +
              static_cast<uint64_t>(sim.Now()) + static_cast<uint64_t>(c);
      }
    });
  }
  sim.Run();
  return acc ^ sim.executed_events();
}

std::vector<harness::SweepPoint<uint64_t>> FingerprintPoints(int n) {
  std::vector<harness::SweepPoint<uint64_t>> points;
  for (int i = 0; i < n; ++i) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(i);
    points.push_back([seed] { return SimFingerprint(seed); });
  }
  return points;
}

TEST(SweepHarnessTest, BitIdenticalAcrossJobCounts) {
  const auto points = FingerprintPoints(23);
  const std::vector<uint64_t> serial =
      harness::RunSweep(points, harness::SweepOptions{1});
  ASSERT_EQ(serial.size(), points.size());
  for (int jobs : {2, 8}) {
    const std::vector<uint64_t> parallel =
        harness::RunSweep(points, harness::SweepOptions{jobs});
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(SweepHarnessTest, ResultsAreInPointIndexOrder) {
  // Each point returns its own index; the output must be 0..N-1 regardless
  // of which worker ran which point or in what order they finished.
  std::vector<harness::SweepPoint<int>> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back([i] { return i; });
  }
  for (int jobs : {1, 2, 8}) {
    const std::vector<int> out =
        harness::RunSweep(points, harness::SweepOptions{jobs});
    ASSERT_EQ(out.size(), points.size());
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i) << "jobs=" << jobs;
  }
}

TEST(SweepHarnessTest, ThrowingPointFailsWithoutDeadlock) {
  // One poisoned point among many; the sweep must join the pool, run every
  // other point to completion, and rethrow the failure.
  for (int jobs : {1, 2, 8}) {
    std::atomic<int> completed{0};
    std::vector<harness::SweepPoint<int>> points;
    for (int i = 0; i < 16; ++i) {
      if (i == 5) {
        points.push_back([]() -> int {
          throw std::runtime_error("poisoned point");
        });
      } else {
        points.push_back([i, &completed] {
          completed.fetch_add(1);
          return i;
        });
      }
    }
    EXPECT_THROW(harness::RunSweep(points, harness::SweepOptions{jobs}),
                 std::runtime_error)
        << "jobs=" << jobs;
    EXPECT_EQ(completed.load(), 15) << "jobs=" << jobs;
  }
}

TEST(SweepHarnessTest, NoThrowVariantReportsPerPointErrors) {
  std::vector<harness::SweepPoint<int>> points = {
      [] { return 7; },
      []() -> int { throw std::runtime_error("bad point"); },
      [] { return 9; },
  };
  const auto results =
      harness::RunSweepNoThrow(points, harness::SweepOptions{2});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0].value, 7);
  EXPECT_FALSE(results[1].ok());
  ASSERT_TRUE(results[1].error != nullptr);
  try {
    std::rethrow_exception(results[1].error);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "bad point");
  }
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(*results[2].value, 9);
}

TEST(SweepHarnessTest, RethrowsLowestIndexFailure) {
  // Two failures; RunSweep must surface the lowest-index one so replay
  // instructions are deterministic.
  std::vector<harness::SweepPoint<int>> points;
  for (int i = 0; i < 12; ++i) {
    if (i == 3 || i == 9) {
      points.push_back([i]() -> int {
        throw std::runtime_error("fail at " + std::to_string(i));
      });
    } else {
      points.push_back([i] { return i; });
    }
  }
  for (int jobs : {1, 4}) {
    try {
      harness::RunSweep(points, harness::SweepOptions{jobs});
      FAIL() << "expected throw, jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail at 3") << "jobs=" << jobs;
    }
  }
}

TEST(SweepHarnessTest, EmptySweepAndOversizedPool) {
  const std::vector<harness::SweepPoint<int>> none;
  EXPECT_TRUE(harness::RunSweep(none, harness::SweepOptions{8}).empty());
  // More workers than points: pool is clamped, every point runs once.
  std::vector<harness::SweepPoint<int>> two = {[] { return 1; },
                                              [] { return 2; }};
  const auto out = harness::RunSweep(two, harness::SweepOptions{16});
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(SweepHarnessTest, ThrowInLastSlotStillJoinsAndRethrows) {
  // The poisoned point is the LAST index: the pool must not lose the
  // exception when workers are already draining, and every earlier point
  // still completes.
  for (int jobs : {1, 2, 8, 16}) {
    std::atomic<int> completed{0};
    std::vector<harness::SweepPoint<int>> points;
    for (int i = 0; i < 9; ++i) {
      points.push_back([i, &completed] {
        completed.fetch_add(1);
        return i;
      });
    }
    points.push_back([]() -> int {
      throw std::runtime_error("last slot");
    });
    try {
      harness::RunSweep(points, harness::SweepOptions{jobs});
      FAIL() << "expected throw, jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "last slot") << "jobs=" << jobs;
    }
    EXPECT_EQ(completed.load(), 9) << "jobs=" << jobs;
  }
}

TEST(SweepHarnessTest, EmptyPointSetNeverDeadlocksOrThrows) {
  // Zero points with an oversized pool: the pool clamps to zero workers,
  // returns immediately, and there is no spurious rethrow from the empty
  // result scan — in both throwing and no-throw variants.
  const std::vector<harness::SweepPoint<int>> none;
  for (int jobs : {1, 4, 32}) {
    EXPECT_TRUE(harness::RunSweep(none, harness::SweepOptions{jobs}).empty())
        << "jobs=" << jobs;
    EXPECT_TRUE(
        harness::RunSweepNoThrow(none, harness::SweepOptions{jobs}).empty())
        << "jobs=" << jobs;
  }
}

TEST(SweepHarnessTest, ManyMoreJobsThanPointsIsBitIdentical) {
  // jobs far beyond the point count: the clamp means no worker spins on an
  // empty ticket range, and results match the serial lane exactly.
  const auto points = FingerprintPoints(3);
  const auto serial = harness::RunSweep(points, harness::SweepOptions{1});
  const auto flooded = harness::RunSweep(points, harness::SweepOptions{64});
  EXPECT_EQ(flooded, serial);
}

TEST(SweepHarnessTest, PreCancelledSweepSkipsEverything) {
  std::atomic<bool> cancel{true};
  std::atomic<int> ran{0};
  std::vector<harness::SweepPoint<int>> points;
  for (int i = 0; i < 8; ++i) {
    points.push_back([&ran] {
      ran.fetch_add(1);
      return 0;
    });
  }
  for (int jobs : {1, 4}) {
    harness::SweepOptions opts{jobs};
    opts.cancel = &cancel;
    const auto results = harness::RunSweepNoThrow(points, opts);
    ASSERT_EQ(results.size(), 8u);
    for (const auto& r : results) {
      EXPECT_TRUE(r.skipped());
      EXPECT_FALSE(r.ok());
      EXPECT_TRUE(r.error == nullptr);
    }
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(SweepHarnessTest, CancelMidSweepFinishesStartedPointsOnly) {
  // Serial lane, cancel raised by point 2: points 0..2 ran (a started point
  // always completes), everything after comes back skipped — and skipped
  // slots are distinguishable from errors.
  std::atomic<bool> cancel{false};
  std::vector<harness::SweepPoint<int>> points;
  for (int i = 0; i < 6; ++i) {
    points.push_back([i, &cancel] {
      if (i == 2) cancel.store(true);
      return i * 10;
    });
  }
  harness::SweepOptions opts{1};
  opts.cancel = &cancel;
  const auto results = harness::RunSweepNoThrow(points, opts);
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(results[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(*results[static_cast<size_t>(i)].value, i * 10);
  }
  for (size_t i = 3; i < 6; ++i) EXPECT_TRUE(results[i].skipped()) << i;
}

TEST(SweepHarnessTest, SweepRunnerWrapsSameSemantics) {
  harness::SweepRunner runner(2);
  EXPECT_EQ(runner.jobs(), 2);
  const auto points = FingerprintPoints(5);
  EXPECT_EQ(runner.Run(points),
            harness::RunSweep(points, harness::SweepOptions{1}));
}

TEST(SweepHarnessTest, JobsResolutionPrecedence) {
  // Explicit --jobs=N beats everything.
  {
    const char* argv[] = {"bench", "--jobs=3", "other"};
    EXPECT_EQ(harness::JobsFromArgs(3, const_cast<char**>(argv)), 3);
  }
  // Then PRISM_JOBS, then hardware_concurrency (>= 1 either way).
  ::setenv("PRISM_JOBS", "5", 1);
  EXPECT_EQ(harness::DefaultJobs(), 5);
  {
    const char* argv[] = {"bench"};
    EXPECT_EQ(harness::JobsFromArgs(1, const_cast<char**>(argv)), 5);
  }
  ::unsetenv("PRISM_JOBS");
  EXPECT_GE(harness::DefaultJobs(), 1);
}

TEST(SweepHarnessTest, CoresResolutionPrecedence) {
  // Explicit --cores=N beats everything.
  {
    const char* argv[] = {"bench", "--cores=4", "--jobs=2"};
    EXPECT_EQ(harness::CoresFromArgs(3, const_cast<char**>(argv)), 4);
  }
  // Then PRISM_CORES; unlike --jobs the final fallback is 1 (serial), not
  // hardware_concurrency — one simulation is serial unless asked otherwise.
  ::setenv("PRISM_CORES", "6", 1);
  EXPECT_EQ(harness::DefaultCores(), 6);
  {
    const char* argv[] = {"bench"};
    EXPECT_EQ(harness::CoresFromArgs(1, const_cast<char**>(argv)), 6);
  }
  ::unsetenv("PRISM_CORES");
  EXPECT_EQ(harness::DefaultCores(), 1);
  {
    const char* argv[] = {"bench", "--cores=0", "--cores=-3"};
    EXPECT_EQ(harness::CoresFromArgs(3, const_cast<char**>(argv)), 1);
  }
}

TEST(SweepHarnessTest, PlanPoolNeverOversubscribes) {
  // Exhaustive grid: jobs × cores of the resulting plan must fit the pool,
  // the intra-sim request wins (cores only clamps to the pool itself), and
  // both knobs stay >= 1.
  for (int pool = 1; pool <= 12; ++pool) {
    for (int jobs = 0; jobs <= 16; ++jobs) {
      for (int cores = 0; cores <= 16; ++cores) {
        const harness::PoolPlan plan = harness::PlanPool(jobs, cores, pool);
        EXPECT_GE(plan.jobs, 1);
        EXPECT_GE(plan.cores, 1);
        EXPECT_LE(plan.jobs * plan.cores, pool)
            << "jobs=" << jobs << " cores=" << cores << " pool=" << pool;
        // The cores request is honored up to the pool size.
        EXPECT_EQ(plan.cores, std::min(std::max(cores, 1), pool));
      }
    }
  }
  // Degenerate pool still yields a runnable serial plan.
  const harness::PoolPlan plan = harness::PlanPool(8, 8, 0);
  EXPECT_EQ(plan.jobs, 1);
  EXPECT_EQ(plan.cores, 1);
}

}  // namespace
}  // namespace prism
