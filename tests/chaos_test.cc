// Deterministic chaos sweeps: PRISM-RS / PRISM-KV / PRISM-TX driven by a
// seeded ChaosMonkey (crash/restart, asymmetric partitions, loss bursts,
// latency spikes) while every client op is recorded into a history that the
// offline checkers (src/check) validate — linearizability for the register
// stores, read-committed for transactions. Any violating seed is printed
// with its expanded fault schedule and a replay command line:
//
//     chaos_test --seed=N --gtest_filter=ChaosSweep.*
//
// The binary has a custom main() for exactly that flag; everything else is
// standard gtest. Also here: negative tests proving the checkers *reject*
// bad histories (a checker that accepts everything would pass any sweep),
// and a crash-amnesia test proving the linearizability checker notices when
// a wiped quorum loses an acknowledged write.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/check/checker.h"
#include "src/check/history.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/harness/sweep.h"
#include "src/kv/prism_kv.h"
#include "src/obs/obs.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"
#include "src/tx/prism_tx.h"

namespace prism {

// Set by --seed=N on the command line (see main below): replay exactly one
// chaos seed instead of sweeping.
int64_t g_replay_seed = -1;

// Set by --jobs=N: worker threads for the sweep (0 = DefaultJobs()).
int g_chaos_jobs = 0;

// Set by --trace=<path> / --metrics: observability dumps. Each seed runs
// with its own tracer (worker threads never share obs state); the dump is
// written only for a failing seed — or unconditionally in --seed=N replay —
// so the 100-seed sweep stays cheap and its pass/fail output unchanged.
std::string g_chaos_trace_path;
bool g_chaos_metrics = false;

namespace {

using sim::Task;

std::vector<uint64_t> SweepSeeds() {
  if (g_replay_seed >= 0) return {static_cast<uint64_t>(g_replay_seed)};
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 100; ++s) seeds.push_back(s);
  return seeds;
}

// Globally unique value: encodes (seed, client, op) so fingerprint equality
// is value equality across the whole sweep. Requires size >= 11.
Bytes UniqueValue(size_t size, uint64_t seed, int client, int op) {
  Bytes v(size, 0);
  for (int i = 0; i < 8; ++i) v[i] = static_cast<uint8_t>(seed >> (8 * i));
  v[8] = static_cast<uint8_t>(client);
  v[9] = static_cast<uint8_t>(op);
  v[10] = static_cast<uint8_t>(op >> 8);
  return v;
}

struct SeedRun {
  bool hang = false;        // coroutines still live after the sim drained
  check::CheckResult check;
  std::string schedule;     // ChaosMonkey::Describe() for the log
  int faults = 0;           // total fault events injected
  std::string metrics;      // --metrics: snapshot text (failure or replay)
  std::string trace_path;   // --trace: where this seed's trace was written
};

std::string ReplayBanner(const char* test, uint64_t seed, const SeedRun& r) {
  std::ostringstream os;
  os << "chaos seed " << seed << " — replay with:\n    chaos_test --seed="
     << seed << " --gtest_filter=ChaosSweep." << test << "\n"
     << r.schedule;
  if (!r.trace_path.empty()) os << "trace written to " << r.trace_path << "\n";
  if (!r.metrics.empty()) os << "metrics at failure:\n" << r.metrics;
  return os.str();
}

// Per-seed observability rig for --trace / --metrics. Attach() arms the
// fabric's hub with a tracer local to this seed's simulation; Harvest()
// captures the metric snapshot and writes the trace for a failing seed (or
// always under --seed=N replay). Tracing must not perturb the run — the
// fault schedule and checker verdict are identical with or without it
// (obs_determinism_test holds the bench side to the same bar).
struct SeedObs {
  obs::Tracer tracer;

  void Attach(net::Fabric& fabric) {
    if (!g_chaos_trace_path.empty()) fabric.obs().SetTracer(&tracer);
  }

  void Harvest(net::Fabric& fabric, uint64_t seed, SeedRun* r) {
    const bool dump = r->hang || !r->check.ok || g_replay_seed >= 0;
    if (!dump) return;
    if (g_chaos_metrics) {
      r->metrics = fabric.obs().metrics().Snapshot().ToText();
    }
    if (!g_chaos_trace_path.empty()) {
      std::string path = g_chaos_trace_path;
      const std::string kExt = ".json";
      if (path.size() >= kExt.size() &&
          path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0) {
        path.resize(path.size() - kExt.size());
      }
      path += ".seed" + std::to_string(seed) + ".json";
      if (tracer.WriteChromeJson(path, fabric.HostNames())) {
        r->trace_path = path;
      }
    }
  }
};

int InjectedFaults(const chaos::ChaosMonkey& m) {
  return m.crashes_injected() + m.partitions_injected() +
         m.loss_bursts_injected() + m.latency_spikes_injected();
}

// ---- PRISM-RS under chaos ----
//
// 3 replicas (f = 1); the monkey crashes at most one at a time and never
// wipes memory, matching ABD's fault model. Clients keep issuing Get/Put —
// ops may fail or time out while a quorum is unreachable, but every
// response that IS produced must fit some linearization.
SeedRun RunRsSeed(uint64_t seed) {
  constexpr uint64_t kBlocks = 4;
  constexpr uint64_t kBlockSize = 64;
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 10;

  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  SeedObs sobs;
  sobs.Attach(fabric);
  rs::PrismRsOptions opts;
  opts.n_blocks = kBlocks;
  opts.block_size = kBlockSize;
  opts.buffers_per_replica = 512;
  rs::PrismRsCluster cluster(&fabric, 3, opts);  // replica hosts 0..2

  check::HistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<rs::PrismRsClient>(
        &fabric, client_hosts[c], &cluster,
        static_cast<uint16_t>(c + 1)));
    clients[c]->set_history(&history);
  }

  chaos::ChaosOptions copts;
  copts.seed = seed;
  copts.crashable = {0, 1, 2};
  copts.max_concurrent_crashes = 1;  // = f: quorums stay live
  copts.partition_hosts = {0, 1, 2};
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + c);
          for (int i = 0; i < kOpsPerClient; ++i) {
            uint64_t block = rng.NextBelow(kBlocks);
            if (rng.NextBool(0.5)) {
              (void)co_await clients[c]->Put(
                  block, UniqueValue(kBlockSize, seed, c, i));
            } else {
              (void)co_await clients[c]->Get(block);
            }
            co_await sim::SleepFor(
                &sim, sim::Micros(rng.NextInRange(100, 600)));
          }
        },
        &tracker);
  }
  sim.Run();

  SeedRun r;
  r.hang = tracker.live() > 0;
  r.schedule = monkey.Describe();
  r.faults = InjectedFaults(monkey);
  r.check = check::CheckLinearizable(history.ops(),
                                     check::IdOf(Bytes(kBlockSize, 0)));
  sobs.Harvest(fabric, seed, &r);
  return r;
}

// ---- PRISM-KV under chaos ----
//
// Single server that crash/restarts (durable DRAM), plus partitions and
// wire trouble between it and the clients.
SeedRun RunKvSeed(uint64_t seed) {
  constexpr uint64_t kKeys = 4;
  constexpr size_t kValueSize = 32;
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 12;

  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  SeedObs sobs;
  sobs.Attach(fabric);
  net::HostId server_host = fabric.AddHost("server");  // host 0
  kv::PrismKvOptions opts;
  opts.n_buckets = 64;
  opts.n_buffers = 256;
  kv::PrismKvServer server(&fabric, server_host, opts);

  check::HistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<kv::PrismKvClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<kv::PrismKvClient>(
        &fabric, client_hosts[c], &server));
    clients[c]->set_history(&history, c + 1);
  }

  chaos::ChaosOptions copts;
  copts.seed = seed;
  copts.crashable = {server_host};
  copts.partition_hosts = {server_host};
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + c);
          for (int i = 0; i < kOpsPerClient; ++i) {
            std::string key =
                "key-" + std::to_string(rng.NextBelow(kKeys));
            const double dice = rng.NextDouble();
            if (dice < 0.45) {
              (void)co_await clients[c]->Put(
                  key, UniqueValue(kValueSize, seed, c, i));
            } else if (dice < 0.85) {
              (void)co_await clients[c]->Get(key);
            } else {
              (void)co_await clients[c]->Delete(key);
            }
            co_await sim::SleepFor(
                &sim, sim::Micros(rng.NextInRange(100, 600)));
          }
        },
        &tracker);
  }
  sim.Run();

  SeedRun r;
  r.hang = tracker.live() > 0;
  r.schedule = monkey.Describe();
  r.faults = InjectedFaults(monkey);
  r.check = check::CheckLinearizable(history.ops(), check::kAbsent);
  sobs.Harvest(fabric, seed, &r);
  return r;
}

// ---- PRISM-TX under chaos ----
//
// Two shards, durable crash/restart. Transactions that straddle a fault
// abort or time out; every read a transaction DID observe must be
// explainable by a committed (or indeterminately-committed) write.
SeedRun RunTxSeed(uint64_t seed) {
  constexpr uint64_t kKeys = 8;
  constexpr size_t kValueSize = 32;
  constexpr int kClients = 3;
  constexpr int kTxPerClient = 8;

  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  SeedObs sobs;
  sobs.Attach(fabric);
  tx::PrismTxOptions opts;
  opts.keys_per_shard = 16;
  opts.value_size = kValueSize;
  opts.buffers_per_shard = 256;
  tx::PrismTxCluster cluster(&fabric, 2, opts);  // shard hosts 0..1

  std::vector<std::pair<uint64_t, check::ValueId>> initial;
  for (uint64_t k = 0; k < kKeys; ++k) {
    Bytes v(kValueSize, 0);
    v[0] = static_cast<uint8_t>(0xB0 + k);  // distinct, nonzero values
    // PRISM_CHECK, not EXPECT: this runs on sweep worker threads, and
    // gtest assertions are not thread-safe.
    PRISM_CHECK(cluster.LoadKey(k, v).ok());
    initial.emplace_back(k, check::IdOf(v));
  }

  check::TxHistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<tx::PrismTxClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<tx::PrismTxClient>(
        &fabric, client_hosts[c], &cluster,
        static_cast<uint16_t>(c + 1)));
    clients[c]->set_history(&history);
  }

  chaos::ChaosOptions copts;
  copts.seed = seed;
  copts.crashable = {0, 1};
  copts.max_concurrent_crashes = 1;
  copts.partition_hosts = {0, 1};
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + c);
          for (int t = 0; t < kTxPerClient; ++t) {
            tx::Transaction txn = clients[c]->Begin();
            const uint64_t rk = rng.NextBelow(kKeys);
            const uint64_t wk = rng.NextBelow(kKeys);
            auto read = co_await clients[c]->Read(txn, rk);
            (void)read;
            // Writes are full-size: IndirectRead is unbounded in fixed
            // mode, so a shorter value would expose stale tail bytes.
            clients[c]->Write(txn, wk,
                              UniqueValue(kValueSize, seed, c, t));
            (void)co_await clients[c]->Commit(txn);
            co_await sim::SleepFor(
                &sim, sim::Micros(rng.NextInRange(100, 600)));
          }
        },
        &tracker);
  }
  sim.Run();

  SeedRun r;
  r.hang = tracker.live() > 0;
  r.schedule = monkey.Describe();
  r.faults = InjectedFaults(monkey);
  r.check = check::CheckReadCommitted(history.txns(), initial);
  sobs.Harvest(fabric, seed, &r);
  return r;
}

// ---- the sweeps ----
//
// Each seed is an independent single-threaded simulation, so the 100-seed
// sweep fans out across the harness thread pool (--jobs=N, default all
// cores). Seed functions run on worker threads and return plain SeedRun
// data; all gtest assertions happen here on the main thread afterwards, in
// seed order, so pass/fail and output are identical for any job count.
// A --seed=N replay runs inline on the main thread, exactly as before.
void RunChaosSweep(const char* test, SeedRun (*fn)(uint64_t)) {
  const std::vector<uint64_t> seeds = SweepSeeds();
  std::vector<SeedRun> runs;
  runs.reserve(seeds.size());
  if (g_replay_seed >= 0) {
    for (uint64_t seed : seeds) runs.push_back(fn(seed));
  } else {
    std::vector<harness::SweepPoint<SeedRun>> points;
    points.reserve(seeds.size());
    for (uint64_t seed : seeds) {
      points.push_back([fn, seed] { return fn(seed); });
    }
    runs = harness::RunSweep(points, harness::SweepOptions{g_chaos_jobs});
  }
  int total_faults = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    const SeedRun& r = runs[i];
    total_faults += r.faults;
    EXPECT_FALSE(r.hang) << "client coroutines hung\n"
                         << ReplayBanner(test, seeds[i], r);
    EXPECT_TRUE(r.check.ok) << ReplayBanner(test, seeds[i], r)
                            << r.check.error;
    if (r.hang || !r.check.ok) break;
  }
  // The sweep must actually exercise faults, not a quiet network.
  if (g_replay_seed < 0) {
    EXPECT_GT(total_faults, 100);
  }
}

TEST(ChaosSweep, PrismRsLinearizable) {
  RunChaosSweep("PrismRsLinearizable", RunRsSeed);
}

TEST(ChaosSweep, PrismKvLinearizable) {
  RunChaosSweep("PrismKvLinearizable", RunKvSeed);
}

TEST(ChaosSweep, PrismTxReadCommitted) {
  RunChaosSweep("PrismTxReadCommitted", RunTxSeed);
}

// ---- crash amnesia: the checker must notice lost acknowledged writes ----
//
// ABD assumes replica memory survives restarts. Wipe all three replicas
// between an acknowledged Put and a Get: the Get returns the initial zero
// block, which no linearization can explain.
TEST(ChaosAmnesiaTest, CheckerDetectsQuorumWipe) {
  constexpr uint64_t kBlockSize = 64;
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 1;
  opts.block_size = kBlockSize;
  opts.buffers_per_replica = 64;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  check::HistoryRecorder history(&sim);
  net::HostId ch = fabric.AddHost("client");
  rs::PrismRsClient client(&fabric, ch, &cluster, 1);
  client.set_history(&history);

  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        Bytes v = UniqueValue(kBlockSize, /*seed=*/7, /*client=*/1, 0);
        Status put = co_await client.Put(0, std::move(v));
        EXPECT_TRUE(put.ok());
        for (int i = 0; i < 3; ++i) {
          fabric.SetHostUp(i, false);
          fabric.SetHostUp(i, true);
          cluster.replica(i).WipeState();  // DRAM did not survive
        }
        // Advance time so the Get strictly follows the Put in real time
        // (equal response/invoke instants count as concurrent).
        co_await sim::SleepFor(&sim, sim::Micros(10));
        auto got = co_await client.Get(0);
        EXPECT_TRUE(got.ok());
      },
      &tracker);
  sim.Run();
  EXPECT_EQ(tracker.live(), 0u);

  std::ostringstream ops;
  for (const check::Op& op : history.ops()) ops << check::FormatOp(op) << "\n";
  auto res = check::CheckLinearizable(history.ops(),
                                      check::IdOf(Bytes(kBlockSize, 0)));
  EXPECT_FALSE(res.ok) << "checker accepted a history with a lost write:\n"
                       << ops.str();
}

// ---- negative checker tests ----
//
// A checker that accepts everything would pass every sweep; prove the
// rejection paths work on hand-crafted histories.

check::Op MakeOp(int client, uint64_t key, check::OpType type,
                 check::ValueId value, sim::TimePoint invoke,
                 sim::TimePoint response,
                 check::Outcome outcome = check::Outcome::kOk) {
  check::Op op;
  op.client = client;
  op.key = key;
  op.type = type;
  op.value = value;
  op.invoke = invoke;
  op.response = response;
  op.outcome = outcome;
  op.done = true;
  return op;
}

constexpr check::ValueId kInit = 0x1111;
constexpr check::ValueId kA = 0xAAAA;
constexpr check::ValueId kB = 0xBBBB;
using check::OpType;
using check::Outcome;

TEST(CheckerTest, AcceptsSequentialAndConcurrentHistory) {
  std::vector<check::Op> h = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10),
      MakeOp(2, 0, OpType::kRead, kA, 2, 12),    // concurrent: sees new
      MakeOp(3, 0, OpType::kRead, kInit, 3, 13),  // concurrent: sees old
      MakeOp(2, 0, OpType::kRead, kA, 20, 30),   // after: must see new
  };
  EXPECT_TRUE(check::CheckLinearizable(h, kInit).ok);
}

TEST(CheckerTest, RejectsStaleRead) {
  std::vector<check::Op> h = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10),
      MakeOp(2, 0, OpType::kRead, kInit, 20, 30),  // write done; stale read
  };
  auto res = check::CheckLinearizable(h, kInit);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("key=0"), std::string::npos) << res.error;
}

TEST(CheckerTest, RejectsValueRegression) {
  // Two sequential writes, then reads observing them in reverse order.
  std::vector<check::Op> h = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10),
      MakeOp(1, 0, OpType::kWrite, kB, 20, 30),
      MakeOp(2, 0, OpType::kRead, kB, 40, 50),
      MakeOp(2, 0, OpType::kRead, kA, 60, 70),  // regressed
  };
  EXPECT_FALSE(check::CheckLinearizable(h, kInit).ok);
}

TEST(CheckerTest, FailedWriteMustNotBeObserved) {
  std::vector<check::Op> h = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10, Outcome::kFailed),
      MakeOp(2, 0, OpType::kRead, kA, 20, 30),
  };
  EXPECT_FALSE(check::CheckLinearizable(h, kInit).ok);
}

TEST(CheckerTest, IndeterminateWriteMayApplyOrNot) {
  // Applied…
  std::vector<check::Op> applied = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10, Outcome::kIndeterminate),
      MakeOp(2, 0, OpType::kRead, kA, 20, 30),
  };
  EXPECT_TRUE(check::CheckLinearizable(applied, kInit).ok);
  // …or dropped…
  std::vector<check::Op> dropped = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10, Outcome::kIndeterminate),
      MakeOp(2, 0, OpType::kRead, kInit, 20, 30),
  };
  EXPECT_TRUE(check::CheckLinearizable(dropped, kInit).ok);
  // …but not both: once observed, the value cannot regress.
  std::vector<check::Op> both = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10, Outcome::kIndeterminate),
      MakeOp(2, 0, OpType::kRead, kA, 20, 30),
      MakeOp(2, 0, OpType::kRead, kInit, 40, 50),
  };
  EXPECT_FALSE(check::CheckLinearizable(both, kInit).ok);
}

TEST(CheckerTest, KeysCheckIndependently) {
  // Fine on key 0, broken on key 1 — the witness names key 1.
  std::vector<check::Op> h = {
      MakeOp(1, 0, OpType::kWrite, kA, 0, 10),
      MakeOp(2, 0, OpType::kRead, kA, 20, 30),
      MakeOp(1, 1, OpType::kWrite, kB, 0, 10),
      MakeOp(2, 1, OpType::kRead, kInit, 20, 30),
  };
  auto res = check::CheckLinearizable(h, kInit);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("key=1"), std::string::npos) << res.error;
}

TEST(CheckerTest, RejectsOversizedKeyHistory) {
  std::vector<check::Op> h;
  for (size_t i = 0; i < check::kMaxOpsPerKey + 1; ++i) {
    h.push_back(MakeOp(1, 0, OpType::kWrite, kA + i,
                       sim::TimePoint(10 * i), sim::TimePoint(10 * i + 5)));
  }
  auto res = check::CheckLinearizable(h, kInit);
  EXPECT_FALSE(res.ok);
}

TEST(CheckerTest, ReadCommittedRejectsAbortedRead) {
  check::TxnRecord writer;
  writer.client = 1;
  writer.writes = {{5, kA}};
  writer.outcome = check::TxOutcome::kAborted;
  writer.begin = 0;
  writer.end = 10;
  writer.done = true;
  check::TxnRecord reader;
  reader.client = 2;
  reader.reads = {{5, kA}};  // observed an aborted write
  reader.outcome = check::TxOutcome::kCommitted;
  reader.begin = 20;
  reader.end = 30;
  reader.done = true;
  auto res = check::CheckReadCommitted({writer, reader}, {{5, kInit}});
  EXPECT_FALSE(res.ok);

  // The same read is fine if the writer committed — or might have.
  writer.outcome = check::TxOutcome::kCommitted;
  EXPECT_TRUE(check::CheckReadCommitted({writer, reader}, {{5, kInit}}).ok);
  writer.outcome = check::TxOutcome::kIndeterminate;
  EXPECT_TRUE(check::CheckReadCommitted({writer, reader}, {{5, kInit}}).ok);
}

TEST(CheckerTest, ReadCommittedRejectsPhantomValue) {
  check::TxnRecord reader;
  reader.client = 1;
  reader.reads = {{5, kB}};  // nobody ever wrote kB
  reader.outcome = check::TxOutcome::kCommitted;
  reader.done = true;
  EXPECT_FALSE(check::CheckReadCommitted({reader}, {{5, kInit}}).ok);
  // Initial value and absence are always explainable.
  reader.reads = {{5, kInit}};
  EXPECT_TRUE(check::CheckReadCommitted({reader}, {{5, kInit}}).ok);
  reader.reads = {{7, check::kAbsent}};
  EXPECT_TRUE(check::CheckReadCommitted({reader}, {{5, kInit}}).ok);
}

// ---- chaos monkey unit tests ----

TEST(ChaosMonkeyTest, ScheduleIsAPureFunctionOfOptions) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId a = fabric.AddHost("a");
  net::HostId b = fabric.AddHost("b");
  chaos::ChaosOptions opts;
  opts.seed = 42;
  opts.crashable = {a, b};
  opts.crash_count = 6;
  opts.partition_hosts = {a, b};
  chaos::ChaosMonkey m1(&fabric, opts);
  chaos::ChaosMonkey m2(&fabric, opts);
  ASSERT_EQ(m1.schedule().size(), m2.schedule().size());
  for (size_t i = 0; i < m1.schedule().size(); ++i) {
    const chaos::FaultEvent& e1 = m1.schedule()[i];
    const chaos::FaultEvent& e2 = m2.schedule()[i];
    EXPECT_EQ(e1.at, e2.at);
    EXPECT_EQ(e1.kind, e2.kind);
    EXPECT_EQ(e1.a, e2.a);
    EXPECT_EQ(e1.b, e2.b);
  }
  opts.seed = 43;
  chaos::ChaosMonkey m3(&fabric, opts);
  bool differs = m3.schedule().size() != m1.schedule().size();
  for (size_t i = 0; !differs && i < m1.schedule().size(); ++i) {
    differs = m1.schedule()[i].at != m3.schedule()[i].at ||
              m1.schedule()[i].kind != m3.schedule()[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosMonkeyTest, EveryFaultHealsByHorizonAndHooksFire) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId a = fabric.AddHost("a");
  net::HostId b = fabric.AddHost("b");
  net::HostId c = fabric.AddHost("c");
  const double base_loss = fabric.cost().loss_probability;
  const sim::Duration base_prop = fabric.cost().propagation;

  chaos::ChaosOptions opts;
  opts.seed = 42;
  opts.crashable = {a, b, c};
  opts.crash_count = 8;
  opts.max_concurrent_crashes = 2;
  opts.partition_hosts = {a, b, c};
  opts.partition_count = 4;
  chaos::ChaosMonkey monkey(&fabric, opts);
  int scheduled_crashes = 0;
  for (const chaos::FaultEvent& ev : monkey.schedule()) {
    if (ev.kind == chaos::FaultKind::kCrash) scheduled_crashes++;
  }
  ASSERT_GT(scheduled_crashes, 0);  // seed 42 must actually crash someone

  int hooks_fired = 0;
  for (net::HostId h : {a, b, c}) {
    monkey.SetRestartHook(h, [&] { hooks_fired++; });
  }
  monkey.Arm();
  sim.Run();

  EXPECT_EQ(monkey.crashes_injected(), scheduled_crashes);
  EXPECT_EQ(hooks_fired, scheduled_crashes);  // one restart per crash
  for (net::HostId h : {a, b, c}) {
    EXPECT_TRUE(fabric.IsHostUp(h));
    for (net::HostId g : {a, b, c}) {
      EXPECT_FALSE(fabric.IsLinkBlocked(h, g));
    }
  }
  EXPECT_EQ(fabric.cost().loss_probability, base_loss);
  EXPECT_EQ(fabric.cost().propagation, base_prop);
}

}  // namespace
}  // namespace prism

// Custom main: strip --seed=N (single-seed replay), --jobs=N (sweep
// parallelism), --trace=<path> and --metrics (failure/replay observability
// dumps) before gtest parses the rest.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      prism::g_replay_seed = std::stoll(arg.substr(7));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      prism::g_chaos_jobs = std::stoi(arg.substr(7));
    } else if (arg.rfind("--trace=", 0) == 0) {
      prism::g_chaos_trace_path = arg.substr(8);
    } else if (arg == "--metrics") {
      prism::g_chaos_metrics = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
