// Tests for the two-sided SEND/RECV queue-pair layer and shared receive
// queues — the machinery §4.2 says PRISM's ALLOCATE reuses.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/rdma/batch.h"
#include "src/rdma/qp.h"
#include "src/rdma/service.h"
#include "src/rdma/verbs.h"
#include "src/sim/task.h"

namespace prism::rdma {
namespace {

using sim::Task;

class QpTest : public ::testing::Test {
 protected:
  QpTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_host_(fabric_.AddHost("server")),
        client_host_(fabric_.AddHost("client")),
        server_mem_(1 << 18),
        client_mem_(1 << 18),
        server_rq_(&server_mem_),
        client_rq_(&client_mem_),
        server_qp_(&fabric_, server_host_, 1, &server_rq_),
        client_qp_(&fabric_, client_host_, 2, &client_rq_) {
    server_qp_.Connect(&client_qp_);
    client_qp_.Connect(&server_qp_);
    server_buf_base_ = *server_mem_.Carve(4096);
    client_buf_base_ = *client_mem_.Carve(4096);
  }

  void PostServerBuffers(int n, uint64_t capacity = 256) {
    for (int i = 0; i < n; ++i) {
      server_rq_.PostRecv(server_buf_base_ + static_cast<uint64_t>(i) * 256,
                          capacity);
    }
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  AddressSpace server_mem_;
  AddressSpace client_mem_;
  ReceiveQueue server_rq_;
  ReceiveQueue client_rq_;
  QueuePair server_qp_;
  QueuePair client_qp_;
  Addr server_buf_base_ = 0;
  Addr client_buf_base_ = 0;
};

TEST_F(QpTest, SendLandsInPostedBuffer) {
  PostServerBuffers(1);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("hello qp"));
    EXPECT_TRUE(s.ok());
  });
  sim::Spawn([&]() -> Task<void> {
    RecvCompletion c = co_await server_qp_.AwaitRecv();
    EXPECT_EQ(c.length, 8u);
    EXPECT_EQ(c.src_qp, 2u);
    EXPECT_EQ(StringOfBytes(server_mem_.Load(c.buffer, c.length)),
              "hello qp");
  });
  sim_.Run();
  EXPECT_EQ(server_rq_.posted(), 0u);
}

TEST_F(QpTest, MessagesArriveInOrder) {
  PostServerBuffers(5);
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      Status s = co_await client_qp_.Send(BytesOfU64(100 + i));
      EXPECT_TRUE(s.ok());
    }
  });
  std::vector<uint64_t> received;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      RecvCompletion c = co_await server_qp_.AwaitRecv();
      received.push_back(server_mem_.LoadWord(c.buffer));
    }
  });
  sim_.Run();
  EXPECT_EQ(received, (std::vector<uint64_t>{100, 101, 102, 103, 104}));
}

TEST_F(QpTest, RnrRetryWaitsForPostedBuffer) {
  // No buffer posted at send time; one appears after 15 µs — within the
  // RNR retry budget, so the send eventually succeeds.
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("late"));
    EXPECT_TRUE(s.ok());
  });
  sim_.Schedule(sim::Micros(15), [&] { PostServerBuffers(1); });
  bool received = false;
  sim::Spawn([&]() -> Task<void> {
    (void)co_await server_qp_.AwaitRecv();
    received = true;
  });
  sim_.Run();
  EXPECT_TRUE(received);
  EXPECT_GT(server_rq_.rnr_nacks(), 0u);
}

TEST_F(QpTest, RnrRetriesExhaust) {
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("doomed"));
    EXPECT_EQ(s.code(), Code::kResourceExhausted);
  });
  sim_.Run();
  EXPECT_GE(server_rq_.rnr_nacks(), 5u);  // initial attempt + 4 retries
}

TEST_F(QpTest, OversizedMessageNacks) {
  PostServerBuffers(1, /*capacity=*/16);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(Bytes(64, 1));
    EXPECT_EQ(s.code(), Code::kResourceExhausted);
  });
  sim_.Run();
}

TEST_F(QpTest, DownPeerIsUnavailable) {
  PostServerBuffers(1);
  fabric_.SetHostUp(server_host_, false);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("x"));
    EXPECT_EQ(s.code(), Code::kUnavailable);
  });
  sim_.Run();
}

TEST(SrqTest, MultipleQpsShareOneReceiveQueue) {
  // Three client QPs target three server QPs all attached to ONE shared
  // receive queue — buffers are consumed from the common pool in arrival
  // order, which is exactly the structure ALLOCATE's free lists reuse.
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  AddressSpace server_mem(1 << 18);
  SharedReceiveQueue srq(&server_mem);
  Addr base = *server_mem.Carve(4096);
  for (int i = 0; i < 3; ++i) {
    srq.PostRecv(base + static_cast<uint64_t>(i) * 256, 256);
  }
  std::vector<std::unique_ptr<QueuePair>> server_qps;
  std::vector<std::unique_ptr<QueuePair>> client_qps;
  std::vector<std::unique_ptr<AddressSpace>> client_mems;
  std::vector<std::unique_ptr<ReceiveQueue>> client_rqs;
  for (int i = 0; i < 3; ++i) {
    net::HostId ch = fabric.AddHost("client" + std::to_string(i));
    client_mems.push_back(std::make_unique<AddressSpace>(1 << 16));
    client_rqs.push_back(
        std::make_unique<ReceiveQueue>(client_mems.back().get()));
    server_qps.push_back(std::make_unique<QueuePair>(
        &fabric, server_host, static_cast<uint32_t>(100 + i), &srq));
    client_qps.push_back(std::make_unique<QueuePair>(
        &fabric, ch, static_cast<uint32_t>(200 + i),
        client_rqs.back().get()));
    server_qps.back()->Connect(client_qps.back().get());
    client_qps.back()->Connect(server_qps.back().get());
  }
  int sent_ok = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Spawn([&, i]() -> sim::Task<void> {
      Status s = co_await client_qps[static_cast<size_t>(i)]->Send(
          BytesOfU64(static_cast<uint64_t>(i)));
      EXPECT_TRUE(s.ok()) << i;
      sent_ok++;
    });
  }
  int received = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Spawn([&, i]() -> sim::Task<void> {
      RecvCompletion c =
          co_await server_qps[static_cast<size_t>(i)]->AwaitRecv();
      EXPECT_EQ(server_mem.LoadWord(c.buffer), static_cast<uint64_t>(i));
      received++;
    });
  }
  sim.Run();
  EXPECT_EQ(sent_ok, 3);
  EXPECT_EQ(received, 3);
  EXPECT_EQ(srq.posted(), 0u);  // the shared pool drained across QPs
  // A fourth message from any connection now RNRs: shared exhaustion.
  sim::Spawn([&]() -> sim::Task<void> {
    Status s = co_await client_qps[0]->Send(BytesOfU64(9));
    EXPECT_EQ(s.code(), Code::kResourceExhausted);
  });
  sim.Run();
}

// ---------- Verb edge cases: boundary masks, zero-length ops, revocation ----

class VerbEdgeTest : public ::testing::Test {
 protected:
  VerbEdgeTest() : mem_(1 << 16) {
    region_ = *mem_.CarveAndRegister(64, kRemoteAll);
    mem_.StoreWord(region_.base, 0x1122334455667788ull);
  }

  AddressSpace mem_;
  MemoryRegion region_;
};

TEST_F(VerbEdgeTest, MaskedCasAllOnesMasksBehavesAsPlainCas) {
  const Bytes ones(8, 0xff);
  // Mismatched compare: no swap, old value returned — same as CompareSwap.
  auto miss = Verbs::MaskedCompareSwap(mem_, region_.rkey, region_.base,
                                       BytesOfU64(0xdead), BytesOfU64(0xbeef),
                                       ones, ones, CasCompare::kEqual);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->swapped);
  EXPECT_EQ(LoadU64(miss->old_value.data()), 0x1122334455667788ull);
  EXPECT_EQ(mem_.LoadWord(region_.base), 0x1122334455667788ull);
  // Matching compare: every byte swaps, exactly like the 8-byte atomic.
  auto hit = Verbs::MaskedCompareSwap(
      mem_, region_.rkey, region_.base, BytesOfU64(0x1122334455667788ull),
      BytesOfU64(0xbeef), ones, ones, CasCompare::kEqual);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->swapped);
  EXPECT_EQ(mem_.LoadWord(region_.base), 0xbeefull);
}

TEST_F(VerbEdgeTest, MaskedCasAllZeroCmpMaskAlwaysMatchesOnEqual) {
  // cmp_mask = 0 compares 0 == 0: an unconditional swap of the masked bytes.
  const Bytes zeros(8, 0x00), ones(8, 0xff);
  auto r = Verbs::MaskedCompareSwap(mem_, region_.rkey, region_.base,
                                    BytesOfU64(0x9999), BytesOfU64(0x4242),
                                    zeros, ones, CasCompare::kEqual);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->swapped);
  EXPECT_EQ(mem_.LoadWord(region_.base), 0x4242ull);
}

TEST_F(VerbEdgeTest, MaskedCasAllZeroCmpMaskNeverMatchesStrictCompare) {
  // Under kGreater/kLess a zero cmp_mask makes both operands equal, and the
  // strict comparison must fail — the swap never fires.
  const Bytes zeros(8, 0x00), ones(8, 0xff);
  for (CasCompare mode : {CasCompare::kGreater, CasCompare::kLess}) {
    auto r = Verbs::MaskedCompareSwap(mem_, region_.rkey, region_.base,
                                      BytesOfU64(0x7777), BytesOfU64(0x4242),
                                      zeros, ones, mode);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->swapped);
  }
  EXPECT_EQ(mem_.LoadWord(region_.base), 0x1122334455667788ull);
}

TEST_F(VerbEdgeTest, MaskedCasAllZeroSwapMaskSwapsNothing) {
  // The compare succeeds (reports swapped) but a zero swap_mask preserves
  // every target byte: a pure masked-read-with-predicate.
  const Bytes zeros(8, 0x00), ones(8, 0xff);
  auto r = Verbs::MaskedCompareSwap(
      mem_, region_.rkey, region_.base, BytesOfU64(0x1122334455667788ull),
      BytesOfU64(0xffffffffffffffffull), ones, zeros, CasCompare::kEqual);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->swapped);
  EXPECT_EQ(mem_.LoadWord(region_.base), 0x1122334455667788ull);
}

TEST_F(VerbEdgeTest, ZeroLengthReadAndWrite) {
  // len = 0 is legal anywhere inside the region, including one past the
  // last byte (the [base, base+length] fencepost).
  auto r = Verbs::Read(mem_, region_.rkey, region_.base + region_.length, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_TRUE(
      Verbs::Write(mem_, region_.rkey, region_.base + region_.length, Bytes())
          .ok());
  EXPECT_EQ(mem_.LoadWord(region_.base), 0x1122334455667788ull);
  // Validation still applies: a zero-length op with a bogus rkey NACKs, and
  // one past the region end is out of range even for zero bytes.
  EXPECT_EQ(Verbs::Read(mem_, region_.rkey + 99, region_.base, 0).code(),
            Code::kPermissionDenied);
  EXPECT_EQ(
      Verbs::Read(mem_, region_.rkey, region_.base + region_.length + 1, 0)
          .code(),
      Code::kOutOfRange);
}

TEST_F(VerbEdgeTest, DeregisterInvalidatesRkey) {
  EXPECT_TRUE(mem_.Deregister(region_.rkey).ok());
  EXPECT_EQ(Verbs::Read(mem_, region_.rkey, region_.base, 8).code(),
            Code::kPermissionDenied);
  // Double free and never-minted rkeys are kNotFound.
  EXPECT_EQ(mem_.Deregister(region_.rkey).code(), Code::kNotFound);
  EXPECT_EQ(mem_.Deregister(0xdead).code(), Code::kNotFound);
}

// In-flight revocation: validation happens at the target on delivery, so an
// rkey revoked after the client posts but before the request reaches server
// memory NACKs with PermissionDenied — the same wire behaviour as a remote
// access after ibv_dereg_mr.
class RevokeInFlightTest : public ::testing::Test {
 protected:
  RevokeInFlightTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_(fabric_.AddHost("server")),
        client_host_(fabric_.AddHost("client")),
        mem_(1 << 18),
        service_(&fabric_, server_, Backend::kHardwareNic, &mem_),
        client_(&fabric_, client_host_) {
    region_ = *mem_.CarveAndRegister(4096, kRemoteAll);
    mem_.Store(region_.base, Bytes(64, 0x5a));
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_;
  net::HostId client_host_;
  AddressSpace mem_;
  RdmaService service_;
  RdmaClient client_;
  MemoryRegion region_;
};

TEST_F(RevokeInFlightTest, ReadNacksWhenRkeyRevokedMidFlight) {
  sim::TimePoint nack_at = 0;
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.Read(&service_, region_.rkey, region_.base, 64);
    EXPECT_EQ(r.code(), Code::kPermissionDenied);
    nack_at = sim_.Now();
  });
  // One-sided hardware reads complete in ~2.5 µs; revoking at 500 ns lands
  // after the post but before server-side validation.
  sim_.Schedule(sim::Nanos(500),
                [&] { EXPECT_TRUE(mem_.Deregister(region_.rkey).ok()); });
  sim_.Run();
  EXPECT_GT(nack_at, sim::Nanos(500));
  // The NACK is a real response, not a client-side timeout.
  EXPECT_LT(nack_at, RdmaClient::kOpTimeout);
  EXPECT_EQ(service_.ops_executed(), 1u);  // the op reached the server path
}

TEST_F(RevokeInFlightTest, WriteNacksAndLeavesMemoryUntouched) {
  const Bytes before = mem_.Load(region_.base, 64);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_.Write(&service_, region_.rkey, region_.base,
                                      Bytes(64, 0xee));
    EXPECT_EQ(s.code(), Code::kPermissionDenied);
  });
  sim_.Schedule(sim::Nanos(500),
                [&] { EXPECT_TRUE(mem_.Deregister(region_.rkey).ok()); });
  sim_.Run();
  EXPECT_EQ(mem_.Load(region_.base, 64), before);
}

TEST_F(RevokeInFlightTest, RevokeAfterDeliveryDoesNotAffectCompletedOp) {
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.Read(&service_, region_.rkey, region_.base, 64);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 64u);
    // Revoke after completion: the returned data stays valid, only new ops
    // are rejected.
    EXPECT_TRUE(mem_.Deregister(region_.rkey).ok());
    auto again =
        co_await client_.Read(&service_, region_.rkey, region_.base, 64);
    EXPECT_EQ(again.code(), Code::kPermissionDenied);
  });
  sim_.Run();
}

// The consensus failure detector (src/consensus) hinges on this exact race:
// a deposed leader's CAS already in flight when the replica revokes its
// rkey must lose — NACK, memory untouched.
TEST_F(RevokeInFlightTest, CasNacksWhenRkeyRevokedMidFlightAndMemoryWins) {
  mem_.StoreWord(region_.base, 0);
  sim::Spawn([&]() -> Task<void> {
    auto r = co_await client_.CompareSwap(&service_, region_.rkey,
                                          region_.base, 0, 0xbadc0de);
    EXPECT_EQ(r.code(), Code::kPermissionDenied);
  });
  sim_.Schedule(sim::Nanos(500),
                [&] { EXPECT_TRUE(mem_.Deregister(region_.rkey).ok()); });
  sim_.Run();
  // The NACK won: the word still holds its pre-CAS value.
  EXPECT_EQ(mem_.LoadWord(region_.base), 0u);
}

// The consensus epoch bump: Deregister + Register over the same range is a
// leader change. The old reign's rkey NACKs forever; the fresh rkey (the
// new grant) works immediately over the same memory.
TEST_F(RevokeInFlightTest, RegrantAfterEpochBumpSwapsWhichRkeyWorks) {
  const RKey old_rkey = region_.rkey;
  EXPECT_TRUE(mem_.Deregister(old_rkey).ok());
  auto fresh = mem_.Register(region_.base, region_.length, kRemoteAll);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_NE(fresh->rkey, old_rkey);
  Status old_status = OkStatus();
  Status new_status = Aborted("pending");
  sim::Spawn([&]() -> Task<void> {
    old_status = co_await client_.Write(&service_, old_rkey, region_.base,
                                        Bytes(8, 0x01));
    new_status = co_await client_.Write(&service_, fresh->rkey, region_.base,
                                        Bytes(8, 0x02));
  });
  sim_.Run();
  EXPECT_EQ(old_status.code(), Code::kPermissionDenied);
  EXPECT_TRUE(new_status.ok()) << new_status;
  EXPECT_EQ(mem_.LoadWord(region_.base), 0x0202020202020202ull);
}

// Revocation racing a VerbBatcher flush: a CAS and its dependent WRITE
// share one doorbell; the rkey is revoked while the batch is on the wire.
// Both ops must NACK (the revoke wins over the whole batch), the doorbell
// amortization must be unchanged (2 WRs, 1 ring, 2 CQEs — NACKs are
// completions too), and in-batch ordering must hold: the WRITE never
// executes, so memory is untouched.
TEST_F(RevokeInFlightTest, RevokeDuringBatchFlushNacksBatchKeepsAmortization) {
  BatchOptions bopts;
  bopts.doorbell_batch = 2;
  bopts.cq_moderation = 2;
  VerbBatcher batcher(&sim_, &fabric_.cost(), bopts);
  client_.set_batcher(&batcher);
  mem_.StoreWord(region_.base, 0);
  const Bytes before = mem_.Load(region_.base, 64);

  Result<uint64_t> cas = Aborted("pending");
  Status write = OkStatus();
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        cas = co_await client_.CompareSwap(&service_, region_.rkey,
                                           region_.base, 0, 7);
      },
      &tracker);
  sim::Spawn(
      [&]() -> Task<void> {
        co_await sim::SleepFor(&sim_, sim::Nanos(80));
        write = co_await client_.Write(&service_, region_.rkey,
                                       region_.base + 8, Bytes(8, 0xee));
      },
      &tracker);
  sim_.Schedule(sim::Nanos(500),
                [&] { EXPECT_TRUE(mem_.Deregister(region_.rkey).ok()); });
  sim_.Run();
  ASSERT_EQ(tracker.live(), 0u);

  EXPECT_EQ(cas.code(), Code::kPermissionDenied);
  EXPECT_EQ(write.code(), Code::kPermissionDenied);
  EXPECT_EQ(mem_.Load(region_.base, 64), before);
  // Same doorbell profile as the success path: the batch stayed a batch.
  EXPECT_EQ(batcher.wrs_posted(), 2u);
  EXPECT_EQ(batcher.doorbells_rung(), 1u);
  EXPECT_EQ(batcher.cqes_reaped(), 2u);
}

// ---- batched atomics: two clients race a CAS through VerbBatchers ----
//
// The sync schemes (src/sync) lean on two properties at once: CAS atomicity
// across hosts, and the QP's in-order execution of a doorbell batch — a CAS
// and the READ that depends on it may share one doorbell, but the batcher
// must never let the READ overtake the CAS.
TEST(BatchedCasTest, RacingCasLoserObservesWinnerAndBatchKeepsOrder) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId h1 = fabric.AddHost("c1");
  net::HostId h2 = fabric.AddHost("c2");
  AddressSpace mem(1 << 16);
  RdmaService service(&fabric, server_host, Backend::kHardwareNic, &mem);
  MemoryRegion region = *mem.CarveAndRegister(64, kRemoteAll);
  const Addr word = region.base;

  BatchOptions bopts;
  bopts.doorbell_batch = 2;
  bopts.cq_moderation = 2;
  VerbBatcher b1(&sim, &fabric.cost(), bopts);
  VerbBatcher b2(&sim, &fabric.cost(), bopts);
  RdmaClient c1(&fabric, h1);
  RdmaClient c2(&fabric, h2);
  c1.set_batcher(&b1);
  c2.set_batcher(&b2);

  struct Outcome {
    Result<uint64_t> cas = Aborted("pending");
    Result<Bytes> read = Aborted("pending");
  };
  Outcome o1, o2;
  sim::TaskTracker tracker;
  auto race = [&](RdmaClient* c, uint64_t id, Outcome* out) {
    // The CAS and its dependent READ are posted back-to-back with no
    // completion fence: they ride one doorbell, and only the QP's in-order
    // execution makes the READ observe the post-CAS word.
    sim::Spawn(
        [&sim, &service, &region, word, c, id, out]() -> Task<void> {
          out->cas =
              co_await c->CompareSwap(&service, region.rkey, word, 0, id);
        },
        &tracker);
    sim::Spawn(
        [&sim, &service, &region, word, c, out]() -> Task<void> {
          co_await sim::SleepFor(&sim, sim::Nanos(80));
          out->read = co_await c->Read(&service, region.rkey, word, 8);
        },
        &tracker);
  };
  race(&c1, 1, &o1);
  race(&c2, 2, &o2);
  sim.Run();
  ASSERT_EQ(tracker.live(), 0u);

  ASSERT_TRUE(o1.cas.ok()) << o1.cas.status();
  ASSERT_TRUE(o2.cas.ok()) << o2.cas.status();
  ASSERT_TRUE(o1.read.ok()) << o1.read.status();
  ASSERT_TRUE(o2.read.ok()) << o2.read.status();

  // Exactly one CAS matched the zero word; the loser's returned old value
  // IS the winner's freshly-swapped id (atomicity: no interleaving where
  // both see zero, none where the loser sees stale zero).
  const bool c1_won = (*o1.cas == 0);
  const bool c2_won = (*o2.cas == 0);
  EXPECT_NE(c1_won, c2_won);
  const uint64_t winner = c1_won ? 1u : 2u;
  EXPECT_EQ(c1_won ? *o2.cas : *o1.cas, winner);

  // Neither dependent READ overtook its CAS through the batcher: both
  // observe the winner's value, never the pre-CAS zero.
  EXPECT_EQ(LoadU64(o1.read->data()), winner);
  EXPECT_EQ(LoadU64(o2.read->data()), winner);

  // Doorbell amortization: each host posted two WRs on one doorbell ring,
  // and both completions were reaped.
  EXPECT_EQ(b1.wrs_posted(), 2u);
  EXPECT_EQ(b1.doorbells_rung(), 1u);
  EXPECT_EQ(b2.wrs_posted(), 2u);
  EXPECT_EQ(b2.doorbells_rung(), 1u);
  EXPECT_EQ(b1.cqes_reaped(), 2u);
  EXPECT_EQ(b2.cqes_reaped(), 2u);
}

}  // namespace
}  // namespace prism::rdma
