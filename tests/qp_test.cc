// Tests for the two-sided SEND/RECV queue-pair layer and shared receive
// queues — the machinery §4.2 says PRISM's ALLOCATE reuses.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/rdma/qp.h"
#include "src/sim/task.h"

namespace prism::rdma {
namespace {

using sim::Task;

class QpTest : public ::testing::Test {
 protected:
  QpTest()
      : fabric_(&sim_, net::CostModel::EvalCluster40G()),
        server_host_(fabric_.AddHost("server")),
        client_host_(fabric_.AddHost("client")),
        server_mem_(1 << 18),
        client_mem_(1 << 18),
        server_rq_(&server_mem_),
        client_rq_(&client_mem_),
        server_qp_(&fabric_, server_host_, 1, &server_rq_),
        client_qp_(&fabric_, client_host_, 2, &client_rq_) {
    server_qp_.Connect(&client_qp_);
    client_qp_.Connect(&server_qp_);
    server_buf_base_ = *server_mem_.Carve(4096);
    client_buf_base_ = *client_mem_.Carve(4096);
  }

  void PostServerBuffers(int n, uint64_t capacity = 256) {
    for (int i = 0; i < n; ++i) {
      server_rq_.PostRecv(server_buf_base_ + static_cast<uint64_t>(i) * 256,
                          capacity);
    }
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::HostId server_host_;
  net::HostId client_host_;
  AddressSpace server_mem_;
  AddressSpace client_mem_;
  ReceiveQueue server_rq_;
  ReceiveQueue client_rq_;
  QueuePair server_qp_;
  QueuePair client_qp_;
  Addr server_buf_base_ = 0;
  Addr client_buf_base_ = 0;
};

TEST_F(QpTest, SendLandsInPostedBuffer) {
  PostServerBuffers(1);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("hello qp"));
    EXPECT_TRUE(s.ok());
  });
  sim::Spawn([&]() -> Task<void> {
    RecvCompletion c = co_await server_qp_.AwaitRecv();
    EXPECT_EQ(c.length, 8u);
    EXPECT_EQ(c.src_qp, 2u);
    EXPECT_EQ(StringOfBytes(server_mem_.Load(c.buffer, c.length)),
              "hello qp");
  });
  sim_.Run();
  EXPECT_EQ(server_rq_.posted(), 0u);
}

TEST_F(QpTest, MessagesArriveInOrder) {
  PostServerBuffers(5);
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      Status s = co_await client_qp_.Send(BytesOfU64(100 + i));
      EXPECT_TRUE(s.ok());
    }
  });
  std::vector<uint64_t> received;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      RecvCompletion c = co_await server_qp_.AwaitRecv();
      received.push_back(server_mem_.LoadWord(c.buffer));
    }
  });
  sim_.Run();
  EXPECT_EQ(received, (std::vector<uint64_t>{100, 101, 102, 103, 104}));
}

TEST_F(QpTest, RnrRetryWaitsForPostedBuffer) {
  // No buffer posted at send time; one appears after 15 µs — within the
  // RNR retry budget, so the send eventually succeeds.
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("late"));
    EXPECT_TRUE(s.ok());
  });
  sim_.Schedule(sim::Micros(15), [&] { PostServerBuffers(1); });
  bool received = false;
  sim::Spawn([&]() -> Task<void> {
    (void)co_await server_qp_.AwaitRecv();
    received = true;
  });
  sim_.Run();
  EXPECT_TRUE(received);
  EXPECT_GT(server_rq_.rnr_nacks(), 0u);
}

TEST_F(QpTest, RnrRetriesExhaust) {
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("doomed"));
    EXPECT_EQ(s.code(), Code::kResourceExhausted);
  });
  sim_.Run();
  EXPECT_GE(server_rq_.rnr_nacks(), 5u);  // initial attempt + 4 retries
}

TEST_F(QpTest, OversizedMessageNacks) {
  PostServerBuffers(1, /*capacity=*/16);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(Bytes(64, 1));
    EXPECT_EQ(s.code(), Code::kResourceExhausted);
  });
  sim_.Run();
}

TEST_F(QpTest, DownPeerIsUnavailable) {
  PostServerBuffers(1);
  fabric_.SetHostUp(server_host_, false);
  sim::Spawn([&]() -> Task<void> {
    Status s = co_await client_qp_.Send(BytesOfString("x"));
    EXPECT_EQ(s.code(), Code::kUnavailable);
  });
  sim_.Run();
}

TEST(SrqTest, MultipleQpsShareOneReceiveQueue) {
  // Three client QPs target three server QPs all attached to ONE shared
  // receive queue — buffers are consumed from the common pool in arrival
  // order, which is exactly the structure ALLOCATE's free lists reuse.
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  AddressSpace server_mem(1 << 18);
  SharedReceiveQueue srq(&server_mem);
  Addr base = *server_mem.Carve(4096);
  for (int i = 0; i < 3; ++i) {
    srq.PostRecv(base + static_cast<uint64_t>(i) * 256, 256);
  }
  std::vector<std::unique_ptr<QueuePair>> server_qps;
  std::vector<std::unique_ptr<QueuePair>> client_qps;
  std::vector<std::unique_ptr<AddressSpace>> client_mems;
  std::vector<std::unique_ptr<ReceiveQueue>> client_rqs;
  for (int i = 0; i < 3; ++i) {
    net::HostId ch = fabric.AddHost("client" + std::to_string(i));
    client_mems.push_back(std::make_unique<AddressSpace>(1 << 16));
    client_rqs.push_back(
        std::make_unique<ReceiveQueue>(client_mems.back().get()));
    server_qps.push_back(std::make_unique<QueuePair>(
        &fabric, server_host, static_cast<uint32_t>(100 + i), &srq));
    client_qps.push_back(std::make_unique<QueuePair>(
        &fabric, ch, static_cast<uint32_t>(200 + i),
        client_rqs.back().get()));
    server_qps.back()->Connect(client_qps.back().get());
    client_qps.back()->Connect(server_qps.back().get());
  }
  int sent_ok = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Spawn([&, i]() -> sim::Task<void> {
      Status s = co_await client_qps[static_cast<size_t>(i)]->Send(
          BytesOfU64(static_cast<uint64_t>(i)));
      EXPECT_TRUE(s.ok()) << i;
      sent_ok++;
    });
  }
  int received = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Spawn([&, i]() -> sim::Task<void> {
      RecvCompletion c =
          co_await server_qps[static_cast<size_t>(i)]->AwaitRecv();
      EXPECT_EQ(server_mem.LoadWord(c.buffer), static_cast<uint64_t>(i));
      received++;
    });
  }
  sim.Run();
  EXPECT_EQ(sent_ok, 3);
  EXPECT_EQ(received, 3);
  EXPECT_EQ(srq.posted(), 0u);  // the shared pool drained across QPs
  // A fourth message from any connection now RNRs: shared exhaustion.
  sim::Spawn([&]() -> sim::Task<void> {
    Status s = co_await client_qps[0]->Send(BytesOfU64(9));
    EXPECT_EQ(s.code(), Code::kResourceExhausted);
  });
  sim.Run();
}

}  // namespace
}  // namespace prism::rdma
