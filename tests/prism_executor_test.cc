// Exhaustive semantic tests for the PRISM primitives (Table 1 coverage):
// indirection (plain, bounded), allocation, enhanced CAS (modes, masks,
// indirect args), and chaining (CONDITIONAL, REDIRECT), plus the §3.1
// security rules.
#include <gtest/gtest.h>

#include "src/prism/executor.h"
#include "src/prism/freelist.h"
#include "src/prism/op.h"

namespace prism::core {
namespace {

using rdma::CasCompare;
using rdma::kRemoteAll;
using rdma::kRemoteRead;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : mem_(1 << 20), executor_(&mem_, &freelists_) {
    region_ = *mem_.CarveAndRegister(64 * 1024, kRemoteAll);
    scratch_ = *mem_.CarveAndRegister(4096, kRemoteAll, rdma::kOnNic);
    // One free-list queue of 512 B buffers carved from the same region.
    queue_ = freelists_.CreateQueue(512);
    for (int i = 0; i < 8; ++i) {
      rdma::Addr buf = region_.base + 32768 + static_cast<uint64_t>(i) * 512;
      PRISM_CHECK(freelists_.Post(queue_, buf).ok());
    }
  }

  rdma::Addr A(uint64_t off) const { return region_.base + off; }

  rdma::AddressSpace mem_;
  FreeListRegistry freelists_;
  Executor executor_;
  rdma::MemoryRegion region_;
  rdma::MemoryRegion scratch_;
  uint32_t queue_;
};

// ---------- plain READ / WRITE ----------

TEST_F(ExecutorTest, DirectReadWrite) {
  auto w = executor_.Execute({Op::Write(region_.rkey, A(0),
                                        BytesOfString("direct"))});
  ASSERT_TRUE(w[0].Successful(OpCode::kWrite));
  auto r = executor_.Execute({Op::Read(region_.rkey, A(0), 6)});
  ASSERT_TRUE(r[0].Successful(OpCode::kRead));
  EXPECT_EQ(StringOfBytes(r[0].data), "direct");
}

TEST_F(ExecutorTest, ReadBadRkeyNacks) {
  auto r = executor_.Execute({Op::Read(region_.rkey + 77, A(0), 8)});
  EXPECT_FALSE(r[0].Successful(OpCode::kRead));
  EXPECT_EQ(r[0].status.code(), Code::kPermissionDenied);
}

// ---------- indirection (§3.1) ----------

TEST_F(ExecutorTest, IndirectReadFollowsPointer) {
  mem_.Store(A(512), BytesOfString("pointee!"));
  mem_.StoreWord(A(0), A(512));  // slot holds pointer
  auto r = executor_.Execute({Op::IndirectRead(region_.rkey, A(0), 8)});
  ASSERT_TRUE(r[0].Successful(OpCode::kRead));
  EXPECT_EQ(StringOfBytes(r[0].data), "pointee!");
}

TEST_F(ExecutorTest, BoundedIndirectReadClampsLength) {
  mem_.Store(A(512), BytesOfString("shortval"));
  BoundedPtr bp{A(512), 8};
  mem_.Store(A(0), bp.ToBytes());
  // Client asks for 512 bytes but the bound is 8 (variable-length objects).
  auto r = executor_.Execute(
      {Op::IndirectRead(region_.rkey, A(0), 512, /*bounded=*/true)});
  ASSERT_TRUE(r[0].Successful(OpCode::kRead));
  EXPECT_EQ(r[0].data.size(), 8u);
  EXPECT_EQ(StringOfBytes(r[0].data), "shortval");
}

TEST_F(ExecutorTest, BoundedReadUsesRequestedLenWhenSmaller) {
  mem_.Store(A(512), BytesOfString("abcdefgh"));
  BoundedPtr bp{A(512), 8};
  mem_.Store(A(0), bp.ToBytes());
  auto r = executor_.Execute(
      {Op::IndirectRead(region_.rkey, A(0), 3, /*bounded=*/true)});
  EXPECT_EQ(StringOfBytes(r[0].data), "abc");
}

TEST_F(ExecutorTest, IndirectReadRejectsPointerOutsideRkey) {
  // Pointer escapes the registered region: §3.1 requires rejection.
  mem_.StoreWord(A(0), region_.base + region_.length + 4096);
  auto r = executor_.Execute({Op::IndirectRead(region_.rkey, A(0), 8)});
  EXPECT_FALSE(r[0].Successful(OpCode::kRead));
}

TEST_F(ExecutorTest, IndirectReadRejectsPointerIntoOtherRegion) {
  auto other = *mem_.CarveAndRegister(1024, kRemoteAll);
  mem_.StoreWord(A(0), other.base);  // different rkey ⇒ reject
  auto r = executor_.Execute({Op::IndirectRead(region_.rkey, A(0), 8)});
  // The pointed-to range is not covered by the presented rkey's region.
  EXPECT_FALSE(r[0].status.ok());
  EXPECT_EQ(r[0].status.code(), Code::kOutOfRange);
}

TEST_F(ExecutorTest, IndirectWriteThroughPointer) {
  mem_.StoreWord(A(0), A(1024));
  Op op = Op::Write(region_.rkey, A(0), BytesOfString("via-ptr"));
  op.addr_indirect = true;
  auto r = executor_.Execute({op});
  ASSERT_TRUE(r[0].Successful(OpCode::kWrite));
  EXPECT_EQ(StringOfBytes(mem_.Load(A(1024), 7)), "via-ptr");
}

TEST_F(ExecutorTest, BoundedIndirectWriteClamps) {
  BoundedPtr bp{A(1024), 4};
  mem_.Store(A(0), bp.ToBytes());
  mem_.Store(A(1024), BytesOfString("XXXXXXXX"));
  Op op = Op::Write(region_.rkey, A(0), BytesOfString("abcdefgh"));
  op.addr_indirect = true;
  op.addr_bounded = true;
  auto r = executor_.Execute({op});
  ASSERT_TRUE(r[0].Successful(OpCode::kWrite));
  EXPECT_EQ(StringOfBytes(mem_.Load(A(1024), 8)), "abcdXXXX");
}

TEST_F(ExecutorTest, DataIndirectWriteReadsServerSideSource) {
  mem_.Store(A(2048), BytesOfString("srcdata"));
  Op op = Op::Write(region_.rkey, A(0), BytesOfU64(A(2048)));
  op.data_indirect = true;
  op.len = 7;
  auto r = executor_.Execute({op});
  ASSERT_TRUE(r[0].Successful(OpCode::kWrite));
  EXPECT_EQ(StringOfBytes(mem_.Load(A(0), 7)), "srcdata");
}

// ---------- ALLOCATE (§3.2) ----------

TEST_F(ExecutorTest, AllocateWritesAndReturnsPointer) {
  auto r = executor_.Execute(
      {Op::Allocate(region_.rkey, queue_, BytesOfString("fresh"))});
  ASSERT_TRUE(r[0].Successful(OpCode::kAllocate));
  rdma::Addr buf = r[0].AllocatedAddr();
  EXPECT_EQ(StringOfBytes(mem_.Load(buf, 5)), "fresh");
  EXPECT_EQ(freelists_.available(queue_), 7u);
}

TEST_F(ExecutorTest, AllocatePopsFifo) {
  auto r1 = executor_.Execute({Op::Allocate(region_.rkey, queue_, Bytes(8))});
  auto r2 = executor_.Execute({Op::Allocate(region_.rkey, queue_, Bytes(8))});
  EXPECT_NE(r1[0].AllocatedAddr(), r2[0].AllocatedAddr());
  EXPECT_EQ(r2[0].AllocatedAddr(), r1[0].AllocatedAddr() + 512);
}

TEST_F(ExecutorTest, AllocateEmptyQueueNacksRnr) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor_.Execute({Op::Allocate(region_.rkey, queue_,
                                                Bytes(8))})[0]
                    .status.ok());
  }
  auto r = executor_.Execute({Op::Allocate(region_.rkey, queue_, Bytes(8))});
  EXPECT_EQ(r[0].status.code(), Code::kResourceExhausted);
  EXPECT_EQ(freelists_.empty_nacks(), 1u);
}

TEST_F(ExecutorTest, AllocateOversizedPayloadRejected) {
  auto r = executor_.Execute(
      {Op::Allocate(region_.rkey, queue_, Bytes(1024))});
  EXPECT_EQ(r[0].status.code(), Code::kInvalidArgument);
  EXPECT_EQ(freelists_.available(queue_), 8u);  // nothing popped
}

TEST_F(ExecutorTest, FreeListQueueForPicksSmallestFit) {
  FreeListRegistry fl;
  uint32_t q64 = fl.CreateQueue(64);
  uint32_t q512 = fl.CreateQueue(512);
  uint32_t q4096 = fl.CreateQueue(4096);
  EXPECT_EQ(*fl.QueueFor(10), q64);
  EXPECT_EQ(*fl.QueueFor(64), q64);
  EXPECT_EQ(*fl.QueueFor(65), q512);
  EXPECT_EQ(*fl.QueueFor(4000), q4096);
  EXPECT_FALSE(fl.QueueFor(10000).ok());
}

// ---------- enhanced CAS (§3.3) ----------

TEST_F(ExecutorTest, FullWidthEqualityCas) {
  mem_.StoreWord(A(0), 11);
  auto r = executor_.Execute({Op::Cas(region_.rkey, A(0), BytesOfU64(12))});
  EXPECT_TRUE(r[0].executed);
  EXPECT_FALSE(r[0].cas_swapped);  // 12 != 11
  auto r2 = executor_.Execute({Op::MaskedCas(
      region_.rkey, A(0), BytesOfU64(11), FieldMask(8, 0, 8),
      FieldMask(8, 0, 8))});
  EXPECT_TRUE(r2[0].cas_swapped);  // compare 11 == 11; swap writes 11
}

TEST_F(ExecutorTest, CasCompareOneFieldSwapAnother) {
  // ⟨tag, addr⟩ slot: compare addr (offset 8), swap both (PRISM-KV PUT).
  mem_.Store(A(0), BytesOfU64Pair(/*tag=*/3, /*addr=*/A(512)));
  Bytes operand = BytesOfU64Pair(/*tag=*/4, /*addr=*/A(512));
  auto r = executor_.Execute({Op::MaskedCas(
      region_.rkey, A(0), operand, FieldMask(16, 8, 8), FieldMask(16, 0, 8))});
  ASSERT_TRUE(r[0].cas_swapped);
  EXPECT_EQ(mem_.LoadWord(A(0)), 4u);        // tag swapped
  EXPECT_EQ(mem_.LoadWord(A(8)), A(512));    // addr untouched
}

TEST_F(ExecutorTest, CasGreaterThanForVersionedUpdate) {
  // PRISM-RS pattern: install ⟨tag,addr⟩ only if new tag > stored tag.
  // Layout: [addr at 0 | tag at 8]; tag is most significant (LE compare).
  mem_.Store(A(0), BytesOfU64Pair(/*addr=*/A(512), /*tag=*/5));
  Bytes operand = BytesOfU64Pair(/*addr=*/A(1024), /*tag=*/7);
  Bytes cmp_mask = FieldMask(16, 8, 8);   // compare tag only
  Bytes swap_mask = FieldMask(16, 0, 16); // swap both
  auto r = executor_.Execute({Op::MaskedCas(region_.rkey, A(0), operand,
                                            cmp_mask, swap_mask,
                                            CasCompare::kGreater)});
  ASSERT_TRUE(r[0].cas_swapped);
  EXPECT_EQ(mem_.LoadWord(A(0)), A(1024));
  EXPECT_EQ(mem_.LoadWord(A(8)), 7u);
  // A stale tag (6 < 7 now stored) must lose.
  Bytes stale = BytesOfU64Pair(A(2048), 6);
  auto r2 = executor_.Execute({Op::MaskedCas(region_.rkey, A(0), stale,
                                             cmp_mask, swap_mask,
                                             CasCompare::kGreater)});
  EXPECT_FALSE(r2[0].cas_swapped);
  EXPECT_EQ(mem_.LoadWord(A(0)), A(1024));  // unchanged
}

TEST_F(ExecutorTest, CasReturnsPreviousValueEitherWay) {
  mem_.Store(A(0), BytesOfU64Pair(9, 10));
  Bytes operand = BytesOfU64Pair(1, 2);
  Bytes full = FieldMask(16, 0, 16);
  auto r = executor_.Execute({Op::MaskedCas(region_.rkey, A(0), operand, full,
                                            full, CasCompare::kGreater)});
  EXPECT_FALSE(r[0].cas_swapped);
  EXPECT_EQ(LoadU64(r[0].data.data()), 9u);
  EXPECT_EQ(LoadU64(r[0].data.data() + 8), 10u);
}

TEST_F(ExecutorTest, CasIndirectTarget) {
  mem_.StoreWord(A(0), A(512));   // pointer to the actual CAS target
  mem_.StoreWord(A(512), 100);
  Op op = Op::Cas(region_.rkey, A(0), BytesOfU64(100));
  op.addr_indirect = true;
  op.swap_mask = FieldMask(8, 0, 8);
  op.cmp_mask = FieldMask(8, 0, 8);
  op.data = BytesOfU64(100);
  // compare 100 == *target(100): swap writes 100 (no-op value change but
  // proves dereference happened at A(512), not A(0)).
  auto r = executor_.Execute({op});
  ASSERT_TRUE(r[0].cas_swapped);
  EXPECT_EQ(mem_.LoadWord(A(0)), A(512));  // pointer untouched
}

TEST_F(ExecutorTest, CasIndirectData) {
  // Operand loaded from server memory (PRISM-RS: compare against tmp).
  mem_.StoreWord(A(0), 55);
  mem_.StoreWord(A(2048), 55);  // server-side operand source
  Op op;
  op.code = OpCode::kCas;
  op.rkey = region_.rkey;
  op.addr = A(0);
  op.data = BytesOfU64(A(2048));
  op.data_indirect = true;
  op.cmp_mask = FieldMask(8, 0, 8);
  op.swap_mask = FieldMask(8, 0, 8);
  auto r = executor_.Execute({op});
  ASSERT_TRUE(r[0].cas_swapped);
  EXPECT_EQ(mem_.LoadWord(A(0)), 55u);
}

TEST_F(ExecutorTest, CasMismatchedMasksRejected) {
  Op op = Op::Cas(region_.rkey, A(0), BytesOfU64(1));
  op.swap_mask = Bytes(16, 0xff);  // width mismatch vs 8-byte cmp_mask
  auto r = executor_.Execute({op});
  EXPECT_EQ(r[0].status.code(), Code::kInvalidArgument);
}

// ---------- chaining (§3.4) ----------

TEST_F(ExecutorTest, ConditionalSkipsAfterFailure) {
  mem_.StoreWord(A(0), 1);
  Chain chain;
  chain.push_back(Op::Cas(region_.rkey, A(0), BytesOfU64(999)));  // fails
  chain.push_back(
      Op::Write(region_.rkey, A(8), BytesOfU64(0xdead)).Conditional());
  auto r = executor_.Execute(chain);
  EXPECT_FALSE(r[0].cas_swapped);
  EXPECT_FALSE(r[1].executed);
  EXPECT_EQ(r[1].status.code(), Code::kFailedPrecondition);
  EXPECT_EQ(mem_.LoadWord(A(8)), 0u);  // write suppressed
}

TEST_F(ExecutorTest, ConditionalRunsAfterSuccess) {
  mem_.StoreWord(A(0), 999);
  Chain chain;
  chain.push_back(Op::Cas(region_.rkey, A(0), BytesOfU64(999)));  // swaps
  chain.push_back(
      Op::Write(region_.rkey, A(8), BytesOfU64(0xbeef)).Conditional());
  auto r = executor_.Execute(chain);
  EXPECT_TRUE(r[0].cas_swapped);
  EXPECT_TRUE(r[1].Successful(OpCode::kWrite));
  EXPECT_EQ(mem_.LoadWord(A(8)), 0xbeefu);
}

TEST_F(ExecutorTest, FailurePropagatesThroughWholeSuffix) {
  Chain chain;
  chain.push_back(Op::Read(region_.rkey + 1, A(0), 8));  // NACK
  chain.push_back(Op::Write(region_.rkey, A(8), Bytes(8)).Conditional());
  chain.push_back(Op::Write(region_.rkey, A(16), Bytes(8)).Conditional());
  auto r = executor_.Execute(chain);
  EXPECT_FALSE(r[1].executed);
  EXPECT_FALSE(r[2].executed);
}

TEST_F(ExecutorTest, UnconditionalOpResetsChainState) {
  Chain chain;
  chain.push_back(Op::Read(region_.rkey + 1, A(0), 8));  // NACK
  chain.push_back(Op::Write(region_.rkey, A(8), BytesOfU64(1)));  // uncond.
  chain.push_back(Op::Write(region_.rkey, A(16), BytesOfU64(2)).Conditional());
  auto r = executor_.Execute(chain);
  EXPECT_TRUE(r[1].Successful(OpCode::kWrite));
  EXPECT_TRUE(r[2].Successful(OpCode::kWrite));
}

TEST_F(ExecutorTest, RedirectReadToMemory) {
  mem_.Store(A(0), BytesOfString("payload"));
  auto r = executor_.Execute(
      {Op::Read(region_.rkey, A(0), 7).RedirectTo(A(4096))});
  ASSERT_TRUE(r[0].status.ok());
  EXPECT_TRUE(r[0].data.empty());  // not returned to client
  EXPECT_EQ(StringOfBytes(mem_.Load(A(4096), 7)), "payload");
}

TEST_F(ExecutorTest, RedirectToOnNicScratch) {
  mem_.Store(A(0), BytesOfString("to-nic"));
  auto r = executor_.Execute(
      {Op::Read(region_.rkey, A(0), 6).RedirectTo(scratch_.base)});
  ASSERT_TRUE(r[0].status.ok());
  EXPECT_EQ(StringOfBytes(mem_.Load(scratch_.base, 6)), "to-nic");
}

TEST_F(ExecutorTest, AllocateRedirectThenConditionalCasInstall) {
  // The canonical §3.5 pattern: ALLOCATE → redirect addr to scratch →
  // conditional CAS installs the pointer read from scratch.
  mem_.StoreWord(A(0), 0);  // slot initially empty
  Chain chain;
  chain.push_back(Op::Allocate(region_.rkey, queue_, BytesOfString("newval"))
                      .RedirectTo(scratch_.base));
  Op install;
  install.code = OpCode::kCas;
  install.rkey = region_.rkey;
  install.addr = A(0);
  install.data = BytesOfU64(scratch_.base);
  install.data_indirect = true;  // operand = *scratch = allocated addr
  install.cmp_mask = Bytes(8, 0x00);  // unconditional swap (compare nothing)
  install.swap_mask = Bytes(8, 0xff);
  install.conditional = true;
  chain.push_back(install);
  auto r = executor_.Execute(chain);
  ASSERT_TRUE(r[0].status.ok());
  ASSERT_TRUE(r[1].cas_swapped);
  rdma::Addr installed = mem_.LoadWord(A(0));
  EXPECT_EQ(StringOfBytes(mem_.Load(installed, 6)), "newval");
}

TEST_F(ExecutorTest, FailedAllocateSkipsInstall) {
  while (freelists_.available(queue_) > 0) {
    (void)freelists_.Pop(queue_, 1);
  }
  Chain chain;
  chain.push_back(Op::Allocate(region_.rkey, queue_, Bytes(8))
                      .RedirectTo(scratch_.base));
  chain.push_back(
      Op::Write(region_.rkey, A(0), BytesOfU64(1)).Conditional());
  auto r = executor_.Execute(chain);
  EXPECT_EQ(r[0].status.code(), Code::kResourceExhausted);
  EXPECT_FALSE(r[1].executed);
}

TEST_F(ExecutorTest, RedirectFailedAllocateReturnsBuffer) {
  // Redirect target invalid (unmapped high address, outside every region
  // including the on-NIC scratch) ⇒ the popped buffer goes back to the queue.
  Chain chain;
  chain.push_back(Op::Allocate(region_.rkey, queue_, Bytes(8))
                      .RedirectTo((1u << 20) - 16));
  auto r = executor_.Execute(chain);
  EXPECT_FALSE(r[0].status.ok());
  EXPECT_EQ(freelists_.available(queue_), 8u);
}

// ---------- access profiles (timing model inputs) ----------

TEST_F(ExecutorTest, ProfileCountsPointerChase) {
  AccessProfile direct = executor_.Profile(Op::Read(region_.rkey, A(0), 64));
  AccessProfile indirect =
      executor_.Profile(Op::IndirectRead(region_.rkey, A(0), 64));
  EXPECT_EQ(direct.host_reads, 1);
  EXPECT_EQ(indirect.host_reads, 2);  // pointer + data
}

TEST_F(ExecutorTest, ProfileOnNicRedirectIsNotHostAccess) {
  Op to_nic = Op::Read(region_.rkey, A(0), 64).RedirectTo(scratch_.base);
  Op to_host = Op::Read(region_.rkey, A(0), 64).RedirectTo(A(4096));
  AccessProfile nic = executor_.Profile(to_nic);
  AccessProfile host = executor_.Profile(to_host);
  EXPECT_EQ(nic.on_nic, 1);
  EXPECT_EQ(nic.host_writes, 0);
  EXPECT_EQ(host.host_writes, 1);
}

TEST_F(ExecutorTest, ProfileCasIsAtomic) {
  EXPECT_TRUE(
      executor_.Profile(Op::Cas(region_.rkey, A(0), BytesOfU64(1))).atomic);
  EXPECT_FALSE(executor_.Profile(Op::Read(region_.rkey, A(0), 8)).atomic);
}

}  // namespace
}  // namespace prism::core
