// Tests under wire loss: the transport retransmission machinery (§4.2's
// "loss, corruption, and timeout would be handled using the same CRC and
// retransmission mechanisms that NICs already implement") must keep every
// application correct — operations stay exactly-once — while latency tails
// absorb the retransmission delays.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/histogram.h"
#include "src/kv/prism_kv.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"
#include "src/tx/prism_tx.h"

namespace prism {
namespace {

using sim::Task;

net::CostModel Lossy(double p) {
  net::CostModel m = net::CostModel::EvalCluster40G();
  m.loss_probability = p;
  return m;
}

TEST(LossyNetworkTest, RetransmissionsRecoverSilentLoss) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, Lossy(0.2), /*loss_seed=*/99);
  net::HostId a = fabric.AddHost("a");
  net::HostId b = fabric.AddHost("b");
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    fabric.Send(a, b, 64, [&] { delivered++; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 200);  // every message eventually arrives
  EXPECT_GT(fabric.retransmissions(), 20u);
  EXPECT_EQ(fabric.dropped_messages(), 0u);
}

TEST(LossyNetworkTest, ExhaustedRetransmitsReportDrop) {
  sim::Simulator sim;
  net::CostModel m = Lossy(1.0);  // everything lost
  m.max_retransmits = 3;
  net::Fabric fabric(&sim, m);
  net::HostId a = fabric.AddHost("a");
  net::HostId b = fabric.AddHost("b");
  bool delivered = false;
  bool dropped = false;
  fabric.Send(a, b, 64, [&] { delivered = true; }, [&] { dropped = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
  EXPECT_EQ(fabric.retransmissions(), 3u);
}

TEST(LossyNetworkTest, KvStoreCorrectUnderLoss) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, Lossy(0.05), 7);
  net::HostId server_host = fabric.AddHost("server");
  kv::PrismKvOptions opts;
  opts.n_buckets = 64;
  opts.n_buffers = 256;
  kv::PrismKvServer server(&fabric, server_host, opts);
  net::HostId client_host = fabric.AddHost("client");
  kv::PrismKvClient client(&fabric, client_host, &server);
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 60; ++i) {
      std::string key = "k" + std::to_string(i % 10);
      std::string value = "v" + std::to_string(i);
      EXPECT_TRUE((co_await client.Put(key, BytesOfString(value))).ok()) << i;
      auto got = co_await client.Get(key);
      EXPECT_TRUE(got.ok()) << i;
      EXPECT_EQ(StringOfBytes(*got), value) << i;
    }
  });
  sim.Run();
  EXPECT_GT(fabric.retransmissions(), 0u);
}

TEST(LossyNetworkTest, AbdRemainsLinearizableUnderLoss) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, Lossy(0.05), 21);
  rs::PrismRsOptions opts;
  opts.n_blocks = 4;
  opts.block_size = 32;
  opts.buffers_per_replica = 512;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId h1 = fabric.AddHost("c1");
  net::HostId h2 = fabric.AddHost("c2");
  rs::PrismRsClient c1(&fabric, h1, &cluster, 1);
  rs::PrismRsClient c2(&fabric, h2, &cluster, 2);
  uint64_t last_tag_c1 = 0, last_tag_c2 = 0;
  bool monotone = true;
  auto Worker = [&](rs::PrismRsClient* client, uint64_t* last_tag,
                    uint8_t fill) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      rs::Tag tag;
      Status s = co_await client->Put(0, Bytes(32, fill), &tag);
      EXPECT_TRUE(s.ok());
      if (tag.Packed() <= *last_tag) monotone = false;
      *last_tag = tag.Packed();
      auto v = co_await client->Get(0, &tag);
      EXPECT_TRUE(v.ok());
      if (tag.Packed() < *last_tag) monotone = false;  // read ≥ own write
      *last_tag = tag.Packed();
    }
  };
  sim::Spawn([&]() -> Task<void> { co_await Worker(&c1, &last_tag_c1, 1); });
  sim::Spawn([&]() -> Task<void> { co_await Worker(&c2, &last_tag_c2, 2); });
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_GT(fabric.retransmissions(), 0u);
}

TEST(LossyNetworkTest, TransactionsSerializableUnderLoss) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, Lossy(0.05), 33);
  tx::PrismTxOptions opts;
  opts.keys_per_shard = 16;
  opts.value_size = 32;
  opts.buffers_per_shard = 256;
  tx::PrismTxCluster cluster(&fabric, 1, opts);
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(cluster.LoadKey(k, Bytes(32, 0)).ok());
  }
  net::HostId host = fabric.AddHost("client");
  tx::PrismTxClient client(&fabric, host, &cluster, 1);
  // Single-client increments: every committed increment must be visible —
  // exactly-once despite loss.
  int committed = 0;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      tx::Transaction t = client.Begin();
      auto v = co_await client.Read(t, 0);
      EXPECT_TRUE(v.ok());
      Bytes updated = std::move(*v);
      updated[0] = static_cast<uint8_t>(updated[0] + 1);
      client.Write(t, 0, std::move(updated));
      Status s = co_await client.Commit(t);
      if (s.ok()) committed++;
    }
    tx::Transaction check = client.Begin();
    auto final_value = co_await client.Read(check, 0);
    EXPECT_TRUE(final_value.ok());
    EXPECT_EQ((*final_value)[0], static_cast<uint8_t>(committed));
  });
  sim.Run();
  EXPECT_GT(committed, 0);
}

TEST(LossyNetworkTest, LossInflatesTailLatency) {
  auto MeasureP99 = [](double loss) {
    sim::Simulator sim;
    net::Fabric fabric(&sim, Lossy(loss), 11);
    net::HostId server_host = fabric.AddHost("server");
    kv::PrismKvOptions opts;
    opts.n_buckets = 64;
    opts.n_buffers = 256;
    kv::PrismKvServer server(&fabric, server_host, opts);
    net::HostId client_host = fabric.AddHost("client");
    kv::PrismKvClient client(&fabric, client_host, &server);
    LatencyHistogram hist;
    sim::Spawn([&]() -> Task<void> {
      (void)co_await client.Put("k", BytesOfString("v"));
      for (int i = 0; i < 300; ++i) {
        sim::TimePoint start = sim.Now();
        auto v = co_await client.Get("k");
        EXPECT_TRUE(v.ok());
        hist.Record(sim.Now() - start);
      }
    });
    sim.Run();
    return static_cast<double>(hist.QuantileNanos(0.99)) / 1e3;
  };
  const double clean = MeasureP99(0.0);
  const double lossy = MeasureP99(0.05);
  EXPECT_GT(lossy, clean + 10.0);  // p99 absorbs ≥ one 20 µs retransmit
}

}  // namespace
}  // namespace prism
