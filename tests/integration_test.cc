// Cross-system integration tests: multiple applications sharing one fabric,
// failure injection mid-workload, reclamation under churn across systems,
// and end-to-end sanity of the closed-loop measurement harness.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/kv/pilaf.h"
#include "src/kv/prism_kv.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"
#include "src/tx/prism_tx.h"
#include "src/workload/driver.h"

namespace prism {
namespace {

using sim::Task;

// All three PRISM applications coexisting on one fabric, driven
// concurrently — exercises cross-service interleaving on shared hosts.
TEST(IntegrationTest, ThreeSystemsShareOneFabric) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());

  // PRISM-KV on host 0.
  net::HostId kv_host = fabric.AddHost("kv");
  kv::PrismKvOptions kv_opts;
  kv_opts.n_buckets = 128;
  kv_opts.n_buffers = 512;
  kv::PrismKvServer kv_server(&fabric, kv_host, kv_opts);

  // PRISM-RS on hosts 1..3.
  rs::PrismRsOptions rs_opts;
  rs_opts.n_blocks = 32;
  rs_opts.block_size = 64;
  rs_opts.buffers_per_replica = 256;
  rs::PrismRsCluster rs_cluster(&fabric, 3, rs_opts);

  // PRISM-TX on host 4.
  tx::PrismTxOptions tx_opts;
  tx_opts.keys_per_shard = 64;
  tx_opts.value_size = 64;
  tx_opts.buffers_per_shard = 256;
  tx::PrismTxCluster tx_cluster(&fabric, 1, tx_opts);
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(tx_cluster.LoadKey(k, Bytes(64, 1)).ok());
  }

  net::HostId client_host = fabric.AddHost("client");
  kv::PrismKvClient kv_client(&fabric, client_host, &kv_server);
  rs::PrismRsClient rs_client(&fabric, client_host, &rs_cluster, 1);
  tx::PrismTxClient tx_client(&fabric, client_host, &tx_cluster, 1);

  int kv_ops = 0, rs_ops = 0, tx_ops = 0;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      std::string key = "k" + std::to_string(i % 5);
      EXPECT_TRUE(
          (co_await kv_client.Put(key, BytesOfString("v" +
                                                     std::to_string(i))))
              .ok());
      auto v = co_await kv_client.Get(key);
      EXPECT_TRUE(v.ok());
      kv_ops += 2;
    }
  });
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE((co_await rs_client.Put(i % 4,
                                          Bytes(64, static_cast<uint8_t>(i))))
                      .ok());
      auto v = co_await rs_client.Get(i % 4);
      EXPECT_TRUE(v.ok());
      rs_ops += 2;
    }
  });
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      tx::Transaction txn = tx_client.Begin();
      auto v = co_await tx_client.Read(txn, i % 16);
      EXPECT_TRUE(v.ok());
      Bytes updated = std::move(*v);
      updated[0] = static_cast<uint8_t>(i);
      tx_client.Write(txn, i % 16, std::move(updated));
      Status s = co_await tx_client.Commit(txn);
      EXPECT_TRUE(s.ok());
      tx_ops++;
    }
  });
  sim.Run();
  EXPECT_EQ(kv_ops, 40);
  EXPECT_EQ(rs_ops, 40);
  EXPECT_EQ(tx_ops, 20);
}

// Replica crashes in the middle of a PRISM-RS write storm; every op that
// completes after the crash remains correct, and the history stays
// linearizable-by-tag (monotone tags per completed op).
TEST(IntegrationTest, RsReplicaCrashMidWorkload) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 8;
  opts.block_size = 64;
  opts.buffers_per_replica = 1024;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId host = fabric.AddHost("client");
  rs::PrismRsClient client(&fabric, host, &cluster, 1);

  int completed = 0;
  uint64_t last_tag = 0;
  bool monotone = true;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      rs::Tag tag;
      Status s = co_await client.Put(0, Bytes(64, static_cast<uint8_t>(i)),
                                     &tag);
      EXPECT_TRUE(s.ok()) << i;
      if (tag.Packed() <= last_tag) monotone = false;
      last_tag = tag.Packed();
      completed++;
    }
  });
  // Crash replica 2 while the writes stream.
  sim.Schedule(sim::Micros(200), [&] { fabric.SetHostUp(2, false); });
  sim.Run();
  EXPECT_EQ(completed, 40);
  EXPECT_TRUE(monotone);
  // The value survived on a quorum of the remaining replicas.
  bool checked = false;
  sim::Spawn([&]() -> Task<void> {
    auto v = co_await client.Get(0);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ((*v)[0], 39);
    checked = true;
  });
  sim.Run();
  EXPECT_TRUE(checked);
}

// Sustained overwrite churn across PRISM-KV with a small pool: reclamation
// (with the epoch-barrier drain rule) must keep ALLOCATE fed indefinitely.
TEST(IntegrationTest, KvChurnNeverStarvesAllocator) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  kv::PrismKvOptions opts;
  opts.n_buckets = 16;
  opts.n_buffers = 64;  // deliberately tight
  opts.reclaim_batch = 4;
  kv::PrismKvServer server(&fabric, server_host, opts);
  net::HostId client_host = fabric.AddHost("client");
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<kv::PrismKvClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<kv::PrismKvClient>(
        &fabric, client_host, &server));
  }
  int puts = 0;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      for (int i = 0; i < 250; ++i) {
        Status s = co_await clients[static_cast<size_t>(c)]->Put(
            "key" + std::to_string(i % 8),
            BytesOfString("value-" + std::to_string(i)));
        EXPECT_TRUE(s.ok()) << "client " << c << " put " << i << ": " << s;
        puts++;
      }
      clients[static_cast<size_t>(c)]->FlushReclaim();
    });
  }
  sim.Run();
  EXPECT_EQ(puts, kClients * 250);
  // Pool must be essentially full again after the dust settles: 8 live keys.
  EXPECT_GE(server.free_buffers(), opts.n_buffers - 1 - 8 - 4);
}

// The PRISM-KV and Pilaf stores agree with a model map under an identical
// random operation sequence (differential test between two implementations).
TEST(IntegrationTest, KvDifferentialAgainstModelAndPilaf) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId h1 = fabric.AddHost("prism-server");
  net::HostId h2 = fabric.AddHost("pilaf-server");
  kv::PrismKvOptions kv_opts;
  kv_opts.n_buckets = 64;
  kv_opts.n_buffers = 256;
  kv::PrismKvServer prism_server(&fabric, h1, kv_opts);
  kv::PilafOptions pilaf_opts;
  pilaf_opts.n_buckets = 64;
  pilaf_opts.n_extents = 256;
  kv::PilafServer pilaf_server(&fabric, h2, pilaf_opts);
  net::HostId ch = fabric.AddHost("client");
  kv::PrismKvClient prism_client(&fabric, ch, &prism_server);
  kv::PilafClient pilaf_client(&fabric, ch, &pilaf_server);

  std::map<std::string, std::string> model;
  Rng rng(424242);
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 300; ++i) {
      std::string key = "k" + std::to_string(rng.NextBelow(20));
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        std::string value = "v" + std::to_string(rng.NextU64() % 1000);
        EXPECT_TRUE((co_await prism_client.Put(key,
                                               BytesOfString(value))).ok());
        EXPECT_TRUE((co_await pilaf_client.Put(key,
                                               BytesOfString(value))).ok());
        model[key] = value;
      } else if (dice < 0.7) {
        Status s1 = co_await prism_client.Delete(key);
        Status s2 = co_await pilaf_client.Delete(key);
        EXPECT_EQ(s1.ok(), model.count(key) > 0) << key;
        EXPECT_EQ(s1.ok(), s2.ok()) << key;
        model.erase(key);
      } else {
        auto v1 = co_await prism_client.Get(key);
        auto v2 = co_await pilaf_client.Get(key);
        if (model.count(key)) {
          EXPECT_TRUE(v1.ok()) << key;
          EXPECT_TRUE(v2.ok()) << key;
          EXPECT_EQ(StringOfBytes(*v1), model[key]);
          EXPECT_EQ(StringOfBytes(*v2), model[key]);
        } else {
          EXPECT_EQ(v1.code(), Code::kNotFound) << key;
          EXPECT_EQ(v2.code(), Code::kNotFound) << key;
        }
      }
    }
  });
  sim.Run();
}

}  // namespace
}  // namespace prism
