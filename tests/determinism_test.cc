// Determinism regression for the event engine.
//
// The simulator's contract is bit-identical replay: the same seeded workload
// must execute the same events in the same order at the same timestamps, no
// matter how the run is sliced into RunUntil segments. This pins the engine's
// (when, seq) total order — zero-delay ring lane, calendar-queue slots, and
// the overflow heap all merge back into one deterministic schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/common/rng.h"
#include "src/net/cost_model.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace prism {
namespace {

using net::Fabric;
using net::HostId;
using sim::Event;
using sim::Micros;
using sim::Nanos;
using sim::Seconds;
using sim::Simulator;
using sim::SleepFor;
using sim::Spawn;
using sim::Task;
using sim::TimePoint;

constexpr int kHosts = 4;
constexpr int kClients = 3;
constexpr int kMessagesPerClient = 40;

struct World {
  Simulator sim;
  Fabric fabric;
  uint64_t order_hash = 1469598103934665603ull;  // FNV-1a offset basis
  uint64_t delivered = 0;
  uint64_t dropped = 0;

  explicit World(net::CostModel model)
      : fabric(&sim, model, /*loss_seed=*/0xD5EED) {}

  // Folds one observation into the delivery-order hash. Only simulation-
  // deterministic values go in (ids, sim time) — never host pointers.
  void Mix(uint64_t x) {
    order_hash ^= x;
    order_hash *= 1099511628211ull;  // FNV prime
  }
};

// Plain-function coroutine with by-value params (see the GCC 12 lambda
// warning in sim/task.h).
Task<void> Client(World* w, int id, HostId src) {
  Rng rng(0xC0FFEEull + static_cast<uint64_t>(id) * 7919);
  for (int i = 0; i < kMessagesPerClient; ++i) {
    co_await SleepFor(&w->sim, Nanos(static_cast<int64_t>(
                                   rng.NextBelow(50'000))));
    const HostId dst = static_cast<HostId>(rng.NextBelow(kHosts));
    const size_t payload = 16 + rng.NextBelow(2048);
    auto done = std::make_shared<Event>(&w->sim);
    const uint64_t tag = static_cast<uint64_t>(id) * 1000003 + i;
    w->fabric.Send(
        src, dst, payload,
        [w, tag, done] {
          w->delivered++;
          w->Mix(tag);
          w->Mix(static_cast<uint64_t>(w->sim.Now()));
          w->Mix(1);
          done->Set();
        },
        [w, tag, done] {
          w->dropped++;
          w->Mix(tag);
          w->Mix(static_cast<uint64_t>(w->sim.Now()));
          w->Mix(2);
          done->Set();
        });
    co_await done->Wait();
  }
}

struct RunResult {
  uint64_t executed;
  TimePoint final_now;
  uint64_t order_hash;
  uint64_t delivered;
  uint64_t dropped;
  uint64_t fabric_total;
  uint64_t fabric_lost;
  uint64_t fabric_retransmissions;
  uint64_t fabric_dropped;
  Simulator::Stats stats;
};

// Runs the full seeded workload, optionally pausing at each checkpoint via
// RunUntil before finishing with Run(). Lossy fabric + a mid-run host
// failure exercise retransmit timers, zero-delay drop notifications, and the
// wheel/ring merge; the far-future no-op exercises the overflow heap.
RunResult RunWorkload(const std::vector<TimePoint>& checkpoints) {
  net::CostModel model = net::CostModel::EvalCluster40G();
  model.loss_probability = 0.03;
  World w(model);
  for (int h = 0; h < kHosts; ++h) w.fabric.AddHost("h" + std::to_string(h));
  for (int c = 0; c < kClients; ++c) {
    Spawn(Client(&w, c, static_cast<HostId>(c)));
  }
  w.sim.Schedule(Micros(300), [&w] { w.fabric.SetHostUp(3, false); });
  w.sim.Schedule(Micros(800), [&w] { w.fabric.SetHostUp(3, true); });
  w.sim.Schedule(Seconds(1), [] {});  // overflow-lane exerciser
  for (TimePoint t : checkpoints) w.sim.RunUntil(t);
  w.sim.Run();
  return RunResult{
      w.sim.executed_events(), w.sim.Now(),           w.order_hash,
      w.delivered,             w.dropped,             w.fabric.total_messages(),
      w.fabric.lost_messages(), w.fabric.retransmissions(),
      w.fabric.dropped_messages(), w.sim.stats()};
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.order_hash, b.order_hash);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.fabric_total, b.fabric_total);
  EXPECT_EQ(a.fabric_lost, b.fabric_lost);
  EXPECT_EQ(a.fabric_retransmissions, b.fabric_retransmissions);
  EXPECT_EQ(a.fabric_dropped, b.fabric_dropped);
  EXPECT_EQ(a.stats.zero_delay_events, b.stats.zero_delay_events);
  EXPECT_EQ(a.stats.timer_events, b.stats.timer_events);
  EXPECT_EQ(a.stats.overflow_events, b.stats.overflow_events);
  EXPECT_EQ(a.stats.heap_callables, b.stats.heap_callables);
}

TEST(DeterminismTest, WorkloadIsNonTrivial) {
  RunResult r = RunWorkload({});
  // The workload must actually traverse every engine lane for the replay
  // assertions below to mean anything.
  EXPECT_EQ(r.delivered + r.dropped,
            static_cast<uint64_t>(kClients * kMessagesPerClient));
  EXPECT_GT(r.fabric_retransmissions, 0u);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_GT(r.stats.zero_delay_events, 0u);
  EXPECT_GT(r.stats.timer_events, 0u);
  EXPECT_GT(r.stats.overflow_events, 0u);
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  ExpectIdentical(RunWorkload({}), RunWorkload({}));
}

TEST(DeterminismTest, RunUntilCheckpointsDoNotPerturbReplay) {
  RunResult straight = RunWorkload({});
  RunResult sliced = RunWorkload(
      {Micros(50), Micros(123), Micros(300), Micros(777), Micros(5000)});
  ExpectIdentical(straight, sliced);
  // Slicing even finer — a checkpoint every 10 µs through the busy phase —
  // must not change anything either.
  std::vector<TimePoint> fine;
  for (int i = 1; i <= 200; ++i) fine.push_back(Micros(10) * i);
  ExpectIdentical(straight, RunWorkload(fine));
}

// ---- determinism under a full chaos schedule ----
//
// Same contract, harder workload: a seeded ChaosMonkey drives crash/restart
// epochs, directed partitions, loss bursts, and latency spikes through the
// fabric while the clients run. The injected faults — and every purge /
// retransmit / drop they cause — must replay bit-identically, sliced or not.
RunResult RunChaosWorkload(uint64_t seed,
                           const std::vector<TimePoint>& checkpoints) {
  World w(net::CostModel::EvalCluster40G());
  for (int h = 0; h < kHosts; ++h) w.fabric.AddHost("h" + std::to_string(h));
  chaos::ChaosOptions copts;
  copts.seed = seed;
  copts.crashable = {2, 3};
  copts.partition_hosts = {0, 1, 2, 3};
  copts.partition_count = 3;
  chaos::ChaosMonkey monkey(&w.fabric, copts);
  monkey.Arm();
  for (int c = 0; c < kClients; ++c) {
    Spawn(Client(&w, c, static_cast<HostId>(c)));
  }
  // Far-future no-op: keeps final Now() checkpoint-independent (RunUntil
  // advances the clock even past the last real event) and exercises the
  // overflow lane like the base workload.
  w.sim.Schedule(Seconds(1), [] {});
  for (TimePoint t : checkpoints) w.sim.RunUntil(t);
  w.sim.Run();
  // Fold the fault-path counters into the order hash so a divergence in
  // purge/partition behavior is caught even if delivery counts agree.
  w.Mix(w.fabric.purged_messages());
  w.Mix(w.fabric.partitioned_messages());
  w.Mix(static_cast<uint64_t>(monkey.crashes_injected()));
  w.Mix(static_cast<uint64_t>(monkey.partitions_injected()));
  return RunResult{
      w.sim.executed_events(), w.sim.Now(),           w.order_hash,
      w.delivered,             w.dropped,             w.fabric.total_messages(),
      w.fabric.lost_messages(), w.fabric.retransmissions(),
      w.fabric.dropped_messages(), w.sim.stats()};
}

TEST(DeterminismTest, ChaosScheduleReplaysBitIdentically) {
  RunResult straight = RunChaosWorkload(7, {});
  ExpectIdentical(straight, RunChaosWorkload(7, {}));
  // Checkpoints inside and around the chaos window must not perturb the
  // injected faults or anything downstream of them.
  RunResult sliced = RunChaosWorkload(
      7, {Micros(40), Micros(250), Micros(900), Micros(3000), Micros(9000)});
  ExpectIdentical(straight, sliced);
  std::vector<TimePoint> fine;
  for (int i = 1; i <= 300; ++i) fine.push_back(Micros(5) * i);
  ExpectIdentical(straight, RunChaosWorkload(7, fine));
}

TEST(DeterminismTest, DifferentChaosSeedsDiverge) {
  // Sanity: the chaos schedule actually affects the run (otherwise the
  // replay assertions above would be vacuous).
  RunResult a = RunChaosWorkload(7, {});
  RunResult b = RunChaosWorkload(8, {});
  EXPECT_NE(a.order_hash, b.order_hash);
}

}  // namespace
}  // namespace prism
