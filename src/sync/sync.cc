#include "src/sync/sync.h"

#include <algorithm>
#include <utility>

namespace prism::sync {

namespace {

using core::Op;
using core::OpCode;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Bytes Word(uint64_t w) {
  Bytes b(8);
  StoreU64(b.data(), w);
  return b;
}

// Lease word: ⟨expiry µs << 16 | owner⟩.
uint64_t PackLease(uint16_t owner, uint64_t expiry_us) {
  return (expiry_us << 16) | owner;
}
sim::TimePoint LeaseExpiryNs(uint64_t word) {
  return static_cast<sim::TimePoint>(word >> 16) * 1000;
}

}  // namespace

std::string_view SchemeName(SyncScheme scheme) {
  switch (scheme) {
    case SyncScheme::kSpinlock:
      return "spinlock";
    case SyncScheme::kOptimistic:
      return "optimistic";
    case SyncScheme::kLease:
      return "lease";
    case SyncScheme::kPrismNative:
      return "prism";
    case SyncScheme::kUnfencedBuggy:
      return "unfenced_buggy";
  }
  return "unknown";
}

Bytes MakeValue(uint64_t seed, int client, int op) {
  const uint64_t tag = (static_cast<uint64_t>(client) << 32) |
                       static_cast<uint32_t>(op);
  const uint64_t base = Mix64(seed) ^ Mix64(tag);
  Bytes v(kValueSize);
  StoreU64(v.data(), Mix64(base ^ 0xA11CEull));
  StoreU64(v.data() + 8, Mix64(base ^ 0xB0Bull));
  return v;
}

Bytes InitialValue() { return Bytes(kValueSize, 0xA5); }

// ---- server ----

SyncIndexServer::SyncIndexServer(net::Fabric* fabric, net::HostId host,
                                 SyncOptions opts)
    : opts_(opts), host_(host) {
  PRISM_CHECK_GT(opts_.n_slots, 0u);
  PRISM_CHECK_EQ(opts_.n_slots & (opts_.n_slots - 1), 0u)
      << "n_slots must be a power of two";
  const uint64_t table_bytes = opts_.n_slots * kSlotStride;
  mem_ = std::make_unique<rdma::AddressSpace>(
      table_bytes + core::PrismServer::kOnNicBytes + (1 << 20));
  auto region = mem_->CarveAndRegister(table_bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  rdma_ = std::make_unique<rdma::RdmaService>(fabric, host, opts_.backend,
                                              mem_.get());
  prism_ = std::make_unique<core::PrismServer>(fabric, host, opts_.deployment,
                                               mem_.get());
}

uint64_t SyncIndexServer::HashSlot(uint64_t key) const {
  return Mix64(key) & (opts_.n_slots - 1);
}

Status SyncIndexServer::LoadKey(uint64_t key, ByteView value) {
  if (key == 0) return InvalidArgument("keys must be nonzero");
  if (value.size() != kValueSize) return InvalidArgument("bad value size");
  const uint64_t home = HashSlot(key);
  for (int p = 0; p < opts_.max_probes; ++p) {
    const rdma::Addr addr = slot_addr((home + p) & (opts_.n_slots - 1));
    const uint64_t resident = mem_->LoadWord(addr + kKeyOff);
    if (resident != 0 && resident != key) continue;
    mem_->StoreWord(addr + kLockOff, 0);
    mem_->StoreWord(addr + kKeyOff, key);
    mem_->StoreWord(addr + kVersionOff, 0);
    mem_->StoreWord(addr + kValueOff, LoadU64(value.data()));
    mem_->StoreWord(addr + kValueOff + 8, LoadU64(value.data() + 8));
    return OkStatus();
  }
  return ResourceExhausted("probe window full for key");
}

Result<uint64_t> SyncIndexServer::SlotOf(uint64_t key) const {
  const uint64_t home = HashSlot(key);
  for (int p = 0; p < opts_.max_probes; ++p) {
    const uint64_t slot = (home + p) & (opts_.n_slots - 1);
    const uint64_t resident = mem_->LoadWord(slot_addr(slot) + kKeyOff);
    if (resident == key) return slot;
    if (resident == 0) break;
  }
  return NotFound("key not loaded");
}

check::ValueId SyncIndexServer::FinalValue(uint64_t key) const {
  auto slot = SlotOf(key);
  if (!slot.ok()) return check::kAbsent;
  Bytes v(kValueSize);
  const rdma::Addr addr = slot_addr(*slot);
  StoreU64(v.data(), mem_->LoadWord(addr + kValueOff));
  StoreU64(v.data() + 8, mem_->LoadWord(addr + kValueOff + 8));
  return check::IdOf(v);
}

Bytes SyncIndexServer::ValueBytes(uint64_t key) const {
  auto slot = SlotOf(key);
  PRISM_CHECK(slot.ok()) << slot.status();
  Bytes v(kValueSize);
  const rdma::Addr addr = slot_addr(*slot);
  StoreU64(v.data(), mem_->LoadWord(addr + kValueOff));
  StoreU64(v.data() + 8, mem_->LoadWord(addr + kValueOff + 8));
  return v;
}

uint64_t SyncIndexServer::LockWord(uint64_t key) const {
  auto slot = SlotOf(key);
  PRISM_CHECK(slot.ok()) << slot.status();
  return mem_->LoadWord(slot_addr(*slot) + kLockOff);
}

uint64_t SyncIndexServer::VersionWord(uint64_t key) const {
  auto slot = SlotOf(key);
  PRISM_CHECK(slot.ok()) << slot.status();
  return mem_->LoadWord(slot_addr(*slot) + kVersionOff);
}

// ---- client ----

SyncClient::SyncClient(net::Fabric* fabric, net::HostId self,
                       SyncIndexServer* server, SyncScheme scheme,
                       uint16_t client_id, uint64_t rng_seed)
    : fabric_(fabric),
      self_(self),
      server_(server),
      scheme_(scheme),
      id_(client_id),
      rng_(rng_seed ^ (0x5CEB00Dull * client_id)),
      rdma_(fabric, self),
      prism_(fabric, self) {
  PRISM_CHECK_GT(client_id, 0);  // 0 is the free lock word
}

void SyncClient::Prewarm(uint64_t key) {
  auto slot = server_->SlotOf(key);
  if (slot.ok()) slot_cache_[key] = *slot;
}

obs::TransportTally SyncClient::tally() const {
  return rdma_.tally() + prism_.tally();
}

sim::Task<void> SyncClient::Backoff(int attempt, obs::OpTimeline* op) {
  sim::Duration d = std::min<sim::Duration>(
      server_->options().backoff_cap,
      server_->options().backoff_base << std::min(attempt, 6));
  d += static_cast<sim::Duration>(
      rng_.NextBelow(static_cast<uint64_t>(d) / 2 + 1));
  obs::SwitchOp(op, obs::Phase::kSyncSpin, fabric_->sim(self_)->Now());
  co_await sim::SleepFor(fabric_->sim(self_), d);
  obs::SwitchOp(op, obs::Phase::kApp, fabric_->sim(self_)->Now());
}

sim::Task<Result<uint64_t>> SyncClient::LocateSlot(uint64_t key,
                                                  obs::OpTimeline* op) {
  auto it = slot_cache_.find(key);
  if (it != slot_cache_.end()) co_return it->second;
  // Branch, don't ternary: co_await inside a conditional expression
  // miscompiles on GCC 12 (the discarded branch's temporary is destroyed
  // twice, corrupting the coroutine frame).
  Result<uint64_t> slot = NotFound("unprobed");
  if (scheme_ == SyncScheme::kPrismNative) {
    slot = co_await ProbeChain(key, op);
  } else {
    slot = co_await ProbeVerbs(key, op);
  }
  if (slot.ok()) slot_cache_[key] = *slot;
  co_return slot;
}

sim::Task<Result<uint64_t>> SyncClient::ProbeVerbs(uint64_t key,
                                                   obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  const uint64_t home = server_->HashSlot(key);
  for (int p = 0; p < opts.max_probes; ++p) {
    const uint64_t slot = (home + p) & (opts.n_slots - 1);
    probe_rounds_++;
    Arm(op);
    auto r = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                 server_->slot_addr(slot) + kKeyOff, 8);
    round_trips_++;
    if (!r.ok()) co_return r.status();
    const uint64_t resident = LoadU64(r->data());
    if (resident == key) co_return slot;
    if (resident == 0) break;
  }
  co_return NotFound("key not in index");
}

// PRISM probe: one chain READs every candidate key word of the linear-probe
// window in a single round trip.
sim::Task<Result<uint64_t>> SyncClient::ProbeChain(uint64_t key,
                                                   obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  const uint64_t home = server_->HashSlot(key);
  core::Chain chain;
  for (int p = 0; p < opts.max_probes; ++p) {
    const uint64_t slot = (home + p) & (opts.n_slots - 1);
    chain.push_back(Op::Read(server_->rkey(),
                             server_->slot_addr(slot) + kKeyOff, 8));
  }
  probe_rounds_++;
  Arm(op);
  auto r = co_await prism_.Execute(&server_->prism(), std::move(chain));
  round_trips_++;
  if (!r.ok()) co_return r.status();
  for (int p = 0; p < opts.max_probes; ++p) {
    const core::OpResult& res = (*r)[static_cast<size_t>(p)];
    if (!res.status.ok() || res.data.size() != 8) continue;
    const uint64_t resident = LoadU64(res.data.data());
    if (resident == key) co_return (home + p) & (opts.n_slots - 1);
    if (resident == 0) break;
  }
  co_return NotFound("key not in index");
}

// ---- spinlock-word helpers ----

sim::Task<Result<uint64_t>> SyncClient::AcquireSpin(rdma::Addr slot,
                                                   obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    // The first CAS is the acquisition any scheme would pay (wire); every
    // retry is remote lock polling, so its whole round trip bills to
    // sync_spin: stamp the phase and leave the verb un-armed.
    if (attempt == 0) {
      Arm(op);
    } else {
      obs::SwitchOp(op, obs::Phase::kSyncSpin, fabric_->sim(self_)->Now());
      Arm(nullptr);
    }
    auto old = co_await rdma_.CompareSwap(&server_->rdma(), server_->rkey(),
                                          slot + kLockOff, 0, id_);
    round_trips_++;
    if (old.ok() && *old == 0) co_return static_cast<uint64_t>(id_);
    if (old.ok()) lock_conflicts_++;
    co_await Backoff(attempt, op);
  }
  co_return Aborted("spinlock: could not acquire");
}

sim::Task<void> SyncClient::ReleaseSpin(rdma::Addr slot,
                                        obs::OpTimeline* op) {
  Arm(op);
  (void)co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                             slot + kLockOff, Word(0));
  round_trips_++;
}

sim::Task<Result<uint64_t>> SyncClient::AcquireLease(rdma::Addr slot,
                                                     obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  const uint64_t term_us =
      static_cast<uint64_t>(opts.lease_term) / 1000;
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    const uint64_t now_us =
        static_cast<uint64_t>(fabric_->sim(self_)->Now()) / 1000;
    const uint64_t mine = PackLease(id_, now_us + term_us);
    // Same attribution rule as AcquireSpin: first attempt is wire, retries
    // (including their steal CASes) are lock polling billed to sync_spin.
    if (attempt == 0) {
      Arm(op);
    } else {
      obs::SwitchOp(op, obs::Phase::kSyncSpin, fabric_->sim(self_)->Now());
      Arm(nullptr);
    }
    auto old = co_await rdma_.CompareSwap(&server_->rdma(), server_->rkey(),
                                          slot + kLockOff, 0, mine);
    round_trips_++;
    if (old.ok() && *old == 0) co_return mine;
    if (old.ok() && *old != 0) {
      const uint64_t seen = *old;
      if (fabric_->sim(self_)->Now() > LeaseExpiryNs(seen)) {
        // Expired: steal with a CAS conditioned on the exact stale word, so
        // concurrent stealers can't both win.
        if (attempt == 0) Arm(op);
        auto stolen = co_await rdma_.CompareSwap(
            &server_->rdma(), server_->rkey(), slot + kLockOff, seen, mine);
        round_trips_++;
        if (stolen.ok() && *stolen == seen) {
          lease_steals_++;
          co_return mine;
        }
      }
      lock_conflicts_++;
    }
    co_await Backoff(attempt, op);
  }
  co_return Aborted("lease: could not acquire");
}

sim::Task<void> SyncClient::ReleaseLease(rdma::Addr slot, uint64_t lease_word,
                                         obs::OpTimeline* op) {
  // CAS, not WRITE: if the lease was stolen after expiry the release must
  // fail harmlessly instead of clobbering the successor's lease.
  Arm(op);
  (void)co_await rdma_.CompareSwap(&server_->rdma(), server_->rkey(),
                                   slot + kLockOff, lease_word, 0);
  round_trips_++;
}

// ---- per-scheme updates ----

sim::Task<SyncClient::UpdateOutcome> SyncClient::UpdateLocked(
    rdma::Addr slot, Bytes value, obs::OpTimeline* op) {
  Status acq = (co_await AcquireSpin(slot, op)).status();
  if (!acq.ok()) co_return UpdateOutcome{acq, Applied::kNo};
  if (critical_stall_ > 0) {
    co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
  }
  Arm(op);
  Status s = co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                                  slot + kValueOff, std::move(value));
  round_trips_++;
  co_await ReleaseSpin(slot, op);
  if (s.ok()) co_return UpdateOutcome{OkStatus(), Applied::kYes};
  co_return UpdateOutcome{
      s, s.code() == Code::kUnavailable ? Applied::kNo : Applied::kMaybe};
}

sim::Task<SyncClient::UpdateOutcome> SyncClient::UpdateLease(
    rdma::Addr slot, Bytes value, obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  // A fencing abort is a failed attempt: release (if still ours) and retry
  // with a fresh lease.
  for (int round = 0; round < 4; ++round) {
    auto lease = co_await AcquireLease(slot, op);
    if (!lease.ok()) co_return UpdateOutcome{lease.status(), Applied::kNo};
    if (critical_stall_ > 0) {
      co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
    }
    // Self-fencing: only post the value write while safely inside the
    // lease. A holder that stalled past (expiry - guard) must assume a
    // successor stole the lease and may already be writing.
    if (fabric_->sim(self_)->Now() + opts.lease_guard >=
        LeaseExpiryNs(*lease)) {
      fencing_aborts_++;
      co_await ReleaseLease(slot, *lease, op);
      continue;
    }
    Arm(op);
    Status s = co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                                    slot + kValueOff, value);
    round_trips_++;
    co_await ReleaseLease(slot, *lease, op);
    if (s.ok()) co_return UpdateOutcome{OkStatus(), Applied::kYes};
    co_return UpdateOutcome{
        s, s.code() == Code::kUnavailable ? Applied::kNo : Applied::kMaybe};
  }
  co_return UpdateOutcome{Aborted("lease: fenced out"), Applied::kNo};
}

sim::Task<SyncClient::UpdateOutcome> SyncClient::UpdateOptimistic(
    rdma::Addr slot, Bytes value, obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    Arm(op);
    auto vr = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                  slot + kVersionOff, 8);
    round_trips_++;
    if (!vr.ok()) {
      co_await Backoff(attempt, op);
      continue;
    }
    const uint64_t v = LoadU64(vr->data());
    if (v & 1) {  // writer in progress
      lock_conflicts_++;
      co_await Backoff(attempt, op);
      continue;
    }
    Arm(op);
    auto cas = co_await rdma_.CompareSwap(&server_->rdma(), server_->rkey(),
                                          slot + kVersionOff, v, v + 1);
    round_trips_++;
    if (!cas.ok()) {
      // The CAS may have landed (response lost): the slot could now be odd
      // under our name, but the value was never written — no effect.
      co_return UpdateOutcome{cas.status(), Applied::kNo};
    }
    if (*cas != v) {
      lock_conflicts_++;
      co_await Backoff(attempt, op);
      continue;
    }
    if (critical_stall_ > 0) {
      co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
    }
    Arm(op);
    Status s = co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                                    slot + kValueOff, std::move(value));
    round_trips_++;
    if (!s.ok()) {
      co_return UpdateOutcome{
          s, s.code() == Code::kUnavailable ? Applied::kNo : Applied::kMaybe};
    }
    Arm(op);
    (void)co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                               slot + kVersionOff, Word(v + 2));
    round_trips_++;
    co_return UpdateOutcome{OkStatus(), Applied::kYes};
  }
  co_return UpdateOutcome{Aborted("optimistic: version race"), Applied::kNo};
}

// PRISM-native: lock + write + unlock fused into one conditional chain —
// one round trip per attempt, vs the spinlock's three.
sim::Task<SyncClient::UpdateOutcome> SyncClient::UpdatePrism(
    rdma::Addr slot, Bytes value, obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    core::Chain chain;
    chain.push_back(Op::CompareSwapCas(
        server_->rkey(), slot + kLockOff, /*compare=*/Word(0),
        /*swap=*/Word(id_), Bytes(8, 0xff), Bytes(8, 0xff)));
    chain.push_back(
        Op::Write(server_->rkey(), slot + kValueOff, value).Conditional());
    chain.push_back(
        Op::Write(server_->rkey(), slot + kLockOff, Word(0)).Conditional());
    Arm(op);
    auto r = co_await prism_.Execute(&server_->prism(), std::move(chain));
    round_trips_++;
    if (!r.ok()) co_return UpdateOutcome{r.status(), Applied::kMaybe};
    if ((*r)[0].Successful(OpCode::kCas)) {
      if ((*r)[1].Successful(OpCode::kWrite)) {
        co_return UpdateOutcome{OkStatus(), Applied::kYes};
      }
      co_return UpdateOutcome{(*r)[1].status, Applied::kMaybe};
    }
    lock_conflicts_++;
    co_await Backoff(attempt, op);
  }
  co_return UpdateOutcome{Aborted("prism: could not acquire"), Applied::kNo};
}

// The guideline violation: value-lo, value-hi, and the unlock are posted
// back-to-back with no completion fences between them ("the QP executes in
// order, why wait?"). The canonical schedule does execute them in post
// order; a bounded reordering that delays one half past the unlock lets the
// next lock holder interleave with the torn write.
sim::Task<SyncClient::UpdateOutcome> SyncClient::UpdateUnfenced(
    rdma::Addr slot, Bytes value, obs::OpTimeline* op) {
  Status acq = (co_await AcquireSpin(slot, op)).status();
  if (!acq.ok()) co_return UpdateOutcome{acq, Applied::kNo};
  if (critical_stall_ > 0) {
    co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
  }
  struct Pipelined {
    Status lo, hi;
  };
  auto st = std::make_shared<Pipelined>();
  auto all = std::make_shared<sim::Quorum>(fabric_->sim(self_), 3, 3);
  const uint64_t lo = LoadU64(value.data());
  const uint64_t hi = LoadU64(value.data() + 8);
  // The pipelined verbs run concurrently against ONE op timeline: each
  // re-arms before posting, so phase attribution is last-stamp-wins here —
  // the telescoping sum stays exact regardless.
  sim::Spawn([this, slot, lo, st, all, op]() -> sim::Task<void> {
    Arm(op);
    st->lo = co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                                  slot + kValueOff, Word(lo));
    round_trips_++;
    all->Arrive(true);
  });
  co_await sim::SleepFor(fabric_->sim(self_), sim::Nanos(80));
  sim::Spawn([this, slot, hi, st, all, op]() -> sim::Task<void> {
    Arm(op);
    st->hi = co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                                  slot + kValueOff + 8, Word(hi));
    round_trips_++;
    all->Arrive(true);
  });
  co_await sim::SleepFor(fabric_->sim(self_), sim::Nanos(80));
  sim::Spawn([this, slot, all, op]() -> sim::Task<void> {
    Arm(op);
    (void)co_await rdma_.Write(&server_->rdma(), server_->rkey(),
                               slot + kLockOff, Word(0));
    round_trips_++;
    all->Arrive(true);
  });
  co_await all->Wait();
  if (st->lo.ok() && st->hi.ok()) {
    co_return UpdateOutcome{OkStatus(), Applied::kYes};
  }
  const bool definitely_not =
      st->lo.code() == Code::kUnavailable && st->hi.code() == Code::kUnavailable;
  co_return UpdateOutcome{st->lo.ok() ? st->hi : st->lo,
                          definitely_not ? Applied::kNo : Applied::kMaybe};
}

// ---- per-scheme reads ----

sim::Task<Result<Bytes>> SyncClient::ReadLocked(rdma::Addr slot,
                                                obs::OpTimeline* op) {
  Status acq = (co_await AcquireSpin(slot, op)).status();
  if (!acq.ok()) co_return acq;
  if (critical_stall_ > 0) {
    co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
  }
  Arm(op);
  auto r = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                               slot + kValueOff, kValueSize);
  round_trips_++;
  co_await ReleaseSpin(slot, op);
  co_return r;
}

sim::Task<Result<Bytes>> SyncClient::ReadLease(rdma::Addr slot,
                                               obs::OpTimeline* op) {
  auto lease = co_await AcquireLease(slot, op);
  if (!lease.ok()) co_return lease.status();
  if (critical_stall_ > 0) {
    co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
  }
  Arm(op);
  auto r = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                               slot + kValueOff, kValueSize);
  round_trips_++;
  co_await ReleaseLease(slot, *lease, op);
  co_return r;
}

sim::Task<Result<Bytes>> SyncClient::ReadOptimistic(rdma::Addr slot,
                                                    obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    Arm(op);
    auto v1r = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                   slot + kVersionOff, 8);
    round_trips_++;
    if (!v1r.ok()) {
      co_await Backoff(attempt, op);
      continue;
    }
    const uint64_t v1 = LoadU64(v1r->data());
    if (v1 & 1) {
      optimistic_retries_++;
      co_await Backoff(attempt, op);
      continue;
    }
    if (critical_stall_ > 0) {
      co_await sim::SleepFor(fabric_->sim(self_), critical_stall_);
    }
    Arm(op);
    auto val = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                   slot + kValueOff, kValueSize);
    round_trips_++;
    if (!val.ok()) {
      co_await Backoff(attempt, op);
      continue;
    }
    Arm(op);
    auto v2r = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                   slot + kVersionOff, 8);
    round_trips_++;
    if (v2r.ok() && LoadU64(v2r->data()) == v1) co_return val;
    optimistic_retries_++;
  }
  co_return Aborted("optimistic: read validation kept failing");
}

sim::Task<Result<Bytes>> SyncClient::ReadPrism(rdma::Addr slot,
                                               obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    core::Chain chain;
    chain.push_back(Op::CompareSwapCas(
        server_->rkey(), slot + kLockOff, /*compare=*/Word(0),
        /*swap=*/Word(id_), Bytes(8, 0xff), Bytes(8, 0xff)));
    chain.push_back(Op::Read(server_->rkey(), slot + kValueOff, kValueSize)
                        .Conditional());
    chain.push_back(
        Op::Write(server_->rkey(), slot + kLockOff, Word(0)).Conditional());
    Arm(op);
    auto r = co_await prism_.Execute(&server_->prism(), std::move(chain));
    round_trips_++;
    if (!r.ok()) co_return r.status();
    if ((*r)[0].Successful(OpCode::kCas)) {
      if ((*r)[1].Successful(OpCode::kRead)) co_return (*r)[1].data;
      co_return (*r)[1].status;
    }
    lock_conflicts_++;
    co_await Backoff(attempt, op);
  }
  co_return Aborted("prism: could not acquire");
}

// Buggy read path — the literal "unfenced read-after-lock" from the
// guidelines study: the lock CAS and both value reads are posted in one
// doorbell batch, and the CAS outcome is only inspected after everything
// completes ("the QP executes them in order, the reads are covered").
// In-order execution does make every canonical schedule clean: if the CAS
// succeeded the reads executed right behind it under the lock, and if it
// failed the reads are discarded. But the reads are NOT fenced on the CAS,
// so a bounded reordering can slide them around it — and around a previous
// holder's still-unfenced value writes — observing torn values.
sim::Task<Result<Bytes>> SyncClient::ReadUnfenced(rdma::Addr slot,
                                                  obs::OpTimeline* op) {
  const SyncOptions& opts = server_->options();
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    struct Pipelined {
      Result<uint64_t> cas = Aborted("pending");
      Result<Bytes> lo = Aborted("pending");
      Result<Bytes> hi = Aborted("pending");
    };
    auto st = std::make_shared<Pipelined>();
    auto all = std::make_shared<sim::Quorum>(fabric_->sim(self_), 3, 3);
    sim::Spawn([this, slot, st, all, op]() -> sim::Task<void> {
      Arm(op);
      st->cas = co_await rdma_.CompareSwap(&server_->rdma(), server_->rkey(),
                                           slot + kLockOff, 0, id_);
      round_trips_++;
      all->Arrive(true);
    });
    co_await sim::SleepFor(fabric_->sim(self_), sim::Nanos(80));
    sim::Spawn([this, slot, st, all, op]() -> sim::Task<void> {
      Arm(op);
      st->lo = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                   slot + kValueOff, 8);
      round_trips_++;
      all->Arrive(true);
    });
    co_await sim::SleepFor(fabric_->sim(self_), sim::Nanos(80));
    sim::Spawn([this, slot, st, all, op]() -> sim::Task<void> {
      Arm(op);
      st->hi = co_await rdma_.Read(&server_->rdma(), server_->rkey(),
                                   slot + kValueOff + 8, 8);
      round_trips_++;
      all->Arrive(true);
    });
    co_await all->Wait();
    if (st->cas.ok() && *st->cas == 0) {
      co_await ReleaseSpin(slot, op);
      if (st->lo.ok() && st->hi.ok()) {
        Bytes v(kValueSize);
        StoreU64(v.data(), LoadU64(st->lo->data()));
        StoreU64(v.data() + 8, LoadU64(st->hi->data()));
        co_return v;
      }
      co_return st->lo.ok() ? st->hi.status() : st->lo.status();
    }
    if (st->cas.ok()) lock_conflicts_++;
    // Aggressive retry (part of the scheme's "optimization"): a short
    // jittered pause instead of the exponential backoff the fenced
    // schemes use. Still acquisition spin for attribution purposes.
    obs::SwitchOp(op, obs::Phase::kSyncSpin, fabric_->sim(self_)->Now());
    co_await sim::SleepFor(
        fabric_->sim(self_),
        sim::Nanos(500 + static_cast<sim::Duration>(rng_.NextBelow(1500))));
    obs::SwitchOp(op, obs::Phase::kApp, fabric_->sim(self_)->Now());
  }
  co_return Aborted("unfenced: could not acquire");
}

// ---- public ops with history recording ----

sim::Task<Result<Bytes>> SyncClient::Read(uint64_t key) {
  // Capture the timed-op register before the first suspension (same
  // discipline as the span register); null when this op isn't timed.
  obs::OpTimeline* const op = fabric_->obs().current_op();
  check::HistoryRecorder* h = history_;
  size_t hid = 0;
  if (h != nullptr) {
    hid = h->Begin(history_client_, key, check::OpType::kRead);
  }
  Result<Bytes> r = Aborted("unreachable");
  auto slot = co_await LocateSlot(key, op);
  if (!slot.ok()) {
    r = slot.status();
  } else {
    const rdma::Addr addr = server_->slot_addr(*slot);
    switch (scheme_) {
      case SyncScheme::kSpinlock:
        r = co_await ReadLocked(addr, op);
        break;
      case SyncScheme::kOptimistic:
        r = co_await ReadOptimistic(addr, op);
        break;
      case SyncScheme::kLease:
        r = co_await ReadLease(addr, op);
        break;
      case SyncScheme::kPrismNative:
        r = co_await ReadPrism(addr, op);
        break;
      case SyncScheme::kUnfencedBuggy:
        r = co_await ReadUnfenced(addr, op);
        break;
    }
  }
  if (h != nullptr) {
    // A failed read observed nothing and had no effect: kFailed is sound.
    if (r.ok()) {
      h->End(hid, check::Outcome::kOk, check::IdOf(*r));
    } else {
      h->End(hid, check::Outcome::kFailed);
    }
  }
  co_return r;
}

sim::Task<Status> SyncClient::Update(uint64_t key, Bytes value) {
  PRISM_CHECK_EQ(value.size(), kValueSize);
  obs::OpTimeline* const op = fabric_->obs().current_op();
  check::HistoryRecorder* h = history_;
  size_t hid = 0;
  if (h != nullptr) {
    hid = h->Begin(history_client_, key, check::OpType::kWrite,
                   check::IdOf(value));
  }
  UpdateOutcome out{Aborted("unreachable"), Applied::kNo};
  auto slot = co_await LocateSlot(key, op);
  if (!slot.ok()) {
    out.status = slot.status();
  } else {
    const rdma::Addr addr = server_->slot_addr(*slot);
    switch (scheme_) {
      case SyncScheme::kSpinlock:
        out = co_await UpdateLocked(addr, std::move(value), op);
        break;
      case SyncScheme::kOptimistic:
        out = co_await UpdateOptimistic(addr, std::move(value), op);
        break;
      case SyncScheme::kLease:
        out = co_await UpdateLease(addr, std::move(value), op);
        break;
      case SyncScheme::kPrismNative:
        out = co_await UpdatePrism(addr, std::move(value), op);
        break;
      case SyncScheme::kUnfencedBuggy:
        out = co_await UpdateUnfenced(addr, std::move(value), op);
        break;
    }
  }
  if (h != nullptr) {
    switch (out.applied) {
      case Applied::kYes:
        h->End(hid, check::Outcome::kOk);
        break;
      case Applied::kNo:
        h->End(hid, check::Outcome::kFailed);
        break;
      case Applied::kMaybe:
        h->End(hid, check::Outcome::kIndeterminate);
        break;
    }
  }
  co_return out.status;
}

}  // namespace prism::sync
