// One-sided synchronization schemes over a remotely-traversed hash index.
//
// The index is a fixed-geometry open-addressing (linear probe) hash table
// living in ONE host's registered memory; clients on other hosts traverse
// and mutate it purely with one-sided verbs (src/rdma) or PRISM chains
// (src/prism) — the server CPU never touches requests. This reproduces the
// scheme spectrum of the SIGMOD 2023 synchronization-guidelines study
// (SNIPPETS.md): schemes differ wildly in round trips per op, and subtly
// wrong ones corrupt data only under rare interleavings.
//
// Slot layout (64 B stride, offsets from slot base):
//   [lock u64][key u64][version u64][value lo u64][value hi u64][pad 24 B]
//
//   lock     spinlock/buggy/PRISM: 0 = free, else the holder's client id.
//            lease scheme: packed ⟨expiry µs << 16 | owner⟩, 0 = free.
//   key      0 = empty slot (keys are nonzero); ends a probe chain.
//   version  seqlock word for the optimistic scheme: even = stable,
//            odd = writer in progress. Other schemes leave it 0.
//   value    fixed 16-byte value as two words. Two words (not one) on
//            purpose: torn values — one word from each of two writes —
//            are how unfenced schemes corrupt, and the linearizability
//            checker sees a torn value as an unwritten ValueId.
//
// The scheme spectrum (all operate on the same slots):
//   kSpinlock     CAS(lock, 0→id) + exponential backoff; READ/WRITE the
//                 value under the lock; WRITE(lock=0) to release. Every
//                 step awaits the previous one's completion (fenced).
//   kOptimistic   seqlock-style: readers are lock-free (read version,
//                 read value, re-read version, retry on mismatch/odd);
//                 writers CAS the version even→odd, write, write even.
//   kLease        lock word carries ⟨owner, expiry⟩; an expired lease can
//                 be stolen with CAS(seen→mine). Holders self-fence: a
//                 value write is only posted while now + guard < expiry,
//                 so a stalled holder aborts instead of scribbling over a
//                 successor. Sound while guard exceeds the post→effect
//                 latency bound (see DESIGN.md §5.7 admissibility notes).
//   kPrismNative  PRISM conditional chains fuse lock+op+unlock into ONE
//                 round trip: [CAS(lock,0→id); cond WRITE/READ(value);
//                 cond WRITE(lock,0)]. Chain ops interleave with other
//                 chains at op granularity, so the CAS still excludes.
//   kUnfencedBuggy  the positive control, violating the study's fencing
//                 guideline: after acquiring the lock it posts the two
//                 value-word verbs AND the unlock concurrently (doorbell-
//                 pipelined, no completion fences), trusting in-order
//                 execution. The canonical schedule delivers and executes
//                 them in post order — every unperturbed seed is clean —
//                 but bounded reordering (src/explore) can land the unlock
//                 or a reader's verbs between the halves, producing torn
//                 values that only the checkers catch.
//
// Every client op records an invocation/response entry in an optional
// check::HistoryRecorder, so src/check's linearizability checker and the
// differential final-state oracle apply to all schemes uniformly.
#ifndef PRISM_SRC_SYNC_SYNC_H_
#define PRISM_SRC_SYNC_SYNC_H_

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/check/history.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/prism/service.h"
#include "src/rdma/service.h"
#include "src/sim/task.h"

namespace prism::sync {

enum class SyncScheme {
  kSpinlock,
  kOptimistic,
  kLease,
  kPrismNative,
  kUnfencedBuggy,
};

std::string_view SchemeName(SyncScheme scheme);

struct SyncOptions {
  uint64_t n_slots = 64;  // power of two
  int max_probes = 8;     // linear-probe cap before kNotFound
  int max_attempts = 24;  // lock/CAS/read-validate attempts before kAborted
  sim::Duration backoff_base = sim::Micros(2);
  sim::Duration backoff_cap = sim::Micros(128);
  // Lease scheme: term granted per acquire, and the self-fencing guard — a
  // holder refuses to post a value write within `lease_guard` of expiry.
  sim::Duration lease_term = sim::Micros(400);
  sim::Duration lease_guard = sim::Micros(80);
  rdma::Backend backend = rdma::Backend::kHardwareNic;
  core::Deployment deployment = core::Deployment::kHardwareProjected;
};

// Values are fixed 16-byte two-word payloads.
inline constexpr uint64_t kValueSize = 16;
inline constexpr uint64_t kSlotStride = 64;
inline constexpr uint64_t kLockOff = 0;
inline constexpr uint64_t kKeyOff = 8;
inline constexpr uint64_t kVersionOff = 16;
inline constexpr uint64_t kValueOff = 24;

// A 16-byte value whose BOTH words are unique to (seed, client, op): torn
// combinations of two such values fingerprint to a ValueId no writer ever
// recorded. (The chaos_test-style UniqueValue keeps its first word constant
// per run, which would make tears invisible.)
Bytes MakeValue(uint64_t seed, int client, int op);
// The value every key is preloaded with (same bytes for all keys, so one
// initial ValueId covers the whole history).
Bytes InitialValue();

class SyncIndexServer {
 public:
  SyncIndexServer(net::Fabric* fabric, net::HostId host, SyncOptions opts);

  net::HostId host() const { return host_; }
  const SyncOptions& options() const { return opts_; }
  rdma::RdmaService& rdma() { return *rdma_; }
  core::PrismServer& prism() { return *prism_; }
  rdma::RKey rkey() const { return region_.rkey; }
  rdma::Addr slot_addr(uint64_t slot) const {
    return region_.base + slot * kSlotStride;
  }
  uint64_t HashSlot(uint64_t key) const;

  // Setup-time bulk load (server-local, models the load phase). Keys must
  // be nonzero.
  Status LoadKey(uint64_t key, ByteView value);
  // Server-local probe; kNotFound when absent.
  Result<uint64_t> SlotOf(uint64_t key) const;

  // Direct (quiescent) reads for the final-state oracle and tests.
  check::ValueId FinalValue(uint64_t key) const;
  Bytes ValueBytes(uint64_t key) const;
  uint64_t LockWord(uint64_t key) const;
  uint64_t VersionWord(uint64_t key) const;

 private:
  SyncOptions opts_;
  net::HostId host_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<rdma::RdmaService> rdma_;
  std::unique_ptr<core::PrismServer> prism_;
  rdma::MemoryRegion region_;
};

class SyncClient {
 public:
  SyncClient(net::Fabric* fabric, net::HostId self, SyncIndexServer* server,
             SyncScheme scheme, uint16_t client_id, uint64_t rng_seed);

  SyncScheme scheme() const { return scheme_; }

  // Reads the key's 16-byte value. kAborted after max_attempts lost races.
  sim::Task<Result<Bytes>> Read(uint64_t key);
  // Overwrites the key's value (must be kValueSize bytes).
  sim::Task<Status> Update(uint64_t key, Bytes value);

  // When set, every Read/Update records an invocation/response entry for
  // offline linearizability checking.
  void set_history(check::HistoryRecorder* history, int client_id) {
    history_ = history;
    history_client_ = client_id;
  }

  // Routes verb/chain posting through a shared per-host batcher.
  void set_batcher(rdma::VerbBatcher* b) {
    rdma_.set_batcher(b);
    prism_.set_batcher(b);
  }

  // Pre-populates the key→slot cache from the server's loaded geometry
  // (models clients learning the table layout at connection setup). Without
  // it the first op on a key pays the remote probe round trips.
  void Prewarm(uint64_t key);

  // Test knob: sleep this long inside every critical section, between
  // acquiring the lock/version and posting the value write. Drives the
  // lease-expiry/fencing and optimistic-retry tests. Ignored by
  // kPrismNative (its critical section lives inside one chain).
  void set_critical_stall(sim::Duration d) { critical_stall_ = d; }

  // ---- stats ----
  uint64_t round_trips() const { return round_trips_; }
  uint64_t lock_conflicts() const { return lock_conflicts_; }
  uint64_t optimistic_retries() const { return optimistic_retries_; }
  uint64_t lease_steals() const { return lease_steals_; }
  uint64_t fencing_aborts() const { return fencing_aborts_; }
  uint64_t probe_rounds() const { return probe_rounds_; }
  // Combined transport tally (verbs + chains) for complexity accounting.
  obs::TransportTally tally() const;

 private:
  enum class Applied { kNo, kYes, kMaybe };
  struct UpdateOutcome {
    Status status;
    Applied applied = Applied::kNo;
  };
  struct ReadOutcome {
    Result<Bytes> value;
    explicit ReadOutcome(Result<Bytes> v) : value(std::move(v)) {}
  };

  // Latency attribution (src/obs/timeline.h): a sync op is a composite of
  // many verbs/chains with suspensions between them, and the hub's
  // current-op register only survives synchronous handoffs — so the op
  // pointer captured at Read/Update entry is threaded explicitly and
  // re-armed (Arm) immediately before every verb/chain call. Backoff and
  // the unfenced scheme's jittered retry pause stamp Phase::kSyncSpin; the
  // verbs themselves stamp batch_wait/wire/responder as usual. All of it is
  // inert (null op) outside a timed workload.
  void Arm(obs::OpTimeline* op) { fabric_->obs().SetCurrentOp(op); }

  sim::Task<Result<uint64_t>> LocateSlot(uint64_t key, obs::OpTimeline* op);
  sim::Task<Result<uint64_t>> ProbeVerbs(uint64_t key, obs::OpTimeline* op);
  sim::Task<Result<uint64_t>> ProbeChain(uint64_t key, obs::OpTimeline* op);

  // Lock-word helpers (spinlock / buggy / lease).
  sim::Task<Result<uint64_t>> AcquireSpin(rdma::Addr slot,
                                          obs::OpTimeline* op);
  sim::Task<Result<uint64_t>> AcquireLease(rdma::Addr slot,
                                           obs::OpTimeline* op);  // → lease
  sim::Task<void> ReleaseSpin(rdma::Addr slot, obs::OpTimeline* op);
  sim::Task<void> ReleaseLease(rdma::Addr slot, uint64_t lease_word,
                               obs::OpTimeline* op);

  sim::Task<UpdateOutcome> UpdateLocked(rdma::Addr slot, Bytes value,
                                        obs::OpTimeline* op);
  sim::Task<UpdateOutcome> UpdateLease(rdma::Addr slot, Bytes value,
                                       obs::OpTimeline* op);
  sim::Task<UpdateOutcome> UpdateOptimistic(rdma::Addr slot, Bytes value,
                                            obs::OpTimeline* op);
  sim::Task<UpdateOutcome> UpdatePrism(rdma::Addr slot, Bytes value,
                                       obs::OpTimeline* op);
  sim::Task<UpdateOutcome> UpdateUnfenced(rdma::Addr slot, Bytes value,
                                          obs::OpTimeline* op);

  sim::Task<Result<Bytes>> ReadLocked(rdma::Addr slot, obs::OpTimeline* op);
  sim::Task<Result<Bytes>> ReadLease(rdma::Addr slot, obs::OpTimeline* op);
  sim::Task<Result<Bytes>> ReadOptimistic(rdma::Addr slot,
                                          obs::OpTimeline* op);
  sim::Task<Result<Bytes>> ReadPrism(rdma::Addr slot, obs::OpTimeline* op);
  sim::Task<Result<Bytes>> ReadUnfenced(rdma::Addr slot,
                                        obs::OpTimeline* op);

  sim::Task<void> Backoff(int attempt, obs::OpTimeline* op);

  net::Fabric* fabric_;
  net::HostId self_;
  SyncIndexServer* server_;
  SyncScheme scheme_;
  uint16_t id_;  // nonzero; doubles as the lock owner word
  Rng rng_;
  rdma::RdmaClient rdma_;
  core::PrismClient prism_;
  std::unordered_map<uint64_t, uint64_t> slot_cache_;
  check::HistoryRecorder* history_ = nullptr;
  int history_client_ = 0;
  sim::Duration critical_stall_ = 0;

  uint64_t round_trips_ = 0;
  uint64_t lock_conflicts_ = 0;
  uint64_t optimistic_retries_ = 0;
  uint64_t lease_steals_ = 0;
  uint64_t fencing_aborts_ = 0;
  uint64_t probe_rounds_ = 0;
};

}  // namespace prism::sync

#endif  // PRISM_SRC_SYNC_SYNC_H_
