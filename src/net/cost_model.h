// The calibrated timing model for the simulated testbed.
//
// Every constant is nanoseconds (sim::Duration) and is calibrated against a
// measurement the PRISM paper itself reports (see DESIGN.md §4 and
// tests/calibration_test.cc). The presets mirror the paper's two setups:
//
//  * Fig1DirectTestbed(): two machines, Mellanox ConnectX-5 25 GbE, direct
//    cable (no switch). Baseline one-sided RDMA op: 2.5 µs (§4.3, Fig. 1).
//  * EvalCluster40G(): the 12-machine evaluation cluster, 40 GbE through one
//    Arista ToR switch (0.6 µs). One-sided READ ≈ 3.2 µs and 512 B eRPC
//    ≈ 5.6 µs (§2.1); 16 dedicated server cores (§6.2).
//
// Component decomposition follows the paper's §4.2/§4.3 discussion: NIC
// processing, PCIe round trips (Neugebauer et al. give ~0.9 µs), software
// dispatch premium of 2.5–2.8 µs, and the BlueField's slow cores plus ~3 µs
// off-path access to host memory.
#ifndef PRISM_SRC_NET_COST_MODEL_H_
#define PRISM_SRC_NET_COST_MODEL_H_

#include <cstddef>

#include "src/sim/time.h"

namespace prism::net {

struct CostModel {
  // ---- fabric ----
  double link_gbps = 40.0;            // per-direction host link bandwidth
  sim::Duration propagation = sim::Nanos(600);  // one-way, incl. switches
  size_t header_bytes = 60;           // Eth+IP+UDP+BTH-equivalent per message

  // Wire loss/corruption, recovered by the transport's retransmission
  // machinery (§4.2: NICs already handle "loss, corruption, and timeout"
  // below the op layer, so PRISM ops stay exactly-once). A lost message is
  // retried after retransmit_timeout, up to max_retransmits times.
  double loss_probability = 0.0;
  sim::Duration retransmit_timeout = sim::Micros(20);
  int max_retransmits = 10;

  // ---- hardware RDMA datapath ----
  sim::Duration client_post = sim::Nanos(350);   // post WR + doorbell + TX
  sim::Duration nic_process = sim::Nanos(300);   // per-op RX pipeline slot
  sim::Duration pcie_read_rtt = sim::Nanos(900); // DMA read of host memory
  sim::Duration pcie_write = sim::Nanos(700);    // posted DMA write
  sim::Duration atomic_overhead = sim::Nanos(200);  // CAS/FAA ALU + lock
  sim::Duration completion = sim::Nanos(350);    // client CQE poll/dispatch
  int nic_pipeline_units = 8;                    // parallel NIC PUs
  // Amortized verb-layer batching costs (Storm-style): a doorbell-batched
  // post charges one client_post for the ring plus doorbell_per_wr for each
  // additional WR in the batch; a moderated CQ drain charges one completion
  // plus cqe_poll for each additional CQE reaped in the same drain.
  sim::Duration doorbell_per_wr = sim::Nanos(40);  // extra WR in one ring
  sim::Duration cqe_poll = sim::Nanos(50);         // extra CQE in one drain

  // ---- software PRISM / RPC datapath (Snap/eRPC-style, §4.1) ----
  int server_cores = 16;                          // dedicated cores (§6.2)
  sim::Duration sw_ring_dma = sim::Nanos(450);    // NIC -> rx ring
  // The software stack's *latency* is dispatch-dominated (one poll/parse/
  // steer per chain) with a small per-primitive increment — §6.2's PUT (a
  // 3-op chain) costs about the same round trip as a 1-op GET. Part of the
  // dispatch latency is pipelined polling/queueing that does NOT occupy a
  // core (sw_queue_delay); only sw_dispatch + per-op time hold a core.
  // 16 cores / 0.8 µs per 1-op chain ≈ 20 Mops of chain capacity — enough
  // for every application to reach line rate, as §6.2 reports ("sufficient
  // to achieve line rate for both systems").
  sim::Duration sw_queue_delay = sim::Nanos(2100);  // pipelined rx queueing
  sim::Duration sw_dispatch = sim::Nanos(600);    // core-held parse + steer
  sim::Duration sw_primitive = sim::Nanos(200);   // per-PRISM-op execution
  sim::Duration sw_tx = sim::Nanos(300);          // hand reply back to NIC
  sim::Duration sw_scan_per_kb = sim::Nanos(100);   // pattern-search scan rate
  sim::Duration rpc_dispatch = sim::Nanos(1500);  // eRPC rx poll + steer
  sim::Duration rpc_handler = sim::Nanos(1300);   // two-sided app handler

  // Application-level checksum verification (client CPU). Pilaf checks one
  // CRC per READ; §6.2 attributes ~2 µs of its GET latency to them.
  sim::Duration app_crc_check = sim::Nanos(1000);

  // ---- projected PRISM hardware NIC (§4.2) ----
  sim::Duration hw_freelist_pop = sim::Nanos(150);   // SRQ-style buffer pop
  sim::Duration hw_chain_step = sim::Nanos(100);     // per chained op setup
  sim::Duration on_nic_mem_access = sim::Nanos(100); // 256 KB on-NIC SRAM

  // ---- BlueField-style off-path SmartNIC (§4.3 footnote 1) ----
  int bf_cores = 8;                                // ARM A72 @ 800 MHz
  sim::Duration bf_dispatch = sim::Nanos(3000);    // slow-core rx + parse
  sim::Duration bf_primitive = sim::Nanos(1500);   // per-op execution
  sim::Duration bf_host_mem_rtt = sim::Nanos(3000);  // internal RDMA to host

  // Wire time for a message of `payload` bytes including per-message header.
  sim::Duration SerializationDelay(size_t payload) const {
    double bits = static_cast<double>(payload + header_bytes) * 8.0;
    return static_cast<sim::Duration>(bits / link_gbps);  // Gb/s == bits/ns
  }

  size_t WireBytes(size_t payload) const { return payload + header_bytes; }

  // The smallest latency any cross-host message can experience: propagation
  // plus the wire time of an empty payload (headers still serialize). This
  // is the conservative lookahead bound the time-windowed parallel core
  // (src/sim/psim.h) relies on — a message sent at time t is never
  // delivered before t + MinCrossHostLatency(), so partitions may execute
  // [t, t + lookahead) without synchronizing. A degenerate model where this
  // is zero (no propagation, free headers) forces the single-partition
  // fallback instead of a deadlocked or busy-spinning barrier.
  sim::Duration MinCrossHostLatency() const {
    return propagation + SerializationDelay(0);
  }

  // ---- presets ----

  // Two ConnectX-5 25 GbE NICs, direct cable (Fig. 1 / Fig. 2 testbed).
  static CostModel Fig1DirectTestbed() {
    CostModel m;
    m.link_gbps = 25.0;
    m.propagation = sim::Nanos(200);  // PHY+MAC both ends, no switch
    return m;
  }

  // 12-machine 40 GbE cluster behind one Arista 7050QX ToR (§5).
  static CostModel EvalCluster40G() {
    CostModel m;
    m.link_gbps = 40.0;
    m.propagation = sim::Nanos(600);  // NIC PHY/MAC + 0.6 µs ToR, one way
    return m;
  }

  // Figure 2's synthetic network tiers layered on the direct testbed.
  static CostModel RackScale() {     // single ToR: +0.6 µs
    CostModel m = Fig1DirectTestbed();
    m.propagation += sim::Nanos(600);
    return m;
  }
  static CostModel ClusterScale() {  // three-tier network: +3 µs
    CostModel m = Fig1DirectTestbed();
    m.propagation += sim::Micros(3);
    return m;
  }
  static CostModel DataCenterScale() {  // reported DC RDMA latency: +24 µs
    CostModel m = Fig1DirectTestbed();
    m.propagation += sim::Micros(24);
    return m;
  }
};

}  // namespace prism::net

#endif  // PRISM_SRC_NET_COST_MODEL_H_
