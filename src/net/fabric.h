// The simulated network fabric connecting hosts.
//
// The fabric models *timing only*: application payloads travel through C++
// closures while the fabric charges serialization (with FIFO queueing at the
// sender's egress and the receiver's ingress links), propagation, and
// delivery order. Server saturation in Figures 3–10 emerges from the ingress/
// egress byte accounting here.
//
// Link model (cut-through): a message of b bytes leaving src at time t
//   departs egress at  d  = max(t, egress.free);        egress.free = d + ser(b)
//   last bit arrives   a  = d + ser(b) + propagation
//   delivery completes r  = max(a, ingress.free + ser(b)); ingress.free = r
// so an uncontended message pays ser(b) exactly once end-to-end, while a
// contended ingress (many clients hammering one server) or egress (one server
// answering many clients) serializes at link bandwidth.
//
// Engines: a fabric is backed either by one serial sim::Simulator (the
// historical mode — every code path below is unchanged) or by a
// sim::ClusterSim that shards hosts across per-host engines on worker
// threads (DESIGN.md §5.8). Host-bound components ask for their engine with
// sim(host); in serial mode that is always the single shared simulator. In
// parallel mode cross-host sends resolve egress timing on the source's
// thread, travel as stamped sim::WireMsg records, and resolve ingress
// timing on the destination's thread at the next window barrier — in the
// canonical (send_when, src_host, send_seq) order, which is the serial
// global send order for all cross-window traffic. Fault injection, wire
// loss, tracing and exploration hooks all need the global serial order, so
// requesting any of them downgrades the cluster to its serial fallback
// before hosts are added.
#ifndef PRISM_SRC_NET_FABRIC_H_
#define PRISM_SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/net/cost_model.h"
#include "src/obs/obs.h"
#include "src/obs/timeline.h"
#include "src/sim/psim.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"

namespace prism::net {

using HostId = uint32_t;

class Fabric {
 public:
  Fabric(sim::Simulator* sim, CostModel model, uint64_t loss_seed = 0x10552)
      : sim_(sim), model_(model), loss_rng_(loss_seed) {
    // Fabric and Simulator both outlive the hub's registry, so they report
    // through a snapshot-time provider instead of owned slots.
    obs_.metrics().AddProvider(
        [this](obs::MetricsSnapshot& out) { CollectMetrics(out); });
  }

  // Cluster-backed fabric (intra-simulation parallelism). Degenerate cost
  // models and wire loss cannot run conservatively parallel, so they
  // downgrade the cluster here — before any host engine is handed out.
  Fabric(sim::ClusterSim* cluster, CostModel model, uint64_t loss_seed = 0x10552)
      : sim_(cluster->engine(0)),
        model_(model),
        loss_rng_(loss_seed),
        cluster_(cluster) {
    if (cluster_->parallel() && model_.loss_probability > 0.0) {
      cluster_->DowngradeToSerial(
          "loss_probability > 0 draws the shared loss RNG in global order");
    }
    if (cluster_->parallel()) {
      cluster_->SetLookahead(model_.MinCrossHostLatency());
    }
    if (cluster_->parallel()) {
      cluster_->SetDeliver(
          [this](sim::WireMsg&& m) { DeliverWire(std::move(m)); });
    } else {
      sim_ = cluster_->engine(0);  // downgraded above: rebind to be safe
    }
    obs_.metrics().AddProvider(
        [this](obs::MetricsSnapshot& out) { CollectMetrics(out); });
  }

  // The engine owning `host`'s events. Everything bound to one host — its
  // core pool, coroutines running its protocol code, completion events of
  // its clients, its RPC/op timeouts — must schedule here.
  sim::Simulator* sim(HostId host) const {
    return cluster_ != nullptr ? cluster_->engine(host) : sim_;
  }

  // The shared serial engine. Only meaningful when the fabric is serial
  // (single-simulator mode or a downgraded cluster): global-order consumers
  // (chaos schedules, exploration hooks, drivers) use this, host-bound code
  // uses sim(host).
  sim::Simulator* simulator() const {
    PRISM_CHECK(!parallel())
        << "Fabric::simulator() is serial-only; use sim(host)";
    return sim_;
  }

  // True when this fabric shards hosts across per-host engines on worker
  // threads (a ClusterSim backing that did not fall back to serial).
  bool parallel() const { return cluster_ != nullptr && cluster_->parallel(); }
  sim::ClusterSim* cluster() const { return cluster_; }

  const CostModel& cost() const { return model_; }

  // Per-simulation observability root (metrics registry, op accounting,
  // optional span tracer). See src/obs/obs.h.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }

  // Span tracing and per-op phase timelines record in the global serial
  // completion order, which a parallel cluster cannot provide; requesting
  // either on a cluster-backed fabric downgrades it to the serial engine
  // with a logged reason (metrics-only observation keeps the parallel
  // path). Must run before AddHost — the same window in which loss/chaos
  // downgrades happen.
  void RequireSerialObservability(std::string why) {
    if (cluster_ != nullptr && cluster_->parallel()) {
      cluster_->DowngradeToSerial(std::move(why));
      sim_ = cluster_->engine(0);
    }
  }

  // Downgrading attach path for the tracer (see RequireSerialObservability).
  void AttachTracer(obs::Tracer* t) {
    if (t != nullptr) {
      RequireSerialObservability(
          "span tracing records in global completion order");
    }
    obs_.SetTracer(t);
  }

  // Host names indexed by HostId, for trace process metadata.
  std::vector<std::string> HostNames() const {
    std::vector<std::string> names;
    names.reserve(hosts_.size());
    for (const auto& h : hosts_) names.push_back(h->name);
    return names;
  }

  // Fault injection (chaos schedules): changes apply to messages sent after
  // the mutation; frames already on the wire keep the costs they were
  // charged at send time.
  CostModel& mutable_cost() {
    PRISM_CHECK(!parallel())
        << "cost mutation needs the serial engine (global event order)";
    return model_;
  }

  HostId AddHost(std::string name) {
    HostId id = static_cast<HostId>(hosts_.size());
    auto host = std::make_unique<Host>();
    host->name = std::move(name);
    host->cores =
        std::make_unique<sim::ServiceQueue>(sim(id), model_.server_cores);
    hosts_.push_back(std::move(host));
    return id;
  }

  size_t host_count() const { return hosts_.size(); }
  const std::string& HostName(HostId id) const { return At(id).name; }

  // The host's dedicated CPU core pool (RPC handlers, software PRISM).
  sim::ServiceQueue& Cores(HostId id) { return *At(id).cores; }

  // Failure injection: messages to/from a down host are dropped. Taking a
  // host down starts a new *incarnation* (epoch): frames already in flight
  // toward it — and any retransmit chains targeting it — are purged even if
  // the host restarts before their delivery time, so a crashed host never
  // receives traffic addressed to its previous life.
  void SetHostUp(HostId id, bool up) {
    PRISM_CHECK(!parallel())
        << "fault injection needs the serial engine (global event order)";
    Host& h = At(id);
    if (h.up && !up) ++h.epoch;
    h.up = up;
  }
  bool IsHostUp(HostId id) const { return At(id).up; }
  uint32_t HostEpoch(HostId id) const { return At(id).epoch; }

  // Directed partition: while blocked, frames src→dst vanish on the wire
  // (the transport retransmits until exhaustion, then reports a drop).
  // Asymmetric partitions block one direction only.
  void SetLinkBlocked(HostId src, HostId dst, bool blocked) {
    PRISM_CHECK(!parallel())
        << "fault injection needs the serial engine (global event order)";
    const uint64_t key = LinkKey(src, dst);
    if (blocked) {
      blocked_links_.insert(key);
    } else {
      blocked_links_.erase(key);
    }
  }
  bool IsLinkBlocked(HostId src, HostId dst) const {
    return !blocked_links_.empty() &&
           blocked_links_.count(LinkKey(src, dst)) > 0;
  }

  // Sends a `payload_bytes` message from src to dst. Exactly one of the two
  // callbacks fires: on_delivery when the last byte is received (after any
  // transport-level retransmissions of lost frames), or on_dropped (if
  // provided) if either endpoint is down or retransmissions are exhausted.
  // Loopback (src == dst) skips the wire but still pays a small local hop.
  //
  // Both callbacks are accepted generically and move straight into the
  // simulator's inline event storage on the (dominant) lossless path; a
  // type-erased PendingSend record is allocated only when a frame is lost
  // and the retransmit machinery needs to re-arm, and from then on the
  // callbacks are moved — never copied — between retransmit hops.
  //
  // Parallel mode: loss, partitions and crashes are all serial-only, so a
  // cross-host send always delivers — it is stamped with the canonical
  // (send_when, src_host, send_seq) key and posted to the cluster's inbox
  // lanes; on_dropped is destroyed unfired (exactly the serial outcome).
  // Loopback never touches another host's state and stays on this engine.
  template <typename Delivery, typename Dropped>
  void Send(HostId src, HostId dst, size_t payload_bytes, Delivery on_delivery,
            Dropped on_dropped) {
    if (parallel() && src != dst) {
      SendParallel(src, dst, payload_bytes, std::move(on_delivery));
      return;
    }
    if (!TryAttempt(src, dst, payload_bytes, on_delivery, on_dropped,
                    /*attempt=*/0)) {
      // The frame was lost: from this instant until a successful re-attempt
      // the op is in loss recovery. The current-op register is still valid
      // here (Send is entered synchronously from the arming client).
      obs::OpTimeline* const op = obs_.current_op();
      obs::SwitchOp(op, obs::Phase::kRetransmit, sim(src)->Now());
      auto pending = std::make_unique<PendingSend>(
          PendingSend{src, dst, payload_bytes, std::move(on_delivery),
                      std::move(on_dropped), /*attempt=*/0,
                      At(dst).epoch, op});
      ScheduleRetransmit(std::move(pending));
    }
  }

  template <typename Delivery>
  void Send(HostId src, HostId dst, size_t payload_bytes,
            Delivery on_delivery) {
    Send(src, dst, payload_bytes, std::move(on_delivery), nullptr);
  }

 private:
  struct PendingSend {
    HostId src;
    HostId dst;
    size_t payload_bytes;
    std::function<void()> on_delivery;
    std::function<void()> on_dropped;
    int attempt;
    uint32_t dst_epoch;  // incarnation targeted when the send was issued
    // Phase timeline of the op this frame belongs to (null when untimed);
    // timelines are never recycled, so a stale pointer after an op timeout
    // can only stamp its own finished (inert) timeline.
    obs::OpTimeline* op;
  };

  static uint64_t LinkKey(HostId src, HostId dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }

  // True when `f` is an invocable callback: not nullptr, and not an empty
  // std::function (bool-testable callables are tested; plain lambdas are
  // always live).
  template <typename F>
  static bool HasCallback(const F& f) {
    if constexpr (std::is_same_v<F, std::nullptr_t>) {
      return false;
    } else if constexpr (std::is_constructible_v<bool, const F&>) {
      return static_cast<bool>(f);
    } else {
      return true;
    }
  }

  // Parallel cross-host send: egress timing is final here (this host's own
  // sends are its only egress contenders, and they execute in time order on
  // its engine); ingress timing is resolved by DeliverWire on the
  // destination's thread, in canonical order across all sources.
  template <typename Delivery>
  void SendParallel(HostId src, HostId dst, size_t payload_bytes,
                    Delivery on_delivery) {
    Host& s = At(src);
    s.wire.total_messages++;
    s.wire.total_wire_bytes += model_.WireBytes(payload_bytes);
    const sim::Duration ser = model_.SerializationDelay(payload_bytes);
    const sim::TimePoint now = sim(src)->Now();
    const sim::TimePoint depart = std::max(now, s.egress_free);
    s.egress_free = depart + ser;
    sim::WireMsg m;
    m.send_when = now;
    m.send_seq = s.send_seq++;
    m.src_host = src;
    m.dst_host = dst;
    m.arrival = depart + ser + model_.propagation;
    m.ser = ser;
    m.deliver = std::move(on_delivery);
    cluster_->PostWire(std::move(m));
  }

  // Ingress half of a parallel cross-host delivery: called on the
  // destination's owning worker at a window barrier (or ahead of the first
  // window for setup-time sends), in (send_when, src_host, send_seq) order.
  void DeliverWire(sim::WireMsg&& m) {
    Host& d = At(m.dst_host);
    const sim::TimePoint ready = std::max(m.arrival, d.ingress_free + m.ser);
    d.ingress_free = ready;
    sim(m.dst_host)->ScheduleAt(ready, std::move(m.deliver));
  }

  // Performs one wire attempt. Returns false iff the frame was lost and a
  // retransmission should be armed; every other outcome schedules exactly
  // one of the callbacks (consuming it by move).
  template <typename Delivery, typename Dropped>
  bool TryAttempt(HostId src, HostId dst, size_t payload_bytes,
                  Delivery& on_delivery, Dropped& on_dropped, int attempt) {
    constexpr bool kHasDropped = !std::is_same_v<Dropped, std::nullptr_t>;
    obs::Tracer* const tracer = obs_.tracer();
    sim::Simulator* const eng = sim(src);
    if (!At(src).up || !At(dst).up) {
      if constexpr (kHasDropped) {
        if (HasCallback(on_dropped)) eng->Schedule(0, std::move(on_dropped));
      }
      At(src).wire.dropped_messages++;
      if (tracer != nullptr) {
        tracer->Instant("net.drop", "net", src, eng->Now(),
                        obs_.current_span());
      }
      return true;
    }
    // A blocked (partitioned) link swallows every frame on the wire: the
    // transport keeps retransmitting until exhaustion, then reports a drop —
    // exactly the failure signature of a real partition.
    if (IsLinkBlocked(src, dst)) {
      At(src).wire.partitioned_messages++;
      if (attempt >= model_.max_retransmits) {
        if constexpr (kHasDropped) {
          if (HasCallback(on_dropped)) {
            eng->Schedule(0, std::move(on_dropped));
          }
        }
        At(src).wire.dropped_messages++;
        return true;
      }
      At(src).wire.retransmissions++;
      return false;
    }
    At(src).wire.total_messages++;
    At(src).wire.total_wire_bytes += model_.WireBytes(payload_bytes);
    // Wire loss: the transport retransmits after a timeout (the §4.2
    // NIC machinery). Ops above never observe duplicates — a frame either
    // arrives once or the attempt is repeated.
    if (model_.loss_probability > 0.0 &&
        loss_rng_.NextDouble() < model_.loss_probability) {
      At(src).wire.lost_messages++;
      if (tracer != nullptr) {
        tracer->Instant("net.loss", "net", src, eng->Now(),
                        obs_.current_span());
      }
      if (attempt >= model_.max_retransmits) {
        if constexpr (kHasDropped) {
          if (HasCallback(on_dropped)) {
            eng->Schedule(0, std::move(on_dropped));
          }
        }
        At(src).wire.dropped_messages++;
        return true;
      }
      At(src).wire.retransmissions++;
      return false;
    }
    const uint32_t dst_epoch = At(dst).epoch;
    if (src == dst) {
      if (tracer != nullptr) {
        tracer->EmitComplete("net.flight", "net", src, eng->Now(),
                             eng->Now() + sim::Nanos(200),
                             obs_.current_span());
      }
      eng->Schedule(sim::Nanos(200),
                    [this, dst, dst_epoch, cb = std::move(on_delivery)]() {
                      DeliverIfAlive(dst, dst_epoch, cb);
                    });
      return true;
    }
    const sim::Duration ser = model_.SerializationDelay(payload_bytes);
    Host& s = At(src);
    Host& d = At(dst);
    const sim::TimePoint now = eng->Now();
    const sim::TimePoint depart = std::max(now, s.egress_free);
    s.egress_free = depart + ser;
    const sim::TimePoint arrival = depart + ser + model_.propagation;
    const sim::TimePoint ready =
        std::max(arrival, d.ingress_free + ser);
    d.ingress_free = ready;
    // Cut-through timing is fully resolved at send time, so the flight span
    // is emitted here as a closed interval — the delivery callback is never
    // wrapped and the event stream is byte-identical with tracing off.
    if (tracer != nullptr) {
      tracer->EmitComplete("net.flight", "net", src, now, ready,
                           obs_.current_span());
    }
    eng->ScheduleAt(ready,
                    [this, dst, dst_epoch, cb = std::move(on_delivery)]() {
                      DeliverIfAlive(dst, dst_epoch, cb);
                    });
    return true;
  }

  // A frame reaching its delivery time is handed up only if the destination
  // is alive *and* still the incarnation it was addressed to. A host that
  // died while the message was in flight drops it — even if it has since
  // restarted (the new incarnation never saw the message).
  template <typename Delivery>
  void DeliverIfAlive(HostId dst, uint32_t dst_epoch, Delivery& cb) {
    const Host& d = At(dst);
    if (d.up && d.epoch == dst_epoch) {
      cb();
    } else {
      At(dst).wire.purged_messages++;
    }
  }

  void ScheduleRetransmit(std::unique_ptr<PendingSend> pending) {
    sim(pending->src)
        ->Schedule(model_.retransmit_timeout,
                   [this, p = std::move(pending)]() mutable {
                     Retry(std::move(p));
                   });
  }

  void Retry(std::unique_ptr<PendingSend> p) {
    // A retransmit timer fires outside any span-propagation window: the
    // current-span register belongs to whoever ran last, so flight spans of
    // re-attempts are roots of their own chains. The op register, by
    // contrast, travels *inside* the PendingSend — re-arm it so the
    // re-attempt's own loss handling stamps the right timeline.
    obs_.SetCurrentSpan(0);
    obs_.SetCurrentOp(p->op);
    // Tear down retransmit state targeting a dead incarnation: if the
    // destination crashed since the send was issued (even if it has since
    // restarted), the chain stops and the drop verdict fires.
    if (At(p->dst).epoch != p->dst_epoch) {
      At(p->dst).wire.purged_messages++;
      At(p->src).wire.dropped_messages++;
      if (p->on_dropped) sim(p->src)->Schedule(0, std::move(p->on_dropped));
      return;
    }
    ++p->attempt;
    // Optimistically back on the wire as of now; a repeated loss flips the
    // op straight back to kRetransmit at the same timestamp (zero wire ns).
    obs::SwitchOp(p->op, obs::Phase::kWire, sim(p->src)->Now());
    if (!TryAttempt(p->src, p->dst, p->payload_bytes, p->on_delivery,
                    p->on_dropped, p->attempt)) {
      obs::SwitchOp(p->op, obs::Phase::kRetransmit, sim(p->src)->Now());
      ScheduleRetransmit(std::move(p));
    }
  }

 public:

  // ---- instrumentation ----
  //
  // Wire counters live per host so the parallel mode's send (source thread)
  // and purge (destination thread) accounting never share a cache line with
  // another worker; the getters report the cluster-wide sums the serial
  // fabric always reported.
  uint64_t total_messages() const { return SumWire(&WireStats::total_messages); }
  uint64_t dropped_messages() const {
    return SumWire(&WireStats::dropped_messages);
  }
  uint64_t lost_messages() const { return SumWire(&WireStats::lost_messages); }
  uint64_t retransmissions() const {
    return SumWire(&WireStats::retransmissions);
  }
  uint64_t total_wire_bytes() const {
    return SumWire(&WireStats::total_wire_bytes);
  }
  uint64_t purged_messages() const {
    return SumWire(&WireStats::purged_messages);
  }
  uint64_t partitioned_messages() const {
    return SumWire(&WireStats::partitioned_messages);
  }
  void ResetStats() {
    for (const auto& h : hosts_) h->wire = WireStats{};
  }

 private:
  struct WireStats {
    uint64_t total_messages = 0;
    uint64_t dropped_messages = 0;
    uint64_t lost_messages = 0;
    uint64_t retransmissions = 0;
    uint64_t total_wire_bytes = 0;
    uint64_t purged_messages = 0;
    uint64_t partitioned_messages = 0;
  };

  struct Host {
    std::string name;
    std::unique_ptr<sim::ServiceQueue> cores;
    sim::TimePoint egress_free = 0;
    sim::TimePoint ingress_free = 0;
    bool up = true;
    uint32_t epoch = 0;  // bumped on crash; identifies the incarnation
    uint64_t send_seq = 0;  // parallel mode: canonical per-source send count
    WireStats wire;
  };

  Host& At(HostId id) {
    PRISM_CHECK_LT(id, hosts_.size());
    return *hosts_[id];
  }
  const Host& At(HostId id) const {
    PRISM_CHECK_LT(id, hosts_.size());
    return *hosts_[id];
  }

  uint64_t SumWire(uint64_t WireStats::*field) const {
    uint64_t total = 0;
    for (const auto& h : hosts_) total += h->wire.*field;
    return total;
  }

  // Snapshot provider: fabric wire counters, per-host core-pool usage, and
  // the engine's own event statistics (the hub is the one registry every
  // layer can reach, so the simulator reports through it as well).
  //
  // Parallel mode reports the summed executed-event count (identical to the
  // serial count for the same schedule) plus the window/barrier counters,
  // but not the per-engine lane classification: zero-delay/timer/overflow
  // routing depends on each engine's private wheel horizon, which is a
  // per-host implementation detail rather than a schedule observable.
  void CollectMetrics(obs::MetricsSnapshot& out) const {
    out.AddCounterValue("net", "total_messages", "", total_messages());
    out.AddCounterValue("net", "dropped_messages", "", dropped_messages());
    out.AddCounterValue("net", "lost_messages", "", lost_messages());
    out.AddCounterValue("net", "retransmissions", "", retransmissions());
    out.AddCounterValue("net", "total_wire_bytes", "", total_wire_bytes());
    out.AddCounterValue("net", "purged_messages", "", purged_messages());
    out.AddCounterValue("net", "partitioned_messages", "",
                        partitioned_messages());
    // Silent span loss made visible (ISSUE 9 satellite 1). Emitted
    // unconditionally — value 0 without a tracer — so traced and untraced
    // snapshots of the same run stay bit-identical (the equality
    // obs_determinism_test pins).
    const obs::Tracer* const tr = obs_.tracer();
    out.AddCounterValue("obs", "dropped_spans", "",
                        tr != nullptr ? tr->dropped_count() : 0);
    for (const auto& h : hosts_) {
      out.AddCounterValue("net", "core_busy_ns", h->name,
                          static_cast<uint64_t>(h->cores->total_busy()));
      out.AddGaugeValue("net", "core_queue_depth", h->name,
                        static_cast<int64_t>(h->cores->queue_length()));
    }
    if (parallel()) {
      out.AddCounterValue("sim", "executed_events", "",
                          cluster_->executed_events());
      const sim::ClusterSim::Stats& ps = cluster_->stats();
      out.AddCounterValue("psim", "windows", "", ps.windows);
      out.AddCounterValue("psim", "barriers", "", ps.barriers);
      out.AddCounterValue("psim", "wire_messages", "", ps.wire_messages);
      return;
    }
    const sim::Simulator::Stats& st = sim_->stats();
    out.AddCounterValue("sim", "executed_events", "", sim_->executed_events());
    out.AddCounterValue("sim", "zero_delay_events", "", st.zero_delay_events);
    out.AddCounterValue("sim", "timer_events", "", st.timer_events);
    out.AddCounterValue("sim", "overflow_events", "", st.overflow_events);
    out.AddCounterValue("sim", "heap_callables", "", st.heap_callables);
    out.AddCounterValue("sim", "pool_blocks", "", st.pool_blocks);
  }

  sim::Simulator* sim_;
  CostModel model_;
  Rng loss_rng_;
  obs::Hub obs_;
  sim::ClusterSim* cluster_ = nullptr;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unordered_set<uint64_t> blocked_links_;  // directed src→dst pairs
};

}  // namespace prism::net

#endif  // PRISM_SRC_NET_FABRIC_H_
