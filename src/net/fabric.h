// The simulated network fabric connecting hosts.
//
// The fabric models *timing only*: application payloads travel through C++
// closures while the fabric charges serialization (with FIFO queueing at the
// sender's egress and the receiver's ingress links), propagation, and
// delivery order. Server saturation in Figures 3–10 emerges from the ingress/
// egress byte accounting here.
//
// Link model (cut-through): a message of b bytes leaving src at time t
//   departs egress at  d  = max(t, egress.free);        egress.free = d + ser(b)
//   last bit arrives   a  = d + ser(b) + propagation
//   delivery completes r  = max(a, ingress.free + ser(b)); ingress.free = r
// so an uncontended message pays ser(b) exactly once end-to-end, while a
// contended ingress (many clients hammering one server) or egress (one server
// answering many clients) serializes at link bandwidth.
#ifndef PRISM_SRC_NET_FABRIC_H_
#define PRISM_SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/net/cost_model.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"

namespace prism::net {

using HostId = uint32_t;

class Fabric {
 public:
  Fabric(sim::Simulator* sim, CostModel model, uint64_t loss_seed = 0x10552)
      : sim_(sim), model_(model), loss_rng_(loss_seed) {
    // Fabric and Simulator both outlive the hub's registry, so they report
    // through a snapshot-time provider instead of owned slots.
    obs_.metrics().AddProvider(
        [this](obs::MetricsSnapshot& out) { CollectMetrics(out); });
  }

  sim::Simulator* simulator() const { return sim_; }
  const CostModel& cost() const { return model_; }

  // Per-simulation observability root (metrics registry, op accounting,
  // optional span tracer). See src/obs/obs.h.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }

  // Host names indexed by HostId, for trace process metadata.
  std::vector<std::string> HostNames() const {
    std::vector<std::string> names;
    names.reserve(hosts_.size());
    for (const auto& h : hosts_) names.push_back(h->name);
    return names;
  }

  // Fault injection (chaos schedules): changes apply to messages sent after
  // the mutation; frames already on the wire keep the costs they were
  // charged at send time.
  CostModel& mutable_cost() { return model_; }

  HostId AddHost(std::string name) {
    HostId id = static_cast<HostId>(hosts_.size());
    hosts_.push_back(std::make_unique<Host>(Host{
        .name = std::move(name),
        .cores = std::make_unique<sim::ServiceQueue>(sim_, model_.server_cores),
    }));
    return id;
  }

  size_t host_count() const { return hosts_.size(); }
  const std::string& HostName(HostId id) const { return At(id).name; }

  // The host's dedicated CPU core pool (RPC handlers, software PRISM).
  sim::ServiceQueue& Cores(HostId id) { return *At(id).cores; }

  // Failure injection: messages to/from a down host are dropped. Taking a
  // host down starts a new *incarnation* (epoch): frames already in flight
  // toward it — and any retransmit chains targeting it — are purged even if
  // the host restarts before their delivery time, so a crashed host never
  // receives traffic addressed to its previous life.
  void SetHostUp(HostId id, bool up) {
    Host& h = At(id);
    if (h.up && !up) ++h.epoch;
    h.up = up;
  }
  bool IsHostUp(HostId id) const { return At(id).up; }
  uint32_t HostEpoch(HostId id) const { return At(id).epoch; }

  // Directed partition: while blocked, frames src→dst vanish on the wire
  // (the transport retransmits until exhaustion, then reports a drop).
  // Asymmetric partitions block one direction only.
  void SetLinkBlocked(HostId src, HostId dst, bool blocked) {
    const uint64_t key = LinkKey(src, dst);
    if (blocked) {
      blocked_links_.insert(key);
    } else {
      blocked_links_.erase(key);
    }
  }
  bool IsLinkBlocked(HostId src, HostId dst) const {
    return !blocked_links_.empty() &&
           blocked_links_.count(LinkKey(src, dst)) > 0;
  }

  // Sends a `payload_bytes` message from src to dst. Exactly one of the two
  // callbacks fires: on_delivery when the last byte is received (after any
  // transport-level retransmissions of lost frames), or on_dropped (if
  // provided) if either endpoint is down or retransmissions are exhausted.
  // Loopback (src == dst) skips the wire but still pays a small local hop.
  //
  // Both callbacks are accepted generically and move straight into the
  // simulator's inline event storage on the (dominant) lossless path; a
  // type-erased PendingSend record is allocated only when a frame is lost
  // and the retransmit machinery needs to re-arm, and from then on the
  // callbacks are moved — never copied — between retransmit hops.
  template <typename Delivery, typename Dropped>
  void Send(HostId src, HostId dst, size_t payload_bytes, Delivery on_delivery,
            Dropped on_dropped) {
    if (!TryAttempt(src, dst, payload_bytes, on_delivery, on_dropped,
                    /*attempt=*/0)) {
      auto pending = std::make_unique<PendingSend>(
          PendingSend{src, dst, payload_bytes, std::move(on_delivery),
                      std::move(on_dropped), /*attempt=*/0,
                      At(dst).epoch});
      ScheduleRetransmit(std::move(pending));
    }
  }

  template <typename Delivery>
  void Send(HostId src, HostId dst, size_t payload_bytes,
            Delivery on_delivery) {
    Send(src, dst, payload_bytes, std::move(on_delivery), nullptr);
  }

 private:
  struct PendingSend {
    HostId src;
    HostId dst;
    size_t payload_bytes;
    std::function<void()> on_delivery;
    std::function<void()> on_dropped;
    int attempt;
    uint32_t dst_epoch;  // incarnation targeted when the send was issued
  };

  static uint64_t LinkKey(HostId src, HostId dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }

  // True when `f` is an invocable callback: not nullptr, and not an empty
  // std::function (bool-testable callables are tested; plain lambdas are
  // always live).
  template <typename F>
  static bool HasCallback(const F& f) {
    if constexpr (std::is_same_v<F, std::nullptr_t>) {
      return false;
    } else if constexpr (std::is_constructible_v<bool, const F&>) {
      return static_cast<bool>(f);
    } else {
      return true;
    }
  }

  // Performs one wire attempt. Returns false iff the frame was lost and a
  // retransmission should be armed; every other outcome schedules exactly
  // one of the callbacks (consuming it by move).
  template <typename Delivery, typename Dropped>
  bool TryAttempt(HostId src, HostId dst, size_t payload_bytes,
                  Delivery& on_delivery, Dropped& on_dropped, int attempt) {
    constexpr bool kHasDropped = !std::is_same_v<Dropped, std::nullptr_t>;
    obs::Tracer* const tracer = obs_.tracer();
    if (!At(src).up || !At(dst).up) {
      if constexpr (kHasDropped) {
        if (HasCallback(on_dropped)) sim_->Schedule(0, std::move(on_dropped));
      }
      dropped_messages_++;
      if (tracer != nullptr) {
        tracer->Instant("net.drop", "net", src, sim_->Now(),
                        obs_.current_span());
      }
      return true;
    }
    // A blocked (partitioned) link swallows every frame on the wire: the
    // transport keeps retransmitting until exhaustion, then reports a drop —
    // exactly the failure signature of a real partition.
    if (IsLinkBlocked(src, dst)) {
      partitioned_messages_++;
      if (attempt >= model_.max_retransmits) {
        if constexpr (kHasDropped) {
          if (HasCallback(on_dropped)) {
            sim_->Schedule(0, std::move(on_dropped));
          }
        }
        dropped_messages_++;
        return true;
      }
      retransmissions_++;
      return false;
    }
    total_messages_++;
    total_wire_bytes_ += model_.WireBytes(payload_bytes);
    // Wire loss: the transport retransmits after a timeout (the §4.2
    // NIC machinery). Ops above never observe duplicates — a frame either
    // arrives once or the attempt is repeated.
    if (model_.loss_probability > 0.0 &&
        loss_rng_.NextDouble() < model_.loss_probability) {
      lost_messages_++;
      if (tracer != nullptr) {
        tracer->Instant("net.loss", "net", src, sim_->Now(),
                        obs_.current_span());
      }
      if (attempt >= model_.max_retransmits) {
        if constexpr (kHasDropped) {
          if (HasCallback(on_dropped)) {
            sim_->Schedule(0, std::move(on_dropped));
          }
        }
        dropped_messages_++;
        return true;
      }
      retransmissions_++;
      return false;
    }
    const uint32_t dst_epoch = At(dst).epoch;
    if (src == dst) {
      if (tracer != nullptr) {
        tracer->EmitComplete("net.flight", "net", src, sim_->Now(),
                             sim_->Now() + sim::Nanos(200),
                             obs_.current_span());
      }
      sim_->Schedule(sim::Nanos(200),
                     [this, dst, dst_epoch, cb = std::move(on_delivery)]() {
                       DeliverIfAlive(dst, dst_epoch, cb);
                     });
      return true;
    }
    const sim::Duration ser = model_.SerializationDelay(payload_bytes);
    Host& s = At(src);
    Host& d = At(dst);
    const sim::TimePoint now = sim_->Now();
    const sim::TimePoint depart = std::max(now, s.egress_free);
    s.egress_free = depart + ser;
    const sim::TimePoint arrival = depart + ser + model_.propagation;
    const sim::TimePoint ready =
        std::max(arrival, d.ingress_free + ser);
    d.ingress_free = ready;
    // Cut-through timing is fully resolved at send time, so the flight span
    // is emitted here as a closed interval — the delivery callback is never
    // wrapped and the event stream is byte-identical with tracing off.
    if (tracer != nullptr) {
      tracer->EmitComplete("net.flight", "net", src, now, ready,
                           obs_.current_span());
    }
    sim_->ScheduleAt(ready,
                     [this, dst, dst_epoch, cb = std::move(on_delivery)]() {
                       DeliverIfAlive(dst, dst_epoch, cb);
                     });
    return true;
  }

  // A frame reaching its delivery time is handed up only if the destination
  // is alive *and* still the incarnation it was addressed to. A host that
  // died while the message was in flight drops it — even if it has since
  // restarted (the new incarnation never saw the message).
  template <typename Delivery>
  void DeliverIfAlive(HostId dst, uint32_t dst_epoch, Delivery& cb) {
    const Host& d = At(dst);
    if (d.up && d.epoch == dst_epoch) {
      cb();
    } else {
      purged_messages_++;
    }
  }

  void ScheduleRetransmit(std::unique_ptr<PendingSend> pending) {
    sim_->Schedule(model_.retransmit_timeout,
                   [this, p = std::move(pending)]() mutable { Retry(std::move(p)); });
  }

  void Retry(std::unique_ptr<PendingSend> p) {
    // A retransmit timer fires outside any span-propagation window: the
    // current-span register belongs to whoever ran last, so flight spans of
    // re-attempts are roots of their own chains.
    obs_.SetCurrentSpan(0);
    // Tear down retransmit state targeting a dead incarnation: if the
    // destination crashed since the send was issued (even if it has since
    // restarted), the chain stops and the drop verdict fires.
    if (At(p->dst).epoch != p->dst_epoch) {
      purged_messages_++;
      dropped_messages_++;
      if (p->on_dropped) sim_->Schedule(0, std::move(p->on_dropped));
      return;
    }
    ++p->attempt;
    if (!TryAttempt(p->src, p->dst, p->payload_bytes, p->on_delivery,
                    p->on_dropped, p->attempt)) {
      ScheduleRetransmit(std::move(p));
    }
  }

 public:

  // ---- instrumentation ----
  uint64_t total_messages() const { return total_messages_; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t lost_messages() const { return lost_messages_; }
  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t total_wire_bytes() const { return total_wire_bytes_; }
  uint64_t purged_messages() const { return purged_messages_; }
  uint64_t partitioned_messages() const { return partitioned_messages_; }
  void ResetStats() {
    total_messages_ = 0;
    dropped_messages_ = 0;
    lost_messages_ = 0;
    retransmissions_ = 0;
    total_wire_bytes_ = 0;
    purged_messages_ = 0;
    partitioned_messages_ = 0;
  }

 private:
  struct Host {
    std::string name;
    std::unique_ptr<sim::ServiceQueue> cores;
    sim::TimePoint egress_free = 0;
    sim::TimePoint ingress_free = 0;
    bool up = true;
    uint32_t epoch = 0;  // bumped on crash; identifies the incarnation
  };

  Host& At(HostId id) {
    PRISM_CHECK_LT(id, hosts_.size());
    return *hosts_[id];
  }
  const Host& At(HostId id) const {
    PRISM_CHECK_LT(id, hosts_.size());
    return *hosts_[id];
  }

  // Snapshot provider: fabric wire counters, per-host core-pool usage, and
  // the engine's own event statistics (the hub is the one registry every
  // layer can reach, so the simulator reports through it as well).
  void CollectMetrics(obs::MetricsSnapshot& out) const {
    out.AddCounterValue("net", "total_messages", "", total_messages_);
    out.AddCounterValue("net", "dropped_messages", "", dropped_messages_);
    out.AddCounterValue("net", "lost_messages", "", lost_messages_);
    out.AddCounterValue("net", "retransmissions", "", retransmissions_);
    out.AddCounterValue("net", "total_wire_bytes", "", total_wire_bytes_);
    out.AddCounterValue("net", "purged_messages", "", purged_messages_);
    out.AddCounterValue("net", "partitioned_messages", "",
                        partitioned_messages_);
    for (const auto& h : hosts_) {
      out.AddCounterValue("net", "core_busy_ns", h->name,
                          static_cast<uint64_t>(h->cores->total_busy()));
      out.AddGaugeValue("net", "core_queue_depth", h->name,
                        static_cast<int64_t>(h->cores->queue_length()));
    }
    const sim::Simulator::Stats& st = sim_->stats();
    out.AddCounterValue("sim", "executed_events", "", sim_->executed_events());
    out.AddCounterValue("sim", "zero_delay_events", "", st.zero_delay_events);
    out.AddCounterValue("sim", "timer_events", "", st.timer_events);
    out.AddCounterValue("sim", "overflow_events", "", st.overflow_events);
    out.AddCounterValue("sim", "heap_callables", "", st.heap_callables);
    out.AddCounterValue("sim", "pool_blocks", "", st.pool_blocks);
  }

  sim::Simulator* sim_;
  CostModel model_;
  Rng loss_rng_;
  obs::Hub obs_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unordered_set<uint64_t> blocked_links_;  // directed src→dst pairs
  uint64_t total_messages_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t lost_messages_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t total_wire_bytes_ = 0;
  uint64_t purged_messages_ = 0;
  uint64_t partitioned_messages_ = 0;
};

}  // namespace prism::net

#endif  // PRISM_SRC_NET_FABRIC_H_
