#include "src/consensus/consensus.h"

#include <algorithm>
#include <map>
#include <utility>

namespace prism::consensus {

namespace {

using core::Op;
using core::OpCode;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Bytes Word(uint64_t w) {
  Bytes b(8);
  StoreU64(b.data(), w);
  return b;
}

constexpr size_t kGrantReqBytes = 24;
size_t GrantRespBytes(const GrantResponse& r) {
  return 56 + static_cast<size_t>(r.n_entries) * 40;
}

// How many repair writes ride in one chain during catch-up healing.
constexpr size_t kRepairBatch = 16;

}  // namespace

Bytes MakeValue(uint64_t seed, int client, int op) {
  const uint64_t tag =
      (static_cast<uint64_t>(client) << 32) | static_cast<uint32_t>(op);
  const uint64_t base = Mix64(seed) ^ Mix64(tag);
  Bytes v(kValueSize);
  StoreU64(v.data(), Mix64(base ^ 0xC0115ull));
  StoreU64(v.data() + 8, Mix64(base ^ 0x5E45ull));
  return v;
}

// ---- replica ----

ConsensusReplica::ConsensusReplica(net::Fabric* fabric, net::HostId host,
                                   ConsensusOptions opts)
    : opts_(opts), host_(host) {
  PRISM_CHECK_GT(opts_.log_capacity, 0u);
  const uint64_t bytes = kCtrlBytes + opts_.log_capacity * kSlotStride;
  mem_ = std::make_unique<rdma::AddressSpace>(
      bytes + core::PrismServer::kOnNicBytes + (1 << 20));
  auto region = mem_->CarveAndRegister(bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  rdma_ = std::make_unique<rdma::RdmaService>(fabric, host, opts_.backend,
                                              mem_.get());
  prism_ = std::make_unique<core::PrismServer>(fabric, host, opts_.deployment,
                                               mem_.get());
  rpc_ = std::make_unique<rpc::RpcServer>(fabric, host);
  rpc_->Register(
      kRevokeGrantMethod,
      [this](const rpc::Message& m) -> sim::Task<rpc::MessagePtr> {
        GrantResponse resp = Grant(m.As<GrantRequest>());
        co_return rpc::Message::Of<GrantResponse>(resp, GrantRespBytes(resp));
      });
}

GrantResponse ConsensusReplica::Grant(const GrantRequest& req) {
  GrantResponse resp;
  const uint64_t cur_epoch = epoch();
  const uint64_t cur_leader = leader();
  if (req.epoch < cur_epoch ||
      (req.epoch == cur_epoch && req.candidate != cur_leader)) {
    resp.granted = false;
    resp.epoch = cur_epoch;
    return resp;
  }
  if (req.epoch > cur_epoch) {
    // Revocation: drop the old registration and mint a fresh rkey. Anything
    // the deposed leader still has in flight against the old rkey NACKs
    // kPermissionDenied at validation-on-delivery.
    PRISM_CHECK(mem_->Deregister(region_.rkey).ok());
    auto region =
        mem_->Register(region_.base, region_.length, rdma::kRemoteAll);
    PRISM_CHECK(region.ok()) << region.status();
    region_ = *region;
    revocations_++;
    mem_->StoreWord(ctrl_addr() + kEpochOff, req.epoch);
    mem_->StoreWord(ctrl_addr() + kLeaderOff, req.candidate);
  }
  grants_served_++;
  resp.granted = true;
  resp.epoch = req.epoch;
  resp.rkey = region_.rkey;
  resp.commit_seq = commit_seq();
  uint64_t tail = 0;
  for (uint64_t s = 1; s <= opts_.log_capacity; ++s) {
    const uint64_t hdr = mem_->LoadWord(slot_addr(s) + kHdrOff);
    if (hdr == 0) continue;
    tail = s;
    if (s > req.from_seq && resp.n_entries < kMaxCatchupEntries) {
      LogEntryWire& e = resp.entries[resp.n_entries++];
      e.seq = s;
      e.hdr = hdr;
      e.key = mem_->LoadWord(slot_addr(s) + kSlotKeyOff);
      e.v_lo = mem_->LoadWord(slot_addr(s) + kSlotValueOff);
      e.v_hi = mem_->LoadWord(slot_addr(s) + kSlotValueOff + 8);
    }
  }
  resp.write_seq = tail;
  return resp;
}

void ConsensusReplica::LocalAppend(uint64_t seq, uint64_t hdr, uint64_t key,
                                   ByteView value) {
  PRISM_CHECK_LE(seq, opts_.log_capacity);
  PRISM_CHECK_EQ(value.size(), kValueSize);
  const rdma::Addr slot = slot_addr(seq);
  mem_->StoreWord(slot + kHdrOff, hdr);
  mem_->StoreWord(slot + kSlotKeyOff, key);
  mem_->StoreWord(slot + kSlotValueOff, LoadU64(value.data()));
  mem_->StoreWord(slot + kSlotValueOff + 8, LoadU64(value.data() + 8));
}

void ConsensusReplica::SetCommit(uint64_t seq) {
  mem_->StoreWord(ctrl_addr() + kCommitOff, seq);
}

uint64_t ConsensusReplica::write_seq() const {
  uint64_t tail = 0;
  for (uint64_t s = 1; s <= opts_.log_capacity; ++s) {
    if (mem_->LoadWord(slot_addr(s) + kHdrOff) != 0) tail = s;
  }
  return tail;
}

bool ConsensusReplica::EntryAt(uint64_t seq, LogEntryWire* out) const {
  const rdma::Addr slot = slot_addr(seq);
  const uint64_t hdr = mem_->LoadWord(slot + kHdrOff);
  if (hdr == 0) return false;
  out->seq = seq;
  out->hdr = hdr;
  out->key = mem_->LoadWord(slot + kSlotKeyOff);
  out->v_lo = mem_->LoadWord(slot + kSlotValueOff);
  out->v_hi = mem_->LoadWord(slot + kSlotValueOff + 8);
  return true;
}

check::ValueId ConsensusReplica::FinalValue(uint64_t key) const {
  const uint64_t commit = commit_seq();
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool found = false;
  for (uint64_t s = 1; s <= commit && s <= opts_.log_capacity; ++s) {
    LogEntryWire e;
    if (!EntryAt(s, &e) || e.key != key) continue;
    lo = e.v_lo;
    hi = e.v_hi;
    found = true;
  }
  if (!found) return check::kAbsent;
  Bytes v(kValueSize);
  StoreU64(v.data(), lo);
  StoreU64(v.data() + 8, hi);
  return check::IdOf(v);
}

// ---- node ----

ConsensusNode::ConsensusNode(net::Fabric* fabric, ConsensusCluster* cluster,
                             int id)
    : fabric_(fabric),
      cluster_(cluster),
      id_(id),
      host_(cluster->replica(id).host()),
      rpc_(fabric, host_),
      prism_(fabric, host_),
      mu_(fabric->sim(host_)) {
  granted_.assign(static_cast<size_t>(cluster->n()), false);
  rkeys_.assign(static_cast<size_t>(cluster->n()), 0);
}

void ConsensusNode::Arm(obs::OpTimeline* op) {
  fabric_->obs().SetCurrentOp(op);
}

bool ConsensusNode::LocalPermissionValid() const {
  const ConsensusReplica& r = cluster_->replica(id_);
  return r.epoch() == epoch_ && r.leader() == static_cast<uint64_t>(id_);
}

int ConsensusNode::granted_count() const {
  int n = 0;
  for (bool g : granted_) n += g ? 1 : 0;
  return n;
}

int ConsensusNode::CommitNeed() const {
  if (cluster_->options().require_revoke_quorum) return cluster_->quorum();
  // Buggy positive control: commit against whatever subset has granted.
  return std::min(cluster_->quorum(), std::max(1, granted_count()));
}

// ---- election ----

struct ConsensusNode::Elect {
  uint64_t target_epoch = 0;
  uint64_t from_seq = 0;  // colocated replica's commit word
  bool gathering = true;
  std::shared_ptr<sim::Quorum> q;  // null when no remote grant is awaited
  std::vector<bool> granted;
  std::vector<rdma::RKey> rkeys;
  // Highest-epoch entry per slot across the grant quorum (the Paxos read
  // phase); merged against the colocated replica's log.
  std::map<uint64_t, LogEntryWire> pool;
  uint64_t max_commit = 0;
  uint64_t max_write = 0;
  uint64_t reject_epoch = 0;
  obs::OpTimeline* op = nullptr;
};

void ConsensusNode::Adopt(Elect& st, int r, const GrantResponse& resp) {
  st.granted[static_cast<size_t>(r)] = true;
  st.rkeys[static_cast<size_t>(r)] = static_cast<rdma::RKey>(resp.rkey);
  st.max_commit = std::max(st.max_commit, resp.commit_seq);
  st.max_write = std::max(st.max_write, resp.write_seq);
  for (uint32_t i = 0; i < resp.n_entries; ++i) {
    const LogEntryWire& e = resp.entries[i];
    auto it = st.pool.find(e.seq);
    if (it == st.pool.end() || HdrEpoch(it->second.hdr) < HdrEpoch(e.hdr)) {
      st.pool[e.seq] = e;
    }
  }
}

sim::Task<void> ConsensusNode::AskGrant(std::shared_ptr<Elect> st, int r) {
  GrantRequest req;
  req.epoch = st->target_epoch;
  req.candidate = static_cast<uint32_t>(id_);
  req.from_seq = st->from_seq;
  bool ok = false;
  while (true) {
    Arm(st->op);
    auto m = co_await rpc_.Call(&cluster_->replica(r).rpc(),
                                kRevokeGrantMethod,
                                rpc::Message::Of<GrantRequest>(req,
                                                               kGrantReqBytes));
    if (!m.ok()) break;
    const GrantResponse& resp = (*m)->As<GrantResponse>();
    if (!resp.granted) {
      st->reject_epoch = std::max(st->reject_epoch, resp.epoch);
      break;
    }
    if (!st->gathering) {
      // The quorum closed without us. The replica still revoked the old
      // reign when it granted, so bring it into the membership through the
      // same replay path a background re-grant would use.
      if (leading_ && epoch_ == st->target_epoch &&
          !granted_[static_cast<size_t>(r)]) {
        co_await HealReplica(r, static_cast<rdma::RKey>(resp.rkey),
                             resp.commit_seq, resp.write_seq, st->op);
      }
      break;
    }
    Adopt(*st, r, resp);
    ok = true;
    // Page through a long tail (idempotent same-epoch re-asks).
    if (resp.n_entries == kMaxCatchupEntries &&
        resp.entries[resp.n_entries - 1].seq < resp.write_seq) {
      req.from_seq = resp.entries[resp.n_entries - 1].seq;
      ok = false;
      continue;
    }
    break;
  }
  if (st->q != nullptr) st->q->Arrive(ok);
}

sim::Task<Result<uint64_t>> ConsensusNode::BecomeLeader(obs::OpTimeline* op) {
  Arm(op);
  co_await mu_.Lock();
  Status last = Unavailable("election never attempted");
  for (int attempt = 0; attempt < cluster_->options().max_election_attempts;
       ++attempt) {
    if (attempt > 0) {
      Arm(op);
      co_await sim::SleepFor(
          fabric_->sim(host_),
          cluster_->options().election_backoff * attempt);
    }
    const ConsensusReplica& local = cluster_->replica(id_);
    uint64_t base = std::max(last_seen_epoch_, local.epoch());
    base = std::max(base, epoch_);
    auto st = std::make_shared<Elect>();
    st->target_epoch = base + 1;
    st->op = op;
    st->granted.assign(static_cast<size_t>(cluster_->n()), false);
    st->rkeys.assign(static_cast<size_t>(cluster_->n()), 0);

    // Colocated replica first: its grant is synchronous and its log is the
    // free bulk of catch-up (the leader writes every entry locally, so only
    // the in-flight window above its commit word needs remote comparison).
    GrantRequest lreq;
    lreq.epoch = st->target_epoch;
    lreq.candidate = static_cast<uint32_t>(id_);
    lreq.from_seq = ~uint64_t{0};  // tail info only; log read directly below
    GrantResponse lresp = cluster_->replica(id_).Grant(lreq);
    if (!lresp.granted) {
      last_seen_epoch_ = std::max(last_seen_epoch_, lresp.epoch);
      last = Aborted("colocated replica rejected the grant");
      continue;
    }
    st->granted[static_cast<size_t>(id_)] = true;
    st->rkeys[static_cast<size_t>(id_)] = static_cast<rdma::RKey>(lresp.rkey);
    st->from_seq = lresp.commit_seq;
    st->max_commit = lresp.commit_seq;
    st->max_write = lresp.write_seq;

    const int need = cluster_->options().require_revoke_quorum
                         ? cluster_->quorum()
                         : 1;
    const int need_remote = need - 1;
    const int n_remote = cluster_->n() - 1;
    if (need_remote > 0) {
      st->q = std::make_shared<sim::Quorum>(fabric_->sim(host_), need_remote,
                                            n_remote);
    }
    for (int r = 0; r < cluster_->n(); ++r) {
      if (r == id_) continue;
      sim::Spawn(AskGrant(st, r), &cluster_->tracker());
    }
    bool won = true;
    if (st->q != nullptr) {
      Arm(op);
      won = co_await st->q->Wait();
    }
    st->gathering = false;
    if (!won) {
      elections_lost_++;
      last_seen_epoch_ = std::max(last_seen_epoch_, st->reject_epoch);
      last = Aborted("revoke quorum not reached");
      continue;
    }
    auto done = co_await FinishElection(st, op);
    if (done.ok()) {
      elections_won_++;
      cluster_->set_leader_hint(id_);
      mu_.Unlock();
      co_return st->target_epoch;
    }
    elections_lost_++;
    last = done;
  }
  mu_.Unlock();
  co_return last;
}

Status ConsensusNode::BuildView(Elect& st,
                                std::map<uint64_t, LogEntryWire>* view) {
  const ConsensusReplica& local = cluster_->replica(id_);
  for (uint64_t s = 1; s <= st.max_write; ++s) {
    LogEntryWire e;
    if (local.EntryAt(s, &e)) (*view)[s] = e;
  }
  for (const auto& [seq, e] : st.pool) {
    auto it = view->find(seq);
    if (it == view->end() || HdrEpoch(it->second.hdr) < HdrEpoch(e.hdr)) {
      (*view)[seq] = e;
    }
  }
  return OkStatus();
}

sim::Task<Status> ConsensusNode::FinishElection(std::shared_ptr<Elect> st,
                                                obs::OpTimeline* op) {
  // Merge the colocated log with the grant-quorum pool: highest epoch per
  // slot wins.
  std::map<uint64_t, LogEntryWire> view;
  BuildView(*st, &view);
  const uint64_t tip =
      std::max(st->max_write,
               view.empty() ? 0 : view.rbegin()->first);

  // A committed slot missing everywhere we looked lives on some granted
  // replica past the catch-up window or under a local hole — fetch it
  // point-wise. Commit quorums intersect grant quorums, so in the correct
  // protocol this always finds the committed copy.
  for (uint64_t s = 1; s <= st->max_commit; ++s) {
    if (view.count(s) != 0) continue;
    for (int r = 0; r < cluster_->n(); ++r) {
      if (r == id_ || !st->granted[static_cast<size_t>(r)]) continue;
      GrantRequest req;
      req.epoch = st->target_epoch;
      req.candidate = static_cast<uint32_t>(id_);
      req.from_seq = s - 1;
      Arm(op);
      auto m = co_await rpc_.Call(
          &cluster_->replica(r).rpc(), kRevokeGrantMethod,
          rpc::Message::Of<GrantRequest>(req, kGrantReqBytes));
      if (!m.ok()) continue;
      const GrantResponse& resp = (*m)->As<GrantResponse>();
      if (!resp.granted) continue;
      for (uint32_t i = 0; i < resp.n_entries; ++i) {
        const LogEntryWire& e = resp.entries[i];
        if (e.seq != s) continue;
        auto it = view.find(s);
        if (it == view.end() || HdrEpoch(it->second.hdr) < HdrEpoch(e.hdr)) {
          view[s] = e;
        }
      }
    }
  }

  // Re-commit the adopted suffix under the new epoch before serving (the
  // Paxos write-back): everything above the colocated commit word.
  const int need = cluster_->options().require_revoke_quorum
                       ? cluster_->quorum()
                       : std::min<int>(cluster_->quorum(),
                                       [&] {
                                         int g = 0;
                                         for (bool b : st->granted) g += b;
                                         return g;
                                       }());
  for (auto& [seq, e] : view) {
    if (seq <= st->from_seq) continue;
    e.hdr = PackHdr(st->target_epoch, seq);
    Bytes value(kValueSize);
    StoreU64(value.data(), e.v_lo);
    StoreU64(value.data() + 8, e.v_hi);
    cluster_->replica(id_).LocalAppend(seq, e.hdr, e.key, value);
    entries_adopted_++;
    int successes = 1;  // the colocated write above
    for (int r = 0; r < cluster_->n(); ++r) {
      if (r == id_ || !st->granted[static_cast<size_t>(r)]) continue;
      Arm(op);
      const bool ok = co_await RepairOne(
          r, st->rkeys[static_cast<size_t>(r)], e, st->from_seq, op);
      if (ok) successes++;
    }
    if (successes < need) {
      co_return Aborted("adopted-entry re-commit lost its quorum");
    }
  }

  // Install the new reign.
  epoch_ = st->target_epoch;
  last_seen_epoch_ = st->target_epoch;
  leading_ = true;
  granted_ = st->granted;
  rkeys_ = st->rkeys;
  next_seq_ = tip + 1;
  committed_seq_ = tip;
  cluster_->replica(id_).SetCommit(committed_seq_);
  applied_.clear();
  for (const auto& [seq, e] : view) {
    applied_[e.key] = {e.v_lo, e.v_hi};
  }
  co_return OkStatus();
}

sim::Task<bool> ConsensusNode::RepairOne(int r, rdma::RKey rkey,
                                         const LogEntryWire& e,
                                         uint64_t commit,
                                         obs::OpTimeline* op) {
  // Exclusive write permission makes repair a plain overwrite: the whole
  // 32-byte slot in one WRITE, the commit word piggybacked behind it.
  Arm(op);
  Bytes slot(kSlotStride);
  StoreU64(slot.data() + kHdrOff, e.hdr);
  StoreU64(slot.data() + kSlotKeyOff, e.key);
  StoreU64(slot.data() + kSlotValueOff, e.v_lo);
  StoreU64(slot.data() + kSlotValueOff + 8, e.v_hi);
  core::Chain chain;
  chain.push_back(
      Op::Write(rkey, cluster_->replica(r).slot_addr(e.seq), std::move(slot)));
  chain.push_back(Op::Write(rkey, cluster_->replica(r).ctrl_addr() + kCommitOff,
                            Word(commit)));
  auto res = co_await prism_.Execute(&cluster_->replica(r).prism(), chain);
  if (!res.ok()) co_return false;
  for (const core::OpResult& o : *res) {
    if (o.status.code() == Code::kPermissionDenied) {
      MarkDeposed(r);
      co_return false;
    }
  }
  co_return core::ChainFullySucceeded(chain, *res);
}

void ConsensusNode::MarkDeposed(int r) {
  if (granted_[static_cast<size_t>(r)]) {
    granted_[static_cast<size_t>(r)] = false;
    rkeys_[static_cast<size_t>(r)] = 0;
    deposals_observed_++;
  }
}

// ---- data path ----

sim::Task<ConsensusNode::PutOutcome> ConsensusNode::SubmitPut(
    core::PrismClient* pc, uint64_t key, Bytes value, obs::OpTimeline* op) {
  Arm(op);
  co_await mu_.Lock();
  PutOutcome out;
  if (!leading_ || !LocalPermissionValid()) {
    leading_ = false;
    out.status = FailedPrecondition("not the leader");
    mu_.Unlock();
    co_return out;
  }
  if (cluster_->options().require_revoke_quorum &&
      granted_count() < cluster_->quorum()) {
    leading_ = false;
    out.status = Unavailable("write-permission majority lost");
    mu_.Unlock();
    co_return out;
  }
  if (next_seq_ > cluster_->options().log_capacity) {
    out.status = ResourceExhausted("consensus log full");
    mu_.Unlock();
    co_return out;
  }

  const uint64_t seq = next_seq_++;
  const uint64_t hdr = PackHdr(epoch_, seq);
  const uint64_t prev_commit = committed_seq_;
  // Colocated leg: free — the leader IS one replica. Snapshot the appended
  // entry now, before any await: a usurper's heal may wipe this slot while
  // the quorum wait is in flight (and `value` moves into the chain payload).
  cluster_->replica(id_).LocalAppend(seq, hdr, key, value);
  LogEntryWire self;
  PRISM_CHECK(cluster_->replica(id_).EntryAt(seq, &self));

  std::vector<int> targets;
  for (int r = 0; r < cluster_->n(); ++r) {
    if (r != id_ && granted_[static_cast<size_t>(r)]) targets.push_back(r);
  }
  const int need_remote = CommitNeed() - 1;
  bool committed = true;
  if (need_remote > 0) {
    auto q = std::make_shared<sim::Quorum>(fabric_->sim(host_), need_remote,
                                           static_cast<int>(targets.size()));
    auto val = std::make_shared<Bytes>(std::move(value));
    for (int r : targets) {
      sim::Spawn(AppendChain(pc, r, seq, hdr, key, prev_commit, val, q, op),
                 &cluster_->tracker());
    }
    Arm(op);
    committed = co_await q->Wait();
  }
  if (committed) {
    committed_seq_ = std::max(committed_seq_, seq);
    cluster_->replica(id_).SetCommit(committed_seq_);
    applied_[key] = {self.v_lo, self.v_hi};
    out.status = OkStatus();
    out.applied = Applied::kYes;
    if (granted_count() < cluster_->n() && !regrant_inflight_ &&
        committed_seq_ % cluster_->options().regrant_interval == 0) {
      regrant_inflight_ = true;
      regrants_++;
      sim::Spawn(TryRegrant(op), &cluster_->tracker());
    }
  } else {
    // The entry is in the colocated log and possibly on some remotes; a
    // future election may adopt it, so the write may yet take effect.
    leading_ = false;
    out.status = Unavailable("commit quorum lost");
    out.applied = Applied::kMaybe;
  }
  mu_.Unlock();
  co_return out;
}

sim::Task<void> ConsensusNode::AppendChain(core::PrismClient* pc, int r,
                                           uint64_t seq, uint64_t hdr,
                                           uint64_t key, uint64_t prev_commit,
                                           std::shared_ptr<Bytes> value,
                                           std::shared_ptr<sim::Quorum> q,
                                           obs::OpTimeline* op) {
  Arm(op);
  const rdma::RKey rkey = rkeys_[static_cast<size_t>(r)];
  const rdma::Addr slot = cluster_->replica(r).slot_addr(seq);
  Bytes payload(8 + kValueSize);
  StoreU64(payload.data(), key);
  std::copy(value->begin(), value->end(), payload.begin() + 8);
  core::Chain chain;
  // Locate (client-computed slot address) + compare (slot must be empty) +
  // write (payload, then the piggybacked commit index) — one round trip.
  chain.push_back(Op::CompareSwapCas(rkey, slot + kHdrOff, Word(0), Word(hdr),
                                     Bytes(8, 0xff), Bytes(8, 0xff)));
  chain.push_back(
      Op::Write(rkey, slot + kSlotKeyOff, std::move(payload)).Conditional());
  chain.push_back(Op::Write(rkey,
                            cluster_->replica(r).ctrl_addr() + kCommitOff,
                            Word(prev_commit))
                      .Conditional());
  auto res = co_await pc->Execute(&cluster_->replica(r).prism(), chain);
  if (!res.ok()) {
    q->Arrive(false);
    co_return;
  }
  for (const core::OpResult& o : *res) {
    if (o.status.code() == Code::kPermissionDenied) {
      // The replica revoked our rkey: we have been deposed.
      MarkDeposed(r);
      q->Arrive(false);
      co_return;
    }
  }
  q->Arrive(core::ChainFullySucceeded(chain, *res));
}

sim::Task<Result<Bytes>> ConsensusNode::SubmitGet(core::PrismClient* pc,
                                                  uint64_t key,
                                                  obs::OpTimeline* op) {
  Arm(op);
  co_await mu_.Lock();
  if (!leading_ || !LocalPermissionValid()) {
    leading_ = false;
    mu_.Unlock();
    co_return FailedPrecondition("not the leader");
  }
  if (cluster_->options().require_revoke_quorum &&
      granted_count() < cluster_->quorum()) {
    leading_ = false;
    mu_.Unlock();
    co_return Unavailable("write-permission majority lost");
  }
  std::vector<int> targets;
  for (int r = 0; r < cluster_->n(); ++r) {
    if (r != id_ && granted_[static_cast<size_t>(r)]) targets.push_back(r);
  }
  const int need_remote = CommitNeed() - 1;
  if (need_remote > 0) {
    auto q = std::make_shared<sim::Quorum>(fabric_->sim(host_), need_remote,
                                           static_cast<int>(targets.size()));
    for (int r : targets) {
      sim::Spawn(ConfirmChain(pc, r, q, op), &cluster_->tracker());
    }
    Arm(op);
    const bool confirmed = co_await q->Wait();
    if (!confirmed) {
      leading_ = false;
      mu_.Unlock();
      co_return Unavailable("permission confirmation lost its quorum");
    }
  }
  auto it = applied_.find(key);
  if (it == applied_.end()) {
    mu_.Unlock();
    co_return NotFound("key never committed");
  }
  Bytes v(kValueSize);
  StoreU64(v.data(), it->second.first);
  StoreU64(v.data() + 8, it->second.second);
  mu_.Unlock();
  co_return v;
}

sim::Task<void> ConsensusNode::ConfirmChain(core::PrismClient* pc, int r,
                                            std::shared_ptr<sim::Quorum> q,
                                            obs::OpTimeline* op) {
  // Permission check by construction: write our heartbeat word under the
  // granted rkey. A replica that revoked us NACKs — that IS the failure
  // detector reading.
  Arm(op);
  const rdma::RKey rkey = rkeys_[static_cast<size_t>(r)];
  core::Chain chain;
  chain.push_back(Op::Write(rkey,
                            cluster_->replica(r).ctrl_addr() + kHeartbeatOff,
                            Word(epoch_)));
  auto res = co_await pc->Execute(&cluster_->replica(r).prism(), chain);
  if (!res.ok()) {
    q->Arrive(false);
    co_return;
  }
  if ((*res)[0].status.code() == Code::kPermissionDenied) {
    MarkDeposed(r);
    q->Arrive(false);
    co_return;
  }
  q->Arrive(core::ChainFullySucceeded(chain, *res));
}

// ---- healing ----

sim::Task<bool> ConsensusNode::HealReplica(int r, rdma::RKey rkey,
                                           uint64_t their_commit,
                                           uint64_t their_write,
                                           obs::OpTimeline* op) {
  const uint64_t snap_epoch = epoch_;
  const uint64_t snap_commit = committed_seq_;
  bool ok = true;
  // Wipe any stale tail the replica accumulated under an older reign — a
  // stale slot above our commit word would otherwise block the CAS append
  // or poison a future election's adoption.
  if (their_write > snap_commit) {
    core::Chain wipe;
    wipe.push_back(
        Op::Write(rkey, cluster_->replica(r).slot_addr(snap_commit + 1),
                  Bytes((their_write - snap_commit) * kSlotStride, 0)));
    Arm(op);
    auto w = co_await prism_.Execute(&cluster_->replica(r).prism(), wipe);
    ok = w.ok() && core::ChainFullySucceeded(wipe, *w);
  }
  // Replay the committed range it is missing from the colocated log (an
  // adopted hole replays as zeros — consistently absent everywhere).
  uint64_t s = their_commit + 1;
  while (ok && s <= snap_commit) {
    core::Chain chain;
    for (size_t b = 0; b < kRepairBatch && s <= snap_commit; ++b, ++s) {
      LogEntryWire e;
      Bytes slot(kSlotStride, 0);
      if (cluster_->replica(id_).EntryAt(s, &e)) {
        StoreU64(slot.data() + kHdrOff, e.hdr);
        StoreU64(slot.data() + kSlotKeyOff, e.key);
        StoreU64(slot.data() + kSlotValueOff, e.v_lo);
        StoreU64(slot.data() + kSlotValueOff + 8, e.v_hi);
      }
      chain.push_back(Op::Write(rkey, cluster_->replica(r).slot_addr(s),
                                std::move(slot)));
    }
    Arm(op);
    auto res = co_await prism_.Execute(&cluster_->replica(r).prism(), chain);
    ok = res.ok() && core::ChainFullySucceeded(chain, *res);
  }
  if (ok) {
    core::Chain fin;
    fin.push_back(Op::Write(
        rkey, cluster_->replica(r).ctrl_addr() + kCommitOff,
        Word(snap_commit)));
    Arm(op);
    auto res = co_await prism_.Execute(&cluster_->replica(r).prism(), fin);
    ok = res.ok() && core::ChainFullySucceeded(fin, *res);
  }
  if (ok && leading_ && epoch_ == snap_epoch &&
      !granted_[static_cast<size_t>(r)]) {
    granted_[static_cast<size_t>(r)] = true;
    rkeys_[static_cast<size_t>(r)] = rkey;
    co_return true;
  }
  co_return false;
}

sim::Task<void> ConsensusNode::TryRegrant(obs::OpTimeline* op) {
  const uint64_t snap_epoch = epoch_;
  for (int r = 0; r < cluster_->n(); ++r) {
    if (!leading_ || epoch_ != snap_epoch) break;
    if (r == id_ || granted_[static_cast<size_t>(r)]) continue;
    GrantRequest req;
    req.epoch = snap_epoch;
    req.candidate = static_cast<uint32_t>(id_);
    req.from_seq = ~uint64_t{0};  // tail info only
    Arm(op);
    auto m = co_await rpc_.Call(
        &cluster_->replica(r).rpc(), kRevokeGrantMethod,
        rpc::Message::Of<GrantRequest>(req, kGrantReqBytes));
    if (!m.ok()) continue;
    const GrantResponse& resp = (*m)->As<GrantResponse>();
    if (!resp.granted) {
      // A higher epoch exists; our next data-path op will find out too.
      last_seen_epoch_ = std::max(last_seen_epoch_, resp.epoch);
      continue;
    }
    (void)co_await HealReplica(r, static_cast<rdma::RKey>(resp.rkey),
                               resp.commit_seq, resp.write_seq, op);
  }
  regrant_inflight_ = false;
  co_return;
}

// ---- cluster ----

ConsensusCluster::ConsensusCluster(net::Fabric* fabric,
                                   std::vector<net::HostId> hosts,
                                   ConsensusOptions opts)
    : opts_(opts), fabric_(fabric), elect_mu_(fabric->sim(hosts.at(0))) {
  PRISM_CHECK_EQ(static_cast<int>(hosts.size()), opts_.n_replicas);
  PRISM_CHECK_GE(opts_.n_replicas, 1);
  for (net::HostId h : hosts) {
    replicas_.push_back(std::make_unique<ConsensusReplica>(fabric, h, opts_));
  }
  for (int i = 0; i < opts_.n_replicas; ++i) {
    nodes_.push_back(std::make_unique<ConsensusNode>(fabric, this, i));
  }
}

sim::Task<Result<uint64_t>> ConsensusCluster::Failover(int candidate,
                                                       obs::OpTimeline* op) {
  PRISM_CHECK_GE(candidate, 0);
  PRISM_CHECK_LT(candidate, n());
  const uint64_t gen = elect_generation_;
  fabric_->obs().SetCurrentOp(op);
  co_await elect_mu_.Lock();
  if (elect_generation_ != gen) {
    // Someone else completed an election while we queued; if it produced a
    // live leader, don't depose it again.
    ConsensusNode& cur = *nodes_[static_cast<size_t>(leader_hint_)];
    if (cur.leading() && cur.LocalPermissionValid()) {
      const uint64_t e = cur.epoch();
      elect_mu_.Unlock();
      co_return e;
    }
  }
  auto won = co_await nodes_[static_cast<size_t>(candidate)]->BecomeLeader(op);
  if (won.ok()) {
    elect_generation_++;
    failovers_++;
  }
  elect_mu_.Unlock();
  co_return won;
}

// ---- session ----

ConsensusSession::ConsensusSession(ConsensusCluster* cluster)
    : cluster_(cluster) {
  for (int i = 0; i < cluster->n(); ++i) {
    clients_.push_back(std::make_unique<core::PrismClient>(
        cluster->fabric(), cluster->replica(i).host()));
  }
}

void ConsensusSession::set_batcher(rdma::VerbBatcher* b) {
  for (auto& c : clients_) c->set_batcher(b);
}

obs::TransportTally ConsensusSession::tally() const {
  obs::TransportTally t;
  for (const auto& c : clients_) t += c->tally();
  return t;
}

// ---- client ----

ConsensusClient::ConsensusClient(ConsensusCluster* cluster, uint16_t client_id,
                                 uint64_t rng_seed)
    : cluster_(cluster),
      id_(client_id),
      rng_(Mix64(rng_seed) ^ Mix64(client_id)),
      session_(cluster) {}

sim::Task<void> ConsensusClient::RecoverLeadership(int failed_leader,
                                                   obs::OpTimeline* op) {
  failovers_triggered_++;
  int candidate = failed_leader;
  if (cluster_->n() > 1) {
    candidate = (failed_leader + 1 +
                 static_cast<int>(rng_.NextBelow(
                     static_cast<uint64_t>(cluster_->n() - 1)))) %
                cluster_->n();
  }
  auto r = co_await cluster_->Failover(candidate, op);
  (void)r;  // the caller re-reads the hint; failures surface on retry
}

sim::Task<Status> ConsensusClient::Put(uint64_t key, Bytes value) {
  obs::OpTimeline* const op = cluster_->fabric()->obs().current_op();
  const check::ValueId written = check::IdOf(value);
  size_t h = 0;
  if (history_ != nullptr) {
    h = history_->Begin(history_client_, key, check::OpType::kWrite, written);
  }
  Status last = Unavailable("no attempt made");
  bool maybe = false;
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) retries_++;
    const int leader = cluster_->leader_hint();
    ConsensusNode::PutOutcome out =
        co_await session_.PutOn(leader, key, value, op);
    if (out.status.ok()) {
      if (history_ != nullptr) history_->End(h, check::Outcome::kOk);
      co_return OkStatus();
    }
    last = out.status;
    if (out.applied == ConsensusNode::Applied::kMaybe) {
      // The write may sit in a minority log and be adopted later; retrying
      // could apply it twice. Give up as indeterminate.
      maybe = true;
      break;
    }
    if (attempt + 1 < max_attempts_) {
      co_await RecoverLeadership(leader, op);
    }
  }
  if (history_ != nullptr) {
    history_->End(h, maybe ? check::Outcome::kIndeterminate
                           : check::Outcome::kFailed);
  }
  co_return last;
}

sim::Task<Result<Bytes>> ConsensusClient::Get(uint64_t key) {
  obs::OpTimeline* const op = cluster_->fabric()->obs().current_op();
  size_t h = 0;
  if (history_ != nullptr) {
    h = history_->Begin(history_client_, key, check::OpType::kRead);
  }
  Status last = Unavailable("no attempt made");
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) retries_++;
    const int leader = cluster_->leader_hint();
    auto r = co_await session_.GetOn(leader, key, op);
    if (r.ok()) {
      if (history_ != nullptr) {
        history_->End(h, check::Outcome::kOk, check::IdOf(*r));
      }
      co_return r;
    }
    if (r.status().code() == Code::kNotFound) {
      if (history_ != nullptr) {
        history_->End(h, check::Outcome::kOk, check::kAbsent);
      }
      co_return r.status();
    }
    last = r.status();
    if (attempt + 1 < max_attempts_) {
      co_await RecoverLeadership(leader, op);
    }
  }
  if (history_ != nullptr) history_->End(h, check::Outcome::kFailed);
  co_return last;
}

}  // namespace prism::consensus
