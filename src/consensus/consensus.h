// Permission-guarded consensus over registered replica memory.
//
// A leader-based consensus log in the style of Protected Memory Paxos
// (Aguilera et al., "The Impact of RDMA on Agreement"): the replicas are
// passive registered-memory servers, and RDMA permissions double as the
// failure detector. A candidate becomes leader by having a quorum of
// replicas REVOKE the previous leader's rkey and grant a fresh one
// (Deregister + Register bumps the permission epoch); from then on every
// in-flight or future write posted by a deposed leader NACKs with
// kPermissionDenied at validation time — the revoke-NACK path already
// modeled by src/rdma. Leader change is therefore a memory-management
// operation, and the common-case commit needs no replica CPU at all.
//
// Data path (the leader is colocated with one replica):
//   * Put: allocate the next log slot, apply it to the colocated replica's
//     memory directly (free), and push it to every granted remote replica
//     with ONE PRISM chain each — locate (client-computed slot address) +
//     compare (CAS the slot header 0 → ⟨epoch,seq⟩) + write (payload, then
//     the piggybacked commit index), all conditional on the CAS. The chain
//     is a single round trip per remote replica, so an n=3 commit costs
//     exactly 2 round trips in the complexity tally.
//   * Get: the leader confirms it still holds write permission by writing
//     its heartbeat word on a quorum of replicas (1-op chain per remote —
//     a revoked rkey NACKs), then serves from its applied state. Same 2-RT
//     profile at n=3.
//
// Control plane (leader change only — CPU off the critical path is fine):
//   * RevokeGrant RPC (src/rpc): the replica checks the proposed epoch,
//     deregisters the old region and re-registers it (fresh rkey), records
//     the new ⟨epoch, leader⟩, and returns the rkey plus its log tail above
//     the candidate's known sequence. The candidate adopts the
//     highest-epoch entry per slot across a quorum of grants and re-commits
//     the adopted suffix before serving — the classic Paxos read phase,
//     expressed as memory grants.
//
// The deliberately buggy variant (require_revoke_quorum = false) is the
// positive control for the checkers: a candidate proceeds as soon as its
// OWN colocated replica grants (revocation without a quorum), and commits
// against whatever subset has granted so far. Quorum intersection is gone,
// so a deposed-but-alive leader and the usurper can both acknowledge
// writes — a split brain that surfaces as stale reads / divergent logs
// under schedule perturbation (src/explore), while every canonical
// schedule stays clean.
//
// Every client op records an invocation/response entry in an optional
// check::HistoryRecorder, so src/check's Wing–Gong linearizability checker
// applies directly; replicas expose quiescent log accessors for the
// cross-replica log-safety oracle.
#ifndef PRISM_SRC_CONSENSUS_CONSENSUS_H_
#define PRISM_SRC_CONSENSUS_CONSENSUS_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/check/history.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/prism/service.h"
#include "src/rdma/service.h"
#include "src/rpc/rpc.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::consensus {

struct ConsensusOptions {
  int n_replicas = 3;
  // Log capacity in slots; a Put past the end fails kResourceExhausted
  // (tests and benches are sized to never wrap).
  uint64_t log_capacity = 4096;
  // Correct protocol: a candidate needs grants from a majority before
  // leading, and a commit needs a majority of replica writes. false is the
  // buggy positive control: the candidate proceeds on its colocated
  // replica's grant alone and commits against the granted subset.
  bool require_revoke_quorum = true;
  int max_election_attempts = 8;
  sim::Duration election_backoff = sim::Micros(20);
  // A Put spawns a background re-grant probe for missing replicas every
  // `regrant_interval` committed ops (heals membership after restarts).
  uint64_t regrant_interval = 64;
  rdma::Backend backend = rdma::Backend::kHardwareNic;
  core::Deployment deployment = core::Deployment::kHardwareProjected;
};

// Values are fixed 16-byte two-word payloads (both words unique per
// (seed, client, op), as in src/sync — fingerprints of mixed halves never
// collide with a recorded write).
inline constexpr uint64_t kValueSize = 16;

// Replica memory layout: a control block followed by the log.
//   ctrl: [epoch u64][commit u64][heartbeat u64][leader u64][pad 32 B]
//   slot: [hdr u64][key u64][value lo u64][value hi u64]   (32 B stride)
// hdr packs ⟨epoch, seq⟩; 0 = empty slot. Sequences are 1-based.
inline constexpr uint64_t kCtrlBytes = 64;
inline constexpr uint64_t kEpochOff = 0;
inline constexpr uint64_t kCommitOff = 8;
inline constexpr uint64_t kHeartbeatOff = 16;
inline constexpr uint64_t kLeaderOff = 24;
inline constexpr uint64_t kSlotStride = 32;
inline constexpr uint64_t kHdrOff = 0;
inline constexpr uint64_t kSlotKeyOff = 8;
inline constexpr uint64_t kSlotValueOff = 16;

inline constexpr uint64_t PackHdr(uint64_t epoch, uint64_t seq) {
  return (epoch << 40) | seq;
}
inline constexpr uint64_t HdrEpoch(uint64_t hdr) { return hdr >> 40; }
inline constexpr uint64_t HdrSeq(uint64_t hdr) {
  return hdr & ((uint64_t{1} << 40) - 1);
}

Bytes MakeValue(uint64_t seed, int client, int op);

// ---- control-plane wire types (RevokeGrant RPC) ----

inline constexpr rpc::MethodId kRevokeGrantMethod = 0x52474E54;  // "RGNT"
inline constexpr uint32_t kMaxCatchupEntries = 32;

struct LogEntryWire {
  uint64_t seq = 0;
  uint64_t hdr = 0;
  uint64_t key = 0;
  uint64_t v_lo = 0;
  uint64_t v_hi = 0;
};

struct GrantRequest {
  uint64_t epoch = 0;
  uint32_t candidate = 0;
  // Entries with seq > from_seq are returned (up to kMaxCatchupEntries per
  // response; the candidate loops until caught up).
  uint64_t from_seq = 0;
};

struct GrantResponse {
  bool granted = false;
  uint64_t epoch = 0;  // replica's current epoch (the higher one on reject)
  uint64_t rkey = 0;
  uint64_t commit_seq = 0;
  uint64_t write_seq = 0;  // highest nonempty slot
  uint32_t n_entries = 0;
  LogEntryWire entries[kMaxCatchupEntries];
};

class ConsensusCluster;

// One passive replica: registered control+log memory plus the control-plane
// grant handler. The data path never touches its CPU.
class ConsensusReplica {
 public:
  ConsensusReplica(net::Fabric* fabric, net::HostId host,
                   ConsensusOptions opts);

  net::HostId host() const { return host_; }
  rdma::RdmaService& rdma() { return *rdma_; }
  core::PrismServer& prism() { return *prism_; }
  rpc::RpcServer& rpc() { return *rpc_; }

  rdma::Addr ctrl_addr() const { return region_.base; }
  rdma::Addr slot_addr(uint64_t seq) const {
    return region_.base + kCtrlBytes + (seq - 1) * kSlotStride;
  }

  // The control-plane grant: epoch > current revokes the old registration
  // (fresh rkey) and records the new leader; epoch == current from the
  // incumbent is an idempotent catch-up read. Synchronous — the RPC handler
  // and the colocated leader both call it directly.
  GrantResponse Grant(const GrantRequest& req);

  // Colocated-leader fast path (same host, plain memory): append one entry
  // and advance the durable commit word.
  void LocalAppend(uint64_t seq, uint64_t hdr, uint64_t key, ByteView value);
  void SetCommit(uint64_t seq);

  // ---- quiescent accessors (tests / oracles / local leader checks) ----
  uint64_t epoch() const { return mem_->LoadWord(ctrl_addr() + kEpochOff); }
  uint64_t leader() const { return mem_->LoadWord(ctrl_addr() + kLeaderOff); }
  uint64_t commit_seq() const {
    return mem_->LoadWord(ctrl_addr() + kCommitOff);
  }
  uint64_t write_seq() const;
  // false when the slot is empty.
  bool EntryAt(uint64_t seq, LogEntryWire* out) const;
  // Folds the committed prefix (holes skipped) for one key; kAbsent when
  // the key was never committed.
  check::ValueId FinalValue(uint64_t key) const;

  rdma::RKey rkey() const { return region_.rkey; }
  uint64_t grants_served() const { return grants_served_; }
  uint64_t revocations() const { return revocations_; }

 private:
  ConsensusOptions opts_;
  net::HostId host_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<rdma::RdmaService> rdma_;
  std::unique_ptr<core::PrismServer> prism_;
  std::unique_ptr<rpc::RpcServer> rpc_;
  rdma::MemoryRegion region_;
  uint64_t grants_served_ = 0;
  uint64_t revocations_ = 0;
};

// A leader candidate, colocated with replica `id`. Holds the leadership
// state (epoch, per-replica rkeys, applied KV state) and the commit logic;
// per-client verbs issue through ConsensusSession's own PrismClient so the
// complexity tally stays per-class.
class ConsensusNode {
 public:
  ConsensusNode(net::Fabric* fabric, ConsensusCluster* cluster, int id);

  int id() const { return id_; }
  net::HostId host() const { return host_; }
  bool leading() const { return leading_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t committed_seq() const { return committed_seq_; }
  int granted_count() const;

  // Runs the revoke-quorum election + catch-up + adopted-suffix re-commit.
  // Returns the won epoch. Control-plane traffic (RPCs, repair chains) is
  // charged to this node's own clients, not to any session.
  sim::Task<Result<uint64_t>> BecomeLeader(obs::OpTimeline* op);

  // ---- stats ----
  uint64_t elections_won() const { return elections_won_; }
  uint64_t elections_lost() const { return elections_lost_; }
  uint64_t deposals_observed() const { return deposals_observed_; }
  uint64_t entries_adopted() const { return entries_adopted_; }
  uint64_t regrants() const { return regrants_; }
  // Control-plane complexity (election RPCs + repair chains).
  obs::TransportTally control_tally() const {
    return rpc_.tally() + prism_.tally();
  }

  enum class Applied { kNo, kYes, kMaybe };
  struct PutOutcome {
    Status status;
    Applied applied = Applied::kNo;
  };

 private:
  friend class ConsensusSession;
  friend class ConsensusCluster;

  // The current-op register only survives synchronous handoffs, so the op
  // pointer is threaded explicitly and re-armed before every verb/chain/RPC
  // (the span-register discipline, as in src/sync).
  void Arm(obs::OpTimeline* op);

  // True while this node's epoch is still the one its colocated replica
  // granted — the free local leg of every permission check.
  bool LocalPermissionValid() const;
  int CommitNeed() const;

  sim::Task<PutOutcome> SubmitPut(core::PrismClient* pc, uint64_t key,
                                  Bytes value, obs::OpTimeline* op);
  sim::Task<Result<Bytes>> SubmitGet(core::PrismClient* pc, uint64_t key,
                                     obs::OpTimeline* op);

  // One commit chain to remote replica r: CAS slot hdr 0→⟨epoch,seq⟩, then
  // conditional payload + piggybacked commit-index writes. Arrives on `q`.
  sim::Task<void> AppendChain(core::PrismClient* pc, int r, uint64_t seq,
                              uint64_t hdr, uint64_t key, uint64_t prev_commit,
                              std::shared_ptr<Bytes> value,
                              std::shared_ptr<sim::Quorum> q,
                              obs::OpTimeline* op);
  sim::Task<void> ConfirmChain(core::PrismClient* pc, int r,
                               std::shared_ptr<sim::Quorum> q,
                               obs::OpTimeline* op);

  // Unconditional repair write (exclusive permission): used for adopted
  // entries and re-grant healing.
  sim::Task<bool> RepairOne(int r, rdma::RKey rkey, const LogEntryWire& e,
                            uint64_t commit, obs::OpTimeline* op);

  // A kPermissionDenied NACK from replica r means it revoked our rkey.
  void MarkDeposed(int r);

  // Wipe-stale-tail + replay-committed-range + commit-word write for a
  // replica that just (re-)granted; marks it granted on success. Shared by
  // the background probe and a late post-quorum grant.
  sim::Task<bool> HealReplica(int r, rdma::RKey rkey, uint64_t their_commit,
                              uint64_t their_write, obs::OpTimeline* op);
  // Background probe: re-grant + repair replicas missing from granted_.
  sim::Task<void> TryRegrant(obs::OpTimeline* op);

  // Ingests one grant into the election scratch state.
  struct Elect;
  sim::Task<void> AskGrant(std::shared_ptr<Elect> st, int r);
  void Adopt(Elect& st, int r, const GrantResponse& resp);
  Status BuildView(Elect& st, std::map<uint64_t, LogEntryWire>* view);
  // Catch-up (point-fetch of committed holes), adopted-suffix re-commit
  // under the new epoch, and reign installation.
  sim::Task<Status> FinishElection(std::shared_ptr<Elect> st,
                                   obs::OpTimeline* op);

  net::Fabric* fabric_;
  ConsensusCluster* cluster_;
  int id_;
  net::HostId host_;
  rpc::RpcClient rpc_;
  core::PrismClient prism_;
  sim::Mutex mu_;

  bool leading_ = false;
  uint64_t epoch_ = 0;
  uint64_t last_seen_epoch_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t committed_seq_ = 0;
  std::vector<bool> granted_;
  std::vector<rdma::RKey> rkeys_;
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> applied_;
  bool regrant_inflight_ = false;

  uint64_t elections_won_ = 0;
  uint64_t elections_lost_ = 0;
  uint64_t deposals_observed_ = 0;
  uint64_t entries_adopted_ = 0;
  uint64_t regrants_ = 0;
};

// The replica group plus its leader candidates. Owns the failover
// serialization (one election at a time) and the leader hint clients start
// from.
class ConsensusCluster {
 public:
  ConsensusCluster(net::Fabric* fabric, std::vector<net::HostId> hosts,
                   ConsensusOptions opts);

  int n() const { return static_cast<int>(replicas_.size()); }
  int quorum() const { return n() / 2 + 1; }
  const ConsensusOptions& options() const { return opts_; }
  net::Fabric* fabric() { return fabric_; }
  ConsensusReplica& replica(int i) { return *replicas_[i]; }
  const ConsensusReplica& replica(int i) const { return *replicas_[i]; }
  ConsensusNode& node(int i) { return *nodes_[i]; }

  int leader_hint() const { return leader_hint_; }
  void set_leader_hint(int i) { leader_hint_ = i; }

  // Elects `candidate` (serialized across callers). A concurrent election
  // that already produced a newer leader short-circuits.
  sim::Task<Result<uint64_t>> Failover(int candidate, obs::OpTimeline* op);

  // Spawned protocol tasks (laggard chains, background re-grants) register
  // here so runs can assert a clean drain.
  sim::TaskTracker& tracker() { return tracker_; }
  uint64_t failovers() const { return failovers_; }

 private:
  ConsensusOptions opts_;
  net::Fabric* fabric_;
  std::vector<std::unique_ptr<ConsensusReplica>> replicas_;
  std::vector<std::unique_ptr<ConsensusNode>> nodes_;
  sim::Mutex elect_mu_;
  sim::TaskTracker tracker_;
  int leader_hint_ = 0;
  uint64_t elect_generation_ = 0;
  uint64_t failovers_ = 0;
};

// Per-logical-client data-path handle: one PrismClient per node so chains
// issue from the current leader's host and the complexity tally is
// attributable to this client's op class.
class ConsensusSession {
 public:
  explicit ConsensusSession(ConsensusCluster* cluster);

  // Executes on node `leader`; no retry — the caller owns that policy.
  sim::Task<ConsensusNode::PutOutcome> PutOn(int leader, uint64_t key,
                                             Bytes value,
                                             obs::OpTimeline* op) {
    return cluster_->node(leader).SubmitPut(clients_[leader].get(), key,
                                            std::move(value), op);
  }
  sim::Task<Result<Bytes>> GetOn(int leader, uint64_t key,
                                 obs::OpTimeline* op) {
    return cluster_->node(leader).SubmitGet(clients_[leader].get(), key, op);
  }

  void set_batcher(rdma::VerbBatcher* b);
  obs::TransportTally tally() const;
  uint64_t round_trips() const { return tally().round_trips; }

 private:
  friend class ConsensusClient;
  ConsensusCluster* cluster_;
  std::vector<std::unique_ptr<core::PrismClient>> clients_;
};

// Linearizable register/KV client: leader discovery, failover triggering,
// bounded retries, and src/check history recording. A Put is retried only
// while it definitely has not taken effect; the first maybe-applied outcome
// ends it as kIndeterminate (retrying could double-apply).
class ConsensusClient {
 public:
  ConsensusClient(ConsensusCluster* cluster, uint16_t client_id,
                  uint64_t rng_seed);

  sim::Task<Status> Put(uint64_t key, Bytes value);
  sim::Task<Result<Bytes>> Get(uint64_t key);

  void set_history(check::HistoryRecorder* history, int client_id) {
    history_ = history;
    history_client_ = client_id;
  }
  void set_batcher(rdma::VerbBatcher* b) { session_.set_batcher(b); }
  // Retries per op before giving up (each failed attempt may trigger a
  // failover to the next candidate).
  void set_max_attempts(int n) { max_attempts_ = n; }

  ConsensusSession& session() { return session_; }
  uint64_t failovers_triggered() const { return failovers_triggered_; }
  uint64_t retries() const { return retries_; }

 private:
  sim::Task<void> RecoverLeadership(int failed_leader, obs::OpTimeline* op);

  ConsensusCluster* cluster_;
  uint16_t id_;
  Rng rng_;
  ConsensusSession session_;
  check::HistoryRecorder* history_ = nullptr;
  int history_client_ = 0;
  int max_attempts_ = 8;
  uint64_t failovers_triggered_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace prism::consensus

#endif  // PRISM_SRC_CONSENSUS_CONSENSUS_H_
