#include "src/chaos/chaos.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace prism::chaos {

namespace {

struct Window {
  sim::TimePoint start;
  sim::TimePoint end;
};

bool Overlaps(const Window& a, const Window& b) {
  return a.start < b.end && b.start < a.end;
}

const char* KindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kPartitionStart: return "partition";
    case FaultKind::kPartitionStop: return "heal-partition";
    case FaultKind::kLossBurstStart: return "loss-burst";
    case FaultKind::kLossBurstStop: return "end-loss-burst";
    case FaultKind::kLatencySpikeStart: return "latency-spike";
    case FaultKind::kLatencySpikeStop: return "end-latency-spike";
  }
  return "?";
}

}  // namespace

ChaosMonkey::ChaosMonkey(net::Fabric* fabric, ChaosOptions opts)
    : fabric_(fabric), opts_(std::move(opts)) {
  PRISM_CHECK_LT(opts_.start, opts_.horizon);
  base_loss_ = fabric_->cost().loss_probability;
  BuildSchedule();
}

void ChaosMonkey::BuildSchedule() {
  Rng rng(opts_.seed);
  const uint64_t lo = static_cast<uint64_t>(opts_.start);
  const uint64_t hi = static_cast<uint64_t>(opts_.horizon);

  auto window = [&](sim::Duration min_len, sim::Duration max_len) {
    const sim::TimePoint s =
        static_cast<sim::TimePoint>(rng.NextInRange(lo, hi));
    const sim::Duration len = static_cast<sim::Duration>(
        rng.NextInRange(static_cast<uint64_t>(min_len),
                        static_cast<uint64_t>(max_len)));
    return Window{s, std::min<sim::TimePoint>(s + len, opts_.horizon)};
  };

  // Crash windows: hold every crashable host's windows, rejecting draws
  // that would exceed max_concurrent_crashes anywhere or re-crash a host
  // that is already down (rejected draws are simply skipped — the schedule
  // stays a pure function of the seed).
  std::vector<std::pair<net::HostId, Window>> crash_windows;
  if (!opts_.crashable.empty() && opts_.max_concurrent_crashes > 0) {
    for (int i = 0; i < opts_.crash_count; ++i) {
      const net::HostId host =
          opts_.crashable[rng.NextBelow(opts_.crashable.size())];
      const Window w = window(opts_.min_downtime, opts_.max_downtime);
      if (w.end <= w.start) continue;
      bool admissible = true;
      int overlapping = 0;
      for (const auto& [other_host, other] : crash_windows) {
        if (!Overlaps(w, other)) continue;
        if (other_host == host) admissible = false;
        overlapping++;
      }
      if (!admissible || overlapping >= opts_.max_concurrent_crashes) {
        continue;
      }
      crash_windows.emplace_back(host, w);
      const int wid = window_count_++;
      FaultEvent crash{w.start, FaultKind::kCrash, host};
      crash.window = wid;
      FaultEvent restart{w.end, FaultKind::kRestart, host};
      restart.window = wid;
      schedule_.push_back(crash);
      schedule_.push_back(restart);
    }
  }

  if (opts_.partition_hosts.size() >= 2) {
    for (int i = 0; i < opts_.partition_count; ++i) {
      const net::HostId a =
          opts_.partition_hosts[rng.NextBelow(opts_.partition_hosts.size())];
      const net::HostId b =
          opts_.partition_hosts[rng.NextBelow(opts_.partition_hosts.size())];
      const Window w = window(opts_.min_partition, opts_.max_partition);
      if (a == b || w.end <= w.start) continue;
      const int wid = window_count_++;
      FaultEvent start{w.start, FaultKind::kPartitionStart, a, b};
      start.window = wid;
      FaultEvent stop{w.end, FaultKind::kPartitionStop, a, b};
      stop.window = wid;
      schedule_.push_back(start);
      schedule_.push_back(stop);
    }
  }

  // Loss bursts set an absolute probability, so windows must not overlap
  // (the stop event restores the base rate).
  std::vector<Window> bursts;
  for (int i = 0; i < opts_.loss_burst_count; ++i) {
    const Window w = window(opts_.min_burst, opts_.max_burst);
    if (w.end <= w.start) continue;
    bool clear = true;
    for (const Window& other : bursts) clear = clear && !Overlaps(w, other);
    if (!clear) continue;
    bursts.push_back(w);
    const int wid = window_count_++;
    FaultEvent start{w.start, FaultKind::kLossBurstStart};
    start.loss = opts_.loss_burst_probability;
    start.window = wid;
    schedule_.push_back(start);
    FaultEvent stop{w.end, FaultKind::kLossBurstStop};
    stop.window = wid;
    schedule_.push_back(stop);
  }

  // Latency spikes are additive and may overlap freely.
  for (int i = 0; i < opts_.latency_spike_count; ++i) {
    const Window w = window(opts_.min_spike, opts_.max_spike);
    if (w.end <= w.start) continue;
    const int wid = window_count_++;
    FaultEvent start{w.start, FaultKind::kLatencySpikeStart};
    start.extra_latency = opts_.spike_latency;
    start.window = wid;
    schedule_.push_back(start);
    FaultEvent stop{w.end, FaultKind::kLatencySpikeStop};
    stop.extra_latency = opts_.spike_latency;
    stop.window = wid;
    schedule_.push_back(stop);
  }

  std::stable_sort(
      schedule_.begin(), schedule_.end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
}

void ChaosMonkey::Arm() {
  sim::Simulator* sim = fabric_->simulator();
  for (const FaultEvent& ev : schedule_) {
    if (IsWindowDisabled(ev.window)) continue;
    sim->ScheduleAt(ev.at, [this, ev]() { Apply(ev); });
  }
}

void ChaosMonkey::SetWindowDisabled(int window, bool disabled) {
  PRISM_CHECK_GE(window, 0);
  PRISM_CHECK_LT(window, window_count_);
  if (window_disabled_.empty()) {
    window_disabled_.assign(static_cast<size_t>(window_count_), false);
  }
  window_disabled_[static_cast<size_t>(window)] = disabled;
}

bool ChaosMonkey::IsWindowDisabled(int window) const {
  if (window < 0 || window_disabled_.empty()) return false;
  return window_disabled_[static_cast<size_t>(window)];
}

void ChaosMonkey::Apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrash:
      fabric_->SetHostUp(ev.a, false);
      crashes_injected_++;
      break;
    case FaultKind::kRestart: {
      fabric_->SetHostUp(ev.a, true);
      auto hook = restart_hooks_.find(ev.a);
      if (hook != restart_hooks_.end()) hook->second();
      break;
    }
    case FaultKind::kPartitionStart:
      fabric_->SetLinkBlocked(ev.a, ev.b, true);
      partitions_injected_++;
      break;
    case FaultKind::kPartitionStop:
      fabric_->SetLinkBlocked(ev.a, ev.b, false);
      break;
    case FaultKind::kLossBurstStart:
      fabric_->mutable_cost().loss_probability = ev.loss;
      loss_bursts_injected_++;
      break;
    case FaultKind::kLossBurstStop:
      fabric_->mutable_cost().loss_probability = base_loss_;
      break;
    case FaultKind::kLatencySpikeStart:
      fabric_->mutable_cost().propagation += ev.extra_latency;
      latency_spikes_injected_++;
      break;
    case FaultKind::kLatencySpikeStop:
      fabric_->mutable_cost().propagation -= ev.extra_latency;
      break;
  }
}

std::string ChaosMonkey::Describe() const {
  std::string out = "chaos seed=" + std::to_string(opts_.seed) + " (" +
                    std::to_string(schedule_.size()) + " events)";
  for (const FaultEvent& ev : schedule_) {
    char line[160];
    switch (ev.kind) {
      case FaultKind::kPartitionStart:
      case FaultKind::kPartitionStop:
        std::snprintf(line, sizeof(line), "\n  t=%-10" PRId64 " %s %u->%u",
                      ev.at, KindName(ev.kind), ev.a, ev.b);
        break;
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        std::snprintf(line, sizeof(line), "\n  t=%-10" PRId64 " %s host %u",
                      ev.at, KindName(ev.kind), ev.a);
        break;
      case FaultKind::kLossBurstStart:
        std::snprintf(line, sizeof(line), "\n  t=%-10" PRId64 " %s p=%.2f",
                      ev.at, KindName(ev.kind), ev.loss);
        break;
      default:
        std::snprintf(line, sizeof(line), "\n  t=%-10" PRId64 " %s", ev.at,
                      KindName(ev.kind));
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace prism::chaos
