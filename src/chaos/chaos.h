// Deterministic fault injection for the simulated fabric.
//
// A ChaosMonkey expands a seed into a timed schedule of faults —
// crash/restart windows for designated hosts, asymmetric (directed) link
// partitions, wire-loss bursts, and propagation-latency spikes — and arms
// them on the simulator. The schedule is a pure function of ChaosOptions
// (including the seed), so a failing run is replayed exactly by re-running
// with the same seed; Describe() prints the expanded schedule for the log.
//
// Faults flow through the fabric's own failure hooks: SetHostUp (which
// purges in-flight traffic toward the dead incarnation), SetLinkBlocked,
// and mutable_cost(). All windows close by `horizon`, so a workload that
// outlives the schedule always runs its tail on a healed network.
#ifndef PRISM_SRC_CHAOS_CHAOS_H_
#define PRISM_SRC_CHAOS_CHAOS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/net/fabric.h"
#include "src/sim/time.h"

namespace prism::chaos {

enum class FaultKind {
  kCrash,
  kRestart,
  kPartitionStart,
  kPartitionStop,
  kLossBurstStart,
  kLossBurstStop,
  kLatencySpikeStart,
  kLatencySpikeStop,
};

struct FaultEvent {
  sim::TimePoint at = 0;
  FaultKind kind = FaultKind::kCrash;
  net::HostId a = 0;                // host (crash) or link source
  net::HostId b = 0;                // link destination
  double loss = 0.0;                // burst loss probability
  sim::Duration extra_latency = 0;  // spike propagation surcharge
  int window = -1;                  // fault window this event belongs to
};

struct ChaosOptions {
  uint64_t seed = 1;
  // Faults are scheduled inside [start, horizon]; every fault is healed by
  // horizon (restart / unblock / restore events are clamped to it).
  sim::TimePoint start = sim::Micros(50);
  sim::TimePoint horizon = sim::Millis(8);

  // Crash/restart: hosts eligible to crash, how many windows to attempt,
  // and the cap on concurrently-down hosts (an f-tolerant service keeps
  // quorums live with max_concurrent_crashes <= f).
  std::vector<net::HostId> crashable;
  int crash_count = 3;
  int max_concurrent_crashes = 1;
  sim::Duration min_downtime = sim::Micros(100);
  sim::Duration max_downtime = sim::Millis(1);

  // Directed partitions between pairs drawn from these hosts.
  std::vector<net::HostId> partition_hosts;
  int partition_count = 2;
  sim::Duration min_partition = sim::Micros(100);
  sim::Duration max_partition = sim::Millis(1);

  // Wire-loss bursts (temporarily raised CostModel::loss_probability).
  int loss_burst_count = 2;
  double loss_burst_probability = 0.4;
  sim::Duration min_burst = sim::Micros(50);
  sim::Duration max_burst = sim::Micros(500);

  // Propagation latency spikes (additive, so overlaps compose).
  int latency_spike_count = 2;
  sim::Duration spike_latency = sim::Micros(20);
  sim::Duration min_spike = sim::Micros(50);
  sim::Duration max_spike = sim::Micros(500);
};

class ChaosMonkey {
 public:
  // Builds the schedule immediately (it is inspectable before Arm).
  ChaosMonkey(net::Fabric* fabric, ChaosOptions opts);

  // Schedules every fault event on the fabric's simulator. Call once,
  // before running the sim past opts.start.
  void Arm();

  // Runs `hook` just after `host` restarts from a crash (e.g. to model
  // memory loss by wiping application state).
  void SetRestartHook(net::HostId host, std::function<void()> hook) {
    restart_hooks_[host] = std::move(hook);
  }

  const std::vector<FaultEvent>& schedule() const { return schedule_; }
  std::string Describe() const;

  // ---- fault windows ----
  //
  // Every fault comes as a start/stop pair (crash+restart, partition and
  // its heal, burst and its end, spike and its end) sharing one window id
  // in [0, window_count()). The schedule-space explorer's shrinker
  // minimizes fault schedules at window granularity: disabling a window
  // drops BOTH its events, so network/host state stays balanced. Disabling
  // never changes the RNG expansion — the full schedule is always built and
  // filtered only at Arm() time, so a shrunk run replays the surviving
  // windows at their original times.
  int window_count() const { return window_count_; }
  void SetWindowDisabled(int window, bool disabled);
  bool IsWindowDisabled(int window) const;

  // ---- counters (filled in as the armed schedule executes) ----
  int crashes_injected() const { return crashes_injected_; }
  int partitions_injected() const { return partitions_injected_; }
  int loss_bursts_injected() const { return loss_bursts_injected_; }
  int latency_spikes_injected() const { return latency_spikes_injected_; }

 private:
  void BuildSchedule();
  void Apply(const FaultEvent& ev);

  net::Fabric* fabric_;
  ChaosOptions opts_;
  std::vector<FaultEvent> schedule_;
  int window_count_ = 0;
  std::vector<bool> window_disabled_;
  std::map<net::HostId, std::function<void()>> restart_hooks_;
  double base_loss_ = 0.0;
  int crashes_injected_ = 0;
  int partitions_injected_ = 0;
  int loss_bursts_injected_ = 0;
  int latency_spikes_injected_ = 0;
};

}  // namespace prism::chaos

#endif  // PRISM_SRC_CHAOS_CHAOS_H_
