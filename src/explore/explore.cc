#include "src/explore/explore.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/harness/sweep.h"

namespace prism::explore {

namespace {

// SplitMix64-style combine for per-run hook seeds.
uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1) + 0xbf58476d1ce4e5b9ull * (c + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ShrinkResult Shrink(const ShrinkRunner& runner,
                    std::vector<Perturbation> initial, int fault_windows) {
  ShrinkResult res;
  res.perturbations = std::move(initial);

  // The recorded decision list must reproduce the violation through a
  // ReplayHook before any minimization — replay fidelity is the invariant
  // the whole shrink rests on.
  RunOutcome witness;
  {
    RunOutcome o = runner(res.perturbations, res.disabled_windows);
    ++res.runs;
    PRISM_CHECK(!o.ok) << "replayed perturbations did not reproduce the "
                          "violation (replay fidelity broken)";
    witness = std::move(o);
  }

  // Greedy perturbation removal to a fixpoint. Singles pass: drop one
  // decision, keep the drop iff the violation persists; scan front-to-back
  // and restart until a full pass removes nothing (1-minimal). Then a pairs
  // pass: perturbations can be entangled — removing either of two decisions
  // alone shifts the schedule enough to mask the bug while removing both
  // still fails — so also try every pair, and on success drop both and
  // return to the singles pass. The result is 2-minimal and deterministic
  // (fixed scan order, first success taken).
  auto shrink_perturbations = [&] {
    for (bool changed = true; changed;) {
      changed = false;
      for (size_t i = 0; i < res.perturbations.size();) {
        std::vector<Perturbation> trial = res.perturbations;
        trial.erase(trial.begin() + static_cast<ptrdiff_t>(i));
        RunOutcome o = runner(trial, res.disabled_windows);
        ++res.runs;
        if (!o.ok) {
          res.perturbations = std::move(trial);
          witness = std::move(o);
          changed = true;
        } else {
          ++i;
        }
      }
      if (changed) continue;
      for (size_t i = 0; !changed && i + 1 < res.perturbations.size(); ++i) {
        for (size_t j = i + 1; j < res.perturbations.size(); ++j) {
          std::vector<Perturbation> trial = res.perturbations;
          trial.erase(trial.begin() + static_cast<ptrdiff_t>(j));
          trial.erase(trial.begin() + static_cast<ptrdiff_t>(i));
          RunOutcome o = runner(trial, res.disabled_windows);
          ++res.runs;
          if (!o.ok) {
            res.perturbations = std::move(trial);
            witness = std::move(o);
            changed = true;
            break;
          }
        }
      }
    }
  };
  shrink_perturbations();

  // Fault-schedule minimization at window granularity: disable one
  // surviving window at a time, keep it disabled iff the violation
  // persists. Windows are starts/stop pairs, so the surviving schedule
  // stays balanced (no crash without its restart).
  for (int w = 0; w < fault_windows; ++w) {
    std::vector<int> trial = res.disabled_windows;
    trial.push_back(w);
    RunOutcome o = runner(res.perturbations, trial);
    ++res.runs;
    if (!o.ok) {
      res.disabled_windows = std::move(trial);
      witness = std::move(o);
    }
  }

  // Removing faults can make more perturbations redundant; one more
  // perturbation pass picks those up.
  if (!res.disabled_windows.empty()) shrink_perturbations();

  res.check_name = witness.check_name;
  res.error = witness.error;
  return res;
}

SeedReport ExploreSeed(Workload kind, uint64_t seed,
                       const ExploreOptions& opts) {
  SeedReport rep;
  rep.seed = seed;
  std::optional<std::vector<Perturbation>> first_fail;
  int fault_windows = 0;
  // Step count of the first run, used to place later runs' perturbation
  // bursts. Budget and rate confine each run's perturbations to a window of
  // roughly budget/rate steps starting at the hook offset. Even-indexed
  // runs burst at the prefix (offset 0, where client start-up races
  // cluster); odd-indexed runs slide the burst to a seed-deterministic
  // position in [0, horizon), so races deep in the schedule — e.g. a
  // critical-section handoff thousands of events in — see the same
  // perturbation density as the prefix.
  uint64_t horizon = 0;
  for (int r = 0; r < opts.runs; ++r) {
    uint64_t offset = 0;
    if ((r % 2) == 1 && horizon > 0) {
      offset = MixSeed(opts.explore_seed ^ 0x62757273ull, seed,
                       static_cast<uint64_t>(r)) %
               horizon;
    }
    PerturbHook hook(MixSeed(opts.explore_seed, seed, static_cast<uint64_t>(r)),
                     opts.delta, opts.budget, opts.rate, offset);
    WorkloadOptions wo;
    wo.kind = kind;
    wo.seed = seed;
    wo.hook = &hook;
    RunOutcome o = RunWorkload(wo);
    ++rep.runs;
    if (r == 0) horizon = hook.steps();
    if (!o.ok) {
      ++rep.failures;
      if (!first_fail.has_value()) {
        first_fail = hook.applied();
        fault_windows = o.fault_windows;
        rep.check_name = o.check_name;
        rep.error = o.error;
      }
      if (opts.stop_on_failure) break;
    }
  }
  if (first_fail.has_value() && opts.shrink) {
    auto runner = [&](const std::vector<Perturbation>& p,
                      const std::vector<int>& disabled) {
      ReplayHook hook(opts.delta, p);
      WorkloadOptions wo;
      wo.kind = kind;
      wo.seed = seed;
      wo.hook = &hook;
      wo.disabled_windows = &disabled;
      return RunWorkload(wo);
    };
    ShrinkResult s = Shrink(runner, *first_fail, fault_windows);
    rep.shrink_runs = s.runs;
    rep.check_name = s.check_name;
    rep.error = s.error;
    Reproducer repro;
    repro.kind = kind;
    repro.seed = seed;
    repro.delta = opts.delta;
    repro.perturbations = std::move(s.perturbations);
    repro.disabled_windows = std::move(s.disabled_windows);
    repro.check_name = s.check_name;
    rep.repro = std::move(repro);
  }
  return rep;
}

SweepReport ExploreSweep(Workload kind, const std::vector<uint64_t>& seeds,
                         const ExploreOptions& opts, int jobs) {
  std::vector<harness::SweepPoint<SeedReport>> points;
  points.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    points.push_back([kind, seed, opts] { return ExploreSeed(kind, seed, opts); });
  }
  harness::SweepOptions sopts;
  sopts.jobs = jobs;
  SweepReport report;
  report.reports = harness::RunSweep(points, sopts);
  report.seeds = static_cast<int>(seeds.size());
  for (const SeedReport& r : report.reports) {
    report.total_runs += r.runs + r.shrink_runs;
    if (r.failures > 0) ++report.failing_seeds;
  }
  return report;
}

RunOutcome ReplayReproducer(const Reproducer& repro) {
  ReplayHook hook(repro.delta, repro.perturbations);
  WorkloadOptions wo;
  wo.kind = repro.kind;
  wo.seed = repro.seed;
  wo.hook = &hook;
  wo.disabled_windows = &repro.disabled_windows;
  return RunWorkload(wo);
}

std::string FormatReproducer(const Reproducer& repro) {
  std::ostringstream os;
  os << "prism-explore v1\n";
  os << "workload " << WorkloadName(repro.kind) << "\n";
  os << "seed " << repro.seed << "\n";
  os << "delta " << repro.delta << "\n";
  if (!repro.check_name.empty()) os << "check " << repro.check_name << "\n";
  for (int w : repro.disabled_windows) os << "disable-window " << w << "\n";
  for (const Perturbation& p : repro.perturbations) {
    os << "perturb " << p.step << " " << p.choice << "\n";
  }
  return os.str();
}

bool ParseReproducer(const std::string& text, Reproducer* out,
                     std::string* error) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "prism-explore v1") {
    if (error != nullptr) *error = "missing 'prism-explore v1' header";
    return false;
  }
  Reproducer repro;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    bool ok = true;
    if (directive == "workload") {
      std::string name;
      ls >> name;
      ok = !ls.fail() && WorkloadFromName(name, &repro.kind);
    } else if (directive == "seed") {
      ls >> repro.seed;
      ok = !ls.fail();
    } else if (directive == "delta") {
      ls >> repro.delta;
      ok = !ls.fail() && repro.delta >= 0;
    } else if (directive == "check") {
      ls >> repro.check_name;
      ok = !ls.fail();
    } else if (directive == "disable-window") {
      int w = -1;
      ls >> w;
      ok = !ls.fail() && w >= 0;
      if (ok) repro.disabled_windows.push_back(w);
    } else if (directive == "perturb") {
      Perturbation p;
      ls >> p.step >> p.choice;
      ok = !ls.fail();
      ok = ok && (repro.perturbations.empty() ||
                  repro.perturbations.back().step < p.step);
      if (ok) repro.perturbations.push_back(p);
    } else {
      ok = false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad directive at line " + std::to_string(lineno) + ": " + line;
      }
      return false;
    }
  }
  *out = std::move(repro);
  return true;
}

bool SaveReproducerFile(const std::string& path, const Reproducer& repro,
                        std::string* error) {
  std::ofstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  f << FormatReproducer(repro);
  f.close();
  if (!f) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool LoadReproducerFile(const std::string& path, Reproducer* out,
                        std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseReproducer(buf.str(), out, error);
}

}  // namespace prism::explore
