#include "src/explore/toy_replica.h"

#include "src/common/rng.h"

namespace prism::explore {

ToyReplica::ToyReplica(sim::Simulator* sim, check::HistoryRecorder* history,
                       Options opts)
    : sim_(sim),
      history_(history),
      opts_(opts),
      primary_(opts.keys, kInitial),
      backup_(opts.keys, kInitial) {}

void ToyReplica::SpawnClients(uint64_t seed, sim::TaskTracker* tracker) {
  for (int c = 0; c < opts_.clients; ++c) {
    sim::Spawn(ClientLoop(c, seed), tracker);
  }
}

sim::Task<void> ToyReplica::ClientLoop(int client, uint64_t seed) {
  Rng rng(seed * 31337 + static_cast<uint64_t>(client));
  for (int i = 0; i < opts_.ops_per_client; ++i) {
    const uint64_t key = rng.NextBelow(opts_.keys);
    if (client == 0) {
      const check::ValueId v = MakeValue(seed, client, i);
      const size_t id =
          history_->Begin(client + 1, key, check::OpType::kWrite, v);
      primary_[key] = v;
      // THE BUG: the backup applies asynchronously with no ordering tie to
      // the acknowledgement below — a delayed propagation acks stale state.
      sim_->Schedule(opts_.propagate_delay,
                     [this, key, v] { backup_[key] = v; });
      co_await sim::SleepFor(sim_, opts_.ack_delay);
      history_->End(id, check::Outcome::kOk);
    } else {
      const size_t id = history_->Begin(client + 1, key, check::OpType::kRead);
      const check::ValueId v = backup_[key];  // sampled at invocation
      co_await sim::SleepFor(sim_, opts_.ack_delay);
      history_->End(id, check::Outcome::kOk, v);
    }
    co_await sim::SleepFor(
        sim_, sim::Duration(rng.NextInRange(
                  static_cast<uint64_t>(opts_.min_gap),
                  static_cast<uint64_t>(opts_.max_gap))));
  }
}

}  // namespace prism::explore
