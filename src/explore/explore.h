// The schedule-space exploration engine.
//
// ExploreSeed drives one (workload, seed) point through N perturbed
// executions (seeded PerturbHook per run). On the first violation it
// greedily shrinks the counterexample — first the perturbation list, then
// the fault schedule at window granularity — to a smallest-failing
// Reproducer that replays the violation deterministically from a text
// artifact (tools/explore_main --replay=<file>).
//
// ExploreSweep fans independent seeds across the harness thread pool
// (src/harness/sweep.h); per-seed work is self-contained, so the report is
// bit-identical for any job count.
//
// Shrinking is classic greedy delta-debugging: drop one element, re-run via
// a ReplayHook, keep the drop iff the violation persists; iterate to a
// fixpoint. Every kept intermediate state is a failing run, so the final
// reproducer is 1-minimal: removing any single surviving perturbation or
// re-enabling any single disabled fault window makes the violation vanish.
#ifndef PRISM_SRC_EXPLORE_EXPLORE_H_
#define PRISM_SRC_EXPLORE_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/explore/hooks.h"
#include "src/explore/workloads.h"
#include "src/sim/time.h"

namespace prism::explore {

struct ExploreOptions {
  int runs = 8;               // perturbed executions per seed
  sim::Duration delta = sim::Nanos(1000);  // enabled-window width
  int budget = 8;             // max reorder decisions per run
  double rate = 0.3;          // per-step perturbation probability
  uint64_t explore_seed = 0xE5C4A9E5;  // base for per-run hook seeds
  bool stop_on_failure = true;  // stop a seed's runs at its first violation
  bool shrink = true;
};

// A minimized, replayable counterexample.
struct Reproducer {
  Workload kind = Workload::kToy;
  uint64_t seed = 1;
  sim::Duration delta = 0;
  std::vector<Perturbation> perturbations;
  std::vector<int> disabled_windows;
  std::string check_name;  // failing check, informational
};

// Text round-trip ("prism-explore v1" header, one directive per line) and
// file helpers for --replay artifacts.
std::string FormatReproducer(const Reproducer& repro);
bool ParseReproducer(const std::string& text, Reproducer* out,
                     std::string* error);
bool SaveReproducerFile(const std::string& path, const Reproducer& repro,
                        std::string* error);
bool LoadReproducerFile(const std::string& path, Reproducer* out,
                        std::string* error);

// Re-executes a reproducer through a ReplayHook.
RunOutcome ReplayReproducer(const Reproducer& repro);

// Re-runs a candidate (perturbations, disabled fault windows) pair and
// reports the outcome; the shrinker is written against this so tests can
// shrink synthetic predicates without a simulator.
using ShrinkRunner = std::function<RunOutcome(
    const std::vector<Perturbation>&, const std::vector<int>&)>;

struct ShrinkResult {
  std::vector<Perturbation> perturbations;
  std::vector<int> disabled_windows;
  int runs = 0;  // executions the shrinker spent
  std::string check_name;
  std::string error;  // witness of the minimized failure
};

// `initial` must fail under `runner` with no windows disabled (checked).
// `fault_windows` is the number of windows eligible for disabling.
ShrinkResult Shrink(const ShrinkRunner& runner,
                    std::vector<Perturbation> initial, int fault_windows);

struct SeedReport {
  uint64_t seed = 0;
  int runs = 0;        // perturbed executions performed
  int failures = 0;    // how many of them violated a check
  int shrink_runs = 0;
  std::string check_name;  // first (minimized, if shrunk) failure's check
  std::string error;       // and its witness
  std::optional<Reproducer> repro;  // present iff a failure was shrunk
};

SeedReport ExploreSeed(Workload kind, uint64_t seed,
                       const ExploreOptions& opts);

struct SweepReport {
  int seeds = 0;
  int total_runs = 0;
  int failing_seeds = 0;
  std::vector<SeedReport> reports;  // aligned with the input seed list
};

SweepReport ExploreSweep(Workload kind, const std::vector<uint64_t>& seeds,
                         const ExploreOptions& opts, int jobs = 0);

}  // namespace prism::explore

#endif  // PRISM_SRC_EXPLORE_EXPLORE_H_
