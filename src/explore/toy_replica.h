// A deliberately buggy primary/backup register — the explorer's known-bad
// target for negative tests.
//
// The replica acknowledges a write kAckDelay after invocation, but applies
// it to the backup copy via an asynchronous propagation event scheduled
// only kPropagateDelay after invocation — and reads are served from the
// backup, sampled at invocation time. Under the production schedule the
// propagation always lands before the acknowledgement (kPropagateDelay <
// kAckDelay), so every read that strictly follows a write sees it: the
// canonical execution is linearizable and no plain chaos sweep can expose
// the flaw. Under bounded reordering the bug surfaces two ways:
//
//  * stale read — delay a write's propagation past its acknowledgement AND
//    past a later read's invocation: the read returns the old value after
//    the write was acked (linearizability violation, minimal counterexample
//    two perturbations: fire the ack early, then the read);
//  * lost update — two writes to one key; delay the first write's
//    propagation past the second's: the backup ends on the older value
//    (caught by the differential final-state oracle even if no read ever
//    observed it).
#ifndef PRISM_SRC_EXPLORE_TOY_REPLICA_H_
#define PRISM_SRC_EXPLORE_TOY_REPLICA_H_

#include <cstdint>
#include <vector>

#include "src/check/history.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace prism::explore {

class ToyReplica {
 public:
  struct Options {
    int clients = 2;          // client 0 writes, the others read
    int ops_per_client = 6;
    uint64_t keys = 1;
    sim::Duration propagate_delay = sim::Nanos(100);
    sim::Duration ack_delay = sim::Nanos(300);
    sim::Duration min_gap = sim::Nanos(200);  // think time between ops
    sim::Duration max_gap = sim::Nanos(700);
  };

  // A value no workload write ever produces (see MakeValue).
  static constexpr check::ValueId kInitial = 0x70F0;

  ToyReplica(sim::Simulator* sim, check::HistoryRecorder* history,
             Options opts);

  // Spawns the client coroutines; run the simulator to completion after.
  void SpawnClients(uint64_t seed, sim::TaskTracker* tracker);

  // Quiescent final value of `key` — what a reader would observe once the
  // event queue drained (reads are served from the backup).
  check::ValueId FinalValue(uint64_t key) const { return backup_[key]; }

  uint64_t keys() const { return opts_.keys; }

  // Globally unique written value: distinct per (seed, client, op), never
  // kAbsent or kInitial.
  static check::ValueId MakeValue(uint64_t seed, int client, int op) {
    return (uint64_t{1} << 63) | (seed << 16) |
           (static_cast<uint64_t>(client) << 8) | static_cast<uint64_t>(op);
  }

 private:
  sim::Task<void> ClientLoop(int client, uint64_t seed);

  sim::Simulator* sim_;
  check::HistoryRecorder* history_;
  Options opts_;
  std::vector<check::ValueId> primary_;
  std::vector<check::ValueId> backup_;
};

}  // namespace prism::explore

#endif  // PRISM_SRC_EXPLORE_TOY_REPLICA_H_
