// Differential final-state oracle for explored executions.
//
// After a (possibly perturbed) run drains, the workload harness performs
// quiescent reads of every register and hands the observed (key, value)
// pairs here. The oracle replays the recorded invocation history against a
// single-node in-memory reference model to compute the *expected* final
// value per key, and diffs the system's actual final state against it.
//
// Concurrency makes the expectation ambiguous — when the last writes to a
// key raced, or an indeterminate write may or may not have installed, more
// than one final value is legal. A mismatch against the reference model is
// therefore only *suspicious*; it is escalated to a violation exactly when
// the observed value also falls outside check::AdmissibleFinalValues (which
// is sound: it never excludes a value a linearizable implementation could
// leave behind). This keeps the oracle free of concurrency false positives
// while still catching lost updates, resurrected deletes, and stale-backup
// divergence that no quiescent read ever witnessed mid-run.
#ifndef PRISM_SRC_EXPLORE_ORACLE_H_
#define PRISM_SRC_EXPLORE_ORACLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/check/checker.h"
#include "src/check/history.h"

namespace prism::explore {

// One quiescent observation: the value a read of `key` returned after the
// run drained and every fault healed.
struct FinalRead {
  uint64_t key = 0;
  check::ValueId value = check::kAbsent;
};

// Single-node reference model of a multi-key register store: applies the
// history's kOk writes in response-time order. Its Expected() value is the
// final state of the canonical sequential execution.
class RefModel {
 public:
  explicit RefModel(check::ValueId initial) : initial_(initial) {}

  void Replay(const std::vector<check::Op>& history);

  check::ValueId Expected(uint64_t key) const {
    auto it = state_.find(key);
    return it == state_.end() ? initial_ : it->second;
  }

 private:
  check::ValueId initial_;
  std::map<uint64_t, check::ValueId> state_;
};

// Diffs the observed quiescent state against the reference model; escalates
// mismatches through the admissible-final-value set (see header comment).
// The witness names the key, the observed value, the reference expectation,
// the admissible set, and the key's recorded ops.
check::CheckResult DiffFinalState(const std::vector<check::Op>& history,
                                  const std::vector<FinalRead>& final_state,
                                  check::ValueId initial);

}  // namespace prism::explore

#endif  // PRISM_SRC_EXPLORE_ORACLE_H_
