// Schedule hooks: the concrete ScheduleHook implementations the explorer
// installs on the simulator (see sim/simulator.h for the enabled-set
// contract and the soundness bound).
//
//  * IdentityHook    — always picks the earliest (when, seq) event. The
//                      execution is bit-identical to the production engine;
//                      obs_determinism_test pins this down.
//  * PerturbHook     — seeded random exploration: identity for the first
//                      `offset` steps, then at each step, with a configured
//                      probability and while a perturbation budget remains,
//                      picks a uniformly random non-front event from the
//                      enabled window. Rate and budget bound the burst to
//                      roughly budget/rate steps past the offset, so the
//                      offset is what positions it: the explorer slides the
//                      burst across the schedule run by run, giving races
//                      deep in a long execution the same perturbation
//                      density as the prefix. Every non-identity decision
//                      is recorded as a Perturbation, so a failing run
//                      replays exactly through a ReplayHook.
//  * ReplayHook      — deterministic replay of an explicit perturbation
//                      list: at the recorded step numbers it repeats the
//                      recorded choices, identity everywhere else. The
//                      shrinker re-runs candidate subsets through this; a
//                      choice that no longer fits the (smaller) window is
//                      skipped, never clamped, so replays stay legal
//                      schedules.
#ifndef PRISM_SRC_EXPLORE_HOOKS_H_
#define PRISM_SRC_EXPLORE_HOOKS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace prism::explore {

// One recorded reorder decision: at Pick call number `step` (counting every
// Pick across the run, starting at 0) the hook chose `choice` instead of
// the front event.
struct Perturbation {
  uint64_t step = 0;
  uint32_t choice = 0;

  bool operator==(const Perturbation& other) const {
    return step == other.step && choice == other.choice;
  }
};

class IdentityHook : public sim::ScheduleHook {
 public:
  explicit IdentityHook(sim::Duration delta = 0) : delta_(delta) {}

  sim::Duration window() const override { return delta_; }
  size_t Pick(const std::vector<sim::EnabledEvent>& enabled) override {
    ++steps_;
    return 0;
  }
  uint64_t steps() const { return steps_; }

 private:
  sim::Duration delta_;
  uint64_t steps_ = 0;
};

class PerturbHook : public sim::ScheduleHook {
 public:
  PerturbHook(uint64_t seed, sim::Duration delta, int budget,
              double rate = 0.3, uint64_t offset = 0)
      : rng_(seed), delta_(delta), budget_(budget), rate_(rate),
        offset_(offset) {}

  sim::Duration window() const override { return delta_; }
  size_t Pick(const std::vector<sim::EnabledEvent>& enabled) override;

  // The non-identity decisions this run actually made, in step order.
  const std::vector<Perturbation>& applied() const { return applied_; }
  uint64_t steps() const { return steps_; }

 private:
  Rng rng_;
  sim::Duration delta_;
  int budget_;
  double rate_;
  uint64_t offset_;
  uint64_t steps_ = 0;
  std::vector<Perturbation> applied_;
};

class ReplayHook : public sim::ScheduleHook {
 public:
  // `perturbations` must be in increasing step order (as recorded).
  ReplayHook(sim::Duration delta, std::vector<Perturbation> perturbations)
      : delta_(delta), perturbations_(std::move(perturbations)) {}

  sim::Duration window() const override { return delta_; }
  size_t Pick(const std::vector<sim::EnabledEvent>& enabled) override;

  uint64_t steps() const { return steps_; }
  // Perturbations whose recorded choice exceeded the enabled window at
  // replay time (possible when replaying a shrunk subset).
  int skipped() const { return skipped_; }

 private:
  sim::Duration delta_;
  std::vector<Perturbation> perturbations_;
  size_t next_ = 0;
  uint64_t steps_ = 0;
  int skipped_ = 0;
};

}  // namespace prism::explore

#endif  // PRISM_SRC_EXPLORE_HOOKS_H_
