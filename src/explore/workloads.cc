#include "src/explore/workloads.h"

#include <memory>
#include <utility>

#include "src/chaos/chaos.h"
#include "src/check/checker.h"
#include "src/check/history.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/consensus/consensus.h"
#include "src/explore/oracle.h"
#include "src/explore/toy_replica.h"
#include "src/kv/prism_kv.h"
#include "src/net/fabric.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"
#include "src/sync/sync.h"
#include "src/tx/prism_tx.h"

namespace prism::explore {

namespace {

using sim::Task;

const char* kWorkloadNames[] = {"toy",        "rs",         "kv",
                                "tx",         "sync_spin",  "sync_opt",
                                "sync_lease", "sync_prism", "sync_buggy",
                                "consensus",  "consensus_buggy"};
constexpr int kWorkloadCount =
    static_cast<int>(sizeof(kWorkloadNames) / sizeof(kWorkloadNames[0]));

// Explorer workloads are small cousins of the chaos_test sweeps: the
// explorer runs each (workload, seed) point N times and the shrinker dozens
// more, so ops counts and think times are scaled down, and the chaos
// schedule is compressed to overlap the shorter run.
constexpr int kClients = 2;

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t HistoryFingerprint(const std::vector<check::Op>& ops) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const check::Op& op : ops) {
    h = HashCombine(h, static_cast<uint64_t>(op.client));
    h = HashCombine(h, op.key);
    h = HashCombine(h, static_cast<uint64_t>(op.type));
    h = HashCombine(h, op.value);
    h = HashCombine(h, static_cast<uint64_t>(op.invoke));
    h = HashCombine(h, static_cast<uint64_t>(op.done ? op.response : -1));
    h = HashCombine(h, static_cast<uint64_t>(op.outcome));
  }
  return h;
}

uint64_t TxFingerprint(const std::vector<check::TxnRecord>& txns) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const check::TxnRecord& t : txns) {
    h = HashCombine(h, static_cast<uint64_t>(t.client));
    h = HashCombine(h, static_cast<uint64_t>(t.outcome));
    h = HashCombine(h, static_cast<uint64_t>(t.begin));
    h = HashCombine(h, static_cast<uint64_t>(t.done ? t.end : -1));
    for (const auto& [k, v] : t.reads) {
      h = HashCombine(h, k);
      h = HashCombine(h, v);
    }
    for (const auto& [k, v] : t.writes) {
      h = HashCombine(h, k);
      h = HashCombine(h, v);
    }
  }
  return h;
}

// Globally unique value bytes, as in chaos_test (requires size >= 11).
Bytes UniqueValue(size_t size, uint64_t seed, int client, int op) {
  Bytes v(size, 0);
  for (int i = 0; i < 8; ++i) v[i] = static_cast<uint8_t>(seed >> (8 * i));
  v[8] = static_cast<uint8_t>(client);
  v[9] = static_cast<uint8_t>(op);
  v[10] = static_cast<uint8_t>(op >> 8);
  return v;
}

check::ValueId KvKeyId(const std::string& key) {
  return check::IdOf(ByteView(
      reinterpret_cast<const uint8_t*>(key.data()), key.size()));
}

// Chaos schedule compressed to the explorer workloads' shorter runtime.
chaos::ChaosOptions ExploreChaosOptions(uint64_t seed) {
  chaos::ChaosOptions copts;
  copts.seed = seed;
  copts.start = sim::Micros(20);
  copts.horizon = sim::Millis(1);
  copts.min_downtime = sim::Micros(50);
  copts.max_downtime = sim::Micros(400);
  copts.min_partition = sim::Micros(50);
  copts.max_partition = sim::Micros(400);
  return copts;
}

void ApplyDisabledWindows(chaos::ChaosMonkey* monkey,
                          const std::vector<int>* disabled) {
  if (disabled == nullptr) return;
  for (int w : *disabled) {
    if (w >= 0 && w < monkey->window_count()) {
      monkey->SetWindowDisabled(w, true);
    }
  }
}

void Fail(RunOutcome* out, const char* check_name, std::string error) {
  out->ok = false;
  out->check_name = check_name;
  out->error = std::move(error);
}

// ---- toy: buggy primary/backup register, no chaos ----

RunOutcome RunToy(uint64_t seed, sim::ScheduleHook* hook) {
  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  check::HistoryRecorder history(&sim);
  ToyReplica toy(&sim, &history, ToyReplica::Options{});
  sim::TaskTracker tracker;
  toy.SpawnClients(seed, &tracker);
  sim.Run();

  RunOutcome out;
  out.executed_events = sim.executed_events();
  out.history_fingerprint = HistoryFingerprint(history.ops());
  if (tracker.live() > 0) {
    Fail(&out, "hang", "toy clients still live after the sim drained");
    return out;
  }
  check::CheckResult lin =
      check::CheckLinearizable(history.ops(), ToyReplica::kInitial);
  if (!lin.ok) {
    Fail(&out, "linearizability", std::move(lin.error));
    return out;
  }
  std::vector<FinalRead> finals;
  for (uint64_t k = 0; k < toy.keys(); ++k) {
    finals.push_back({k, toy.FinalValue(k)});
  }
  check::CheckResult diff =
      DiffFinalState(history.ops(), finals, ToyReplica::kInitial);
  if (!diff.ok) Fail(&out, "final-state", std::move(diff.error));
  return out;
}

// ---- PRISM-RS: 3-replica ABD under chaos ----

RunOutcome RunRs(uint64_t seed, sim::ScheduleHook* hook,
                 const std::vector<int>* disabled) {
  constexpr uint64_t kBlocks = 3;
  constexpr uint64_t kBlockSize = 64;
  constexpr int kOpsPerClient = 6;

  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  rs::PrismRsOptions opts;
  opts.n_blocks = kBlocks;
  opts.block_size = kBlockSize;
  opts.buffers_per_replica = 512;
  rs::PrismRsCluster cluster(&fabric, 3, opts);  // replica hosts 0..2

  check::HistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<rs::PrismRsClient>(
        &fabric, client_hosts[c], &cluster, static_cast<uint16_t>(c + 1)));
    clients[c]->set_history(&history);
  }

  chaos::ChaosOptions copts = ExploreChaosOptions(seed);
  copts.crashable = {0, 1, 2};
  copts.max_concurrent_crashes = 1;  // = f: quorums stay live
  copts.partition_hosts = {0, 1, 2};
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  ApplyDisabledWindows(&monkey, disabled);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOpsPerClient; ++i) {
            uint64_t block = rng.NextBelow(kBlocks);
            if (rng.NextBool(0.5)) {
              (void)co_await clients[c]->Put(
                  block, UniqueValue(kBlockSize, seed, c, i));
            } else {
              (void)co_await clients[c]->Get(block);
            }
            co_await sim::SleepFor(&sim,
                                   sim::Micros(rng.NextInRange(20, 120)));
          }
        },
        &tracker);
  }
  sim.Run();

  RunOutcome out;
  out.fault_windows = monkey.window_count();
  out.fault_schedule = monkey.Describe();
  if (tracker.live() > 0) {
    out.executed_events = sim.executed_events();
    Fail(&out, "hang", "RS clients still live after the sim drained");
    return out;
  }

  // Quiescent final reads: every fault healed by the chaos horizon, so a
  // fresh read of each block probes the system's final state. They run
  // detached from the history (the checker sees the workload snapshot).
  const std::vector<check::Op> snapshot = history.ops();
  for (int c = 0; c < kClients; ++c) clients[c]->set_history(nullptr);
  std::vector<FinalRead> finals;
  sim::TaskTracker final_tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        for (uint64_t b = 0; b < kBlocks; ++b) {
          auto got = co_await clients[0]->Get(b);
          if (got.ok()) finals.push_back({b, check::IdOf(got.value())});
        }
      },
      &final_tracker);
  sim.Run();

  out.executed_events = sim.executed_events();
  out.history_fingerprint = HistoryFingerprint(snapshot);
  if (final_tracker.live() > 0) {
    Fail(&out, "hang", "RS final reads still live after the sim drained");
    return out;
  }
  const check::ValueId initial = check::IdOf(Bytes(kBlockSize, 0));
  check::CheckResult lin = check::CheckLinearizable(snapshot, initial);
  if (!lin.ok) {
    Fail(&out, "linearizability", std::move(lin.error));
    return out;
  }
  check::CheckResult diff = DiffFinalState(snapshot, finals, initial);
  if (!diff.ok) Fail(&out, "final-state", std::move(diff.error));
  return out;
}

// ---- PRISM-KV: single server under chaos ----

RunOutcome RunKv(uint64_t seed, sim::ScheduleHook* hook,
                 const std::vector<int>* disabled) {
  constexpr uint64_t kKeys = 3;
  constexpr size_t kValueSize = 32;
  constexpr int kOpsPerClient = 8;

  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  net::HostId server_host = fabric.AddHost("server");  // host 0
  kv::PrismKvOptions opts;
  opts.n_buckets = 64;
  opts.n_buffers = 256;
  kv::PrismKvServer server(&fabric, server_host, opts);

  check::HistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<kv::PrismKvClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<kv::PrismKvClient>(
        &fabric, client_hosts[c], &server));
    clients[c]->set_history(&history, c + 1);
  }

  chaos::ChaosOptions copts = ExploreChaosOptions(seed);
  copts.crashable = {server_host};
  copts.partition_hosts = {server_host};
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  ApplyDisabledWindows(&monkey, disabled);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOpsPerClient; ++i) {
            std::string key = "key-" + std::to_string(rng.NextBelow(kKeys));
            const double dice = rng.NextDouble();
            if (dice < 0.45) {
              (void)co_await clients[c]->Put(
                  key, UniqueValue(kValueSize, seed, c, i));
            } else if (dice < 0.85) {
              (void)co_await clients[c]->Get(key);
            } else {
              (void)co_await clients[c]->Delete(key);
            }
            co_await sim::SleepFor(&sim,
                                   sim::Micros(rng.NextInRange(20, 120)));
          }
        },
        &tracker);
  }
  sim.Run();

  RunOutcome out;
  out.fault_windows = monkey.window_count();
  out.fault_schedule = monkey.Describe();
  if (tracker.live() > 0) {
    out.executed_events = sim.executed_events();
    Fail(&out, "hang", "KV clients still live after the sim drained");
    return out;
  }

  const std::vector<check::Op> snapshot = history.ops();
  for (int c = 0; c < kClients; ++c) clients[c]->set_history(nullptr, 0);
  std::vector<FinalRead> finals;
  sim::TaskTracker final_tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        for (uint64_t k = 0; k < kKeys; ++k) {
          std::string key = "key-" + std::to_string(k);
          auto got = co_await clients[0]->Get(key);
          if (got.ok()) {
            finals.push_back({KvKeyId(key), check::IdOf(got.value())});
          } else if (got.code() == Code::kNotFound) {
            finals.push_back({KvKeyId(key), check::kAbsent});
          }  // other errors: no conclusion about this key
        }
      },
      &final_tracker);
  sim.Run();

  out.executed_events = sim.executed_events();
  out.history_fingerprint = HistoryFingerprint(snapshot);
  if (final_tracker.live() > 0) {
    Fail(&out, "hang", "KV final reads still live after the sim drained");
    return out;
  }
  check::CheckResult lin = check::CheckLinearizable(snapshot, check::kAbsent);
  if (!lin.ok) {
    Fail(&out, "linearizability", std::move(lin.error));
    return out;
  }
  check::CheckResult diff = DiffFinalState(snapshot, finals, check::kAbsent);
  if (!diff.ok) Fail(&out, "final-state", std::move(diff.error));
  return out;
}

// ---- PRISM-TX: 2 shards under chaos, read-committed ----

RunOutcome RunTx(uint64_t seed, sim::ScheduleHook* hook,
                 const std::vector<int>* disabled) {
  constexpr uint64_t kKeys = 6;
  constexpr size_t kValueSize = 32;
  constexpr int kTxPerClient = 6;

  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  tx::PrismTxOptions opts;
  opts.keys_per_shard = 16;
  opts.value_size = kValueSize;
  opts.buffers_per_shard = 256;
  tx::PrismTxCluster cluster(&fabric, 2, opts);  // shard hosts 0..1

  std::vector<std::pair<uint64_t, check::ValueId>> initial;
  for (uint64_t k = 0; k < kKeys; ++k) {
    Bytes v(kValueSize, 0);
    v[0] = static_cast<uint8_t>(0xB0 + k);  // distinct, nonzero values
    PRISM_CHECK(cluster.LoadKey(k, v).ok());
    initial.emplace_back(k, check::IdOf(v));
  }

  check::TxHistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<tx::PrismTxClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<tx::PrismTxClient>(
        &fabric, client_hosts[c], &cluster, static_cast<uint16_t>(c + 1)));
    clients[c]->set_history(&history);
  }

  chaos::ChaosOptions copts = ExploreChaosOptions(seed);
  copts.crashable = {0, 1};
  copts.max_concurrent_crashes = 1;
  copts.partition_hosts = {0, 1};
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  ApplyDisabledWindows(&monkey, disabled);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + static_cast<uint64_t>(c));
          for (int t = 0; t < kTxPerClient; ++t) {
            tx::Transaction txn = clients[c]->Begin();
            const uint64_t rk = rng.NextBelow(kKeys);
            const uint64_t wk = rng.NextBelow(kKeys);
            auto read = co_await clients[c]->Read(txn, rk);
            (void)read;
            clients[c]->Write(txn, wk, UniqueValue(kValueSize, seed, c, t));
            (void)co_await clients[c]->Commit(txn);
            co_await sim::SleepFor(&sim,
                                   sim::Micros(rng.NextInRange(20, 120)));
          }
        },
        &tracker);
  }
  sim.Run();

  RunOutcome out;
  out.fault_windows = monkey.window_count();
  out.fault_schedule = monkey.Describe();
  if (tracker.live() > 0) {
    out.executed_events = sim.executed_events();
    Fail(&out, "hang", "TX clients still live after the sim drained");
    return out;
  }

  // Quiescent probe: one more read-only transaction over every key. It is a
  // real transaction recorded in the same history, so CheckReadCommitted
  // validates the final state for free — every value it observes must trace
  // to a committed (or indeterminately-committed) write.
  sim::TaskTracker final_tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        tx::Transaction txn = clients[0]->Begin();
        for (uint64_t k = 0; k < kKeys; ++k) {
          auto read = co_await clients[0]->Read(txn, k);
          (void)read;
        }
        (void)co_await clients[0]->Commit(txn);
      },
      &final_tracker);
  sim.Run();

  out.executed_events = sim.executed_events();
  out.history_fingerprint = TxFingerprint(history.txns());
  if (final_tracker.live() > 0) {
    Fail(&out, "hang", "TX final probe still live after the sim drained");
    return out;
  }
  check::CheckResult rc = check::CheckReadCommitted(history.txns(), initial);
  if (!rc.ok) Fail(&out, "read-committed", std::move(rc.error));
  return out;
}

// ---- sync: one-sided synchronization schemes over the remote hash index.
// Chaos-free: the failure surface under study is schedule reordering. ----

sync::SyncScheme SchemeFor(Workload kind) {
  switch (kind) {
    case Workload::kSyncSpin:
      return sync::SyncScheme::kSpinlock;
    case Workload::kSyncOpt:
      return sync::SyncScheme::kOptimistic;
    case Workload::kSyncLease:
      return sync::SyncScheme::kLease;
    case Workload::kSyncPrism:
      return sync::SyncScheme::kPrismNative;
    default:
      return sync::SyncScheme::kUnfencedBuggy;
  }
}

RunOutcome RunSync(Workload kind, uint64_t seed, sim::ScheduleHook* hook) {
  constexpr uint64_t kKeys = 2;
  constexpr int kOpsPerClient = 6;

  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  net::HostId server_host = fabric.AddHost("index");
  sync::SyncOptions opts;
  opts.n_slots = 16;
  sync::SyncIndexServer server(&fabric, server_host, opts);
  const check::ValueId initial = check::IdOf(sync::InitialValue());
  for (uint64_t k = 1; k <= kKeys; ++k) {
    PRISM_CHECK(server.LoadKey(k, sync::InitialValue()).ok());
  }

  check::HistoryRecorder history(&sim);
  std::vector<std::unique_ptr<sync::SyncClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    net::HostId h = fabric.AddHost("client" + std::to_string(c));
    clients.push_back(std::make_unique<sync::SyncClient>(
        &fabric, h, &server, SchemeFor(kind), static_cast<uint16_t>(c + 1),
        seed * 131 + static_cast<uint64_t>(c)));
    clients[c]->set_history(&history, c + 1);
    // Steady-state geometry (probe paths are covered by sync_test and the
    // bench): every perturbation-budget step lands on the contended path.
    for (uint64_t k = 1; k <= kKeys; ++k) clients[c]->Prewarm(k);
  }

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOpsPerClient; ++i) {
            // Skewed contention: most ops collide on key 1, immediately.
            const uint64_t key =
                rng.NextBool(0.75) ? 1 : 1 + rng.NextBelow(kKeys);
            if (rng.NextBool(0.6)) {
              (void)co_await clients[c]->Update(
                  key, sync::MakeValue(seed, c, i));
            } else {
              (void)co_await clients[c]->Read(key);
            }
            co_await sim::SleepFor(&sim, sim::Micros(rng.NextInRange(0, 6)));
          }
        },
        &tracker);
  }
  sim.Run();

  RunOutcome out;
  out.executed_events = sim.executed_events();
  out.history_fingerprint = HistoryFingerprint(history.ops());
  if (tracker.live() > 0) {
    Fail(&out, "hang", "sync clients still live after the sim drained");
    return out;
  }
  check::CheckResult lin = check::CheckLinearizable(history.ops(), initial);
  if (!lin.ok) {
    Fail(&out, "linearizability", std::move(lin.error));
    return out;
  }
  // The index lives in one AddressSpace and the sim has drained, so
  // server-local loads ARE the quiescent final state — no extra reads.
  std::vector<FinalRead> finals;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    finals.push_back({k, server.FinalValue(k)});
  }
  check::CheckResult diff = DiffFinalState(history.ops(), finals, initial);
  if (!diff.ok) Fail(&out, "final-state", std::move(diff.error));
  return out;
}

// ---- consensus: permission-guarded leader log (src/consensus) ----

// Pairwise cross-replica log safety, the same oracle consensus_test's chaos
// sweep applies: below both commit words, two replicas that both hold a
// slot must hold the same key/value (holes are legal — indeterminate ops
// that never landed; header epochs may lag until healing rewrites them).
bool CommittedPrefixesAgree(consensus::ConsensusCluster& cluster,
                            std::string* error) {
  for (int a = 0; a < cluster.n(); ++a) {
    for (int b = a + 1; b < cluster.n(); ++b) {
      const uint64_t upto = std::min(cluster.replica(a).commit_seq(),
                                     cluster.replica(b).commit_seq());
      for (uint64_t s = 1; s <= upto; ++s) {
        consensus::LogEntryWire ea, eb;
        if (!cluster.replica(a).EntryAt(s, &ea) ||
            !cluster.replica(b).EntryAt(s, &eb)) {
          continue;
        }
        if (ea.key != eb.key || ea.v_lo != eb.v_lo || ea.v_hi != eb.v_hi) {
          *error = "replicas " + std::to_string(a) + " and " +
                   std::to_string(b) + " diverge at committed seq " +
                   std::to_string(s);
          return false;
        }
      }
    }
  }
  return true;
}

// The correct protocol under compressed chaos: replica crashes (f = 1, so
// the group always has a live quorum), partitions and loss over every host,
// clients retrying with client-triggered failovers.
RunOutcome RunConsensus(uint64_t seed, sim::ScheduleHook* hook,
                        const std::vector<int>* disabled) {
  constexpr uint64_t kKeys = 2;
  constexpr int kOpsPerClient = 5;

  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  consensus::ConsensusOptions opts;
  std::vector<net::HostId> hosts;
  for (int i = 0; i < opts.n_replicas; ++i) {
    hosts.push_back(fabric.AddHost("replica" + std::to_string(i)));
  }
  consensus::ConsensusCluster cluster(&fabric, hosts, opts);

  check::HistoryRecorder history(&sim);
  std::vector<net::HostId> client_hosts;
  std::vector<std::unique_ptr<consensus::ConsensusClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
    clients.push_back(std::make_unique<consensus::ConsensusClient>(
        &cluster, static_cast<uint16_t>(c + 1),
        seed * 131 + static_cast<uint64_t>(c)));
    clients[c]->set_history(&history, c + 1);
  }

  chaos::ChaosOptions copts = ExploreChaosOptions(seed);
  copts.crashable = hosts;
  copts.max_concurrent_crashes = 1;  // = f: a quorum stays live
  copts.partition_hosts = hosts;
  for (net::HostId h : client_hosts) copts.partition_hosts.push_back(h);
  chaos::ChaosMonkey monkey(&fabric, copts);
  ApplyDisabledWindows(&monkey, disabled);
  monkey.Arm();

  sim::TaskTracker tracker;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn(
        [&, c]() -> Task<void> {
          Rng rng(seed * 977 + static_cast<uint64_t>(c));
          for (int i = 0; i < kOpsPerClient; ++i) {
            const uint64_t key = 1 + rng.NextBelow(kKeys);
            if (rng.NextBool(0.5)) {
              (void)co_await clients[c]->Put(
                  key, consensus::MakeValue(seed, c, i));
            } else {
              (void)co_await clients[c]->Get(key);
            }
            co_await sim::SleepFor(&sim,
                                   sim::Micros(rng.NextInRange(20, 120)));
          }
        },
        &tracker);
  }
  sim.Run();

  RunOutcome out;
  out.fault_windows = monkey.window_count();
  out.fault_schedule = monkey.Describe();
  if (tracker.live() > 0 || cluster.tracker().live() > 0) {
    out.executed_events = sim.executed_events();
    Fail(&out, "hang", "consensus tasks still live after the sim drained");
    return out;
  }

  // Quiescent final reads through the linearizable Get path (every fault
  // healed by the chaos horizon); detached from the history like RS/KV.
  const std::vector<check::Op> snapshot = history.ops();
  for (int c = 0; c < kClients; ++c) clients[c]->set_history(nullptr, 0);
  std::vector<FinalRead> finals;
  sim::TaskTracker final_tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        for (uint64_t k = 1; k <= kKeys; ++k) {
          auto got = co_await clients[0]->Get(k);
          if (got.ok()) {
            finals.push_back({k, check::IdOf(*got)});
          } else if (got.code() == Code::kNotFound) {
            finals.push_back({k, check::kAbsent});
          }  // other errors: no conclusion about this key
        }
      },
      &final_tracker);
  sim.Run();

  out.executed_events = sim.executed_events();
  out.history_fingerprint = HistoryFingerprint(snapshot);
  if (final_tracker.live() > 0 || cluster.tracker().live() > 0) {
    Fail(&out, "hang",
         "consensus final reads still live after the sim drained");
    return out;
  }
  check::CheckResult lin = check::CheckLinearizable(snapshot, check::kAbsent);
  if (!lin.ok) {
    Fail(&out, "linearizability", std::move(lin.error));
    return out;
  }
  std::string log_error;
  if (!CommittedPrefixesAgree(cluster, &log_error)) {
    Fail(&out, "log-safety", std::move(log_error));
    return out;
  }
  check::CheckResult diff = DiffFinalState(snapshot, finals, check::kAbsent);
  if (!diff.ok) Fail(&out, "final-state", std::move(diff.error));
  return out;
}

// The positive control: revocation without a quorum. Chaos-free scripted
// takeover — leader 0 commits a baseline write, then a second write races a
// buggy election on node 2 (which proceeds on its own colocated grant
// alone, then heals the other replicas toward its shorter adopted log).
//
// On the canonical schedule the usurper's revoke reaches the shared replica
// ~0.5 µs before the deposed leader's commit chain (the chain is posted one
// sleep later), so the chain NACKs, the write ends indeterminate, and the
// trailing read is legal. Reordering the two deliveries flips the race: the
// chain commits on a quorum and is acknowledged, the late revoke deposes
// the leader anyway, the usurper's heal wipes the acknowledged entry, and
// the read returns the overwritten value — a lost update the Wing–Gong
// checker flags. Quorum intersection is exactly what rules this out in the
// correct protocol.
RunOutcome RunConsensusBuggy(uint64_t seed, sim::ScheduleHook* hook) {
  sim::Simulator sim;
  if (hook != nullptr) sim.SetScheduleHook(hook);
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G(),
                     /*loss_seed=*/seed);
  consensus::ConsensusOptions opts;
  opts.require_revoke_quorum = false;  // the seeded protocol bug
  std::vector<net::HostId> hosts;
  for (int i = 0; i < opts.n_replicas; ++i) {
    hosts.push_back(fabric.AddHost("replica" + std::to_string(i)));
  }
  consensus::ConsensusCluster cluster(&fabric, hosts, opts);

  check::HistoryRecorder history(&sim);
  consensus::ConsensusClient writer(&cluster, 1, seed * 131 + 1);
  consensus::ConsensusClient reader(&cluster, 2, seed * 131 + 2);
  writer.set_history(&history, 1);
  reader.set_history(&history, 2);
  // The overwrite must be issued BY the deposed leader, so it bypasses
  // client-side leader discovery (which would dutifully follow the hint to
  // the usurper) and goes straight to node 0's data path.
  consensus::ConsensusSession deposed(&cluster);

  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> Task<void> {
        // Node 0 leads; the late remote grants heal membership to 3/3.
        (void)co_await cluster.Failover(0, nullptr);
        co_await sim::SleepFor(&sim, sim::Micros(60));
        (void)co_await writer.Put(1, consensus::MakeValue(seed, 0, 0));
        co_await sim::SleepFor(&sim, sim::Micros(20));
        // The race: the buggy takeover starts now; the overwrite is posted
        // one beat later, so its chain canonically loses the delivery race
        // at the shared replicas; the read probes well after both settle.
        sim::Spawn(
            [&]() -> Task<void> {
              (void)co_await cluster.Failover(2, nullptr);
              co_await sim::SleepFor(&sim, sim::Micros(20));
              (void)co_await reader.Get(1);
            },
            &tracker);
        sim::Spawn(
            [&]() -> Task<void> {
              co_await sim::SleepFor(&sim, sim::Nanos(500));
              const Bytes v = consensus::MakeValue(seed, 0, 1);
              const size_t h = history.Begin(1, 1, check::OpType::kWrite,
                                             check::IdOf(v));
              auto out = co_await deposed.PutOn(0, 1, v, nullptr);
              history.End(h, out.status.ok()
                                 ? check::Outcome::kOk
                                 : out.applied ==
                                           consensus::ConsensusNode::Applied::
                                               kMaybe
                                       ? check::Outcome::kIndeterminate
                                       : check::Outcome::kFailed);
            },
            &tracker);
      },
      &tracker);
  sim.Run();

  RunOutcome out;
  out.executed_events = sim.executed_events();
  out.history_fingerprint = HistoryFingerprint(history.ops());
  if (tracker.live() > 0 || cluster.tracker().live() > 0) {
    Fail(&out, "hang", "consensus tasks still live after the sim drained");
    return out;
  }
  check::CheckResult lin =
      check::CheckLinearizable(history.ops(), check::kAbsent);
  if (!lin.ok) Fail(&out, "linearizability", std::move(lin.error));
  return out;
}

}  // namespace

sim::Duration DefaultDelta(Workload kind) {
  switch (kind) {
    case Workload::kSyncSpin:
    case Workload::kSyncOpt:
    case Workload::kSyncLease:
    case Workload::kSyncPrism:
    case Workload::kSyncBuggy:
      // Sync races span a few fabric hops (post → deliver → NIC → effect),
      // each a distinct event: a ~µs window lets a handful of reorder
      // decisions compound across one critical-section handoff.
      return sim::Micros(2);
    case Workload::kConsensusBuggy:
      // The revoke-vs-chain delivery race at the shared replica: the two
      // deliveries sit ~0.5 µs apart, so a 2 µs window can swap them.
      return sim::Micros(2);
    default:
      return sim::Nanos(1000);
  }
}

int DefaultRuns(Workload kind) {
  switch (kind) {
    case Workload::kSyncSpin:
    case Workload::kSyncOpt:
    case Workload::kSyncLease:
    case Workload::kSyncPrism:
    case Workload::kSyncBuggy:
      // Each run's perturbation burst probes one position in the schedule
      // (see ExploreSeed); critical-section handoffs are narrow, so give
      // the burst more positions per seed.
      return 32;
    case Workload::kConsensusBuggy:
      // The split-brain window is one delivery swap near the end of the
      // scripted schedule — a narrower target than the sync races (tuned
      // with tools/explore_main: 128 sliding-burst runs find it on every
      // seed in [1, 100]; 32 miss ~3 in 10).
      return 128;
    default:
      return 8;
  }
}

const char* WorkloadName(Workload kind) {
  return kWorkloadNames[static_cast<int>(kind)];
}

bool WorkloadFromName(std::string_view name, Workload* out) {
  for (int i = 0; i < kWorkloadCount; ++i) {
    if (name == kWorkloadNames[i]) {
      *out = static_cast<Workload>(i);
      return true;
    }
  }
  return false;
}

RunOutcome RunWorkload(const WorkloadOptions& opts) {
  switch (opts.kind) {
    case Workload::kToy:
      return RunToy(opts.seed, opts.hook);
    case Workload::kRs:
      return RunRs(opts.seed, opts.hook, opts.disabled_windows);
    case Workload::kKv:
      return RunKv(opts.seed, opts.hook, opts.disabled_windows);
    case Workload::kTx:
      return RunTx(opts.seed, opts.hook, opts.disabled_windows);
    case Workload::kSyncSpin:
    case Workload::kSyncOpt:
    case Workload::kSyncLease:
    case Workload::kSyncPrism:
    case Workload::kSyncBuggy:
      return RunSync(opts.kind, opts.seed, opts.hook);
    case Workload::kConsensus:
      return RunConsensus(opts.seed, opts.hook, opts.disabled_windows);
    case Workload::kConsensusBuggy:
      return RunConsensusBuggy(opts.seed, opts.hook);
  }
  return RunOutcome{};
}

}  // namespace prism::explore
