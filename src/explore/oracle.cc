#include "src/explore/oracle.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace prism::explore {

void RefModel::Replay(const std::vector<check::Op>& history) {
  // Stable sort by response time: equal-response writes keep history
  // (invocation) order, so the model is deterministic.
  std::vector<const check::Op*> writes;
  for (const check::Op& op : history) {
    if (op.type == check::OpType::kWrite && op.done &&
        op.outcome == check::Outcome::kOk) {
      writes.push_back(&op);
    }
  }
  std::stable_sort(writes.begin(), writes.end(),
                   [](const check::Op* a, const check::Op* b) {
                     return a->response < b->response;
                   });
  for (const check::Op* w : writes) state_[w->key] = w->value;
}

check::CheckResult DiffFinalState(const std::vector<check::Op>& history,
                                  const std::vector<FinalRead>& final_state,
                                  check::ValueId initial) {
  RefModel model(initial);
  model.Replay(history);
  for (const FinalRead& fr : final_state) {
    if (fr.value == model.Expected(fr.key)) continue;  // matches reference
    const std::vector<check::ValueId> admissible =
        check::AdmissibleFinalValues(history, fr.key, initial);
    if (std::find(admissible.begin(), admissible.end(), fr.value) !=
        admissible.end()) {
      continue;  // a racing linearization explains it
    }
    check::CheckResult r;
    r.ok = false;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "final state diverged on key=%" PRIu64 ": observed v=%016"
                  PRIx64 ", reference model expected v=%016" PRIx64
                  ", admissible:",
                  fr.key, fr.value, model.Expected(fr.key));
    r.error = buf;
    for (check::ValueId v : admissible) {
      std::snprintf(buf, sizeof(buf), " %016" PRIx64, v);
      r.error += buf;
    }
    r.error += "\nops on this key:";
    for (const check::Op& op : history) {
      if (op.key == fr.key) r.error += "\n  " + check::FormatOp(op);
    }
    return r;
  }
  return check::CheckResult{};
}

}  // namespace prism::explore
