// Explorable workload harness: one self-contained simulated execution per
// call — build simulator (install the schedule hook FIRST, before any event
// exists), fabric, service stack, chaos schedule (with selected fault
// windows disabled), clients; run to completion; then perform quiescent
// final reads and run every applicable checker plus the differential
// final-state oracle (oracle.h).
//
// Workloads are deliberately small cousins of the chaos_test sweeps: the
// explorer multiplies each (workload, seed) point by N perturbed schedules
// and the shrinker re-runs it dozens more times, so per-run cost matters.
//
// Determinism: RunWorkload is a pure function of (kind, seed, hook
// decisions, disabled windows). With hook == nullptr the production engine
// runs untouched; with an IdentityHook the event order — and therefore
// executed_events and history_fingerprint — is bit-identical to that
// (explore_test pins this down).
#ifndef PRISM_SRC_EXPLORE_WORKLOADS_H_
#define PRISM_SRC_EXPLORE_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/simulator.h"

namespace prism::explore {

enum class Workload {
  kToy,  // buggy primary/backup register (toy_replica.h) — no chaos
  kRs,   // PRISM-RS: 3-replica ABD under chaos
  kKv,   // PRISM-KV: single server under chaos
  kTx,   // PRISM-TX: 2 shards under chaos, read-committed
  // One-sided synchronization schemes over the remote hash index
  // (src/sync). Chaos-free: the interesting failure surface is schedule
  // reordering, and fault-free runs keep shrunk reproducers perturbation-
  // only. sync_buggy is the positive control — canonical schedules are
  // clean, bounded reordering tears its unfenced critical sections.
  kSyncSpin,
  kSyncOpt,
  kSyncLease,
  kSyncPrism,
  kSyncBuggy,
  // Permission-guarded consensus (src/consensus). `consensus` is the
  // correct protocol under compressed chaos (crashes, partitions, loss) —
  // linearizability plus the cross-replica log-safety oracle must hold on
  // every schedule. `consensus_buggy` is the positive control: revocation
  // without a quorum (require_revoke_quorum = false) run chaos-free through
  // a scripted leader takeover whose split brain only surfaces when the
  // schedule reorders the deposed leader's commit chain ahead of the
  // usurper's revoke at the shared replica.
  kConsensus,
  kConsensusBuggy,
};

// The enabled-window width a workload's races need. The sync schemes race
// verbs that are several fabric events apart, so they want a wider window
// than the toy's nanosecond-scale bug; tools/explore_main uses this as the
// per-workload default when --delta is not given.
sim::Duration DefaultDelta(Workload kind);

// Perturbed runs per seed. The sync schemes' races live in short effect
// clusters scattered across the schedule — each run's perturbation burst
// covers one position, so they need more runs than the chaos workloads,
// whose fault windows already stretch across the whole execution;
// tools/explore_main uses this when --explore is not given.
int DefaultRuns(Workload kind);

const char* WorkloadName(Workload kind);
bool WorkloadFromName(std::string_view name, Workload* out);

struct RunOutcome {
  bool ok = true;
  std::string check_name;  // failing check: linearizability | final-state |
                           // read-committed | hang
  std::string error;       // witness from the failing check
  bool hang = false;
  int fault_windows = 0;       // windows in this seed's chaos schedule
  std::string fault_schedule;  // ChaosMonkey::Describe() for the banner
  uint64_t executed_events = 0;
  uint64_t history_fingerprint = 0;  // FNV over every recorded op
};

struct WorkloadOptions {
  Workload kind = Workload::kToy;
  uint64_t seed = 1;
  // Schedule hook to install (not owned); nullptr = production engine.
  sim::ScheduleHook* hook = nullptr;
  // Chaos fault windows to drop (see ChaosMonkey::SetWindowDisabled).
  const std::vector<int>* disabled_windows = nullptr;
};

RunOutcome RunWorkload(const WorkloadOptions& opts);

}  // namespace prism::explore

#endif  // PRISM_SRC_EXPLORE_WORKLOADS_H_
