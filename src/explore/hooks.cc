#include "src/explore/hooks.h"

namespace prism::explore {

size_t PerturbHook::Pick(const std::vector<sim::EnabledEvent>& enabled) {
  const uint64_t step = steps_++;
  if (step < offset_) return 0;
  if (enabled.size() <= 1) return 0;
  if (static_cast<int>(applied_.size()) >= budget_) return 0;
  // The RNG is consulted only on multi-event steps under budget, and the
  // recorded (step, choice) pairs fully determine the schedule — so a
  // ReplayHook reproduces this run without the RNG.
  if (!rng_.NextBool(rate_)) return 0;
  const size_t choice = 1 + static_cast<size_t>(
                                rng_.NextBelow(enabled.size() - 1));
  applied_.push_back({step, static_cast<uint32_t>(choice)});
  return choice;
}

size_t ReplayHook::Pick(const std::vector<sim::EnabledEvent>& enabled) {
  const uint64_t step = steps_++;
  // Skip over stale entries (recorded at steps the current run never
  // reached with a decision — possible once earlier perturbations were
  // removed by the shrinker and the step numbering drifted).
  while (next_ < perturbations_.size() && perturbations_[next_].step < step) {
    ++next_;
    ++skipped_;
  }
  if (next_ < perturbations_.size() && perturbations_[next_].step == step) {
    const uint32_t choice = perturbations_[next_].choice;
    ++next_;
    if (choice < enabled.size()) return choice;
    ++skipped_;
  }
  return 0;
}

}  // namespace prism::explore
