// Open-loop arrival processes (ROADMAP item 2).
//
// An ArrivalProcess produces the inter-arrival gaps of an offered-load
// stream whose rate is independent of completion times — the defining
// property of open-loop load generation, and the regime where queueing
// (not protocol latency) dominates the tail. Three paper-and-folklore
// standard profiles:
//
//  * Poisson  — homogeneous rate λ; exponential i.i.d. gaps. The memoryless
//    baseline every queueing model assumes.
//  * MMPP     — 2-state Markov-modulated Poisson process: a base state and
//    a burst state whose rates differ by `burst_factor`, with exponentially
//    distributed dwell times. Mean rate equals `ops_per_sec`; the bursts
//    produce the overdispersion (variance-to-mean of windowed counts > 1)
//    that stresses tail latency far more than Poisson at equal mean load.
//  * Diurnal  — inhomogeneous Poisson with a sinusoidal rate profile
//    λ(t) = λ₀(1 + A·sin(2πt/period)), sampled by Lewis–Shedler thinning.
//    A compressed day/night cycle: mean rate λ₀ over a full period.
//
// Everything is driven by an explicit common/rng so a seeded run replays
// bit-identically (asserted across --jobs in tests/workload_test.cc).
// Statistical sanity (chi-squared exponentiality, burst-window dispersion)
// is also covered there.
#ifndef PRISM_SRC_WORKLOAD_ARRIVAL_H_
#define PRISM_SRC_WORKLOAD_ARRIVAL_H_

#include <string>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace prism::workload {

enum class ArrivalKind {
  kPoisson,
  kMmpp,
  kDiurnal,
};

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double ops_per_sec = 1e6;  // mean offered rate over the run

  // MMPP: burst state runs at burst_factor × the base-state rate and the
  // process spends burst_fraction of its time there (dwell times are
  // exponential with the given burst-state mean). Base-state rate is derived
  // so the overall mean stays ops_per_sec.
  double burst_factor = 8.0;
  double burst_fraction = 0.1;
  sim::Duration burst_dwell = sim::Micros(200);

  // Diurnal: amplitude A in [0,1) and the (compressed) day length.
  double diurnal_amplitude = 0.6;
  sim::Duration diurnal_period = sim::Millis(2);

  static ArrivalSpec Poisson(double ops_per_sec) {
    ArrivalSpec s;
    s.kind = ArrivalKind::kPoisson;
    s.ops_per_sec = ops_per_sec;
    return s;
  }
  static ArrivalSpec Mmpp(double ops_per_sec) {
    ArrivalSpec s;
    s.kind = ArrivalKind::kMmpp;
    s.ops_per_sec = ops_per_sec;
    return s;
  }
  static ArrivalSpec Diurnal(double ops_per_sec) {
    ArrivalSpec s;
    s.kind = ArrivalKind::kDiurnal;
    s.ops_per_sec = ops_per_sec;
    return s;
  }

  const char* KindName() const;
};

// Parses "poisson" / "mmpp" / "diurnal"; returns true on success.
bool ParseArrivalKind(const std::string& name, ArrivalKind* out);

class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, Rng rng);

  // The gap from the arrival at `now` to the next arrival. `now` must be
  // non-decreasing across calls (it is the simulation clock at the previous
  // arrival). Always ≥ 0; sub-nanosecond gaps round to 0 and coincide.
  sim::Duration NextGap(sim::TimePoint now);

  const ArrivalSpec& spec() const { return spec_; }
  // Derived MMPP parameters, exposed for the statistical tests.
  double base_rate() const { return base_rate_; }
  double burst_rate() const { return burst_rate_; }

 private:
  // Exponential with mean 1/rate_per_ns, via inverse CDF.
  double ExpGapNs(double rate_per_ns);

  ArrivalSpec spec_;
  Rng rng_;
  double rate_per_ns_;  // mean rate in arrivals per nanosecond

  // MMPP state machine.
  bool in_burst_ = false;
  bool mmpp_init_ = false;
  double state_until_ns_ = 0;  // switch instant (fractional ns kept exact)
  double base_rate_ = 0;       // per ns
  double burst_rate_ = 0;      // per ns
  double base_dwell_ns_ = 0;   // mean dwell in base state
  double burst_dwell_ns_ = 0;  // mean dwell in burst state

  // Diurnal thinning.
  double lambda_max_ = 0;  // per ns, peak of the sinusoid
};

}  // namespace prism::workload

#endif  // PRISM_SRC_WORKLOAD_ARRIVAL_H_
