// Key-popularity distributions for the YCSB-style workloads.
//
// ZipfGenerator implements the Gray et al. method YCSB uses (zeta
// precomputation + rejection-free inverse transform). theta == 0 degrades to
// uniform. The Figure 7 / Figure 10 sweeps vary theta ("Zipf coefficient")
// from 0 to 1.2 / 1.6, so the generator must handle theta ≥ 1 as well.
#ifndef PRISM_SRC_WORKLOAD_ZIPF_H_
#define PRISM_SRC_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace prism::workload {

class ZipfGenerator {
 public:
  // Popularity rank r (0-based) has probability ∝ 1/(r+1)^theta over n items.
  ZipfGenerator(uint64_t n, double theta);

  // Draws a rank in [0, n): 0 is the hottest item.
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
  // For theta >= kCdfThreshold (where the Gray closed form degenerates,
  // including the paper's 1.0–1.6 sweep points) we sample by binary search
  // over an explicit CDF.
  static constexpr double kCdfThreshold = 0.95;
  std::vector<double> cdf_;
};

// Uniform-or-Zipf key chooser; ranks are scattered over the key space with a
// bijective mixer so "hot" keys are not physically adjacent.
class KeyChooser {
 public:
  // theta == 0: uniform. theta > 0: zipfian with that coefficient.
  KeyChooser(uint64_t n_keys, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n_keys() const { return n_keys_; }

 private:
  uint64_t n_keys_;
  double theta_;
  ZipfGenerator zipf_;
};

}  // namespace prism::workload

#endif  // PRISM_SRC_WORKLOAD_ZIPF_H_
