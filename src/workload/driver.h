// Closed-loop measurement harness shared by all benchmarks.
//
// Mirrors the paper's methodology: N closed-loop clients issue operations
// back to back; sweeping N traces out the throughput–latency curve of
// Figures 3, 4, 6 and 9. A Recorder discards a warmup window, then counts
// completions and latencies over the measurement window.
#ifndef PRISM_SRC_WORKLOAD_DRIVER_H_
#define PRISM_SRC_WORKLOAD_DRIVER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/complexity.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace prism::workload {

class Recorder {
 public:
  Recorder(sim::Simulator* sim, sim::TimePoint measure_start,
           sim::TimePoint measure_end)
      : sim_(sim), start_(measure_start), end_(measure_end) {}

  // Records an operation that began at `op_start` and completed now.
  void Record(sim::TimePoint op_start) {
    const sim::TimePoint now = sim_->Now();
    if (op_start < start_ || now > end_) return;
    hist_.Record(now - op_start);
  }

  // Counts an abort/retry (measured window only), for OCC statistics.
  void RecordAbort() {
    const sim::TimePoint now = sim_->Now();
    if (now < start_ || now > end_) return;
    aborts_++;
  }

  bool InMeasureWindow() const {
    return sim_->Now() >= start_ && sim_->Now() <= end_;
  }
  sim::TimePoint measure_end() const { return end_; }
  const sim::Simulator& sim() const { return *sim_; }

  double ThroughputMops() const {
    const double seconds = sim::ToSeconds(end_ - start_);
    if (seconds <= 0) return 0;
    return static_cast<double>(hist_.count()) / seconds / 1e6;
  }

  const LatencyHistogram& hist() const { return hist_; }
  int64_t completed() const { return hist_.count(); }
  uint64_t aborts() const { return aborts_; }

 private:
  sim::Simulator* sim_;
  sim::TimePoint start_;
  sim::TimePoint end_;
  LatencyHistogram hist_;
  uint64_t aborts_ = 0;
};

// One row of a throughput–latency sweep.
struct LoadPoint {
  int clients = 0;
  double tput_mops = 0;
  // Open-loop drivers only: arrival rate offered during the measurement
  // window (0 for the closed-loop figure drivers, where load is implied by
  // the client count).
  double offered_mops = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double abort_rate = 0;  // aborts / (completions + aborts); OCC benches
  uint64_t sim_events = 0;  // engine events executed by this point's sim
  // Per-op-type protocol-complexity aggregates (Table 1 accounting) for the
  // point's whole simulation; harvested from the fabric hub's OpAccountant.
  std::vector<obs::OpStats> ops;
};

inline LoadPoint MakeLoadPoint(int clients, const Recorder& recorder) {
  LoadPoint p;
  p.clients = clients;
  p.tput_mops = recorder.ThroughputMops();
  auto s = recorder.hist().Summarize();
  p.mean_us = s.mean_us;
  p.p50_us = s.p50_us;
  p.p99_us = s.p99_us;
  p.p999_us = s.p999_us;
  const double denom =
      static_cast<double>(recorder.completed() + recorder.aborts());
  p.abort_rate = denom > 0 ? static_cast<double>(recorder.aborts()) / denom
                           : 0;
  p.sim_events = recorder.sim().executed_events();
  return p;
}

// Table printing used by every bench binary (one figure per binary; the rows
// are the series the paper plots).
inline void PrintHeader(const std::string& title,
                        const std::string& extra = "") {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-28s %8s %12s %10s %10s %10s %10s%s\n", "system", "clients",
              "tput(Mops)", "mean(us)", "p50(us)", "p99(us)", "p999(us)",
              extra.empty() ? "" : ("  " + extra).c_str());
}

inline void PrintRow(const std::string& system, const LoadPoint& p,
                     const std::string& extra = "") {
  std::printf("%-28s %8d %12.3f %10.2f %10.2f %10.2f %10.2f%s\n",
              system.c_str(), p.clients, p.tput_mops, p.mean_us, p.p50_us,
              p.p99_us, p.p999_us,
              extra.empty() ? "" : ("  " + extra).c_str());
}

}  // namespace prism::workload

#endif  // PRISM_SRC_WORKLOAD_DRIVER_H_
