// Open-loop client pools: millions of logical clients, flat per-client
// memory.
//
// The closed-loop harness (driver.h) gives every client a live coroutine
// frame — hundreds of bytes of frame plus transport state per client, which
// caps a simulation at a few hundred clients. Open-loop load at the
// ROADMAP's "millions of users" scale inverts the representation:
//
//  * Each logical client is a ClientSlot — a 16-byte POD state machine
//    (key-space rng cursor, issue/outstanding counters, pending-op tag,
//    histogram handle). One flat std::vector holds the whole population;
//    per-client memory is sizeof(ClientSlot) regardless of load
//    (CI-guarded at ≤64 B/client in fig_overload --guard).
//
//  * A single arrival-driver coroutine pulls inter-arrival gaps from an
//    ArrivalProcess and stamps each arrival onto a uniformly chosen slot.
//    Arrivals are independent of completions — the open-loop property.
//
//  * A bounded pool of worker coroutines drains the arrival backlog and
//    executes each op through the caller's OpFn (which owns the transport
//    clients, shared per pool — in real deployments a host's clients share
//    QPs exactly like this, which is what makes verb-layer doorbell
//    batching apply). Live coroutine frames are O(workers), not O(clients).
//
// Latency is measured from *arrival* to completion, so client-side queueing
// — the quantity that explodes past saturation — is part of every sample;
// that is what makes the fig_overload latency-vs-offered-load curves
// meaningful. Per-class recorders use common/histogram's lossless merge so
// per-pool results combine exactly (satellite: histogram merge fix).
//
// Determinism: one arrival driver + FIFO channel + FIFO workers inside a
// single-threaded simulation; every random draw comes off an explicit
// seeded rng. Bit-identical across runs and --jobs (workload_test).
#ifndef PRISM_SRC_WORKLOAD_OPEN_LOOP_H_
#define PRISM_SRC_WORKLOAD_OPEN_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/obs/obs.h"
#include "src/obs/timeline.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/workload/arrival.h"
#include "src/workload/driver.h"

namespace prism::workload {

// Compact per-client state machine. The whole client fits in 16 bytes; a
// million-client pool is 16 MB of flat array, no per-client heap objects.
struct ClientSlot {
  uint64_t rng;          // splitmix64 key-space cursor (private op stream)
  uint32_t issued;       // arrivals stamped on this client
  uint16_t outstanding;  // arrivals not yet completed (backlogged or live)
  uint8_t tag;           // op-class index of this client's ops
  uint8_t hist;          // recorder handle its latencies merge into
};
static_assert(sizeof(ClientSlot) == 16,
              "ClientSlot must stay compact: the ≤64 B/client guard in "
              "fig_overload budgets 16 B of slot + allocator/backlog slack");

struct PoolOptions {
  // Worker coroutines per pool: bounds live frames and the op concurrency
  // one host can sustain (an op beyond this queues in the backlog, which is
  // the client-side queueing the overload figures measure).
  int workers = 256;
};

class OpenLoopPool {
 public:
  // Executes one operation; `draw` is the client's 64-bit key-space draw
  // (deterministic per client). The callee owns transports and servers.
  // `op` is the op's phase timeline (nullptr when attribution is off) — the
  // callee re-arms the hub's current-op register with it before each
  // transport call (retries included) and may stamp its own waits.
  using OpFn = std::function<sim::Task<void>(uint64_t draw, obs::OpTimeline* op)>;

  OpenLoopPool(sim::Simulator* sim, const ArrivalSpec& spec,
               uint64_t n_clients, Rng rng, PoolOptions opts = {})
      : sim_(sim),
        opts_(opts),
        arrivals_(spec, rng.Fork()),
        pick_rng_(rng.Fork()),
        init_rng_(rng.Fork()),
        n_clients_(n_clients),
        queue_(sim) {
    PRISM_CHECK_GT(n_clients, 0u);
    PRISM_CHECK_GT(opts.workers, 0);
  }

  // Registers an op class (e.g. "kv.get") receiving a weight-proportional
  // share of the client population. Call before Start.
  void AddClass(std::string name, double weight, OpFn fn) {
    PRISM_CHECK_GT(weight, 0.0);
    PRISM_CHECK(!started_);
    classes_.push_back(OpClass{std::move(name), weight, std::move(fn)});
    PRISM_CHECK_LE(classes_.size(), 256u) << "tag/hist are 8-bit handles";
  }

  // Optional per-op phase attribution: every arrival gets an OpTimeline in
  // `store` (class indices resolved by name, so pools on many hosts can
  // share one store) and workers arm `hub`'s current-op register around the
  // op body. When the hub carries a tracer, each op also gets its own root
  // span (named after its class, attributed to `host`) so traces render one
  // async track per op and exemplars pin exactly their own span tree. Call
  // before Start; nullptr (the default) keeps the pool timeline-free with
  // zero per-op overhead.
  void set_timelines(obs::TimelineStore* store, obs::Hub* hub,
                     uint32_t host = 0) {
    PRISM_CHECK(!started_);
    store_ = store;
    hub_ = hub;
    obs_host_ = host;
  }

  // Materializes the population and spawns the arrival driver + workers.
  // Arrivals flow until `end`; recorders window [measure_start, end]. The
  // caller then advances the simulation (RunUntil(end + drain), Run()) and
  // calls CheckDrained().
  void Start(sim::TimePoint measure_start, sim::TimePoint end) {
    PRISM_CHECK(!started_);
    PRISM_CHECK(!classes_.empty());
    started_ = true;
    measure_start_ = measure_start;
    end_ = end;
    clients_.resize(n_clients_);
    double total_w = 0;
    for (const OpClass& c : classes_) total_w += c.weight;
    for (uint64_t i = 0; i < n_clients_; ++i) {
      ClientSlot& s = clients_[i];
      s.rng = init_rng_.NextU64();
      s.issued = 0;
      s.outstanding = 0;
      double pick = init_rng_.NextDouble() * total_w;
      uint8_t tag = 0;
      for (size_t c = 0; c < classes_.size(); ++c) {
        pick -= classes_[c].weight;
        if (pick < 0) {
          tag = static_cast<uint8_t>(c);
          break;
        }
      }
      s.tag = tag;
      s.hist = tag;  // one recorder per class
    }
    for (size_t c = 0; c < classes_.size(); ++c) {
      recorders_.push_back(
          std::make_unique<Recorder>(sim_, measure_start, end));
    }
    if (store_ != nullptr) {
      store_->SetWindow(measure_start, end);
      for (const OpClass& c : classes_) {
        store_cls_.push_back(store_->EnsureClass(c.name));
      }
    }
    sim::Spawn(Driver(), &tracker_);
    for (int w = 0; w < opts_.workers; ++w) {
      sim::Spawn(Worker(), &tracker_);
    }
  }

  void CheckDrained() const {
    PRISM_CHECK_EQ(tracker_.live(), 0)
        << "open-loop pool not drained; raise the post-end drain window";
    PRISM_CHECK(queue_.empty());
  }

  // Per-class measurement-window results (index = AddClass order).
  const Recorder& recorder(size_t cls) const { return *recorders_[cls]; }
  const std::string& class_name(size_t cls) const {
    return classes_[cls].name;
  }
  size_t n_classes() const { return classes_.size(); }
  // Ops completed per class over the whole run (measurement window and
  // out), for complexity accounting against whole-run transport tallies.
  uint64_t class_completions(size_t cls) const {
    return class_completions_[cls];
  }

  // Arrivals stamped inside the measurement window: the *measured* offered
  // load (completions may be fewer — that gap is the overload signal).
  uint64_t measured_arrivals() const { return measured_arrivals_; }
  uint64_t arrivals() const { return arrivals_count_; }
  uint64_t completions() const { return completions_; }
  size_t backlog() const { return queue_.size(); }
  size_t peak_backlog() const { return peak_backlog_; }
  uint64_t n_clients() const { return n_clients_; }
  // Flat per-client state: the quantity the ≤64 B/client guard bounds.
  size_t state_bytes() const { return clients_.size() * sizeof(ClientSlot); }
  const ClientSlot& client(uint64_t i) const { return clients_[i]; }

 private:
  struct OpClass {
    std::string name;
    double weight;
    OpFn fn;
  };

  // An arrival waiting in the backlog: 16 bytes bare, 24 with the timeline
  // pointer (heap-transient channel state, not per-client state — the
  // ≤64 B/client guard runs without a store, where op stays null).
  struct Pending {
    uint32_t client;
    sim::TimePoint arrival;
    obs::OpTimeline* op;
  };
  static constexpr uint32_t kPoison = 0xffffffffu;

  static uint64_t SplitMix(uint64_t* s) {
    uint64_t z = (*s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  sim::Task<void> Driver() {
    while (true) {
      const sim::Duration gap = arrivals_.NextGap(sim_->Now());
      co_await sim::SleepFor(sim_, gap);
      if (sim_->Now() >= end_) break;
      const uint32_t c = static_cast<uint32_t>(pick_rng_.NextBelow(n_clients_));
      ClientSlot& slot = clients_[c];
      slot.issued++;
      slot.outstanding++;
      arrivals_count_++;
      if (sim_->Now() >= measure_start_) measured_arrivals_++;
      // The timeline is born at arrival, in kBacklogWait: everything until
      // a worker pops it is client-side queueing.
      obs::OpTimeline* op =
          store_ != nullptr ? store_->StartOp(store_cls_[slot.tag], sim_->Now())
                            : nullptr;
      queue_.Push(Pending{c, sim_->Now(), op});
      if (queue_.size() > peak_backlog_) peak_backlog_ = queue_.size();
    }
    for (int w = 0; w < opts_.workers; ++w) {
      queue_.Push(Pending{kPoison, 0, nullptr});
    }
  }

  sim::Task<void> Worker() {
    while (true) {
      Pending p = co_await queue_.Pop();
      if (p.client == kPoison) break;
      ClientSlot& slot = clients_[p.client];
      OpClass& cls = classes_[slot.tag];
      const uint64_t draw = SplitMix(&slot.rng);
      obs::SpanId op_span = 0;
      if (p.op != nullptr) {
        // Backlog wait ends here; the op body starts in kApp and the
        // register is armed for the transport entry (no suspension between
        // this write and fn's first capture — the span-register discipline).
        p.op->Switch(obs::Phase::kApp, sim_->Now());
        hub_->SetCurrentOp(p.op);
        if (hub_->tracer() != nullptr) {
          // Per-op root span, parent 0 regardless of the register: every
          // verb the op issues becomes a descendant, so traces render one
          // async track per op and the exemplar store pins exactly this
          // op's tree rather than the worker's whole causal history.
          op_span = hub_->tracer()->Begin(cls.name, "app", obs_host_,
                                          sim_->Now(), /*parent=*/0);
          hub_->SetCurrentSpan(op_span);
          p.op->set_root_span(op_span);
        }
      }
      co_await cls.fn(draw, p.op);
      if (p.op != nullptr) {
        if (op_span != 0) hub_->FinishSpan(op_span, sim_->Now());
        hub_->SetCurrentOp(nullptr);
        store_->FinishOp(p.op, sim_->Now());
      }
      // Latency from *arrival*: client-side backlog wait included.
      recorders_[slot.hist]->Record(p.arrival);
      class_completions_[slot.hist]++;
      completions_++;
      slot.outstanding--;
    }
  }

  sim::Simulator* sim_;
  PoolOptions opts_;
  ArrivalProcess arrivals_;
  Rng pick_rng_;
  Rng init_rng_;
  uint64_t n_clients_;
  bool started_ = false;
  sim::TimePoint measure_start_ = 0;
  sim::TimePoint end_ = 0;

  obs::TimelineStore* store_ = nullptr;
  obs::Hub* hub_ = nullptr;
  uint32_t obs_host_ = 0;  // host label for per-op root spans
  std::vector<uint32_t> store_cls_;  // pool class index -> store class index

  std::vector<ClientSlot> clients_;
  std::vector<OpClass> classes_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
  uint64_t class_completions_[256] = {};
  sim::Channel<Pending> queue_;
  sim::TaskTracker tracker_;

  uint64_t arrivals_count_ = 0;
  uint64_t measured_arrivals_ = 0;
  uint64_t completions_ = 0;
  size_t peak_backlog_ = 0;
};

}  // namespace prism::workload

#endif  // PRISM_SRC_WORKLOAD_OPEN_LOOP_H_
