#include "src/workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace prism::workload {
namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  PRISM_CHECK_GT(n, 0u);
  PRISM_CHECK_GE(theta, 0.0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  if (theta > 0.0 && theta < kCdfThreshold) {
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  } else if (theta >= kCdfThreshold) {
    alpha_ = 0.0;
    eta_ = 0.0;
    cdf_.resize(n);
    double acc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = acc / zetan_;
    }
  } else {
    alpha_ = 0.0;
    eta_ = 0.0;
  }
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  if (theta_ == 0.0) return rng.NextBelow(n_);
  const double u = rng.NextDouble();
  if (!cdf_.empty()) {
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return n_ - 1;
    return static_cast<uint64_t>(it - cdf_.begin());
  }
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  double rank_f = static_cast<double>(n_) *
                  std::pow(eta_ * u - eta_ + 1.0, alpha_);
  if (!(rank_f >= 0.0)) rank_f = 0.0;
  uint64_t rank = static_cast<uint64_t>(rank_f);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

KeyChooser::KeyChooser(uint64_t n_keys, double theta)
    : n_keys_(n_keys), theta_(theta), zipf_(n_keys, theta) {}

uint64_t KeyChooser::Next(Rng& rng) const {
  const uint64_t rank = zipf_.Next(rng);
  if (theta_ == 0.0) return rank;  // already uniform; no need to scatter
  return MixU64(rank) % n_keys_;
}

}  // namespace prism::workload
