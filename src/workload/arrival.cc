#include "src/workload/arrival.h"

#include <cmath>

#include "src/common/logging.h"

namespace prism::workload {

const char* ArrivalSpec::KindName() const {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kMmpp: return "mmpp";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

bool ParseArrivalKind(const std::string& name, ArrivalKind* out) {
  if (name == "poisson") {
    *out = ArrivalKind::kPoisson;
  } else if (name == "mmpp") {
    *out = ArrivalKind::kMmpp;
  } else if (name == "diurnal") {
    *out = ArrivalKind::kDiurnal;
  } else {
    return false;
  }
  return true;
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, Rng rng)
    : spec_(spec), rng_(rng), rate_per_ns_(spec.ops_per_sec / 1e9) {
  PRISM_CHECK_GT(spec.ops_per_sec, 0);
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kMmpp: {
      PRISM_CHECK_GT(spec.burst_factor, 1.0);
      PRISM_CHECK_GT(spec.burst_fraction, 0.0);
      PRISM_CHECK_LT(spec.burst_fraction, 1.0);
      PRISM_CHECK_GT(spec.burst_dwell, 0);
      const double f = spec.burst_fraction;
      // Mean rate = base·(1-f) + base·factor·f  ⇒  solve for base.
      base_rate_ = rate_per_ns_ / (1.0 - f + spec.burst_factor * f);
      burst_rate_ = base_rate_ * spec.burst_factor;
      burst_dwell_ns_ = static_cast<double>(spec.burst_dwell);
      // Time-fraction f in burst ⇒ base dwell = burst dwell · (1-f)/f.
      base_dwell_ns_ = burst_dwell_ns_ * (1.0 - f) / f;
      break;
    }
    case ArrivalKind::kDiurnal:
      PRISM_CHECK_GE(spec.diurnal_amplitude, 0.0);
      PRISM_CHECK_LT(spec.diurnal_amplitude, 1.0);
      PRISM_CHECK_GT(spec.diurnal_period, 0);
      lambda_max_ = rate_per_ns_ * (1.0 + spec.diurnal_amplitude);
      break;
  }
}

double ArrivalProcess::ExpGapNs(double rate_per_ns) {
  // Inverse CDF of Exp(rate): -ln(1-U)/rate. NextDouble() ∈ [0,1), so the
  // argument of log1p is in (-1, 0] and the gap is finite and ≥ 0.
  return -std::log1p(-rng_.NextDouble()) / rate_per_ns;
}

sim::Duration ArrivalProcess::NextGap(sim::TimePoint now) {
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
      return static_cast<sim::Duration>(ExpGapNs(rate_per_ns_));

    case ArrivalKind::kMmpp: {
      double t = static_cast<double>(now);
      if (!mmpp_init_) {
        mmpp_init_ = true;
        state_until_ns_ = t + ExpGapNs(1.0 / base_dwell_ns_);
      }
      // Competing exponentials: sample a gap at the current state's rate;
      // if the state switches first, advance to the switch instant and
      // resample (memorylessness makes the discard exact).
      while (true) {
        const double rate = in_burst_ ? burst_rate_ : base_rate_;
        const double gap = ExpGapNs(rate);
        if (t + gap <= state_until_ns_) {
          const double total = t + gap - static_cast<double>(now);
          return static_cast<sim::Duration>(total);
        }
        t = state_until_ns_;
        in_burst_ = !in_burst_;
        const double dwell = in_burst_ ? burst_dwell_ns_ : base_dwell_ns_;
        state_until_ns_ += ExpGapNs(1.0 / dwell);
      }
    }

    case ArrivalKind::kDiurnal: {
      // Lewis–Shedler thinning against the sinusoid's peak rate. Mean
      // acceptance probability is 1/(1+A) ≥ 1/2, so this terminates fast.
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      const double period = static_cast<double>(spec_.diurnal_period);
      double t = static_cast<double>(now);
      while (true) {
        t += ExpGapNs(lambda_max_);
        const double lambda =
            rate_per_ns_ *
            (1.0 + spec_.diurnal_amplitude * std::sin(kTwoPi * t / period));
        if (rng_.NextDouble() * lambda_max_ < lambda) {
          return static_cast<sim::Duration>(t - static_cast<double>(now));
        }
      }
    }
  }
  PRISM_CHECK(false) << "unreachable arrival kind";
  return 0;
}

}  // namespace prism::workload
