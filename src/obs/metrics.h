// Metrics registry: counters, gauges and latency histograms keyed by
// (component, name, host), owned per simulation by the fabric's obs::Hub.
//
// Two registration styles, chosen by lifetime:
//  * Owned slots — a component calls AddCounter/AddGauge/AddHistogram at
//    construction and increments the returned handle on its hot path. The
//    registry owns the storage (stable addresses in a deque), so a
//    component that dies before the snapshot leaves a frozen value behind
//    instead of a dangling pointer.
//  * Providers — callbacks that append values at snapshot time. Only for
//    objects whose lifetime dominates the registry's (the Fabric itself,
//    and the Simulator it was built over).
//
// Determinism: Snapshot() sorts by (component, name, host), so two
// identical simulations produce byte-identical snapshots regardless of
// registration interleavings or --jobs fan-out. SetEnabled(false) turns
// subsequent Add* calls into handles onto shared sink slots (hot paths
// still write, but to one dead cache line) and makes Snapshot() empty.
#ifndef PRISM_SRC_OBS_METRICS_H_
#define PRISM_SRC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace prism::obs {

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

class HistogramMetric {
 public:
  void Record(int64_t nanos) { hist_.Record(nanos); }
  const LatencyHistogram& hist() const { return hist_; }
  void Reset() { hist_.Reset(); }

 private:
  LatencyHistogram hist_;
};

// One flattened metric value inside a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string component;  // "sim", "net", "rpc", "rdma", "qp", "prism"
  std::string name;
  std::string host;  // host name, or "" for simulation-global metrics
  Kind kind = Kind::kCounter;

  uint64_t counter = 0;  // kCounter
  int64_t gauge = 0;     // kGauge
  // kHistogram digest (percentiles via LatencyHistogram::QuantileNanos).
  int64_t count = 0;
  double mean_ns = 0;
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;

  friend bool operator==(const MetricValue& a, const MetricValue& b) {
    return a.component == b.component && a.name == b.name &&
           a.host == b.host && a.kind == b.kind && a.counter == b.counter &&
           a.gauge == b.gauge && a.count == b.count && a.mean_ns == b.mean_ns &&
           a.p50_ns == b.p50_ns && a.p99_ns == b.p99_ns && a.max_ns == b.max_ns;
  }
};

struct MetricsSnapshot {
  std::vector<MetricValue> values;

  // Append helpers used by providers (and by the registry itself).
  void AddCounterValue(std::string component, std::string name,
                       std::string host, uint64_t v);
  void AddGaugeValue(std::string component, std::string name,
                     std::string host, int64_t v);
  void AddHistogramValue(std::string component, std::string name,
                         std::string host, const LatencyHistogram& h);

  // Finds a value by full key; nullptr when absent.
  const MetricValue* Find(std::string_view component, std::string_view name,
                          std::string_view host = "") const;

  // One "component.name[host] kind = value" line per metric, for the chaos
  // harness's failure dumps and debugging.
  std::string ToText() const;

  friend bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
    return a.values == b.values;
  }
};

class MetricsRegistry {
 public:
  using Provider = std::function<void(MetricsSnapshot&)>;

  // When disabled, Add* return shared sink handles and Snapshot() is empty.
  // Flip before building the simulated world: already-registered slots keep
  // reporting.
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  Counter* AddCounter(std::string component, std::string name,
                      std::string host = "");
  Gauge* AddGauge(std::string component, std::string name,
                  std::string host = "");
  HistogramMetric* AddHistogram(std::string component, std::string name,
                                std::string host = "");
  void AddProvider(Provider p);

  // Owned slots plus provider output, sorted by (component, name, host).
  MetricsSnapshot Snapshot() const;

  // Zeroes every owned slot (between sweep points reusing a world).
  // Providers are live views and reset with their owning component.
  void Reset();

  size_t slot_count() const { return slots_.size(); }

 private:
  struct Slot {
    std::string component;
    std::string name;
    std::string host;
    MetricValue::Kind kind;
    Counter counter;
    Gauge gauge;
    HistogramMetric hist;
  };

  // deque: stable addresses for handed-out handles.
  std::deque<Slot> slots_;
  std::vector<Provider> providers_;
  bool enabled_ = true;

  Counter sink_counter_;
  Gauge sink_gauge_;
  HistogramMetric sink_hist_;
};

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_METRICS_H_
