// Per-op phase timeline: where did each operation's latency go?
//
// The span tracer (trace.h) answers "what happened when" for a handful of
// traced ops; figures need the complementary aggregate answer — "p99 = X µs,
// of which Y µs is queueing" — for *every* measured op. OpTimeline carries a
// fixed seven-phase decomposition of one operation's arrival-to-completion
// interval; TimelineStore aggregates finished timelines into per-phase
// histograms per client class, retains the slowest-K ops per class as
// exemplars (full span tree pinned at capture), and feeds a windowed
// time-series (timeseries.h).
//
// Phase machine — telescoping sum by construction:
//
//   Switch(p, now):  phase_ns[cur] += now - last;  last = now;  cur = p
//   Finish(now):     phase_ns[cur] += now - last;  end = now    (then done)
//
// Every nanosecond between Start and Finish lands in exactly one phase no
// matter which Switch calls fire, so sum(phase_ns) == end - start *exactly*
// (property-checked in tests/phase_invariant_test.cc). A stale stamp (e.g. a
// retransmit timer firing after the op already finished by timeout) is a
// no-op thanks to the done flag; misattribution between phases under
// concurrency is possible in principle but the total never drifts.
//
// Propagation uses obs::Hub's current-op register with the same discipline
// as the current-span register (obs.h): armed immediately before a
// synchronous handoff, captured at the receiving entry, never trusted across
// a suspension point. Unlike the span register it is unconditional (a bare
// pointer write), so arming it costs nothing when no store is attached.
//
// Determinism: pure recording. Nothing here schedules an event or perturbs
// the (when,seq) replay; timelines are deque-owned (stable addresses) and
// never recycled mid-run, so a late stale pointer can only hit its own
// finished (inert) timeline.
#ifndef PRISM_SRC_OBS_TIMELINE_H_
#define PRISM_SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/phase.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace prism::obs {

class OpTimeline {
 public:
  // Begins the timeline at `now_ns` in kBacklogWait (an open-loop op is
  // born into the backlog; closed-loop callers Switch immediately).
  void Start(uint32_t cls, int64_t now_ns) {
    cls_ = cls;
    start_ns_ = last_ns_ = now_ns;
    cur_ = Phase::kBacklogWait;
    started_ = true;
  }

  // Attributes [last stamp, now) to the current phase, then enters `p`.
  // No-op before Start or after Finish.
  void Switch(Phase p, int64_t now_ns) {
    if (!started_ || done_) return;
    phase_ns_[static_cast<int>(cur_)] += now_ns - last_ns_;
    last_ns_ = now_ns;
    if (p == Phase::kRetransmit && cur_ != Phase::kRetransmit) retransmits_++;
    cur_ = p;
  }

  // Closes the timeline; later Switch/Finish calls are inert.
  void Finish(int64_t now_ns) {
    if (!started_ || done_) return;
    phase_ns_[static_cast<int>(cur_)] += now_ns - last_ns_;
    end_ns_ = now_ns;
    done_ = true;
  }

  bool started() const { return started_; }
  bool done() const { return done_; }
  uint32_t cls() const { return cls_; }
  int64_t start_ns() const { return start_ns_; }
  int64_t end_ns() const { return end_ns_; }
  int64_t total_ns() const { return end_ns_ - start_ns_; }
  int64_t phase_ns(int i) const { return phase_ns_[i]; }
  int64_t phase_ns(Phase p) const { return phase_ns_[static_cast<int>(p)]; }
  uint32_t retransmits() const { return retransmits_; }

  // Root span of the traced causal chain (0 when untraced); lets the
  // exemplar store pin the span tree of a slow op.
  SpanId root_span() const { return root_span_; }
  void set_root_span(SpanId s) { root_span_ = s; }

 private:
  int64_t phase_ns_[kNumPhases] = {0, 0, 0, 0, 0, 0, 0};
  int64_t start_ns_ = 0;
  int64_t last_ns_ = 0;
  int64_t end_ns_ = -1;
  SpanId root_span_ = 0;
  uint32_t cls_ = 0;
  uint32_t retransmits_ = 0;
  Phase cur_ = Phase::kBacklogWait;
  bool started_ = false;
  bool done_ = false;
};

// Null-safe phase switch: the stamping idiom at every handoff point.
inline void SwitchOp(OpTimeline* op, Phase p, int64_t now_ns) {
  if (op != nullptr) op->Switch(p, now_ns);
}

// Owns every OpTimeline of one simulation run and aggregates the finished
// ones. One store per sweep point (same slot discipline as PointObs), so
// parallel sweeps stay data-race-free.
class TimelineStore {
 public:
  struct Options {
    int64_t bucket_ns = 50'000;  // time-series bucket width
    size_t top_k = 4;            // exemplars retained per class
  };

  TimelineStore();  // default Options
  explicit TimelineStore(Options opt);

  // Optional: lets FinishOp pin span trees for exemplars. The pinned copies
  // are immune to the tracer's FIFO eviction (ISSUE 9 satellite 1).
  void SetTracer(const Tracer* t) { tracer_ = t; }

  // Measurement window: only ops with arrival >= start and completion <= end
  // are aggregated (mirrors workload::Recorder's predicate exactly, so the
  // per-class total histogram matches the figure's latency column).
  void SetWindow(int64_t start_ns, int64_t end_ns) {
    win_start_ = start_ns;
    win_end_ = end_ns;
  }

  // Registers (or finds) a client class; returns its index.
  uint32_t EnsureClass(std::string_view name);

  // Creates a timeline starting at `now_ns`. The pointer is stable for the
  // lifetime of the store and is never recycled.
  OpTimeline* StartOp(uint32_t cls, int64_t now_ns);

  // Finishes `t` and, if it falls inside the measurement window, folds it
  // into the per-class per-phase histograms, the exemplar reservoir, and the
  // time-series. Null-safe.
  void FinishOp(OpTimeline* t, int64_t now_ns);

  // A slow-op exemplar: phase breakdown plus the span tree pinned at the
  // moment of capture (deterministic ordering: total_ns desc, then
  // (end_ns, seq) asc — the (when, seq) tie-break of the op's completion).
  struct Exemplar {
    uint64_t seq = 0;  // finish order within the measurement window
    uint32_t cls = 0;
    uint32_t retransmits = 0;
    int64_t start_ns = 0;
    int64_t end_ns = 0;
    int64_t phase_ns[kNumPhases] = {0, 0, 0, 0, 0, 0, 0};
    SpanId root_span = 0;
    std::vector<SpanRecord> spans;  // pinned copy; empty when untraced
    int64_t total_ns() const { return end_ns - start_ns; }
  };

  size_t n_classes() const { return classes_.size(); }
  const std::string& class_name(size_t cls) const {
    return classes_[cls].name;
  }
  const LatencyHistogram& total_hist(size_t cls) const {
    return classes_[cls].total;
  }
  const LatencyHistogram& phase_hist(size_t cls, int phase) const {
    return classes_[cls].phase[phase];
  }
  // Exact integer sum of a phase across the class's measured ops (the
  // histograms are log-bucketed; shares computed from these never drift).
  int64_t phase_total_ns(size_t cls, int phase) const {
    return classes_[cls].phase_total_ns[phase];
  }
  // Sorted slowest-first with the deterministic tie-break above.
  const std::vector<Exemplar>& exemplars(size_t cls) const {
    return classes_[cls].exemplars;
  }

  // Every timeline created this run, in StartOp order (finished or not).
  // Property tests iterate these to check the telescoping-sum invariant
  // against the aggregates.
  const std::deque<OpTimeline>& timelines() const { return pool_; }

  TimeSeries& series() { return ts_; }
  const TimeSeries& series() const { return ts_; }

  uint64_t started_ops() const { return started_ops_; }
  uint64_t measured_ops() const { return measured_ops_; }

 private:
  struct ClassAgg {
    std::string name;
    LatencyHistogram total;
    LatencyHistogram phase[kNumPhases];
    int64_t phase_total_ns[kNumPhases] = {0, 0, 0, 0, 0, 0, 0};
    std::vector<Exemplar> exemplars;  // kept sorted, size <= top_k
  };

  Options opt_;
  const Tracer* tracer_ = nullptr;
  int64_t win_start_ = 0;
  int64_t win_end_ = INT64_MAX;
  std::deque<OpTimeline> pool_;  // stable addresses
  std::vector<ClassAgg> classes_;
  TimeSeries ts_;
  uint64_t started_ops_ = 0;
  uint64_t measured_ops_ = 0;
};

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_TIMELINE_H_
