// Protocol-complexity accounting (Table 1, §4.3).
//
// The paper's central comparison is not throughput but *protocol shape*:
// how many round trips, messages, bytes and host-CPU actions each
// operation needs under PRISM vs raw RDMA vs RPC. Every transport client
// (rpc::RpcClient, rdma::RdmaClient, core::PrismClient) maintains a
// TransportTally of these quantities; the application benchmarks diff the
// tally around each logical op and feed the delta into the per-simulation
// OpAccountant, which aggregates per operation type ("kv.get", "rs.put",
// ...). FigureReporter merges the aggregate into results/BENCH_figs.json
// so every figure carries its Table-1-style accounting next to the
// throughput/latency numbers.
//
// Counting rules (documented here, asserted in tests/obs_test.cc):
//  * messages / bytes_out   — counted when the request is handed to the
//    fabric (logical messages: transport-level retransmissions are a
//    fabric metric, not a protocol property).
//  * round_trips / bytes_in — counted only when the response actually
//    arrives; a dropped or timed-out op contributes its request but no
//    round trip.
//  * cpu_actions            — host (or SmartNIC) CPU involvement per op:
//    1 for every RPC call, software-RDMA verb, and software/BlueField
//    PRISM chain; 0 for hardware-NIC verbs and projected-hardware chains.
//  * doorbells / cq_polls   — *client*-CPU actions at the verb layer: one
//    doorbell per MMIO ring (a doorbell-batched post charges one ring for
//    the whole batch) and one cq_poll per CQ drain (completion coalescing
//    charges one drain per moderation batch). Kept separate from
//    cpu_actions so the paper's Table-1 host-CPU accounting is untouched;
//    doorbells + cq_polls is the client-side CPU-action count that
//    doorbell batching and completion coalescing amortize.
#ifndef PRISM_SRC_OBS_COMPLEXITY_H_
#define PRISM_SRC_OBS_COMPLEXITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace prism::obs {

struct TransportTally {
  uint64_t round_trips = 0;
  uint64_t messages = 0;
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  uint64_t cpu_actions = 0;
  uint64_t doorbells = 0;
  uint64_t cq_polls = 0;

  // Client-side CPU actions: the quantity verb-layer batching amortizes.
  uint64_t client_cpu_actions() const { return doorbells + cq_polls; }

  TransportTally& operator+=(const TransportTally& o) {
    round_trips += o.round_trips;
    messages += o.messages;
    bytes_out += o.bytes_out;
    bytes_in += o.bytes_in;
    cpu_actions += o.cpu_actions;
    doorbells += o.doorbells;
    cq_polls += o.cq_polls;
    return *this;
  }
  friend TransportTally operator+(TransportTally a, const TransportTally& b) {
    a += b;
    return a;
  }
  // Delta between two monotone snapshots of the same tally.
  friend TransportTally operator-(TransportTally a, const TransportTally& b) {
    a.round_trips -= b.round_trips;
    a.messages -= b.messages;
    a.bytes_out -= b.bytes_out;
    a.bytes_in -= b.bytes_in;
    a.cpu_actions -= b.cpu_actions;
    a.doorbells -= b.doorbells;
    a.cq_polls -= b.cq_polls;
    return a;
  }
  friend bool operator==(const TransportTally& a, const TransportTally& b) {
    return a.round_trips == b.round_trips && a.messages == b.messages &&
           a.bytes_out == b.bytes_out && a.bytes_in == b.bytes_in &&
           a.cpu_actions == b.cpu_actions && a.doorbells == b.doorbells &&
           a.cq_polls == b.cq_polls;
  }
};

// Aggregate over all ops of one type within one simulation.
struct OpStats {
  std::string op;
  uint64_t count = 0;
  TransportTally totals;

  friend bool operator==(const OpStats& a, const OpStats& b) {
    return a.op == b.op && a.count == b.count && a.totals == b.totals;
  }
};

// Per-simulation operation-type aggregator. Single-threaded like everything
// else inside one simulation; Collect() returns op-name-sorted rows so the
// output is deterministic and snapshot-comparable across runs.
class OpAccountant {
 public:
  void Record(std::string_view op, const TransportTally& delta) {
    RecordN(op, 1, delta);
  }

  // Bulk form for drivers whose ops overlap on a shared transport client
  // (the open-loop pools): per-op tally deltas are not separable there, so
  // the driver records the client's whole-run totals against the op count
  // it executed. Per-op averages come out identical to N Record() calls.
  void RecordN(std::string_view op, uint64_t n, const TransportTally& totals) {
    Entry& e = map_[std::string(op)];
    e.count += n;
    e.totals += totals;
  }

  std::vector<OpStats> Collect() const {
    std::vector<OpStats> out;
    out.reserve(map_.size());
    for (const auto& [name, e] : map_) {
      out.push_back(OpStats{name, e.count, e.totals});
    }
    return out;  // std::map iterates sorted by op name
  }

  bool empty() const { return map_.empty(); }
  void Reset() { map_.clear(); }

 private:
  struct Entry {
    uint64_t count = 0;
    TransportTally totals;
  };
  std::map<std::string, Entry, std::less<>> map_;
};

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_COMPLEXITY_H_
