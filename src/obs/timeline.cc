#include "src/obs/timeline.h"

#include <algorithm>

namespace prism::obs {

namespace {
constexpr const char* kPhaseNames[kNumPhases] = {
    "backlog_wait", "batch_wait", "wire", "responder",
    "retransmit",   "sync_spin",  "app",
};
}  // namespace

const char* PhaseName(Phase p) { return kPhaseNames[static_cast<int>(p)]; }

const char* PhaseName(int index) {
  return (index >= 0 && index < kNumPhases) ? kPhaseNames[index] : "?";
}

int PhaseIndex(std::string_view name) {
  for (int i = 0; i < kNumPhases; i++) {
    if (name == kPhaseNames[i]) return i;
  }
  return -1;
}

TimelineStore::TimelineStore() : TimelineStore(Options()) {}

TimelineStore::TimelineStore(Options opt)
    : opt_(opt), ts_(opt.bucket_ns) {}

uint32_t TimelineStore::EnsureClass(std::string_view name) {
  for (size_t i = 0; i < classes_.size(); i++) {
    if (classes_[i].name == name) return static_cast<uint32_t>(i);
  }
  classes_.emplace_back();
  classes_.back().name = std::string(name);
  return static_cast<uint32_t>(classes_.size() - 1);
}

OpTimeline* TimelineStore::StartOp(uint32_t cls, int64_t now_ns) {
  pool_.emplace_back();
  OpTimeline* t = &pool_.back();
  t->Start(cls, now_ns);
  started_ops_++;
  ts_.RecordArrival(now_ns);
  return t;
}

void TimelineStore::FinishOp(OpTimeline* t, int64_t now_ns) {
  if (t == nullptr || !t->started() || t->done()) return;
  t->Finish(now_ns);
  // Mirror workload::Recorder's predicate: measured iff the op arrived at or
  // after the window start and completed at or before its end.
  if (t->start_ns() < win_start_ || t->end_ns() > win_end_) return;
  const uint64_t seq = measured_ops_++;

  int64_t phases[kNumPhases];
  for (int i = 0; i < kNumPhases; i++) phases[i] = t->phase_ns(i);
  ts_.RecordCompletion(t->end_ns(), t->total_ns(), phases, t->retransmits());

  if (t->cls() >= classes_.size()) return;  // unregistered class: series only
  ClassAgg& agg = classes_[t->cls()];
  agg.total.Record(t->total_ns());
  for (int i = 0; i < kNumPhases; i++) {
    agg.phase[i].Record(phases[i]);
    agg.phase_total_ns[i] += phases[i];
  }

  // Exemplar reservoir over the tail: keep the slowest top_k, ordered
  // slowest-first with the deterministic (end_ns, seq) tie-break.
  const auto slower = [](const Exemplar& a, const Exemplar& b) {
    if (a.total_ns() != b.total_ns()) return a.total_ns() > b.total_ns();
    if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
    return a.seq < b.seq;
  };
  auto& ex = agg.exemplars;
  const bool full = ex.size() >= opt_.top_k;
  if (full && ex.back().total_ns() >= t->total_ns()) return;
  Exemplar e;
  e.seq = seq;
  e.cls = t->cls();
  e.retransmits = t->retransmits();
  e.start_ns = t->start_ns();
  e.end_ns = t->end_ns();
  for (int i = 0; i < kNumPhases; i++) e.phase_ns[i] = phases[i];
  e.root_span = t->root_span();
  // Pin the span tree now: a copy taken at capture time survives the
  // tracer's FIFO eviction of old finished spans.
  if (tracer_ != nullptr && e.root_span != 0) {
    tracer_->CollectTree(e.root_span, &e.spans);
  }
  ex.insert(std::upper_bound(ex.begin(), ex.end(), e, slower), std::move(e));
  if (ex.size() > opt_.top_k) ex.pop_back();
}

}  // namespace prism::obs
