#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace prism::obs {

void MetricsSnapshot::AddCounterValue(std::string component, std::string name,
                                      std::string host, uint64_t v) {
  MetricValue m;
  m.component = std::move(component);
  m.name = std::move(name);
  m.host = std::move(host);
  m.kind = MetricValue::Kind::kCounter;
  m.counter = v;
  values.push_back(std::move(m));
}

void MetricsSnapshot::AddGaugeValue(std::string component, std::string name,
                                    std::string host, int64_t v) {
  MetricValue m;
  m.component = std::move(component);
  m.name = std::move(name);
  m.host = std::move(host);
  m.kind = MetricValue::Kind::kGauge;
  m.gauge = v;
  values.push_back(std::move(m));
}

void MetricsSnapshot::AddHistogramValue(std::string component,
                                        std::string name, std::string host,
                                        const LatencyHistogram& h) {
  MetricValue m;
  m.component = std::move(component);
  m.name = std::move(name);
  m.host = std::move(host);
  m.kind = MetricValue::Kind::kHistogram;
  m.count = h.count();
  m.mean_ns = h.MeanNanos();
  m.p50_ns = h.QuantileNanos(0.5);
  m.p99_ns = h.QuantileNanos(0.99);
  m.max_ns = h.MaxNanos();
  values.push_back(std::move(m));
}

const MetricValue* MetricsSnapshot::Find(std::string_view component,
                                         std::string_view name,
                                         std::string_view host) const {
  for (const MetricValue& m : values) {
    if (m.component == component && m.name == name && m.host == host) {
      return &m;
    }
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[160];
  for (const MetricValue& m : values) {
    const std::string key =
        m.component + "." + m.name + (m.host.empty() ? "" : "[" + m.host + "]");
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%-48s counter = %llu\n", key.c_str(),
                      static_cast<unsigned long long>(m.counter));
        break;
      case MetricValue::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%-48s gauge   = %lld\n", key.c_str(),
                      static_cast<long long>(m.gauge));
        break;
      case MetricValue::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      "%-48s hist    n=%lld mean=%.0fns p50=%lldns "
                      "p99=%lldns max=%lldns\n",
                      key.c_str(), static_cast<long long>(m.count), m.mean_ns,
                      static_cast<long long>(m.p50_ns),
                      static_cast<long long>(m.p99_ns),
                      static_cast<long long>(m.max_ns));
        break;
    }
    out += buf;
  }
  return out;
}

Counter* MetricsRegistry::AddCounter(std::string component, std::string name,
                                     std::string host) {
  if (!enabled_) return &sink_counter_;
  slots_.push_back(Slot{std::move(component), std::move(name), std::move(host),
                        MetricValue::Kind::kCounter, {}, {}, {}});
  return &slots_.back().counter;
}

Gauge* MetricsRegistry::AddGauge(std::string component, std::string name,
                                 std::string host) {
  if (!enabled_) return &sink_gauge_;
  slots_.push_back(Slot{std::move(component), std::move(name), std::move(host),
                        MetricValue::Kind::kGauge, {}, {}, {}});
  return &slots_.back().gauge;
}

HistogramMetric* MetricsRegistry::AddHistogram(std::string component,
                                               std::string name,
                                               std::string host) {
  if (!enabled_) return &sink_hist_;
  slots_.push_back(Slot{std::move(component), std::move(name), std::move(host),
                        MetricValue::Kind::kHistogram, {}, {}, {}});
  return &slots_.back().hist;
}

void MetricsRegistry::AddProvider(Provider p) {
  if (!enabled_) return;
  providers_.push_back(std::move(p));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  if (!enabled_) return snap;
  for (const Slot& s : slots_) {
    switch (s.kind) {
      case MetricValue::Kind::kCounter:
        snap.AddCounterValue(s.component, s.name, s.host, s.counter.value());
        break;
      case MetricValue::Kind::kGauge:
        snap.AddGaugeValue(s.component, s.name, s.host, s.gauge.value());
        break;
      case MetricValue::Kind::kHistogram:
        snap.AddHistogramValue(s.component, s.name, s.host, s.hist.hist());
        break;
    }
  }
  for (const Provider& p : providers_) p(snap);
  std::sort(snap.values.begin(), snap.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.component != b.component) return a.component < b.component;
              if (a.name != b.name) return a.name < b.name;
              return a.host < b.host;
            });
  return snap;
}

void MetricsRegistry::Reset() {
  for (Slot& s : slots_) {
    s.counter.Reset();
    s.gauge.Reset();
    s.hist.Reset();
  }
}

}  // namespace prism::obs
