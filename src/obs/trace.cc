#include "src/obs/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

namespace prism::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendTs(std::string& out, int64_t ns) {
  // Microseconds with nanosecond fractions (Chrome's ts unit is µs).
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void AppendHex(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  out += buf;
}

// One async begin/end event.
void AppendAsyncEvent(std::string& out, char ph, const SpanRecord& s,
                      int64_t ts_ns) {
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"cat\":\"";
  AppendEscaped(out, s.cat);
  out += "\",\"name\":\"";
  AppendEscaped(out, s.name);
  out += "\",\"id\":\"";
  AppendHex(out, s.root);
  out += "\",\"pid\":";
  out += std::to_string(s.host);
  out += ",\"tid\":0,\"ts\":";
  AppendTs(out, ts_ns);
  if (ph == 'b') {
    out += ",\"args\":{\"span\":\"";
    AppendHex(out, s.id);
    out += "\",\"parent\":\"";
    AppendHex(out, s.parent);
    out += "\"}";
  }
  out += "}";
}

}  // namespace

SpanId Tracer::Begin(std::string_view name, std::string_view cat,
                     uint32_t host, int64_t now_ns, SpanId parent) {
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.root = rec.id;
  if (parent != 0) {
    auto it = open_.find(parent);
    if (it != open_.end()) rec.root = it->second.root;
  }
  rec.name = std::string(name);
  rec.cat = std::string(cat);
  rec.host = host;
  rec.start_ns = now_ns;
  const SpanId id = rec.id;
  open_.emplace(id, std::move(rec));
  return id;
}

void Tracer::End(SpanId id, int64_t now_ns) {
  auto it = open_.find(id);
  if (it == open_.end()) return;  // already ended, or never begun
  SpanRecord rec = std::move(it->second);
  open_.erase(it);
  rec.end_ns = now_ns;
  done_.push_back(std::move(rec));
  if (done_.size() > cap_) {
    done_.pop_front();
    dropped_++;
  }
}

SpanId Tracer::EmitComplete(std::string_view name, std::string_view cat,
                            uint32_t host, int64_t start_ns, int64_t end_ns,
                            SpanId parent) {
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.root = rec.id;
  if (parent != 0) {
    auto it = open_.find(parent);
    if (it != open_.end()) rec.root = it->second.root;
  }
  rec.name = std::string(name);
  rec.cat = std::string(cat);
  rec.host = host;
  rec.start_ns = start_ns;
  rec.end_ns = end_ns;
  const SpanId id = rec.id;
  done_.push_back(std::move(rec));
  if (done_.size() > cap_) {
    done_.pop_front();
    dropped_++;
  }
  return id;
}

SpanId Tracer::ParentOf(SpanId id) const {
  auto it = open_.find(id);
  return it == open_.end() ? 0 : it->second.parent;
}

SpanId Tracer::RootOf(SpanId id) const {
  auto it = open_.find(id);
  return it == open_.end() ? 0 : it->second.root;
}

void Tracer::CollectTree(SpanId root, std::vector<SpanRecord>* out) const {
  if (root == 0 || out == nullptr) return;
  // Finished spans in completion order, then still-open ones by id — both
  // deterministic, so pinned exemplar trees replay bit-identically.
  for (const SpanRecord& s : done_) {
    if (s.root == root) out->push_back(s);
  }
  for (const auto& [id, s] : open_) {
    if (s.root == root) out->push_back(s);
  }
}

std::string Tracer::ToChromeJson(
    const std::vector<std::string>& host_names) const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (size_t h = 0; h < host_names.size(); ++h) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(h) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    AppendEscaped(out, host_names[h]);
    out += "\"}}";
  }
  auto emit_span = [&](const SpanRecord& s, int64_t end_ns) {
    comma();
    AppendAsyncEvent(out, 'b', s, s.start_ns);
    comma();
    AppendAsyncEvent(out, 'e', s, end_ns);
  };
  for (const SpanRecord& s : done_) emit_span(s, s.end_ns);
  // Flush still-open spans as zero-length so the file is self-contained
  // (std::map iteration keeps this deterministic).
  for (const auto& [id, s] : open_) emit_span(s, s.start_ns);
  // Metadata: how many finished spans the FIFO cap silently evicted. A
  // nonzero value means the traceEvents window is incomplete (ISSUE 9
  // satellite 1 — surfaced instead of silent).
  out += "\n],\"droppedSpans\":" + std::to_string(dropped_) + "}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path,
                             const std::vector<std::string>& host_names) const {
  std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "Tracer: cannot open %s\n", path.c_str());
    return false;
  }
  f << ToChromeJson(host_names);
  return f.good();
}

}  // namespace prism::obs
