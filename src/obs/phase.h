// The fixed phase vocabulary for per-op latency attribution, shared by
// every stack (RDMA verbs, PRISM chains, RPC, sync schemes). See timeline.h
// for the phase machine that accumulates into these slots.
//
// Semantics, one line each:
//  * backlog_wait — open-loop arrival queue: arrival -> worker pop.
//  * batch_wait   — doorbell-batch / completion-coalescing flush wait.
//  * wire         — fabric flight plus NIC-resident server time. One-sided
//                   RDMA on the hardware backend and hardware-projected
//                   PRISM chains execute without host-CPU involvement, so
//                   their server time is indistinguishable from the wire to
//                   the client and is charged here.
//  * responder    — server-side *CPU* involvement: the software RDMA
//                   backend, software/BlueField PRISM deployments, and RPC
//                   (always).
//  * retransmit   — loss-recovery backoff between send attempts.
//  * sync_spin    — lock/lease/seqlock acquisition spin and backoff.
//  * app          — everything else inside the op body.
#ifndef PRISM_SRC_OBS_PHASE_H_
#define PRISM_SRC_OBS_PHASE_H_

#include <cstdint>
#include <string_view>

namespace prism::obs {

enum class Phase : uint8_t {
  kBacklogWait = 0,
  kBatchWait = 1,
  kWire = 2,
  kResponder = 3,
  kRetransmit = 4,
  kSyncSpin = 5,
  kApp = 6,
};

inline constexpr int kNumPhases = 7;

// Stable lowercase names ("backlog_wait", ...) used in JSON and reports.
const char* PhaseName(Phase p);
const char* PhaseName(int index);
// -1 if `name` is not a phase name.
int PhaseIndex(std::string_view name);

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_PHASE_H_
