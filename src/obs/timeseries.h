// Windowed time-series over simulated time: fixed-width buckets of
// arrivals, completions, per-phase latency sums, and retransmits, fed by
// TimelineStore as ops start and finish. Serialized to results/TS_*.json by
// the bench reporter; tools/latency_report plots saturation onset from it.
//
// Buckets are keyed by floor(now / bucket_ns) in an ordered map, so sparse
// runs (long warmup, short measurement window) stay cheap and iteration
// order is deterministic. Outstanding-op depth is not stored per bucket —
// it is the running sum of (arrivals - completions), reconstructed by the
// serializer — so recording stays a pure accumulate.
#ifndef PRISM_SRC_OBS_TIMESERIES_H_
#define PRISM_SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>

#include "src/obs/phase.h"

namespace prism::obs {

class TimeSeries {
 public:
  struct Bucket {
    uint64_t arrivals = 0;
    uint64_t completions = 0;
    uint64_t retransmits = 0;
    int64_t total_ns = 0;  // sum of completed-op latencies
    int64_t phase_ns[kNumPhases] = {0, 0, 0, 0, 0, 0, 0};
  };

  explicit TimeSeries(int64_t bucket_ns = 50'000) : bucket_ns_(bucket_ns) {}

  int64_t bucket_ns() const { return bucket_ns_; }

  void RecordArrival(int64_t now_ns) { At(now_ns).arrivals++; }

  // Completion-time attribution: the whole op (its latency, phase sums, and
  // retransmit count) lands in the bucket it completed in.
  void RecordCompletion(int64_t now_ns, int64_t total_ns,
                        const int64_t phase_ns[kNumPhases],
                        uint32_t retransmits) {
    Bucket& b = At(now_ns);
    b.completions++;
    b.retransmits += retransmits;
    b.total_ns += total_ns;
    for (int i = 0; i < kNumPhases; i++) b.phase_ns[i] += phase_ns[i];
  }

  bool empty() const { return buckets_.empty(); }
  size_t size() const { return buckets_.size(); }
  // Key -> bucket; key * bucket_ns() is the bucket's start time.
  const std::map<int64_t, Bucket>& buckets() const { return buckets_; }

 private:
  Bucket& At(int64_t now_ns) { return buckets_[now_ns / bucket_ns_]; }

  int64_t bucket_ns_;
  std::map<int64_t, Bucket> buckets_;
};

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_TIMESERIES_H_
