// obs::Hub — the per-simulation observability root, owned by net::Fabric
// (every layer already holds a Fabric*, so `fabric->obs()` reaches the hub
// from anywhere in the stack).
//
// Three facilities, all deterministic by construction (none ever schedules
// an event or reads simulator state):
//  * metrics()  — the MetricsRegistry components register into.
//  * ops()      — the per-op-type protocol-complexity accountant.
//  * tracer()   — optional causal span tracer; nullptr (the default) makes
//                 every span helper a no-op returning SpanId 0.
//
// Parent propagation — the current-span register:
//
// Coroutine protocol code interleaves at event granularity, so a thread-
// local-style "current scope" cannot survive a co_await. Instead the hub
// keeps one SpanId register with a strict discipline: it is *written*
// immediately before a synchronous handoff (a fabric Send, a Spawn of a
// server handler) and *read* at the very entry of the receiving code, with
// no suspension point in between — a window in which the single-threaded
// simulator cannot interleave anything. Reads outside such a window (e.g.
// a retransmit timer) must not trust the register and use parent 0.
//
// The register only ever affects which parent a span records: with a
// single traced client, parent attribution is exact; under concurrency a
// span can attach to a sibling op's span (cosmetic, documented in
// DESIGN.md §5.4), but the (when,seq) replay is unaffected either way.
#ifndef PRISM_SRC_OBS_OBS_H_
#define PRISM_SRC_OBS_OBS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/complexity.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace prism::obs {

class OpTimeline;    // timeline.h
class TimelineStore;  // timeline.h

class Hub {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  OpAccountant& ops() { return ops_; }
  const OpAccountant& ops() const { return ops_; }

  Tracer* tracer() const { return tracer_; }
  void SetTracer(Tracer* t) { tracer_ = t; }

  SpanId current_span() const { return current_; }
  void SetCurrentSpan(SpanId s) {
    if (tracer_ != nullptr) current_ = s;
  }

  // Current-op register: same write-before-handoff / read-at-entry
  // discipline as the span register, but for the per-op phase timeline
  // (timeline.h). The same-value check is not an optimization: untimed runs
  // only ever pass nullptr, and skipping the redundant store keeps the
  // shared register write-free under a parallel (metrics-only) ClusterSim,
  // where host engines run services on worker threads concurrently. Timed
  // runs always hold the serial engine (Fabric::AttachTracer downgrades),
  // so the real writes stay single-threaded.
  OpTimeline* current_op() const { return op_; }
  void SetCurrentOp(OpTimeline* t) {
    if (t != op_) op_ = t;
  }

  // Opens a span parented to the current span and makes it current.
  // No-op (returns 0) without a tracer.
  SpanId StartSpan(std::string_view name, std::string_view cat, uint32_t host,
                   int64_t now_ns) {
    if (tracer_ == nullptr) return 0;
    const SpanId s = tracer_->Begin(name, cat, host, now_ns, current_);
    current_ = s;
    return s;
  }

  // Closes a span and restores its parent as current.
  void FinishSpan(SpanId s, int64_t now_ns) {
    if (tracer_ == nullptr || s == 0) return;
    current_ = tracer_->ParentOf(s);
    tracer_->End(s, now_ns);
  }

 private:
  MetricsRegistry metrics_;
  OpAccountant ops_;
  Tracer* tracer_ = nullptr;
  SpanId current_ = 0;
  OpTimeline* op_ = nullptr;
};

// Per-simulation observability attachment threaded (optionally) into the
// bench/chaos point runners: the point attaches `tracer` to its fabric hub
// and, when `want_metrics` is set, stores the end-of-run registry snapshot
// into `snapshot`. One PointObs per sweep point; the harness guarantees a
// point only touches its own slot, so sweeps stay data-race-free and
// bit-identical for any --jobs=N.
struct PointObs {
  Tracer* tracer = nullptr;
  bool want_metrics = false;
  // Optional per-op phase attribution: when set, the point runner wires the
  // store through its load pool / clients, and the bench reporter turns it
  // into results/ATTRIB_*.json + TS_*.json. Owned by the caller (one store
  // per sweep point, same slot discipline as the tracer).
  TimelineStore* timelines = nullptr;
  MetricsSnapshot snapshot;
  // Filled by the point runner when a tracer is attached (host id -> name),
  // so the trace writer can label Perfetto processes.
  std::vector<std::string> host_names;
};

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_OBS_H_
