// Causal span tracer: follows one client operation across layers and emits
// Chrome trace-event JSON (chrome://tracing / https://ui.perfetto.dev).
//
// A span is a named interval of *simulated* time attributed to a host, with
// a parent span forming a causal chain: an application op ("kv.get") parents
// the transport op ("prism.execute"), which parents the fabric flights
// ("net.flight") and the server-side execution ("prism.chain"). Parent
// propagation across event boundaries uses obs::Hub's current-span register
// (see obs.h); the tracer itself is pure recording — it never schedules,
// never reads the simulator, and therefore cannot perturb the (when,seq)
// event replay (asserted by tests/obs_determinism_test.cc).
//
// Output format: async "b"/"e" event pairs whose id is the *root* span of
// the causal chain, so Perfetto renders each traced operation as one async
// track (grouped per host pid) with its nested layer spans; "M" metadata
// names the host processes. Timestamps are microseconds with nanosecond
// fractions.
#ifndef PRISM_SRC_OBS_TRACE_H_
#define PRISM_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace prism::obs {

using SpanId = uint64_t;  // 0 = "no span"

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  SpanId root = 0;    // top of this span's causal chain (id when parent==0)
  std::string name;   // "kv.get", "prism.execute", "net.flight", ...
  std::string cat;    // layer: "app", "rpc", "rdma", "prism", "net"
  uint32_t host = 0;  // net::HostId the work happened on
  int64_t start_ns = 0;
  int64_t end_ns = -1;  // -1 while open
};

class Tracer {
 public:
  // At most `max_finished_spans` completed spans are retained; older ones
  // are dropped FIFO (the survivors are the trace's last window).
  explicit Tracer(size_t max_finished_spans = size_t{1} << 20)
      : cap_(max_finished_spans) {}

  SpanId Begin(std::string_view name, std::string_view cat, uint32_t host,
               int64_t now_ns, SpanId parent = 0);
  void End(SpanId id, int64_t now_ns);

  // One-shot closed span (fabric flights: departure and delivery times are
  // both known at send time).
  SpanId EmitComplete(std::string_view name, std::string_view cat,
                      uint32_t host, int64_t start_ns, int64_t end_ns,
                      SpanId parent = 0);

  // Zero-length marker (drops, losses).
  void Instant(std::string_view name, std::string_view cat, uint32_t host,
               int64_t now_ns, SpanId parent = 0) {
    EmitComplete(name, cat, host, now_ns, now_ns, parent);
  }

  // Parent of a still-open span (0 for unknown/closed) — used by Hub to
  // restore the current-span register on span exit.
  SpanId ParentOf(SpanId id) const;

  // Causal root of a still-open span (0 for unknown/closed) — lets an op
  // timeline remember which trace tree it belongs to.
  SpanId RootOf(SpanId id) const;

  // Appends every retained span whose causal root is `root` (finished
  // spans in completion order, then open ones by id). Callers copy — the
  // exemplar store pins trees this way, immune to later FIFO eviction.
  void CollectTree(SpanId root, std::vector<SpanRecord>* out) const;

  size_t finished_count() const { return done_.size(); }
  size_t open_count() const { return open_.size(); }
  size_t dropped_count() const { return dropped_; }
  const std::deque<SpanRecord>& finished() const { return done_; }

  // Chrome trace-event JSON. `host_names[i]` labels pid i via process_name
  // metadata. Still-open spans are flushed as zero-length.
  std::string ToChromeJson(const std::vector<std::string>& host_names = {}) const;
  bool WriteChromeJson(const std::string& path,
                       const std::vector<std::string>& host_names = {}) const;

 private:
  SpanId next_id_ = 1;
  std::map<SpanId, SpanRecord> open_;
  std::deque<SpanRecord> done_;  // completion order
  size_t cap_;
  size_t dropped_ = 0;
};

}  // namespace prism::obs

#endif  // PRISM_SRC_OBS_TRACE_H_
