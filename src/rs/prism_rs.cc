#include "src/rs/prism_rs.h"

namespace prism::rs {

using core::Chain;
using core::Op;
using core::OpCode;

PrismRsReplica::PrismRsReplica(net::Fabric* fabric, net::HostId host,
                               PrismRsOptions opts)
    : opts_(opts) {
  const uint64_t meta_bytes = opts.n_blocks * meta_stride();
  const uint64_t buf_size = 8 + opts.block_size;  // [tag | value]
  const uint64_t pool_bytes = opts.buffers_per_replica * buf_size;
  mem_ = std::make_unique<rdma::AddressSpace>(
      meta_bytes + pool_bytes + core::PrismServer::kOnNicBytes + (1 << 20));
  prism_ = std::make_unique<core::PrismServer>(fabric, host, opts.deployment,
                                               mem_.get());
  auto region =
      mem_->CarveAndRegister(meta_bytes + pool_bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  meta_base_ = region_.base;
  freelist_ = prism_->freelists().CreateQueue(buf_size);
  const rdma::Addr pool_base = region_.base + meta_bytes;
  // Block 0-state: every metadata element starts as ⟨tag=0, addr=initial⟩
  // with a zero-filled initial buffer, so reads of never-written blocks
  // return zeroes rather than NACKing.
  const rdma::Addr initial_buf = pool_base;  // shared by all blocks
  for (uint64_t b = 0; b < opts.n_blocks; ++b) {
    mem_->StoreWord(meta_addr(b), 0);                // tag
    mem_->StoreWord(meta_addr(b) + 8, initial_buf);  // addr / ptr
    if (opts.variable_block_size) {
      mem_->StoreWord(meta_addr(b) + 16, 8 + opts.block_size);  // bound
    }
  }
  for (uint64_t i = 1; i < opts.buffers_per_replica; ++i) {
    prism_->PostBuffers(freelist_, {pool_base + i * buf_size});
  }
}

void PrismRsReplica::WipeState() {
  const uint64_t meta_bytes = opts_.n_blocks * meta_stride();
  const rdma::Addr initial_buf = meta_base_ + meta_bytes;
  for (uint64_t b = 0; b < opts_.n_blocks; ++b) {
    mem_->StoreWord(meta_addr(b), 0);                // tag
    mem_->StoreWord(meta_addr(b) + 8, initial_buf);  // addr / ptr
    if (opts_.variable_block_size) {
      mem_->StoreWord(meta_addr(b) + 16, 8 + opts_.block_size);  // bound
    }
  }
}

PrismRsCluster::PrismRsCluster(net::Fabric* fabric, int n_replicas,
                               PrismRsOptions opts)
    : opts_(opts) {
  PRISM_CHECK(n_replicas % 2 == 1) << "need n = 2f+1 replicas";
  for (int i = 0; i < n_replicas; ++i) {
    net::HostId host = fabric->AddHost("rs-replica-" + std::to_string(i));
    replicas_.push_back(
        std::make_unique<PrismRsReplica>(fabric, host, opts));
  }
}

PrismRsClient::PrismRsClient(net::Fabric* fabric, net::HostId self,
                             PrismRsCluster* cluster, uint16_t client_id)
    : fabric_(fabric),
      self_(self),
      cluster_(cluster),
      prism_(fabric, self),
      client_id_(client_id) {
  const uint64_t scratch_bytes =
      cluster->options().variable_block_size ? 24 : 16;
  for (int i = 0; i < cluster->n(); ++i) {
    auto scratch =
        cluster->replica(i).prism().AllocateScratch(scratch_bytes);
    PRISM_CHECK(scratch.ok()) << scratch.status();
    scratch_.push_back(*scratch);
    reclaim_.push_back(std::make_unique<core::ReclaimClient>(
        fabric, self, &cluster->replica(i).prism(),
        cluster->options().reclaim_batch));
  }
}

void PrismRsClient::FlushReclaim() {
  for (auto& r : reclaim_) r->Flush();
}

sim::Task<PrismRsClient::ReadPhaseResult> PrismRsClient::ReadPhase(
    uint64_t block) {
  const bool variable = cluster_->options().variable_block_size;
  const uint64_t read_len = 8 + cluster_->options().block_size;
  auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                              cluster_->quorum(),
                                              cluster_->n());
  struct Shared {
    Tag max_tag;
    Bytes max_value;
    bool any = false;
    int replies = 0;
    int with_max_tag = 0;
  };
  auto shared = std::make_shared<Shared>();
  for (int i = 0; i < cluster_->n(); ++i) {
    PrismRsReplica* replica = &cluster_->replica(i);
    // One indirect READ per replica: dereference the addr field of the
    // metadata element and return the [tag|value] buffer atomically. In
    // variable mode the pointer is a ⟨ptr,bound⟩ pair, so the READ is
    // bounded and returns exactly the stored length (§7.3 extension).
    sim::Spawn([this, replica, block, read_len, quorum, shared,
                variable]() -> sim::Task<void> {
      Op read = Op::IndirectRead(replica->rkey(),
                                 replica->meta_addr(block) + 8, read_len,
                                 /*bounded=*/variable);
      auto r = co_await prism_.ExecuteOne(&replica->prism(), std::move(read));
      round_trips_++;
      if (!r.ok() || !r->status.ok() || r->data.size() < 8) {
        quorum->Arrive(false);
        co_return;
      }
      Tag tag = Tag::FromPacked(LoadU64(r->data.data()));
      shared->replies++;
      if (!shared->any || shared->max_tag < tag) {
        shared->any = true;
        shared->max_tag = tag;
        shared->max_value.assign(r->data.begin() + 8, r->data.end());
        shared->with_max_tag = 1;
      } else if (tag == shared->max_tag) {
        shared->with_max_tag++;
      }
      quorum->Arrive(true);
    });
  }
  ReadPhaseResult out;
  bool reached = co_await quorum->Wait();
  if (!reached) {
    out.status = Unavailable("read phase: no quorum");
    co_return out;
  }
  out.status = OkStatus();
  out.max_tag = shared->max_tag;
  out.max_value = std::move(shared->max_value);
  // Snapshot unanimity at the moment the quorum resolved: at least f+1
  // replies all carrying the maximal tag.
  out.unanimous = shared->with_max_tag >= cluster_->quorum() &&
                  shared->with_max_tag == shared->replies;
  co_return out;
}

sim::Task<Status> PrismRsClient::WritePhase(
    uint64_t block, Tag tag, std::shared_ptr<const Bytes> value) {
  const bool variable = cluster_->options().variable_block_size;
  if (variable) {
    PRISM_CHECK_LE(value->size(), cluster_->options().block_size);
  } else {
    PRISM_CHECK_EQ(value->size(), cluster_->options().block_size);
  }
  auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                              cluster_->quorum(),
                                              cluster_->n());
  // Buffer payload: [tag | value].
  auto payload = std::make_shared<Bytes>();
  payload->reserve(8 + value->size());
  Bytes tag_bytes = BytesOfU64(tag.Packed());
  payload->insert(payload->end(), tag_bytes.begin(), tag_bytes.end());
  payload->insert(payload->end(), value->begin(), value->end());

  for (int i = 0; i < cluster_->n(); ++i) {
    PrismRsReplica* replica = &cluster_->replica(i);
    const rdma::Addr tmp = scratch_[i];
    sim::Spawn([this, replica, block, tag, payload, tmp, quorum, i,
                variable]() -> sim::Task<void> {
      // The §7.3 write chain. In variable mode the scratch holds 24 bytes
      // [tag' | addr' | bound'] — tag and bound written in one WRITE, the
      // ALLOCATE redirecting its address into the gap — and the CAS swaps
      // the whole 24-byte metadata element.
      const uint64_t width = variable ? 24 : 16;
      Chain chain;
      if (variable) {
        Bytes tag_and_bound(24, 0);
        StoreU64(tag_and_bound.data(), tag.Packed());
        StoreU64(tag_and_bound.data() + 16, payload->size());
        chain.push_back(Op::Write(replica->rkey(), tmp,
                                  std::move(tag_and_bound)));     // 1. tag'+bound'
      } else {
        chain.push_back(Op::Write(replica->rkey(), tmp,
                                  BytesOfU64(tag.Packed())));     // 1. tag'
      }
      chain.push_back(Op::Allocate(replica->rkey(), replica->freelist(),
                                   *payload)
                          .RedirectTo(tmp + 8)
                          .Conditional());                        // 2. addr'
      Op install;                                                 // 3. CAS_GT
      install.code = OpCode::kCas;
      install.rkey = replica->rkey();
      install.addr = replica->meta_addr(block);
      install.data = BytesOfU64(tmp);
      install.data_indirect = true;  // operand = *tmp
      install.cmp_mask = FieldMask(width, 0, 8);     // compare tag field (GT)
      install.swap_mask = FieldMask(width, 0, width);  // install all fields
      install.cas_mode = rdma::CasCompare::kGreater;
      install.conditional = true;
      chain.push_back(std::move(install));

      auto r = co_await prism_.Execute(&replica->prism(), std::move(chain));
      round_trips_++;
      if (!r.ok()) {
        quorum->Arrive(false);
        co_return;
      }
      const core::OpResult& alloc = (*r)[1];
      const core::OpResult& cas = (*r)[2];
      if (!alloc.executed || !alloc.status.ok() || !cas.executed ||
          !cas.status.ok()) {
        quorum->Arrive(false);
        co_return;
      }
      if (cas.cas_swapped) {
        // Old buffer displaced; recycle it (the initial shared buffer at
        // tag 0 is never recycled — it is identified by old tag == 0).
        const uint64_t old_tag = LoadU64(cas.data.data());
        const rdma::Addr old_addr = LoadU64(cas.data.data() + 8);
        if (old_tag != 0) {
          reclaim_[static_cast<size_t>(i)]->Free(replica->freelist(),
                                                 old_addr);
        }
      } else {
        // Replica already has a newer tag: our buffer is orphaned. The ABD
        // phase still counts as acknowledged.
        reclaim_[static_cast<size_t>(i)]->Free(replica->freelist(),
                                               alloc.resolved_addr);
      }
      quorum->Arrive(true);
    });
  }
  bool reached = co_await quorum->Wait();
  if (!reached) co_return Unavailable("write phase: no quorum");
  co_return OkStatus();
}

sim::Task<Result<Bytes>> PrismRsClient::Get(uint64_t block, Tag* out_tag) {
  size_t hid = 0;
  if (history_ != nullptr) {
    hid = history_->Begin(client_id_, block, check::OpType::kRead);
  }
  ReadPhaseResult read = co_await ReadPhase(block);
  if (!read.status.ok()) {
    // A failed GET returned nothing: it constrains no history.
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return read.status;
  }
  if (cluster_->options().skip_unanimous_writeback && read.unanimous) {
    // The quorum itself witnessed the tag at f+1 replicas: the write-back
    // would be a no-op, so the GET completes in one round.
    writebacks_skipped_++;
    if (out_tag != nullptr) *out_tag = read.max_tag;
    if (history_ != nullptr) {
      history_->End(hid, check::Outcome::kOk, check::IdOf(read.max_value));
    }
    co_return std::move(read.max_value);
  }
  // Write-back phase: ensure f+1 replicas are at least as new as what we
  // are about to return (required for linearizability).
  auto value = std::make_shared<const Bytes>(read.max_value);
  Status wb = co_await WritePhase(block, read.max_tag, value);
  if (!wb.ok()) {
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return wb;
  }
  if (out_tag != nullptr) *out_tag = read.max_tag;
  if (history_ != nullptr) {
    history_->End(hid, check::Outcome::kOk, check::IdOf(read.max_value));
  }
  co_return std::move(read.max_value);
}

sim::Task<Status> PrismRsClient::Put(uint64_t block, Bytes value,
                                     Tag* out_tag) {
  size_t hid = 0;
  if (history_ != nullptr) {
    hid = history_->Begin(client_id_, block, check::OpType::kWrite,
                          check::IdOf(value));
  }
  if (cluster_->options().variable_block_size) {
    if (value.size() > cluster_->options().block_size) {
      if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
      co_return InvalidArgument("value exceeds maximum block size");
    }
  } else if (value.size() != cluster_->options().block_size) {
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return InvalidArgument("value must be exactly block_size");
  }
  ReadPhaseResult read = co_await ReadPhase(block);
  if (!read.status.ok()) {
    // The write phase never started: the value was definitely not installed.
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return read.status;
  }
  Tag tag{read.max_tag.ts + 1, client_id_};
  auto value_ptr = std::make_shared<const Bytes>(std::move(value));
  Status st = co_await WritePhase(block, tag, value_ptr);
  if (!st.ok()) {
    // No quorum, but some replicas may have installed the value: a later
    // read may legally observe it (or not) — indeterminate.
    if (history_ != nullptr) {
      history_->End(hid, check::Outcome::kIndeterminate);
    }
    co_return st;
  }
  if (out_tag != nullptr) *out_tag = tag;
  if (history_ != nullptr) history_->End(hid, check::Outcome::kOk);
  co_return OkStatus();
}

}  // namespace prism::rs
