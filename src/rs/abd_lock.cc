#include "src/rs/abd_lock.h"

#include <algorithm>

namespace prism::rs {

AbdLockReplica::AbdLockReplica(net::Fabric* fabric, net::HostId host,
                               AbdLockOptions opts)
    : opts_(opts), record_size_(16 + opts.block_size) {
  const uint64_t bytes = opts.n_blocks * record_size_;
  mem_ = std::make_unique<rdma::AddressSpace>(bytes + (1 << 20));
  auto region = mem_->CarveAndRegister(bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  base_ = region_.base;
  rdma_ = std::make_unique<rdma::RdmaService>(fabric, host, opts.backend,
                                              mem_.get());
}

AbdLockCluster::AbdLockCluster(net::Fabric* fabric, int n_replicas,
                               AbdLockOptions opts)
    : opts_(opts) {
  PRISM_CHECK(n_replicas % 2 == 1);
  for (int i = 0; i < n_replicas; ++i) {
    net::HostId host = fabric->AddHost("abd-replica-" + std::to_string(i));
    replicas_.push_back(std::make_unique<AbdLockReplica>(fabric, host, opts));
  }
}

AbdLockClient::AbdLockClient(net::Fabric* fabric, net::HostId self,
                             AbdLockCluster* cluster, uint16_t client_id,
                             uint64_t rng_seed)
    : fabric_(fabric),
      self_(self),
      cluster_(cluster),
      rdma_(fabric, self),
      client_id_(client_id),
      rng_(rng_seed ^ client_id) {}

sim::Task<Status> AbdLockClient::AcquireLocks(uint64_t block,
                                              std::vector<bool>* locked) {
  const AbdLockOptions& opts = cluster_->options();
  locked->assign(static_cast<size_t>(cluster_->n()), false);
  for (int attempt = 0; attempt < opts.max_lock_attempts; ++attempt) {
    // Try every replica in parallel; CAS 0 -> client id. The lock phase
    // waits for ALL responses (they are parallel, so latency is one round
    // trip): proceeding on the first f+1 would leak locks that complete
    // late, wedging the block for everyone else.
    auto all = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                             cluster_->n(), cluster_->n());
    auto won = std::make_shared<std::vector<bool>>(
        static_cast<size_t>(cluster_->n()), false);
    for (int i = 0; i < cluster_->n(); ++i) {
      AbdLockReplica* replica = &cluster_->replica(i);
      sim::Spawn([this, replica, block, i, all, won]() -> sim::Task<void> {
        auto old = co_await rdma_.CompareSwap(
            &replica->rdma(), replica->rkey(), replica->lock_addr(block), 0,
            client_id_);
        round_trips_++;
        bool acquired = old.ok() && *old == 0;
        if (acquired) (*won)[static_cast<size_t>(i)] = true;
        all->Arrive(true);  // count arrivals; success tallied via `won`
      });
    }
    co_await all->Wait();
    int held = 0;
    for (bool b : *won) held += b ? 1 : 0;
    if (held >= cluster_->quorum()) {
      *locked = *won;
      co_return OkStatus();
    }
    // Failed: release whatever we grabbed, back off, retry (§7.2 notes the
    // livelock risk this backoff mitigates).
    lock_conflicts_++;
    co_await ReleaseLocks(block, *won);
    sim::Duration backoff = std::min<sim::Duration>(
        opts.backoff_cap,
        opts.backoff_base << std::min(attempt, 7));
    backoff += static_cast<sim::Duration>(
        rng_.NextBelow(static_cast<uint64_t>(backoff) / 2 + 1));
    co_await sim::SleepFor(fabric_->sim(self_), backoff);
  }
  co_return Aborted("could not acquire majority of locks");
}

sim::Task<void> AbdLockClient::ReleaseLocks(uint64_t block,
                                            const std::vector<bool>& locked) {
  int pending = 0;
  for (bool b : locked) pending += b ? 1 : 0;
  if (pending == 0) co_return;
  auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_), pending,
                                              pending);
  for (int i = 0; i < cluster_->n(); ++i) {
    if (!locked[static_cast<size_t>(i)]) continue;
    AbdLockReplica* replica = &cluster_->replica(i);
    sim::Spawn([this, replica, block, quorum]() -> sim::Task<void> {
      auto old = co_await rdma_.CompareSwap(&replica->rdma(), replica->rkey(),
                                            replica->lock_addr(block),
                                            client_id_, 0);
      round_trips_++;
      quorum->Arrive(old.ok());
    });
  }
  co_await quorum->Wait();
}

sim::Task<Result<std::pair<Tag, Bytes>>> AbdLockClient::ReadLocked(
    uint64_t block, const std::vector<bool>& locked) {
  const uint64_t read_len = 8 + cluster_->options().block_size;
  int holders = 0;
  for (bool b : locked) holders += b ? 1 : 0;
  auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                              cluster_->quorum(), holders);
  struct Shared {
    Tag max_tag;
    Bytes max_value;
    bool any = false;
  };
  auto shared = std::make_shared<Shared>();
  for (int i = 0; i < cluster_->n(); ++i) {
    if (!locked[static_cast<size_t>(i)]) continue;
    AbdLockReplica* replica = &cluster_->replica(i);
    sim::Spawn([this, replica, block, read_len, quorum,
                shared]() -> sim::Task<void> {
      auto r = co_await rdma_.Read(&replica->rdma(), replica->rkey(),
                                   replica->tag_addr(block), read_len);
      round_trips_++;
      if (!r.ok()) {
        quorum->Arrive(false);
        co_return;
      }
      Tag tag = Tag::FromPacked(LoadU64(r->data()));
      if (!shared->any || shared->max_tag < tag) {
        shared->any = true;
        shared->max_tag = tag;
        shared->max_value.assign(r->begin() + 8, r->end());
      }
      quorum->Arrive(true);
    });
  }
  bool reached = co_await quorum->Wait();
  if (!reached) {
    Result<std::pair<Tag, Bytes>> err = Unavailable("read: lost quorum");
    co_return err;
  }
  Result<std::pair<Tag, Bytes>> out =
      std::make_pair(shared->max_tag, std::move(shared->max_value));
  co_return out;
}

sim::Task<Status> AbdLockClient::WriteLocked(
    uint64_t block, const std::vector<bool>& locked, Tag tag,
    std::shared_ptr<const Bytes> value) {
  int holders = 0;
  for (bool b : locked) holders += b ? 1 : 0;
  auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                              cluster_->quorum(), holders);
  auto payload = std::make_shared<Bytes>();
  Bytes tag_bytes = BytesOfU64(tag.Packed());
  payload->insert(payload->end(), tag_bytes.begin(), tag_bytes.end());
  payload->insert(payload->end(), value->begin(), value->end());
  for (int i = 0; i < cluster_->n(); ++i) {
    if (!locked[static_cast<size_t>(i)]) continue;
    AbdLockReplica* replica = &cluster_->replica(i);
    sim::Spawn([this, replica, block, payload, quorum]() -> sim::Task<void> {
      // Holding the lock, the in-place write is safe. (ABD's tag check is
      // subsumed: only one writer can hold a majority at a time.)
      Status w = co_await rdma_.Write(&replica->rdma(), replica->rkey(),
                                      replica->tag_addr(block), *payload);
      round_trips_++;
      quorum->Arrive(w.ok());
    });
  }
  bool reached = co_await quorum->Wait();
  if (!reached) co_return Unavailable("write: lost quorum");
  co_return OkStatus();
}

sim::Task<Result<Bytes>> AbdLockClient::Get(uint64_t block, Tag* out_tag) {
  std::vector<bool> locked;
  Status lock_status = co_await AcquireLocks(block, &locked);
  if (!lock_status.ok()) co_return lock_status;
  auto read = co_await ReadLocked(block, locked);
  if (!read.ok()) {
    co_await ReleaseLocks(block, locked);
    co_return read.status();
  }
  // Write-back so a majority stores the returned version.
  auto value = std::make_shared<const Bytes>(read->second);
  Status wb = co_await WriteLocked(block, locked, read->first, value);
  co_await ReleaseLocks(block, locked);
  if (!wb.ok()) co_return wb;
  if (out_tag != nullptr) *out_tag = read->first;
  co_return std::move(read->second);
}

sim::Task<Status> AbdLockClient::Put(uint64_t block, Bytes value,
                                     Tag* out_tag) {
  if (value.size() != cluster_->options().block_size) {
    co_return InvalidArgument("value must be exactly block_size");
  }
  std::vector<bool> locked;
  Status lock_status = co_await AcquireLocks(block, &locked);
  if (!lock_status.ok()) co_return lock_status;
  auto read = co_await ReadLocked(block, locked);
  if (!read.ok()) {
    co_await ReleaseLocks(block, locked);
    co_return read.status();
  }
  Tag tag{read->first.ts + 1, client_id_};
  auto value_ptr = std::make_shared<const Bytes>(std::move(value));
  Status w = co_await WriteLocked(block, locked, tag, value_ptr);
  co_await ReleaseLocks(block, locked);
  if (!w.ok()) co_return w;
  if (out_tag != nullptr) *out_tag = tag;
  co_return OkStatus();
}

sim::Task<Status> AbdLockClient::AcquireAndAbandon(uint64_t block) {
  std::vector<bool> locked;
  Status s = co_await AcquireLocks(block, &locked);
  co_return s;  // never released: simulates a client crash holding locks
}

}  // namespace prism::rs
