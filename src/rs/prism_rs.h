// PRISM-RS — replicated block storage via multi-writer ABD (§7).
//
// Linearizable single-register-per-block storage across n = 2f+1 replicas,
// tolerating f crashes, with no replica CPU involvement.
//
// Per-replica memory layout (Figure 5):
//  * a metadata array with one 16-byte element per block:
//        [tag_i u64 | addr_i u64]
//    where tag = (logical timestamp << 16 | client id), and addr_i points at
//  * a value buffer   [tag u64 | value blockB]   — the tag is deliberately
//    duplicated so a single indirect READ of addr_i returns an atomic
//    ⟨tag,value⟩ pair, and the CAS on ⟨tag_i,addr_i⟩ orders installs.
//
// Protocol (Lynch–Shvartsman multi-writer ABD, §7.1):
//  * Read phase: indirect READ of the metadata addr field at all replicas;
//    wait for f+1; pick v_max with maximal tag.
//  * Write phase (GET write-back and PUT install) per replica, one chain:
//      1. WRITE tag' into the client's on-NIC scratch tmp
//      2. ALLOCATE [tag'|v'] with the new address redirected to tmp+8
//      3. CAS_GT on the metadata element: operand = *tmp (16 B, indirect),
//         compare mask = tag field, swap mask = both fields — installs
//         ⟨tag',addr'⟩ iff tag' > tag_i.
//    A CAS that loses (replica already has a newer tag) still acknowledges
//    the phase — ABD only needs the replica to be at least as new — and the
//    orphaned buffer goes back through the reclamation daemon.
#ifndef PRISM_SRC_RS_PRISM_RS_H_
#define PRISM_SRC_RS_PRISM_RS_H_

#include <memory>
#include <vector>

#include "src/check/history.h"
#include "src/net/fabric.h"
#include "src/prism/reclaim.h"
#include "src/prism/service.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::rs {

// Tag = (logical timestamp, client id) packed so that integer comparison is
// lexicographic comparison of the pair.
struct Tag {
  uint64_t ts = 0;
  uint16_t client = 0;

  uint64_t Packed() const { return (ts << 16) | client; }
  static Tag FromPacked(uint64_t packed) {
    return Tag{packed >> 16, static_cast<uint16_t>(packed & 0xffff)};
  }
  bool operator<(const Tag& other) const { return Packed() < other.Packed(); }
  bool operator==(const Tag& other) const {
    return Packed() == other.Packed();
  }
};

struct PrismRsOptions {
  uint64_t n_blocks = 1024;
  uint64_t block_size = 512;   // fixed size, or the maximum in variable mode
  uint64_t buffers_per_replica = 4096;
  core::Deployment deployment = core::Deployment::kSoftware;
  size_t reclaim_batch = 16;
  // §7.3: "it can be extended to variable-sized blocks by adding a len_i
  // metadata field as in PRISM-KV". In variable mode the metadata element
  // widens to 24 bytes — [tag | ptr | bound] — so the read phase issues a
  // *bounded* indirect READ and the install CAS swaps all three fields in
  // one 24-byte enhanced CAS.
  bool variable_block_size = false;
  // Classic ABD read optimization: when every replica in the read quorum
  // returns the same tag, the value is already stored at f+1 replicas and
  // the write-back phase can be skipped — a GET completes in ONE round of
  // communication. Linearizability is preserved (the quorum itself
  // witnesses the tag at f+1 replicas). Off by default to match the paper's
  // measured two-phase protocol.
  bool skip_unanimous_writeback = false;
};

// One replica: a PRISM server hosting the metadata array and buffer pool.
class PrismRsReplica {
 public:
  PrismRsReplica(net::Fabric* fabric, net::HostId host, PrismRsOptions opts);

  core::PrismServer& prism() { return *prism_; }
  rdma::AddressSpace& memory() { return *mem_; }
  rdma::RKey rkey() const { return region_.rkey; }
  uint32_t freelist() const { return freelist_; }
  // Metadata element: fixed mode [tag|addr] (16 B); variable mode
  // [tag|ptr|bound] (24 B).
  uint64_t meta_stride() const {
    return opts_.variable_block_size ? 24 : 16;
  }
  rdma::Addr meta_addr(uint64_t block) const {
    return meta_base_ + block * meta_stride();
  }

  // Crash amnesia: resets every metadata element to its zero-state, as if
  // the replica's DRAM did not survive a restart. ABD assumes replica state
  // outlives crashes, so a quorum of wiped replicas loses writes — chaos
  // tests use this to prove the checker notices.
  void WipeState();

 private:
  PrismRsOptions opts_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<core::PrismServer> prism_;
  rdma::MemoryRegion region_;
  rdma::Addr meta_base_ = 0;
  uint32_t freelist_ = 0;
};

class PrismRsCluster {
 public:
  PrismRsCluster(net::Fabric* fabric, int n_replicas, PrismRsOptions opts);

  int n() const { return static_cast<int>(replicas_.size()); }
  int quorum() const { return n() / 2 + 1; }
  PrismRsReplica& replica(int i) { return *replicas_[i]; }
  const PrismRsOptions& options() const { return opts_; }

 private:
  PrismRsOptions opts_;
  std::vector<std::unique_ptr<PrismRsReplica>> replicas_;
};

class PrismRsClient {
 public:
  PrismRsClient(net::Fabric* fabric, net::HostId self, PrismRsCluster* cluster,
                uint16_t client_id);

  // Linearizable read of a block. Returns the value; out_tag (optional)
  // receives the tag the read observed.
  sim::Task<Result<Bytes>> Get(uint64_t block, Tag* out_tag = nullptr);

  // Linearizable write. out_tag receives the installed tag.
  sim::Task<Status> Put(uint64_t block, Bytes value, Tag* out_tag = nullptr);

  void FlushReclaim();

  // When set, every Get/Put records an invocation/response entry (keyed by
  // block) for offline linearizability checking.
  void set_history(check::HistoryRecorder* history) { history_ = history; }

  uint64_t round_trips() const { return round_trips_; }
  // Transport-level protocol-complexity tally (src/obs/complexity.h).
  obs::TransportTally TransportTally() const { return prism_.tally(); }
  // Shared per-host verb batcher (doorbell batching + completion
  // coalescing); null keeps the flat unbatched post/poll cost.
  void set_batcher(rdma::VerbBatcher* b) { prism_.set_batcher(b); }
  uint64_t writebacks_skipped() const { return writebacks_skipped_; }

 private:
  struct ReadPhaseResult {
    Status status;
    Tag max_tag;
    Bytes max_value;  // [value] only (tag stripped)
    bool unanimous = false;  // every quorum member returned max_tag
  };
  sim::Task<ReadPhaseResult> ReadPhase(uint64_t block);
  // Propagates ⟨tag,value⟩ to replicas; resolves OK once f+1 acked.
  sim::Task<Status> WritePhase(uint64_t block, Tag tag,
                               std::shared_ptr<const Bytes> value);

  net::Fabric* fabric_;
  net::HostId self_;
  PrismRsCluster* cluster_;
  core::PrismClient prism_;
  uint16_t client_id_;
  check::HistoryRecorder* history_ = nullptr;
  std::vector<rdma::Addr> scratch_;  // 16 B per replica: [tag' | addr']
  std::vector<std::unique_ptr<core::ReclaimClient>> reclaim_;
  uint64_t round_trips_ = 0;
  uint64_t writebacks_skipped_ = 0;
};

}  // namespace prism::rs

#endif  // PRISM_SRC_RS_PRISM_RS_H_
