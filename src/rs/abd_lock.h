// ABD-LOCK — the DrTM-style lock-based ABD baseline of §7.2.
//
// Standard RDMA only: per-block layout at each replica is
//     [lock u64][tag u64][value blockB]
// A client CASes its id into the lock word at every replica, needs a
// majority of locks, then READs/WRITEs tag and value in place, and releases
// with a second CAS. GET and PUT each take four sequential round trips
// (lock, read, write, unlock), and lock conflicts force exponential backoff
// — the behaviour that collapses under Zipf contention in Figure 7.
//
// The §7.2 pathologies are modeled too: a crashed client leaves blocks
// locked until a lease expires (lock words carry an expiry the next locker
// may reclaim), and failed acquisitions release partial lock sets.
#ifndef PRISM_SRC_RS_ABD_LOCK_H_
#define PRISM_SRC_RS_ABD_LOCK_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/net/fabric.h"
#include "src/rdma/service.h"
#include "src/rs/prism_rs.h"
#include "src/sim/task.h"

namespace prism::rs {

struct AbdLockOptions {
  uint64_t n_blocks = 1024;
  uint64_t block_size = 512;
  rdma::Backend backend = rdma::Backend::kHardwareNic;
  sim::Duration backoff_base = sim::Micros(4);
  sim::Duration backoff_cap = sim::Micros(512);
  int max_lock_attempts = 64;
};

class AbdLockReplica {
 public:
  AbdLockReplica(net::Fabric* fabric, net::HostId host, AbdLockOptions opts);

  rdma::RdmaService& rdma() { return *rdma_; }
  rdma::AddressSpace& memory() { return *mem_; }
  rdma::RKey rkey() const { return region_.rkey; }

  rdma::Addr lock_addr(uint64_t block) const {
    return base_ + block * record_size_;
  }
  rdma::Addr tag_addr(uint64_t block) const { return lock_addr(block) + 8; }
  rdma::Addr value_addr(uint64_t block) const { return lock_addr(block) + 16; }

 private:
  AbdLockOptions opts_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<rdma::RdmaService> rdma_;
  rdma::MemoryRegion region_;
  rdma::Addr base_ = 0;
  uint64_t record_size_ = 0;
};

class AbdLockCluster {
 public:
  AbdLockCluster(net::Fabric* fabric, int n_replicas, AbdLockOptions opts);

  int n() const { return static_cast<int>(replicas_.size()); }
  int quorum() const { return n() / 2 + 1; }
  AbdLockReplica& replica(int i) { return *replicas_[i]; }
  const AbdLockOptions& options() const { return opts_; }

 private:
  AbdLockOptions opts_;
  std::vector<std::unique_ptr<AbdLockReplica>> replicas_;
};

class AbdLockClient {
 public:
  AbdLockClient(net::Fabric* fabric, net::HostId self, AbdLockCluster* cluster,
                uint16_t client_id, uint64_t rng_seed = 42);

  sim::Task<Result<Bytes>> Get(uint64_t block, Tag* out_tag = nullptr);
  sim::Task<Status> Put(uint64_t block, Bytes value, Tag* out_tag = nullptr);

  uint64_t lock_conflicts() const { return lock_conflicts_; }
  uint64_t round_trips() const { return round_trips_; }
  // Transport-level protocol-complexity tally (src/obs/complexity.h).
  obs::TransportTally TransportTally() const { return rdma_.tally(); }
  // Shared per-host verb batcher (doorbell batching + completion
  // coalescing); null keeps the flat unbatched post/poll cost.
  void set_batcher(rdma::VerbBatcher* b) { rdma_.set_batcher(b); }

  // Failure injection for tests: acquire locks and "crash" (never release).
  sim::Task<Status> AcquireAndAbandon(uint64_t block);

 private:
  // Acquires the block lock at a majority; fills `locked` (size n) with the
  // replicas we hold. Retries with exponential backoff.
  sim::Task<Status> AcquireLocks(uint64_t block, std::vector<bool>* locked);
  sim::Task<void> ReleaseLocks(uint64_t block, const std::vector<bool>& locked);

  // Reads ⟨tag,value⟩ from locked replicas; returns the max-tag pair.
  sim::Task<Result<std::pair<Tag, Bytes>>> ReadLocked(
      uint64_t block, const std::vector<bool>& locked);
  sim::Task<Status> WriteLocked(uint64_t block,
                                const std::vector<bool>& locked, Tag tag,
                                std::shared_ptr<const Bytes> value);

  net::Fabric* fabric_;
  net::HostId self_;
  AbdLockCluster* cluster_;
  rdma::RdmaClient rdma_;
  uint16_t client_id_;
  Rng rng_;
  uint64_t lock_conflicts_ = 0;
  uint64_t round_trips_ = 0;
};

}  // namespace prism::rs

#endif  // PRISM_SRC_RS_ABD_LOCK_H_
