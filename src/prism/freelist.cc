#include "src/prism/freelist.h"

#include <limits>

namespace prism::core {

uint32_t FreeListRegistry::CreateQueue(uint64_t buffer_size) {
  PRISM_CHECK_GT(buffer_size, 0u);
  queues_.push_back(Queue{.buffer_size = buffer_size, .buffers = {}});
  return static_cast<uint32_t>(queues_.size() - 1);
}

Result<uint32_t> FreeListRegistry::QueueFor(uint64_t need) const {
  uint64_t best_size = std::numeric_limits<uint64_t>::max();
  uint32_t best = 0;
  bool found = false;
  for (uint32_t i = 0; i < queues_.size(); ++i) {
    const uint64_t size = queues_[i].buffer_size;
    if (size >= need && size < best_size) {
      best_size = size;
      best = i;
      found = true;
    }
  }
  if (!found) return InvalidArgument("no free-list queue fits request");
  return best;
}

Status FreeListRegistry::Post(uint32_t queue, rdma::Addr buffer) {
  if (!ValidQueue(queue)) return InvalidArgument("unknown free-list queue");
  queues_[queue].buffers.push_back(buffer);
  posts_++;
  return OkStatus();
}

Result<rdma::Addr> FreeListRegistry::Pop(uint32_t queue, uint64_t need) {
  if (!ValidQueue(queue)) return InvalidArgument("unknown free-list queue");
  Queue& q = queues_[queue];
  if (need > q.buffer_size) {
    return InvalidArgument("payload exceeds queue buffer size");
  }
  if (q.buffers.empty()) {
    empty_nacks_++;
    return ResourceExhausted("free list empty (RNR)");
  }
  rdma::Addr buf = q.buffers.front();
  q.buffers.pop_front();
  pops_++;
  return buf;
}

uint64_t FreeListRegistry::buffer_size(uint32_t queue) const {
  PRISM_CHECK(ValidQueue(queue));
  return queues_[queue].buffer_size;
}

size_t FreeListRegistry::available(uint32_t queue) const {
  PRISM_CHECK(ValidQueue(queue));
  return queues_[queue].buffers.size();
}

}  // namespace prism::core
