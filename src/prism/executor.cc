#include "src/prism/executor.h"

#include <algorithm>

namespace prism::core {

namespace {
using rdma::kRemoteAtomic;
using rdma::kRemoteRead;
using rdma::kRemoteWrite;
}  // namespace

std::string_view OpCodeName(OpCode code) {
  switch (code) {
    case OpCode::kRead: return "READ";
    case OpCode::kWrite: return "WRITE";
    case OpCode::kCas: return "CAS";
    case OpCode::kAllocate: return "ALLOCATE";
    case OpCode::kSearch: return "SEARCH";
  }
  return "UNKNOWN";
}

bool ChainFullySucceeded(const Chain& chain, const ChainResult& results) {
  if (chain.size() != results.size()) return false;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (!results[i].Successful(chain[i].code)) return false;
  }
  return true;
}

// §3.1 security rule, plus the §4.2 on-NIC scratch carve-out: an access is
// admitted if it lies in a region under the presented rkey, or entirely in
// NIC-owned scratch (per-connection temporary space the NIC itself manages).
Status Executor::CheckAccess(rdma::RKey rkey, rdma::Addr addr, uint64_t len,
                             uint32_t need) const {
  if (mem_->IsOnNic(addr, len)) return OkStatus();
  return mem_->Validate(rkey, addr, len, need);
}

Result<Executor::Target> Executor::ResolveTarget(const Op& op,
                                                 uint32_t need_access) const {
  return ResolveTarget(op, op.len, need_access);
}

Result<Executor::Target> Executor::ResolveTarget(const Op& op, uint64_t len,
                                                 uint32_t need_access) const {
  if (!op.addr_indirect) {
    PRISM_RETURN_IF_ERROR(CheckAccess(op.rkey, op.addr, len, need_access));
    return Target{op.addr, len};
  }
  // The pointer slot itself must be readable under the same rkey.
  const uint64_t slot_size = op.addr_bounded ? BoundedPtr::kWireSize : 8;
  PRISM_RETURN_IF_ERROR(CheckAccess(op.rkey, op.addr, slot_size,
                                    kRemoteRead));
  Target target;
  if (op.addr_bounded) {
    BoundedPtr bp = BoundedPtr::Load(mem_->RawAt(op.addr,
                                                 BoundedPtr::kWireSize));
    target.addr = bp.ptr;
    target.len = std::min<uint64_t>(len, bp.bound);
  } else {
    target.addr = mem_->LoadWord(op.addr);
    target.len = len;
  }
  // §3.1: the pointed-to location must be covered by the same rkey.
  PRISM_RETURN_IF_ERROR(CheckAccess(op.rkey, target.addr, target.len,
                                    need_access));
  return target;
}

Result<Bytes> Executor::ResolveData(const Op& op, uint64_t width) const {
  if (!op.data_indirect) {
    if (op.data.size() < width) {
      return InvalidArgument("inline data shorter than operand width");
    }
    return Bytes(op.data.begin(), op.data.begin() + width);
  }
  if (op.data.size() != 8) {
    return InvalidArgument("indirect data must be an 8-byte pointer");
  }
  const rdma::Addr src = LoadU64(op.data.data());
  PRISM_RETURN_IF_ERROR(CheckAccess(op.rkey, src, width, kRemoteRead));
  return mem_->Load(src, width);
}

Status Executor::RedirectOutput(const Op& op, ByteView output) {
  PRISM_RETURN_IF_ERROR(CheckAccess(op.rkey, op.redirect_addr, output.size(),
                                    kRemoteWrite));
  mem_->Store(op.redirect_addr, output);
  return OkStatus();
}

OpResult Executor::DoRead(const Op& op) {
  OpResult result;
  result.executed = true;
  auto target = ResolveTarget(op, kRemoteRead);
  if (!target.ok()) {
    result.status = target.status();
    return result;
  }
  if (op.addr_indirect) result.resolved_addr = target->addr;
  Bytes value = mem_->Load(target->addr, target->len);
  if (op.redirect) {
    result.status = RedirectOutput(op, value);
    return result;
  }
  result.data = std::move(value);
  return result;
}

OpResult Executor::DoWrite(const Op& op) {
  OpResult result;
  result.executed = true;
  auto target = ResolveTarget(op, kRemoteWrite);
  if (!target.ok()) {
    result.status = target.status();
    return result;
  }
  auto data = ResolveData(op, target->len);
  if (!data.ok()) {
    result.status = data.status();
    return result;
  }
  mem_->Store(target->addr, *data);
  return result;
}

OpResult Executor::DoCas(const Op& op) {
  OpResult result;
  result.executed = true;
  const uint64_t width = op.cmp_mask.size();
  if (width == 0 || width != op.swap_mask.size()) {
    result.status = InvalidArgument("CAS masks must match operand width");
    return result;
  }
  // Resolve indirect target (dereference is not atomic; the CAS below is).
  auto target = ResolveTarget(op, width, kRemoteAtomic);
  if (!target.ok()) {
    result.status = target.status();
    return result;
  }
  auto data = ResolveData(op, width);
  if (!data.ok()) {
    result.status = data.status();
    return result;
  }
  // Separate compare operand (Mellanox extended-atomics form); defaults to
  // the swap operand when absent (Table 1's compressed signature).
  Bytes compare_operand;
  if (op.compare.empty()) {
    compare_operand = *data;
  } else if (op.compare_indirect) {
    if (op.compare.size() != 8) {
      result.status = InvalidArgument("indirect compare must be 8-byte ptr");
      return result;
    }
    const rdma::Addr src = LoadU64(op.compare.data());
    Status access = CheckAccess(op.rkey, src, width, kRemoteRead);
    if (!access.ok()) {
      result.status = access;
      return result;
    }
    compare_operand = mem_->Load(src, width);
  } else if (op.compare.size() != width) {
    result.status = InvalidArgument("compare operand width mismatch");
    return result;
  } else {
    compare_operand = op.compare;
  }
  auto outcome = rdma::Verbs::MaskedCompareSwap(
      *mem_, op.rkey, target->addr, compare_operand, *data, op.cmp_mask,
      op.swap_mask, op.cas_mode);
  if (!outcome.ok()) {
    result.status = outcome.status();
    return result;
  }
  result.cas_swapped = outcome->swapped;
  result.data = std::move(outcome->old_value);
  return result;
}

OpResult Executor::DoAllocate(const Op& op) {
  OpResult result;
  result.executed = true;
  auto buffer = freelists_->Pop(op.freelist, op.data.size());
  if (!buffer.ok()) {
    result.status = buffer.status();
    return result;
  }
  // The buffer must have been posted from a region the client's rkey covers
  // (the server registers data regions and free lists consistently).
  Status write_ok = mem_->Validate(op.rkey, *buffer, op.data.size(),
                                   kRemoteWrite);
  if (!write_ok.ok()) {
    // Return the buffer rather than leaking it.
    (void)freelists_->Post(op.freelist, *buffer);
    result.status = write_ok;
    return result;
  }
  mem_->Store(*buffer, op.data);
  Bytes addr_bytes = BytesOfU64(*buffer);
  result.resolved_addr = *buffer;
  if (op.redirect) {
    result.status = RedirectOutput(op, addr_bytes);
    if (!result.status.ok()) {
      (void)freelists_->Post(op.freelist, *buffer);
      result.resolved_addr = 0;
      return result;
    }
    // Even when redirected, the 8-byte address rides back in the response
    // (accounted in ResponseOpSize) so the client can reclaim the buffer if
    // a later conditional install fails.
    result.data = std::move(addr_bytes);
    return result;
  }
  result.data = std::move(addr_bytes);
  return result;
}

OpResult Executor::DoSearch(const Op& op) {
  OpResult result;
  result.executed = true;
  if (op.data.empty() || op.data.size() > op.len) {
    result.status = InvalidArgument("bad search pattern length");
    return result;
  }
  auto target = ResolveTarget(op, kRemoteRead);
  if (!target.ok()) {
    result.status = target.status();
    return result;
  }
  if (op.addr_indirect) result.resolved_addr = target->addr;
  const uint8_t* haystack = mem_->RawAt(target->addr, target->len);
  uint64_t offset = kSearchNotFound;
  if (target->len >= op.data.size()) {
    for (uint64_t i = 0; i + op.data.size() <= target->len; ++i) {
      if (std::memcmp(haystack + i, op.data.data(), op.data.size()) == 0) {
        offset = i;
        break;
      }
    }
  }
  Bytes offset_bytes = BytesOfU64(offset);
  if (op.redirect) {
    result.status = RedirectOutput(op, offset_bytes);
    return result;
  }
  result.data = std::move(offset_bytes);
  return result;
}

OpResult Executor::ExecuteOne(const Op& op, ChainContext& ctx) {
  if (op.conditional && !ctx.prev_success) {
    OpResult skipped;
    skipped.executed = false;
    skipped.status = FailedPrecondition("previous chained op failed");
    ctx.prev_success = false;
    return skipped;
  }
  OpResult result;
  switch (op.code) {
    case OpCode::kRead:
      result = DoRead(op);
      break;
    case OpCode::kWrite:
      result = DoWrite(op);
      break;
    case OpCode::kCas:
      result = DoCas(op);
      break;
    case OpCode::kAllocate:
      result = DoAllocate(op);
      break;
    case OpCode::kSearch:
      result = DoSearch(op);
      break;
  }
  ctx.prev_success = result.Successful(op.code);
  return result;
}

ChainResult Executor::Execute(const Chain& chain) {
  ChainContext ctx;
  ChainResult results;
  results.reserve(chain.size());
  for (const Op& op : chain) {
    results.push_back(ExecuteOne(op, ctx));
  }
  return results;
}

AccessProfile Executor::Profile(const Op& op) const {
  AccessProfile p;
  auto Count = [&](rdma::Addr addr, bool is_write) {
    if (mem_->IsOnNic(addr)) {
      p.on_nic++;
    } else if (is_write) {
      p.host_writes++;
    } else {
      p.host_reads++;
    }
  };
  if (op.addr_indirect) Count(op.addr, /*is_write=*/false);  // pointer chase
  if (op.data_indirect && op.data.size() == 8) {
    Count(LoadU64(op.data.data()), /*is_write=*/false);
  }
  switch (op.code) {
    case OpCode::kRead:
      // Target address after indirection is unknown pre-execution; assume
      // host memory (data buffers live there in all our applications).
      p.host_reads++;
      break;
    case OpCode::kWrite:
      p.host_writes++;
      break;
    case OpCode::kCas:
      p.host_reads++;  // read-modify-write through the atomic unit
      p.atomic = true;
      break;
    case OpCode::kAllocate:
      p.host_writes++;  // DMA payload into the popped buffer
      break;
    case OpCode::kSearch:
      // Streaming scan: one DMA read per 4 KiB of haystack (modeled as
      // host reads for the PCIe cost accounting).
      p.host_reads += static_cast<int>(1 + op.len / 4096);
      break;
  }
  if (op.redirect) Count(op.redirect_addr, /*is_write=*/true);
  return p;
}

}  // namespace prism::core
