// Client-driven buffer reclamation (§3.2).
//
// PRISM applications detect when a buffer is dead (e.g. a PUT's CAS returned
// the previous version's address) and report it to a daemon on the server
// over a traditional RPC; the daemon re-registers the buffer with the NIC
// free list. Both sides batch: the client accumulates `batch_size` frees per
// notification, and the server posts the whole batch in one core slot —
// PostBuffers then applies the §3.2 drain rule.
#ifndef PRISM_SRC_PRISM_RECLAIM_H_
#define PRISM_SRC_PRISM_RECLAIM_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/prism/service.h"
#include "src/sim/task.h"

namespace prism::core {

class ReclaimClient {
 public:
  ReclaimClient(net::Fabric* fabric, net::HostId self, PrismServer* server,
                size_t batch_size = 16)
      : fabric_(fabric),
        self_(self),
        server_(server),
        batch_size_(batch_size) {
    PRISM_CHECK_GT(batch_size, 0u);
  }

  // Queues (queue, buffer) for return; ships a batch when full. Fire and
  // forget — reclamation is off the critical path by design.
  void Free(uint32_t queue, rdma::Addr buffer) {
    pending_.push_back({queue, buffer});
    if (pending_.size() >= batch_size_) Flush();
  }

  // Ships any partial batch (benchmark teardown, periodic timers).
  void Flush() {
    if (pending_.empty()) return;
    auto batch = std::make_shared<std::vector<Entry>>(std::move(pending_));
    pending_.clear();
    const size_t payload = 12 * batch->size();  // (queue u32, addr u64) each
    net::Fabric* fabric = fabric_;
    PrismServer* server = server_;
    fabric_->Send(self_, server_->host(), payload, [fabric, server, batch] {
      // Server side: one daemon core slot per batch, then post-with-drain.
      sim::Spawn([fabric, server, batch]() -> sim::Task<void> {
        co_await fabric->Cores(server->host())
            .Use(fabric->cost().rpc_handler);
        for (const Entry& e : *batch) {
          server->PostBuffers(e.queue, {e.buffer});
        }
      });
    });
    batches_sent_++;
  }

  size_t pending() const { return pending_.size(); }
  uint64_t batches_sent() const { return batches_sent_; }

 private:
  struct Entry {
    uint32_t queue;
    rdma::Addr buffer;
  };

  net::Fabric* fabric_;
  net::HostId self_;
  PrismServer* server_;
  size_t batch_size_;
  std::vector<Entry> pending_;
  uint64_t batches_sent_ = 0;
};

}  // namespace prism::core

#endif  // PRISM_SRC_PRISM_RECLAIM_H_
