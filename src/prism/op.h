// The PRISM operation model — Table 1 of the paper.
//
// A chain is a vector of Ops executed by the server NIC (or software stack)
// in order, in a single network round trip. Each op may carry:
//
//   addr_indirect  — the target address is a pointer to the real target
//   addr_bounded   — the pointer is a ⟨ptr,bound⟩ struct; length is clamped
//   data_indirect  — the data operand is a server-side pointer to the source
//   conditional    — execute only if the previous op in the chain succeeded
//   redirect       — write the op's output (READ/ALLOCATE) to redirect_addr
//                    instead of returning it to the client
//
// plus the enhanced-CAS fields: comparison mode (EQ/GT/LT), separate compare
// and swap bitmasks, and operand widths of 8..32 bytes (§3.3).
#ifndef PRISM_SRC_PRISM_OP_H_
#define PRISM_SRC_PRISM_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/rdma/memory.h"
#include "src/rdma/verbs.h"

namespace prism::core {

enum class OpCode : uint8_t {
  kRead = 0,
  kWrite = 1,
  kCas = 2,
  kAllocate = 3,
  // Extension beyond Table 1: Snap's software RDMA stack also ships a
  // pattern-search primitive (§9), used to scan remote structures (logs,
  // arrays) without transferring them. Scans [addr, addr+len) for the byte
  // pattern in `data`; returns the 8-byte offset of the first match, or
  // kSearchNotFound. Supports addr_indirect and redirect like READ.
  kSearch = 4,
};

inline constexpr uint64_t kSearchNotFound = ~uint64_t{0};

std::string_view OpCodeName(OpCode code);

// The wire representation of a bounded pointer (16 bytes, little-endian).
struct BoundedPtr {
  rdma::Addr ptr = 0;
  uint64_t bound = 0;

  static constexpr uint64_t kWireSize = 16;

  static BoundedPtr Load(const uint8_t* p) {
    return BoundedPtr{LoadU64(p), LoadU64(p + 8)};
  }
  void Store(uint8_t* p) const {
    StoreU64(p, ptr);
    StoreU64(p + 8, bound);
  }
  Bytes ToBytes() const {
    Bytes b(kWireSize);
    Store(b.data());
    return b;
  }
};

struct Op {
  OpCode code = OpCode::kRead;
  rdma::RKey rkey = 0;
  rdma::Addr addr = 0;   // target address (READ/WRITE/CAS)
  uint64_t len = 0;      // requested length (READ/WRITE)
  Bytes data;            // WRITE data / CAS operand / ALLOCATE payload;
                         // an 8-byte server pointer when data_indirect

  // Indirection flags (§3.1).
  bool addr_indirect = false;
  bool addr_bounded = false;
  bool data_indirect = false;

  // Chaining flags (§3.4).
  bool conditional = false;
  bool redirect = false;
  rdma::Addr redirect_addr = 0;

  // Enhanced CAS (§3.3). `data` is the swap operand. `compare`, when
  // non-empty, is a separate compare operand (the full Mellanox extended-
  // atomics form, which Table 1's single-`data` signature abbreviates);
  // when empty, `data` is used for both, selected by the two masks.
  // PRISM-KV's PUT needs the separate form: it compares the OLD buffer
  // address while swapping in the NEW one read from on-NIC scratch (§6.1).
  rdma::CasCompare cas_mode = rdma::CasCompare::kEqual;
  Bytes compare;
  bool compare_indirect = false;
  Bytes cmp_mask;
  Bytes swap_mask;

  // ALLOCATE (§3.2).
  uint32_t freelist = 0;

  // ---- factories ----

  static Op Read(rdma::RKey rkey, rdma::Addr addr, uint64_t len) {
    Op op;
    op.code = OpCode::kRead;
    op.rkey = rkey;
    op.addr = addr;
    op.len = len;
    return op;
  }

  // READ(..., indirect=true[, bounded]): addr points at a pointer (or
  // ⟨ptr,bound⟩ struct) to the real target.
  static Op IndirectRead(rdma::RKey rkey, rdma::Addr addr, uint64_t len,
                         bool bounded = false) {
    Op op = Read(rkey, addr, len);
    op.addr_indirect = true;
    op.addr_bounded = bounded;
    return op;
  }

  // Pattern search over [addr, addr+len) (Snap-style extension, §9).
  static Op Search(rdma::RKey rkey, rdma::Addr addr, uint64_t len,
                   Bytes pattern) {
    Op op;
    op.code = OpCode::kSearch;
    op.rkey = rkey;
    op.addr = addr;
    op.len = len;
    op.data = std::move(pattern);
    return op;
  }

  static Op Write(rdma::RKey rkey, rdma::Addr addr, Bytes data) {
    Op op;
    op.code = OpCode::kWrite;
    op.rkey = rkey;
    op.addr = addr;
    op.len = data.size();
    op.data = std::move(data);
    return op;
  }

  static Op Allocate(rdma::RKey rkey, uint32_t freelist, Bytes data) {
    Op op;
    op.code = OpCode::kAllocate;
    op.rkey = rkey;
    op.freelist = freelist;
    op.len = data.size();
    op.data = std::move(data);
    return op;
  }

  // Full-width equality CAS (masks all-ones).
  static Op Cas(rdma::RKey rkey, rdma::Addr addr, Bytes data) {
    Op op;
    op.code = OpCode::kCas;
    op.rkey = rkey;
    op.addr = addr;
    op.cmp_mask = Bytes(data.size(), 0xff);
    op.swap_mask = Bytes(data.size(), 0xff);
    op.len = data.size();
    op.data = std::move(data);
    return op;
  }

  static Op MaskedCas(rdma::RKey rkey, rdma::Addr addr, Bytes data,
                      Bytes cmp_mask, Bytes swap_mask,
                      rdma::CasCompare mode = rdma::CasCompare::kEqual) {
    Op op;
    op.code = OpCode::kCas;
    op.rkey = rkey;
    op.addr = addr;
    op.len = data.size();
    op.data = std::move(data);
    op.cmp_mask = std::move(cmp_mask);
    op.swap_mask = std::move(swap_mask);
    op.cas_mode = mode;
    return op;
  }

  // CAS with distinct compare and swap operands.
  static Op CompareSwapCas(rdma::RKey rkey, rdma::Addr addr, Bytes compare,
                           Bytes swap, Bytes cmp_mask, Bytes swap_mask,
                           rdma::CasCompare mode = rdma::CasCompare::kEqual) {
    Op op = MaskedCas(rkey, addr, std::move(swap), std::move(cmp_mask),
                      std::move(swap_mask), mode);
    op.compare = std::move(compare);
    return op;
  }

  // ---- chain-flag decorators (builder style) ----

  Op&& Conditional() && {
    conditional = true;
    return std::move(*this);
  }
  Op&& RedirectTo(rdma::Addr target) && {
    redirect = true;
    redirect_addr = target;
    return std::move(*this);
  }
  Op&& WithAddrIndirect(bool bounded = false) && {
    addr_indirect = true;
    addr_bounded = bounded;
    return std::move(*this);
  }
  Op&& WithDataIndirect() && {
    data_indirect = true;
    return std::move(*this);
  }
};

using Chain = std::vector<Op>;

struct OpResult {
  Status status;            // NACK/errors; FailedPrecondition when skipped
  bool executed = false;    // false when skipped by `conditional`
  bool cas_swapped = false; // CAS comparison outcome
  Bytes data;               // READ payload / CAS old value / ALLOCATE addr;
                            // empty when output was redirected
  // For indirect READs: the pointer value the NIC resolved (8 extra response
  // bytes on the wire). Lets PRISM-KV's PUT learn the old buffer address
  // from the same single round trip that probes the slot (§6.2 reports a
  // 2-RT PUT). Also filled for redirected ALLOCATEs so clients can reclaim
  // buffers whose install CAS subsequently failed.
  rdma::Addr resolved_addr = 0;

  // "Successful" in the chaining sense (§3.4): executed without NACK, and a
  // CAS must additionally have swapped.
  bool Successful(OpCode code) const {
    if (!executed || !status.ok()) return false;
    if (code == OpCode::kCas) return cas_swapped;
    return true;
  }

  rdma::Addr AllocatedAddr() const {
    PRISM_CHECK_EQ(data.size(), 8u);
    return LoadU64(data.data());
  }
};

using ChainResult = std::vector<OpResult>;

// True iff every op of the chain executed successfully (CAS must swap).
bool ChainFullySucceeded(const Chain& chain, const ChainResult& results);

}  // namespace prism::core

#endif  // PRISM_SRC_PRISM_OP_H_
