// PRISM chains over the simulated fabric, under three deployment models.
//
//   kSoftware           — the paper's prototype (§4.1): chains are steered to
//                         a dedicated server core which executes one primitive
//                         per sw_primitive; ~2.5 µs over hardware RDMA.
//   kHardwareProjected  — the §4.3 performance model of a PRISM NIC ASIC:
//                         base NIC processing plus one PCIe round trip per
//                         host-memory access (pointer chases, data DMA),
//                         on-NIC SRAM accesses nearly free.
//   kBlueField          — off-path SmartNIC: slow ARM cores and ~3 µs
//                         internal-RDMA access to host memory per touch.
//
// Semantics are identical across deployments (the same core::Executor runs
// each op); only timing differs. Ops of a chain execute in separate simulator
// events, so concurrent chains interleave at op granularity — matching the
// paper's contract that the enhanced CAS is atomic but chains and indirect
// dereferences are not.
//
// The service also owns the ALLOCATE machinery: free-list queues, the §3.2
// drain rule (buffers are re-posted only when no chain is in flight), and the
// on-NIC scratch region clients use for redirect targets.
#ifndef PRISM_SRC_PRISM_SERVICE_H_
#define PRISM_SRC_PRISM_SERVICE_H_

#include <deque>
#include <set>
#include <memory>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/prism/executor.h"
#include "src/prism/freelist.h"
#include "src/prism/op.h"
#include "src/prism/wire.h"
#include "src/rdma/batch.h"
#include "src/rdma/memory.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::core {

enum class Deployment {
  kSoftware,
  kHardwareProjected,
  kBlueField,
};

inline std::string_view DeploymentName(Deployment d) {
  switch (d) {
    case Deployment::kSoftware: return "PRISM SW";
    case Deployment::kHardwareProjected: return "PRISM HW (proj.)";
    case Deployment::kBlueField: return "PRISM BlueField";
  }
  return "?";
}

class PrismServer {
 public:
  static constexpr uint64_t kOnNicBytes = 256 * 1024;  // ConnectX-5 (§4.2)

  PrismServer(net::Fabric* fabric, net::HostId host, Deployment deployment,
              rdma::AddressSpace* mem)
      : fabric_(fabric),
        host_(host),
        deployment_(deployment),
        mem_(mem),
        executor_(mem, &freelists_),
        nic_pipeline_(fabric->sim(host), fabric->cost().nic_pipeline_units),
        bf_cores_(fabric->sim(host), fabric->cost().bf_cores) {
    obs::MetricsRegistry& m = fabric->obs().metrics();
    const std::string& hn = fabric->HostName(host);
    chains_metric_ = m.AddCounter("prism", "chains_executed", hn);
    ops_metric_ = m.AddCounter("prism", "ops_executed", hn);
    host_reads_metric_ = m.AddCounter("prism", "host_reads", hn);
    host_writes_metric_ = m.AddCounter("prism", "host_writes", hn);
    on_nic_metric_ = m.AddCounter("prism", "on_nic_accesses", hn);
    auto region = mem->CarveAndRegister(kOnNicBytes, rdma::kRemoteAll,
                                        rdma::kOnNic);
    PRISM_CHECK(region.ok()) << region.status();
    on_nic_region_ = *region;
    on_nic_next_ = on_nic_region_.base;
  }

  net::HostId host() const { return host_; }
  Deployment deployment() const { return deployment_; }
  rdma::AddressSpace& memory() { return *mem_; }
  FreeListRegistry& freelists() { return freelists_; }
  Executor& executor() { return executor_; }
  const rdma::MemoryRegion& on_nic_region() const { return on_nic_region_; }

  // Hands out per-connection scratch space from the 256 KB on-NIC region
  // (32 B per connection suffices for all three applications, §4.2).
  Result<rdma::Addr> AllocateScratch(uint64_t bytes) {
    const uint64_t aligned = (bytes + 7) & ~uint64_t{7};
    if (on_nic_next_ + aligned >
        on_nic_region_.base + on_nic_region_.length) {
      return ResourceExhausted("on-NIC scratch exhausted");
    }
    rdma::Addr addr = on_nic_next_;
    on_nic_next_ += aligned;
    return addr;
  }

  // ---- free-list posting with the §3.2 drain rule ----

  // Posts buffers to a free list. The paper's rule: "recycled buffers only
  // be added back to the free list when concurrent NIC operations are
  // complete" — i.e. a post behaves like the write side of a reader-writer
  // lock: it waits for the chains in flight *at post time* (which might
  // still hold a stale pointer to the buffer) to finish, not for the NIC to
  // go idle. Implemented as an epoch barrier: the post flushes once every
  // chain with an id below the barrier has completed.
  void PostBuffers(uint32_t queue, std::vector<rdma::Addr> buffers) {
    if (active_chains_.empty()) {
      for (rdma::Addr b : buffers) {
        PRISM_CHECK(freelists_.Post(queue, b).ok());
      }
    } else {
      pending_posts_.push_back(
          PendingPost{next_chain_id_, queue, std::move(buffers)});
    }
  }

  int in_flight() const { return in_flight_; }
  uint64_t chains_executed() const { return chains_executed_; }
  uint64_t ops_executed() const { return ops_executed_; }
  size_t deferred_posts() const { return pending_posts_.size(); }

 private:
  friend class PrismClient;

  // Per-op server-side processing cost under the current deployment.
  sim::Duration OpCost(const Op& op) const {
    const net::CostModel& c = fabric_->cost();
    const AccessProfile p = executor_.Profile(op);
    switch (deployment_) {
      case Deployment::kSoftware:
        if (op.code == OpCode::kSearch) {
          // The dedicated core streams through the haystack.
          return c.sw_primitive +
                 c.sw_scan_per_kb * static_cast<int64_t>(op.len / 1024 + 1);
        }
        return c.sw_primitive;
      case Deployment::kHardwareProjected: {
        sim::Duration cost = c.hw_chain_step;
        cost += p.host_reads * c.pcie_read_rtt;
        cost += p.host_writes * c.pcie_write;
        cost += p.on_nic * c.on_nic_mem_access;
        if (p.atomic) cost += c.atomic_overhead;
        if (op.code == OpCode::kAllocate) cost += c.hw_freelist_pop;
        return cost;
      }
      case Deployment::kBlueField:
        return c.bf_primitive +
               (p.host_reads + p.host_writes) * c.bf_host_mem_rtt +
               p.on_nic * c.on_nic_mem_access +
               (op.code == OpCode::kSearch
                    ? 4 * c.sw_scan_per_kb *
                          static_cast<int64_t>(op.len / 1024 + 1)
                    : 0);
    }
    return 0;
  }

  // Executes the chain with deployment-specific timing; fills *results.
  sim::Task<void> RunChain(std::shared_ptr<const Chain> chain,
                           std::shared_ptr<ChainResult> results) {
    // Entered synchronously from the request-delivery event; the register
    // still holds the issuing client's prism.execute span.
    const obs::SpanId span = fabric_->obs().StartSpan(
        "prism.chain", "prism", host_, fabric_->sim(host_)->Now());
    const net::CostModel& c = fabric_->cost();
    ++in_flight_;
    const uint64_t chain_id = next_chain_id_++;
    active_chains_.insert(chain_id);
    switch (deployment_) {
      case Deployment::kSoftware: {
        co_await sim::SleepFor(fabric_->sim(host_),
                               c.sw_ring_dma + c.sw_queue_delay);
        co_await fabric_->Cores(host_).Acquire();
        co_await sim::SleepFor(fabric_->sim(host_), c.sw_dispatch);
        co_await ExecuteOps(chain, results);
        fabric_->Cores(host_).Release();
        co_await sim::SleepFor(fabric_->sim(host_), c.sw_tx);
        break;
      }
      case Deployment::kHardwareProjected: {
        co_await nic_pipeline_.Acquire();
        co_await sim::SleepFor(fabric_->sim(host_), c.nic_process);
        co_await ExecuteOps(chain, results);
        nic_pipeline_.Release();
        break;
      }
      case Deployment::kBlueField: {
        co_await sim::SleepFor(fabric_->sim(host_), c.sw_ring_dma);
        co_await bf_cores_.Acquire();
        co_await sim::SleepFor(fabric_->sim(host_), c.bf_dispatch);
        co_await ExecuteOps(chain, results);
        bf_cores_.Release();
        co_await sim::SleepFor(fabric_->sim(host_), c.sw_tx);
        break;
      }
    }
    chains_executed_++;
    chains_metric_->Add();
    --in_flight_;
    active_chains_.erase(chain_id);
    FlushPendingPosts();
    fabric_->obs().FinishSpan(span, fabric_->sim(host_)->Now());
  }

  sim::Task<void> ExecuteOps(std::shared_ptr<const Chain> chain,
                             std::shared_ptr<ChainResult> results) {
    ChainContext ctx;
    for (const Op& op : *chain) {
      // Charge the op's cost first, then apply its effect in this event —
      // concurrent chains interleave between ops, never inside one.
      co_await sim::SleepFor(fabric_->sim(host_), OpCost(op));
      results->push_back(executor_.ExecuteOne(op, ctx));
      ops_executed_++;
      ops_metric_->Add();
      const AccessProfile p = executor_.Profile(op);
      host_reads_metric_->Add(p.host_reads);
      host_writes_metric_->Add(p.host_writes);
      on_nic_metric_->Add(p.on_nic);
    }
  }

  void FlushPendingPosts() {
    const uint64_t min_active =
        active_chains_.empty() ? next_chain_id_ : *active_chains_.begin();
    while (!pending_posts_.empty() &&
           pending_posts_.front().barrier <= min_active) {
      for (rdma::Addr b : pending_posts_.front().buffers) {
        PRISM_CHECK(freelists_.Post(pending_posts_.front().queue, b).ok());
      }
      pending_posts_.pop_front();
    }
  }

  net::Fabric* fabric_;
  net::HostId host_;
  Deployment deployment_;
  rdma::AddressSpace* mem_;
  FreeListRegistry freelists_;
  Executor executor_;
  sim::ServiceQueue nic_pipeline_;
  sim::ServiceQueue bf_cores_;
  rdma::MemoryRegion on_nic_region_;
  rdma::Addr on_nic_next_ = 0;

  struct PendingPost {
    uint64_t barrier;  // flush once all chain ids < barrier completed
    uint32_t queue;
    std::vector<rdma::Addr> buffers;
  };

  obs::Counter* chains_metric_ = nullptr;
  obs::Counter* ops_metric_ = nullptr;
  obs::Counter* host_reads_metric_ = nullptr;
  obs::Counter* host_writes_metric_ = nullptr;
  obs::Counter* on_nic_metric_ = nullptr;

  int in_flight_ = 0;
  uint64_t next_chain_id_ = 0;
  std::set<uint64_t> active_chains_;
  uint64_t chains_executed_ = 0;
  uint64_t ops_executed_ = 0;
  std::deque<PendingPost> pending_posts_;
};

class PrismClient {
 public:
  PrismClient(net::Fabric* fabric, net::HostId self)
      : fabric_(fabric), self_(self) {}

  net::HostId host() const { return self_; }

  static constexpr sim::Duration kOpTimeout = sim::Millis(5);

  // Executes a chain in one round trip. The ChainResult has one entry per op
  // (skipped conditional ops are marked executed=false).
  // Protocol-complexity tally across every chain issued by this client
  // (see src/obs/complexity.h for the counting rules).
  const obs::TransportTally& tally() const { return tally_; }

  // Routes chain submission/completion through a shared per-host verb
  // batcher (doorbell batching + completion coalescing); null keeps the
  // flat cost of one doorbell ring and one CQ drain per chain.
  void set_batcher(rdma::VerbBatcher* b) { batcher_ = b; }

  sim::Task<Result<ChainResult>> Execute(PrismServer* server, Chain chain) {
    auto state = std::make_shared<OpState>(fabric_->sim(self_),
                                           TimedOut("prism chain"));
    state->span = fabric_->obs().StartSpan("prism.execute", "prism", self_,
                                           fabric_->sim(self_)->Now());
    // Capture the current-op register before the first suspension point
    // (the span-register discipline); the post path is kBatchWait.
    state->op = fabric_->obs().current_op();
    if (state->op != nullptr) {
      if (state->op->root_span() == 0 && state->span != 0 &&
          fabric_->obs().tracer() != nullptr) {
        state->op->set_root_span(fabric_->obs().tracer()->RootOf(state->span));
      }
      state->op->Switch(obs::Phase::kBatchWait, fabric_->sim(self_)->Now());
    }
    auto chain_ptr = std::make_shared<const Chain>(std::move(chain));
    if (batcher_ != nullptr) {
      co_await batcher_->Post(&tally_);
    } else {
      tally_.doorbells++;
      co_await sim::SleepFor(fabric_->sim(self_), fabric_->cost().client_post);
    }
    const size_t req_payload = EncodedChainSize(*chain_ptr);
    tally_.messages++;
    tally_.bytes_out += req_payload;
    // SW and BlueField chains burn a (server or SmartNIC) core; the
    // projected-hardware ASIC is CPU-free like a one-sided verb.
    if (server->deployment() != Deployment::kHardwareProjected) {
      tally_.cpu_actions++;
    }
    obs::SwitchOp(state->op, obs::Phase::kWire, fabric_->sim(self_)->Now());
    fabric_->obs().SetCurrentSpan(state->span);
    fabric_->obs().SetCurrentOp(state->op);
    fabric_->Send(
        self_, server->host(), req_payload,
        [this, server, chain_ptr = std::move(chain_ptr), state] {
          fabric_->obs().SetCurrentSpan(state->span);
          // CPU-involvement semantics: SW / BlueField chains burn a core
          // ("responder"); the projected-hardware ASIC executes inside the
          // NIC, indistinguishable from the wire to the client.
          if (server->deployment() != Deployment::kHardwareProjected) {
            obs::SwitchOp(state->op, obs::Phase::kResponder,
                          fabric_->sim(server->host())->Now());
          }
          sim::Spawn([this, server, chain_ptr, state]() -> sim::Task<void> {
            auto results = std::make_shared<ChainResult>();
            co_await server->RunChain(chain_ptr, results);
            const size_t resp_bytes = ActualResponseSize(*chain_ptr,
                                                         *results);
            state->result = std::move(*results);
            state->resp_bytes = resp_bytes;
            obs::SwitchOp(state->op, obs::Phase::kWire,
                          fabric_->sim(server->host())->Now());
            fabric_->obs().SetCurrentSpan(state->span);
            fabric_->obs().SetCurrentOp(state->op);
            fabric_->Send(server->host(), self_, resp_bytes, [this, state] {
              obs::SwitchOp(state->op, obs::Phase::kBatchWait,
                            fabric_->sim(self_)->Now());
              if (!state->done.is_set()) {
                state->responded = true;
                state->done.Set();
              }
            });
          });
        },
        [state] { state->Finish(Unavailable("host down")); });
    fabric_->sim(self_)->Schedule(kOpTimeout, [state] {
      state->Finish(TimedOut("chain deadline"));
    });
    co_await state->done.Wait();
    if (batcher_ != nullptr) {
      co_await batcher_->Complete(&tally_);
    } else {
      tally_.cq_polls++;
      co_await sim::SleepFor(fabric_->sim(self_), fabric_->cost().completion);
    }
    if (state->responded) {
      tally_.round_trips++;
      tally_.bytes_in += state->resp_bytes;
    }
    obs::SwitchOp(state->op, obs::Phase::kApp, fabric_->sim(self_)->Now());
    // Restore the register before returning: the caller resumes
    // synchronously from here, so its next verb captures the right op.
    fabric_->obs().SetCurrentOp(state->op);
    fabric_->obs().FinishSpan(state->span, fabric_->sim(self_)->Now());
    co_return std::move(state->result);
  }

  // Single-op conveniences.
  sim::Task<Result<OpResult>> ExecuteOne(PrismServer* server, Op op) {
    Chain chain;
    chain.push_back(std::move(op));
    auto results = co_await Execute(server, std::move(chain));
    if (!results.ok()) co_return results.status();
    PRISM_CHECK_EQ(results->size(), 1u);
    co_return std::move((*results)[0]);
  }

 private:
  struct OpState {
    OpState(sim::Simulator* sim, Status pending)
        : done(sim), result(std::move(pending)) {}
    sim::Event done;
    Result<ChainResult> result;
    obs::SpanId span = 0;
    obs::OpTimeline* op = nullptr;  // phase timeline (null when untimed)
    size_t resp_bytes = 0;
    bool responded = false;
    void Finish(Status s) {
      if (!done.is_set()) {
        result = std::move(s);
        done.Set();
      }
    }
  };

  net::Fabric* fabric_;
  net::HostId self_;
  rdma::VerbBatcher* batcher_ = nullptr;
  obs::TransportTally tally_;
};

}  // namespace prism::core

#endif  // PRISM_SRC_PRISM_SERVICE_H_
