// Free-list queues backing PRISM's ALLOCATE primitive (§3.2).
//
// A free list is represented the way the paper proposes for hardware: as a
// queue-pair-like structure of fixed-size buffers that the server CPU posts
// and the NIC pops on ALLOCATE. Applications register multiple queues with
// power-of-two buffer sizes to bound space overhead (§3.2 suggests ≤2×).
//
// The drain rule ("recycled buffers only be added back to the free list when
// concurrent NIC operations are complete") is enforced by the PrismService
// timing layer, which defers Post() calls while chains are in flight; this
// registry is the pure data structure.
#ifndef PRISM_SRC_PRISM_FREELIST_H_
#define PRISM_SRC_PRISM_FREELIST_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/status.h"
#include "src/rdma/memory.h"

namespace prism::core {

class FreeListRegistry {
 public:
  // Creates a queue whose buffers are all `buffer_size` bytes.
  uint32_t CreateQueue(uint64_t buffer_size);

  // Returns the id of the registered queue with the smallest buffer size
  // >= need, or kInvalidArgument if none fits.
  Result<uint32_t> QueueFor(uint64_t need) const;

  // Adds a buffer to the queue's free list (server-side post).
  Status Post(uint32_t queue, rdma::Addr buffer);

  // Pops the head buffer, checking the payload fits. An empty queue NACKs
  // with kResourceExhausted (the RNR condition of §4.2).
  Result<rdma::Addr> Pop(uint32_t queue, uint64_t need);

  uint64_t buffer_size(uint32_t queue) const;
  size_t available(uint32_t queue) const;
  size_t queue_count() const { return queues_.size(); }

  // ---- stats ----
  uint64_t pops() const { return pops_; }
  uint64_t posts() const { return posts_; }
  uint64_t empty_nacks() const { return empty_nacks_; }

 private:
  struct Queue {
    uint64_t buffer_size;
    std::deque<rdma::Addr> buffers;
  };

  bool ValidQueue(uint32_t queue) const { return queue < queues_.size(); }

  std::vector<Queue> queues_;
  uint64_t pops_ = 0;
  uint64_t posts_ = 0;
  uint64_t empty_nacks_ = 0;
};

}  // namespace prism::core

#endif  // PRISM_SRC_PRISM_FREELIST_H_
