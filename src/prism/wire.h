// Wire encoding of PRISM chains — the §4.2 protocol extension.
//
// PRISM needs five new flags in the RDMA BTH: three for indirection
// (addr-indirect, data-indirect, bounded) and two for chaining (conditional,
// redirect). This module provides a byte-exact encode/decode of chains (used
// by tests to validate the format round-trips) and the request/response size
// accounting the fabric uses for bandwidth modeling.
#ifndef PRISM_SRC_PRISM_WIRE_H_
#define PRISM_SRC_PRISM_WIRE_H_

#include "src/prism/op.h"

namespace prism::core {

// The five BTH flag bits (§4.2).
enum WireFlag : uint8_t {
  kFlagAddrIndirect = 1u << 0,
  kFlagDataIndirect = 1u << 1,
  kFlagAddrBounded = 1u << 2,
  kFlagConditional = 1u << 3,
  kFlagRedirect = 1u << 4,
};

uint8_t PackFlags(const Op& op);
void UnpackFlags(uint8_t flags, Op& op);

// Exact encoded size of one op / a whole chain (request side).
size_t EncodedOpSize(const Op& op);
size_t EncodedChainSize(const Chain& chain);

// Bytes the response carries for one op: READ data (unless redirected), CAS
// old value, ALLOCATE pointer (unless redirected), plus a 4-byte status.
// These use the op descriptor (an upper bound: bounded reads may return
// less); ActualResponseSize uses the executed results and is what the
// fabric bandwidth model charges.
size_t ResponseOpSize(const Op& op);
size_t ResponseChainSize(const Chain& chain);
size_t ActualResponseSize(const Chain& chain, const ChainResult& results);

void EncodeOp(const Op& op, Bytes& out);
Bytes EncodeChain(const Chain& chain);

// Decodes one op starting at `in[offset]`; advances offset.
Result<Op> DecodeOp(ByteView in, size_t& offset);
Result<Chain> DecodeChain(ByteView in);

}  // namespace prism::core

#endif  // PRISM_SRC_PRISM_WIRE_H_
