// The PRISM chain executor: exact semantics of Table 1.
//
// Pure synchronous semantics over an AddressSpace + FreeListRegistry; the
// timing layer (prism/service.h) interleaves ops of concurrent chains at op
// granularity, matching the paper's atomicity contract: the CAS itself is
// atomic, dereferencing indirect arguments is not, and chains as a whole are
// not.
//
// Security model (§3.1): every memory the op touches — the target address,
// the location an indirect target points to, an indirect data source, and a
// redirect destination — must lie in a region registered under the *same
// rkey* presented by the client (or the op NACKs with kPermissionDenied /
// kOutOfRange, modeled on the RDMA protection semantics).
#ifndef PRISM_SRC_PRISM_EXECUTOR_H_
#define PRISM_SRC_PRISM_EXECUTOR_H_

#include <vector>

#include "src/prism/freelist.h"
#include "src/prism/op.h"
#include "src/rdma/memory.h"
#include "src/rdma/verbs.h"

namespace prism::core {

// Tracks chain progress across ops (the CONDITIONAL flag's state).
struct ChainContext {
  bool prev_success = true;
};

// Memory-access counts for one op, used by the hardware-projection and
// BlueField timing models (each host access = one PCIe / host-memory RTT).
struct AccessProfile {
  int host_reads = 0;    // DMA reads of host memory
  int host_writes = 0;   // DMA writes to host memory
  int on_nic = 0;        // accesses landing in on-NIC SRAM
  bool atomic = false;   // needs the NIC's atomic unit
};

class Executor {
 public:
  Executor(rdma::AddressSpace* mem, FreeListRegistry* freelists)
      : mem_(mem), freelists_(freelists) {}

  // Executes one op of a chain, updating `ctx`.
  OpResult ExecuteOne(const Op& op, ChainContext& ctx);

  // Executes a whole chain in one shot (used by unit tests and by callers
  // that don't need op-granular timing).
  ChainResult Execute(const Chain& chain);

  // Predicts the op's memory-access profile *without* executing it (the
  // timing layer charges costs before effects). Uses only the op descriptor
  // plus region attributes (on-NIC vs host).
  AccessProfile Profile(const Op& op) const;

  rdma::AddressSpace& memory() { return *mem_; }
  FreeListRegistry& freelists() { return *freelists_; }

 private:
  OpResult DoRead(const Op& op);
  OpResult DoSearch(const Op& op);
  OpResult DoWrite(const Op& op);
  OpResult DoCas(const Op& op);
  OpResult DoAllocate(const Op& op);

  // Admits an access under op.rkey or within NIC-owned on-NIC scratch.
  Status CheckAccess(rdma::RKey rkey, rdma::Addr addr, uint64_t len,
                     uint32_t need) const;

  // Resolves the effective target address and length honoring addr_indirect
  // and addr_bounded; validates every touched range under op.rkey.
  struct Target {
    rdma::Addr addr = 0;
    uint64_t len = 0;
  };
  Result<Target> ResolveTarget(const Op& op, uint32_t need_access) const;
  // As above but with an explicit access length (CAS resolves the operand
  // width, not op.len) — avoids deep-copying the Op to override one field.
  Result<Target> ResolveTarget(const Op& op, uint64_t len,
                               uint32_t need_access) const;

  // Resolves the data operand honoring data_indirect (loads `width` bytes
  // from the server-side source).
  Result<Bytes> ResolveData(const Op& op, uint64_t width) const;

  // Stores an op output at the redirect target (validated under op.rkey).
  Status RedirectOutput(const Op& op, ByteView output);

  rdma::AddressSpace* mem_;
  FreeListRegistry* freelists_;
};

}  // namespace prism::core

#endif  // PRISM_SRC_PRISM_EXECUTOR_H_
