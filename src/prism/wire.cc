#include "src/prism/wire.h"

namespace prism::core {
namespace {

// Fixed header per op: opcode(1) flags(1) cas_mode(1) mask_width(1)
// rkey(4) addr(8) len(4) freelist(4) data_len(4).
constexpr size_t kOpHeader = 1 + 1 + 1 + 1 + 4 + 8 + 4 + 4 + 4;
constexpr size_t kChainHeader = 2;  // op count (u16)

void PutU8(Bytes& out, uint8_t v) { out.push_back(v); }
void PutU16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

struct Cursor {
  ByteView in;
  size_t pos;
  bool ok = true;

  uint8_t U8() { return Take(1) ? in[pos - 1] : 0; }
  uint16_t U16() {
    if (!Take(2)) return 0;
    return static_cast<uint16_t>(in[pos - 2] | (in[pos - 1] << 8));
  }
  uint32_t U32() {
    if (!Take(4)) return 0;
    return LoadU32(in.data() + pos - 4);
  }
  uint64_t U64() {
    if (!Take(8)) return 0;
    return LoadU64(in.data() + pos - 8);
  }
  Bytes Blob(size_t n) {
    if (!Take(n)) return {};
    return Bytes(in.begin() + static_cast<long>(pos - n),
                 in.begin() + static_cast<long>(pos));
  }

 private:
  bool Take(size_t n) {
    if (!ok || pos + n > in.size()) {
      ok = false;
      return false;
    }
    pos += n;
    return true;
  }
};

}  // namespace

uint8_t PackFlags(const Op& op) {
  uint8_t f = 0;
  if (op.addr_indirect) f |= kFlagAddrIndirect;
  if (op.data_indirect) f |= kFlagDataIndirect;
  if (op.addr_bounded) f |= kFlagAddrBounded;
  if (op.conditional) f |= kFlagConditional;
  if (op.redirect) f |= kFlagRedirect;
  return f;
}

void UnpackFlags(uint8_t flags, Op& op) {
  op.addr_indirect = (flags & kFlagAddrIndirect) != 0;
  op.data_indirect = (flags & kFlagDataIndirect) != 0;
  op.addr_bounded = (flags & kFlagAddrBounded) != 0;
  op.conditional = (flags & kFlagConditional) != 0;
  op.redirect = (flags & kFlagRedirect) != 0;
}

size_t EncodedOpSize(const Op& op) {
  size_t size = kOpHeader + op.data.size();
  if (op.redirect) size += 8;
  if (op.code == OpCode::kCas) {
    size += op.cmp_mask.size() * 2;
    size += 2 + op.compare.size();  // compare_len u8, compare_indirect u8
  }
  return size;
}

size_t EncodedChainSize(const Chain& chain) {
  size_t size = kChainHeader;
  for (const Op& op : chain) size += EncodedOpSize(op);
  return size;
}

size_t ResponseOpSize(const Op& op) {
  constexpr size_t kStatus = 4;
  switch (op.code) {
    case OpCode::kRead:
      // Indirect reads also report the resolved pointer (8 B).
      return kStatus + (op.redirect ? 0 : op.len) +
             (op.addr_indirect ? 8 : 0);
    case OpCode::kWrite:
      return kStatus;
    case OpCode::kCas:
      return kStatus + op.cmp_mask.size();  // previous value, always returned
    case OpCode::kAllocate:
      return kStatus + 8;  // address returned even when redirected
    case OpCode::kSearch:
      return kStatus + (op.redirect ? 0 : 8);  // match offset
  }
  return kStatus;
}

size_t ResponseChainSize(const Chain& chain) {
  size_t size = 0;
  for (const Op& op : chain) size += ResponseOpSize(op);
  return size;
}

size_t ActualResponseSize(const Chain& chain, const ChainResult& results) {
  constexpr size_t kStatus = 4;
  size_t size = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    size += kStatus;
    if (i >= results.size()) continue;
    size += results[i].data.size();  // bounded reads return only the bound
    if (chain[i].code == OpCode::kRead && chain[i].addr_indirect &&
        results[i].executed) {
      size += 8;  // resolved pointer
    }
  }
  return size;
}

void EncodeOp(const Op& op, Bytes& out) {
  PutU8(out, static_cast<uint8_t>(op.code));
  PutU8(out, PackFlags(op));
  PutU8(out, static_cast<uint8_t>(op.cas_mode));
  PutU8(out, static_cast<uint8_t>(op.cmp_mask.size()));
  PutU32(out, op.rkey);
  PutU64(out, op.addr);
  PutU32(out, static_cast<uint32_t>(op.len));
  PutU32(out, op.freelist);
  PutU32(out, static_cast<uint32_t>(op.data.size()));
  if (op.redirect) PutU64(out, op.redirect_addr);
  out.insert(out.end(), op.data.begin(), op.data.end());
  if (op.code == OpCode::kCas) {
    out.insert(out.end(), op.cmp_mask.begin(), op.cmp_mask.end());
    out.insert(out.end(), op.swap_mask.begin(), op.swap_mask.end());
    PutU8(out, static_cast<uint8_t>(op.compare.size()));
    PutU8(out, op.compare_indirect ? 1 : 0);
    out.insert(out.end(), op.compare.begin(), op.compare.end());
  }
}

Bytes EncodeChain(const Chain& chain) {
  Bytes out;
  out.reserve(EncodedChainSize(chain));
  PutU16(out, static_cast<uint16_t>(chain.size()));
  for (const Op& op : chain) EncodeOp(op, out);
  return out;
}

Result<Op> DecodeOp(ByteView in, size_t& offset) {
  Cursor c{in, offset};
  Op op;
  const uint8_t code = c.U8();
  if (code > static_cast<uint8_t>(OpCode::kSearch)) {
    return InvalidArgument("bad opcode");
  }
  op.code = static_cast<OpCode>(code);
  UnpackFlags(c.U8(), op);
  const uint8_t mode = c.U8();
  if (mode > static_cast<uint8_t>(rdma::CasCompare::kLess)) {
    return InvalidArgument("bad CAS mode");
  }
  op.cas_mode = static_cast<rdma::CasCompare>(mode);
  const uint8_t mask_width = c.U8();
  op.rkey = c.U32();
  op.addr = c.U64();
  op.len = c.U32();
  op.freelist = c.U32();
  const uint32_t data_len = c.U32();
  if (op.redirect) op.redirect_addr = c.U64();
  op.data = c.Blob(data_len);
  if (op.code == OpCode::kCas) {
    op.cmp_mask = c.Blob(mask_width);
    op.swap_mask = c.Blob(mask_width);
    const uint8_t compare_len = c.U8();
    op.compare_indirect = c.U8() != 0;
    op.compare = c.Blob(compare_len);
  }
  if (!c.ok) return InvalidArgument("truncated op encoding");
  offset = c.pos;
  return op;
}

Result<Chain> DecodeChain(ByteView in) {
  Cursor header{in, 0};
  const uint16_t count = header.U16();
  if (!header.ok) return InvalidArgument("truncated chain header");
  size_t offset = header.pos;
  Chain chain;
  chain.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    PRISM_ASSIGN_OR_RETURN(Op op, DecodeOp(in, offset));
    chain.push_back(std::move(op));
  }
  if (offset != in.size()) {
    return InvalidArgument("trailing bytes after chain");
  }
  return chain;
}

}  // namespace prism::core
