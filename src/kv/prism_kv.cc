#include "src/kv/prism_kv.h"

#include "src/common/hash.h"

namespace prism::kv {

using core::BoundedPtr;
using core::Chain;
using core::Op;
using core::OpCode;

Bytes EncodeRecord(const Bytes& key, const Bytes& value) {
  Bytes record(8 + key.size() + value.size());
  StoreU32(record.data(), static_cast<uint32_t>(key.size()));
  StoreU32(record.data() + 4, static_cast<uint32_t>(value.size()));
  std::memcpy(record.data() + 8, key.data(), key.size());
  std::memcpy(record.data() + 8 + key.size(), value.data(), value.size());
  return record;
}

Result<DecodedRecord> DecodeRecord(ByteView record) {
  if (record.size() < 8) return InvalidArgument("record too short");
  const uint32_t klen = LoadU32(record.data());
  const uint32_t vlen = LoadU32(record.data() + 4);
  if (record.size() < 8 + static_cast<size_t>(klen) + vlen) {
    return InvalidArgument("record truncated");
  }
  DecodedRecord out;
  out.key.assign(record.begin() + 8, record.begin() + 8 + klen);
  out.value.assign(record.begin() + 8 + klen,
                   record.begin() + 8 + klen + vlen);
  return out;
}

PrismKvServer::PrismKvServer(net::Fabric* fabric, net::HostId host,
                             PrismKvOptions opts)
    : opts_(opts) {
  std::vector<uint64_t> classes = opts.size_classes;
  if (classes.empty()) classes.push_back(opts.buffer_size);
  const uint64_t table_bytes = opts.n_buckets * kSlotSize;
  uint64_t pool_bytes = 0;
  for (uint64_t size : classes) pool_bytes += opts.n_buffers * size;
  const uint64_t capacity =
      table_bytes + pool_bytes + core::PrismServer::kOnNicBytes + (1 << 20);
  mem_ = std::make_unique<rdma::AddressSpace>(capacity);
  prism_ = std::make_unique<core::PrismServer>(fabric, host, opts.deployment,
                                               mem_.get());
  // One region covers the table and every buffer pool so indirect operations
  // stay within a single rkey (§3.1's security rule).
  auto region = mem_->CarveAndRegister(table_bytes + pool_bytes,
                                       rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  table_base_ = region_.base;
  // Buffer 0 of the first class is the shared tombstone marker
  // (klen = 0xffffffff, vlen = 0).
  rdma::Addr next = region_.base + table_bytes;
  tombstone_addr_ = next;
  StoreU32(mem_->RawAt(tombstone_addr_, 8), 0xffffffffu);
  StoreU32(mem_->RawAt(tombstone_addr_, 8) + 4, 0);
  bool first_class = true;
  for (uint64_t size : classes) {
    uint32_t queue = prism_->freelists().CreateQueue(size);
    if (first_class) freelist_ = queue;
    for (uint64_t i = first_class ? 1 : 0; i < opts.n_buffers; ++i) {
      prism_->PostBuffers(queue, {next + i * size});
    }
    next += opts.n_buffers * size;
    first_class = false;
  }
}

namespace {
bool IsTombstoneRecord(ByteView record) {
  return record.size() >= 4 && LoadU32(record.data()) == 0xffffffffu;
}
}  // namespace

PrismKvClient::PrismKvClient(net::Fabric* fabric, net::HostId self,
                             PrismKvServer* server)
    : fabric_(fabric),
      server_(server),
      prism_(fabric, self),
      reclaim_(fabric, self, &server->prism(),
               server->options().reclaim_batch) {
  auto scratch = server->prism().AllocateScratch(16);
  PRISM_CHECK(scratch.ok()) << scratch.status();
  scratch_free_.push_back(*scratch);
}

rdma::Addr PrismKvClient::AcquireScratch() {
  if (scratch_free_.empty()) {
    auto scratch = server_->prism().AllocateScratch(16);
    PRISM_CHECK(scratch.ok()) << scratch.status();
    return *scratch;
  }
  rdma::Addr addr = scratch_free_.back();
  scratch_free_.pop_back();
  return addr;
}

uint64_t PrismKvServer::HashBucket(const Bytes& key) const {
  if (opts_.dense_key_hash && key.size() == 8) {
    return LoadU64(key.data()) % opts_.n_buckets;
  }
  return Fnv1a64(ByteView(key)) % opts_.n_buckets;
}

Status PrismKvServer::LoadKey(const Bytes& key, ByteView value) {
  const uint64_t h = HashBucket(key);
  for (int probe = 0; probe < opts_.max_probes; ++probe) {
    const uint64_t bucket = (h + static_cast<uint64_t>(probe)) %
                            opts_.n_buckets;
    if (mem_->LoadWord(slot_addr(bucket)) != 0) continue;  // occupied
    Bytes record = EncodeRecord(key, Bytes(value.begin(), value.end()));
    PRISM_ASSIGN_OR_RETURN(uint32_t queue,
                           prism_->freelists().QueueFor(record.size()));
    PRISM_ASSIGN_OR_RETURN(rdma::Addr buf,
                           prism_->freelists().Pop(queue, record.size()));
    mem_->Store(buf, record);
    core::BoundedPtr bp{buf, record.size()};
    mem_->Store(slot_addr(bucket), bp.ToBytes());
    return OkStatus();
  }
  return ResourceExhausted("no free slot in probe range");
}

uint64_t PrismKvClient::HashBucket(const Bytes& key) const {
  return server_->HashBucket(key);
}

sim::Task<PrismKvClient::ProbeOutcome> PrismKvClient::Probe(
    std::shared_ptr<const Bytes> key, bool for_write) {
  const PrismKvOptions& opts = server_->options();
  const uint64_t h = HashBucket(*key);
  ProbeOutcome out;
  bool have_tombstone = false;
  // A write probe only needs the record header + key to identify the slot
  // (the CAS compares the resolved address); requesting just those bytes
  // keeps PUT's first round trip cheap on the wire — without it a 50/50
  // workload wastes a full value transfer per PUT.
  const uint64_t probe_len =
      for_write ? 8 + key->size() : opts.buffer_size;
  for (int probe = 0; probe < opts.max_probes; ++probe) {
    const uint64_t bucket = (h + static_cast<uint64_t>(probe)) %
                            opts.n_buckets;
    Op read = Op::IndirectRead(server_->rkey(), server_->slot_addr(bucket),
                               probe_len, /*bounded=*/true);
    auto r = co_await prism_.ExecuteOne(&server_->prism(), std::move(read));
    round_trips_++;
    if (!r.ok()) {
      out.status = r.status();
      co_return out;
    }
    if (!r->status.ok()) {
      // NACK dereferencing the slot: a null pointer, i.e. a never-used slot.
      // That ends the probe chain: a miss for readers, the insertion point
      // for writers (unless an earlier tombstone is reusable).
      if (for_write) {
        if (!have_tombstone) {
          out.bucket = bucket;
          out.old_ptr = 0;
        }
        out.found_key = false;
        out.status = OkStatus();
      } else {
        out.status = NotFound("key not present");
      }
      co_return out;
    }
    if (IsTombstoneRecord(r->data)) {
      // Deleted slot: readers keep probing; writers remember the first one
      // as a reusable insertion point but must keep scanning for the key.
      if (for_write && !have_tombstone) {
        have_tombstone = true;
        out.bucket = bucket;
        out.old_ptr = r->resolved_addr;  // tombstone marker address
      }
      continue;
    }
    if (for_write) {
      // Truncated record: header + key prefix is enough for a match check.
      if (r->data.size() >= 8) {
        const uint32_t klen = LoadU32(r->data.data());
        if (klen == key->size() && r->data.size() >= 8 + klen &&
            std::memcmp(r->data.data() + 8, key->data(), klen) == 0) {
          out.bucket = bucket;
          out.old_ptr = r->resolved_addr;
          out.found_key = true;
          out.status = OkStatus();
          co_return out;
        }
      }
      continue;  // different key: keep probing
    }
    auto record = DecodeRecord(r->data);
    if (!record.ok()) {
      out.status = record.status();
      co_return out;
    }
    if (record->key == *key) {
      out.bucket = bucket;
      out.old_ptr = r->resolved_addr;
      out.record = std::move(r->data);
      out.found_key = true;
      out.status = OkStatus();
      co_return out;
    }
    // Hash collision: keep probing.
  }
  probe_overflows_++;
  out.status = for_write ? ResourceExhausted("probe limit hit (table full?)")
                         : NotFound("key not present (probe limit)");
  co_return out;
}

sim::Task<Result<Bytes>> PrismKvClient::Get(const std::string& key) {
  auto key_ptr = std::make_shared<const Bytes>(BytesOfString(key));
  size_t hid = 0;
  if (history_ != nullptr) {
    hid = history_->Begin(history_client_, check::IdOf(*key_ptr),
                          check::OpType::kRead);
  }
  ProbeOutcome probe = co_await Probe(key_ptr, /*for_write=*/false);
  if (!probe.status.ok()) {
    if (history_ != nullptr) {
      // NotFound is a successful observation of absence; anything else
      // returned no information.
      if (probe.status.code() == Code::kNotFound) {
        history_->End(hid, check::Outcome::kOk, check::kAbsent);
      } else {
        history_->End(hid, check::Outcome::kFailed);
      }
    }
    co_return probe.status;
  }
  if (!probe.found_key) {
    if (history_ != nullptr) {
      history_->End(hid, check::Outcome::kOk, check::kAbsent);
    }
    co_return NotFound("key not present");
  }
  auto record = DecodeRecord(probe.record);
  if (!record.ok()) {
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return record.status();
  }
  if (history_ != nullptr) {
    history_->End(hid, check::Outcome::kOk, check::IdOf(record->value));
  }
  co_return std::move(record->value);
}

sim::Task<Status> PrismKvClient::Put(const std::string& key, Bytes value) {
  const PrismKvOptions& opts = server_->options();
  auto key_ptr = std::make_shared<const Bytes>(BytesOfString(key));
  size_t hid = 0;
  if (history_ != nullptr) {
    hid = history_->Begin(history_client_, check::IdOf(*key_ptr),
                          check::OpType::kWrite, check::IdOf(value));
  }
  if (value.size() > opts.max_value_size) {
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return InvalidArgument("value exceeds max_value_size");
  }
  auto record = std::make_shared<const Bytes>(EncodeRecord(*key_ptr, value));
  const uint64_t new_bound = record->size();
  // Pick the smallest size class that fits (Â§3.2). The class table is
  // static server configuration the client knows.
  auto queue = server_->QueueForRecord(record->size());
  if (!queue.ok()) {
    if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
    co_return queue.status();
  }

  // One scratch slot per in-flight PUT: concurrent PUTs on this client
  // interleave their RT2 chains op-by-op, so sharing a slot would let one
  // chain's CAS read the other's staged ⟨ptr,bound⟩.
  const rdma::Addr scratch = AcquireScratch();
  struct ScratchLease {
    std::vector<rdma::Addr>* pool;
    rdma::Addr addr;
    ~ScratchLease() { pool->push_back(addr); }
  } lease{&scratch_free_, scratch};

  for (int attempt = 0; attempt < opts.max_retries; ++attempt) {
    // RT1: probe for the slot and learn the old buffer address (§6.2: "one
    // indirect READ to identify the correct hash table slot").
    ProbeOutcome probe = co_await Probe(key_ptr, /*for_write=*/true);
    if (!probe.status.ok()) {
      // Every earlier attempt saw its install CAS fail: nothing installed.
      if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
      co_return probe.status;
    }

    // RT2: the §3.5 chain — WRITE bound to scratch, ALLOCATE+redirect the
    // record, CAS-install ⟨ptr,bound⟩ iff the old pointer is unchanged.
    Chain chain;
    chain.push_back(
        Op::Write(server_->rkey(), scratch + 8, BytesOfU64(new_bound)));
    chain.push_back(Op::Allocate(server_->rkey(), *queue, *record)
                        .RedirectTo(scratch)
                        .Conditional());
    Op install = Op::CompareSwapCas(
        server_->rkey(), server_->slot_addr(probe.bucket),
        /*compare=*/BytesOfU64Pair(probe.old_ptr, 0),
        /*swap=*/BytesOfU64(scratch),
        /*cmp_mask=*/FieldMask(16, 0, 8),   // compare the pointer field only
        /*swap_mask=*/FieldMask(16, 0, 16));  // install pointer + bound
    install.data_indirect = true;  // swap operand = 16 B at scratch
    install.conditional = true;
    chain.push_back(std::move(install));

    auto r = co_await prism_.Execute(&server_->prism(), std::move(chain));
    round_trips_++;
    if (!r.ok()) {
      // The chain was sent but its response never came back: the install
      // CAS may or may not have landed.
      if (history_ != nullptr) {
        history_->End(hid, check::Outcome::kIndeterminate);
      }
      co_return r.status();
    }
    const core::OpResult& alloc = (*r)[1];
    const core::OpResult& cas = (*r)[2];
    if (!alloc.executed || !alloc.status.ok()) {
      if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
      co_return alloc.executed ? alloc.status
                               : FailedPrecondition("allocate skipped");
    }
    if (cas.executed && cas.cas_swapped) {
      // Success: retire the displaced buffer (if any) to its size class's
      // free list. The CAS returns the old â¨ptr,boundâ©; the bound equals
      // the old record size, which identifies the class it was popped from.
      if (probe.old_ptr != 0 && probe.old_ptr != server_->tombstone_addr()) {
        const uint64_t old_bound = LoadU64(cas.data.data() + 8);
        auto old_queue = server_->QueueForRecord(old_bound);
        if (old_queue.ok()) {
          reclaim_.Free(*old_queue, probe.old_ptr);
        }
      }
      if (history_ != nullptr) history_->End(hid, check::Outcome::kOk);
      co_return OkStatus();
    }
    // Lost the race: a concurrent writer changed the slot after our probe.
    // Reclaim the buffer we allocated and retry from the probe.
    cas_failures_++;
    reclaim_.Free(*queue, alloc.resolved_addr);
  }
  // Every CAS response came back unswapped: the value was never installed.
  if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
  co_return Aborted("put lost too many CAS races");
}

sim::Task<Status> PrismKvClient::Delete(const std::string& key) {
  const PrismKvOptions& opts = server_->options();
  auto key_ptr = std::make_shared<const Bytes>(BytesOfString(key));
  size_t hid = 0;
  if (history_ != nullptr) {
    hid = history_->Begin(history_client_, check::IdOf(*key_ptr),
                          check::OpType::kWrite, check::kAbsent);
  }
  for (int attempt = 0; attempt < opts.max_retries; ++attempt) {
    ProbeOutcome probe = co_await Probe(key_ptr, /*for_write=*/false);
    if (!probe.status.ok()) {
      if (history_ != nullptr) {
        if (probe.status.code() == Code::kNotFound) {
          history_->EndAsRead(hid, check::Outcome::kOk, check::kAbsent);
        } else {
          history_->End(hid, check::Outcome::kFailed);
        }
      }
      co_return probe.status;
    }
    if (!probe.found_key) {
      if (history_ != nullptr) {
        history_->EndAsRead(hid, check::Outcome::kOk, check::kAbsent);
      }
      co_return NotFound("key not present");
    }
    // CAS the slot to the tombstone marker iff the pointer is still ours.
    Op cas = Op::CompareSwapCas(
        server_->rkey(), server_->slot_addr(probe.bucket),
        /*compare=*/BytesOfU64Pair(probe.old_ptr, 0),
        /*swap=*/BytesOfU64Pair(server_->tombstone_addr(),
                                PrismKvServer::kTombstoneBound),
        /*cmp_mask=*/FieldMask(16, 0, 8),
        /*swap_mask=*/FieldMask(16, 0, 16));
    auto r = co_await prism_.ExecuteOne(&server_->prism(), std::move(cas));
    round_trips_++;
    if (!r.ok()) {
      // The tombstone CAS may have landed without us seeing the response.
      if (history_ != nullptr) {
        history_->End(hid, check::Outcome::kIndeterminate);
      }
      co_return r.status();
    }
    if (r->cas_swapped) {
      const uint64_t old_bound = LoadU64(r->data.data() + 8);
      auto old_queue = server_->QueueForRecord(old_bound);
      if (old_queue.ok()) {
        reclaim_.Free(*old_queue, probe.old_ptr);
      }
      if (history_ != nullptr) history_->End(hid, check::Outcome::kOk);
      co_return OkStatus();
    }
    cas_failures_++;  // concurrent update; re-probe
  }
  if (history_ != nullptr) history_->End(hid, check::Outcome::kFailed);
  co_return Aborted("delete lost too many CAS races");
}

}  // namespace prism::kv
