// PRISM-KV — the paper's key-value store case study (§6).
//
// Design (following §6.1):
//  * A hash-table index of 16-byte ⟨ptr,bound⟩ slots points at out-of-place
//    record buffers managed by PRISM ALLOCATE free lists.
//  * GET: one indirect+bounded READ of the slot (returns the record AND the
//    resolved buffer address); linear probing on key mismatch. One PRISM op
//    per probe, vs Pilaf's two READs.
//  * PUT: two round trips. RT1 probes the slot like GET (learning the old
//    buffer address). RT2 is the §3.5 chain: WRITE the new bound into
//    on-NIC scratch, ALLOCATE the record with its address redirected into
//    scratch, then a conditional CAS that installs ⟨new_ptr,new_bound⟩ into
//    the slot iff the old pointer is unchanged (footnote 2's protection
//    against slot reuse). A failed CAS means a concurrent writer won; the
//    freshly allocated buffer is reported back to the reclamation daemon and
//    the PUT retries.
//  * DELETE: CAS the slot to point at a shared tombstone marker record and
//    reclaim the buffer. Tombstones keep linear-probe chains intact; readers
//    probe past them and writers may reuse them.
//  * Correctness under concurrency comes from write-once buffers plus the
//    atomic pointer install — no Pilaf-style CRCs needed.
//
// Record layout in a buffer: [klen u32][vlen u32][key][value]; the slot
// bound is 8+klen+vlen so bounded reads return exactly the record.
#ifndef PRISM_SRC_KV_PRISM_KV_H_
#define PRISM_SRC_KV_PRISM_KV_H_

#include <memory>
#include <string>
#include <vector>

#include "src/check/history.h"
#include "src/net/fabric.h"
#include "src/prism/reclaim.h"
#include "src/prism/service.h"
#include "src/sim/task.h"

namespace prism::kv {

struct PrismKvOptions {
  uint64_t n_buckets = 4096;
  uint64_t buffer_size = 640;   // fits an 8 B header + 8 B key + 512 B value
  uint64_t n_buffers = 8192;    // per size class
  uint64_t max_value_size = 512;
  // §3.2: "registering multiple queues containing buffers of different
  // sizes, and selecting the appropriate one" — e.g. {128, 256, 512, 1024}
  // bounds space overhead to 2×. Empty: one class of `buffer_size`.
  std::vector<uint64_t> size_classes;
  core::Deployment deployment = core::Deployment::kSoftware;
  size_t reclaim_batch = 16;
  int max_probes = 64;   // linear-probe cap before giving up
  int max_retries = 16;  // PUT CAS-race retries
  // Benches use the paper's "collisionless hash function" (§6.2): keys are
  // dense 8-byte integers mapped directly to buckets.
  bool dense_key_hash = false;
};

class PrismKvServer {
 public:
  PrismKvServer(net::Fabric* fabric, net::HostId host, PrismKvOptions opts);

  core::PrismServer& prism() { return *prism_; }
  rdma::AddressSpace& memory() { return *mem_; }
  const PrismKvOptions& options() const { return opts_; }

  rdma::RKey rkey() const { return region_.rkey; }
  rdma::Addr table_base() const { return table_base_; }
  // The (single or smallest-fitting) free-list queue for a record size.
  uint32_t freelist() const { return freelist_; }
  Result<uint32_t> QueueForRecord(uint64_t record_size) const {
    return prism_->freelists().QueueFor(record_size);
  }
  uint64_t slot_addr(uint64_t bucket) const {
    return table_base_ + bucket * kSlotSize;
  }

  // Number of record buffers currently on the free list (all classes).
  size_t free_buffers() const {
    size_t total = 0;
    for (uint32_t q = 0; q < prism_->freelists().queue_count(); ++q) {
      total += prism_->freelists().available(q);
    }
    return total;
  }

  // Setup-time bulk load (models the YCSB load phase): installs the record
  // directly, consuming one free-list buffer. Key must hash to a free slot.
  Status LoadKey(const Bytes& key, ByteView value);

  uint64_t HashBucket(const Bytes& key) const;

  static constexpr uint64_t kSlotSize = core::BoundedPtr::kWireSize;

  // DELETE installs a pointer to this shared marker record; readers that
  // land on it keep probing (the probe chain stays intact), unlike the empty
  // slot ⟨0,0⟩ which ends a chain. The marker is a record with klen =
  // 0xffffffff, which no real key can produce.
  rdma::Addr tombstone_addr() const { return tombstone_addr_; }
  static constexpr uint64_t kTombstoneBound = 8;

 private:
  PrismKvOptions opts_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<core::PrismServer> prism_;
  rdma::MemoryRegion region_;
  rdma::Addr table_base_ = 0;
  uint32_t freelist_ = 0;
  rdma::Addr tombstone_addr_ = 0;
};

class PrismKvClient {
 public:
  PrismKvClient(net::Fabric* fabric, net::HostId self, PrismKvServer* server);

  // GET: returns the value, or kNotFound.
  sim::Task<Result<Bytes>> Get(const std::string& key);

  // PUT: last-writer-wins upsert. kAborted after max_retries lost races.
  sim::Task<Status> Put(const std::string& key, Bytes value);

  // DELETE: removes the key (tombstone). kNotFound if absent.
  sim::Task<Status> Delete(const std::string& key);

  // Ships any batched reclamation notifications.
  void FlushReclaim() { reclaim_.Flush(); }

  // When set, every Get/Put/Delete records an invocation/response entry
  // (keyed by the key's fingerprint) for offline linearizability checking.
  void set_history(check::HistoryRecorder* history, int client_id) {
    history_ = history;
    history_client_ = client_id;
  }

  // ---- stats ----
  uint64_t round_trips() const { return round_trips_; }
  // Transport-level protocol-complexity tally (src/obs/complexity.h).
  obs::TransportTally TransportTally() const { return prism_.tally(); }
  // Shared per-host verb batcher (doorbell batching + completion
  // coalescing); null keeps the flat unbatched post/poll cost.
  void set_batcher(rdma::VerbBatcher* b) { prism_.set_batcher(b); }
  uint64_t cas_failures() const { return cas_failures_; }
  uint64_t probe_overflows() const { return probe_overflows_; }

 private:
  struct ProbeOutcome {
    Status status;            // ok ⇒ landed on a usable slot
    uint64_t bucket = 0;      // slot index the probe ended on
    rdma::Addr old_ptr = 0;   // resolved buffer address (0 for empty slot;
                              // the tombstone marker address for reusable
                              // tombstone slots)
    Bytes record;             // record bytes when the key was found
    bool found_key = false;   // record's key matches
  };

  // Probes for `key` starting at its hash bucket. If for_write, an empty or
  // tombstone slot terminates the probe successfully (insertion point).
  sim::Task<ProbeOutcome> Probe(std::shared_ptr<const Bytes> key,
                                bool for_write);

  uint64_t HashBucket(const Bytes& key) const;

  // Leases a 16 B on-NIC scratch slot ([new_ptr | new_bound]) for one
  // in-flight PUT. PUT chains write their CAS swap operand through scratch,
  // so each concurrent PUT needs its own slot: open-loop pools multiplex
  // many logical clients onto one client object, and a shared slot lets two
  // interleaved chains install each other's ⟨ptr,bound⟩ (aliasing two
  // buckets to one buffer). The pool grows to the peak number of
  // simultaneous PUTs and slots are recycled via scratch_free_.
  rdma::Addr AcquireScratch();

  net::Fabric* fabric_;
  PrismKvServer* server_;
  core::PrismClient prism_;
  core::ReclaimClient reclaim_;
  std::vector<rdma::Addr> scratch_free_;
  check::HistoryRecorder* history_ = nullptr;
  int history_client_ = 0;

  uint64_t round_trips_ = 0;
  uint64_t cas_failures_ = 0;
  uint64_t probe_overflows_ = 0;
};

// Record encoding helpers (shared with tests).
Bytes EncodeRecord(const Bytes& key, const Bytes& value);
struct DecodedRecord {
  Bytes key;
  Bytes value;
};
Result<DecodedRecord> DecodeRecord(ByteView record);

}  // namespace prism::kv

#endif  // PRISM_SRC_KV_PRISM_KV_H_
