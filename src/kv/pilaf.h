// Pilaf (Mitchell et al., ATC'13) — the baseline key-value store the paper
// compares PRISM-KV against (§2.1, §6).
//
// Pilaf's split of labor:
//  * GET uses one-sided RDMA READs: one READ of the hash-table bucket, a
//    second READ of the extent it points to — two round trips, plus
//    application-level CRC verification of both structures (self-verifying
//    data structures detect races with concurrent server-CPU writes).
//  * PUT/DELETE are two-sided RPCs executed by the server CPU, which
//    allocates extents, writes data, and updates buckets.
//
// Memory layout (byte-accurate in the simulated address space):
//  * Bucket array: 64 B per bucket (what a GET READs). The 32-byte entry:
//      [flags u32][klen u32][vlen u32][seq u32][ptr u64][pad u64][crc u32]
//    flags: 0 = empty, 1 = valid, 2 = tombstone; crc covers bytes 0..27.
//  * Extents: fixed-size slabs holding [key][value][crc u32] with the CRC
//    over key+value. In-place value updates write data before the CRC, so a
//    concurrent reader can observe a torn extent — and must detect it by
//    checksum and retry, exactly the complexity PRISM-KV's out-of-place
//    updates eliminate.
#ifndef PRISM_SRC_KV_PILAF_H_
#define PRISM_SRC_KV_PILAF_H_

#include <deque>
#include <memory>
#include <string>

#include "src/net/fabric.h"
#include "src/rdma/service.h"
#include "src/rpc/rpc.h"
#include "src/sim/task.h"

namespace prism::kv {

struct PilafOptions {
  uint64_t n_buckets = 4096;
  uint64_t extent_size = 640;
  uint64_t n_extents = 8192;
  uint64_t max_value_size = 512;
  rdma::Backend backend = rdma::Backend::kHardwareNic;
  int max_probes = 64;
  int max_torn_retries = 64;
  bool dense_key_hash = false;  // §6.2's collisionless hash (bench setup)
};

class PilafServer {
 public:
  static constexpr uint64_t kBucketSize = 64;
  static constexpr uint64_t kEntrySize = 32;
  static constexpr rpc::MethodId kPutMethod = 1;
  static constexpr rpc::MethodId kDeleteMethod = 2;

  struct PutRequest {
    Bytes key;
    Bytes value;
  };
  struct PutResponse {
    Status status;
  };

  PilafServer(net::Fabric* fabric, net::HostId host, PilafOptions opts);

  rdma::RdmaService& rdma() { return *rdma_; }
  rpc::RpcServer& rpc() { return *rpc_; }
  rdma::AddressSpace& memory() { return *mem_; }
  const PilafOptions& options() const { return opts_; }

  rdma::RKey rkey() const { return region_.rkey; }
  rdma::Addr bucket_addr(uint64_t bucket) const {
    return table_base_ + bucket * kBucketSize;
  }

  uint64_t puts_served() const { return puts_served_; }
  size_t free_extents() const { return free_extents_.size(); }

  // Setup-time bulk load (bypasses the RPC path).
  Status LoadKey(const Bytes& key, ByteView value);

  uint64_t HashBucket(const Bytes& key) const;

  // Bucket-entry codec (shared with the client and tests).
  struct Entry {
    uint32_t flags = 0;  // 0 empty / 1 valid / 2 tombstone
    uint32_t klen = 0;
    uint32_t vlen = 0;
    uint32_t seq = 0;
    rdma::Addr ptr = 0;
    bool crc_ok = false;
  };
  static Entry ParseEntry(ByteView bucket_bytes);
  static void WriteEntry(uint8_t* dst, uint32_t flags, uint32_t klen,
                         uint32_t vlen, uint32_t seq, rdma::Addr ptr);

 private:
  friend class PilafClient;

  sim::Task<rpc::MessagePtr> HandlePut(std::shared_ptr<PutRequest> request);
  sim::Task<rpc::MessagePtr> HandleDelete(std::shared_ptr<Bytes> key);

  // Server-side probe for a key; returns the bucket index, or the first
  // free/tombstone bucket if absent (result < 0 means table full).
  int64_t FindBucket(const Bytes& key, bool* exists) const;

  PilafOptions opts_;
  net::Fabric* fabric_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<rdma::RdmaService> rdma_;
  std::unique_ptr<rpc::RpcServer> rpc_;
  rdma::MemoryRegion region_;
  rdma::Addr table_base_ = 0;
  rdma::Addr extents_base_ = 0;
  std::deque<rdma::Addr> free_extents_;
  uint64_t puts_served_ = 0;
};

class PilafClient {
 public:
  PilafClient(net::Fabric* fabric, net::HostId self, PilafServer* server);

  // GET via two one-sided READs + CRC verification; retries torn reads.
  sim::Task<Result<Bytes>> Get(const std::string& key);

  // PUT/DELETE via two-sided RPC.
  sim::Task<Status> Put(const std::string& key, Bytes value);
  sim::Task<Status> Delete(const std::string& key);

  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t torn_retries() const { return torn_retries_; }
  // Combined protocol-complexity tally over both transports
  // (src/obs/complexity.h): one-sided READs for GETs, RPC for PUTs.
  obs::TransportTally TransportTally() const {
    return rdma_.tally() + rpc_.tally();
  }
  // Shared per-host verb batcher (doorbell batching + completion
  // coalescing) applied to both transports; null keeps the flat cost.
  void set_batcher(rdma::VerbBatcher* b) {
    rdma_.set_batcher(b);
    rpc_.set_batcher(b);
  }

 private:
  net::Fabric* fabric_;
  net::HostId self_;
  PilafServer* server_;
  rdma::RdmaClient rdma_;
  rpc::RpcClient rpc_;
  uint64_t reads_issued_ = 0;
  uint64_t torn_retries_ = 0;
};

}  // namespace prism::kv

#endif  // PRISM_SRC_KV_PILAF_H_
