#include "src/kv/pilaf.h"

#include "src/common/hash.h"

namespace prism::kv {

namespace {
constexpr uint32_t kEmpty = 0;
constexpr uint32_t kValid = 1;
constexpr uint32_t kTombstone = 2;
}  // namespace

PilafServer::Entry PilafServer::ParseEntry(ByteView bucket_bytes) {
  PRISM_CHECK_GE(bucket_bytes.size(), kEntrySize);
  Entry e;
  e.flags = LoadU32(bucket_bytes.data());
  e.klen = LoadU32(bucket_bytes.data() + 4);
  e.vlen = LoadU32(bucket_bytes.data() + 8);
  e.seq = LoadU32(bucket_bytes.data() + 12);
  e.ptr = LoadU64(bucket_bytes.data() + 16);
  const uint32_t stored_crc = LoadU32(bucket_bytes.data() + 28);
  e.crc_ok = stored_crc == Crc32(bucket_bytes.data(), 28);
  return e;
}

void PilafServer::WriteEntry(uint8_t* dst, uint32_t flags, uint32_t klen,
                             uint32_t vlen, uint32_t seq, rdma::Addr ptr) {
  StoreU32(dst, flags);
  StoreU32(dst + 4, klen);
  StoreU32(dst + 8, vlen);
  StoreU32(dst + 12, seq);
  StoreU64(dst + 16, ptr);
  StoreU64(dst + 24, 0);  // overwritten below: bytes 24..27 pad, 28..31 crc
  StoreU32(dst + 28, Crc32(dst, 28));
}

PilafServer::PilafServer(net::Fabric* fabric, net::HostId host,
                         PilafOptions opts)
    : opts_(opts), fabric_(fabric) {
  const uint64_t table_bytes = opts.n_buckets * kBucketSize;
  const uint64_t extents_bytes = opts.n_extents * opts.extent_size;
  mem_ = std::make_unique<rdma::AddressSpace>(table_bytes + extents_bytes +
                                              (1 << 20));
  auto region =
      mem_->CarveAndRegister(table_bytes + extents_bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  table_base_ = region_.base;
  extents_base_ = region_.base + table_bytes;
  for (uint64_t i = 0; i < opts.n_extents; ++i) {
    free_extents_.push_back(extents_base_ + i * opts.extent_size);
  }
  // Initialize bucket CRCs so clients never see an uninitialized entry.
  for (uint64_t b = 0; b < opts.n_buckets; ++b) {
    WriteEntry(mem_->RawAt(bucket_addr(b), kEntrySize), kEmpty, 0, 0, 0, 0);
  }
  rdma_ = std::make_unique<rdma::RdmaService>(fabric, host, opts.backend,
                                              mem_.get());
  rpc_ = std::make_unique<rpc::RpcServer>(fabric, host);
  rpc_->Register(kPutMethod,
                 [this](const rpc::Message& m) -> sim::Task<rpc::MessagePtr> {
                   auto req = std::make_shared<PutRequest>(m.As<PutRequest>());
                   auto resp = co_await HandlePut(req);
                   co_return resp;
                 });
  rpc_->Register(kDeleteMethod,
                 [this](const rpc::Message& m) -> sim::Task<rpc::MessagePtr> {
                   auto key = std::make_shared<Bytes>(m.As<Bytes>());
                   auto resp = co_await HandleDelete(key);
                   co_return resp;
                 });
}

uint64_t PilafServer::HashBucket(const Bytes& key) const {
  if (opts_.dense_key_hash && key.size() == 8) {
    return LoadU64(key.data()) % opts_.n_buckets;
  }
  return Fnv1a64(ByteView(key)) % opts_.n_buckets;
}

Status PilafServer::LoadKey(const Bytes& key, ByteView value) {
  bool exists = false;
  int64_t bucket = FindBucket(key, &exists);
  if (bucket < 0) return ResourceExhausted("table full");
  if (exists) return AlreadyExists("key already loaded");
  if (free_extents_.empty()) return ResourceExhausted("out of extents");
  rdma::Addr extent_addr = free_extents_.front();
  free_extents_.pop_front();
  uint8_t* extent = mem_->RawAt(extent_addr, key.size() + value.size() + 4);
  std::memcpy(extent, key.data(), key.size());
  std::memcpy(extent + key.size(), value.data(), value.size());
  StoreU32(extent + key.size() + value.size(),
           Crc32(extent, key.size() + value.size()));
  WriteEntry(mem_->RawAt(bucket_addr(static_cast<uint64_t>(bucket)),
                         kEntrySize),
             kValid, static_cast<uint32_t>(key.size()),
             static_cast<uint32_t>(value.size()), 1, extent_addr);
  return OkStatus();
}

int64_t PilafServer::FindBucket(const Bytes& key, bool* exists) const {
  const uint64_t h = HashBucket(key);
  int64_t first_free = -1;
  for (int probe = 0; probe < opts_.max_probes; ++probe) {
    const uint64_t b = (h + static_cast<uint64_t>(probe)) % opts_.n_buckets;
    Entry e = ParseEntry(
        ByteView(mem_->RawAt(bucket_addr(b), kEntrySize), kEntrySize));
    if (e.flags == kEmpty) {
      *exists = false;
      return first_free >= 0 ? first_free : static_cast<int64_t>(b);
    }
    if (e.flags == kTombstone) {
      if (first_free < 0) first_free = static_cast<int64_t>(b);
      continue;
    }
    // Valid: compare the key stored at the extent head.
    if (e.klen == key.size() &&
        std::memcmp(mem_->RawAt(e.ptr, e.klen), key.data(), e.klen) == 0) {
      *exists = true;
      return static_cast<int64_t>(b);
    }
  }
  *exists = false;
  return first_free;  // may be -1: table full along this probe chain
}

sim::Task<rpc::MessagePtr> PilafServer::HandlePut(
    std::shared_ptr<PutRequest> request) {
  const Bytes& key = request->key;
  const Bytes& value = request->value;
  PutResponse out;
  if (value.size() > opts_.max_value_size) {
    out.status = InvalidArgument("value too large");
    co_return rpc::Message::Of(out, 8);
  }
  bool exists = false;
  int64_t bucket = FindBucket(key, &exists);
  if (bucket < 0) {
    out.status = ResourceExhausted("hash table full");
    co_return rpc::Message::Of(out, 8);
  }
  uint8_t* entry_raw =
      mem_->RawAt(bucket_addr(static_cast<uint64_t>(bucket)), kEntrySize);
  Entry entry = ParseEntry(ByteView(entry_raw, kEntrySize));

  if (exists && entry.vlen == value.size()) {
    // In-place extent update: the classic Pilaf hazard. Write the value in
    // two halves with a scheduling point between them — a concurrent READ
    // can observe the torn extent and must catch it via the extent CRC.
    uint8_t* extent = mem_->RawAt(entry.ptr, entry.klen + entry.vlen + 4);
    const size_t half = value.size() / 2;
    std::memcpy(extent + entry.klen, value.data(), half);
    co_await sim::Yield(fabric_->sim(rpc_->host()));
    std::memcpy(extent + entry.klen + half, value.data() + half,
                value.size() - half);
    uint32_t crc = Crc32(extent, entry.klen + entry.vlen);
    StoreU32(extent + entry.klen + entry.vlen, crc);
    // Bump seq so bucket-entry readers can tell something changed.
    WriteEntry(entry_raw, kValid, entry.klen, entry.vlen, entry.seq + 1,
               entry.ptr);
    puts_served_++;
    out.status = OkStatus();
    co_return rpc::Message::Of(out, 8);
  }

  // New key or size change: allocate a fresh extent, fill it completely,
  // then swing the bucket entry (readers of the old extent stay consistent).
  const uint64_t need = key.size() + value.size() + 4;
  if (need > opts_.extent_size) {
    out.status = InvalidArgument("record exceeds extent size");
    co_return rpc::Message::Of(out, 8);
  }
  if (free_extents_.empty()) {
    out.status = ResourceExhausted("out of extents");
    co_return rpc::Message::Of(out, 8);
  }
  rdma::Addr extent_addr = free_extents_.front();
  free_extents_.pop_front();
  uint8_t* extent = mem_->RawAt(extent_addr, need);
  std::memcpy(extent, key.data(), key.size());
  std::memcpy(extent + key.size(), value.data(), value.size());
  StoreU32(extent + key.size() + value.size(),
           Crc32(extent, key.size() + value.size()));
  rdma::Addr old_ptr = exists ? entry.ptr : 0;
  WriteEntry(entry_raw, kValid, static_cast<uint32_t>(key.size()),
             static_cast<uint32_t>(value.size()), entry.seq + 1, extent_addr);
  if (old_ptr != 0) free_extents_.push_back(old_ptr);
  puts_served_++;
  out.status = OkStatus();
  co_return rpc::Message::Of(out, 8);
}

sim::Task<rpc::MessagePtr> PilafServer::HandleDelete(
    std::shared_ptr<Bytes> key) {
  PutResponse out;
  bool exists = false;
  int64_t bucket = FindBucket(*key, &exists);
  if (!exists) {
    out.status = NotFound("no such key");
    co_return rpc::Message::Of(out, 8);
  }
  uint8_t* entry_raw =
      mem_->RawAt(bucket_addr(static_cast<uint64_t>(bucket)), kEntrySize);
  Entry entry = ParseEntry(ByteView(entry_raw, kEntrySize));
  WriteEntry(entry_raw, kTombstone, 0, 0, entry.seq + 1, 0);
  free_extents_.push_back(entry.ptr);
  out.status = OkStatus();
  co_return rpc::Message::Of(out, 8);
}

PilafClient::PilafClient(net::Fabric* fabric, net::HostId self,
                         PilafServer* server)
    : fabric_(fabric),
      self_(self),
      server_(server),
      rdma_(fabric, self),
      rpc_(fabric, self) {}

sim::Task<Result<Bytes>> PilafClient::Get(const std::string& key) {
  const PilafOptions& opts = server_->options();
  const Bytes key_bytes = BytesOfString(key);
  const uint64_t h = server_->HashBucket(key_bytes);

  for (int attempt = 0; attempt < opts.max_torn_retries; ++attempt) {
    bool torn = false;
    for (int probe = 0; probe < opts.max_probes && !torn; ++probe) {
      const uint64_t b = (h + static_cast<uint64_t>(probe)) % opts.n_buckets;
      // READ 1: the 64 B bucket.
      auto bucket_read = co_await rdma_.Read(
          &server_->rdma(), server_->rkey(), server_->bucket_addr(b),
          PilafServer::kBucketSize);
      reads_issued_++;
      if (!bucket_read.ok()) co_return bucket_read.status();
      co_await sim::SleepFor(fabric_->sim(self_),
                             fabric_->cost().app_crc_check);
      PilafServer::Entry entry = PilafServer::ParseEntry(*bucket_read);
      if (!entry.crc_ok) {
        torn = true;  // entry being rewritten under us; retry from scratch
        break;
      }
      if (entry.flags == kEmpty) co_return NotFound("key not present");
      if (entry.flags == kTombstone) continue;
      // READ 2: the extent (key + value + CRC).
      const uint64_t extent_len = entry.klen + entry.vlen + 4;
      auto extent_read = co_await rdma_.Read(&server_->rdma(),
                                             server_->rkey(), entry.ptr,
                                             extent_len);
      reads_issued_++;
      if (!extent_read.ok()) co_return extent_read.status();
      co_await sim::SleepFor(fabric_->sim(self_),
                             fabric_->cost().app_crc_check);
      const Bytes& extent = *extent_read;
      const uint32_t stored_crc = LoadU32(extent.data() + entry.klen +
                                          entry.vlen);
      if (stored_crc != Crc32(extent.data(), entry.klen + entry.vlen)) {
        torn = true;  // in-place update raced us; CRC caught it
        break;
      }
      if (entry.klen != key_bytes.size() ||
          std::memcmp(extent.data(), key_bytes.data(), entry.klen) != 0) {
        continue;  // hash collision; probe on
      }
      co_return Bytes(extent.begin() + entry.klen,
                      extent.begin() + entry.klen + entry.vlen);
    }
    if (!torn) co_return NotFound("key not present (probe limit)");
    torn_retries_++;
  }
  co_return Aborted("too many torn-read retries");
}

sim::Task<Status> PilafClient::Put(const std::string& key, Bytes value) {
  PilafServer::PutRequest request;
  request.key = BytesOfString(key);
  request.value = std::move(value);
  const size_t wire = 16 + request.key.size() + request.value.size();
  rpc::MessagePtr msg = rpc::Message::Of(std::move(request), wire);
  auto resp = co_await rpc_.Call(&server_->rpc(), PilafServer::kPutMethod,
                                 msg);
  if (!resp.ok()) co_return resp.status();
  co_return (*resp)->As<PilafServer::PutResponse>().status;
}

sim::Task<Status> PilafClient::Delete(const std::string& key) {
  rpc::MessagePtr msg = rpc::Message::Of(BytesOfString(key), 16 + key.size());
  auto resp = co_await rpc_.Call(&server_->rpc(), PilafServer::kDeleteMethod,
                                 msg);
  if (!resp.ok()) co_return resp.status();
  co_return (*resp)->As<PilafServer::PutResponse>().status;
}

}  // namespace prism::kv
