// Two-sided RPC over the simulated fabric, modeled on eRPC (§2.1).
//
// Calibration target (the paper's own measurement): a 512 B read RPC takes
// ≈5.6 µs on the 40 GbE cluster where a one-sided READ takes ≈3.2 µs. The
// server side consumes a dedicated core for dispatch + handler time — this
// CPU cost is exactly what the PRISM paper's applications avoid.
//
// Messages are type-erased: the fabric models timing from the declared wire
// size while the body travels as a shared_ptr (no serialization needed for
// correctness — applications may still serialize if they want, and the PRISM
// chain path does, see prism/wire.h).
#ifndef PRISM_SRC_RPC_RPC_H_
#define PRISM_SRC_RPC_RPC_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/rdma/batch.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::rpc {

using MethodId = uint32_t;

class Message;
// All RPC-facing signatures traffic in shared_ptr<Message>: GCC 12 double-
// destroys class-type temporaries in co_await full-expressions, and bare
// shared_ptr temporaries are the vetted-safe way to pass payloads through
// coroutine calls (see the warning in sim/task.h).
using MessagePtr = std::shared_ptr<Message>;

class Message {
 public:
  Message() = default;

  template <typename T>
  static MessagePtr Of(T value, size_t wire_bytes) {
    auto m = std::make_shared<Message>();
    m->body_ = std::make_shared<T>(std::move(value));
    m->wire_bytes_ = wire_bytes;
    return m;
  }

  static MessagePtr Empty(size_t wire_bytes = 0) {
    auto m = std::make_shared<Message>();
    m->wire_bytes_ = wire_bytes;
    return m;
  }

  template <typename T>
  const T& As() const {
    PRISM_CHECK(body_ != nullptr) << "empty rpc message body";
    return *std::static_pointer_cast<const T>(body_);
  }

  template <typename T>
  T& MutableAs() {
    PRISM_CHECK(body_ != nullptr);
    return *std::static_pointer_cast<T>(body_);
  }

  bool empty() const { return body_ == nullptr; }
  size_t wire_bytes() const { return wire_bytes_; }

 private:
  std::shared_ptr<void> body_;
  size_t wire_bytes_ = 0;
};

class RpcServer {
 public:
  // A handler is a coroutine taking the request and producing the response.
  // Handlers run on one of the server's dedicated cores; the constant
  // rpc_handler cost is charged on top of whatever the handler itself awaits.
  using Handler = std::function<sim::Task<MessagePtr>(const Message&)>;

  RpcServer(net::Fabric* fabric, net::HostId host)
      : fabric_(fabric),
        host_(host),
        served_metric_(fabric->obs().metrics().AddCounter(
            "rpc", "calls_served", fabric->HostName(host))) {}

  void Register(MethodId method, Handler handler) {
    PRISM_CHECK(handlers_.emplace(method, std::move(handler)).second)
        << "duplicate rpc method " << method;
  }

  net::HostId host() const { return host_; }
  uint64_t calls_served() const { return calls_served_; }

 private:
  friend class RpcClient;

  sim::Task<MessagePtr> Serve(MethodId method, MessagePtr request) {
    // Entered synchronously from the request-delivery event, so the hub's
    // current-span register still holds the caller's rpc.call span.
    const obs::SpanId span = fabric_->obs().StartSpan(
        "rpc.serve", "rpc", host_, fabric_->sim(host_)->Now());
    const net::CostModel& c = fabric_->cost();
    co_await sim::SleepFor(fabric_->sim(host_), c.sw_ring_dma);
    sim::ServiceQueue& cores = fabric_->Cores(host_);
    co_await cores.Acquire();
    co_await sim::SleepFor(fabric_->sim(host_),
                           c.rpc_dispatch + c.rpc_handler);
    auto it = handlers_.find(method);
    MessagePtr response;
    if (it != handlers_.end()) {
      response = co_await it->second(*request);
    } else {
      response = Message::Empty();
    }
    cores.Release();
    co_await sim::SleepFor(fabric_->sim(host_), c.sw_tx);
    calls_served_++;
    served_metric_->Add();
    fabric_->obs().FinishSpan(span, fabric_->sim(host_)->Now());
    co_return response;
  }

  net::Fabric* fabric_;
  net::HostId host_;
  obs::Counter* served_metric_;
  std::unordered_map<MethodId, Handler> handlers_;
  uint64_t calls_served_ = 0;
};

class RpcClient {
 public:
  RpcClient(net::Fabric* fabric, net::HostId self)
      : fabric_(fabric), self_(self) {}

  net::HostId host() const { return self_; }

  static constexpr sim::Duration kRpcTimeout = sim::Millis(5);

  // Protocol-complexity tally across every Call issued by this client
  // (see src/obs/complexity.h for the counting rules).
  const obs::TransportTally& tally() const { return tally_; }

  // eRPC's send path is itself posted WRs + CQ polls, so the same verb-layer
  // batcher applies; null keeps one doorbell ring and one drain per call.
  void set_batcher(rdma::VerbBatcher* b) { batcher_ = b; }

  sim::Task<Result<MessagePtr>> Call(RpcServer* server, MethodId method,
                                     MessagePtr request_ptr) {
    auto state = std::make_shared<CallState>(fabric_->sim(self_));
    state->span = fabric_->obs().StartSpan("rpc.call", "rpc", self_,
                                           fabric_->sim(self_)->Now());
    // Capture the current-op register before the first suspension point
    // (the span-register discipline); the post path is kBatchWait.
    state->op = fabric_->obs().current_op();
    if (state->op != nullptr) {
      if (state->op->root_span() == 0 && state->span != 0 &&
          fabric_->obs().tracer() != nullptr) {
        state->op->set_root_span(fabric_->obs().tracer()->RootOf(state->span));
      }
      state->op->Switch(obs::Phase::kBatchWait, fabric_->sim(self_)->Now());
    }
    if (batcher_ != nullptr) {
      co_await batcher_->Post(&tally_);
    } else {
      tally_.doorbells++;
      co_await sim::SleepFor(fabric_->sim(self_), fabric_->cost().client_post);
    }
    const size_t req_wire = request_ptr->wire_bytes();
    tally_.messages++;
    tally_.bytes_out += req_wire;
    tally_.cpu_actions++;  // every RPC consumes a server core
    obs::SwitchOp(state->op, obs::Phase::kWire, fabric_->sim(self_)->Now());
    fabric_->obs().SetCurrentSpan(state->span);
    fabric_->obs().SetCurrentOp(state->op);
    fabric_->Send(
        self_, server->host(), req_wire,
        [this, server, method, request_ptr = std::move(request_ptr), state] {
          fabric_->obs().SetCurrentSpan(state->span);
          // Every RPC burns a server core: delivery-to-response is
          // "responder" by definition.
          obs::SwitchOp(state->op, obs::Phase::kResponder,
                        fabric_->sim(server->host())->Now());
          sim::Spawn([this, server, method, request_ptr,
                      state]() -> sim::Task<void> {
            MessagePtr response = co_await server->Serve(method, request_ptr);
            const size_t resp_wire = response ? response->wire_bytes() : 0;
            state->response = std::move(response);
            state->resp_bytes = resp_wire;
            obs::SwitchOp(state->op, obs::Phase::kWire,
                          fabric_->sim(server->host())->Now());
            fabric_->obs().SetCurrentSpan(state->span);
            fabric_->obs().SetCurrentOp(state->op);
            fabric_->Send(server->host(), self_, resp_wire, [this, state] {
              obs::SwitchOp(state->op, obs::Phase::kBatchWait,
                            fabric_->sim(self_)->Now());
              if (!state->done.is_set()) {
                state->responded = true;
                state->done.Set();
              }
            });
          });
        },
        [state] { state->Finish(Unavailable("host down")); });
    fabric_->sim(self_)->Schedule(kRpcTimeout, [state] {
      state->Finish(TimedOut("rpc deadline"));
    });
    co_await state->done.Wait();
    if (batcher_ != nullptr) {
      co_await batcher_->Complete(&tally_);
    } else {
      tally_.cq_polls++;
      co_await sim::SleepFor(fabric_->sim(self_), fabric_->cost().completion);
    }
    if (state->responded) {
      tally_.round_trips++;
      tally_.bytes_in += state->resp_bytes;
    }
    obs::SwitchOp(state->op, obs::Phase::kApp, fabric_->sim(self_)->Now());
    // Restore the register before returning: the caller resumes
    // synchronously from here, so its next call captures the right op.
    fabric_->obs().SetCurrentOp(state->op);
    fabric_->obs().FinishSpan(state->span, fabric_->sim(self_)->Now());
    if (!state->error.ok()) co_return state->error;
    co_return std::move(state->response);
  }

 private:
  struct CallState {
    explicit CallState(sim::Simulator* sim) : done(sim) {}
    sim::Event done;
    MessagePtr response;
    Status error;
    obs::SpanId span = 0;
    obs::OpTimeline* op = nullptr;  // phase timeline (null when untimed)
    size_t resp_bytes = 0;
    bool responded = false;
    void Finish(Status s) {
      if (!done.is_set()) {
        error = std::move(s);
        done.Set();
      }
    }
  };

  net::Fabric* fabric_;
  net::HostId self_;
  rdma::VerbBatcher* batcher_ = nullptr;
  obs::TransportTally tally_;
};

}  // namespace prism::rpc

#endif  // PRISM_SRC_RPC_RPC_H_
