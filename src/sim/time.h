// Virtual time for the discrete-event simulator.
//
// All simulated time is int64 nanoseconds. Helpers accept doubles so
// calibration constants can be written in the units the paper uses (µs).
#ifndef PRISM_SRC_SIM_TIME_H_
#define PRISM_SRC_SIM_TIME_H_

#include <cstdint>

namespace prism::sim {

using TimePoint = int64_t;  // nanoseconds since simulation start
using Duration = int64_t;   // nanoseconds

constexpr Duration Nanos(int64_t n) { return n; }
constexpr Duration Micros(double us) {
  return static_cast<Duration>(us * 1e3);
}
constexpr Duration Millis(double ms) {
  return static_cast<Duration>(ms * 1e6);
}
constexpr Duration Seconds(double s) {
  return static_cast<Duration>(s * 1e9);
}

constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

}  // namespace prism::sim

#endif  // PRISM_SRC_SIM_TIME_H_
