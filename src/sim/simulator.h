// The discrete-event simulator at the heart of the PRISM testbed model.
//
// Single-threaded and deterministic: events at equal timestamps fire in
// insertion (FIFO) order, so a given seed replays bit-identically. Protocol
// code runs as coroutines (see task.h) whose suspensions are simulator
// events; "concurrency" between simulated clients, NICs, and CPU cores is
// event interleaving, which is precisely the concurrency the PRISM paper's
// atomicity arguments are about.
#ifndef PRISM_SRC_SIM_SIMULATOR_H_
#define PRISM_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/time.h"

namespace prism::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. delay may be zero; FIFO order
  // among equal timestamps is guaranteed.
  void Schedule(Duration delay, std::function<void()> fn) {
    PRISM_CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::move(fn));
  }

  void ScheduleAt(TimePoint when, std::function<void()> fn) {
    PRISM_CHECK_GE(when, now_);
    queue_.push(Entry{when, next_seq_++, std::move(fn)});
  }

  // Resumes a coroutine handle at Now() + delay via the event queue. All
  // wakeups in the framework funnel through here so resumption never nests
  // inside another frame (bounded stack depth, strict FIFO fairness).
  void Resume(std::coroutine_handle<> h, Duration delay = 0) {
    Schedule(delay, [h] { h.resume(); });
  }

  // Runs until the event queue is empty.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with timestamp <= deadline; leaves Now() == deadline if the
  // queue drained or the next event is later.
  void RunUntil(TimePoint deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) {
      Step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  void RunFor(Duration d) { RunUntil(now_ + d); }

  // Executes the next event. Returns false if the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    Entry e = queue_.top();
    queue_.pop();
    PRISM_CHECK_GE(e.when, now_);
    now_ = e.when;
    e.fn();
    return true;
  }

  bool idle() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return next_seq_ - queue_.size(); }

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace prism::sim

#endif  // PRISM_SRC_SIM_SIMULATOR_H_
