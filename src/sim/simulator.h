// The discrete-event simulator at the heart of the PRISM testbed model.
//
// Single-threaded and deterministic: events at equal timestamps fire in
// insertion (FIFO) order, so a given seed replays bit-identically. Protocol
// code runs as coroutines (see task.h) whose suspensions are simulator
// events; "concurrency" between simulated clients, NICs, and CPU cores is
// event interleaving, which is precisely the concurrency the PRISM paper's
// atomicity arguments are about.
//
// Engine internals (see DESIGN.md "Event engine internals"):
//  * Events are pooled records with small-buffer-optimized inline callable
//    storage — no per-event heap allocation unless a capture exceeds
//    EventRecord::kInlineBytes (then the callable alone spills to the heap).
//  * Zero-delay events (Schedule(0, ..) / Resume(h) — the dominant class:
//    coroutine wakeups, service-queue handoffs, loopback/drop paths) go
//    through a FIFO ring lane: O(1) push/pop, no comparisons.
//  * Timed events go into a calendar queue: a 1024-slot timing wheel of
//    256 ns slots (~262 µs horizon) with a binary-heap overflow bucket for
//    far-future timers (RPC deadlines, retransmit timeouts). Schedule and
//    pop are O(1) amortized; a slot is sorted once when the wheel reaches
//    it. Overflow timers migrate into the wheel as the horizon advances.
//  * Ordering keys (when, seq) travel in 24-byte EventRef entries separate
//    from the records, so sorts and heap ops touch contiguous memory.
//  * Total order is always (when, seq): the ring and the calendar queue are
//    merged by comparing sequence numbers at equal timestamps, so the
//    determinism contract is bit-identical to the reference binary-heap
//    engine.
#ifndef PRISM_SRC_SIM_SIMULATOR_H_
#define PRISM_SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/time.h"

namespace prism::sim {

// ---- schedule-space exploration hook (src/explore) ----
//
// A ScheduleHook lets a test harness observe and reorder the simulator's
// *enabled set*: all pending events whose timestamp lies within
// [earliest.when, earliest.when + window()]. Events at equal timestamps are
// semantically unordered ties, and events within the window model delivery
// jitter of up to `window()` nanoseconds — both are legal schedules of the
// same program. Soundness bound: an event can never fire before its
// scheduled time, and it fires no later than earliest_pending.when +
// window() (while it is pending it anchors the window), so every event
// executes within [when, when + window()].
//
// The hook must be installed on an empty simulator (before any Schedule
// call). With no hook installed the engine below is untouched — the
// production calendar-queue path runs and (when, seq) replay stays
// bit-identical. With a hook that always picks index 0 the execution order
// is also bit-identical (index 0 is the least (when, seq) entry), which is
// the identity-schedule property obs_determinism_test pins down.

// One concurrently-enabled event, exposed to ScheduleHook::Pick. Entries
// arrive sorted by (when, seq); seq is the global scheduling sequence
// number, so a hook can recognize FIFO order among ties.
struct EnabledEvent {
  TimePoint when = 0;
  uint64_t seq = 0;
};

class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  // Width of the enabled window beyond the earliest pending timestamp.
  // 0 restricts reordering to same-timestamp ties.
  virtual Duration window() const = 0;

  // Picks the event to fire next from `enabled` (size >= 1, sorted by
  // (when, seq)). Out-of-range returns fall back to index 0. Called exactly
  // once per fired event, so implementations may count invocations to
  // address decisions by step index.
  virtual size_t Pick(const std::vector<EnabledEvent>& enabled) = 0;
};

namespace internal {

// A pooled, type-erased event callable. It lives in `storage` (or, for
// oversized captures, on the heap with its pointer in `storage`). `op`
// invokes and/or destroys it; `next` links the pool freelist.
struct EventRecord {
  static constexpr size_t kInlineBytes = 64;

  EventRecord* next;
  void (*op)(EventRecord*, bool run);
  alignas(std::max_align_t) unsigned char storage[kInlineBytes];
};

// Ordering handle for a scheduled event. Kept separate from the record so
// comparison-heavy paths (slot sorts, the overflow heap, the ring/timer
// merge) never dereference the records themselves.
struct EventRef {
  TimePoint when;
  uint64_t seq;
  EventRecord* rec;
};

inline bool EarlierThan(const EventRef& a, const EventRef& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

template <typename F>
void InlineThunk(EventRecord* e, bool run) {
  F* f = std::launder(reinterpret_cast<F*>(e->storage));
  if (run) (*f)();
  if constexpr (!std::is_trivially_destructible_v<F>) f->~F();
}

template <typename F>
void HeapThunk(EventRecord* e, bool run) {
  F* f;
  std::memcpy(&f, e->storage, sizeof(f));
  if (run) (*f)();
  delete f;
}

// Slab allocator for EventRecords: blocks of 512, freelist-linked. Records
// are never returned to the OS until the Simulator dies, so steady-state
// scheduling performs zero heap allocations.
class EventPool {
 public:
  EventRecord* Alloc() {
    if (free_ == nullptr) Grow();
    EventRecord* e = free_;
    free_ = e->next;
    return e;
  }

  void Free(EventRecord* e) {
    e->next = free_;
    free_ = e;
  }

  size_t blocks() const { return blocks_.size(); }

 private:
  static constexpr size_t kBlockSize = 512;

  void Grow() {
    blocks_.emplace_back(new EventRecord[kBlockSize]);
    EventRecord* block = blocks_.back().get();
    for (size_t i = 0; i < kBlockSize; ++i) {
      block[i].next = (i + 1 < kBlockSize) ? &block[i + 1] : nullptr;
    }
    free_ = block;
  }

  std::vector<std::unique_ptr<EventRecord[]>> blocks_;
  EventRecord* free_ = nullptr;
};

// Growable power-of-two ring buffer of EventRefs: the zero-delay FIFO lane.
class EventRing {
 public:
  bool empty() const { return head_ == tail_; }
  size_t size() const { return tail_ - head_; }

  void Push(const EventRef& e) {
    if (tail_ - head_ == buf_.size()) Grow();
    buf_[tail_++ & mask_] = e;
  }

  const EventRef& Front() const { return buf_[head_ & mask_]; }
  void Pop() { ++head_; }

 private:
  void Grow() {
    const size_t old_cap = buf_.size();
    const size_t new_cap = old_cap == 0 ? 256 : old_cap * 2;
    std::vector<EventRef> grown(new_cap);
    for (size_t i = 0; i < old_cap; ++i) {
      grown[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(grown);
    head_ = 0;
    tail_ = old_cap;
    mask_ = new_cap - 1;
  }

  std::vector<EventRef> buf_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t mask_ = 0;
};

}  // namespace internal

class Simulator {
 public:
  // Engine instrumentation, exposed for benches and allocation tests.
  struct Stats {
    uint64_t zero_delay_events = 0;  // took the FIFO ring lane
    uint64_t timer_events = 0;       // landed in the timing wheel
    uint64_t overflow_events = 0;    // beyond the wheel horizon at insert
    uint64_t heap_callables = 0;     // capture too big for inline storage
    uint64_t pool_blocks = 0;        // event-record slabs allocated
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    // Dispose (without running) every pending callable.
    for (const internal::EventRef& e : hooked_) DisposeOnly(e);
    while (!ring_.empty()) {
      DisposeOnly(ring_.Front());
      ring_.Pop();
    }
    for (size_t i = due_idx_; i < due_.size(); ++i) DisposeOnly(due_[i]);
    if (wheel_ != nullptr) {
      for (size_t s = 0; s < kSlots; ++s) {
        for (const internal::EventRef& e : wheel_->slot[s]) DisposeOnly(e);
      }
    }
    for (const internal::EventRef& e : overflow_) DisposeOnly(e);
  }

  TimePoint Now() const { return now_; }

  // Installs (or clears, with nullptr) the exploration hook. Only legal on
  // an empty simulator: the hooked lane and the production lanes never hold
  // events at the same time.
  void SetScheduleHook(ScheduleHook* hook) {
    PRISM_CHECK_EQ(pending_, size_t{0})
        << "ScheduleHook must be installed before any event is scheduled";
    hook_ = hook;
  }

  ScheduleHook* schedule_hook() const { return hook_; }

  // Schedules `fn` to run at Now() + delay. delay may be zero; FIFO order
  // among equal timestamps is guaranteed. Accepts any callable, including
  // move-only ones; it is move-constructed into pooled inline storage.
  template <typename F>
  void Schedule(Duration delay, F&& fn) {
    PRISM_CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  void ScheduleAt(TimePoint when, F&& fn) {
    PRISM_CHECK_GE(when, now_);
    internal::EventRecord* rec = pool_.Alloc();
    Bind(rec, std::forward<F>(fn));
    const internal::EventRef e{when, next_seq_++, rec};
    ++pending_;
    if (hook_ != nullptr) {
      // Exploration lane: one sorted vector, kept ordered by (when, seq) at
      // insert. Engine stats are not maintained here — perturbed runs are
      // not comparable to production lane counts anyway.
      hooked_.insert(std::upper_bound(hooked_.begin(), hooked_.end(), e,
                                      internal::EarlierThan),
                     e);
      return;
    }
    if (when == now_) {
      ++stats_.zero_delay_events;
      ring_.Push(e);
    } else {
      if (SlotOf(when) > opened_slot_ + kSlots) {
        ++stats_.overflow_events;
      } else {
        ++stats_.timer_events;
      }
      InsertTimer(e);
    }
  }

  // Resumes a coroutine handle at Now() + delay via the event queue. All
  // wakeups in the framework funnel through here so resumption never nests
  // inside another frame (bounded stack depth, strict FIFO fairness).
  void Resume(std::coroutine_handle<> h, Duration delay = 0) {
    Schedule(delay, ResumeEvent{h});
  }

  // Runs until the event queue is empty.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with timestamp <= deadline; leaves Now() == deadline if the
  // queue drained or the next event is later.
  void RunUntil(TimePoint deadline) {
    if (hook_ != nullptr) {
      while (StepHooked(&deadline)) {
      }
      if (now_ < deadline) now_ = deadline;
      return;
    }
    for (;;) {
      const internal::EventRef* e = PeekNext();
      if (e == nullptr || e->when > deadline) break;
      PopAndFire(*e);
    }
    if (now_ < deadline) now_ = deadline;
  }

  void RunFor(Duration d) { RunUntil(now_ + d); }

  // Executes the next event. Returns false if the queue is empty.
  bool Step() {
    if (hook_ != nullptr) return StepHooked(nullptr);
    const internal::EventRef* e = PeekNext();
    if (e == nullptr) return false;
    PopAndFire(*e);
    return true;
  }

  bool idle() const { return pending_ == 0; }
  size_t pending_events() const { return pending_; }
  uint64_t executed_events() const { return next_seq_ - pending_; }

  // Timestamp of the earliest pending event without firing it, or kNoEvent
  // when the queue is empty. The parallel cluster coordinator (psim.h) uses
  // this to compute the global minimum next-event time between windows.
  static constexpr TimePoint kNoEvent = INT64_MAX;
  TimePoint NextTime() {
    if (hook_ != nullptr) {
      return hooked_.empty() ? kNoEvent : hooked_.front().when;
    }
    const internal::EventRef* e = PeekNext();
    return e == nullptr ? kNoEvent : e->when;
  }

  // Optional execution log: while set, every fired event appends its
  // (when, seq) key in execution order. psim_determinism_test compares
  // per-host logs across --cores counts; null (the default) costs one
  // predictable branch per event.
  void set_exec_log(std::vector<EnabledEvent>* log) { exec_log_ = log; }

  const Stats& stats() const {
    stats_.pool_blocks = pool_.blocks();
    return stats_;
  }

 private:
  struct ResumeEvent {
    std::coroutine_handle<> h;
    void operator()() const { h.resume(); }
  };

  // ---- exploration lane (ScheduleHook installed) ----
  //
  // Fires one event chosen by the hook from the enabled window. `deadline`
  // (when non-null) restricts the window to events at or before it, so
  // RunUntil keeps its contract under exploration. The chosen event fires
  // at max(now_, e.when): picking a later enabled event first *delays* the
  // earlier ones, modelling delivery jitter bounded by the hook's window.
  bool StepHooked(const TimePoint* deadline) {
    if (hooked_.empty()) return false;
    if (deadline != nullptr && hooked_.front().when > *deadline) return false;
    TimePoint cutoff = hooked_.front().when + hook_->window();
    if (deadline != nullptr && cutoff > *deadline) cutoff = *deadline;
    size_t n = 1;
    while (n < hooked_.size() && hooked_[n].when <= cutoff) ++n;
    enabled_scratch_.clear();
    for (size_t i = 0; i < n; ++i) {
      enabled_scratch_.push_back({hooked_[i].when, hooked_[i].seq});
    }
    size_t pick = hook_->Pick(enabled_scratch_);
    if (pick >= n) pick = 0;
    const internal::EventRef e = hooked_[pick];
    hooked_.erase(hooked_.begin() + static_cast<ptrdiff_t>(pick));
    --pending_;
    if (e.when > now_) now_ = e.when;
    if (exec_log_ != nullptr) exec_log_->push_back({e.when, e.seq});
    e.rec->op(e.rec, /*run=*/true);
    pool_.Free(e.rec);
    return true;
  }

  // ---- callable binding ----

  template <typename F>
  void Bind(internal::EventRecord* e, F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= internal::EventRecord::kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(e->storage)) D(std::forward<F>(fn));
      e->op = &internal::InlineThunk<D>;
    } else {
      D* heap = new D(std::forward<F>(fn));
      std::memcpy(e->storage, &heap, sizeof(heap));
      e->op = &internal::HeapThunk<D>;
      ++stats_.heap_callables;
    }
  }

  static void DisposeOnly(const internal::EventRef& e) {
    e.rec->op(e.rec, /*run=*/false);
  }

  // ---- calendar queue (timing wheel + overflow heap) ----

  static constexpr int kSlotShift = 8;    // 256 ns per slot
  static constexpr size_t kSlots = 1024;  // ~262 µs horizon
  static constexpr uint64_t kSlotMask = kSlots - 1;

  struct Wheel {
    std::vector<internal::EventRef> slot[kSlots];
    uint64_t bitmap[kSlots / 64] = {};
    uint64_t count = 0;
  };

  static uint64_t SlotOf(TimePoint when) {
    return static_cast<uint64_t>(when) >> kSlotShift;
  }

  // Heap comparator: a "later than" order so the heap front is earliest.
  struct OverflowLater {
    bool operator()(const internal::EventRef& a,
                    const internal::EventRef& b) const {
      return internal::EarlierThan(b, a);
    }
  };

  void InsertTimer(const internal::EventRef& e) {
    const uint64_t slot = SlotOf(e.when);
    if (slot <= opened_slot_) {
      // Lands in (or before) the slot currently being drained: sorted-insert
      // into the due list. Everything at index < due_idx_ already fired and
      // has (when, seq) below the new event, so the search starts at due_idx_.
      due_.insert(std::upper_bound(due_.begin() + due_idx_, due_.end(), e,
                                   internal::EarlierThan),
                  e);
      return;
    }
    if (slot > opened_slot_ + kSlots) {
      overflow_.push_back(e);
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      return;
    }
    if (wheel_ == nullptr) wheel_ = std::make_unique<Wheel>();
    const size_t idx = slot & kSlotMask;
    if (wheel_->slot[idx].empty()) {
      wheel_->bitmap[idx / 64] |= uint64_t{1} << (idx % 64);
    }
    wheel_->slot[idx].push_back(e);
    ++wheel_->count;
  }

  // Absolute slot of the next nonempty wheel slot after opened_slot_, or
  // UINT64_MAX when the wheel is empty. All live wheel slots lie in
  // (opened_slot_, opened_slot_ + kSlots], so each wheel index maps back to
  // a unique absolute slot in that window.
  uint64_t NextWheelSlot() const {
    if (wheel_ == nullptr || wheel_->count == 0) return UINT64_MAX;
    constexpr size_t kWords = kSlots / 64;
    const uint64_t start = (opened_slot_ + 1) & kSlotMask;
    // Circular first-set-bit scan from `start`: the first hit in circular
    // order is the nearest future slot. The final iteration revisits the
    // starting word for the wrapped-around low bits.
    for (size_t k = 0; k <= kWords; ++k) {
      const size_t w = (start / 64 + k) % kWords;
      uint64_t bits = wheel_->bitmap[w];
      if (k == 0) {
        bits &= ~uint64_t{0} << (start % 64);
      } else if (k == kWords) {
        bits &= (start % 64 == 0) ? 0 : (uint64_t{1} << (start % 64)) - 1;
      }
      if (bits == 0) continue;
      const uint64_t idx =
          w * 64 + static_cast<uint64_t>(__builtin_ctzll(bits));
      return opened_slot_ + 1 + ((idx - start) & kSlotMask);
    }
    return UINT64_MAX;
  }

  // Moves the contents of absolute slot `slot` into due_ (sorted), advances
  // opened_slot_, and migrates overflow timers that the new horizon covers.
  void OpenSlot(uint64_t slot) {
    opened_slot_ = slot;
    if (due_idx_ == due_.size()) {
      due_.clear();
      due_idx_ = 0;
    }
    if (wheel_ != nullptr) {
      const size_t idx = slot & kSlotMask;
      std::vector<internal::EventRef>& sv = wheel_->slot[idx];
      if (!sv.empty()) {
        SortSlotIntoDue(sv);
        wheel_->count -= sv.size();
        sv.clear();
        wheel_->bitmap[idx / 64] &= ~(uint64_t{1} << (idx % 64));
      }
    }
    // Pull far-future timers that the advanced horizon now covers. They
    // re-enter through InsertTimer, which routes them to their wheel slot
    // (or sorted into due_ when they belong to the slot just opened).
    while (!overflow_.empty() &&
           SlotOf(overflow_.front().when) <= slot + kSlots) {
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      const internal::EventRef e = overflow_.back();
      overflow_.pop_back();
      InsertTimer(e);
    }
  }

  // Appends the contents of a wheel slot to due_ in (when, seq) order.
  //
  // Entries in a slot vector share the high bits of `when` (same slot), and
  // equal-`when` entries already sit in seq order: appends during normal
  // scheduling carry monotonically increasing seq, and overflow migration —
  // the only other producer — always completes for a slot before the slot
  // re-admits direct inserts (InsertTimer routes to the wheel only when the
  // slot is inside the horizon, and OpenSlot drains overflow up to the new
  // horizon before returning). A stable counting sort on the low kSlotShift
  // bits of `when` therefore yields the full (when, seq) order with two
  // linear passes and zero comparisons.
  void SortSlotIntoDue(const std::vector<internal::EventRef>& sv) {
    const size_t base = due_.size();
    constexpr size_t kWidth = size_t{1} << kSlotShift;
    if (sv.size() < 32) {
      due_.insert(due_.end(), sv.begin(), sv.end());
      std::sort(due_.begin() + base, due_.end(), internal::EarlierThan);
      return;
    }
    uint32_t start[kWidth + 1] = {};
    for (const internal::EventRef& e : sv) {
      ++start[(static_cast<uint64_t>(e.when) & (kWidth - 1)) + 1];
    }
    for (size_t i = 1; i <= kWidth; ++i) start[i] += start[i - 1];
    due_.resize(base + sv.size());
    for (const internal::EventRef& e : sv) {
      due_[base + start[static_cast<uint64_t>(e.when) & (kWidth - 1)]++] = e;
    }
  }

  // Earliest pending timer event, or nullptr. Primes due_ so a subsequent
  // PopTimer() is O(1).
  const internal::EventRef* PeekTimer() {
    if (due_idx_ < due_.size()) return &due_[due_idx_];
    const uint64_t ws = NextWheelSlot();
    if (ws != UINT64_MAX) {
      // Wheel timers always precede overflow timers: wheel slots are within
      // the horizon, overflow slots beyond it.
      OpenSlot(ws);
      return &due_[due_idx_];
    }
    if (!overflow_.empty()) {
      OpenSlot(SlotOf(overflow_.front().when));
      return &due_[due_idx_];
    }
    return nullptr;
  }

  // ---- merged pop across the ring lane and the calendar queue ----

  const internal::EventRef* PeekNext() {
    const internal::EventRef* timer = PeekTimer();
    if (ring_.empty()) return timer;
    const internal::EventRef* front = &ring_.Front();
    if (timer != nullptr && internal::EarlierThan(*timer, *front)) {
      return timer;
    }
    return front;
  }

  // `e` must be a copy of the ref PeekNext() just returned (firing the
  // callable can grow due_/ring_ and invalidate the pointer).
  void PopAndFire(internal::EventRef e) {
    if (!ring_.empty() && ring_.Front().rec == e.rec) {
      ring_.Pop();
    } else {
      ++due_idx_;
    }
    --pending_;
    PRISM_CHECK_GE(e.when, now_);
    now_ = e.when;
    if (exec_log_ != nullptr) exec_log_->push_back({e.when, e.seq});
    // Hide the cold-record miss of the *next* event behind this callable.
    if (due_idx_ < due_.size()) __builtin_prefetch(due_[due_idx_].rec);
    if (!ring_.empty()) __builtin_prefetch(ring_.Front().rec);
    e.rec->op(e.rec, /*run=*/true);
    pool_.Free(e.rec);
  }

  TimePoint now_ = 0;
  uint64_t next_seq_ = 0;
  size_t pending_ = 0;
  mutable Stats stats_;
  std::vector<EnabledEvent>* exec_log_ = nullptr;

  internal::EventPool pool_;
  internal::EventRing ring_;

  // Exploration lane (empty unless a ScheduleHook is installed): every
  // pending event, sorted by (when, seq).
  ScheduleHook* hook_ = nullptr;
  std::vector<internal::EventRef> hooked_;
  std::vector<EnabledEvent> enabled_scratch_;

  // Calendar queue state. due_ holds every pending timer with slot <=
  // opened_slot_, sorted by (when, seq); due_idx_ is the consumed prefix.
  std::vector<internal::EventRef> due_;
  size_t due_idx_ = 0;
  uint64_t opened_slot_ = 0;
  std::unique_ptr<Wheel> wheel_;
  std::vector<internal::EventRef> overflow_;  // min-heap by (when, seq)
};

}  // namespace prism::sim

#endif  // PRISM_SRC_SIM_SIMULATOR_H_
