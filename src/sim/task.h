// Lazy coroutine Task<T> integrated with the discrete-event simulator.
//
// Protocol code (ABD quorum phases, FaRM's three-phase commit, retry loops)
// is written as ordinary-looking sequential coroutines:
//
//   sim::Task<Status> Put(...) {
//     auto slot = co_await client.Read(...);
//     ...
//     co_return OkStatus();
//   }
//
// Semantics:
//  * Tasks are lazy: nothing runs until the task is co_awaited (or handed to
//    Spawn). Awaiting starts the child via symmetric transfer and resumes the
//    parent when the child finishes.
//  * Tasks are move-only and own their coroutine frame; the awaiting frame
//    keeps the child Task alive across the suspension, so there is no
//    reference counting.
//  * Exceptions terminate: error flow uses Status/Result<T> (see status.h).
//  * Spawn() runs a Task<void> as a detached root; the simulator can report
//    how many spawned roots are still live (RunUntilIdle diagnostics).
//
// WARNING — GCC 12 coroutine lowering bugs, and the conventions this
// codebase uses to stay clear of them (each was bisected to a minimal
// reproducer; all manifest as double destruction / frame corruption that
// ASan reports far from the cause):
//
//  1. Do NOT pass capturing lambdas (or std::functions wrapping them) as
//     by-value parameters to coroutines. The parameter-to-frame copy is
//     miscompiled for closure types. Pass plain data (values,
//     shared_ptr<Args>) and run effects in the awaiting coroutine's body.
//     Lambda *coroutines* handed to Spawn are safe — the driver keeps the
//     closure alive in its frame.
//  2. Do NOT write `co_return co_await Child(...)`. Assign to a named local
//     first, then co_return it.
//  3. Do NOT materialize *nested* nontrivial temporaries inside a co_await
//     full-expression: `co_await c.Call(Make(Inner{"x"}))` double-destroys
//     Inner{"x"}. Direct-argument temporaries (`co_await c.Call(Make())`)
//     are fine. Hoist nested construction into named locals before the
//     co_await statement.
//  4. Result<T> avoids std::variant storage (see common/status.h) because
//     variant temporaries in co_await initializations are miscompiled.
#ifndef PRISM_SRC_SIM_TASK_H_
#define PRISM_SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/simulator.h"

namespace prism::sim {

namespace internal {

// Shared continuation plumbing for Task<T> promises.
struct PromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  [[noreturn]] void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool done() const { return !handle_ || handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        PRISM_CHECK(handle.promise().value.has_value())
            << "Task finished without co_return value";
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Simulator;
  template <typename U>
  friend class Task;
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool done() const { return !handle_ || handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

// ---- detached root tasks ----

namespace internal {

// Fire-and-forget driver coroutine: starts immediately, self-destroys at
// final_suspend (suspend_never), and owns the driven Task in its frame.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() noexcept { std::terminate(); }
  };
};

}  // namespace internal

// Tracks how many detached roots are still running; owned by test/bench
// harnesses that want to assert clean shutdown.
class TaskTracker {
 public:
  void OnStart() { ++live_; }
  void OnFinish() {
    PRISM_CHECK_GT(live_, 0);
    --live_;
  }
  int live() const { return live_; }

 private:
  int live_ = 0;
};

namespace internal {

// Drives a ready-made task. The Task parameter is moved into the driver
// frame, which owns it until completion.
inline Detached DriveTask(Task<void> task, TaskTracker* tracker) {
  if (tracker != nullptr) tracker->OnStart();
  co_await std::move(task);
  if (tracker != nullptr) tracker->OnFinish();
}

// Drives a callable returning Task<void>. The callable itself (typically a
// capturing lambda) is copied into the driver frame, keeping its closure
// alive for the lifetime of the coroutine. This matters: a capturing lambda
// coroutine's frame refers back into the closure object, so invoking a
// temporary lambda and detaching the resulting task dangles. Passing the
// callable instead is always safe.
template <typename F>
Detached DriveCallable(F fn, TaskTracker* tracker) {
  if (tracker != nullptr) tracker->OnStart();
  co_await fn();
  if (tracker != nullptr) tracker->OnFinish();
}

}  // namespace internal

// Runs a detached root task. Two forms:
//   Spawn(SomeCoroutineFunction(args...))   — task from a *non-capturing*
//       source (free function, member function on a long-lived object);
//   Spawn([=]() -> Task<void> { ... })      — callable form; required for
//       capturing lambdas (the closure is kept alive in the driver frame).
// The task begins executing at the *current* event, synchronously up to its
// first suspension, matching the semantics of spawning a thread.
inline void Spawn(Task<void> task, TaskTracker* tracker = nullptr) {
  internal::DriveTask(std::move(task), tracker);
}

template <typename F>
  requires std::is_invocable_r_v<Task<void>, F>
void Spawn(F&& fn, TaskTracker* tracker = nullptr) {
  internal::DriveCallable(std::forward<F>(fn), tracker);
}

// ---- awaitables tied to the simulator ----

// co_await SleepFor(sim, d): resume after d simulated nanoseconds.
struct SleepAwaiter {
  Simulator* sim;
  Duration delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim->Resume(h, delay);
  }
  void await_resume() const noexcept {}
};

inline SleepAwaiter SleepFor(Simulator* sim, Duration d) {
  PRISM_CHECK_GE(d, 0);
  return SleepAwaiter{sim, d};
}

// co_await Yield(sim): requeue behind events already scheduled for "now".
inline SleepAwaiter Yield(Simulator* sim) { return SleepAwaiter{sim, 0}; }

}  // namespace prism::sim

#endif  // PRISM_SRC_SIM_TASK_H_
