// Synchronization primitives for simulated tasks.
//
// All wakeups are funneled through Simulator::Resume (never nested resumption)
// so waiters run in strict FIFO arrival order at the timestamp of the wakeup.
// Resume(h) is the simulator's zero-delay fast path — a pooled O(1) ring push
// with the coroutine handle stored inline, no heap allocation — so handoffs
// here (Event::Set fan-out, Channel push-to-consumer, Mutex/ServiceQueue
// ownership transfer) cost a few nanoseconds of real time per wakeup.
//
//  * Event        — one-shot manual event, any number of waiters.
//  * Quorum       — "k of n" join used by ABD and PRISM-TX: responders call
//                   Arrive(ok); waiters wake when k successes arrive, or when
//                   all n responses are in (quorum unreachable).
//  * Channel<T>   — unbounded MPSC-style queue with awaiting consumers; the
//                   request queue of every simulated service.
//  * Mutex        — FIFO coroutine mutex (used by server-side daemons).
//  * ServiceQueue — N identical servers with a FIFO queue; models CPU core
//                   pools and NIC processing pipelines. The queueing here is
//                   what bends the throughput–latency curves in Figs. 3–10.
#ifndef PRISM_SRC_SIM_SYNC_H_
#define PRISM_SRC_SIM_SYNC_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace prism::sim {

class Event {
 public:
  explicit Event(Simulator* sim) : sim_(sim) {}

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->Resume(h);
    waiters_.clear();
  }

  bool is_set() const { return set_; }

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// k-of-n barrier with success/failure accounting.
class Quorum {
 public:
  Quorum(Simulator* sim, int need, int total)
      : done_(sim), need_(need), total_(total) {
    PRISM_CHECK_GT(need, 0);
    PRISM_CHECK_LE(need, total);
  }

  void Arrive(bool success = true) {
    PRISM_CHECK_LT(arrived_, total_);
    ++arrived_;
    if (success) ++successes_;
    // Wake as soon as the outcome is decided: quorum reached, or no longer
    // reachable even if every outstanding response succeeds.
    if (successes_ >= need_ ||
        successes_ + (total_ - arrived_) < need_) {
      done_.Set();
    }
  }

  // Resolves true iff `need` successes arrived.
  Task<bool> Wait() {
    co_await done_.Wait();
    co_return successes_ >= need_;
  }

  bool reached() const { return successes_ >= need_; }
  int arrived() const { return arrived_; }
  int successes() const { return successes_; }

 private:
  Event done_;
  int need_;
  int total_;
  int arrived_ = 0;
  int successes_ = 0;
};

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator* sim) : sim_(sim) {}

  void Push(T item) {
    items_.push_back(std::move(item));
    if (!consumers_.empty()) {
      auto h = consumers_.front();
      consumers_.pop_front();
      sim_->Resume(h);
    }
  }

  // Awaits the next item. Multiple concurrent consumers are served FIFO.
  Task<T> Pop() {
    while (items_.empty()) {
      co_await Park();
    }
    T item = std::move(items_.front());
    items_.pop_front();
    co_return item;
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

 private:
  auto Park() {
    struct Awaiter {
      Channel* channel;
      bool await_ready() const noexcept { return !channel->items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        channel->consumers_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> consumers_;
};

class Mutex {
 public:
  explicit Mutex(Simulator* sim) : sim_(sim) {}

  auto Lock() {
    struct Awaiter {
      Mutex* mutex;
      bool await_ready() const noexcept {
        if (!mutex->locked_) {
          mutex->locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        mutex->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Unlock() {
    PRISM_CHECK(locked_);
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->Resume(h);  // lock ownership transfers to the woken waiter
    } else {
      locked_ = false;
    }
  }

  bool locked() const { return locked_; }

 private:
  Simulator* sim_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// N-server FIFO queueing station.
class ServiceQueue {
 public:
  ServiceQueue(Simulator* sim, int servers) : sim_(sim), servers_(servers) {
    PRISM_CHECK_GT(servers, 0);
  }

  // Occupies one server for `service` time; resumes the caller when done.
  Task<void> Use(Duration service) {
    co_await Acquire();
    co_await SleepFor(sim_, service);
    Release();
  }

  int busy() const { return busy_; }
  int servers() const { return servers_; }
  size_t queue_length() const { return waiters_.size(); }
  // Aggregate busy time across servers (server-seconds), maintained as a
  // time integral of the busy level: utilization = busy/(servers*elapsed).
  Duration total_busy() const {
    return busy_integral_ + busy_ * (sim_->Now() - last_change_);
  }

  // Manual hold: co_await Acquire(), do interleaved work, then Release().
  // Used when a server must stay occupied across several awaits (e.g. a
  // software-PRISM core executing each op of a chain in its own event).
  // Prefer Use() when the hold is a single fixed duration.
  struct AcquireAwaiter {
    ServiceQueue* q;
    bool await_ready() const noexcept {
      if (q->busy_ < q->servers_) {
        q->OnBusyChange();
        ++q->busy_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      q->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  AcquireAwaiter Acquire() { return AcquireAwaiter{this}; }

  void Release() {
    PRISM_CHECK_GT(busy_, 0);
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->Resume(h);  // server slot passes directly to the next waiter
    } else {
      OnBusyChange();
      --busy_;
    }
  }

 private:
  void OnBusyChange() const {
    busy_integral_ += busy_ * (sim_->Now() - last_change_);
    last_change_ = sim_->Now();
  }

  Simulator* sim_;
  int servers_;
  int busy_ = 0;
  mutable Duration busy_integral_ = 0;
  mutable TimePoint last_change_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace prism::sim

#endif  // PRISM_SRC_SIM_SYNC_H_
