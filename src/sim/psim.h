// Conservative time-windowed parallel DES across per-host event engines.
//
// One cluster simulation is sharded into one sim::Simulator per host
// (each keeping the pooled-event/calendar-queue fast path and its own
// bit-reproducible (when, seq) order), grouped into P partitions that run
// on P worker threads. Cross-host traffic leaves the engines entirely and
// travels as timestamped WireMsg records through single-writer inbox lanes;
// the destination partition merges them back into its engines at window
// barriers in the canonical (send_when, src_host, send_seq) order.
//
// Window protocol (classic conservative lookahead, Fujimoto; SimBricks
// composes device simulators the same way): every cross-host delivery pays
// at least L = lookahead nanoseconds of link latency, so once the global
// minimum next-event time N is known, every partition may execute all
// events with when < B = N + L without synchronization — no message
// produced inside the window can demand delivery before B. Each window is
// two barriers:
//
//   1. reduce:  every partition publishes min over its engines' NextTime();
//               all workers read the array and agree on N (and B = N + L).
//               N == kNoEvent on every engine terminates the run.
//   2. execute: each partition runs its engines to RunUntil(B - 1)
//               (inclusive deadline, so strictly below B). Cross-host sends
//               are stamped and appended to the (dst_host × src_partition)
//               lane — each lane has exactly one writer per window.
//      barrier; then each partition drains the lanes of its own hosts,
//      sorted by (send_when, src_host, send_seq), resolving ingress
//      queueing in that order and inserting deliveries into the owning
//      engine. Loop back to 1 (the reduction sees the drained deliveries).
//
// Determinism: engines are per HOST, not per partition, and the canonical
// merge key is partition-free, so the executed schedule depends only on the
// host graph — any P ≥ 2 produces bit-identical per-host (when, seq)
// executions (psim_determinism_test pins this). Windows advance by at least
// L per iteration: sends inside window k have send_when ≥ N_k, so their
// arrivals land at ≥ N_k + L = B_k and the next reduction finds
// N_{k+1} ≥ B_k.
//
// Serial fallback: anything that needs the *global* serial event order —
// zero lookahead, wire-loss RNG draws, chaos fault schedules, span tracing,
// exploration ScheduleHooks, or an explicit --cores=1 — downgrades the
// cluster to a single shared engine with a logged reason. In that mode
// engine(h) returns the same Simulator for every host and net::Fabric takes
// its unmodified serial path, byte-identical to the pre-parallel core.
#ifndef PRISM_SRC_SIM_PSIM_H_
#define PRISM_SRC_SIM_PSIM_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace prism::sim {

// One cross-host message in flight between partitions. Timing is resolved
// in two halves mirroring the serial fabric's cut-through model: the sender
// charges egress queueing at send time (depart/arrival are final), the
// receiver charges ingress queueing at drain time, in canonical order.
struct WireMsg {
  TimePoint send_when = 0;  // sender's Now() at the Send call
  uint64_t send_seq = 0;    // per-src-host send counter (canonical tiebreak)
  uint32_t src_host = 0;
  uint32_t dst_host = 0;
  TimePoint arrival = 0;  // last bit reaches dst, before ingress queueing
  Duration ser = 0;       // serialization time (ingress occupancy)
  std::function<void()> deliver;
};

// Sense-reversing spin barrier. Each worker keeps its own sense flag and
// passes it to every Wait; acquire/release on the shared flag publishes all
// pre-barrier writes (lane appends, min-time slots) to every waiter.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  void Wait(bool* sense) {
    *sense = !*sense;
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      flag_.store(*sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (flag_.load(std::memory_order_acquire) != *sense) {
        if (++spins >= kSpinsBeforeYield) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  static constexpr int kSpinsBeforeYield = 4096;
  const int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> flag_{false};
};

class ClusterSim {
 public:
  struct Stats {
    uint64_t windows = 0;   // conservative time windows executed
    uint64_t barriers = 0;  // barrier crossings (2 per window)
    int partitions = 0;     // worker threads the run used
    uint64_t wire_messages = 0;  // cross-host messages merged at barriers
  };

  // `cores` is the requested intra-simulation parallelism; the run uses
  // min(cores, hosts) partitions. cores <= 1 is the serial mode.
  explicit ClusterSim(int cores) : cores_(cores < 1 ? 1 : cores) {}
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  // Collapses the cluster onto one shared serial engine, recording why.
  // Legal only before any per-host engine has been handed out (i.e. before
  // hosts are added to the fabric): after that the binding of protocol
  // state to engines can no longer be changed.
  void DowngradeToSerial(std::string reason) {
    if (!parallel()) {
      if (serial_reason_.empty()) serial_reason_ = std::move(reason);
      return;
    }
    PRISM_CHECK_LE(engines_.size(), size_t{1})
        << "serial downgrade after per-host engines were handed out";
    serial_reason_ = std::move(reason);
    std::fprintf(stderr, "psim: falling back to the serial engine: %s\n",
                 serial_reason_.c_str());
  }

  bool parallel() const { return cores_ > 1 && serial_reason_.empty(); }
  const std::string& serial_reason() const { return serial_reason_; }
  int requested_cores() const { return cores_; }

  // The event engine owning `host`. Parallel mode: one engine per host
  // (partition-independent, which is what makes any worker count execute
  // the same schedule). Serial mode: the single shared engine.
  Simulator* engine(size_t host) {
    if (!parallel()) {
      if (engines_.empty()) engines_.push_back(std::make_unique<Simulator>());
      return engines_[0].get();
    }
    if (engines_.size() <= host) {
      PRISM_CHECK(!started_) << "hosts must be added before ClusterSim::Run";
      while (engines_.size() <= host) {
        engines_.push_back(std::make_unique<Simulator>());
      }
    }
    return engines_[host].get();
  }

  size_t engine_count() const { return engines_.size(); }

  // Minimum cross-host latency (net::CostModel::MinCrossHostLatency).
  // Non-positive lookahead cannot make progress conservatively — it
  // downgrades to serial instead of deadlocking in zero-width windows.
  void SetLookahead(Duration l) {
    if (l <= 0) {
      DowngradeToSerial("zero cross-host lookahead (MinCrossHostLatency <= 0)");
      return;
    }
    lookahead_ = l;
  }
  Duration lookahead() const { return lookahead_; }

  // Installed by net::Fabric: resolves one drained message's ingress
  // queueing and schedules its delivery on the destination engine. Called
  // on the destination host's owning worker, in canonical order.
  void SetDeliver(std::function<void(WireMsg&&)> fn) {
    deliver_ = std::move(fn);
  }

  // Appends a stamped cross-host message. During the run this must be
  // called from the sending host's owning worker (the fabric send path runs
  // inside that host's events); before the run (workload setup spawning
  // client coroutines on the main thread) messages are buffered and merged
  // ahead of the first window.
  void PostWire(WireMsg&& m) {
    if (!started_) {
      setup_msgs_.push_back(std::move(m));
      return;
    }
    PRISM_CHECK_EQ(tl_partition_, PartitionOf(m.src_host))
        << "cross-host send posted off its source partition";
    lanes_[m.dst_host * static_cast<size_t>(partitions_) +
           static_cast<size_t>(tl_partition_)]
        .push_back(std::move(m));
  }

  // Runs every engine to completion. Parallel mode executes the window
  // protocol documented above on min(cores, hosts) threads; serial mode is
  // exactly Simulator::Run on the shared engine.
  void Run() {
    if (!parallel()) {
      engine(0)->Run();
      return;
    }
    PRISM_CHECK(lookahead_ > 0) << "ClusterSim::Run without lookahead";
    PRISM_CHECK(deliver_ != nullptr) << "ClusterSim::Run without a fabric";
    PRISM_CHECK(!engines_.empty());
    const int hosts = static_cast<int>(engines_.size());
    partitions_ = std::min(cores_, hosts);
    stats_.partitions = partitions_;
    lanes_.assign(engines_.size() * static_cast<size_t>(partitions_), {});
    min_times_.assign(static_cast<size_t>(partitions_), Simulator::kNoEvent);
    started_ = true;

    // Setup-time sends (client spawns ran to first suspension on the main
    // thread) merge before the first window, in canonical order.
    stats_.wire_messages += setup_msgs_.size();
    DrainCanonical(&setup_msgs_);

    barrier_ = std::make_unique<SpinBarrier>(partitions_);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(partitions_ - 1));
    for (int p = 1; p < partitions_; ++p) {
      workers.emplace_back([this, p] { WorkerLoop(p); });
    }
    WorkerLoop(0);
    for (std::thread& t : workers) t.join();
    started_ = false;
  }

  const Stats& stats() const { return stats_; }

  uint64_t executed_events() const {
    uint64_t total = 0;
    for (const auto& e : engines_) total += e->executed_events();
    return total;
  }

 private:
  int PartitionOf(uint32_t host) const {
    return static_cast<int>(host % static_cast<uint32_t>(partitions_));
  }

  // Sorts by the canonical cross-host key and hands every message to the
  // fabric's ingress resolver. Clears the container.
  void DrainCanonical(std::vector<WireMsg>* msgs) {
    if (msgs->empty()) return;
    std::sort(msgs->begin(), msgs->end(),
              [](const WireMsg& a, const WireMsg& b) {
                if (a.send_when != b.send_when) return a.send_when < b.send_when;
                if (a.src_host != b.src_host) return a.src_host < b.src_host;
                return a.send_seq < b.send_seq;
              });
    for (WireMsg& m : *msgs) deliver_(std::move(m));
    msgs->clear();
  }

  void WorkerLoop(int p) {
    tl_partition_ = p;
    bool sense = false;
    const size_t hosts = engines_.size();
    std::vector<WireMsg> drain_scratch;
    for (;;) {
      // Phase 1: publish this partition's minimum next-event time, agree
      // on the window bound B = N + L (every worker reduces the same
      // array, so no third barrier is needed to share the result).
      TimePoint local_min = Simulator::kNoEvent;
      for (size_t h = static_cast<size_t>(p); h < hosts;
           h += static_cast<size_t>(partitions_)) {
        local_min = std::min(local_min, engines_[h]->NextTime());
      }
      min_times_[static_cast<size_t>(p)] = local_min;
      barrier_->Wait(&sense);
      TimePoint n = Simulator::kNoEvent;
      for (int q = 0; q < partitions_; ++q) {
        n = std::min(n, min_times_[static_cast<size_t>(q)]);
      }
      if (n == Simulator::kNoEvent) break;  // all engines idle, no wire msgs
      const TimePoint bound = n + lookahead_;

      // Phase 2: execute the window — strictly below the bound — then merge
      // the cross-host traffic it produced into the destination engines.
      for (size_t h = static_cast<size_t>(p); h < hosts;
           h += static_cast<size_t>(partitions_)) {
        engines_[h]->RunUntil(bound - 1);
      }
      barrier_->Wait(&sense);
      uint64_t merged = 0;
      for (size_t h = static_cast<size_t>(p); h < hosts;
           h += static_cast<size_t>(partitions_)) {
        drain_scratch.clear();
        for (int q = 0; q < partitions_; ++q) {
          std::vector<WireMsg>& lane =
              lanes_[h * static_cast<size_t>(partitions_) +
                     static_cast<size_t>(q)];
          for (WireMsg& m : lane) drain_scratch.push_back(std::move(m));
          lane.clear();
        }
        merged += drain_scratch.size();
        DrainCanonical(&drain_scratch);
      }
      if (p == 0) {
        ++stats_.windows;
        stats_.barriers += 2;
        stats_.wire_messages += merged;
      } else {
        wire_messages_others_.fetch_add(merged, std::memory_order_relaxed);
      }
    }
    tl_partition_ = -1;
    if (p == 0) {
      stats_.wire_messages +=
          wire_messages_others_.exchange(0, std::memory_order_relaxed);
    }
  }

  const int cores_;
  std::string serial_reason_;
  Duration lookahead_ = 0;
  std::function<void(WireMsg&&)> deliver_;
  std::vector<std::unique_ptr<Simulator>> engines_;

  bool started_ = false;
  int partitions_ = 1;
  // Inbox lanes, indexed dst_host * partitions + src_partition: exactly one
  // writing worker per lane during a window, drained by the destination's
  // owner after the barrier.
  std::vector<std::vector<WireMsg>> lanes_;
  std::vector<WireMsg> setup_msgs_;
  std::vector<TimePoint> min_times_;
  std::unique_ptr<SpinBarrier> barrier_;
  Stats stats_;
  std::atomic<uint64_t> wire_messages_others_{0};

  inline static thread_local int tl_partition_ = -1;
};

}  // namespace prism::sim

#endif  // PRISM_SRC_SIM_PSIM_H_
