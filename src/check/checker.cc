#include "src/check/checker.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace prism::check {

namespace {

constexpr sim::TimePoint kInfinity = std::numeric_limits<sim::TimePoint>::max();

// Wing–Gong search over one key's sub-history.
class KeyChecker {
 public:
  KeyChecker(std::vector<Op> ops, ValueId initial)
      : ops_(std::move(ops)), initial_(initial) {
    resp_.reserve(ops_.size());
    for (size_t i = 0; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      const bool indeterminate = !op.done || op.outcome == Outcome::kIndeterminate;
      resp_.push_back(indeterminate ? kInfinity : op.response);
      if (!indeterminate) required_mask_ |= uint64_t{1} << i;
    }
  }

  bool Linearizable() { return Search(0, initial_); }

 private:
  bool Search(uint64_t mask, ValueId value) {
    if ((mask & required_mask_) == required_mask_) return true;
    if (!seen_[mask].insert(value).second) return false;
    sim::TimePoint min_resp = kInfinity;
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (uint64_t{1} << i)) continue;
      min_resp = std::min(min_resp, resp_[i]);
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      const uint64_t bit = uint64_t{1} << i;
      if (mask & bit) continue;
      const Op& op = ops_[i];
      // Real-time order: an op may go next only if no pending op responded
      // before this op was invoked.
      if (op.invoke > min_resp) continue;
      if (op.type == OpType::kWrite) {
        if (Search(mask | bit, op.value)) return true;
      } else if (op.value == value) {
        if (Search(mask | bit, value)) return true;
      }
    }
    return false;
  }

  std::vector<Op> ops_;
  std::vector<sim::TimePoint> resp_;
  ValueId initial_;
  uint64_t required_mask_ = 0;
  std::unordered_map<uint64_t, std::unordered_set<ValueId>> seen_;
};

bool Checkable(const Op& op) {
  if (op.done && op.outcome == Outcome::kFailed) return false;  // no effect
  if (op.type == OpType::kRead &&
      (!op.done || op.outcome != Outcome::kOk)) {
    return false;  // a read that returned nothing constrains nothing
  }
  return true;
}

}  // namespace

std::string FormatOp(const Op& op) {
  const char* outcome = "open";
  if (op.done) {
    switch (op.outcome) {
      case Outcome::kOk: outcome = "ok"; break;
      case Outcome::kFailed: outcome = "failed"; break;
      case Outcome::kIndeterminate: outcome = "indet"; break;
    }
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "client %d %c key=%" PRIu64 " v=%016" PRIx64
                " [%" PRId64 ", %" PRId64 "] %s",
                op.client, op.type == OpType::kWrite ? 'W' : 'R', op.key,
                op.value, op.invoke, op.done ? op.response : int64_t{-1},
                outcome);
  return buf;
}

CheckResult CheckLinearizable(const std::vector<Op>& history,
                              ValueId initial) {
  // Partition by key; register ops on distinct keys commute.
  std::map<uint64_t, std::vector<Op>> by_key;
  for (const Op& op : history) {
    if (Checkable(op)) by_key[op.key].push_back(op);
  }
  for (auto& [key, ops] : by_key) {
    if (ops.size() > kMaxOpsPerKey) {
      CheckResult r;
      r.ok = false;
      r.error = "key " + std::to_string(key) + " has " +
                std::to_string(ops.size()) +
                " checkable ops; checker supports at most " +
                std::to_string(kMaxOpsPerKey);
      return r;
    }
    KeyChecker checker(ops, initial);
    if (!checker.Linearizable()) {
      CheckResult r;
      r.ok = false;
      std::vector<Op> sorted = ops;
      std::sort(sorted.begin(), sorted.end(),
                [](const Op& a, const Op& b) { return a.invoke < b.invoke; });
      r.error = "key " + std::to_string(key) +
                ": no valid linearization of:";
      for (const Op& op : sorted) r.error += "\n  " + FormatOp(op);
      return r;
    }
  }
  return CheckResult{};
}

std::vector<ValueId> AdmissibleFinalValues(const std::vector<Op>& history,
                                           uint64_t key, ValueId initial) {
  // Candidate writes to `key` with their effective response times.
  struct Write {
    ValueId value;
    sim::TimePoint resp;
    bool ok;
  };
  std::vector<Write> writes;
  bool any_ok = false;
  for (const Op& op : history) {
    if (op.key != key || op.type != OpType::kWrite) continue;
    if (op.done && op.outcome == Outcome::kFailed) continue;
    const bool ok = op.done && op.outcome == Outcome::kOk;
    writes.push_back({op.value, ok ? op.response : kInfinity, ok});
    any_ok = any_ok || ok;
  }
  std::vector<ValueId> admissible;
  if (!any_ok) admissible.push_back(initial);
  for (const Write& w : writes) {
    bool superseded = false;
    for (const Op& op : history) {
      if (op.key != key || op.type != OpType::kWrite) continue;
      if (!op.done || op.outcome != Outcome::kOk) continue;
      if (op.invoke > w.resp) {
        superseded = true;
        break;
      }
    }
    if (!superseded &&
        std::find(admissible.begin(), admissible.end(), w.value) ==
            admissible.end()) {
      admissible.push_back(w.value);
    }
  }
  return admissible;
}

CheckResult CheckReadCommitted(
    const std::vector<TxnRecord>& txns,
    const std::vector<std::pair<uint64_t, ValueId>>& initial) {
  std::unordered_map<uint64_t, std::unordered_set<ValueId>> allowed;
  for (const auto& [key, value] : initial) allowed[key].insert(value);
  for (const TxnRecord& t : txns) {
    const bool may_install =
        !t.done || t.outcome != TxOutcome::kAborted;
    if (!may_install) continue;
    for (const auto& [key, value] : t.writes) allowed[key].insert(value);
  }
  for (size_t i = 0; i < txns.size(); ++i) {
    for (const auto& [key, value] : txns[i].reads) {
      auto it = allowed.find(key);
      const bool ok = (it != allowed.end() && it->second.count(value) > 0) ||
                      value == kAbsent;
      if (!ok) {
        CheckResult r;
        r.ok = false;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "txn %zu (client %d) read key=%" PRIu64
                      " v=%016" PRIx64
                      ": value was never initial nor written by any "
                      "committed/indeterminate transaction",
                      i, txns[i].client, key, value);
        r.error = buf;
        return r;
      }
    }
  }
  return CheckResult{};
}

}  // namespace prism::check
