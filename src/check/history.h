// Client-side operation histories for correctness checking.
//
// Applications record one entry per client-visible operation — invocation
// time, response time, and outcome — while a chaos schedule injects faults
// underneath them. The checkers (checker.h) then decide offline whether the
// recorded history is explainable by the implementation's contract:
// linearizable register semantics for PRISM-RS blocks and PRISM-KV keys,
// read-committed semantics for PRISM-TX.
//
// Values are recorded as 64-bit fingerprints (ValueId) rather than byte
// strings: tests write globally unique values, so fingerprint equality is
// value equality for checking purposes.
#ifndef PRISM_SRC_CHECK_HISTORY_H_
#define PRISM_SRC_CHECK_HISTORY_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/sim/simulator.h"

namespace prism::check {

// Fingerprint of a stored value. kAbsent is "no value": a key that was never
// written, was deleted, or a zero-length read.
using ValueId = uint64_t;
inline constexpr ValueId kAbsent = 0;

// Fingerprints never collide with kAbsent.
inline ValueId IdOf(ByteView bytes) {
  const uint64_t h = Fnv1a64(bytes);
  return h == kAbsent ? 1 : h;
}

enum class OpType { kRead, kWrite };

enum class Outcome {
  kOk,             // the operation completed and took effect exactly once
  kFailed,         // the operation definitely did NOT take effect
  kIndeterminate,  // unknown: it may have taken effect (e.g. timed out
                   // mid-install) — the checker may place it anywhere after
                   // its invocation, or drop it entirely
};

struct Op {
  int client = 0;
  uint64_t key = 0;
  OpType type = OpType::kRead;
  ValueId value = kAbsent;  // write: value written; read: value observed
  sim::TimePoint invoke = 0;
  sim::TimePoint response = 0;
  Outcome outcome = Outcome::kIndeterminate;
  bool done = false;  // response recorded (ops cut off mid-run stay open)
};

// Records register-style operations (PRISM-RS blocks, PRISM-KV keys).
// Begin() stamps the invocation; End() stamps the response. Operations that
// never reach End() are treated as indeterminate with an infinite response
// time.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(sim::Simulator* sim) : sim_(sim) {}

  size_t Begin(int client, uint64_t key, OpType type,
               ValueId written = kAbsent) {
    Op op;
    op.client = client;
    op.key = key;
    op.type = type;
    op.value = written;
    op.invoke = sim_->Now();
    ops_.push_back(op);
    return ops_.size() - 1;
  }

  void End(size_t id, Outcome outcome, ValueId observed = kAbsent) {
    Op& op = ops_[id];
    op.response = sim_->Now();
    op.outcome = outcome;
    op.done = true;
    if (op.type == OpType::kRead) op.value = observed;
  }

  // Ends the op re-typed as a read: a DELETE that found nothing did not
  // write — it *observed* the key's absence.
  void EndAsRead(size_t id, Outcome outcome, ValueId observed) {
    ops_[id].type = OpType::kRead;
    End(id, outcome, observed);
  }

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

 private:
  sim::Simulator* sim_;
  std::vector<Op> ops_;
};

// ---- transactions (PRISM-TX) ----

enum class TxOutcome {
  kCommitted,      // all writes installed
  kAborted,        // validation failed: no write installed
  kIndeterminate,  // commit-phase failure: writes may be partially installed
};

struct TxnRecord {
  int client = 0;
  std::vector<std::pair<uint64_t, ValueId>> reads;   // (key, value observed)
  std::vector<std::pair<uint64_t, ValueId>> writes;  // (key, value written)
  TxOutcome outcome = TxOutcome::kIndeterminate;
  sim::TimePoint begin = 0;
  sim::TimePoint end = 0;
  bool done = false;
};

class TxHistoryRecorder {
 public:
  explicit TxHistoryRecorder(sim::Simulator* sim) : sim_(sim) {}

  size_t BeginTxn(int client) {
    TxnRecord t;
    t.client = client;
    t.begin = sim_->Now();
    txns_.push_back(std::move(t));
    return txns_.size() - 1;
  }
  void RecordRead(size_t id, uint64_t key, ValueId value) {
    txns_[id].reads.emplace_back(key, value);
  }
  void RecordWrite(size_t id, uint64_t key, ValueId value) {
    txns_[id].writes.emplace_back(key, value);
  }
  void EndTxn(size_t id, TxOutcome outcome) {
    txns_[id].outcome = outcome;
    txns_[id].end = sim_->Now();
    txns_[id].done = true;
  }

  const std::vector<TxnRecord>& txns() const { return txns_; }

 private:
  sim::Simulator* sim_;
  std::vector<TxnRecord> txns_;
};

}  // namespace prism::check

#endif  // PRISM_SRC_CHECK_HISTORY_H_
