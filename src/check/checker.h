// Offline correctness checkers for recorded histories (history.h).
//
// CheckLinearizable: Wing–Gong linearizability for per-key atomic registers.
// The history is partitioned by key (register operations on distinct keys
// commute, so each key is checked independently — this is what keeps the
// exponential search tractable), then each key's sub-history is searched for
// a legal linearization:
//   * an operation may be linearized next iff no other pending operation
//     responded before its invocation (real-time order is respected);
//   * a linearized write replaces the register value; a linearized read must
//     observe the current value;
//   * kFailed operations are excluded up front (they provably had no
//     effect and observed nothing);
//   * kIndeterminate writes are optional: the search may linearize them
//     anywhere after their invocation (their response is treated as +∞) or
//     never; kIndeterminate reads are excluded (they observed nothing).
// Visited (linearized-set, register-value) states are memoized, giving the
// usual Wing–Gong exponential worst case but near-linear behavior on real
// histories.
//
// CheckReadCommitted: PRISM-TX's contract under faults. Every transactional
// read must observe the key's initial value or a value written by a
// committed (or indeterminately-committed) transaction; values written by
// definitely-aborted transactions must never be observed.
#ifndef PRISM_SRC_CHECK_CHECKER_H_
#define PRISM_SRC_CHECK_CHECKER_H_

#include <string>
#include <vector>

#include "src/check/history.h"

namespace prism::check {

struct CheckResult {
  bool ok = true;
  std::string error;  // human-readable witness when !ok
};

// Per-key register histories may hold at most this many checkable ops (the
// memoized search keys on a 64-bit linearized-set mask).
inline constexpr size_t kMaxOpsPerKey = 64;

// Linearizability of a multi-key register history. `initial` is the value a
// read of a never-written key must observe (IdOf(zero-block) for PRISM-RS,
// kAbsent for PRISM-KV).
CheckResult CheckLinearizable(const std::vector<Op>& history, ValueId initial);

// Read-committed check over transaction records. `initial(key)` values are
// supplied as a flat list of (key, value) pairs for keys preloaded before
// the history started; unlisted keys start at kAbsent.
CheckResult CheckReadCommitted(
    const std::vector<TxnRecord>& txns,
    const std::vector<std::pair<uint64_t, ValueId>>& initial);

// Final-state admissibility, used by the differential oracle in
// src/explore: the set of values a quiescent read of `key` may observe
// after every operation in `history` has completed, for a linearizable
// register store.
//
// Derivation: in any linearization the final value is written by the last
// linearized write. A kOk write W cannot be last if another kOk write W'
// strictly follows it in real time (W'.invoke > W.response), because W'
// always applies and must linearize after W. So the admissible set is
//   { value(W) : W is a kOk or kIndeterminate write to key, and no kOk
//     write W' to key has W'.invoke > resp(W) }
// with resp(W) = W.response for kOk writes and +inf for kIndeterminate or
// still-open writes (their install time is unbounded), plus `initial` iff
// no kOk write to key exists (an indeterminate write may have never
// applied). kFailed writes are excluded: they provably had no effect.
// The set is sound — it never excludes a value a correct implementation
// could leave behind — so a final value outside it is a real violation.
std::vector<ValueId> AdmissibleFinalValues(const std::vector<Op>& history,
                                           uint64_t key, ValueId initial);

// Debug form of one op: "client 2 W key=5 v=abcd [t1,t2] ok".
std::string FormatOp(const Op& op);

}  // namespace prism::check

#endif  // PRISM_SRC_CHECK_CHECKER_H_
