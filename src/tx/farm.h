// FaRM (Dragojević et al., NSDI'14) — the transaction baseline of §8.1.
//
// The representative state of the art the paper compares against: one-sided
// READs for transaction execution, but a three-phase commit that needs the
// server CPU:
//
//   1. LOCK      — RPC per write key: the server CPU sets the object's lock
//                  bit if the version is unchanged; any failure aborts.
//   2. VALIDATE  — one-sided READ per read key of the object's version word;
//                  a changed or locked version aborts.
//   3. UPDATE+UNLOCK — RPC per write key: the server CPU applies the value
//                  in place, bumps the version, clears the lock.
//
// Per-key layout at each shard:
//   * slot array: [ptr u64 | pad u64]                  (16 B, READ #1)
//   * objects:    [version u64 | key u64 | value]      (READ #2)
// The version word's top bit is the lock bit. Execution reads retry while
// an object is locked or while version changes underneath (FaRM's torn-read
// protection via version checks).
#ifndef PRISM_SRC_TX_FARM_H_
#define PRISM_SRC_TX_FARM_H_

#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "src/rdma/service.h"
#include "src/rpc/rpc.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/tx/prism_tx.h"

namespace prism::tx {

struct FarmOptions {
  uint64_t keys_per_shard = 4096;
  uint64_t value_size = 512;
  rdma::Backend backend = rdma::Backend::kHardwareNic;
  int max_read_retries = 64;
};

class FarmShard {
 public:
  static constexpr uint64_t kLockBit = 1ull << 63;
  static constexpr rpc::MethodId kLockMethod = 1;
  static constexpr rpc::MethodId kUpdateMethod = 2;
  static constexpr rpc::MethodId kUnlockMethod = 3;

  struct LockRequest {
    std::vector<uint64_t> slots;
    std::vector<uint64_t> expected_versions;
    uint16_t client;
  };
  struct LockResponse {
    bool ok = false;
  };
  struct UpdateRequest {  // also unlocks
    std::vector<uint64_t> slots;
    std::vector<Bytes> values;
    uint16_t client;
  };
  struct UnlockRequest {
    std::vector<uint64_t> slots;
    uint16_t client;
  };

  FarmShard(net::Fabric* fabric, net::HostId host, FarmOptions opts);

  rdma::RdmaService& rdma() { return *rdma_; }
  rpc::RpcServer& rpc() { return *rpc_; }
  rdma::AddressSpace& memory() { return *mem_; }
  rdma::RKey rkey() const { return region_.rkey; }

  rdma::Addr slot_addr(uint64_t slot) const { return slot_base_ + slot * 16; }
  rdma::Addr object_addr(uint64_t slot) const {
    return obj_base_ + slot * (16 + opts_.value_size);
  }

  Status LoadKey(uint64_t slot, uint64_t key, ByteView value);

 private:
  sim::Task<rpc::MessagePtr> HandleLock(std::shared_ptr<LockRequest> req);
  sim::Task<rpc::MessagePtr> HandleUpdate(std::shared_ptr<UpdateRequest> req);
  sim::Task<rpc::MessagePtr> HandleUnlock(std::shared_ptr<UnlockRequest> req);

  FarmOptions opts_;
  net::Fabric* fabric_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<rdma::RdmaService> rdma_;
  std::unique_ptr<rpc::RpcServer> rpc_;
  rdma::MemoryRegion region_;
  rdma::Addr slot_base_ = 0;
  rdma::Addr obj_base_ = 0;
  // Which client holds each lock (server-side bookkeeping for safety checks).
  std::vector<uint16_t> lock_holder_;
};

class FarmCluster {
 public:
  FarmCluster(net::Fabric* fabric, int n_shards, FarmOptions opts);

  int n_shards() const { return static_cast<int>(shards_.size()); }
  FarmShard& shard(int i) { return *shards_[i]; }
  const FarmOptions& options() const { return opts_; }

  std::pair<int, uint64_t> Locate(uint64_t key) const;
  Status LoadKey(uint64_t key, ByteView value);

 private:
  FarmOptions opts_;
  std::vector<std::unique_ptr<FarmShard>> shards_;
};

class FarmClient {
 public:
  FarmClient(net::Fabric* fabric, net::HostId self, FarmCluster* cluster,
             uint16_t client_id);

  Transaction Begin() { return Transaction{}; }

  // Execution-phase read: two one-sided READs (slot, then object), retried
  // while the object is locked / its version changes.
  sim::Task<Result<Bytes>> Read(Transaction& txn, uint64_t key);

  void Write(Transaction& txn, uint64_t key, Bytes value);

  // FaRM's three-phase commit.
  sim::Task<Status> Commit(Transaction& txn);

  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }
  // Combined protocol-complexity tally over both transports
  // (src/obs/complexity.h).
  obs::TransportTally TransportTally() const {
    return rdma_.tally() + rpc_.tally();
  }
  // Shared per-host verb batcher (doorbell batching + completion
  // coalescing) applied to both transports; null keeps the flat cost.
  void set_batcher(rdma::VerbBatcher* b) {
    rdma_.set_batcher(b);
    rpc_.set_batcher(b);
  }

 private:
  net::Fabric* fabric_;
  net::HostId self_;
  FarmCluster* cluster_;
  rdma::RdmaClient rdma_;
  rpc::RpcClient rpc_;
  uint16_t client_id_;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace prism::tx

#endif  // PRISM_SRC_TX_FARM_H_
