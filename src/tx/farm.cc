#include "src/tx/farm.h"

#include <algorithm>
#include <map>

namespace prism::tx {

FarmShard::FarmShard(net::Fabric* fabric, net::HostId host, FarmOptions opts)
    : opts_(opts), fabric_(fabric) {
  const uint64_t slot_bytes = opts.keys_per_shard * 16;
  const uint64_t obj_bytes = opts.keys_per_shard * (16 + opts.value_size);
  mem_ = std::make_unique<rdma::AddressSpace>(slot_bytes + obj_bytes +
                                              (1 << 20));
  auto region =
      mem_->CarveAndRegister(slot_bytes + obj_bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  slot_base_ = region_.base;
  obj_base_ = region_.base + slot_bytes;
  lock_holder_.assign(opts.keys_per_shard, 0);
  rdma_ = std::make_unique<rdma::RdmaService>(fabric, host, opts.backend,
                                              mem_.get());
  rpc_ = std::make_unique<rpc::RpcServer>(fabric, host);
  rpc_->Register(kLockMethod,
                 [this](const rpc::Message& m) -> sim::Task<rpc::MessagePtr> {
                   auto req = std::make_shared<LockRequest>(
                       m.As<LockRequest>());
                   auto resp = co_await HandleLock(req);
                   co_return resp;
                 });
  rpc_->Register(kUpdateMethod,
                 [this](const rpc::Message& m) -> sim::Task<rpc::MessagePtr> {
                   auto req = std::make_shared<UpdateRequest>(
                       m.As<UpdateRequest>());
                   auto resp = co_await HandleUpdate(req);
                   co_return resp;
                 });
  rpc_->Register(kUnlockMethod,
                 [this](const rpc::Message& m) -> sim::Task<rpc::MessagePtr> {
                   auto req = std::make_shared<UnlockRequest>(
                       m.As<UnlockRequest>());
                   auto resp = co_await HandleUnlock(req);
                   co_return resp;
                 });
}

Status FarmShard::LoadKey(uint64_t slot, uint64_t key, ByteView value) {
  if (slot >= opts_.keys_per_shard) return OutOfRange("slot");
  if (value.size() > opts_.value_size) return InvalidArgument("value size");
  const rdma::Addr obj = object_addr(slot);
  mem_->StoreWord(obj, 1);  // version 1, unlocked
  mem_->StoreWord(obj + 8, key);
  mem_->Store(obj + 16, value);
  mem_->StoreWord(slot_addr(slot), obj);
  return OkStatus();
}

sim::Task<rpc::MessagePtr> FarmShard::HandleLock(
    std::shared_ptr<LockRequest> req) {
  LockResponse out;
  out.ok = true;
  // Check all versions first, then lock — all within this handler event, so
  // the lock acquisition over the request's keys is atomic server-side.
  std::vector<rdma::Addr> objs;
  for (size_t i = 0; i < req->slots.size(); ++i) {
    const rdma::Addr obj = object_addr(req->slots[i]);
    const uint64_t version = mem_->LoadWord(obj);
    if ((version & kLockBit) != 0 ||
        version != req->expected_versions[i]) {
      out.ok = false;
      break;
    }
    objs.push_back(obj);
  }
  if (out.ok) {
    for (size_t i = 0; i < req->slots.size(); ++i) {
      mem_->StoreWord(objs[i], req->expected_versions[i] | kLockBit);
      lock_holder_[req->slots[i]] = req->client;
    }
  }
  co_return rpc::Message::Of(out, 8);
}

sim::Task<rpc::MessagePtr> FarmShard::HandleUpdate(
    std::shared_ptr<UpdateRequest> req) {
  LockResponse out;
  out.ok = true;
  for (size_t i = 0; i < req->slots.size(); ++i) {
    const uint64_t slot = req->slots[i];
    PRISM_CHECK_EQ(lock_holder_[slot], req->client)
        << "update without holding the lock";
    const rdma::Addr obj = object_addr(slot);
    const uint64_t version = mem_->LoadWord(obj) & ~kLockBit;
    // In-place update while locked. The value write and the version bump
    // happen in separate events — execution-phase readers may observe the
    // torn state and must retry via the version check.
    mem_->Store(obj + 16, req->values[i]);
    co_await sim::Yield(fabric_->sim(rpc_->host()));
    mem_->StoreWord(obj, version + 1);  // bump + unlock
    lock_holder_[slot] = 0;
  }
  co_return rpc::Message::Of(out, 8);
}

sim::Task<rpc::MessagePtr> FarmShard::HandleUnlock(
    std::shared_ptr<UnlockRequest> req) {
  LockResponse out;
  out.ok = true;
  for (uint64_t slot : req->slots) {
    if (lock_holder_[slot] != req->client) continue;
    const rdma::Addr obj = object_addr(slot);
    mem_->StoreWord(obj, mem_->LoadWord(obj) & ~kLockBit);
    lock_holder_[slot] = 0;
  }
  co_return rpc::Message::Of(out, 8);
}

FarmCluster::FarmCluster(net::Fabric* fabric, int n_shards, FarmOptions opts)
    : opts_(opts) {
  for (int i = 0; i < n_shards; ++i) {
    net::HostId host = fabric->AddHost("farm-shard-" + std::to_string(i));
    shards_.push_back(std::make_unique<FarmShard>(fabric, host, opts));
  }
}

std::pair<int, uint64_t> FarmCluster::Locate(uint64_t key) const {
  const int shard = static_cast<int>(key % shards_.size());
  const uint64_t slot = (key / shards_.size()) % opts_.keys_per_shard;
  return {shard, slot};
}

Status FarmCluster::LoadKey(uint64_t key, ByteView value) {
  auto [shard, slot] = Locate(key);
  return shards_[static_cast<size_t>(shard)]->LoadKey(slot, key, value);
}

FarmClient::FarmClient(net::Fabric* fabric, net::HostId self,
                       FarmCluster* cluster, uint16_t client_id)
    : fabric_(fabric),
      self_(self),
      cluster_(cluster),
      rdma_(fabric, self),
      rpc_(fabric, self),
      client_id_(client_id) {}

sim::Task<Result<Bytes>> FarmClient::Read(Transaction& txn, uint64_t key) {
  PRISM_CHECK(txn.active);
  for (const auto& w : txn.write_set) {
    if (w.key == key) {
      Bytes copy = w.value;
      co_return copy;
    }
  }
  auto [shard_idx, slot] = cluster_->Locate(key);
  FarmShard& shard = cluster_->shard(shard_idx);
  const uint64_t obj_len = 16 + cluster_->options().value_size;
  for (int attempt = 0; attempt < cluster_->options().max_read_retries;
       ++attempt) {
    // READ 1: the slot (object pointer) — as in Pilaf (§8.1).
    auto slot_read = co_await rdma_.Read(&shard.rdma(), shard.rkey(),
                                         shard.slot_addr(slot), 16);
    if (!slot_read.ok()) co_return slot_read.status();
    const rdma::Addr obj = LoadU64(slot_read->data());
    if (obj == 0) co_return NotFound("key not loaded");
    // READ 2: the object [version | key | value].
    auto obj_read =
        co_await rdma_.Read(&shard.rdma(), shard.rkey(), obj, obj_len);
    if (!obj_read.ok()) co_return obj_read.status();
    const uint64_t version = LoadU64(obj_read->data());
    if ((version & FarmShard::kLockBit) != 0) {
      // Locked by a committing writer: back off briefly and retry.
      co_await sim::SleepFor(fabric_->sim(self_), sim::Micros(2));
      continue;
    }
    if (LoadU64(obj_read->data() + 8) != key) {
      co_return NotFound("slot holds a different key");
    }
    txn.read_set.push_back({key, version});
    co_return Bytes(obj_read->begin() + 16, obj_read->end());
  }
  co_return Aborted("object locked too long");
}

void FarmClient::Write(Transaction& txn, uint64_t key, Bytes value) {
  PRISM_CHECK(txn.active);
  for (auto& w : txn.write_set) {
    if (w.key == key) {
      w.value = std::move(value);
      return;
    }
  }
  txn.write_set.push_back({key, std::move(value)});
}

sim::Task<Status> FarmClient::Commit(Transaction& txn) {
  PRISM_CHECK(txn.active);
  txn.active = false;
  if (txn.write_set.empty() && txn.read_set.empty()) {
    commits_++;
    co_return OkStatus();
  }

  // Version expected for each write key: from the read set if read, else it
  // must be fetched — YCSB-T RMW transactions always read before writing,
  // so require it (mirrors FaRM's object-buffer model).
  std::map<uint64_t, uint64_t> read_versions;
  for (const auto& r : txn.read_set) read_versions[r.key] = r.rc;

  // Group write keys by shard for the lock / update RPCs.
  std::map<int, FarmShard::LockRequest> lock_reqs;
  std::map<int, FarmShard::UpdateRequest> update_reqs;
  for (const auto& w : txn.write_set) {
    auto it = read_versions.find(w.key);
    if (it == read_versions.end()) {
      aborts_++;
      co_return FailedPrecondition("blind writes unsupported: read first");
    }
    auto [shard_idx, slot] = cluster_->Locate(w.key);
    auto& lock_request = lock_reqs[shard_idx];
    lock_request.slots.push_back(slot);
    lock_request.expected_versions.push_back(it->second);
    lock_request.client = client_id_;
    auto& update_request = update_reqs[shard_idx];
    update_request.slots.push_back(slot);
    update_request.values.push_back(w.value);
    update_request.client = client_id_;
  }

  // ---- phase 1: LOCK (RPC per shard with write keys) ----
  bool locked_ok = true;
  std::vector<int> locked_shards;
  for (auto& [shard_idx, request] : lock_reqs) {
    const size_t wire = 24 + 16 * request.slots.size();
    rpc::MessagePtr msg = rpc::Message::Of(request, wire);
    auto resp = co_await rpc_.Call(&cluster_->shard(shard_idx).rpc(),
                                   FarmShard::kLockMethod, msg);
    if (!resp.ok() || !(*resp)->As<FarmShard::LockResponse>().ok) {
      locked_ok = false;
      break;
    }
    locked_shards.push_back(shard_idx);
  }
  if (!locked_ok) {
    // Unlock whatever we locked, then abort.
    for (int shard_idx : locked_shards) {
      FarmShard::UnlockRequest unlock{lock_reqs[shard_idx].slots, client_id_};
      rpc::MessagePtr msg =
          rpc::Message::Of(unlock, 16 + 8 * unlock.slots.size());
      (void)co_await rpc_.Call(&cluster_->shard(shard_idx).rpc(),
                               FarmShard::kUnlockMethod, msg);
    }
    aborts_++;
    co_return Aborted("lock phase failed");
  }

  // ---- phase 2: VALIDATE ----
  // §8.1: "they reread all objects in the read set to verify that they have
  // not been concurrently modified" — one one-sided READ per read-set key,
  // including keys we just locked (whose versions must match modulo our own
  // lock bit).
  bool valid = true;
  for (const auto& r : txn.read_set) {
    bool is_written = false;
    for (const auto& w : txn.write_set) is_written |= (w.key == r.key);
    auto [shard_idx, slot] = cluster_->Locate(r.key);
    FarmShard& shard = cluster_->shard(shard_idx);
    auto slot_read = co_await rdma_.Read(&shard.rdma(), shard.rkey(),
                                         shard.slot_addr(slot), 16);
    if (!slot_read.ok()) {
      valid = false;
      break;
    }
    const rdma::Addr obj = LoadU64(slot_read->data());
    auto version_read =
        co_await rdma_.Read(&shard.rdma(), shard.rkey(), obj, 8);
    if (!version_read.ok()) {
      valid = false;
      break;
    }
    const uint64_t version = LoadU64(version_read->data());
    const uint64_t expected =
        is_written ? (r.rc | FarmShard::kLockBit) : r.rc;
    if (version != expected) {
      valid = false;  // changed (or locked by someone else) since we read it
      break;
    }
  }
  if (!valid) {
    for (int shard_idx : locked_shards) {
      FarmShard::UnlockRequest unlock{lock_reqs[shard_idx].slots, client_id_};
      rpc::MessagePtr msg =
          rpc::Message::Of(unlock, 16 + 8 * unlock.slots.size());
      (void)co_await rpc_.Call(&cluster_->shard(shard_idx).rpc(),
                               FarmShard::kUnlockMethod, msg);
    }
    aborts_++;
    co_return Aborted("validation failed");
  }

  // ---- phase 3: UPDATE + UNLOCK (RPC per shard) ----
  for (auto& [shard_idx, request] : update_reqs) {
    size_t wire = 24;
    for (const auto& v : request.values) wire += 16 + v.size();
    rpc::MessagePtr msg = rpc::Message::Of(request, wire);
    auto resp = co_await rpc_.Call(&cluster_->shard(shard_idx).rpc(),
                                   FarmShard::kUpdateMethod, msg);
    if (!resp.ok()) {
      aborts_++;
      co_return resp.status();
    }
  }
  commits_++;
  co_return OkStatus();
}

}  // namespace prism::tx
