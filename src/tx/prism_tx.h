// PRISM-TX — serializable distributed transactions via one-sided OCC (§8.2).
//
// Data is partitioned across shards (the paper evaluates one shard but runs
// the full commit protocol; the implementation supports many). Each shard
// stores a hash table of per-key 32-byte metadata elements (Figure 8):
//
//     [PR u64 | PW u64 | C u64 | addr u64]
//
//   PR — highest timestamp of a prepared transaction that READ the key
//   PW — highest timestamp of a prepared transaction that will WRITE it
//   C  — timestamp of the latest committed write (duplicated in the buffer)
//   addr — pointer to the committed value buffer  [C u64 | key u64 | value]
//
// Timestamps are Meerkat-style loosely synchronized logical clocks packed as
// (clock_time << 16 | client_id).
//
// Protocol (all one-sided; no server CPU on any path):
//  * Execution: reads are PRISM-KV-style indirect READs of the addr field
//    (atomic ⟨C,key,value⟩); writes are buffered client-side.
//  * Prepare / read validation, one enhanced CAS per read key on the
//    [PR|PW] window: compare (RC|TS) > (PW|PR) — with PW the significant
//    field this is exactly "RC == PW and TS > PR" (RC > PW is impossible) —
//    and swap PR := TS. A comparison failure with returned PW == RC just
//    means PR was already ≥ TS (benign); returned PW != RC means a
//    conflicting prepared writer ⇒ abort.
//  * Prepare / write validation, one CAS per write key: compare TS > PW,
//    swap PW := TS; the returned old value also carries PR, which the
//    client checks TS > PR. Bumping PW optimistically is safe (§8.2): it
//    can only cause spurious aborts, never incorrect commits.
//  * Commit: per write key, the PRISM-RS install chain (WRITE TS to
//    scratch, ALLOCATE [TS|key|value] redirected to scratch+8, CAS_GT on
//    the [C|addr] window).
//  * Abort: leave PR/PW as-is (conservative, §8.2) but bump C := TS for
//    keys whose write validation succeeded, reducing blocking.
#ifndef PRISM_SRC_TX_PRISM_TX_H_
#define PRISM_SRC_TX_PRISM_TX_H_

#include <map>
#include <memory>
#include <vector>

#include "src/check/history.h"
#include "src/net/fabric.h"
#include "src/prism/reclaim.h"
#include "src/prism/service.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::tx {

// Packed loosely-synchronized timestamp.
struct Timestamp {
  uint64_t time = 0;
  uint16_t client = 0;
  uint64_t Packed() const { return (time << 16) | client; }
  static Timestamp FromPacked(uint64_t p) {
    return Timestamp{p >> 16, static_cast<uint16_t>(p & 0xffff)};
  }
  bool operator<(const Timestamp& o) const { return Packed() < o.Packed(); }
};

struct PrismTxOptions {
  uint64_t keys_per_shard = 4096;   // metadata slots per shard
  uint64_t value_size = 512;
  uint64_t buffers_per_shard = 8192;
  core::Deployment deployment = core::Deployment::kSoftware;
  size_t reclaim_batch = 16;
};

class PrismTxShard {
 public:
  PrismTxShard(net::Fabric* fabric, net::HostId host, PrismTxOptions opts);

  core::PrismServer& prism() { return *prism_; }
  rdma::AddressSpace& memory() { return *mem_; }
  rdma::RKey rkey() const { return region_.rkey; }
  uint32_t freelist() const { return freelist_; }

  // Metadata element base for slot s (32 B each).
  rdma::Addr meta_addr(uint64_t slot) const { return meta_base_ + slot * 32; }
  rdma::Addr pr_addr(uint64_t slot) const { return meta_addr(slot); }
  rdma::Addr pw_addr(uint64_t slot) const { return meta_addr(slot) + 8; }
  rdma::Addr c_addr(uint64_t slot) const { return meta_addr(slot) + 16; }
  rdma::Addr ptr_addr(uint64_t slot) const { return meta_addr(slot) + 24; }

  // Setup-time bulk load (models the YCSB load phase; not a transaction).
  Status LoadKey(uint64_t slot, uint64_t key, ByteView value);

 private:
  PrismTxOptions opts_;
  std::unique_ptr<rdma::AddressSpace> mem_;
  std::unique_ptr<core::PrismServer> prism_;
  rdma::MemoryRegion region_;
  rdma::Addr meta_base_ = 0;
  rdma::Addr pool_base_ = 0;
  uint64_t next_load_buffer_ = 0;
  uint32_t freelist_ = 0;
};

class PrismTxCluster {
 public:
  PrismTxCluster(net::Fabric* fabric, int n_shards, PrismTxOptions opts);

  int n_shards() const { return static_cast<int>(shards_.size()); }
  PrismTxShard& shard(int i) { return *shards_[i]; }
  const PrismTxOptions& options() const { return opts_; }

  // key -> (shard, slot). Benches preload every key so slots are stable.
  std::pair<int, uint64_t> Locate(uint64_t key) const;

  Status LoadKey(uint64_t key, ByteView value);

 private:
  PrismTxOptions opts_;
  std::vector<std::unique_ptr<PrismTxShard>> shards_;
};

// A client-coordinated transaction.
class Transaction {
 public:
  struct ReadEntry {
    uint64_t key;
    uint64_t rc;  // packed C version observed
  };
  struct WriteEntry {
    uint64_t key;
    Bytes value;
  };

  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;
  bool active = true;

  // History-recording handle (see PrismTxClient::set_history).
  static constexpr size_t kNoHistory = static_cast<size_t>(-1);
  size_t history_id = kNoHistory;
};

class PrismTxClient {
 public:
  PrismTxClient(net::Fabric* fabric, net::HostId self,
                PrismTxCluster* cluster, uint16_t client_id);

  Transaction Begin() {
    Transaction txn;
    if (history_ != nullptr) txn.history_id = history_->BeginTxn(client_id_);
    return txn;
  }

  // When set, every transaction records its remote reads, writes, and
  // outcome for offline read-committed checking.
  void set_history(check::TxHistoryRecorder* history) { history_ = history; }

  // Transactional read: fetches the committed version and records it in the
  // read set. kNotFound for never-loaded keys.
  sim::Task<Result<Bytes>> Read(Transaction& txn, uint64_t key);

  // Buffered write (visible to later reads in the same transaction).
  void Write(Transaction& txn, uint64_t key, Bytes value);

  // Two-phase commit: prepare (validation CASes) + commit (install chains).
  // Returns kAborted if validation fails.
  sim::Task<Status> Commit(Transaction& txn);

  void FlushReclaim();

  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }
  // Transport-level protocol-complexity tally (src/obs/complexity.h).
  obs::TransportTally TransportTally() const { return prism_.tally(); }
  // Shared per-host verb batcher (doorbell batching + completion
  // coalescing); null keeps the flat unbatched post/poll cost.
  void set_batcher(rdma::VerbBatcher* b) { prism_.set_batcher(b); }

 private:
  struct WritePrep {
    uint64_t key;
    bool pw_bumped = false;  // write-validation CAS swapped
    bool valid = false;      // and TS > PR held
  };

  sim::Task<Status> AbortCleanup(const std::vector<WritePrep>& preps,
                                 Timestamp ts);

  net::Fabric* fabric_;
  net::HostId self_;
  PrismTxCluster* cluster_;
  core::PrismClient prism_;
  uint16_t client_id_;
  check::TxHistoryRecorder* history_ = nullptr;
  uint64_t logical_clock_ = 1;
  // Per-shard scratch: kScratchSlots × 16 B so a commit's parallel install
  // chains (one per write key on the shard) never share a redirect target.
  static constexpr uint64_t kScratchSlots = 8;
  std::vector<rdma::Addr> scratch_;
  std::vector<std::unique_ptr<core::ReclaimClient>> reclaim_;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace prism::tx

#endif  // PRISM_SRC_TX_PRISM_TX_H_
